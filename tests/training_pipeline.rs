//! Cross-crate integration: the full ML-driven-design pipeline — train an
//! agent in the simulator, interpret its weights, deploy the frozen
//! network as an arbiter (rl-arb + nn-mlp + noc-sim).

use ml_noc::noc_arbiters::RandomArbiter;
use ml_noc::noc_sim::{Arbiter, Pattern, SimConfig, Simulator, SyntheticTraffic, Topology};
use ml_noc::rl_arb::{
    hill_climb, train_synthetic, weight_heatmap, Feature, RewardKind, TrainSpec,
};

fn tiny_spec(seed: u64) -> TrainSpec {
    let mut spec = TrainSpec::tuned_synthetic(4, 0.35, seed);
    spec.curriculum = vec![];
    spec.epochs = 6;
    spec.cycles_per_epoch = 500;
    spec
}

#[test]
fn training_produces_an_interpretable_agent() {
    let outcome = train_synthetic(&tiny_spec(5));
    assert_eq!(outcome.curve.len(), 6);
    assert!(outcome.agent.decisions() > 100);
    let hm = weight_heatmap(outcome.agent.network(), outcome.agent.encoder());
    assert_eq!(hm.rows(), 4);
    assert_eq!(hm.cols, 15);
    // Something was learned: weights are not uniformly zero, and the
    // ranking covers every feature exactly once.
    assert!(hm.ranked_rows().iter().any(|(_, v)| *v > 0.0));
    let rows: Vec<usize> = hm.ranked_rows().iter().map(|(r, _)| *r).collect();
    let mut sorted = rows.clone();
    sorted.sort_unstable();
    assert_eq!(sorted, vec![0, 1, 2, 3]);
}

#[test]
fn frozen_agent_is_a_working_arbiter_and_beats_random() {
    let outcome = train_synthetic(&{
        let mut s = tiny_spec(7);
        s.epochs = 20;
        s.cycles_per_epoch = 1_000;
        s
    });
    let run = |arb: Box<dyn Arbiter>| {
        let topo = Topology::uniform_mesh(4, 4).unwrap();
        let cfg = SimConfig::synthetic(4, 4);
        let traffic = SyntheticTraffic::new(&topo, Pattern::UniformRandom, 0.35, cfg.num_vnets, 3);
        let mut sim = Simulator::new(topo, cfg, arb, traffic).unwrap();
        sim.run(1_000);
        sim.reset_stats();
        sim.run(6_000);
        (sim.stats().avg_latency(), sim.stats().latency_percentile(99.0))
    };
    let (nn_avg, nn_p99) = run(Box::new(outcome.agent.freeze()));
    let (rand_avg, rand_p99) = run(Box::new(RandomArbiter::new(1)));
    assert!(nn_avg > 0.0 && rand_avg > 0.0);
    // A trained network must be in the same league as (or better than)
    // uniform-random selection on both mean and tail; a broken agent
    // diverges by integer factors here, which is what this guards against.
    assert!(
        nn_avg <= rand_avg * 1.25,
        "trained NN avg ({nn_avg:.1}) far worse than random ({rand_avg:.1})"
    );
    assert!(
        nn_p99 as f64 <= rand_p99 as f64 * 1.5,
        "trained NN p99 ({nn_p99}) far worse than random ({rand_p99})"
    );
}

#[test]
fn reward_functions_are_pluggable_end_to_end() {
    for reward in RewardKind::ALL {
        let mut spec = tiny_spec(9);
        spec.epochs = 3;
        spec.agent = spec.agent.with_reward(reward);
        let out = train_synthetic(&spec);
        assert_eq!(out.curve.len(), 3, "{} produced wrong curve", reward.label());
    }
}

#[test]
fn hill_climbing_runs_the_full_selection_loop() {
    let mut spec = tiny_spec(11);
    spec.epochs = 3;
    spec.cycles_per_epoch = 300;
    let result = hill_climb(&spec, &[Feature::LocalAge, Feature::HopCount], 0.01);
    assert!(!result.selected.is_empty());
    assert!(result.history.len() >= 2);
    assert!(result.latency.is_finite() && result.latency > 0.0);
}
