//! Cross-crate integration: the heterogeneous APU system (apu-sim +
//! apu-workloads + noc-arbiters) reproduces the paper's qualitative
//! execution-time behavior.

use ml_noc::apu_sim::{run_apu, EngineConfig, NUM_QUADRANTS};
use ml_noc::apu_workloads::{mixed_scenario, Benchmark};
use ml_noc::noc_arbiters::{make_arbiter, PolicyKind};

const SCALE: f64 = 0.15; // small programs keep debug-mode tests quick

fn avg_exec(bench: Benchmark, kind: PolicyKind, seeds: &[u64]) -> f64 {
    let mut sum = 0.0;
    for &seed in seeds {
        let specs = vec![bench.spec_scaled(SCALE); NUM_QUADRANTS];
        let r = run_apu(
            specs,
            make_arbiter(kind, seed),
            EngineConfig::default(),
            seed,
            2_000_000,
        );
        assert!(r.completed, "{bench}/{kind} did not complete");
        sum += r.avg_exec;
    }
    sum / seeds.len() as f64
}

#[test]
fn every_policy_completes_every_benchmark() {
    for bench in Benchmark::ALL {
        let specs = vec![bench.spec_scaled(0.05); NUM_QUADRANTS];
        for kind in [
            PolicyKind::RoundRobin,
            PolicyKind::Islip,
            PolicyKind::Fifo,
            PolicyKind::ProbDist,
            PolicyKind::RlApu,
            PolicyKind::Algorithm2,
            PolicyKind::GlobalAge,
        ] {
            let r = run_apu(
                specs.clone(),
                make_arbiter(kind, 1),
                EngineConfig::default(),
                1,
                2_000_000,
            );
            assert!(r.completed, "{bench} under {kind} did not complete");
            assert!(r.tail_exec > 0);
        }
    }
}

#[test]
fn rl_inspired_tracks_the_oracle_on_a_contended_workload() {
    let seeds = [1, 2, 3];
    let rr = avg_exec(Benchmark::Bfs, PolicyKind::RoundRobin, &seeds);
    let rl = avg_exec(Benchmark::Bfs, PolicyKind::RlApu, &seeds);
    let ga = avg_exec(Benchmark::Bfs, PolicyKind::GlobalAge, &seeds);
    // The distilled policy should sit near the oracle, clearly ahead of
    // round-robin (paper Fig. 9's headline relationship). Tolerances are
    // loose because the programs are scaled down for test speed.
    assert!(
        rl <= rr * 1.01,
        "rl-inspired ({rl:.0}) should not trail round-robin ({rr:.0})"
    );
    assert!(
        rl <= ga * 1.08,
        "rl-inspired ({rl:.0}) strayed too far from global-age ({ga:.0})"
    );
}

#[test]
fn mixed_scenarios_run_to_completion() {
    for n_low in 0..=NUM_QUADRANTS {
        let specs = mixed_scenario(n_low, 3, 0.05);
        let r = run_apu(
            specs,
            make_arbiter(PolicyKind::RlApu, 2),
            EngineConfig::default(),
            2,
            2_000_000,
        );
        assert!(r.completed, "mix {n_low}L did not complete");
    }
}

#[test]
fn high_injection_workloads_stress_the_network_more() {
    // The Fig. 11 classification must be visible in network load: a
    // high-injection app delivers more flits per cycle than a low one.
    let flit_rate = |b: Benchmark| {
        let specs = vec![b.spec_scaled(SCALE); NUM_QUADRANTS];
        let r = run_apu(
            specs,
            make_arbiter(PolicyKind::GlobalAge, 1),
            EngineConfig::default(),
            1,
            2_000_000,
        );
        r.stats.flits_on_links as f64 / r.stats.cycles as f64
    };
    let hi = flit_rate(Benchmark::Spmv);
    let lo = flit_rate(Benchmark::Histogram);
    assert!(
        hi > 1.5 * lo,
        "spmv ({hi:.2} flits/cyc) should clearly exceed histogram ({lo:.2})"
    );
}

#[test]
fn execution_times_are_reproducible() {
    let specs = vec![Benchmark::Hotspot.spec_scaled(SCALE); NUM_QUADRANTS];
    let a = run_apu(
        specs.clone(),
        make_arbiter(PolicyKind::Fifo, 9),
        EngineConfig::default(),
        9,
        2_000_000,
    );
    let b = run_apu(
        specs,
        make_arbiter(PolicyKind::Fifo, 9),
        EngineConfig::default(),
        9,
        2_000_000,
    );
    assert_eq!(a.exec_times, b.exec_times);
    assert_eq!(a.stats.delivered, b.stats.delivered);
}
