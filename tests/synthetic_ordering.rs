//! Cross-crate integration: the paper's qualitative synthetic-traffic
//! ordering must hold end-to-end (noc-sim + noc-arbiters).

use ml_noc::noc_arbiters::{make_arbiter, PolicyKind};
use ml_noc::noc_sim::{Arbiter, Pattern, SimConfig, SimStats, Simulator, SyntheticTraffic, Topology};

fn run(width: u16, rate: f64, arbiter: Box<dyn Arbiter>, seed: u64) -> SimStats {
    let topo = Topology::uniform_mesh(width, width).unwrap();
    let cfg = SimConfig::synthetic(width, width);
    let traffic = SyntheticTraffic::new(&topo, Pattern::UniformRandom, rate, cfg.num_vnets, seed);
    let mut sim = Simulator::new(topo, cfg, arbiter, traffic).unwrap();
    sim.run(2_000);
    sim.reset_stats();
    sim.run(10_000);
    sim.stats().clone()
}

#[test]
fn global_age_beats_fifo_on_tail_latency_under_contention() {
    let fifo = run(4, 0.40, make_arbiter(PolicyKind::Fifo, 3), 7);
    let ga = run(4, 0.40, make_arbiter(PolicyKind::GlobalAge, 3), 7);
    assert!(
        ga.latency_percentile(99.0) < fifo.latency_percentile(99.0),
        "global-age p99 {} should beat FIFO p99 {}",
        ga.latency_percentile(99.0),
        fifo.latency_percentile(99.0)
    );
    assert!(ga.max_latency() < fifo.max_latency());
}

#[test]
fn rl_inspired_closes_most_of_the_fifo_to_oracle_gap() {
    // At 0.45 the 4x4 mesh runs at the edge of saturation, where the
    // paper's effect is strongest: FIFO's tail blows up while the distilled
    // policy stays near the oracle.
    let fifo = run(4, 0.45, make_arbiter(PolicyKind::Fifo, 3), 7).latency_percentile(99.0) as f64;
    let rl = run(4, 0.45, make_arbiter(PolicyKind::RlSynth4x4, 3), 7).latency_percentile(99.0) as f64;
    let ga = run(4, 0.45, make_arbiter(PolicyKind::GlobalAge, 3), 7).latency_percentile(99.0) as f64;
    assert!(
        rl < fifo * 0.9,
        "rl-inspired p99 {rl} did not clearly improve on FIFO {fifo}"
    );
    assert!(
        rl < ga * 2.0,
        "rl-inspired p99 {rl} is not in the oracle's league ({ga})"
    );
}

#[test]
fn all_policies_conserve_packets() {
    for kind in PolicyKind::ALL {
        let topo = Topology::uniform_mesh(4, 4).unwrap();
        let cfg = SimConfig::synthetic(4, 4);
        let traffic = SyntheticTraffic::new(&topo, Pattern::Transpose, 0.2, cfg.num_vnets, 11);
        let mut sim = Simulator::new(topo, cfg, make_arbiter(kind, 5), traffic).unwrap();
        sim.run(3_000);
        let s = sim.stats();
        assert!(s.delivered > 0, "{kind}: nothing delivered");
        assert_eq!(
            s.created,
            s.delivered + sim.in_flight() + sim.queued_at_sources() as u64,
            "{kind}: conservation violated"
        );
    }
}

#[test]
fn every_policy_is_starvation_free_at_feasible_load() {
    // At a stable operating point no packet should wait absurdly long under
    // any production policy (Random excluded: it is a control).
    for kind in [
        PolicyKind::RoundRobin,
        PolicyKind::Islip,
        PolicyKind::Fifo,
        PolicyKind::ProbDist,
        PolicyKind::RlSynth4x4,
        PolicyKind::RlApu,
        PolicyKind::Algorithm2,
        PolicyKind::GlobalAge,
    ] {
        let s = run(4, 0.30, make_arbiter(kind, 1), 3);
        assert!(
            s.max_local_age < 2_000,
            "{kind}: max local age {} suggests starvation",
            s.max_local_age
        );
    }
}

#[test]
fn deterministic_across_runs() {
    let a = run(4, 0.25, make_arbiter(PolicyKind::ProbDist, 9), 13);
    let b = run(4, 0.25, make_arbiter(PolicyKind::ProbDist, 9), 13);
    assert_eq!(a.delivered, b.delivered);
    assert_eq!(a.total_latency, b.total_latency);
    assert_eq!(a.latencies, b.latencies);
}
