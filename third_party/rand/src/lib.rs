//! Offline stand-in for the `rand` crate.
//!
//! The build environment has no access to crates.io, so this vendored crate
//! provides the (small) subset of the rand 0.8 API the workspace actually
//! uses: the [`Rng`] extension methods `gen`, `gen_range` and `gen_bool`,
//! the [`SeedableRng`] constructors, and [`rngs::StdRng`].
//!
//! `StdRng` here is xoshiro256** seeded through SplitMix64 — a different
//! stream than upstream rand's ChaCha12, but with the same contract the
//! workspace relies on: deterministic, seed-reproducible, and statistically
//! uniform. Everything downstream (weight init, exploration, replay
//! sampling) treats the stream as opaque.

#![warn(missing_docs)]

/// Low-level uniform bit generation.
pub trait RngCore {
    /// The next 32 uniformly random bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    /// The next 64 uniformly random bits.
    fn next_u64(&mut self) -> u64;

    /// Fills `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        let mut chunks = dest.chunks_exact_mut(8);
        for chunk in &mut chunks {
            chunk.copy_from_slice(&self.next_u64().to_le_bytes());
        }
        let rem = chunks.into_remainder();
        if !rem.is_empty() {
            let bytes = self.next_u64().to_le_bytes();
            rem.copy_from_slice(&bytes[..rem.len()]);
        }
    }
}

/// Types that can be sampled uniformly over their whole domain
/// (`rng.gen::<T>()`); the stand-in for rand's `Standard` distribution.
pub trait Standard: Sized {
    /// Draws one value.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for f64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 uniform mantissa bits in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u32() >> 8) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

impl Standard for u64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl Standard for u32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32()
    }
}

impl Standard for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

/// Types usable as `gen_range` bounds; the stand-in for rand's
/// `SampleUniform`.
pub trait SampleUniform: Copy + PartialOrd {
    /// Draws uniformly from `[low, high)`.
    fn sample_range<R: RngCore + ?Sized>(rng: &mut R, low: Self, high: Self) -> Self;
}

macro_rules! impl_sample_uniform_int {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_range<R: RngCore + ?Sized>(rng: &mut R, low: Self, high: Self) -> Self {
                assert!(low < high, "gen_range: empty range");
                let span = (high as i128 - low as i128) as u128;
                // Debiased multiply-shift (Lemire); span is far below 2^64
                // for every integer width we support.
                let mut x = rng.next_u64();
                let mut m = (x as u128).wrapping_mul(span);
                let mut lo = m as u64;
                if (lo as u128) < span {
                    let t = (u64::MAX - (span as u64 - 1)) % span as u64;
                    while lo < t {
                        x = rng.next_u64();
                        m = (x as u128).wrapping_mul(span);
                        lo = m as u64;
                    }
                }
                ((low as i128) + (m >> 64) as i128) as $t
            }
        }
    )*};
}

impl_sample_uniform_int!(usize, u8, u16, u32, u64, i8, i16, i32, i64, isize);

impl SampleUniform for f64 {
    fn sample_range<R: RngCore + ?Sized>(rng: &mut R, low: Self, high: Self) -> Self {
        assert!(low < high, "gen_range: empty range");
        let unit = (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
        low + unit * (high - low)
    }
}

impl SampleUniform for f32 {
    fn sample_range<R: RngCore + ?Sized>(rng: &mut R, low: Self, high: Self) -> Self {
        assert!(low < high, "gen_range: empty range");
        let unit = (rng.next_u32() >> 8) as f32 * (1.0 / (1u32 << 24) as f32);
        low + unit * (high - low)
    }
}

/// User-facing random sampling methods, mirroring `rand::Rng`.
pub trait Rng: RngCore {
    /// Uniform sample over the whole domain of `T`.
    fn gen<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample(self)
    }

    /// Uniform sample from a half-open range.
    fn gen_range<T: SampleUniform>(&mut self, range: core::ops::Range<T>) -> T
    where
        Self: Sized,
    {
        T::sample_range(self, range.start, range.end)
    }

    /// Bernoulli trial with success probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        f64::sample(self) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Seed-constructible generators, mirroring `rand::SeedableRng`.
pub trait SeedableRng: Sized {
    /// The raw seed type.
    type Seed: Default + AsMut<[u8]>;

    /// Builds the generator from a raw seed.
    fn from_seed(seed: Self::Seed) -> Self;

    /// Builds the generator from a `u64` via SplitMix64 key expansion
    /// (the same convention upstream rand uses).
    fn seed_from_u64(mut state: u64) -> Self {
        let mut seed = Self::Seed::default();
        for chunk in seed.as_mut().chunks_mut(8) {
            state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^= z >> 31;
            let bytes = z.to_le_bytes();
            chunk.copy_from_slice(&bytes[..chunk.len()]);
        }
        Self::from_seed(seed)
    }
}

/// Named generator types, mirroring `rand::rngs`.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The workspace's standard generator: xoshiro256**.
    ///
    /// Not the same stream as upstream rand's ChaCha12-based `StdRng`, but
    /// deterministic and seed-reproducible, which is the property every
    /// consumer in this workspace depends on.
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let result = self.s[1]
                .wrapping_mul(5)
                .rotate_left(7)
                .wrapping_mul(9);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }

    impl SeedableRng for StdRng {
        type Seed = [u8; 32];

        fn from_seed(seed: Self::Seed) -> Self {
            let mut s = [0u64; 4];
            for (i, chunk) in seed.chunks_exact(8).enumerate() {
                s[i] = u64::from_le_bytes(chunk.try_into().unwrap());
            }
            // All-zero state is a fixed point of xoshiro; nudge it.
            if s == [0, 0, 0, 0] {
                s = [0x9E37_79B9_7F4A_7C15, 1, 2, 3];
            }
            StdRng { s }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, RngCore, SeedableRng};

    #[test]
    fn deterministic_from_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = StdRng::seed_from_u64(43);
        assert_ne!(a.next_u64(), c.next_u64());
    }

    #[test]
    fn gen_f64_in_unit_interval() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..1000 {
            let x: f64 = rng.gen();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn gen_range_respects_bounds() {
        let mut rng = StdRng::seed_from_u64(2);
        for _ in 0..1000 {
            let i = rng.gen_range(3usize..17);
            assert!((3..17).contains(&i));
            let f = rng.gen_range(-2.5f64..2.5);
            assert!((-2.5..2.5).contains(&f));
            let neg = rng.gen_range(-10i32..-5);
            assert!((-10..-5).contains(&neg));
        }
    }

    #[test]
    fn gen_range_covers_the_domain() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut seen = [false; 8];
        for _ in 0..500 {
            seen[rng.gen_range(0usize..8)] = true;
        }
        assert!(seen.iter().all(|&s| s), "all buckets hit: {seen:?}");
    }

    #[test]
    fn gen_bool_tracks_probability() {
        let mut rng = StdRng::seed_from_u64(4);
        let hits = (0..10_000).filter(|_| rng.gen_bool(0.25)).count();
        assert!((2_000..3_000).contains(&hits), "p=0.25 gave {hits}/10000");
    }

    #[test]
    fn next_u64_mixes_bits() {
        let mut rng = StdRng::seed_from_u64(5);
        let mut ones = 0u32;
        for _ in 0..64 {
            ones += rng.next_u64().count_ones();
        }
        // 64 draws × 64 bits: expect ~2048 ones.
        assert!((1_800..2_300).contains(&ones));
    }
}
