//! Offline stand-in for the `proptest` crate.
//!
//! Provides the subset of the proptest 1.x API this workspace uses — the
//! `proptest!` macro with `ident in strategy` bindings, range and
//! `collection::vec` strategies, `any::<T>()`, `prop_assert!`/
//! `prop_assert_eq!`/`prop_assume!`, and `ProptestConfig::with_cases` —
//! backed by a deterministic random-case runner.
//!
//! Differences from upstream: failing inputs are *not* shrunk (the failing
//! case's seed and values are reported instead), and case generation is
//! fully deterministic per test name, so failures reproduce across runs
//! without a persistence file.

#![warn(missing_docs)]

/// Runner configuration (`#![proptest_config(...)]`).
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of random cases to run per test.
    pub cases: u32,
}

impl ProptestConfig {
    /// A configuration running `cases` random cases.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        // Upstream defaults to 256; 64 keeps the suite quick while still
        // exercising the properties broadly.
        ProptestConfig { cases: 64 }
    }
}

/// Value-generation strategies.
pub mod strategy {
    use rand::rngs::StdRng;
    use rand::{Rng, SampleUniform};

    /// A source of random values of one type.
    pub trait Strategy {
        /// The generated type.
        type Value;

        /// Draws one value.
        fn sample(&self, rng: &mut StdRng) -> Self::Value;

        /// Transforms generated values with `f`.
        fn prop_map<O, F: Fn(Self::Value) -> O>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
        {
            Map { inner: self, f }
        }
    }

    /// Strategy adaptor mapping generated values through a function.
    #[derive(Debug, Clone)]
    pub struct Map<S, F> {
        inner: S,
        f: F,
    }

    impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
        type Value = O;

        fn sample(&self, rng: &mut StdRng) -> O {
            (self.f)(self.inner.sample(rng))
        }
    }

    macro_rules! impl_tuple_strategy {
        ($($s:ident/$v:ident),+) => {
            impl<$($s: Strategy),+> Strategy for ($($s,)+) {
                type Value = ($($s::Value,)+);

                fn sample(&self, rng: &mut StdRng) -> Self::Value {
                    #[allow(non_snake_case)]
                    let ($($v,)+) = self;
                    ($($v.sample(rng),)+)
                }
            }
        };
    }

    impl_tuple_strategy!(S1/a);
    impl_tuple_strategy!(S1/a, S2/b);
    impl_tuple_strategy!(S1/a, S2/b, S3/c);
    impl_tuple_strategy!(S1/a, S2/b, S3/c, S4/d);
    impl_tuple_strategy!(S1/a, S2/b, S3/c, S4/d, S5/e);
    impl_tuple_strategy!(S1/a, S2/b, S3/c, S4/d, S5/e, S6/f);
    impl_tuple_strategy!(S1/a, S2/b, S3/c, S4/d, S5/e, S6/f, S7/g);
    impl_tuple_strategy!(S1/a, S2/b, S3/c, S4/d, S5/e, S6/f, S7/g, S8/h);
    impl_tuple_strategy!(S1/a, S2/b, S3/c, S4/d, S5/e, S6/f, S7/g, S8/h, S9/i);
    impl_tuple_strategy!(S1/a, S2/b, S3/c, S4/d, S5/e, S6/f, S7/g, S8/h, S9/i, S10/j);
    impl_tuple_strategy!(S1/a, S2/b, S3/c, S4/d, S5/e, S6/f, S7/g, S8/h, S9/i, S10/j, S11/k);
    impl_tuple_strategy!(S1/a, S2/b, S3/c, S4/d, S5/e, S6/f, S7/g, S8/h, S9/i, S10/j, S11/k, S12/l);

    impl<T: Clone> Strategy for super::Just<T> {
        type Value = T;

        fn sample(&self, _rng: &mut StdRng) -> T {
            self.0.clone()
        }
    }

    impl<T: SampleUniform> Strategy for core::ops::Range<T> {
        type Value = T;

        fn sample(&self, rng: &mut StdRng) -> T {
            rng.gen_range(self.start..self.end)
        }
    }

    /// Strategy over a type's whole domain (`any::<T>()`).
    #[derive(Debug, Clone, Copy)]
    pub struct Any<T>(core::marker::PhantomData<T>);

    impl<T> Default for Any<T> {
        fn default() -> Self {
            Any(core::marker::PhantomData)
        }
    }

    impl<T: rand::Standard> Strategy for Any<T> {
        type Value = T;

        fn sample(&self, rng: &mut StdRng) -> T {
            rng.gen()
        }
    }
}

/// Whole-domain strategy for `T` (`any::<u64>()`, `any::<bool>()`, …).
pub fn any<T: rand::Standard>() -> strategy::Any<T> {
    strategy::Any::default()
}

/// Strategy that always yields the wrapped value.
#[derive(Debug, Clone, Copy)]
pub struct Just<T>(pub T);

/// Collection strategies.
pub mod collection {
    use super::strategy::Strategy;
    use rand::rngs::StdRng;
    use rand::Rng;

    /// Element-count specification for [`vec()`]: an exact length or a range.
    #[derive(Debug, Clone)]
    pub struct SizeRange {
        lo: usize,
        hi: usize, // exclusive
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange { lo: n, hi: n + 1 }
        }
    }

    impl From<core::ops::Range<usize>> for SizeRange {
        fn from(r: core::ops::Range<usize>) -> Self {
            assert!(r.start < r.end, "empty size range");
            SizeRange { lo: r.start, hi: r.end }
        }
    }

    /// Strategy producing `Vec`s of values drawn from an inner strategy.
    #[derive(Debug, Clone)]
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    /// `Vec` strategy with the given element strategy and length spec.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn sample(&self, rng: &mut StdRng) -> Vec<S::Value> {
            let len = rng.gen_range(self.size.lo..self.size.hi);
            (0..len).map(|_| self.element.sample(rng)).collect()
        }
    }
}

/// The case runner behind the `proptest!` macro.
pub mod test_runner {
    use super::ProptestConfig;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    /// Why a case did not pass.
    #[derive(Debug)]
    pub enum TestCaseError {
        /// An assertion failed: the property is violated.
        Fail(String),
        /// `prop_assume!` rejected the input; try another.
        Reject,
    }

    /// A failed assertion.
    pub fn fail(msg: String) -> TestCaseError {
        TestCaseError::Fail(msg)
    }

    /// Runs up to `cfg.cases` accepted cases of `body`, panicking on the
    /// first failure with the case number (generation is deterministic per
    /// test name, so the report reproduces the failure).
    ///
    /// # Panics
    ///
    /// Panics if a case fails or too many inputs are rejected.
    pub fn run(
        cfg: ProptestConfig,
        name: &str,
        mut body: impl FnMut(&mut StdRng) -> Result<(), TestCaseError>,
    ) {
        // Deterministic per-test seed: FNV-1a over the test name.
        let mut seed: u64 = 0xcbf2_9ce4_8422_2325;
        for b in name.bytes() {
            seed ^= b as u64;
            seed = seed.wrapping_mul(0x100_0000_01b3);
        }
        let mut accepted = 0u32;
        let mut rejected = 0u32;
        let max_rejects = cfg.cases.saturating_mul(16).max(1024);
        let mut case = 0u64;
        while accepted < cfg.cases {
            let mut rng = StdRng::seed_from_u64(seed.wrapping_add(case));
            case += 1;
            match body(&mut rng) {
                Ok(()) => accepted += 1,
                Err(TestCaseError::Reject) => {
                    rejected += 1;
                    assert!(
                        rejected <= max_rejects,
                        "proptest '{name}': too many prop_assume! rejections \
                         ({rejected} rejects for {accepted} accepted cases)"
                    );
                }
                Err(TestCaseError::Fail(msg)) => {
                    panic!(
                        "proptest '{name}' failed at case {} (accepted case {}):\n{msg}",
                        case - 1,
                        accepted
                    );
                }
            }
        }
    }
}

/// Everything the `proptest!` macro body needs in scope.
pub mod prelude {
    pub use super::collection;
    pub use super::strategy::Strategy;
    pub use super::test_runner::TestCaseError;
    pub use super::{any, prop_assert, prop_assert_eq, prop_assume, proptest, Just, ProptestConfig};
}

/// Asserts a property inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !$cond {
            return Err($crate::test_runner::fail(format!($($fmt)*)));
        }
    };
}

/// Asserts equality inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            l == r,
            "assertion failed: `{} == {}`\n  left: {:?}\n right: {:?}",
            stringify!($left),
            stringify!($right),
            l,
            r
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)*) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(l == r, $($fmt)*);
    }};
}

/// Rejects the current input (the runner draws a fresh one).
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !$cond {
            return Err($crate::test_runner::TestCaseError::Reject);
        }
    };
}

/// Declares property tests: each `fn` runs many random cases with its
/// `ident in strategy` bindings freshly sampled per case.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl!($cfg; $($rest)*);
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl!($crate::ProptestConfig::default(); $($rest)*);
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    ($cfg:expr; $(
        $(#[$meta:meta])*
        fn $name:ident($($arg:ident in $strat:expr),* $(,)?) $body:block
    )*) => {$(
        $(#[$meta])*
        fn $name() {
            $crate::test_runner::run($cfg, stringify!($name), |__proptest_rng| {
                $(let $arg = $crate::strategy::Strategy::sample(
                    &($strat),
                    &mut *__proptest_rng,
                );)*
                $body
                Ok(())
            });
        }
    )*};
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #[test]
        fn ranges_stay_in_bounds(x in 10u64..20, f in -1.0f64..1.0) {
            prop_assert!((10..20).contains(&x));
            prop_assert!((-1.0..1.0).contains(&f));
        }

        #[test]
        fn vec_lengths_respect_spec(
            xs in collection::vec(0u8..3, 1..5),
            ys in collection::vec(any::<u64>(), 4),
        ) {
            prop_assert!((1..5).contains(&xs.len()));
            prop_assert_eq!(ys.len(), 4);
            prop_assert!(xs.iter().all(|&v| v < 3));
        }

        #[test]
        fn assume_filters_inputs(x in 0u32..100) {
            prop_assume!(x % 2 == 0);
            prop_assert!(x % 2 == 0);
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(7))]
        #[test]
        fn configured_case_count_accepted(x in any::<bool>()) {
            let _ = x;
        }
    }

    #[test]
    #[should_panic(expected = "failed at case")]
    fn failing_property_panics_with_case_info() {
        crate::test_runner::run(
            crate::ProptestConfig::with_cases(5),
            "always_fails",
            |_| Err(crate::test_runner::fail("nope".into())),
        );
    }
}
