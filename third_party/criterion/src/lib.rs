//! Offline stand-in for the `criterion` crate.
//!
//! Implements the criterion 0.5 API surface used by this workspace's
//! benches (`criterion_group!`/`criterion_main!`, `Criterion`,
//! `benchmark_group`, `bench_function`, `bench_with_input`, `BenchmarkId`,
//! `black_box`, `Bencher::iter`) with a simple wall-clock harness: a short
//! warm-up, then timed batches, reporting the median ns/iteration.
//!
//! No statistical analysis, plots or saved baselines — the point is that
//! `cargo bench` runs offline and prints stable, comparable numbers.

#![warn(missing_docs)]

use std::fmt::Display;
use std::hint;
use std::time::{Duration, Instant};

/// Opaque-value barrier preventing the optimizer from deleting benched code.
pub fn black_box<T>(x: T) -> T {
    hint::black_box(x)
}

/// Identifier for one parameterized benchmark case.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// An id made of a function name and a parameter value.
    pub fn new(function_name: impl Into<String>, parameter: impl Display) -> Self {
        BenchmarkId {
            id: format!("{}/{}", function_name.into(), parameter),
        }
    }

    /// An id from a parameter value alone.
    pub fn from_parameter(parameter: impl Display) -> Self {
        BenchmarkId {
            id: parameter.to_string(),
        }
    }
}

impl Display for BenchmarkId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.id)
    }
}

/// Per-iteration timer handed to benchmark closures.
#[derive(Debug)]
pub struct Bencher {
    /// Median nanoseconds per iteration, filled in by [`Bencher::iter`].
    ns_per_iter: f64,
    measure_time: Duration,
}

impl Bencher {
    /// Times `f`, storing the median ns/iteration across several batches.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        // Warm-up: run until ~10% of the measurement budget elapses, and
        // size one batch so it takes roughly 1/8 of the budget.
        let warmup_budget = self.measure_time / 10;
        let start = Instant::now();
        let mut warm_iters: u64 = 0;
        while start.elapsed() < warmup_budget || warm_iters == 0 {
            black_box(f());
            warm_iters += 1;
        }
        let per_iter = start.elapsed().as_nanos() as f64 / warm_iters as f64;
        let batch_ns = self.measure_time.as_nanos() as f64 / 8.0;
        let batch_iters = ((batch_ns / per_iter.max(1.0)) as u64).max(1);

        let mut samples: Vec<f64> = Vec::new();
        let measure_start = Instant::now();
        while measure_start.elapsed() < self.measure_time || samples.is_empty() {
            let t = Instant::now();
            for _ in 0..batch_iters {
                black_box(f());
            }
            samples.push(t.elapsed().as_nanos() as f64 / batch_iters as f64);
        }
        samples.sort_by(|a, b| a.partial_cmp(b).unwrap());
        self.ns_per_iter = samples[samples.len() / 2];
    }
}

fn format_ns(ns: f64) -> String {
    if ns < 1_000.0 {
        format!("{ns:.1} ns")
    } else if ns < 1_000_000.0 {
        format!("{:.2} µs", ns / 1_000.0)
    } else {
        format!("{:.3} ms", ns / 1_000_000.0)
    }
}

fn run_one(full_name: &str, measure_time: Duration, f: impl FnOnce(&mut Bencher)) {
    let mut b = Bencher {
        ns_per_iter: f64::NAN,
        measure_time,
    };
    f(&mut b);
    if b.ns_per_iter.is_nan() {
        println!("{full_name:<50} (no iter() call)");
    } else {
        println!(
            "{full_name:<50} {:>12}/iter ({:.0} iters/sec)",
            format_ns(b.ns_per_iter),
            1e9 / b.ns_per_iter.max(1e-9),
        );
    }
}

/// A named group of related benchmarks.
#[derive(Debug)]
pub struct BenchmarkGroup<'a> {
    name: String,
    measure_time: Duration,
    _criterion: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Accepted for API compatibility; this harness sizes batches by time,
    /// not sample count.
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    /// Overrides the per-benchmark measurement budget.
    pub fn measurement_time(&mut self, t: Duration) -> &mut Self {
        self.measure_time = t;
        self
    }

    /// Runs one benchmark in the group.
    pub fn bench_function(
        &mut self,
        id: impl Display,
        f: impl FnOnce(&mut Bencher),
    ) -> &mut Self {
        run_one(&format!("{}/{}", self.name, id), self.measure_time, f);
        self
    }

    /// Runs one parameterized benchmark in the group.
    pub fn bench_with_input<I>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        f: impl FnOnce(&mut Bencher, &I),
    ) -> &mut Self {
        run_one(&format!("{}/{}", self.name, id), self.measure_time, |b| {
            f(b, input)
        });
        self
    }

    /// Ends the group (no-op; present for API compatibility).
    pub fn finish(&mut self) {}
}

/// The benchmark harness entry point.
#[derive(Debug)]
pub struct Criterion {
    measure_time: Duration,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            // Short but stable: benches here guard against gross
            // regressions, not microsecond-level drift.
            measure_time: Duration::from_millis(800),
        }
    }
}

impl Criterion {
    /// Opens a named benchmark group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        let measure_time = self.measure_time;
        BenchmarkGroup {
            name: name.into(),
            measure_time,
            _criterion: self,
        }
    }

    /// Runs one stand-alone benchmark.
    pub fn bench_function(
        &mut self,
        name: impl Display,
        f: impl FnOnce(&mut Bencher),
    ) -> &mut Self {
        run_one(&name.to_string(), self.measure_time, f);
        self
    }
}

/// Declares a benchmark group function, criterion-style.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Declares the benchmark binary's `main`, criterion-style.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            // `cargo bench`/`cargo test` pass harness flags (`--bench`,
            // filters); this minimal harness runs everything regardless.
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_measures_something() {
        let mut b = Bencher {
            ns_per_iter: f64::NAN,
            measure_time: Duration::from_millis(30),
        };
        let mut acc = 0u64;
        b.iter(|| {
            acc = acc.wrapping_add(black_box(1));
        });
        assert!(b.ns_per_iter.is_finite());
        assert!(b.ns_per_iter > 0.0);
    }

    #[test]
    fn benchmark_id_formats() {
        assert_eq!(BenchmarkId::from_parameter("x").to_string(), "x");
        assert_eq!(BenchmarkId::new("f", 3).to_string(), "f/3");
    }

    #[test]
    fn group_api_compiles_and_runs() {
        let mut c = Criterion {
            measure_time: Duration::from_millis(10),
        };
        let mut g = c.benchmark_group("g");
        g.sample_size(10);
        g.bench_function("noop", |b| b.iter(|| black_box(2 + 2)));
        g.bench_with_input(BenchmarkId::from_parameter(7), &7, |b, &x| {
            b.iter(|| black_box(x * 2))
        });
        g.finish();
    }
}
