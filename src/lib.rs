//! # ml-noc — reproduction of *"Experiences with ML-Driven Design: A NoC Case Study"* (HPCA 2020)
//!
//! This facade crate re-exports the whole workspace so examples and
//! downstream users can depend on a single crate:
//!
//! * [`noc_sim`] — the cycle-level NoC simulator substrate.
//! * [`noc_arbiters`] — every arbitration policy from the paper.
//! * [`nn_mlp`] — the dense-MLP library backing the DQN agent.
//! * [`rl_arb`] — the deep-Q-learning arbitration agent and its tooling
//!   (the paper's core contribution).
//! * [`apu_sim`] — the heterogeneous CPU+GPU chip model of §4.
//! * [`apu_workloads`] — SynFull-style statistical workload models.
//! * [`hw_cost`] — the analytical Table 3 synthesis model.
//!
//! See the repository `README.md` for a guided tour and `EXPERIMENTS.md`
//! for the paper-vs-measured record of every figure and table.

#![warn(missing_docs)]

pub use apu_sim;
pub use apu_workloads;
pub use hw_cost;
pub use nn_mlp;
pub use noc_arbiters;
pub use noc_sim;
pub use rl_arb;
