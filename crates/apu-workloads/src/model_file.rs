//! Textual "model files" for workload specs.
//!
//! APU-SynFull distributes workloads as model files generated from traces
//! (paper §4.2: "we use APU-SynFull to analyze the trace and generate a
//! model file for each benchmark"). This module gives the reproduction the
//! same currency: a human-editable text format for [`WorkloadSpec`], so
//! users can define custom workloads without recompiling.
//!
//! ```text
//! workload myapp
//! kernel_invalidate true
//! flow markov 6
//! phase ops_per_cu=40 issue_prob=0.2 window=8 store_frac=0.3 \
//!       ifetch_frac=0.1 l2_hit_rate=0.6 l1i_hit_rate=0.95 \
//!       cpu_ops=40 cpu_issue_prob=0.2 llc_hit_rate=0.5 sharing_prob=0.2
//! phase ops_per_cu=10 ...
//! transition 0.5 0.5
//! transition 0.3 0.7
//! ```
//!
//! (`\` line continuations are not supported — each `phase` is one line;
//! they are shown above only to fit the page.)

use std::fmt::Write as _;

use apu_sim::{PhaseFlow, PhaseSpec, WorkloadSpec};

/// Error raised while parsing a model file.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseModelFileError {
    /// 1-based line number.
    pub line: usize,
    /// Explanation.
    pub message: String,
}

impl std::fmt::Display for ParseModelFileError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "model file error at line {}: {}", self.line, self.message)
    }
}

impl std::error::Error for ParseModelFileError {}

fn err(line: usize, message: impl Into<String>) -> ParseModelFileError {
    ParseModelFileError {
        line,
        message: message.into(),
    }
}

/// Serializes a workload spec to the model-file format.
pub fn to_model_file(spec: &WorkloadSpec) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "workload {}", spec.name);
    let _ = writeln!(out, "kernel_invalidate {}", spec.kernel_invalidate);
    match &spec.flow {
        PhaseFlow::Sequence => {
            let _ = writeln!(out, "flow sequence");
        }
        PhaseFlow::Markov { total_visits, .. } => {
            let _ = writeln!(out, "flow markov {total_visits}");
        }
    }
    for p in &spec.phases {
        let _ = writeln!(
            out,
            "phase ops_per_cu={} issue_prob={} window={} store_frac={} ifetch_frac={} \
             l2_hit_rate={} l1i_hit_rate={} cpu_ops={} cpu_issue_prob={} llc_hit_rate={} \
             sharing_prob={}",
            p.ops_per_cu,
            p.issue_prob,
            p.window,
            p.store_frac,
            p.ifetch_frac,
            p.l2_hit_rate,
            p.l1i_hit_rate,
            p.cpu_ops,
            p.cpu_issue_prob,
            p.llc_hit_rate,
            p.sharing_prob
        );
    }
    if let PhaseFlow::Markov { transition, .. } = &spec.flow {
        for row in transition {
            out.push_str("transition");
            for v in row {
                let _ = write!(out, " {v}");
            }
            out.push('\n');
        }
    }
    out
}

fn parse_phase(line: &str, n: usize) -> Result<PhaseSpec, ParseModelFileError> {
    let mut p = PhaseSpec::balanced();
    for field in line.split_whitespace() {
        let (key, value) = field
            .split_once('=')
            .ok_or_else(|| err(n, format!("expected key=value, found '{field}'")))?;
        let fval = || -> Result<f64, ParseModelFileError> {
            value
                .parse()
                .map_err(|_| err(n, format!("bad number '{value}' for {key}")))
        };
        let ival = || -> Result<u64, ParseModelFileError> {
            value
                .parse()
                .map_err(|_| err(n, format!("bad integer '{value}' for {key}")))
        };
        match key {
            "ops_per_cu" => p.ops_per_cu = ival()?,
            "issue_prob" => p.issue_prob = fval()?,
            "window" => p.window = ival()? as usize,
            "store_frac" => p.store_frac = fval()?,
            "ifetch_frac" => p.ifetch_frac = fval()?,
            "l2_hit_rate" => p.l2_hit_rate = fval()?,
            "l1i_hit_rate" => p.l1i_hit_rate = fval()?,
            "cpu_ops" => p.cpu_ops = ival()?,
            "cpu_issue_prob" => p.cpu_issue_prob = fval()?,
            "llc_hit_rate" => p.llc_hit_rate = fval()?,
            "sharing_prob" => p.sharing_prob = fval()?,
            other => return Err(err(n, format!("unknown phase field '{other}'"))),
        }
    }
    Ok(p)
}

/// Parses a model file into a validated workload spec.
///
/// # Errors
///
/// Returns a [`ParseModelFileError`] for syntax problems; parameter-range
/// violations surface through `WorkloadSpec::validate` panics being turned
/// into errors here.
pub fn from_model_file(text: &str) -> Result<WorkloadSpec, ParseModelFileError> {
    let mut name: Option<String> = None;
    let mut kernel_invalidate = true;
    let mut flow_kind: Option<(bool, usize)> = None; // (is_markov, total_visits)
    let mut phases: Vec<PhaseSpec> = Vec::new();
    let mut transitions: Vec<Vec<f64>> = Vec::new();

    for (i, raw) in text.lines().enumerate() {
        let n = i + 1;
        let line = raw.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let (keyword, rest) = line.split_once(char::is_whitespace).unwrap_or((line, ""));
        match keyword {
            "workload" => {
                if rest.trim().is_empty() {
                    return Err(err(n, "workload needs a name"));
                }
                name = Some(rest.trim().to_string());
            }
            "kernel_invalidate" => {
                kernel_invalidate = rest
                    .trim()
                    .parse()
                    .map_err(|_| err(n, "kernel_invalidate expects true/false"))?;
            }
            "flow" => {
                let mut parts = rest.split_whitespace();
                match parts.next() {
                    Some("sequence") => flow_kind = Some((false, 0)),
                    Some("markov") => {
                        let visits: usize = parts
                            .next()
                            .and_then(|v| v.parse().ok())
                            .ok_or_else(|| err(n, "flow markov needs a visit count"))?;
                        flow_kind = Some((true, visits));
                    }
                    _ => return Err(err(n, "flow must be 'sequence' or 'markov <visits>'")),
                }
            }
            "phase" => phases.push(parse_phase(rest, n)?),
            "transition" => {
                let row: Result<Vec<f64>, _> = rest
                    .split_whitespace()
                    .map(|t| t.parse::<f64>().map_err(|_| err(n, format!("bad probability '{t}'"))))
                    .collect();
                transitions.push(row?);
            }
            other => return Err(err(n, format!("unknown keyword '{other}'"))),
        }
    }

    let name = name.ok_or_else(|| err(0, "missing 'workload <name>' line"))?;
    if phases.is_empty() {
        return Err(err(0, "model file defines no phases"));
    }
    let flow = match flow_kind.unwrap_or((false, 0)) {
        (false, _) => {
            if !transitions.is_empty() {
                return Err(err(0, "transition rows given for a sequence flow"));
            }
            PhaseFlow::Sequence
        }
        (true, visits) => PhaseFlow::Markov {
            transition: transitions,
            total_visits: visits,
        },
    };
    let spec = WorkloadSpec {
        name,
        phases,
        flow,
        kernel_invalidate,
    };
    // Convert validation panics into parse errors.
    match std::panic::catch_unwind(|| spec.validate()) {
        Ok(()) => Ok(spec),
        Err(panic) => {
            let msg = panic
                .downcast_ref::<String>()
                .cloned()
                .or_else(|| panic.downcast_ref::<&str>().map(|s| s.to_string()))
                .unwrap_or_else(|| "invalid workload parameters".into());
            Err(err(0, msg))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Benchmark;

    #[test]
    fn every_builtin_benchmark_roundtrips() {
        for b in Benchmark::ALL {
            let spec = b.spec();
            let text = to_model_file(&spec);
            let back = from_model_file(&text).unwrap_or_else(|e| panic!("{b}: {e}"));
            assert_eq!(spec, back, "{b} did not roundtrip");
        }
    }

    #[test]
    fn minimal_hand_written_file_parses() {
        let text = "\
# a comment
workload demo
flow sequence
phase ops_per_cu=5 issue_prob=0.1
";
        let spec = from_model_file(text).unwrap();
        assert_eq!(spec.name, "demo");
        assert_eq!(spec.phases.len(), 1);
        assert_eq!(spec.phases[0].ops_per_cu, 5);
        // Unspecified fields take the balanced defaults.
        assert_eq!(spec.phases[0].window, PhaseSpec::balanced().window);
    }

    #[test]
    fn markov_file_parses_with_transitions() {
        let text = "\
workload m
flow markov 4
phase ops_per_cu=2
phase ops_per_cu=3
transition 0.5 0.5
transition 1.0 0.0
";
        let spec = from_model_file(text).unwrap();
        match spec.flow {
            PhaseFlow::Markov { transition, total_visits } => {
                assert_eq!(total_visits, 4);
                assert_eq!(transition.len(), 2);
            }
            _ => panic!("expected markov flow"),
        }
    }

    #[test]
    fn unknown_keyword_is_an_error() {
        let e = from_model_file("workload x\nbanana 7\nphase ops_per_cu=1\n").unwrap_err();
        assert_eq!(e.line, 2);
        assert!(e.message.contains("banana"));
    }

    #[test]
    fn unknown_phase_field_is_an_error() {
        let e = from_model_file("workload x\nphase turbo=9\n").unwrap_err();
        assert!(e.message.contains("turbo"));
    }

    #[test]
    fn invalid_parameters_are_reported_not_panicked() {
        let e = from_model_file("workload x\nphase issue_prob=1.5\n").unwrap_err();
        assert!(e.message.contains("issue_prob"), "{e}");
    }

    #[test]
    fn sequence_with_transitions_is_rejected() {
        let text = "workload x\nflow sequence\nphase ops_per_cu=1\ntransition 1.0\n";
        let e = from_model_file(text).unwrap_err();
        assert!(e.message.contains("sequence"));
    }

    #[test]
    fn missing_name_is_rejected() {
        let e = from_model_file("phase ops_per_cu=1\n").unwrap_err();
        assert!(e.message.contains("workload"));
    }
}
