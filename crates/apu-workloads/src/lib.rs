//! # apu-workloads — SynFull-substitute benchmark models
//!
//! The paper drives its APU with APU-SynFull statistical models of nine
//! traffic-intensive GPU applications (Table 1). The original model files
//! are derived from proprietary gem5 traces we cannot obtain, so this crate
//! provides statistical programs with per-benchmark parameters chosen to
//! span the same qualitative space the paper describes:
//!
//! | Benchmark | Suite | Character | Injection class |
//! |---|---|---|---|
//! | `dct` | AMD SDK | streaming, cache-friendly | high |
//! | `histogram` | AMD SDK | store/atomic heavy, serialized | low |
//! | `matrixmul` | AMD SDK | high reuse, bursty | high |
//! | `reduction` | AMD SDK | tree phases of shrinking size | low |
//! | `spmv` | OpenDwarfs | irregular, memory-bound | high |
//! | `bfs` | Rodinia | level-synchronous, irregular (Markov phases) | high |
//! | `hotspot` | Rodinia | stencil, good locality | low |
//! | `comd` | ECP proxy | neighbor exchange, compute + memory | high |
//! | `minife` | ECP proxy | FEM solve, moderate memory-bound | low |
//!
//! Every model is a [`WorkloadSpec`] (phase machine) for the `apu-sim`
//! engine. The high/low-injection split drives the paper's Fig. 11
//! mixed-workload study.

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

use apu_sim::{PhaseFlow, PhaseSpec, WorkloadSpec, NUM_QUADRANTS};
use noc_sim::SplitMix64;

mod model_file;

pub use model_file::{from_model_file, to_model_file, ParseModelFileError};

/// Injection-intensity class used by the Fig. 11 mixed-workload study
/// (threshold 0.05 flits/cycle/node in the paper).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum InjectionClass {
    /// Offered load above the paper's 0.05 flit/cycle/node threshold.
    High,
    /// Offered load below the threshold.
    Low,
}

/// The nine benchmarks of the paper's Table 1.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Benchmark {
    /// AMD SDK discrete cosine transform.
    Dct,
    /// AMD SDK histogram.
    Histogram,
    /// AMD SDK dense matrix multiply.
    Matrixmul,
    /// AMD SDK parallel reduction.
    Reduction,
    /// OpenDwarfs sparse matrix-vector multiply.
    Spmv,
    /// Rodinia breadth-first search.
    Bfs,
    /// Rodinia HotSpot thermal stencil.
    Hotspot,
    /// ECP proxy molecular dynamics (CoMD).
    Comd,
    /// ECP proxy finite-element mini-app (miniFE).
    MiniFe,
}

impl Benchmark {
    /// All nine benchmarks in Table 1 order.
    pub const ALL: [Benchmark; 9] = [
        Benchmark::Dct,
        Benchmark::Histogram,
        Benchmark::Matrixmul,
        Benchmark::Reduction,
        Benchmark::Spmv,
        Benchmark::Bfs,
        Benchmark::Hotspot,
        Benchmark::Comd,
        Benchmark::MiniFe,
    ];

    /// Canonical lowercase name.
    pub fn name(self) -> &'static str {
        match self {
            Benchmark::Dct => "dct",
            Benchmark::Histogram => "histogram",
            Benchmark::Matrixmul => "matrixmul",
            Benchmark::Reduction => "reduction",
            Benchmark::Spmv => "spmv",
            Benchmark::Bfs => "bfs",
            Benchmark::Hotspot => "hotspot",
            Benchmark::Comd => "comd",
            Benchmark::MiniFe => "minife",
        }
    }

    /// Injection class for the Fig. 11 grouping.
    pub fn injection_class(self) -> InjectionClass {
        match self {
            Benchmark::Dct
            | Benchmark::Matrixmul
            | Benchmark::Spmv
            | Benchmark::Bfs
            | Benchmark::Comd => InjectionClass::High,
            Benchmark::Histogram
            | Benchmark::Reduction
            | Benchmark::Hotspot
            | Benchmark::MiniFe => InjectionClass::Low,
        }
    }

    /// The benchmarks in a given class.
    pub fn in_class(class: InjectionClass) -> Vec<Benchmark> {
        Benchmark::ALL
            .iter()
            .copied()
            .filter(|b| b.injection_class() == class)
            .collect()
    }

    /// The full-size statistical model.
    pub fn spec(self) -> WorkloadSpec {
        self.spec_scaled(1.0)
    }

    /// The model with operation counts scaled by `scale` (0 < scale ≤ 1 for
    /// faster CI runs; counts are floored at one op).
    ///
    /// # Panics
    ///
    /// Panics if `scale` is not positive.
    pub fn spec_scaled(self, scale: f64) -> WorkloadSpec {
        assert!(scale > 0.0, "scale must be positive");
        let ops = |n: u64| ((n as f64 * scale).round() as u64).max(1);
        // Base phase tuned per benchmark; all derive from `balanced()` so a
        // change to the default propagates everywhere.
        let base = PhaseSpec::balanced;
        match self {
            Benchmark::Dct => WorkloadSpec {
                name: "dct".into(),
                phases: vec![PhaseSpec {
                    ops_per_cu: ops(120),
                    issue_prob: 0.45,
                    window: 12,
                    store_frac: 0.25,
                    ifetch_frac: 0.05,
                    l2_hit_rate: 0.75,
                    cpu_ops: ops(30),
                    cpu_issue_prob: 0.10,
                    llc_hit_rate: 0.7,
                    sharing_prob: 0.10,
                    ..base()
                }],
                flow: PhaseFlow::Sequence,
                kernel_invalidate: true,
            },
            Benchmark::Histogram => WorkloadSpec {
                name: "histogram".into(),
                phases: vec![PhaseSpec {
                    ops_per_cu: ops(60),
                    issue_prob: 0.06,
                    window: 4,
                    store_frac: 0.55,
                    ifetch_frac: 0.05,
                    l2_hit_rate: 0.5,
                    cpu_ops: ops(20),
                    cpu_issue_prob: 0.05,
                    llc_hit_rate: 0.6,
                    sharing_prob: 0.15,
                    ..base()
                }],
                flow: PhaseFlow::Sequence,
                kernel_invalidate: true,
            },
            Benchmark::Matrixmul => WorkloadSpec {
                name: "matrixmul".into(),
                phases: vec![
                    PhaseSpec {
                        ops_per_cu: ops(80),
                        issue_prob: 0.50,
                        window: 16,
                        store_frac: 0.10,
                        ifetch_frac: 0.05,
                        l2_hit_rate: 0.85,
                        cpu_ops: ops(20),
                        cpu_issue_prob: 0.08,
                        llc_hit_rate: 0.8,
                        sharing_prob: 0.05,
                        ..base()
                    },
                    PhaseSpec {
                        // Write-back phase: result tiles stream out.
                        ops_per_cu: ops(40),
                        issue_prob: 0.40,
                        window: 12,
                        store_frac: 0.70,
                        ifetch_frac: 0.02,
                        l2_hit_rate: 0.6,
                        cpu_ops: ops(10),
                        cpu_issue_prob: 0.05,
                        llc_hit_rate: 0.8,
                        sharing_prob: 0.05,
                        ..base()
                    },
                ],
                flow: PhaseFlow::Sequence,
                kernel_invalidate: true,
            },
            Benchmark::Reduction => WorkloadSpec {
                name: "reduction".into(),
                // Tree reduction: each phase half the work of the previous.
                phases: (0..4)
                    .map(|level| PhaseSpec {
                        ops_per_cu: ops(48 >> level),
                        issue_prob: 0.08,
                        window: 6,
                        store_frac: 0.4,
                        ifetch_frac: 0.05,
                        l2_hit_rate: 0.6,
                        cpu_ops: ops(8),
                        cpu_issue_prob: 0.04,
                        llc_hit_rate: 0.6,
                        sharing_prob: 0.1,
                        ..base()
                    })
                    .collect(),
                flow: PhaseFlow::Sequence,
                kernel_invalidate: true,
            },
            Benchmark::Spmv => WorkloadSpec {
                name: "spmv".into(),
                phases: vec![PhaseSpec {
                    ops_per_cu: ops(100),
                    issue_prob: 0.40,
                    window: 16,
                    store_frac: 0.15,
                    ifetch_frac: 0.08,
                    l2_hit_rate: 0.30, // sparse: poor locality
                    cpu_ops: ops(30),
                    cpu_issue_prob: 0.10,
                    llc_hit_rate: 0.4,
                    sharing_prob: 0.20,
                    ..base()
                }],
                flow: PhaseFlow::Sequence,
                kernel_invalidate: true,
            },
            Benchmark::Bfs => WorkloadSpec {
                name: "bfs".into(),
                // Level-synchronous frontier expansion/contraction as a
                // Markov chain over small/large frontier phases.
                phases: vec![
                    PhaseSpec {
                        // Small frontier.
                        ops_per_cu: ops(20),
                        issue_prob: 0.25,
                        window: 8,
                        store_frac: 0.20,
                        ifetch_frac: 0.10,
                        l2_hit_rate: 0.35,
                        cpu_ops: ops(10),
                        cpu_issue_prob: 0.08,
                        llc_hit_rate: 0.5,
                        sharing_prob: 0.25,
                        ..base()
                    },
                    PhaseSpec {
                        // Large frontier.
                        ops_per_cu: ops(60),
                        issue_prob: 0.50,
                        window: 16,
                        store_frac: 0.25,
                        ifetch_frac: 0.10,
                        l2_hit_rate: 0.30,
                        cpu_ops: ops(15),
                        cpu_issue_prob: 0.10,
                        llc_hit_rate: 0.5,
                        sharing_prob: 0.25,
                        ..base()
                    },
                ],
                flow: PhaseFlow::Markov {
                    transition: vec![vec![0.3, 0.7], vec![0.5, 0.5]],
                    total_visits: 4,
                },
                kernel_invalidate: true,
            },
            Benchmark::Hotspot => WorkloadSpec {
                name: "hotspot".into(),
                phases: vec![
                    PhaseSpec {
                        ops_per_cu: ops(50),
                        issue_prob: 0.07,
                        window: 6,
                        store_frac: 0.3,
                        ifetch_frac: 0.05,
                        l2_hit_rate: 0.8, // stencil reuse
                        cpu_ops: ops(15),
                        cpu_issue_prob: 0.05,
                        llc_hit_rate: 0.7,
                        sharing_prob: 0.08,
                        ..base()
                    };
                    2 // two stencil sweeps
                ],
                flow: PhaseFlow::Sequence,
                kernel_invalidate: true,
            },
            Benchmark::Comd => WorkloadSpec {
                name: "comd".into(),
                phases: vec![
                    PhaseSpec {
                        // Force computation: neighbor-list gathers.
                        ops_per_cu: ops(90),
                        issue_prob: 0.38,
                        window: 12,
                        store_frac: 0.20,
                        ifetch_frac: 0.08,
                        l2_hit_rate: 0.55,
                        cpu_ops: ops(40),
                        cpu_issue_prob: 0.15,
                        llc_hit_rate: 0.6,
                        sharing_prob: 0.30, // halo exchange sharing
                        ..base()
                    },
                    PhaseSpec {
                        // Position update: streaming writes.
                        ops_per_cu: ops(30),
                        issue_prob: 0.30,
                        window: 8,
                        store_frac: 0.60,
                        ifetch_frac: 0.05,
                        l2_hit_rate: 0.7,
                        cpu_ops: ops(10),
                        cpu_issue_prob: 0.08,
                        llc_hit_rate: 0.6,
                        sharing_prob: 0.15,
                        ..base()
                    },
                ],
                flow: PhaseFlow::Sequence,
                kernel_invalidate: true,
            },
            Benchmark::MiniFe => WorkloadSpec {
                name: "minife".into(),
                phases: vec![
                    PhaseSpec {
                        // Assembly.
                        ops_per_cu: ops(40),
                        issue_prob: 0.06,
                        window: 6,
                        store_frac: 0.45,
                        ifetch_frac: 0.06,
                        l2_hit_rate: 0.55,
                        cpu_ops: ops(30),
                        cpu_issue_prob: 0.08,
                        llc_hit_rate: 0.55,
                        sharing_prob: 0.20,
                        ..base()
                    },
                    PhaseSpec {
                        // CG solve: repeated sparse ops.
                        ops_per_cu: ops(60),
                        issue_prob: 0.08,
                        window: 8,
                        store_frac: 0.20,
                        ifetch_frac: 0.06,
                        l2_hit_rate: 0.45,
                        cpu_ops: ops(30),
                        cpu_issue_prob: 0.08,
                        llc_hit_rate: 0.5,
                        sharing_prob: 0.20,
                        ..base()
                    },
                ],
                flow: PhaseFlow::Sequence,
                kernel_invalidate: true,
            },
        }
    }
}

impl std::fmt::Display for Benchmark {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// Builds a Fig. 11 mixed scenario: `n_low` low-injection and
/// `4 − n_low` high-injection benchmarks, drawn deterministically from the
/// classes (preferring distinct apps), scaled by `scale`.
///
/// # Panics
///
/// Panics if `n_low > 4`.
pub fn mixed_scenario(n_low: usize, seed: u64, scale: f64) -> Vec<WorkloadSpec> {
    assert!(n_low <= NUM_QUADRANTS, "at most four low-injection slots");
    let mut rng = SplitMix64::new(seed);
    let mut used: Vec<Benchmark> = Vec::new();
    let pick = |class: InjectionClass, used: &mut Vec<Benchmark>, rng: &mut SplitMix64| {
        let pool = Benchmark::in_class(class);
        let fresh: Vec<Benchmark> = pool
            .iter()
            .copied()
            .filter(|b| !used.contains(b))
            .collect();
        let from = if fresh.is_empty() { &pool } else { &fresh };
        let b = from[rng.next_bounded(from.len() as u64) as usize];
        used.push(b);
        b
    };
    let mut specs = Vec::with_capacity(NUM_QUADRANTS);
    for _ in 0..n_low {
        specs.push(pick(InjectionClass::Low, &mut used, &mut rng).spec_scaled(scale));
    }
    for _ in n_low..NUM_QUADRANTS {
        specs.push(pick(InjectionClass::High, &mut used, &mut rng).spec_scaled(scale));
    }
    specs
}

/// The label the paper uses for a mix ("2L2H" = two low + two high).
pub fn mix_label(n_low: usize) -> String {
    format!("{}L{}H", n_low, NUM_QUADRANTS - n_low)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_specs_validate() {
        for b in Benchmark::ALL {
            b.spec().validate();
            b.spec_scaled(0.1).validate();
        }
    }

    #[test]
    fn names_are_unique_and_lowercase() {
        let mut names: Vec<&str> = Benchmark::ALL.iter().map(|b| b.name()).collect();
        assert!(names.iter().all(|n| n.chars().all(|c| c.is_ascii_lowercase())));
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), 9);
    }

    #[test]
    fn injection_classes_split_five_four() {
        assert_eq!(Benchmark::in_class(InjectionClass::High).len(), 5);
        assert_eq!(Benchmark::in_class(InjectionClass::Low).len(), 4);
    }

    #[test]
    fn class_estimate_orders_high_above_low() {
        // Every high-injection benchmark's estimated peak offered load
        // exceeds every low-injection benchmark's.
        let peak = |b: Benchmark| b.spec().peak_injection_estimate();
        let min_high = Benchmark::in_class(InjectionClass::High)
            .into_iter()
            .map(peak)
            .fold(f64::INFINITY, f64::min);
        let max_low = Benchmark::in_class(InjectionClass::Low)
            .into_iter()
            .map(peak)
            .fold(0.0, f64::max);
        assert!(
            min_high > max_low,
            "classes overlap: min(high)={min_high:.3} max(low)={max_low:.3}"
        );
    }

    #[test]
    fn high_class_exceeds_paper_threshold() {
        for b in Benchmark::in_class(InjectionClass::High) {
            assert!(
                b.spec().peak_injection_estimate() > 0.05,
                "{b} estimate below 0.05"
            );
        }
    }

    #[test]
    fn scaling_shrinks_op_counts_but_not_structure() {
        let full = Benchmark::Dct.spec();
        let small = Benchmark::Dct.spec_scaled(0.1);
        assert_eq!(full.phases.len(), small.phases.len());
        assert!(small.phases[0].ops_per_cu < full.phases[0].ops_per_cu);
        assert!(small.phases[0].ops_per_cu >= 1);
        assert_eq!(full.phases[0].issue_prob, small.phases[0].issue_prob);
    }

    #[test]
    fn mixed_scenarios_have_requested_composition() {
        for n_low in 0..=4 {
            let specs = mixed_scenario(n_low, 42, 0.2);
            assert_eq!(specs.len(), 4);
            let low_count = specs
                .iter()
                .filter(|s| {
                    Benchmark::ALL
                        .iter()
                        .find(|b| b.name() == s.name)
                        .map(|b| b.injection_class() == InjectionClass::Low)
                        .unwrap()
                })
                .count();
            assert_eq!(low_count, n_low, "{}", mix_label(n_low));
        }
    }

    #[test]
    fn mixed_scenarios_prefer_distinct_benchmarks() {
        let specs = mixed_scenario(2, 7, 0.2);
        let mut names: Vec<&str> = specs.iter().map(|s| s.name.as_str()).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), 4, "expected four distinct benchmarks");
    }

    #[test]
    fn mix_labels_match_paper_notation() {
        assert_eq!(mix_label(0), "0L4H");
        assert_eq!(mix_label(2), "2L2H");
        assert_eq!(mix_label(4), "4L0H");
    }

    #[test]
    #[should_panic(expected = "at most four")]
    fn oversized_mix_rejected() {
        mixed_scenario(5, 0, 1.0);
    }

    #[test]
    fn markov_bfs_has_valid_transitions() {
        let spec = Benchmark::Bfs.spec();
        assert!(matches!(spec.flow, PhaseFlow::Markov { .. }));
        spec.validate();
    }
}
