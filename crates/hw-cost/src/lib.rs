//! # hw-cost — analytical synthesis model for the paper's Table 3
//!
//! The paper evaluates hardware cost with Synopsys Design Compiler at a
//! 32 nm node, comparing three designs for a 6-port router:
//!
//! | | Agent NN | Round-robin | Proposed arbiter |
//! |---|---|---|---|
//! | Latency | 8.17 ns | 0.89 ns | 1.10 ns (0.18 + 0.92) |
//! | Area | 1.2344 mm² | 0.0012 mm² | 0.0044 mm² |
//! | Power | 63.67 mW | 0.07 mW | 0.27 mW |
//!
//! We cannot run commercial synthesis, so this crate substitutes a
//! structural gate-counting model: each design is decomposed into the
//! circuits the paper describes (INT8 MAC array + weight SRAM for the NN;
//! pointer + priority encoder for round-robin; P-blocks + select-max tree
//! for the Fig. 8 arbiter), and gate counts are multiplied by 32 nm
//! standard-cell constants. The constants are calibrated so the *relations*
//! the paper draws survive: the NN is orders of magnitude larger and
//! hungrier than either arbiter and misses a 1 GHz cycle by a wide margin;
//! the proposed arbiter is a few× round-robin and meets timing once its
//! priority computation is overlapped with route computation (§4.8).

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod gates;

pub use gates::{
    build_algorithm2_pblock, build_select_max, measure_fig8_arbiter, MeasuredArbiter, Netlist,
    PBlockPorts, Wire,
};

use nn_mlp::QuantizedMlp;

/// 32 nm standard-cell and SRAM constants (NAND2-equivalent units).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TechNode {
    /// Area of one NAND2-equivalent gate, µm².
    pub gate_area_um2: f64,
    /// Delay of one gate level, ns.
    pub gate_delay_ns: f64,
    /// Average per-gate power at nominal activity, mW.
    pub gate_power_mw: f64,
    /// SRAM bit-cell area, µm².
    pub sram_bit_area_um2: f64,
    /// Energy of one INT8 multiply-accumulate, pJ.
    pub mac_energy_pj: f64,
    /// Target clock for timing checks, GHz (paper: a 1 GHz NoC).
    pub clock_ghz: f64,
}

impl TechNode {
    /// The calibrated 32 nm node used for Table 3.
    pub fn nm32() -> Self {
        TechNode {
            gate_area_um2: 1.2,
            gate_delay_ns: 0.08,
            gate_power_mw: 0.000_065,
            sram_bit_area_um2: 0.17,
            mac_energy_pj: 0.19,
            clock_ghz: 1.0,
        }
    }
}

impl Default for TechNode {
    fn default() -> Self {
        TechNode::nm32()
    }
}

/// Synthesis estimate for one design.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CostReport {
    /// Combinational latency of one decision/inference, ns.
    pub latency_ns: f64,
    /// Area, mm².
    pub area_mm2: f64,
    /// Power, mW.
    pub power_mw: f64,
    /// NAND2-equivalent gate count (excluding SRAM).
    pub gates: f64,
    /// Whether the *critical-path contribution to the router pipeline*
    /// fits in one clock at [`TechNode::clock_ghz`].
    pub meets_timing: bool,
}

/// Ceil of log2 for sizing comparator/encoder trees.
fn clog2(n: usize) -> f64 {
    (n.max(2) as f64).log2().ceil()
}

/// Cost of a round-robin arbiter over `requesters` input buffers:
/// a rotating pointer, thermometer mask, and two priority encoders.
///
/// # Panics
///
/// Panics if `requesters < 2`.
pub fn cost_round_robin(requesters: usize, tech: &TechNode) -> CostReport {
    assert!(requesters >= 2, "arbiter needs at least two requesters");
    // Pointer register + mask generation + dual priority encoders + grant
    // muxing ≈ 25 gates per requester.
    let gates = 25.0 * requesters as f64;
    // Two cascaded priority-encode levels of depth log2(n).
    let latency = 2.0 * clog2(requesters) * tech.gate_delay_ns;
    finish(gates, 0.0, latency, tech, latency)
}

/// Cost of the paper's proposed arbiter (Fig. 8): per-buffer P-blocks
/// (AND of LA MSBs, conditional XOR inversion of HC, shift, mux) feeding a
/// select-max comparator tree, plus the 5-bit local-age counters added to
/// each input buffer (§4.8).
///
/// The P-block / select-max latency split is available via
/// [`rl_inspired_latency_split`].
///
/// # Panics
///
/// Panics if `requesters < 2`.
pub fn cost_rl_inspired(requesters: usize, tech: &TechNode) -> CostReport {
    assert!(requesters >= 2, "arbiter needs at least two requesters");
    let (p_ns, max_ns) = rl_inspired_latency_split(requesters, tech);
    // P-block: ~30 gates (XOR bank, AND, shifter wiring, output mux).
    let p_gates = 30.0 * requesters as f64;
    // Select-max: n−1 comparator+mux nodes of 6-bit width ≈ 30 gates each.
    let tree_gates = 30.0 * (requesters as f64 - 1.0);
    // 5-bit saturating LA counter per buffer ≈ 40 gates, plus a 4-bit HC
    // field increment shared at the router ≈ 20 gates.
    let counter_gates = 40.0 * requesters as f64 + 20.0;
    let gates = p_gates + tree_gates + counter_gates;
    // Priority computation overlaps route computation / VC allocation
    // (§4.8), so only the select-max stage sits on the arbitration path.
    let pipeline_path = max_ns;
    finish(gates, 0.0, p_ns + max_ns, tech, pipeline_path)
}

/// The proposed arbiter's latency split: `(priority_compute, select_max)`
/// in ns — the paper reports 0.18 + 0.92.
pub fn rl_inspired_latency_split(requesters: usize, tech: &TechNode) -> (f64, f64) {
    // P-block: XOR invert → shift (wiring) → mux ≈ 2.3 gate levels.
    let p = 2.3 * tech.gate_delay_ns;
    // Tree of depth ⌈log2 n⌉, each node a 6-bit comparator + mux ≈ 2 levels.
    let m = clog2(requesters) * 2.0 * tech.gate_delay_ns;
    (p, m)
}

/// Cost of the INT8 agent-inference engine for a quantized network,
/// "largely parallelized at the cost of larger area and power" (§4.8):
/// `parallel_macs` INT8 MAC units working through the network's
/// multiply-accumulates, with weights held in on-chip SRAM.
///
/// # Panics
///
/// Panics if `parallel_macs == 0`.
pub fn cost_nn_inference(net: &QuantizedMlp, parallel_macs: usize, tech: &TechNode) -> CostReport {
    assert!(parallel_macs > 0, "need at least one MAC unit");
    let total_macs = net.total_macs() as f64;
    // INT8 multiplier + 20-bit accumulator ≈ 300 NAND2-equivalents.
    let mac_gates = 300.0 * parallel_macs as f64;
    // Control, operand routing, activation units: 50% overhead.
    let gates = mac_gates * 1.5;
    // Weight SRAM: 8 bits per weight.
    let sram_bits = total_macs * 8.0;
    let sram_area_mm2 = sram_bits * tech.sram_bit_area_um2 / 1e6;
    // One MAC wave per cycle; conservative MAC-array cycle (multiplier +
    // accumulate + operand fetch ≈ 7.5 gate levels), plus pipeline fill.
    let mac_cycle_ns = 7.5 * tech.gate_delay_ns;
    let cycles = (total_macs / parallel_macs as f64).ceil() + 2.0;
    let latency = cycles * mac_cycle_ns;
    // Power: MAC energy at the achieved throughput, derated by a 0.1
    // arbitration duty cycle (the agent is only queried for contended
    // ports), plus gate leakage/clocking.
    let macs_per_s = total_macs / (latency * 1e-9);
    let duty = 0.1;
    let dynamic_mw = macs_per_s * tech.mac_energy_pj * 1e-12 * duty * 1e3;
    let mut report = finish(gates, sram_area_mm2, latency, tech, latency);
    report.power_mw += dynamic_mw;
    report
}

/// Cost of the INT8 inference engine for an `inputs → hidden → actions`
/// agent network, built from the architecture alone — the design-space
/// search's hardware objective. Weights are irrelevant to synthesis cost
/// (gate count and SRAM size depend only on the layer shapes), so the
/// network is instantiated with a fixed seed and handed to
/// [`cost_nn_inference`].
///
/// ```
/// use hw_cost::{cost_agent_inference, TechNode};
/// let small = cost_agent_inference(60, 15, 15, 128, &TechNode::nm32());
/// let large = cost_agent_inference(100, 15, 25, 128, &TechNode::nm32());
/// assert!(large.gates >= small.gates);
/// assert!(large.area_mm2 > small.area_mm2); // more weights ⇒ more SRAM
/// ```
///
/// # Panics
///
/// Panics if any layer dimension or `parallel_macs` is zero.
pub fn cost_agent_inference(
    inputs: usize,
    hidden: usize,
    actions: usize,
    parallel_macs: usize,
    tech: &TechNode,
) -> CostReport {
    assert!(inputs > 0 && hidden > 0 && actions > 0, "degenerate network shape");
    let net = QuantizedMlp::from_mlp(&nn_mlp::Mlp::paper_agent(inputs, hidden, actions, 0));
    cost_nn_inference(&net, parallel_macs, tech)
}

fn finish(
    gates: f64,
    extra_area_mm2: f64,
    latency_ns: f64,
    tech: &TechNode,
    pipeline_path_ns: f64,
) -> CostReport {
    CostReport {
        latency_ns,
        area_mm2: gates * tech.gate_area_um2 / 1e6 + extra_area_mm2,
        power_mw: gates * tech.gate_power_mw,
        gates,
        meets_timing: pipeline_path_ns <= 1.0 / tech.clock_ghz,
    }
}

/// One row of the reproduced Table 3.
#[derive(Debug, Clone, PartialEq)]
pub struct Table3Row {
    /// Design name.
    pub design: String,
    /// The estimate.
    pub report: CostReport,
}

/// Reproduces Table 3 for a 6-port, 7-VC router (42 input buffers) and the
/// paper's 504→42→42 agent network.
///
/// ```
/// use hw_cost::{table3, TechNode};
/// let rows = table3(&TechNode::nm32());
/// assert_eq!(rows.len(), 3);
/// assert!(rows[0].report.area_mm2 > rows[1].report.area_mm2);
/// ```
pub fn table3(tech: &TechNode) -> Vec<Table3Row> {
    let requesters = 6 * 7;
    let net = QuantizedMlp::from_mlp(&nn_mlp::Mlp::paper_agent(504, 42, 42, 0));
    vec![
        Table3Row {
            design: "Agent NN".into(),
            report: cost_nn_inference(&net, 2048, tech),
        },
        Table3Row {
            design: "Round-robin".into(),
            report: cost_round_robin(requesters, tech),
        },
        Table3Row {
            design: "Proposed Arbiter".into(),
            report: cost_rl_inspired(requesters, tech),
        },
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t3() -> Vec<Table3Row> {
        table3(&TechNode::nm32())
    }

    #[test]
    fn table3_preserves_the_papers_ordering() {
        let rows = t3();
        let nn = &rows[0].report;
        let rr = &rows[1].report;
        let rl = &rows[2].report;
        // NN dwarfs both arbiters in every dimension.
        assert!(nn.area_mm2 > 100.0 * rl.area_mm2);
        assert!(nn.power_mw > 50.0 * rl.power_mw);
        assert!(nn.latency_ns > 5.0 * rl.latency_ns);
        // Proposed arbiter costs a few× round-robin but the same order.
        assert!(rl.area_mm2 > rr.area_mm2);
        assert!(rl.area_mm2 < 10.0 * rr.area_mm2);
        assert!(rl.power_mw > rr.power_mw);
        assert!(rl.power_mw < 10.0 * rr.power_mw);
    }

    #[test]
    fn magnitudes_are_in_the_papers_ballpark() {
        let rows = t3();
        let nn = &rows[0].report;
        let rr = &rows[1].report;
        let rl = &rows[2].report;
        // Paper: 8.17 ns / 1.2344 mm² / 63.67 mW.
        assert!((4.0..16.0).contains(&nn.latency_ns), "nn latency {}", nn.latency_ns);
        assert!((0.4..4.0).contains(&nn.area_mm2), "nn area {}", nn.area_mm2);
        assert!((20.0..200.0).contains(&nn.power_mw), "nn power {}", nn.power_mw);
        // Paper: 0.89 ns / 0.0012 mm² / 0.07 mW.
        assert!((0.4..1.8).contains(&rr.latency_ns), "rr latency {}", rr.latency_ns);
        assert!((0.0005..0.005).contains(&rr.area_mm2), "rr area {}", rr.area_mm2);
        assert!((0.02..0.3).contains(&rr.power_mw), "rr power {}", rr.power_mw);
        // Paper: 1.10 ns / 0.0044 mm² / 0.27 mW.
        assert!((0.5..2.2).contains(&rl.latency_ns), "rl latency {}", rl.latency_ns);
        assert!((0.002..0.02).contains(&rl.area_mm2), "rl area {}", rl.area_mm2);
        assert!((0.1..1.0).contains(&rl.power_mw), "rl power {}", rl.power_mw);
    }

    #[test]
    fn timing_verdicts_match_the_paper() {
        let rows = t3();
        assert!(!rows[0].report.meets_timing, "NN cannot run at 1 GHz");
        assert!(rows[1].report.meets_timing, "round-robin fits a cycle");
        // Proposed arbiter meets timing because priority computation is
        // overlapped with route computation (§4.8).
        assert!(rows[2].report.meets_timing);
    }

    #[test]
    fn latency_split_matches_paper_structure() {
        let (p, m) = rl_inspired_latency_split(42, &TechNode::nm32());
        // Paper: 0.18 ns priority + 0.92 ns select-max.
        assert!((0.1..0.3).contains(&p), "priority {p}");
        assert!((0.6..1.2).contains(&m), "select-max {m}");
        assert!(m > p, "select-max dominates");
    }

    #[test]
    fn nn_cost_scales_with_parallelism() {
        let net = QuantizedMlp::from_mlp(&nn_mlp::Mlp::paper_agent(504, 42, 42, 0));
        let tech = TechNode::nm32();
        let narrow = cost_nn_inference(&net, 256, &tech);
        let wide = cost_nn_inference(&net, 4096, &tech);
        assert!(narrow.area_mm2 < wide.area_mm2);
        assert!(narrow.latency_ns > wide.latency_ns);
    }

    #[test]
    fn arbiter_cost_grows_with_requesters() {
        let tech = TechNode::nm32();
        let small = cost_rl_inspired(15, &tech);
        let big = cost_rl_inspired(42, &tech);
        assert!(big.area_mm2 > small.area_mm2);
        assert!(big.latency_ns >= small.latency_ns);
    }

    #[test]
    #[should_panic(expected = "at least two requesters")]
    fn degenerate_arbiter_rejected() {
        cost_round_robin(1, &TechNode::nm32());
    }
}
