//! A gate-level combinational netlist builder — the paper's Fig. 8 circuit,
//! actually constructed from gates.
//!
//! §4.8 argues the RL-inspired arbiter "can be implemented in a simple
//! circuit": the starvation clause is an AND of the two local-age MSBs, the
//! subtraction `15 − HC` is a conditional bit inversion (XOR), the shifts
//! are wiring, and the final selection is a comparator (select-max) tree.
//! This module makes that argument executable: it builds the P-block and
//! select-max tree as a DAG of 2-input gates, *simulates* the netlist, and
//! the test suite proves bit-exact equivalence with the software policy
//! over the entire input space. Gate count and logic depth feed the
//! Table 3 cost model measured, not estimated.

use std::collections::HashMap;

/// A signal in the netlist.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Wire(usize);

/// A gate operation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Op {
    Input,
    Const(bool),
    Not(Wire),
    And(Wire, Wire),
    Or(Wire, Wire),
    Xor(Wire, Wire),
    /// `sel ? a : b`.
    Mux(Wire, Wire, Wire),
}

/// A combinational netlist under construction.
///
/// ```
/// use hw_cost::Netlist;
/// let mut n = Netlist::new();
/// let a = n.input();
/// let b = n.input();
/// let sum = n.xor(a, b);
/// let carry = n.and(a, b);
/// let out = n.simulate(&[(a, true), (b, true)]);
/// assert!(!out[&sum] && out[&carry]); // half adder
/// ```
#[derive(Debug, Clone, Default)]
pub struct Netlist {
    ops: Vec<Op>,
}

impl Netlist {
    /// Creates an empty netlist.
    pub fn new() -> Self {
        Netlist { ops: Vec::new() }
    }

    fn push(&mut self, op: Op) -> Wire {
        self.ops.push(op);
        Wire(self.ops.len() - 1)
    }

    /// Declares a primary input.
    pub fn input(&mut self) -> Wire {
        self.push(Op::Input)
    }

    /// Declares a bus of `n` primary inputs, LSB first.
    pub fn input_bus(&mut self, n: usize) -> Vec<Wire> {
        (0..n).map(|_| self.input()).collect()
    }

    /// A constant signal.
    pub fn constant(&mut self, v: bool) -> Wire {
        self.push(Op::Const(v))
    }

    /// NOT gate.
    pub fn not(&mut self, a: Wire) -> Wire {
        self.push(Op::Not(a))
    }

    /// AND gate.
    pub fn and(&mut self, a: Wire, b: Wire) -> Wire {
        self.push(Op::And(a, b))
    }

    /// OR gate.
    pub fn or(&mut self, a: Wire, b: Wire) -> Wire {
        self.push(Op::Or(a, b))
    }

    /// XOR gate.
    pub fn xor(&mut self, a: Wire, b: Wire) -> Wire {
        self.push(Op::Xor(a, b))
    }

    /// 2:1 multiplexer `sel ? a : b`.
    pub fn mux(&mut self, sel: Wire, a: Wire, b: Wire) -> Wire {
        self.push(Op::Mux(sel, a, b))
    }

    /// Bus-wide 2:1 mux; the buses must have equal width.
    ///
    /// # Panics
    ///
    /// Panics on width mismatch.
    pub fn mux_bus(&mut self, sel: Wire, a: &[Wire], b: &[Wire]) -> Vec<Wire> {
        assert_eq!(a.len(), b.len(), "mux bus width mismatch");
        a.iter()
            .zip(b)
            .map(|(&x, &y)| self.mux(sel, x, y))
            .collect()
    }

    /// Tree-structured "greater-than" comparator for two equal-width buses
    /// (LSB first): logarithmic depth, as a timing-driven synthesis tool
    /// would build it. Returns a single wire: `a > b`.
    ///
    /// # Panics
    ///
    /// Panics on width mismatch or empty buses.
    pub fn greater_than(&mut self, a: &[Wire], b: &[Wire]) -> Wire {
        assert_eq!(a.len(), b.len(), "comparator width mismatch");
        assert!(!a.is_empty(), "comparator needs at least one bit");
        self.gt_eq_tree(a, b).0
    }

    /// Recursive helper returning `(a > b, a == b)` over a bit range.
    fn gt_eq_tree(&mut self, a: &[Wire], b: &[Wire]) -> (Wire, Wire) {
        if a.len() == 1 {
            let nb = self.not(b[0]);
            let gt = self.and(a[0], nb);
            let x = self.xor(a[0], b[0]);
            let eq = self.not(x);
            return (gt, eq);
        }
        let mid = a.len() / 2;
        // LSB-first buses: the high half carries more significance.
        let (gt_lo, eq_lo) = self.gt_eq_tree(&a[..mid], &b[..mid]);
        let (gt_hi, eq_hi) = self.gt_eq_tree(&a[mid..], &b[mid..]);
        let lo_wins = self.and(eq_hi, gt_lo);
        let gt = self.or(gt_hi, lo_wins);
        let eq = self.and(eq_hi, eq_lo);
        (gt, eq)
    }

    /// Unsigned adder for two equal-width buses (LSB first); returns a bus
    /// one bit wider (carry out as MSB).
    ///
    /// # Panics
    ///
    /// Panics on width mismatch.
    pub fn add(&mut self, a: &[Wire], b: &[Wire]) -> Vec<Wire> {
        assert_eq!(a.len(), b.len(), "adder width mismatch");
        let mut carry = self.constant(false);
        let mut out = Vec::with_capacity(a.len() + 1);
        for (&ai, &bi) in a.iter().zip(b) {
            let s1 = self.xor(ai, bi);
            let sum = self.xor(s1, carry);
            let c1 = self.and(ai, bi);
            let c2 = self.and(s1, carry);
            carry = self.or(c1, c2);
            out.push(sum);
        }
        out.push(carry);
        out
    }

    /// Number of logic gates (inputs and constants excluded; a mux counts
    /// as 3 gate-equivalents).
    pub fn gate_count(&self) -> usize {
        self.ops
            .iter()
            .map(|op| match op {
                Op::Input | Op::Const(_) => 0,
                Op::Not(_) => 1,
                Op::And(..) | Op::Or(..) | Op::Xor(..) => 1,
                Op::Mux(..) => 3,
            })
            .sum()
    }

    /// Longest input-to-output path in gate levels (a mux counts as 2
    /// levels).
    pub fn depth(&self) -> usize {
        let mut d = vec![0usize; self.ops.len()];
        for (i, op) in self.ops.iter().enumerate() {
            d[i] = match *op {
                Op::Input | Op::Const(_) => 0,
                Op::Not(a) => d[a.0] + 1,
                Op::And(a, b) | Op::Or(a, b) | Op::Xor(a, b) => d[a.0].max(d[b.0]) + 1,
                Op::Mux(s, a, b) => d[s.0].max(d[a.0]).max(d[b.0]) + 2,
            };
        }
        d.into_iter().max().unwrap_or(0)
    }

    /// Evaluates the netlist for the given primary-input assignment.
    /// Unassigned inputs default to `false`. Returns the value of every
    /// wire.
    pub fn simulate(&self, inputs: &[(Wire, bool)]) -> HashMap<Wire, bool> {
        let assigned: HashMap<usize, bool> = inputs.iter().map(|(w, v)| (w.0, *v)).collect();
        let mut vals = vec![false; self.ops.len()];
        for (i, op) in self.ops.iter().enumerate() {
            vals[i] = match *op {
                Op::Input => assigned.get(&i).copied().unwrap_or(false),
                Op::Const(v) => v,
                Op::Not(a) => !vals[a.0],
                Op::And(a, b) => vals[a.0] && vals[b.0],
                Op::Or(a, b) => vals[a.0] || vals[b.0],
                Op::Xor(a, b) => vals[a.0] != vals[b.0],
                Op::Mux(s, a, b) => {
                    if vals[s.0] {
                        vals[a.0]
                    } else {
                        vals[b.0]
                    }
                }
            };
        }
        (0..self.ops.len()).map(|i| (Wire(i), vals[i])).collect()
    }

    /// Reads a bus value (LSB first) out of a simulation result.
    pub fn read_bus(values: &HashMap<Wire, bool>, bus: &[Wire]) -> u32 {
        bus.iter()
            .enumerate()
            .map(|(i, w)| (values[w] as u32) << i)
            .sum()
    }
}

/// The inputs of one P-block instance.
#[derive(Debug, Clone)]
pub struct PBlockPorts {
    /// 5-bit local-age counter (LSB first).
    pub la: Vec<Wire>,
    /// 4-bit hop counter (LSB first).
    pub hc: Vec<Wire>,
    /// High when the message is coherence or response class.
    pub boosted: Wire,
    /// High when the buffer sits on a West/East input port.
    pub east_west: Wire,
    /// The 6-bit priority output (LSB first).
    pub priority: Vec<Wire>,
}

/// Builds one Fig. 8 P-block computing the paper's Algorithm 2 priority.
///
/// Structure (matching §4.8's description):
/// * starvation detect: AND of the two LA MSBs *with a low-bit OR* —
///   `LA > 24 = LA[4] & LA[3] & (LA[2] | LA[1] | LA[0])`;
/// * conditional hop inversion: XOR of each HC bit with `east_west`;
/// * message-class shift: a bus mux between `HC` and `HC << 1`;
/// * final output: mux between `LA` and the hop-derived priority.
pub fn build_algorithm2_pblock(n: &mut Netlist) -> PBlockPorts {
    let la = n.input_bus(5);
    let hc = n.input_bus(4);
    let boosted = n.input();
    let east_west = n.input();

    // LA > 24 (11000b): both MSBs set and any low bit set.
    let msbs = n.and(la[4], la[3]);
    let low01 = n.or(la[0], la[1]);
    let low = n.or(low01, la[2]);
    let starving = n.and(msbs, low);

    // Conditional inversion: hc ^ east_west per bit (15 − HC when E/W).
    let inv: Vec<Wire> = hc.iter().map(|&b| n.xor(b, east_west)).collect();

    // Optional << 1 for boosted classes, into a 6-bit bus.
    let zero = n.constant(false);
    let mut plain = inv.clone();
    plain.push(zero); // 5 bits
    plain.push(zero); // 6 bits
    let mut shifted = vec![zero];
    shifted.extend(inv.iter().copied());
    shifted.push(zero); // 6 bits
    let hop_pri = n.mux_bus(boosted, &shifted, &plain);

    // Starvation override: priority = LA (zero-extended to 6 bits).
    let mut la6 = la.clone();
    la6.push(zero);
    let priority = n.mux_bus(starving, &la6, &hop_pri);

    PBlockPorts {
        la,
        hc,
        boosted,
        east_west,
        priority,
    }
}

/// Builds a select-max comparator tree over `priorities` (equal-width
/// buses). Returns `(winner_priority_bus, winner_index_bits)` where the
/// index has `ceil(log2(n))` bits, LSB first. Ties prefer the lower index,
/// like a left-leaning hardware tree.
///
/// # Panics
///
/// Panics if `priorities` is empty.
pub fn build_select_max(n: &mut Netlist, priorities: &[Vec<Wire>]) -> (Vec<Wire>, Vec<Wire>) {
    assert!(!priorities.is_empty(), "select-max needs at least one input");
    let index_bits = usize::BITS as usize - (priorities.len() - 1).leading_zeros() as usize;
    let index_bits = index_bits.max(1);

    // Each node: (priority bus, index bus).
    let mut nodes: Vec<(Vec<Wire>, Vec<Wire>)> = priorities
        .iter()
        .enumerate()
        .map(|(i, p)| {
            let idx: Vec<Wire> = (0..index_bits)
                .map(|b| n.constant((i >> b) & 1 == 1))
                .collect();
            (p.clone(), idx)
        })
        .collect();

    while nodes.len() > 1 {
        let mut next = Vec::with_capacity(nodes.len().div_ceil(2));
        let mut it = nodes.into_iter();
        while let Some(left) = it.next() {
            match it.next() {
                Some(right) => {
                    // right wins only when strictly greater.
                    let gt = n.greater_than(&right.0, &left.0);
                    let pri = n.mux_bus(gt, &right.0, &left.0);
                    let idx = n.mux_bus(gt, &right.1, &left.1);
                    next.push((pri, idx));
                }
                None => next.push(left),
            }
        }
        nodes = next;
    }
    let (pri, idx) = nodes.pop().unwrap();
    (pri, idx)
}

/// Measured structural costs of the full Fig. 8 arbiter (42 P-blocks +
/// select-max tree) — used to cross-check the analytical Table 3 model.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MeasuredArbiter {
    /// Total 2-input-gate equivalents.
    pub gates: usize,
    /// P-block logic depth in gate levels.
    pub pblock_depth: usize,
    /// Select-max tree depth in gate levels.
    pub tree_depth: usize,
}

/// Builds the complete 42-requester Fig. 8 arbiter and reports its
/// measured structure.
pub fn measure_fig8_arbiter(requesters: usize) -> MeasuredArbiter {
    let mut pblock_net = Netlist::new();
    build_algorithm2_pblock(&mut pblock_net);
    let pblock_gates = pblock_net.gate_count();
    let pblock_depth = pblock_net.depth();

    let mut tree_net = Netlist::new();
    let pris: Vec<Vec<Wire>> = (0..requesters).map(|_| tree_net.input_bus(6)).collect();
    build_select_max(&mut tree_net, &pris);
    MeasuredArbiter {
        gates: pblock_gates * requesters + tree_net.gate_count(),
        pblock_depth,
        tree_depth: tree_net.depth(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn adder_is_correct_exhaustively() {
        let mut n = Netlist::new();
        let a = n.input_bus(4);
        let b = n.input_bus(4);
        let sum = n.add(&a, &b);
        for x in 0u32..16 {
            for y in 0u32..16 {
                let mut assigns = Vec::new();
                for i in 0..4 {
                    assigns.push((a[i], (x >> i) & 1 == 1));
                    assigns.push((b[i], (y >> i) & 1 == 1));
                }
                let out = n.simulate(&assigns);
                assert_eq!(Netlist::read_bus(&out, &sum), x + y, "{x}+{y}");
            }
        }
    }

    #[test]
    fn comparator_is_correct_exhaustively() {
        let mut n = Netlist::new();
        let a = n.input_bus(5);
        let b = n.input_bus(5);
        let gt = n.greater_than(&a, &b);
        for x in 0u32..32 {
            for y in 0u32..32 {
                let mut assigns = Vec::new();
                for i in 0..5 {
                    assigns.push((a[i], (x >> i) & 1 == 1));
                    assigns.push((b[i], (y >> i) & 1 == 1));
                }
                let out = n.simulate(&assigns);
                assert_eq!(out[&gt], x > y, "{x} > {y}");
            }
        }
    }

    /// Software reference of Algorithm 2's priority (mirrors
    /// `noc_arbiters::Algorithm2Paper`, re-stated here to keep the crates
    /// decoupled).
    fn algorithm2_reference(la: u32, hc: u32, boosted: bool, east_west: bool) -> u32 {
        if la > 24 {
            return la;
        }
        let base = if east_west { 0b1111 - hc } else { hc };
        if boosted {
            base << 1
        } else {
            base
        }
    }

    #[test]
    fn pblock_matches_algorithm2_over_entire_input_space() {
        let mut n = Netlist::new();
        let p = build_algorithm2_pblock(&mut n);
        for la in 0u32..32 {
            for hc in 0u32..16 {
                for flags in 0u32..4 {
                    let boosted = flags & 1 == 1;
                    let east_west = flags & 2 == 2;
                    let mut assigns = Vec::new();
                    for i in 0..5 {
                        assigns.push((p.la[i], (la >> i) & 1 == 1));
                    }
                    for i in 0..4 {
                        assigns.push((p.hc[i], (hc >> i) & 1 == 1));
                    }
                    assigns.push((p.boosted, boosted));
                    assigns.push((p.east_west, east_west));
                    let out = n.simulate(&assigns);
                    let got = Netlist::read_bus(&out, &p.priority);
                    let want = algorithm2_reference(la, hc, boosted, east_west);
                    assert_eq!(got, want, "la={la} hc={hc} b={boosted} ew={east_west}");
                }
            }
        }
    }

    #[test]
    fn select_max_picks_the_maximum_with_lowest_index_ties() {
        let mut n = Netlist::new();
        let pris: Vec<Vec<Wire>> = (0..5).map(|_| n.input_bus(6)).collect();
        let (win_pri, win_idx) = build_select_max(&mut n, &pris);
        let cases: Vec<Vec<u32>> = vec![
            vec![3, 9, 2, 9, 1],
            vec![0, 0, 0, 0, 0],
            vec![63, 62, 61, 60, 59],
            vec![1, 2, 3, 4, 63],
            vec![5, 5, 5, 5, 5],
        ];
        for vals in cases {
            let mut assigns = Vec::new();
            #[allow(clippy::needless_range_loop)]
            for (k, v) in vals.iter().enumerate() {
                for i in 0..6 {
                    assigns.push((pris[k][i], (v >> i) & 1 == 1));
                }
            }
            let out = n.simulate(&assigns);
            let max = *vals.iter().max().unwrap();
            let first = vals.iter().position(|&v| v == max).unwrap() as u32;
            assert_eq!(Netlist::read_bus(&out, &win_pri), max, "{vals:?}");
            assert_eq!(Netlist::read_bus(&out, &win_idx), first, "{vals:?}");
        }
    }

    #[test]
    fn measured_structure_is_single_cycle_plausible() {
        let m = measure_fig8_arbiter(42);
        // The P-block is tiny and shallow (paper: 0.18 ns); the tree's
        // depth grows with log2(42)·comparator depth (paper: 0.92 ns).
        assert!(m.pblock_depth <= 6, "p-block depth {}", m.pblock_depth);
        // ⌈log2 42⌉ = 6 tree levels × (log-depth comparator + mux) — the
        // structural depth a synthesis tool would then compress further
        // with wide gates and transistor sizing toward the paper's 0.92 ns.
        assert!(m.tree_depth <= 60, "tree depth {}", m.tree_depth);
        assert!(m.gates > 1_000 && m.gates < 20_000, "gates {}", m.gates);
    }

    #[test]
    fn depth_and_gate_count_track_construction() {
        let mut n = Netlist::new();
        let a = n.input();
        let b = n.input();
        assert_eq!(n.gate_count(), 0);
        let x = n.and(a, b);
        let _y = n.or(x, a);
        assert_eq!(n.gate_count(), 2);
        assert_eq!(n.depth(), 2);
    }
}
