//! Equivalence guarantees of the batched / INT8 inference datapaths.
//!
//! Two properties protect the hot-path rework:
//!
//! 1. **Batched ≡ scalar, bit for bit.** Per-router batched inference must
//!    not change a single arbitration decision, so a full simulation under
//!    the batched NN arbiter must produce byte-identical statistics to the
//!    scalar arbiter — across mesh sizes, traffic patterns and both
//!    numeric datapaths.
//! 2. **INT8 tracks f32.** The fixed-point datapath is an approximation;
//!    its Q-values must stay within a small bound of the float values and
//!    it must agree with the float argmax on ≥ 99% of decisions.

use nn_mlp::{Mlp, QuantScratch, QuantizedMlp, Scratch};
use noc_sim::{
    Arbiter, Candidate, DestType, FeatureBounds, Features, MsgType, NetSnapshot, NodeId,
    OutputCtx, Pattern, RouterId, SimConfig, Simulator, SyntheticTraffic, Topology,
};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use rl_arb::{FeatureSet, InferenceMode, NnPolicyArbiter, StateEncoder};

/// A frozen policy over a deterministic (seed-built) network for the given
/// mesh. The weights are untrained — irrelevant here: equivalence is a
/// property of the datapath, not of the policy's quality.
fn frozen_policy(width: u16, seed: u64) -> NnPolicyArbiter {
    let cfg = SimConfig::synthetic(width, width);
    let encoder = StateEncoder::new(
        5,
        cfg.num_vnets,
        FeatureSet::synthetic(),
        FeatureBounds::for_mesh(width, width),
    );
    let net = Mlp::paper_agent(encoder.state_width(), 15, encoder.num_slots(), seed);
    NnPolicyArbiter::new(net, encoder)
}

/// Runs one synthetic simulation and returns the stat fields that would
/// differ if any arbitration decision differed.
fn run_sim(
    width: u16,
    pattern: Pattern,
    arbiter: NnPolicyArbiter,
    cycles: u64,
) -> (u64, u64, u64, u64) {
    let topo = Topology::uniform_mesh(width, width).expect("valid mesh");
    let cfg = SimConfig::synthetic(width, width);
    let traffic = SyntheticTraffic::new(&topo, pattern, 0.25, cfg.num_vnets, 7);
    let mut sim = Simulator::new(topo, cfg, Box::new(arbiter), traffic).expect("valid sim");
    sim.run(cycles);
    let s = sim.stats();
    (s.grants, s.delivered, s.total_latency, s.flits_on_links)
}

#[test]
fn batched_simulation_is_bit_identical_to_scalar() {
    for &width in &[4_u16, 8] {
        for &pattern in &[Pattern::UniformRandom, Pattern::Transpose, Pattern::Tornado] {
            for &mode in &[InferenceMode::F32, InferenceMode::Int8] {
                let batched = frozen_policy(width, 3).with_inference(mode);
                let scalar = frozen_policy(width, 3).with_inference(mode).with_batched(false);
                let a = run_sim(width, pattern, batched, 3_000);
                let b = run_sim(width, pattern, scalar, 3_000);
                assert_eq!(
                    a, b,
                    "batched != scalar for {width}x{width} {pattern:?} {mode:?}"
                );
                // The runs must actually exercise contended arbitration.
                assert!(a.0 > 0, "no grants in {width}x{width} {pattern:?}");
            }
        }
    }
}

/// Builds a pseudo-random contended-output context over `num_slots` action
/// slots: 2–5 distinct competing buffers with randomized features.
fn random_candidates(rng: &mut StdRng, num_ports: usize, num_vnets: usize) -> Vec<Candidate> {
    let num_slots = num_ports * num_vnets;
    let n = rng.gen_range(2..6.min(num_slots + 1));
    let mut slots: Vec<usize> = (0..num_slots).collect();
    for i in 0..n {
        let j = rng.gen_range(i..num_slots);
        slots.swap(i, j);
    }
    (0..n)
        .map(|i| {
            let slot = slots[i];
            let create_cycle = rng.gen_range(0..500);
            Candidate {
                in_port: slot / num_vnets,
                vnet: slot % num_vnets,
                slot,
                features: Features {
                    payload_size: rng.gen_range(1..8),
                    local_age: rng.gen_range(0..64),
                    distance: rng.gen_range(1..8),
                    hop_count: rng.gen_range(0..8),
                    in_flight_from_src: rng.gen_range(0..16),
                    inter_arrival: rng.gen_range(0..32),
                    msg_type: MsgType::Request,
                    dst_type: DestType::Core,
                },
                packet_id: rng.gen_range(0..1_000_000),
                create_cycle,
                arrival_cycle: create_cycle + rng.gen_range(0..32),
                src: NodeId(rng.gen_range(0..16)),
                dst: NodeId(rng.gen_range(0..16)),
                port_degraded: false,
            }
        })
        .collect()
}

#[test]
fn int8_qvalues_stay_within_error_bound_of_f32() {
    let encoder = StateEncoder::new(5, 3, FeatureSet::synthetic(), FeatureBounds::for_mesh(4, 4));
    let net = Mlp::paper_agent(encoder.state_width(), 15, encoder.num_slots(), 5);
    let qnet = QuantizedMlp::from_mlp(&net);
    let mut rng = StdRng::seed_from_u64(0xfeed);
    let mut fs = Scratch::new();
    let mut qs = QuantScratch::new();
    let snapshot = NetSnapshot::default();
    let mut max_err = 0.0_f64;
    for case in 0..500 {
        let cands = random_candidates(&mut rng, 5, 3);
        let ctx = OutputCtx {
            router: RouterId(rng.gen_range(0..16)),
            out_port: rng.gen_range(0..5),
            cycle: case,
            num_ports: 5,
            num_vnets: 3,
            candidates: &cands,
            net: &snapshot,
        };
        let state = encoder.encode(&ctx);
        let yf = net.forward_into(&state, &mut fs);
        let yq = qnet.forward_into(&state, &mut qs);
        for (a, b) in yf.iter().zip(yq) {
            max_err = max_err.max((a - b).abs());
        }
    }
    // Symmetric per-layer INT8 on a [0, 1]-normalized 60→15→15 network:
    // the worst observed deviation stays well inside 0.05 Q-units.
    assert!(max_err < 0.05, "INT8 error bound violated: {max_err}");
}

#[test]
fn int8_agrees_with_f32_on_at_least_99_percent_of_decisions() {
    let mut f32_arb = frozen_policy(4, 5).with_epsilon(0.0);
    let mut int8_arb = frozen_policy(4, 5)
        .with_epsilon(0.0)
        .with_inference(InferenceMode::Int8);
    let mut rng = StdRng::seed_from_u64(0xbeef);
    let snapshot = NetSnapshot::default();
    let cases = 1_000;
    let mut agree = 0;
    for case in 0..cases {
        let cands = random_candidates(&mut rng, 5, 3);
        let ctx = OutputCtx {
            router: RouterId(rng.gen_range(0..16)),
            out_port: rng.gen_range(0..5),
            cycle: case,
            num_ports: 5,
            num_vnets: 3,
            candidates: &cands,
            net: &snapshot,
        };
        if f32_arb.select(&ctx) == int8_arb.select(&ctx) {
            agree += 1;
        }
    }
    assert!(
        agree * 100 >= cases * 99,
        "INT8 agreed on only {agree}/{cases} decisions"
    );
}
