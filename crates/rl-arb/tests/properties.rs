//! Property-based tests: state encoding and replay-memory invariants.

use noc_sim::{
    Candidate, DestType, FeatureBounds, Features, MsgType, NetSnapshot, NodeId, OutputCtx,
    RouterId,
};
use proptest::prelude::*;
use rl_arb::{Experience, FeatureSet, ReplayMemory, StateEncoder};

fn candidate_strategy(num_ports: usize, num_vnets: usize) -> impl Strategy<Value = Candidate> {
    (
        0..num_ports,
        0..num_vnets,
        1u32..9,
        0u64..100_000,
        0u32..20,
        0u32..20,
        0u64..100_000,
        0u8..3,
        0u8..3,
    )
        .prop_map(
            move |(port, vnet, payload, la, dist, hops, create, mt, dt)| Candidate {
                in_port: port,
                vnet,
                slot: port * num_vnets + vnet,
                features: Features {
                    payload_size: payload,
                    local_age: la,
                    distance: dist,
                    hop_count: hops,
                    in_flight_from_src: (la % 200) as u32,
                    inter_arrival: la / 3,
                    msg_type: MsgType::ALL[mt as usize],
                    dst_type: DestType::ALL[dt as usize],
                },
                packet_id: create,
                create_cycle: create,
                arrival_cycle: create,
                src: NodeId(0),
                dst: NodeId(1),
                port_degraded: false,
            },
        )
}

proptest! {
    /// Encoded states always have the advertised width and live in [0, 1],
    /// no matter how extreme the raw features are.
    #[test]
    fn encoded_states_are_normalized(
        cands in proptest::collection::vec(candidate_strategy(6, 7), 0..12),
    ) {
        let mut seen = std::collections::HashSet::new();
        let cands: Vec<Candidate> =
            cands.into_iter().filter(|c| seen.insert(c.slot)).collect();
        let enc = StateEncoder::new(6, 7, FeatureSet::full(), FeatureBounds::for_mesh(8, 8));
        let net = NetSnapshot::default();
        let ctx = OutputCtx {
            router: RouterId(0),
            out_port: 0,
            cycle: 0,
            num_ports: 6,
            num_vnets: 7,
            candidates: &cands,
            net: &net,
        };
        let s = enc.encode(&ctx);
        prop_assert_eq!(s.len(), 504);
        prop_assert!(s.iter().all(|v| (0.0..=1.0).contains(v)));
    }

    /// Candidates with identical features at different slots produce
    /// encodings that are permutations of each other (slot-locality).
    #[test]
    fn encoding_is_slot_local(c in candidate_strategy(5, 3), other_slot in 0usize..15) {
        let enc = StateEncoder::new(5, 3, FeatureSet::synthetic(), FeatureBounds::for_mesh(4, 4));
        let net = NetSnapshot::default();
        let mut moved = c.clone();
        moved.slot = other_slot;
        moved.in_port = other_slot / 3;
        moved.vnet = other_slot % 3;
        let encode_one = |cand: &Candidate| {
            let cands = vec![cand.clone()];
            let ctx = OutputCtx {
                router: RouterId(0),
                out_port: 0,
                cycle: 0,
                num_ports: 5,
                num_vnets: 3,
                candidates: &cands,
                net: &net,
            };
            enc.encode(&ctx)
        };
        let a = encode_one(&c);
        let b = encode_one(&moved);
        let w = 4;
        // The nonzero block moves with the slot; its contents are equal.
        prop_assert_eq!(&a[c.slot * w..(c.slot + 1) * w], &b[moved.slot * w..(moved.slot + 1) * w]);
        let nz_a = a.iter().filter(|&&v| v != 0.0).count();
        let nz_b = b.iter().filter(|&&v| v != 0.0).count();
        prop_assert_eq!(nz_a, nz_b);
    }

    /// Replay memory never exceeds capacity and always serves samples from
    /// stored experiences.
    #[test]
    fn replay_memory_respects_capacity(
        capacity in 1usize..50,
        pushes in 0usize..200,
        seed in any::<u64>(),
    ) {
        let mut m = ReplayMemory::new(capacity, seed);
        for i in 0..pushes {
            m.push(Experience {
                state: vec![i as f64],
                action: i % 4,
                next_state: vec![i as f64 + 0.5],
                next_valid_slots: vec![(i % 4) as u16],
                reward: i as f64,
            });
            prop_assert!(m.len() <= capacity);
        }
        let stored = m.len();
        let sample = m.sample(10);
        prop_assert_eq!(sample.len(), 10.min(stored));
        for e in sample {
            prop_assert!((e.reward as usize) < pushes.max(1));
        }
    }
}
