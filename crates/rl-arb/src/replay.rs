//! Experience replay memory (paper §3.1.2).

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// One `⟨state, action, next state, reward⟩` tuple.
#[derive(Debug, Clone, PartialEq)]
pub struct Experience {
    /// State vector at decision time.
    pub state: Vec<f64>,
    /// Chosen action (buffer slot).
    pub action: usize,
    /// State at the *next* arbitration of the same (router, output port).
    /// Tuples are completed before insertion, so this is always populated.
    pub next_state: Vec<f64>,
    /// Buffer slots that held competing candidates in `next_state`. The
    /// Bellman backup maximizes only over these: Q-values of empty buffer
    /// slots are meaningless and must not leak into targets.
    pub next_valid_slots: Vec<u16>,
    /// Immediate reward for the action.
    pub reward: f64,
}

/// A circular replay buffer with uniform random sampling.
///
/// "The replay memory is a circular buffer used for improving the quality
/// of training … instead of using the most recent record, a batch of
/// records is randomly sampled" (§3.1.2). The paper's APU configuration
/// uses 4000 entries with batches of two.
#[derive(Debug, Clone)]
pub struct ReplayMemory {
    buf: Vec<Experience>,
    capacity: usize,
    write: usize,
    rng: StdRng,
}

impl ReplayMemory {
    /// Creates a replay memory holding up to `capacity` experiences.
    ///
    /// # Panics
    ///
    /// Panics if `capacity == 0`.
    pub fn new(capacity: usize, seed: u64) -> Self {
        assert!(capacity > 0, "replay capacity must be positive");
        ReplayMemory {
            buf: Vec::with_capacity(capacity.min(1 << 20)),
            capacity,
            write: 0,
            rng: StdRng::seed_from_u64(seed),
        }
    }

    /// Stored experiences.
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// True when nothing has been recorded.
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// Capacity in experiences.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Records an experience, overwriting the oldest once full.
    pub fn push(&mut self, exp: Experience) {
        if self.buf.len() < self.capacity {
            self.buf.push(exp);
        } else {
            self.buf[self.write] = exp;
        }
        self.write = (self.write + 1) % self.capacity;
    }

    /// Samples `n` experiences uniformly at random (with replacement),
    /// or fewer if the memory holds fewer than `n`.
    pub fn sample(&mut self, n: usize) -> Vec<&Experience> {
        let len = self.buf.len();
        if len == 0 {
            return Vec::new();
        }
        (0..n.min(len))
            .map(|_| &self.buf[self.rng.gen_range(0..len)])
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn exp(tag: f64) -> Experience {
        Experience {
            state: vec![tag],
            action: 0,
            next_state: vec![tag + 0.5],
            next_valid_slots: vec![0],
            reward: tag,
        }
    }

    #[test]
    fn wraps_around_when_full() {
        let mut m = ReplayMemory::new(3, 1);
        for i in 0..5 {
            m.push(exp(i as f64));
        }
        assert_eq!(m.len(), 3);
        // Entries 0 and 1 were overwritten by 3 and 4.
        let rewards: Vec<f64> = m.buf.iter().map(|e| e.reward).collect();
        assert_eq!(rewards, vec![3.0, 4.0, 2.0]);
    }

    #[test]
    fn sample_returns_requested_count_once_warm() {
        let mut m = ReplayMemory::new(100, 2);
        for i in 0..50 {
            m.push(exp(i as f64));
        }
        assert_eq!(m.sample(8).len(), 8);
        assert_eq!(m.sample(200).len(), 50);
    }

    #[test]
    fn sample_from_empty_is_empty() {
        let mut m = ReplayMemory::new(10, 3);
        assert!(m.sample(4).is_empty());
        assert!(m.is_empty());
    }

    #[test]
    fn sampling_is_deterministic_per_seed() {
        let mut a = ReplayMemory::new(10, 9);
        let mut b = ReplayMemory::new(10, 9);
        for i in 0..10 {
            a.push(exp(i as f64));
            b.push(exp(i as f64));
        }
        let ra: Vec<f64> = a.sample(5).iter().map(|e| e.reward).collect();
        let rb: Vec<f64> = b.sample(5).iter().map(|e| e.reward).collect();
        assert_eq!(ra, rb);
    }

    #[test]
    #[should_panic(expected = "capacity must be positive")]
    fn zero_capacity_rejected() {
        ReplayMemory::new(0, 0);
    }
}

/// A Fenwick (binary-indexed) tree over bucket weights, supporting O(log n)
/// point updates and weighted sampling by prefix sums.
#[derive(Debug, Clone)]
struct Fenwick {
    tree: Vec<f64>,
}

impl Fenwick {
    fn new(n: usize) -> Self {
        Fenwick {
            tree: vec![0.0; n + 1],
        }
    }

    fn add(&mut self, mut i: usize, delta: f64) {
        i += 1;
        while i < self.tree.len() {
            self.tree[i] += delta;
            i += i & i.wrapping_neg();
        }
    }

    fn total(&self) -> f64 {
        self.prefix(self.tree.len() - 1)
    }

    fn prefix(&self, mut i: usize) -> f64 {
        let mut s = 0.0;
        while i > 0 {
            s += self.tree[i];
            i -= i & i.wrapping_neg();
        }
        s
    }

    /// First index whose prefix sum exceeds `target`.
    fn find(&self, mut target: f64) -> usize {
        let mut pos = 0;
        let mut step = self.tree.len().next_power_of_two() >> 1;
        while step > 0 {
            let next = pos + step;
            if next < self.tree.len() && self.tree[next] <= target {
                target -= self.tree[next];
                pos = next;
            }
            step >>= 1;
        }
        pos // 0-based bucket index
    }
}

/// Proportional prioritized experience replay (Schaul et al., ICLR 2016):
/// experiences are sampled with probability ∝ `(|TD error| + ε)^α`, so the
/// agent revisits surprising transitions more often. New experiences enter
/// at the current maximum priority to guarantee they are seen at least
/// once. (Importance-sampling correction is omitted — a documented
/// simplification appropriate at this scale.)
#[derive(Debug, Clone)]
pub struct PrioritizedReplay {
    buf: Vec<Experience>,
    priorities: Fenwick,
    raw: Vec<f64>,
    capacity: usize,
    write: usize,
    alpha: f64,
    max_priority: f64,
    rng: StdRng,
}

impl PrioritizedReplay {
    /// Creates a prioritized replay memory. `alpha` controls how strongly
    /// priorities skew sampling (0 = uniform, 1 = fully proportional).
    ///
    /// # Panics
    ///
    /// Panics if `capacity == 0` or `alpha` is outside `[0, 1]`.
    pub fn new(capacity: usize, alpha: f64, seed: u64) -> Self {
        assert!(capacity > 0, "replay capacity must be positive");
        assert!((0.0..=1.0).contains(&alpha), "alpha must be in [0, 1]");
        PrioritizedReplay {
            buf: Vec::with_capacity(capacity.min(1 << 20)),
            priorities: Fenwick::new(capacity),
            raw: vec![0.0; capacity],
            capacity,
            write: 0,
            alpha,
            max_priority: 1.0,
            rng: StdRng::seed_from_u64(seed),
        }
    }

    /// Stored experiences.
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// True when empty.
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// Records an experience at the current maximum priority.
    pub fn push(&mut self, exp: Experience) {
        let slot = if self.buf.len() < self.capacity {
            self.buf.push(exp);
            self.buf.len() - 1
        } else {
            self.buf[self.write] = exp;
            self.write
        };
        let p = self.max_priority;
        let delta = p - self.raw[slot];
        self.raw[slot] = p;
        self.priorities.add(slot, delta);
        self.write = (self.write + 1) % self.capacity;
    }

    /// Samples `n` indices proportionally to priority (with replacement).
    pub fn sample_indices(&mut self, n: usize) -> Vec<usize> {
        let len = self.buf.len();
        if len == 0 {
            return Vec::new();
        }
        let total = self.priorities.total();
        (0..n)
            .map(|_| {
                let target = self.rng.gen::<f64>() * total;
                self.priorities.find(target).min(len - 1)
            })
            .collect()
    }

    /// The experience at `index`.
    ///
    /// # Panics
    ///
    /// Panics if `index` is out of range.
    pub fn get(&self, index: usize) -> &Experience {
        &self.buf[index]
    }

    /// Updates an experience's priority from its observed TD error.
    ///
    /// # Panics
    ///
    /// Panics if `index` is out of range.
    pub fn update_priority(&mut self, index: usize, td_error: f64) {
        let p = (td_error.abs() + 1e-6).powf(self.alpha);
        self.max_priority = self.max_priority.max(p);
        let delta = p - self.raw[index];
        self.raw[index] = p;
        self.priorities.add(index, delta);
    }
}

#[cfg(test)]
mod prioritized_tests {
    use super::*;

    fn exp(tag: f64) -> Experience {
        Experience {
            state: vec![tag],
            action: 0,
            next_state: vec![tag],
            next_valid_slots: vec![0],
            reward: tag,
        }
    }

    #[test]
    fn high_priority_entries_are_sampled_more() {
        let mut m = PrioritizedReplay::new(64, 1.0, 7);
        for i in 0..10 {
            m.push(exp(i as f64));
        }
        // Crank one entry's priority way up.
        m.update_priority(3, 100.0);
        for i in 0..10 {
            if i != 3 {
                m.update_priority(i, 0.001);
            }
        }
        let samples = m.sample_indices(2000);
        let hot = samples.iter().filter(|&&i| i == 3).count();
        assert!(hot > 1500, "hot entry sampled only {hot}/2000");
    }

    #[test]
    fn new_entries_enter_at_max_priority() {
        let mut m = PrioritizedReplay::new(16, 1.0, 3);
        m.push(exp(0.0));
        m.update_priority(0, 50.0); // raises max priority
        m.push(exp(1.0)); // should enter at the raised maximum
        let samples = m.sample_indices(1000);
        let fresh = samples.iter().filter(|&&i| i == 1).count();
        assert!(fresh > 300, "fresh entry starved: {fresh}/1000");
    }

    #[test]
    fn wraparound_replaces_priorities_too() {
        let mut m = PrioritizedReplay::new(4, 1.0, 1);
        for i in 0..4 {
            m.push(exp(i as f64));
            m.update_priority(i, 0.01);
        }
        m.push(exp(99.0)); // overwrites slot 0 at max priority
        assert_eq!(m.len(), 4);
        assert_eq!(m.get(0).reward, 99.0);
        let samples = m.sample_indices(500);
        let hot = samples.iter().filter(|&&i| i == 0).count();
        assert!(hot > 300, "replacement entry under-sampled: {hot}/500");
    }

    #[test]
    fn alpha_zero_is_uniform() {
        let mut m = PrioritizedReplay::new(32, 0.0, 11);
        for i in 0..8 {
            m.push(exp(i as f64));
            m.update_priority(i, (i as f64 + 1.0) * 100.0);
        }
        let samples = m.sample_indices(8000);
        let mut counts = [0usize; 8];
        for s in samples {
            counts[s] += 1;
        }
        for c in counts {
            assert!((600..1500).contains(&c), "non-uniform at alpha=0: {counts:?}");
        }
    }

    #[test]
    #[should_panic(expected = "alpha must be in [0, 1]")]
    fn bad_alpha_rejected() {
        PrioritizedReplay::new(4, 1.5, 0);
    }
}
