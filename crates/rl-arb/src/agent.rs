//! The deep-Q-learning arbitration agent (paper §3.1, §4.5–§4.6).

use std::cell::RefCell;
use std::collections::HashMap;
use std::rc::Rc;

use nn_mlp::{Mlp, QuantScratch, QuantizedMlp};
use noc_sim::{Arbiter, NetSnapshot, OutputCtx, RouterCtx, RouterId};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::features::StateEncoder;
use crate::replay::{Experience, PrioritizedReplay, ReplayMemory};
use crate::reward::RewardKind;

/// Hyperparameters of the DQN agent.
///
/// Defaults follow §4.6: learning rate 0.001, discount 0.9, exploration
/// 0.001, 4000-entry replay memory, batches of two sampled every cycle,
/// sigmoid hidden layer and ReLU output.
#[derive(Debug, Clone, PartialEq)]
pub struct AgentConfig {
    /// Hidden-layer width (15 for the synthetic study, 42 for the APU).
    pub hidden: usize,
    /// SGD learning rate α.
    pub lr: f64,
    /// Discount factor γ.
    pub gamma: f64,
    /// Exploration rate ε.
    pub epsilon: f64,
    /// Records sampled from replay per training tick.
    pub batch_size: usize,
    /// Replay memory capacity.
    pub replay_capacity: usize,
    /// Training ticks between target-network synchronizations.
    pub target_sync_period: u64,
    /// Per-element gradient clip (stabilizes training, §6.2).
    pub grad_clip: f64,
    /// Reward function.
    pub reward: RewardKind,
    /// Use Double DQN targets: the online network picks the argmax action,
    /// the target network evaluates it. Reduces the max-operator's
    /// overestimation bias (van Hasselt et al.); off in the paper-faithful
    /// configurations.
    pub double_dqn: bool,
    /// Prioritized experience replay: `Some(alpha)` samples transitions
    /// proportionally to `|TD error|^alpha` instead of uniformly; `None`
    /// (the paper-faithful setting) keeps uniform replay.
    pub prioritized: Option<f64>,
    /// Seed for weight init, exploration and replay sampling.
    pub seed: u64,
}

impl AgentConfig {
    /// The shared §4.6 baseline every named configuration is a delta of.
    fn base(hidden: usize, seed: u64) -> Self {
        AgentConfig {
            hidden,
            lr: 0.001,
            gamma: 0.9,
            epsilon: 0.001,
            batch_size: 2,
            replay_capacity: 4000,
            target_sync_period: 500,
            grad_clip: 1.0,
            reward: RewardKind::GlobalAge,
            double_dqn: false,
            prioritized: None,
            seed,
        }
    }

    /// This reproduction's tuning delta on the paper baseline: faster
    /// learning (α 0.001 → 0.05), much shorter horizon (γ 0.9 → 0.2),
    /// more exploration (ε 0.001 → 0.05), bigger batches (2 → 16).
    fn tuned(hidden: usize, seed: u64) -> Self {
        AgentConfig {
            lr: 0.05,
            gamma: 0.2,
            epsilon: 0.05,
            batch_size: 16,
            ..AgentConfig::base(hidden, seed)
        }
    }

    /// The §3.2 synthetic-study configuration (15 hidden neurons).
    pub fn paper_synthetic(seed: u64) -> Self {
        AgentConfig::base(15, seed)
    }

    /// The §4.6 APU configuration (42 hidden neurons).
    pub fn paper_apu(seed: u64) -> Self {
        AgentConfig::base(42, seed)
    }

    /// Hyperparameters tuned *for this reproduction's substrate* (the
    /// paper's §3.2/§4.6 values are kept in the `paper_*` constructors).
    /// Tuning the learning rate, batch size, discount factor and
    /// exploration rate was — exactly as the paper warns — a substantial
    /// human effort; the decisive change was lowering γ from 0.9 to 0.2 so
    /// the ±1 oracle reward is not buried under the action-independent
    /// bootstrapped future term.
    pub fn tuned_synthetic(seed: u64) -> Self {
        AgentConfig::tuned(15, seed)
    }

    /// The tuned configuration at APU scale (42 hidden neurons).
    pub fn tuned_apu(seed: u64) -> Self {
        AgentConfig::tuned(42, seed)
    }

    /// Hyperparameters for *in-deployment* online learning
    /// ([`OnlinePolicy`](crate::OnlinePolicy) warm-started from a trained
    /// artifact). Relative to [`tuned_synthetic`](AgentConfig::tuned_synthetic),
    /// exploration drops to the frozen arbiter's deployment rate
    /// (ε 0.05 → 0.01) — the network is already competent, so extra random
    /// arbitration mostly adds latency during the very drain phase that
    /// recovery time is measured on, and matching the frozen baseline's ε
    /// isolates the effect of the weight updates — and the horizon grows
    /// slightly (γ 0.2 → 0.3): fault-induced congestion persists across
    /// decisions, so the bootstrapped future term carries real signal
    /// during exactly the windows this policy exists for.
    pub fn tuned_online(seed: u64) -> Self {
        AgentConfig {
            epsilon: 0.01,
            gamma: 0.3,
            ..AgentConfig::tuned(15, seed)
        }
    }

    /// Serializes the hyperparameters as ordered `agent.*` key/value
    /// strings for the checkpoint `config` section. Floats use Rust's
    /// shortest round-trip form, so
    /// [`from_config_entries`](AgentConfig::from_config_entries) restores
    /// the exact configuration.
    pub fn config_entries(&self) -> Vec<(String, String)> {
        let float = |v: f64| format!("{v:?}");
        vec![
            ("agent.hidden".into(), self.hidden.to_string()),
            ("agent.lr".into(), float(self.lr)),
            ("agent.gamma".into(), float(self.gamma)),
            ("agent.epsilon".into(), float(self.epsilon)),
            ("agent.batch_size".into(), self.batch_size.to_string()),
            ("agent.replay_capacity".into(), self.replay_capacity.to_string()),
            ("agent.target_sync_period".into(), self.target_sync_period.to_string()),
            ("agent.grad_clip".into(), float(self.grad_clip)),
            ("agent.reward".into(), self.reward.label().into()),
            ("agent.double_dqn".into(), self.double_dqn.to_string()),
            (
                "agent.prioritized".into(),
                match self.prioritized {
                    Some(alpha) => float(alpha),
                    None => "none".into(),
                },
            ),
            ("agent.seed".into(), self.seed.to_string()),
        ]
    }

    /// Reconstructs a configuration from checkpoint `config` entries —
    /// the inverse of [`AgentConfig::config_entries`].
    ///
    /// # Errors
    ///
    /// Returns a description of the first missing or unparseable entry.
    pub fn from_config_entries(entries: &[(String, String)]) -> Result<AgentConfig, String> {
        fn get<'a>(entries: &'a [(String, String)], key: &str) -> Result<&'a str, String> {
            entries
                .iter()
                .find(|(k, _)| k == key)
                .map(|(_, v)| v.as_str())
                .ok_or_else(|| format!("checkpoint config missing '{key}'"))
        }
        fn num<T: std::str::FromStr>(entries: &[(String, String)], key: &str) -> Result<T, String> {
            get(entries, key)?
                .parse()
                .map_err(|_| format!("bad value for '{key}'"))
        }
        let prioritized = match get(entries, "agent.prioritized")? {
            "none" => None,
            v => Some(
                v.parse()
                    .map_err(|_| "bad value for 'agent.prioritized'".to_string())?,
            ),
        };
        Ok(AgentConfig {
            hidden: num(entries, "agent.hidden")?,
            lr: num(entries, "agent.lr")?,
            gamma: num(entries, "agent.gamma")?,
            epsilon: num(entries, "agent.epsilon")?,
            batch_size: num(entries, "agent.batch_size")?,
            replay_capacity: num(entries, "agent.replay_capacity")?,
            target_sync_period: num(entries, "agent.target_sync_period")?,
            grad_clip: num(entries, "agent.grad_clip")?,
            reward: get(entries, "agent.reward")?.parse()?,
            double_dqn: num(entries, "agent.double_dqn")?,
            prioritized,
            seed: num(entries, "agent.seed")?,
        })
    }

    /// Replaces the reward function.
    pub fn with_reward(mut self, reward: RewardKind) -> Self {
        self.reward = reward;
        self
    }

    /// Replaces the exploration rate.
    pub fn with_epsilon(mut self, epsilon: f64) -> Self {
        self.epsilon = epsilon;
        self
    }

    /// Enables Double DQN targets.
    pub fn with_double_dqn(mut self, on: bool) -> Self {
        self.double_dqn = on;
        self
    }

    /// Enables prioritized replay with the given alpha.
    pub fn with_prioritized(mut self, alpha: f64) -> Self {
        self.prioritized = Some(alpha);
        self
    }
}

/// The agent's replay store: uniform (paper-faithful) or prioritized.
#[derive(Debug)]
enum Replay {
    Uniform(ReplayMemory),
    Prioritized(PrioritizedReplay),
}

impl Replay {
    fn len(&self) -> usize {
        match self {
            Replay::Uniform(m) => m.len(),
            Replay::Prioritized(m) => m.len(),
        }
    }

    fn push(&mut self, exp: Experience) {
        match self {
            Replay::Uniform(m) => m.push(exp),
            Replay::Prioritized(m) => m.push(exp),
        }
    }
}

/// The deep-Q-learning agent shared by all routers (paper Fig. 3).
///
/// Every contended output port queries the agent each cycle; the agent
/// encodes the router state, produces a Q-value per input buffer, picks
/// ε-greedily among the competing buffers, computes the immediate reward,
/// and completes the previous `⟨s, a, r, s′⟩` tuple for that (router,
/// output) into replay memory. Once per cycle it trains on a random batch
/// and periodically syncs its target network.
#[derive(Debug)]
pub struct DqnAgent {
    encoder: StateEncoder,
    net: Mlp,
    target: Mlp,
    replay: Replay,
    cfg: AgentConfig,
    /// Last (state, action-slot, reward) per (router, output port).
    pending: HashMap<(RouterId, usize), (Vec<f64>, usize, f64)>,
    rng: StdRng,
    train_ticks: u64,
    decisions: u64,
    explored: u64,
    cumulative_reward: f64,
}

impl DqnAgent {
    /// Creates an agent for routers described by `encoder`.
    pub fn new(encoder: StateEncoder, cfg: AgentConfig) -> Self {
        let net = Mlp::paper_agent(
            encoder.state_width(),
            cfg.hidden,
            encoder.num_slots(),
            cfg.seed,
        );
        let target = net.clone();
        let replay = match cfg.prioritized {
            Some(alpha) => Replay::Prioritized(PrioritizedReplay::new(
                cfg.replay_capacity,
                alpha,
                cfg.seed.wrapping_add(1),
            )),
            None => Replay::Uniform(ReplayMemory::new(
                cfg.replay_capacity,
                cfg.seed.wrapping_add(1),
            )),
        };
        let rng = StdRng::seed_from_u64(cfg.seed.wrapping_add(2));
        DqnAgent {
            encoder,
            net,
            target,
            replay,
            cfg,
            pending: HashMap::new(),
            rng,
            train_ticks: 0,
            decisions: 0,
            explored: 0,
            cumulative_reward: 0.0,
        }
    }

    /// The online Q-network.
    pub fn network(&self) -> &Mlp {
        &self.net
    }

    /// The state encoder.
    pub fn encoder(&self) -> &StateEncoder {
        &self.encoder
    }

    /// The agent configuration.
    pub fn config(&self) -> &AgentConfig {
        &self.cfg
    }

    /// Decisions made so far.
    pub fn decisions(&self) -> u64 {
        self.decisions
    }

    /// Decisions that were random explorations.
    pub fn explored(&self) -> u64 {
        self.explored
    }

    /// Sum of immediate rewards over all decisions.
    pub fn cumulative_reward(&self) -> f64 {
        self.cumulative_reward
    }

    /// Experiences currently in replay memory.
    pub fn replay_len(&self) -> usize {
        self.replay.len()
    }

    /// Chooses a candidate index for one arbitration and performs the
    /// bookkeeping that feeds replay memory.
    ///
    /// # Panics
    ///
    /// Panics if `ctx.candidates` is empty.
    pub fn decide(&mut self, ctx: &OutputCtx<'_>) -> usize {
        assert!(!ctx.candidates.is_empty(), "decide() with no candidates");
        let state = self.encoder.encode(ctx);
        let chosen = if self.rng.gen::<f64>() < self.cfg.epsilon {
            self.explored += 1;
            self.rng.gen_range(0..ctx.candidates.len())
        } else {
            greedy_choice(&self.net, &self.encoder, ctx)
        };
        let reward = self.cfg.reward.compute(ctx, chosen);
        self.decisions += 1;
        self.cumulative_reward += reward;

        // Complete the previous tuple for this (router, output): its next
        // state is the state we just observed (paper Fig. 3, step 1), and
        // the Bellman backup may only maximize over the buffers that are
        // actually competing in it.
        let key = (ctx.router, ctx.out_port);
        if let Some((prev_s, prev_a, prev_r)) = self.pending.remove(&key) {
            self.replay.push(Experience {
                state: prev_s,
                action: prev_a,
                next_state: state.clone(),
                next_valid_slots: ctx.candidates.iter().map(|c| c.slot as u16).collect(),
                reward: prev_r,
            });
        }
        self.pending
            .insert(key, (state, ctx.candidates[chosen].slot, reward));
        chosen
    }

    /// One training tick: sample a batch, apply Bellman targets through the
    /// target network, and periodically re-sync the target (paper §3.1.2,
    /// experience replay + second target network).
    pub fn train_tick(&mut self) {
        if self.replay.len() == 0 {
            return;
        }
        // (experience, replay index for priority feedback — None when
        // replay is uniform).
        let batch: Vec<(Experience, Option<usize>)> = match &mut self.replay {
            Replay::Uniform(m) => m
                .sample(self.cfg.batch_size)
                .into_iter()
                .map(|e| (e.clone(), None))
                .collect(),
            Replay::Prioritized(m) => m
                .sample_indices(self.cfg.batch_size)
                .into_iter()
                .map(|i| (m.get(i).clone(), Some(i)))
                .collect(),
        };
        for (exp, replay_index) in batch {
            let mut target_q = self.net.forward(&exp.state);
            let next_q = self.target.forward(&exp.next_state);
            // Maximize only over the buffers competing in the next state;
            // Q-values of empty slots are meaningless.
            let best_next = if self.cfg.double_dqn {
                // Double DQN: online net selects, target net evaluates.
                let online_next = self.net.forward(&exp.next_state);
                let chosen = exp
                    .next_valid_slots
                    .iter()
                    .copied()
                    .max_by(|&a, &b| {
                        online_next[a as usize]
                            .partial_cmp(&online_next[b as usize])
                            .unwrap_or(std::cmp::Ordering::Equal)
                    })
                    .expect("next_valid_slots is never empty");
                next_q[chosen as usize]
            } else {
                exp.next_valid_slots
                    .iter()
                    .map(|&s| next_q[s as usize])
                    .fold(f64::NEG_INFINITY, f64::max)
            };
            let old_q = target_q[exp.action];
            let target_val = exp.reward + self.cfg.gamma * best_next;
            target_q[exp.action] = target_val;
            if let (Some(i), Replay::Prioritized(m)) = (replay_index, &mut self.replay) {
                m.update_priority(i, target_val - old_q);
            }
            self.net
                .train_sse(&exp.state, &target_q, self.cfg.lr, self.cfg.grad_clip);
        }
        self.train_ticks += 1;
        if self.train_ticks.is_multiple_of(self.cfg.target_sync_period) {
            self.target = self.net.clone();
        }
    }

    /// Freezes the current network into an inference-only policy (the
    /// paper's impractical-but-strong "NN" arbiter).
    pub fn freeze(&self) -> NnPolicyArbiter {
        NnPolicyArbiter::new(self.net.clone(), self.encoder.clone())
    }

    /// Wraps the agent in a shared handle usable as a simulator arbiter.
    pub fn into_shared(self) -> SharedAgent {
        SharedAgent(Rc::new(RefCell::new(self)))
    }
}

/// A shared, reference-counted handle to a [`DqnAgent`], so the trainer can
/// keep access to the agent while the simulator owns the arbiter.
#[derive(Debug, Clone)]
pub struct SharedAgent(Rc<RefCell<DqnAgent>>);

impl SharedAgent {
    /// An arbiter handle that trains the agent online (exploration +
    /// replay + per-cycle training).
    pub fn training_arbiter(&self) -> RlAgentArbiter {
        RlAgentArbiter {
            agent: Rc::clone(&self.0),
            train: true,
            scratch: InferenceScratch::default(),
        }
    }

    /// An arbiter handle that only exploits (no exploration, no training)
    /// but still shares the live network.
    pub fn greedy_arbiter(&self) -> RlAgentArbiter {
        RlAgentArbiter {
            agent: Rc::clone(&self.0),
            train: false,
            scratch: InferenceScratch::default(),
        }
    }

    /// Runs a closure with the agent borrowed.
    pub fn with<R>(&self, f: impl FnOnce(&DqnAgent) -> R) -> R {
        f(&self.0.borrow())
    }

    /// Runs a closure with the agent mutably borrowed.
    pub fn with_mut<R>(&self, f: impl FnOnce(&mut DqnAgent) -> R) -> R {
        f(&mut self.0.borrow_mut())
    }

    /// Recovers the agent once all other handles are dropped.
    ///
    /// # Panics
    ///
    /// Panics if arbiter handles are still alive.
    pub fn into_inner(self) -> DqnAgent {
        Rc::try_unwrap(self.0)
            .expect("other handles to the agent still exist")
            .into_inner()
    }
}

/// The simulator-facing arbiter backed by a shared [`DqnAgent`].
#[derive(Debug)]
pub struct RlAgentArbiter {
    agent: Rc<RefCell<DqnAgent>>,
    train: bool,
    scratch: InferenceScratch,
}

impl Arbiter for RlAgentArbiter {
    fn name(&self) -> String {
        if self.train {
            "RL-agent (training)".into()
        } else {
            "RL-agent".into()
        }
    }

    fn select(&mut self, ctx: &OutputCtx<'_>) -> Option<usize> {
        let mut agent = self.agent.borrow_mut();
        if self.train {
            Some(agent.decide(ctx))
        } else {
            Some(greedy_choice_with(
                &agent.net,
                &agent.encoder,
                ctx,
                &mut self.scratch,
            ))
        }
    }

    fn end_cycle(&mut self, _net: &NetSnapshot) {
        if self.train {
            self.agent.borrow_mut().train_tick();
        }
    }

    fn checkpoint_state(&self) -> Option<String> {
        // The shared DQN agent mutates its replay buffer, exploration RNG,
        // and network weights mid-run (and the frozen path still shares the
        // agent handle); none of that has a stable serialization here.
        None
    }
}

/// Greedy argmax over candidate slots given a Q-network.
///
/// Exact Q-value ties (common once features alias under congestion) are
/// broken by a rotating pointer keyed to the cycle — the same fair
/// tie-break a hardware select-max with a round-robin pointer would use.
/// Without this, deterministic lowest-slot ties persistently starve
/// high-index buffers whenever states alias.
pub(crate) fn greedy_choice(net: &Mlp, encoder: &StateEncoder, ctx: &OutputCtx<'_>) -> usize {
    let mut scratch = InferenceScratch::default();
    greedy_choice_with(net, encoder, ctx, &mut scratch)
}

/// Reusable buffers for one inference site: the encoded state vector plus
/// the network's activation ping-pong. After warm-up, a greedy decision
/// through [`greedy_choice_with`] performs zero heap allocations.
#[derive(Debug, Clone, Default)]
pub(crate) struct InferenceScratch {
    state: Vec<f64>,
    nn: nn_mlp::Scratch,
}

/// [`greedy_choice`] on caller-owned scratch buffers (the per-decision hot
/// path of the frozen NN arbiter).
pub(crate) fn greedy_choice_with(
    net: &Mlp,
    encoder: &StateEncoder,
    ctx: &OutputCtx<'_>,
    scratch: &mut InferenceScratch,
) -> usize {
    encoder.encode_into(ctx, &mut scratch.state);
    let q = net.forward_into(&scratch.state, &mut scratch.nn);
    argmax_rotating(q, encoder.num_slots(), ctx)
}

/// The candidate argmax over a Q-value vector (one entry per action slot),
/// with the rotating tie-break described on [`greedy_choice`]. Factored out
/// so the scalar, batched and INT8 paths share one decision rule — given
/// the same Q-values they pick the same candidate.
pub(crate) fn argmax_rotating(q: &[f64], slots: usize, ctx: &OutputCtx<'_>) -> usize {
    let ptr = (ctx.cycle as usize).wrapping_mul(7) % slots;
    ctx.candidates
        .iter()
        .enumerate()
        .max_by(|(_, a), (_, b)| {
            let rot = |s: usize| (s + slots - ptr) % slots;
            q[a.slot]
                .partial_cmp(&q[b.slot])
                .unwrap_or(std::cmp::Ordering::Equal)
                .then(rot(b.slot).cmp(&rot(a.slot)))
        })
        .map(|(i, _)| i)
        .expect("select called with empty candidates")
}

/// Numeric datapath of the frozen policy's inference.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum InferenceMode {
    /// Full-precision float inference (the default; the software model
    /// computes in `f64`).
    #[default]
    F32,
    /// INT8 fixed-point inference through [`QuantizedMlp`] — symmetric
    /// per-layer weight quantization with `i32` accumulators, the paper's
    /// Table 3 hardware datapath.
    Int8,
}

impl InferenceMode {
    /// The CLI spelling (`--inference <label>`).
    pub fn label(self) -> &'static str {
        match self {
            InferenceMode::F32 => "f32",
            InferenceMode::Int8 => "int8",
        }
    }
}

impl std::str::FromStr for InferenceMode {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s {
            "f32" => Ok(InferenceMode::F32),
            "int8" => Ok(InferenceMode::Int8),
            other => Err(format!(
                "unknown inference mode '{other}' (expected 'f32' or 'int8')"
            )),
        }
    }
}

/// The frozen inference-only policy — the paper's "NN" arbiter, which is
/// too slow/large for real hardware (Table 3) but serves as the
/// achievability bound the distilled policy is measured against.
///
/// Inference is batched per router: [`Arbiter::plan_router`] encodes every
/// contended output port's state and runs **one** network pass over the
/// whole batch, and [`Arbiter::select`] reads the precomputed Q-row. Each
/// batch row is bit-identical to a scalar pass over the same state (see
/// [`Mlp::forward_batch_into`]), so batching never changes a decision;
/// when an earlier grant filtered an output's candidate list after the
/// plan, `select` falls back to a scalar pass on the filtered state —
/// exactly what the unbatched arbiter would have computed.
#[derive(Debug, Clone)]
pub struct NnPolicyArbiter {
    net: Mlp,
    encoder: StateEncoder,
    epsilon: f64,
    rng: StdRng,
    scratch: InferenceScratch,
    mode: InferenceMode,
    /// Built lazily from `net` the first time INT8 inference runs.
    qnet: Option<QuantizedMlp>,
    qscratch: QuantScratch,
    /// Per-router batching on/off (on by default; the scalar path exists
    /// for the batched-equivalence property tests).
    batched: bool,
    /// `(out_port, candidate count)` per planned row, in batch order.
    plan: Vec<(usize, usize)>,
    plan_router: RouterId,
    plan_cycle: u64,
    /// Row-major Q-values for the planned rows (`num_slots()` per row).
    q_rows: Vec<f64>,
    batch_in: Vec<f64>,
    batch_scratch: nn_mlp::Scratch,
}

impl NnPolicyArbiter {
    /// Creates the policy from a trained network and its encoder.
    ///
    /// The deployed policy keeps the small ε-randomization of the paper's
    /// Algorithm 1 (line 10): without it, recurring aliased states make the
    /// arbiter's preferences between specific buffers permanent, and the
    /// losing buffers starve. Defaults to ε = 0.01; see
    /// [`NnPolicyArbiter::with_epsilon`].
    ///
    /// # Panics
    ///
    /// Panics if the network shape does not match the encoder.
    pub fn new(net: Mlp, encoder: StateEncoder) -> Self {
        assert_eq!(net.input_size(), encoder.state_width(), "input width mismatch");
        assert_eq!(net.output_size(), encoder.num_slots(), "output width mismatch");
        NnPolicyArbiter {
            net,
            encoder,
            epsilon: 0.01,
            rng: StdRng::seed_from_u64(0x9e3779b97f4a7c15),
            scratch: InferenceScratch::default(),
            mode: InferenceMode::F32,
            qnet: None,
            qscratch: QuantScratch::default(),
            batched: true,
            plan: Vec::new(),
            plan_router: RouterId(usize::MAX),
            plan_cycle: u64::MAX,
            q_rows: Vec::new(),
            batch_in: Vec::new(),
            batch_scratch: nn_mlp::Scratch::default(),
        }
    }

    /// Overrides the deployment exploration rate (0 disables).
    pub fn with_epsilon(mut self, epsilon: f64) -> Self {
        self.epsilon = epsilon;
        self
    }

    /// Selects the numeric inference datapath. [`InferenceMode::Int8`]
    /// quantizes the trained network once (symmetric per-layer scales) and
    /// runs every decision through the fixed-point model.
    pub fn with_inference(mut self, mode: InferenceMode) -> Self {
        self.mode = mode;
        if mode == InferenceMode::Int8 && self.qnet.is_none() {
            self.qnet = Some(QuantizedMlp::from_mlp(&self.net));
        }
        self
    }

    /// Enables or disables per-router batched inference. Batching is on by
    /// default and decision-for-decision identical to the scalar path; the
    /// off switch exists so equivalence tests can run both and compare.
    pub fn with_batched(mut self, on: bool) -> Self {
        self.batched = on;
        self
    }

    /// The active inference datapath.
    pub fn inference_mode(&self) -> InferenceMode {
        self.mode
    }

    /// The underlying network (e.g. for interpretability analysis).
    pub fn network(&self) -> &Mlp {
        &self.net
    }

    /// The state encoder.
    pub fn encoder(&self) -> &StateEncoder {
        &self.encoder
    }

    /// The INT8 network, if the arbiter was switched to
    /// [`InferenceMode::Int8`].
    pub fn quantized(&self) -> Option<&QuantizedMlp> {
        self.qnet.as_ref()
    }

    /// Scalar (unbatched) greedy decision on the active datapath.
    fn scalar_choice(&mut self, ctx: &OutputCtx<'_>) -> usize {
        match self.mode {
            InferenceMode::F32 => {
                greedy_choice_with(&self.net, &self.encoder, ctx, &mut self.scratch)
            }
            InferenceMode::Int8 => {
                let qnet = self
                    .qnet
                    .get_or_insert_with(|| QuantizedMlp::from_mlp(&self.net));
                self.encoder.encode_into(ctx, &mut self.scratch.state);
                let q = qnet.forward_into(&self.scratch.state, &mut self.qscratch);
                argmax_rotating(q, self.encoder.num_slots(), ctx)
            }
        }
    }
}

impl Arbiter for NnPolicyArbiter {
    fn name(&self) -> String {
        "NN".into()
    }

    fn plan_router(&mut self, ctx: &RouterCtx<'_>) {
        self.plan.clear();
        // Batching only pays when there is more than one contended output to
        // amortize the network pass over: with a single output the eager plan
        // would do exactly the work `select` does on demand, plus copies.
        if !self.batched || ctx.outputs.len() < 2 {
            return;
        }
        // Encode every contended output's state into one row-major batch …
        self.batch_in.clear();
        for &(out_port, ref cands) in ctx.outputs {
            let octx = OutputCtx {
                router: ctx.router,
                out_port,
                cycle: ctx.cycle,
                num_ports: ctx.num_ports,
                num_vnets: ctx.num_vnets,
                candidates: cands,
                net: ctx.net,
            };
            self.encoder.encode_append(&octx, &mut self.batch_in);
            self.plan.push((out_port, cands.len()));
        }
        // … and run one network pass over the whole router.
        let rows = self.plan.len();
        self.q_rows.clear();
        match self.mode {
            InferenceMode::F32 => {
                let q = self
                    .net
                    .forward_batch_into(&self.batch_in, rows, &mut self.batch_scratch);
                self.q_rows.extend_from_slice(q);
            }
            InferenceMode::Int8 => {
                let qnet = self
                    .qnet
                    .get_or_insert_with(|| QuantizedMlp::from_mlp(&self.net));
                let q = qnet.forward_batch_into(&self.batch_in, rows, &mut self.qscratch);
                self.q_rows.extend_from_slice(q);
            }
        }
        self.plan_router = ctx.router;
        self.plan_cycle = ctx.cycle;
    }

    fn select(&mut self, ctx: &OutputCtx<'_>) -> Option<usize> {
        if self.epsilon > 0.0 && self.rng.gen::<f64>() < self.epsilon {
            return Some(self.rng.gen_range(0..ctx.candidates.len()));
        }
        // Batched fast path: reuse the Q-row computed in `plan_router`. The
        // row is only valid if the candidate list is the one that was
        // encoded — grants to earlier output ports of this router may have
        // filtered it, which only ever *shrinks* the list, so an equal
        // length means an identical list (and an identical encoded state).
        if self.plan_router == ctx.router && self.plan_cycle == ctx.cycle {
            if let Some(row) = self.plan.iter().position(|&(p, _)| p == ctx.out_port) {
                if self.plan[row].1 == ctx.candidates.len() {
                    let w = self.encoder.num_slots();
                    let q = &self.q_rows[row * w..(row + 1) * w];
                    return Some(argmax_rotating(q, w, ctx));
                }
            }
        }
        Some(self.scalar_choice(ctx))
    }

    fn checkpoint_state(&self) -> Option<String> {
        // Greedy inference (ε == 0) is a pure function of the frozen
        // weights and the cycle-guarded batch plan — stateless across a
        // cycle boundary. ε > 0 draws from an exploration RNG whose stream
        // position we do not serialize.
        if self.epsilon == 0.0 {
            Some(String::new())
        } else {
            None
        }
    }

    fn restore_state(&mut self, state: &str) -> Result<(), String> {
        if self.epsilon == 0.0 && state.is_empty() {
            Ok(())
        } else {
            Err(format!("bad NN arbiter state {state:?}"))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::features::FeatureSet;
    use noc_sim::{Candidate, DestType, FeatureBounds, Features, MsgType, NodeId};

    fn encoder() -> StateEncoder {
        StateEncoder::new(5, 3, FeatureSet::synthetic(), FeatureBounds::for_mesh(4, 4))
    }

    fn cand(slot: usize, create: u64, la: u64) -> Candidate {
        Candidate {
            in_port: slot / 3,
            vnet: slot % 3,
            slot,
            features: Features {
                payload_size: 1,
                local_age: la,
                distance: 3,
                hop_count: 1,
                in_flight_from_src: 2,
                inter_arrival: 4,
                msg_type: MsgType::Request,
                dst_type: DestType::Core,
            },
            packet_id: slot as u64,
            create_cycle: create,
            arrival_cycle: create,
            src: NodeId(0),
            dst: NodeId(1),
            port_degraded: false,
        }
    }

    fn ctx<'a>(cands: &'a [Candidate], net: &'a NetSnapshot, cycle: u64) -> OutputCtx<'a> {
        OutputCtx {
            router: RouterId(1),
            out_port: 2,
            cycle,
            num_ports: 5,
            num_vnets: 3,
            candidates: cands,
            net,
        }
    }

    #[test]
    fn decide_fills_replay_via_pending_chain() {
        let mut agent = DqnAgent::new(encoder(), AgentConfig::paper_synthetic(7));
        let net = NetSnapshot::default();
        let cands = vec![cand(0, 5, 10), cand(4, 1, 2)];
        assert_eq!(agent.replay_len(), 0);
        agent.decide(&ctx(&cands, &net, 20));
        // First decision: tuple still pending, nothing in replay.
        assert_eq!(agent.replay_len(), 0);
        agent.decide(&ctx(&cands, &net, 21));
        // Second decision at the same (router, port) completes the tuple.
        assert_eq!(agent.replay_len(), 1);
        assert_eq!(agent.decisions(), 2);
    }

    #[test]
    fn rewards_accumulate_with_global_age_oracle() {
        let mut agent = DqnAgent::new(
            encoder(),
            AgentConfig::paper_synthetic(7).with_epsilon(0.0),
        );
        let net = NetSnapshot::default();
        let cands = vec![cand(0, 5, 10), cand(4, 1, 2)];
        for c in 0..50 {
            agent.decide(&ctx(&cands, &net, c));
        }
        // Reward is 0 or 1 per decision.
        assert!(agent.cumulative_reward() >= 0.0);
        assert!(agent.cumulative_reward() <= 50.0);
    }

    #[test]
    fn exploration_rate_controls_random_actions() {
        let net = NetSnapshot::default();
        let cands = vec![cand(0, 5, 10), cand(4, 1, 2)];
        let mut always = DqnAgent::new(
            encoder(),
            AgentConfig::paper_synthetic(7).with_epsilon(1.0),
        );
        for c in 0..100 {
            always.decide(&ctx(&cands, &net, c));
        }
        assert_eq!(always.explored(), 100);
        let mut never = DqnAgent::new(
            encoder(),
            AgentConfig::paper_synthetic(7).with_epsilon(0.0),
        );
        for c in 0..100 {
            never.decide(&ctx(&cands, &net, c));
        }
        assert_eq!(never.explored(), 0);
    }

    #[test]
    fn training_drives_q_toward_rewarded_action() {
        // Candidate in slot 4 is always globally oldest ⇒ reward 1 for
        // picking it. After training, its Q-value should dominate slot 0's
        // for this state.
        let cfg = AgentConfig {
            epsilon: 0.5, // explore enough to see both actions
            lr: 0.05,
            ..AgentConfig::paper_synthetic(3)
        };
        let mut agent = DqnAgent::new(encoder(), cfg);
        let net = NetSnapshot::default();
        let cands = vec![cand(0, 50, 10), cand(4, 1, 2)];
        for c in 0..2000 {
            let x = ctx(&cands, &net, c);
            agent.decide(&x);
            agent.train_tick();
        }
        let x = ctx(&cands, &net, 3000);
        let state = agent.encoder().encode(&x);
        let q = agent.network().forward(&state);
        assert!(
            q[4] > q[0],
            "Q(oldest)={} should beat Q(newest)={}",
            q[4],
            q[0]
        );
    }

    #[test]
    fn frozen_policy_matches_greedy_agent_choice() {
        let mut agent = DqnAgent::new(
            encoder(),
            AgentConfig::paper_synthetic(9).with_epsilon(0.0),
        );
        let net = NetSnapshot::default();
        let cands = vec![cand(1, 5, 10), cand(7, 1, 2), cand(11, 3, 4)];
        let x = ctx(&cands, &net, 5);
        let live = agent.decide(&x);
        let mut frozen = agent.freeze().with_epsilon(0.0);
        assert_eq!(frozen.select(&x), Some(live));
        assert_eq!(frozen.name(), "NN");
    }

    #[test]
    fn double_dqn_trains_and_differs_from_vanilla() {
        let net = NetSnapshot::default();
        let cands = vec![cand(0, 50, 10), cand(4, 1, 2)];
        let mk = |double| {
            let cfg = AgentConfig {
                epsilon: 0.5,
                lr: 0.05,
                double_dqn: double,
                ..AgentConfig::paper_synthetic(3)
            };
            let mut agent = DqnAgent::new(encoder(), cfg);
            for c in 0..500 {
                let x = ctx(&cands, &net, c);
                agent.decide(&x);
                agent.train_tick();
            }
            agent
        };
        let vanilla = mk(false);
        let double = mk(true);
        assert_eq!(double.decisions(), vanilla.decisions());
        // Double DQN must learn the same preference: the always-oldest
        // candidate (slot 4) ends with the higher Q-value.
        let x = ctx(&cands, &net, 1_000);
        let state = double.encoder().encode(&x);
        let q = double.network().forward(&state);
        assert!(q[4] > q[0], "double DQN failed to learn: {q:?}");
    }

    #[test]
    fn prioritized_replay_agent_trains() {
        let cfg = AgentConfig {
            epsilon: 0.5,
            lr: 0.05,
            ..AgentConfig::paper_synthetic(3)
        }
        .with_prioritized(0.7);
        let mut agent = DqnAgent::new(encoder(), cfg);
        let net = NetSnapshot::default();
        let cands = vec![cand(0, 50, 10), cand(4, 1, 2)];
        for c in 0..1500 {
            let x = ctx(&cands, &net, c);
            agent.decide(&x);
            agent.train_tick();
        }
        let x = ctx(&cands, &net, 2000);
        let state = agent.encoder().encode(&x);
        let q = agent.network().forward(&state);
        assert!(q[4] > q[0], "prioritized agent failed to learn: {q:?}");
        assert!(agent.replay_len() > 0);
    }

    #[test]
    fn shared_handles_roundtrip() {
        let agent = DqnAgent::new(encoder(), AgentConfig::paper_synthetic(1));
        let shared = agent.into_shared();
        let arb = shared.training_arbiter();
        assert_eq!(arb.name(), "RL-agent (training)");
        drop(arb);
        let agent = shared.into_inner();
        assert_eq!(agent.decisions(), 0);
    }

    #[test]
    #[should_panic(expected = "still exist")]
    fn into_inner_with_live_handles_panics() {
        let shared = DqnAgent::new(encoder(), AgentConfig::paper_synthetic(1)).into_shared();
        let _arb = shared.clone().training_arbiter();
        let _ = shared.into_inner();
    }

    #[test]
    #[should_panic(expected = "input width mismatch")]
    fn mismatched_nn_policy_rejected() {
        let net = Mlp::paper_agent(10, 4, 15, 0);
        NnPolicyArbiter::new(net, encoder());
    }
}
