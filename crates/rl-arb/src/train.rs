//! Training drivers: run the agent inside a live simulation and record
//! learning curves (the raw material of Figs. 5, 12 and 13).

use noc_sim::{FeatureBounds, Pattern};

use crate::agent::{AgentConfig, DqnAgent};
use crate::env::SyntheticEnv;
use crate::features::FeatureSet;
use crate::trainer::Trainer;

/// FNV-1a 64-bit hash — the workspace's content hash for pure-data
/// recipes and experiment specs.
pub fn fnv1a64(bytes: &[u8]) -> u64 {
    let mut hash = 0xcbf2_9ce4_8422_2325u64;
    for &b in bytes {
        hash ^= b as u64;
        hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
    }
    hash
}

/// Specification of a synthetic-traffic training run.
#[derive(Debug, Clone)]
pub struct TrainSpec {
    /// Mesh width.
    pub width: u16,
    /// Mesh height.
    pub height: u16,
    /// Traffic pattern.
    pub pattern: Pattern,
    /// Per-node injection probability per cycle.
    pub injection_rate: f64,
    /// Number of training epochs (x-axis of the paper's training curves).
    pub epochs: usize,
    /// Simulated cycles per epoch.
    pub cycles_per_epoch: u64,
    /// Agent hyperparameters.
    pub agent: AgentConfig,
    /// Input features for the agent.
    pub features: FeatureSet,
    /// Seed for the traffic generator.
    pub traffic_seed: u64,
    /// Optional curriculum: earlier phases at gentler loads, as
    /// `(injection rate, epochs)` pairs run *before* the main phase. Each
    /// epoch is `cycles_per_epoch` long; curriculum epochs are prepended to
    /// the returned learning curve.
    pub curriculum: Vec<(f64, usize)>,
    /// Overrides the simulator's feature-normalization caps (e.g. a wider
    /// local-age cap so congested ages do not alias).
    pub feature_bounds: Option<FeatureBounds>,
    /// Overrides the training fabric's virtual-network count (`None` keeps
    /// the simulator default). The agent's input encoder is sized
    /// `ports × vnets × features`, so an agent must be evaluated on a
    /// fabric with the same vnet count it trained with.
    pub vnets: Option<usize>,
}

impl TrainSpec {
    /// The paper's §3.2 setup: a 4×4 mesh under uniform-random traffic,
    /// 4-feature agent with 15 hidden neurons.
    pub fn synthetic_4x4(seed: u64) -> Self {
        TrainSpec {
            width: 4,
            height: 4,
            pattern: Pattern::UniformRandom,
            injection_rate: 0.18,
            epochs: 30,
            cycles_per_epoch: 2_000,
            agent: AgentConfig::paper_synthetic(seed),
            features: FeatureSet::synthetic(),
            traffic_seed: seed.wrapping_add(101),
            curriculum: Vec::new(),
            feature_bounds: None,
            vnets: None,
        }
    }

    /// The tuned recipe that produces this reproduction's "NN" policy for
    /// a `width`×`width` mesh evaluated at `rate`: tuned hyperparameters, a
    /// wide (256-cycle) local-age cap, and a gentler-load curriculum phase
    /// before training at the evaluation rate.
    pub fn tuned_synthetic(width: u16, rate: f64, seed: u64) -> Self {
        let mut bounds = FeatureBounds::for_mesh(width, width);
        bounds.max_local_age = 256;
        TrainSpec {
            width,
            height: width,
            pattern: Pattern::UniformRandom,
            injection_rate: rate,
            epochs: 60,
            cycles_per_epoch: 2_000,
            agent: AgentConfig::tuned_synthetic(seed),
            features: FeatureSet::synthetic(),
            traffic_seed: seed.wrapping_add(101),
            curriculum: vec![(rate * 0.8, 30)],
            feature_bounds: Some(bounds),
            vnets: None,
        }
    }

    /// The §3.2 8×8 variant.
    pub fn synthetic_8x8(seed: u64) -> Self {
        TrainSpec {
            width: 8,
            height: 8,
            injection_rate: 0.10,
            ..TrainSpec::synthetic_4x4(seed)
        }
    }

    /// Content hash of the recipe: FNV-1a 64 over the `Debug` encoding of
    /// this pure-data spec. Equal recipes hash equal; any field change
    /// (rates, hyperparameters, curriculum, seeds) changes the hash —
    /// the property the content-addressed artifact store keys on.
    pub fn hash_hex(&self) -> String {
        format!("{:016x}", fnv1a64(format!("{self:?}").as_bytes()))
    }
}

/// Result of a training run.
#[derive(Debug)]
pub struct TrainOutcome {
    /// Average message latency per epoch (the paper's training-curve
    /// y-axis).
    pub curve: Vec<f64>,
    /// Fraction of decisions per epoch that matched the global-age oracle
    /// (only meaningful under the global-age reward, where reward = match).
    pub accuracy: Vec<f64>,
    /// The trainer's early-stop verdict: `Some(true)` when the armed
    /// convergence check fired (remaining epochs skipped), `Some(false)`
    /// when armed but never satisfied, `None` when early stopping was off.
    /// Persisted in the checkpoint's `converged` field.
    pub converged: Option<bool>,
    /// The trained agent.
    pub agent: DqnAgent,
}

/// The convergence criterion shared by [`TrainOutcome::converged`] and
/// the trainer's early-stop check: the mean of the last quarter of the
/// curve is within `tolerance`× of the best epoch (needs ≥ 8 samples).
pub(crate) fn curve_converged(curve: &[f64], tolerance: f64) -> bool {
    if curve.len() < 8 {
        return false;
    }
    let tail = &curve[curve.len() - curve.len() / 4..];
    let tail_mean = tail.iter().sum::<f64>() / tail.len() as f64;
    let best = curve.iter().copied().fold(f64::INFINITY, f64::min);
    tail_mean <= best * tolerance
}

impl TrainOutcome {
    /// Final-epoch average latency.
    pub fn final_latency(&self) -> f64 {
        self.curve.last().copied().unwrap_or(0.0)
    }

    /// Best (lowest) epoch latency.
    pub fn best_latency(&self) -> f64 {
        self.curve
            .iter()
            .copied()
            .fold(f64::INFINITY, f64::min)
    }

    /// A crude convergence check: the mean of the last quarter of the
    /// curve is within `tolerance`× of the best epoch. Unconverging
    /// rewards (paper Fig. 12's `acc_latency`/`link_util`) fail this.
    /// The same criterion drives [`Trainer::with_early_stop`].
    ///
    /// [`Trainer::with_early_stop`]: crate::Trainer::with_early_stop
    pub fn converged(&self, tolerance: f64) -> bool {
        curve_converged(&self.curve, tolerance)
    }
}

/// Trains a fresh agent on a synthetic-traffic mesh and returns the
/// learning curve plus the trained agent.
///
/// Statistics (and hence the per-epoch average latency) are reset between
/// epochs, but the network state, buffers, and agent persist — this is one
/// continuous simulation observed in epoch-sized windows, like the paper's
/// "training time" axis.
///
/// # Panics
///
/// Panics if the specification is internally inconsistent (zero-sized mesh,
/// epochs of zero cycles, …).
pub fn train_synthetic(spec: &TrainSpec) -> TrainOutcome {
    Trainer::new(spec.agent.clone()).run(&mut SyntheticEnv::new(spec))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::features::StateEncoder;
    use crate::reward::RewardKind;
    use noc_sim::{SimConfig, Topology};

    fn quick_spec(seed: u64) -> TrainSpec {
        TrainSpec {
            epochs: 10,
            cycles_per_epoch: 600,
            injection_rate: 0.25,
            ..TrainSpec::synthetic_4x4(seed)
        }
    }

    #[test]
    fn training_produces_a_curve_and_experiences() {
        let out = train_synthetic(&quick_spec(5));
        assert_eq!(out.curve.len(), 10);
        assert_eq!(out.accuracy.len(), 10);
        assert!(out.accuracy.iter().all(|&a| (0.0..=1.0).contains(&a)));
        assert!(out.curve.iter().all(|&l| l > 0.0));
        assert!(out.agent.decisions() > 0, "agent was queried");
        assert!(out.agent.replay_len() > 0, "replay memory filled");
    }

    #[test]
    fn global_age_reward_improves_over_training() {
        // Compare the agent's early vs late epochs under contention: the
        // curve should not get dramatically worse, and usually improves.
        let out = train_synthetic(&TrainSpec {
            epochs: 16,
            cycles_per_epoch: 1_000,
            injection_rate: 0.30,
            ..TrainSpec::synthetic_4x4(11)
        });
        let early = out.curve[..4].iter().sum::<f64>() / 4.0;
        let late = out.curve[out.curve.len() - 4..].iter().sum::<f64>() / 4.0;
        assert!(
            late <= early * 1.25,
            "training diverged: early {early:.1}, late {late:.1}"
        );
    }

    #[test]
    fn outcome_helpers_summarize_curve() {
        let outcome = TrainOutcome {
            curve: vec![100.0, 60.0, 40.0, 30.0, 31.0, 30.0, 29.0, 30.0],
            accuracy: vec![0.5; 8],
            converged: None,
            agent: {
                let spec = quick_spec(1);
                let topo = Topology::uniform_mesh(4, 4).unwrap();
                let cfg = SimConfig::synthetic(4, 4);
                DqnAgent::new(
                    StateEncoder::new(
                        topo.ports_per_router(),
                        cfg.num_vnets,
                        spec.features,
                        cfg.feature_bounds,
                    ),
                    spec.agent,
                )
            },
        };
        assert_eq!(outcome.final_latency(), 30.0);
        assert_eq!(outcome.best_latency(), 29.0);
        assert!(outcome.converged(1.1));
        assert!(!outcome.converged(1.0));
    }

    #[test]
    fn different_rewards_produce_different_agents() {
        let base = quick_spec(3);
        let a = train_synthetic(&base);
        let b = train_synthetic(&TrainSpec {
            agent: base.agent.clone().with_reward(RewardKind::LinkUtil),
            ..base.clone()
        });
        // Same seeds, different reward ⇒ different learned weights.
        assert_ne!(
            a.agent.network().forward(&vec![0.5; 60]),
            b.agent.network().forward(&vec![0.5; 60])
        );
    }
}
