//! Hill-climbing feature selection (paper §6.5), on top of a generic
//! greedy-climb engine.
//!
//! "We started by individually training the neural network with only one
//! feature at a time … we then retrained utilizing all pairs of features
//! combining local age with one other feature … which resulted in local age
//! and hop count." This module automates that procedure: greedily grow the
//! feature set, keeping an addition only if it improves final latency by at
//! least a relative margin.
//!
//! The greedy loop itself is not feature-specific, so it is factored out
//! as [`greedy_climb`] over an arbitrary candidate type and evaluation
//! function; the experiment layer's design-space search reuses the same
//! procedure over configuration axes (`bench::exp::search`), and
//! [`hill_climb`] is its feature-selection instantiation.

use crate::features::{Feature, FeatureSet};
use crate::train::{train_synthetic, TrainSpec};

/// One evaluated candidate set of a [`greedy_climb`] run.
#[derive(Debug, Clone, PartialEq)]
pub struct ClimbStep<T> {
    /// The candidate set evaluated at this step.
    pub set: Vec<T>,
    /// Its objective value (lower is better).
    pub value: f64,
}

/// Result of a [`greedy_climb`] run.
#[derive(Debug, Clone, PartialEq)]
pub struct ClimbOutcome<T> {
    /// The selected candidate set, in the order candidates were adopted.
    pub selected: Vec<T>,
    /// Final objective value of the selected set.
    pub value: f64,
    /// Every evaluation performed, in order.
    pub history: Vec<ClimbStep<T>>,
}

/// Greedy forward selection over arbitrary candidates: round 1 evaluates
/// each candidate alone, subsequent rounds try adding each remaining
/// candidate to the incumbent set, and an addition is kept when it
/// improves the objective (lower is better) by at least `min_gain`
/// (relative, e.g. `0.02` = 2%). Deterministic: ties keep the
/// earliest-evaluated set, and candidates are explored in slice order.
///
/// # Examples
///
/// ```
/// // Select the subset of {1, 2, 3} minimizing a toy objective that
/// // rewards having both 1 and 3 in the set.
/// let out = rl_arb::greedy_climb(&[1u32, 2, 3], 0.01, |set| {
///     10.0 - set.iter().map(|&c| if c == 2 { 0.1 } else { 3.0 }).sum::<f64>()
/// });
/// assert_eq!(out.selected, vec![1, 3, 2]);
/// ```
///
/// # Panics
///
/// Panics if `candidates` is empty.
pub fn greedy_climb<T, F>(candidates: &[T], min_gain: f64, mut eval: F) -> ClimbOutcome<T>
where
    T: Clone + PartialEq,
    F: FnMut(&[T]) -> f64,
{
    assert!(!candidates.is_empty(), "need at least one candidate feature");
    let mut history: Vec<ClimbStep<T>> = Vec::new();
    let mut eval = |set: &[T], history: &mut Vec<ClimbStep<T>>| {
        let value = eval(set);
        history.push(ClimbStep { set: set.to_vec(), value });
        value
    };

    // Round 1: each candidate alone.
    let mut best_set: Vec<T> = Vec::new();
    let mut best_value = f64::INFINITY;
    for c in candidates {
        let v = eval(std::slice::from_ref(c), &mut history);
        if v < best_value {
            best_value = v;
            best_set = vec![c.clone()];
        }
    }

    // Subsequent rounds: try adding each remaining candidate.
    loop {
        let mut round_best: Option<(T, f64)> = None;
        for c in candidates {
            if best_set.contains(c) {
                continue;
            }
            let mut trial = best_set.clone();
            trial.push(c.clone());
            let v = eval(&trial, &mut history);
            if round_best.as_ref().is_none_or(|(_, bv)| v < *bv) {
                round_best = Some((c.clone(), v));
            }
        }
        match round_best {
            Some((c, v)) if v < best_value * (1.0 - min_gain) => {
                best_set.push(c);
                best_value = v;
            }
            _ => break,
        }
    }

    ClimbOutcome { selected: best_set, value: best_value, history }
}

/// One evaluated feature set.
#[derive(Debug, Clone, PartialEq)]
pub struct Evaluation {
    /// The features trained with.
    pub features: Vec<Feature>,
    /// Mean latency over the last quarter of the training curve.
    pub latency: f64,
}

/// Result of a hill-climbing search.
#[derive(Debug, Clone, PartialEq)]
pub struct HillClimbResult {
    /// The selected feature set, in the order features were adopted.
    pub selected: Vec<Feature>,
    /// Final latency of the selected set.
    pub latency: f64,
    /// Every evaluation performed, in order.
    pub history: Vec<Evaluation>,
}

fn settled_latency(spec: &TrainSpec) -> f64 {
    let out = train_synthetic(spec);
    let q = (out.curve.len() / 4).max(1);
    let tail = &out.curve[out.curve.len() - q..];
    tail.iter().sum::<f64>() / tail.len() as f64
}

/// Greedy forward feature selection over `candidates`, evaluated by
/// training on `base` (whose `features` field is replaced per evaluation) —
/// [`greedy_climb`] instantiated with train-and-measure as the objective.
/// An addition is kept when it improves the settled latency by at least
/// `min_gain` (relative, e.g. `0.02` = 2%).
///
/// # Panics
///
/// Panics if `candidates` is empty.
pub fn hill_climb(base: &TrainSpec, candidates: &[Feature], min_gain: f64) -> HillClimbResult {
    let out = greedy_climb(candidates, min_gain, |features: &[Feature]| {
        let spec = TrainSpec {
            features: FeatureSet::from_features(features),
            ..base.clone()
        };
        settled_latency(&spec)
    });
    HillClimbResult {
        selected: out.selected,
        latency: out.value,
        history: out
            .history
            .into_iter()
            .map(|s| Evaluation { features: s.set, latency: s.value })
            .collect(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::agent::AgentConfig;
    use noc_sim::Pattern;

    fn tiny_spec() -> TrainSpec {
        TrainSpec {
            width: 4,
            height: 4,
            pattern: Pattern::UniformRandom,
            injection_rate: 0.3,
            epochs: 4,
            cycles_per_epoch: 300,
            agent: AgentConfig::paper_synthetic(2),
            features: FeatureSet::synthetic(),
            traffic_seed: 5,
            curriculum: Vec::new(),
            feature_bounds: None,
            vnets: None,
        }
    }

    #[test]
    fn single_round_explores_each_candidate() {
        let result = hill_climb(
            &tiny_spec(),
            &[Feature::LocalAge, Feature::HopCount],
            0.5, // huge gain requirement: stop after round 1
        );
        assert_eq!(result.selected.len(), 1);
        // Round 1 (2 evals) + round 2 (1 eval of the remaining feature).
        assert_eq!(result.history.len(), 3);
        assert!(result.latency.is_finite());
    }

    #[test]
    fn history_records_feature_sets() {
        let result = hill_climb(&tiny_spec(), &[Feature::PayloadSize], 0.01);
        assert_eq!(result.history[0].features, vec![Feature::PayloadSize]);
        assert_eq!(result.selected, vec![Feature::PayloadSize]);
    }

    #[test]
    #[should_panic(expected = "at least one candidate")]
    fn empty_candidates_rejected() {
        hill_climb(&tiny_spec(), &[], 0.01);
    }

    #[test]
    fn generic_climb_adopts_helpful_candidates_in_order() {
        // Objective: minimize 10 − sum of contributions; 'a' and 'c'
        // contribute 3.0 each, 'b' only 0.1 (below the 1% gain bar once
        // the big contributors are in).
        let out = greedy_climb(&["a", "b", "c"], 0.01, |set| {
            10.0 - set.iter().map(|&c| if c == "b" { 0.1 } else { 3.0 }).sum::<f64>()
        });
        assert_eq!(out.selected, vec!["a", "c", "b"]);
        // Round 1: 3 singles; round 2: 2 pairs; round 3: 1 triple; round
        // 4 has no remaining candidates and terminates.
        assert_eq!(out.history.len(), 6);
        assert!((out.value - 3.9).abs() < 1e-9);
    }

    #[test]
    fn generic_climb_stops_below_min_gain() {
        // Adding anything past the first candidate improves by < 50%.
        let out = greedy_climb(&[1u32, 2], 0.5, |set| 10.0 - set.len() as f64);
        assert_eq!(out.selected.len(), 1);
        assert_eq!(out.value, 9.0);
    }
}
