//! Hill-climbing feature selection (paper §6.5).
//!
//! "We started by individually training the neural network with only one
//! feature at a time … we then retrained utilizing all pairs of features
//! combining local age with one other feature … which resulted in local age
//! and hop count." This module automates that procedure: greedily grow the
//! feature set, keeping an addition only if it improves final latency by at
//! least a relative margin.

use crate::features::{Feature, FeatureSet};
use crate::train::{train_synthetic, TrainSpec};

/// One evaluated feature set.
#[derive(Debug, Clone, PartialEq)]
pub struct Evaluation {
    /// The features trained with.
    pub features: Vec<Feature>,
    /// Mean latency over the last quarter of the training curve.
    pub latency: f64,
}

/// Result of a hill-climbing search.
#[derive(Debug, Clone, PartialEq)]
pub struct HillClimbResult {
    /// The selected feature set, in the order features were adopted.
    pub selected: Vec<Feature>,
    /// Final latency of the selected set.
    pub latency: f64,
    /// Every evaluation performed, in order.
    pub history: Vec<Evaluation>,
}

fn settled_latency(spec: &TrainSpec) -> f64 {
    let out = train_synthetic(spec);
    let q = (out.curve.len() / 4).max(1);
    let tail = &out.curve[out.curve.len() - q..];
    tail.iter().sum::<f64>() / tail.len() as f64
}

/// Greedy forward feature selection over `candidates`, evaluated by
/// training on `base` (whose `features` field is replaced per evaluation).
/// An addition is kept when it improves the settled latency by at least
/// `min_gain` (relative, e.g. `0.02` = 2%).
///
/// # Panics
///
/// Panics if `candidates` is empty.
pub fn hill_climb(base: &TrainSpec, candidates: &[Feature], min_gain: f64) -> HillClimbResult {
    assert!(!candidates.is_empty(), "need at least one candidate feature");
    let mut history = Vec::new();
    let eval = |features: &[Feature], history: &mut Vec<Evaluation>| {
        let spec = TrainSpec {
            features: FeatureSet::from_features(features),
            ..base.clone()
        };
        let latency = settled_latency(&spec);
        history.push(Evaluation {
            features: features.to_vec(),
            latency,
        });
        latency
    };

    // Round 1: each feature alone.
    let mut best_set: Vec<Feature> = Vec::new();
    let mut best_latency = f64::INFINITY;
    for &f in candidates {
        let l = eval(&[f], &mut history);
        if l < best_latency {
            best_latency = l;
            best_set = vec![f];
        }
    }

    // Subsequent rounds: try adding each remaining feature.
    loop {
        let mut round_best: Option<(Feature, f64)> = None;
        for &f in candidates {
            if best_set.contains(&f) {
                continue;
            }
            let mut trial = best_set.clone();
            trial.push(f);
            let l = eval(&trial, &mut history);
            if round_best.is_none_or(|(_, bl)| l < bl) {
                round_best = Some((f, l));
            }
        }
        match round_best {
            Some((f, l)) if l < best_latency * (1.0 - min_gain) => {
                best_set.push(f);
                best_latency = l;
            }
            _ => break,
        }
    }

    HillClimbResult {
        selected: best_set,
        latency: best_latency,
        history,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::agent::AgentConfig;
    use noc_sim::Pattern;

    fn tiny_spec() -> TrainSpec {
        TrainSpec {
            width: 4,
            height: 4,
            pattern: Pattern::UniformRandom,
            injection_rate: 0.3,
            epochs: 4,
            cycles_per_epoch: 300,
            agent: AgentConfig::paper_synthetic(2),
            features: FeatureSet::synthetic(),
            traffic_seed: 5,
            curriculum: Vec::new(),
            feature_bounds: None,
        }
    }

    #[test]
    fn single_round_explores_each_candidate() {
        let result = hill_climb(
            &tiny_spec(),
            &[Feature::LocalAge, Feature::HopCount],
            0.5, // huge gain requirement: stop after round 1
        );
        assert_eq!(result.selected.len(), 1);
        // Round 1 (2 evals) + round 2 (1 eval of the remaining feature).
        assert_eq!(result.history.len(), 3);
        assert!(result.latency.is_finite());
    }

    #[test]
    fn history_records_feature_sets() {
        let result = hill_climb(&tiny_spec(), &[Feature::PayloadSize], 0.01);
        assert_eq!(result.history[0].features, vec![Feature::PayloadSize]);
        assert_eq!(result.selected, vec![Feature::PayloadSize]);
    }

    #[test]
    #[should_panic(expected = "at least one candidate")]
    fn empty_candidates_rejected() {
        hill_climb(&tiny_spec(), &[], 0.01);
    }
}
