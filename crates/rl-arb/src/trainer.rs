//! The generic training loop over [`TrainEnv`] — one `Trainer` drives
//! both the synthetic and the APU environments, replacing the formerly
//! duplicated per-environment epoch loops.

use std::sync::atomic::{AtomicU64, Ordering};

use crate::agent::{AgentConfig, DqnAgent};
use crate::env::TrainEnv;
use crate::train::{curve_converged, TrainOutcome};

/// Process-wide epoch counter, incremented once per executed training
/// epoch (see [`training_epochs`]).
static TRAINING_EPOCHS: AtomicU64 = AtomicU64::new(0);

/// Total training epochs executed by every [`Trainer::run`] in this
/// process. The artifact-cache tests compare this across a warm-store run
/// to prove zero training happened.
pub fn training_epochs() -> u64 {
    TRAINING_EPOCHS.load(Ordering::Relaxed)
}

/// The generic training loop: creates a fresh shared agent from the
/// environment's encoder, runs the environment's epoch schedule, and
/// records the learning curve plus per-epoch oracle accuracy.
#[derive(Debug, Clone)]
pub struct Trainer {
    agent: AgentConfig,
    early_stop: Option<f64>,
}

impl Trainer {
    /// A trainer for agents with the given hyperparameters.
    pub fn new(agent: AgentConfig) -> Self {
        Trainer { agent, early_stop: None }
    }

    /// Arms early stopping: after each epoch (once ≥ 8 curve samples
    /// exist) the partial curve is checked with the
    /// [`TrainOutcome::converged`] criterion at `tolerance`; on success
    /// the remaining epochs are skipped and the outcome (and hence its
    /// checkpoint) records `converged: Some(true)`.
    pub fn with_early_stop(mut self, tolerance: f64) -> Self {
        self.early_stop = Some(tolerance);
        self
    }

    /// Runs the environment's full epoch schedule with a freshly
    /// initialized agent and returns the outcome.
    ///
    /// # Panics
    ///
    /// Panics on an empty schedule.
    pub fn run(&self, env: &mut dyn TrainEnv) -> TrainOutcome {
        let total = env.num_epochs();
        assert!(total > 0, "empty training run");
        let shared = DqnAgent::new(env.encoder(), self.agent.clone()).into_shared();

        let mut curve = Vec::with_capacity(total);
        let mut accuracy = Vec::with_capacity(total);
        let mut last_decisions = 0u64;
        let mut last_reward = 0.0f64;
        let mut converged = self.early_stop.map(|_| false);
        for _ in 0..total {
            TRAINING_EPOCHS.fetch_add(1, Ordering::Relaxed);
            curve.push(env.run_epoch(&shared));
            let (dec, rew) = shared.with(|a| (a.decisions(), a.cumulative_reward()));
            let epoch_dec = dec - last_decisions;
            accuracy.push(if epoch_dec == 0 {
                0.0
            } else {
                (rew - last_reward) / epoch_dec as f64
            });
            last_decisions = dec;
            last_reward = rew;
            if let Some(tolerance) = self.early_stop {
                if curve_converged(&curve, tolerance) {
                    converged = Some(true);
                    break;
                }
            }
        }
        env.release();
        TrainOutcome {
            curve,
            accuracy,
            converged,
            agent: shared.into_inner(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::env::SyntheticEnv;
    use crate::train::TrainSpec;

    fn quick_spec(seed: u64) -> TrainSpec {
        TrainSpec {
            epochs: 10,
            cycles_per_epoch: 400,
            injection_rate: 0.25,
            ..TrainSpec::synthetic_4x4(seed)
        }
    }

    #[test]
    fn trainer_counts_epochs_globally() {
        let before = training_epochs();
        let out = Trainer::new(quick_spec(3).agent.clone())
            .run(&mut SyntheticEnv::new(&quick_spec(3)));
        assert_eq!(out.curve.len(), 10);
        assert_eq!(training_epochs() - before, 10);
        assert_eq!(out.converged, None, "no early stop armed");
    }

    #[test]
    fn early_stop_truncates_a_flat_curve_and_records_convergence() {
        /// An environment with a constant-latency curve: converges as soon
        /// as the criterion has enough samples (8), regardless of agent.
        #[derive(Debug)]
        struct FlatEnv;
        impl crate::env::TrainEnv for FlatEnv {
            fn label(&self) -> String {
                "flat".into()
            }
            fn encoder(&self) -> crate::StateEncoder {
                // Geometry from the topology, not hardcoded: 5 ports and a
                // diameter-6 bound on a 1-local 4×4 mesh, same as before.
                let topo = noc_sim::Topology::uniform_mesh(4, 4).unwrap();
                crate::StateEncoder::new(
                    topo.ports_per_router(),
                    3,
                    crate::FeatureSet::synthetic(),
                    noc_sim::FeatureBounds::for_topology(&topo),
                )
            }
            fn num_epochs(&self) -> usize {
                100
            }
            fn run_epoch(&mut self, _agent: &crate::SharedAgent) -> f64 {
                25.0
            }
        }

        let out = Trainer::new(crate::AgentConfig::tuned_synthetic(1))
            .with_early_stop(1.05)
            .run(&mut FlatEnv);
        assert_eq!(out.curve.len(), 8, "stopped at the first possible check");
        assert_eq!(out.converged, Some(true));
        // The convergence verdict agrees with the outcome's own criterion.
        assert!(out.converged(1.05));
    }

    #[test]
    fn unarmed_trainer_runs_the_full_schedule_without_a_verdict() {
        let spec = quick_spec(9);
        let armed = Trainer::new(spec.agent.clone())
            .with_early_stop(f64::INFINITY)
            .run(&mut SyntheticEnv::new(&spec));
        // Infinite tolerance converges at the first check (8 epochs) …
        assert_eq!(armed.curve.len(), 8);
        assert_eq!(armed.converged, Some(true));
        // … while the unarmed trainer runs all 10 with no verdict.
        let unarmed = Trainer::new(spec.agent.clone()).run(&mut SyntheticEnv::new(&spec));
        assert_eq!(unarmed.curve.len(), 10);
        assert_eq!(unarmed.converged, None);
    }
}
