//! Multiple agents over router subsets (paper §3.1.1).
//!
//! "Note that the same neural-network weights are used to calculate
//! Q-values across all output ports and routers … However, this is not
//! fundamental; designers can use multiple agents for training, where each
//! agent is trained with only a fixed subset of routers." This module
//! implements that design point: a router→agent partition, an arbiter that
//! dispatches each decision to the owning agent, and a quadrant partition
//! helper matching the APU layout.

use noc_sim::{Arbiter, NetSnapshot, OutputCtx, RouterCtx, Topology};

use crate::agent::{AgentConfig, DqnAgent, RlAgentArbiter, SharedAgent};
use crate::features::StateEncoder;

/// A set of agents plus the router→agent assignment.
#[derive(Debug, Clone)]
pub struct PartitionedAgents {
    agents: Vec<SharedAgent>,
    /// `assignment[router] = agent index`.
    assignment: Vec<usize>,
}

impl PartitionedAgents {
    /// Creates a partition from explicit agents and a per-router
    /// assignment.
    ///
    /// # Panics
    ///
    /// Panics if `agents` is empty or any assignment index is out of range.
    pub fn new(agents: Vec<SharedAgent>, assignment: Vec<usize>) -> Self {
        assert!(!agents.is_empty(), "need at least one agent");
        assert!(
            assignment.iter().all(|&a| a < agents.len()),
            "assignment references a missing agent"
        );
        PartitionedAgents { agents, assignment }
    }

    /// One agent per mesh quadrant — the natural partition for the APU
    /// system, where each quadrant runs an independent workload copy.
    /// Agents are seeded from `cfg.seed + quadrant`.
    pub fn by_quadrant(topo: &Topology, encoder: &StateEncoder, cfg: &AgentConfig) -> Self {
        let agents: Vec<SharedAgent> = (0..4)
            .map(|q| {
                let mut c = cfg.clone();
                c.seed = cfg.seed.wrapping_add(q as u64);
                DqnAgent::new(encoder.clone(), c).into_shared()
            })
            .collect();
        let assignment = (0..topo.num_routers())
            .map(|r| {
                let c = topo.coord(noc_sim::RouterId(r));
                let qx = usize::from(c.x >= topo.width() / 2);
                let qy = usize::from(c.y >= topo.height() / 2);
                qy * 2 + qx
            })
            .collect();
        PartitionedAgents { agents, assignment }
    }

    /// The agents, in index order.
    pub fn agents(&self) -> &[SharedAgent] {
        &self.agents
    }

    /// The per-router assignment.
    pub fn assignment(&self) -> &[usize] {
        &self.assignment
    }

    /// A training arbiter dispatching each router's decisions to its
    /// owning agent.
    pub fn training_arbiter(&self) -> MultiAgentArbiter {
        MultiAgentArbiter {
            handles: self.agents.iter().map(|a| a.training_arbiter()).collect(),
            assignment: self.assignment.clone(),
        }
    }

    /// Recovers the trained agents once the simulator (and its arbiter)
    /// has been dropped.
    ///
    /// # Panics
    ///
    /// Panics if arbiter handles are still alive.
    pub fn into_agents(self) -> Vec<DqnAgent> {
        self.agents.into_iter().map(SharedAgent::into_inner).collect()
    }
}

/// An [`Arbiter`] that routes each decision to the agent owning the
/// router, per the partition.
#[derive(Debug)]
pub struct MultiAgentArbiter {
    handles: Vec<RlAgentArbiter>,
    assignment: Vec<usize>,
}

impl Arbiter for MultiAgentArbiter {
    fn name(&self) -> String {
        format!("RL-agents x{} (training)", self.handles.len())
    }

    fn select(&mut self, ctx: &OutputCtx<'_>) -> Option<usize> {
        let agent = self
            .assignment
            .get(ctx.router.index())
            .copied()
            .unwrap_or(0);
        self.handles[agent].select(ctx)
    }

    fn plan_router(&mut self, ctx: &RouterCtx<'_>) {
        let agent = self
            .assignment
            .get(ctx.router.index())
            .copied()
            .unwrap_or(0);
        self.handles[agent].plan_router(ctx);
    }

    fn end_cycle(&mut self, net: &NetSnapshot) {
        for h in &mut self.handles {
            h.end_cycle(net);
        }
    }

    fn checkpoint_state(&self) -> Option<String> {
        // Training arbiters mutate their shared agents mid-run; see
        // `RlAgentArbiter::checkpoint_state`.
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::features::FeatureSet;
    use noc_sim::{
        FeatureBounds, Pattern, SimConfig, Simulator, SyntheticTraffic,
    };

    fn encoder() -> StateEncoder {
        StateEncoder::new(5, 3, FeatureSet::synthetic(), FeatureBounds::for_mesh(4, 4))
    }

    #[test]
    fn quadrant_partition_covers_all_routers() {
        let topo = Topology::uniform_mesh(4, 4).unwrap();
        let p = PartitionedAgents::by_quadrant(&topo, &encoder(), &AgentConfig::tuned_synthetic(1));
        assert_eq!(p.agents().len(), 4);
        assert_eq!(p.assignment().len(), 16);
        // Each quadrant owns exactly 4 routers of the 4x4 mesh.
        for q in 0..4 {
            assert_eq!(p.assignment().iter().filter(|&&a| a == q).count(), 4);
        }
    }

    #[test]
    fn multi_agent_training_reaches_every_agent() {
        let topo = Topology::uniform_mesh(4, 4).unwrap();
        let cfg = SimConfig::synthetic(4, 4);
        let partition =
            PartitionedAgents::by_quadrant(&topo, &encoder(), &AgentConfig::tuned_synthetic(3));
        let traffic = SyntheticTraffic::new(&topo, Pattern::UniformRandom, 0.35, cfg.num_vnets, 9);
        let mut sim = Simulator::new(
            topo,
            cfg,
            Box::new(partition.training_arbiter()),
            traffic,
        )
        .unwrap();
        sim.run(3_000);
        drop(sim);
        let agents = partition.into_agents();
        for (i, a) in agents.iter().enumerate() {
            assert!(a.decisions() > 0, "agent {i} made no decisions");
        }
        // Decisions are split, not duplicated: under uniform traffic every
        // quadrant sees a comparable share.
        let total: u64 = agents.iter().map(|a| a.decisions()).sum();
        for a in &agents {
            assert!(a.decisions() * 8 > total, "agent shares are wildly uneven");
        }
    }

    #[test]
    #[should_panic(expected = "references a missing agent")]
    fn bad_assignment_rejected() {
        let a = DqnAgent::new(encoder(), AgentConfig::tuned_synthetic(0)).into_shared();
        PartitionedAgents::new(vec![a], vec![0, 1]);
    }

    #[test]
    #[should_panic(expected = "at least one agent")]
    fn empty_agent_list_rejected() {
        PartitionedAgents::new(vec![], vec![]);
    }
}
