//! # rl-arb — deep-Q-learning NoC arbitration
//!
//! The core contribution of *"Experiences with ML-Driven Design: A NoC Case
//! Study"* (HPCA 2020): a reinforcement-learning agent that learns NoC
//! arbitration policies, plus the tooling the authors used to turn the
//! trained network into the implementable "RL-inspired" arbiter.
//!
//! * [`StateEncoder`] / [`FeatureSet`] — Table 2 feature engineering:
//!   normalization and one-hot encoding (§4.3, §6.2).
//! * [`DqnAgent`] — the shared agent: ε-greedy decisions, experience
//!   replay, target network, per-cycle SGD (§3.1, §4.5–4.6).
//! * [`RewardKind`] — the three reward formulations compared in Fig. 12.
//! * [`NnPolicyArbiter`] — the frozen "NN" policy of Figs. 5 and 9–11.
//! * [`weight_heatmap`] — the Figs. 4/7 interpretability readout.
//! * [`train_synthetic`] / [`hill_climb`] — training drivers used by the
//!   figure regenerators (Figs. 12, 13) and §6.5's alternative analysis.
//! * [`OnlinePolicy`] / [`RlVcController`] — the self-healing extensions:
//!   in-situ DQN learning during the measured run, and a learned per-VC
//!   credit-budget controller (deterministic, checkpointable).
//!
//! ## Training an agent end to end
//!
//! ```
//! use rl_arb::{train_synthetic, TrainSpec, weight_heatmap};
//!
//! let mut spec = TrainSpec::synthetic_4x4(42);
//! spec.epochs = 2; // keep the doc test fast
//! spec.cycles_per_epoch = 200;
//! let outcome = train_synthetic(&spec);
//! let heatmap = weight_heatmap(outcome.agent.network(), outcome.agent.encoder());
//! println!("{}", heatmap.to_ascii());
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

mod agent;
mod ckpt;
mod env;
mod features;
mod hillclimb;
mod interpret;
mod multi;
mod online;
pub mod progress;
mod replay;
mod reward;
mod train;
mod trainer;
mod vc_ctl;

pub use agent::{AgentConfig, DqnAgent, InferenceMode, NnPolicyArbiter, RlAgentArbiter, SharedAgent};
pub use ckpt::{
    agent_config_from_checkpoint, checkpoint_from_outcome, distill_checkpoint,
    encoder_from_checkpoint, policy_from_checkpoint,
};
pub use env::{ApuEnv, ApuTrainSpec, SyntheticEnv, TrainEnv, TrainRecipe};
pub use features::{Feature, FeatureSet, StateEncoder};
pub use hillclimb::{
    greedy_climb, hill_climb, ClimbOutcome, ClimbStep, Evaluation, HillClimbResult,
};
pub use interpret::{weight_heatmap, Heatmap};
pub use multi::{MultiAgentArbiter, PartitionedAgents};
pub use online::OnlinePolicy;
pub use progress::{is_quiet, set_quiet};
pub use replay::{Experience, PrioritizedReplay, ReplayMemory};
pub use reward::RewardKind;
pub use train::{fnv1a64, train_synthetic, TrainOutcome, TrainSpec};
pub use trainer::{training_epochs, Trainer};
pub use vc_ctl::RlVcController;
