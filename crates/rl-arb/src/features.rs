//! Feature selection and state-vector encoding (paper §4.3–§4.4, §6.2).
//!
//! A router state vector is the concatenation, over every input buffer
//! `(port, vnet)` in a fixed layout, of the selected message features of the
//! buffer's head message — zeros for buffers that are empty or not competing
//! for the output being arbitrated. Scalar features are normalized to
//! `[0, 1]`; categorical features (message type, destination type) are
//! one-hot encoded so the network can learn their importance independently
//! (§6.2).

use noc_sim::{Candidate, FeatureBounds, OutputCtx};

/// The individual message features of the paper's Table 2.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Feature {
    /// Message size in flits.
    PayloadSize,
    /// Cycles waiting at the current router.
    LocalAge,
    /// Source-to-destination hops.
    Distance,
    /// Hops traversed so far.
    HopCount,
    /// Outstanding messages from the source router.
    InFlight,
    /// Gap between the two most recent arrivals at the buffer.
    InterArrival,
    /// Request / response / coherence (one-hot, 3 wide).
    MsgType,
    /// Core / cache / memory destination (one-hot, 3 wide).
    DestType,
}

impl Feature {
    /// All features in canonical (Table 2) order.
    pub const ALL: [Feature; 8] = [
        Feature::PayloadSize,
        Feature::LocalAge,
        Feature::Distance,
        Feature::HopCount,
        Feature::InFlight,
        Feature::InterArrival,
        Feature::MsgType,
        Feature::DestType,
    ];

    /// Number of state-vector entries this feature occupies.
    pub fn width(self) -> usize {
        match self {
            Feature::MsgType | Feature::DestType => 3,
            _ => 1,
        }
    }

    /// Short display label used in heatmaps and reports.
    pub fn label(self) -> &'static str {
        match self {
            Feature::PayloadSize => "payload size",
            Feature::LocalAge => "local age",
            Feature::Distance => "distance",
            Feature::HopCount => "hop count",
            Feature::InFlight => "# in-flight msg",
            Feature::InterArrival => "inter-arrival",
            Feature::MsgType => "message type",
            Feature::DestType => "destination type",
        }
    }

    /// Stable machine name used in checkpoints and recipe strings.
    pub fn name(self) -> &'static str {
        match self {
            Feature::PayloadSize => "payload_size",
            Feature::LocalAge => "local_age",
            Feature::Distance => "distance",
            Feature::HopCount => "hop_count",
            Feature::InFlight => "in_flight",
            Feature::InterArrival => "inter_arrival",
            Feature::MsgType => "msg_type",
            Feature::DestType => "dest_type",
        }
    }

    /// Parses a machine name back — the inverse of [`Feature::name`].
    ///
    /// # Errors
    ///
    /// Returns an error for unknown names.
    pub fn from_name(name: &str) -> Result<Feature, String> {
        Feature::ALL
            .iter()
            .copied()
            .find(|f| f.name() == name)
            .ok_or_else(|| format!("unknown feature '{name}'"))
    }
}

/// An ordered set of enabled features.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FeatureSet {
    enabled: Vec<Feature>,
}

impl FeatureSet {
    /// The full Table 2 set: 12 entries per buffer (6 scalars + two one-hot
    /// triples), as used in the APU study (§4.3).
    pub fn full() -> Self {
        FeatureSet {
            enabled: Feature::ALL.to_vec(),
        }
    }

    /// The synthetic-study set (§3.2): payload size, local age, distance,
    /// hop count — 4 entries per buffer.
    pub fn synthetic() -> Self {
        FeatureSet {
            enabled: vec![
                Feature::PayloadSize,
                Feature::LocalAge,
                Feature::Distance,
                Feature::HopCount,
            ],
        }
    }

    /// A set with exactly one feature (hill-climbing, Fig. 13).
    pub fn only(feature: Feature) -> Self {
        FeatureSet {
            enabled: vec![feature],
        }
    }

    /// Builds a set from an explicit feature list, keeping order and
    /// dropping duplicates.
    pub fn from_features(features: &[Feature]) -> Self {
        let mut enabled = Vec::new();
        for &f in features {
            if !enabled.contains(&f) {
                enabled.push(f);
            }
        }
        FeatureSet { enabled }
    }

    /// Returns a new set with `feature` appended (no-op if present).
    pub fn with(&self, feature: Feature) -> Self {
        let mut enabled = self.enabled.clone();
        if !enabled.contains(&feature) {
            enabled.push(feature);
        }
        FeatureSet { enabled }
    }

    /// The enabled features, in encoding order.
    pub fn features(&self) -> &[Feature] {
        &self.enabled
    }

    /// Entries per buffer.
    pub fn width_per_buffer(&self) -> usize {
        self.enabled.iter().map(|f| f.width()).sum()
    }

    /// True if the feature is enabled.
    pub fn contains(&self, feature: Feature) -> bool {
        self.enabled.contains(&feature)
    }

    /// The comma-separated machine-name encoding used in checkpoints
    /// (order-preserving, e.g. `"payload_size,local_age"`).
    pub fn to_list_string(&self) -> String {
        self.enabled
            .iter()
            .map(|f| f.name())
            .collect::<Vec<_>>()
            .join(",")
    }

    /// Parses the comma-separated encoding back — the inverse of
    /// [`FeatureSet::to_list_string`].
    ///
    /// # Errors
    ///
    /// Returns an error for unknown feature names or an empty list.
    pub fn from_list_string(list: &str) -> Result<FeatureSet, String> {
        let mut enabled = Vec::new();
        for name in list.split(',').map(str::trim).filter(|s| !s.is_empty()) {
            let f = Feature::from_name(name)?;
            if !enabled.contains(&f) {
                enabled.push(f);
            }
        }
        if enabled.is_empty() {
            return Err("empty feature list".into());
        }
        Ok(FeatureSet { enabled })
    }
}

impl Default for FeatureSet {
    fn default() -> Self {
        FeatureSet::full()
    }
}

/// Encodes router states into fixed-width vectors for the agent.
#[derive(Debug, Clone, PartialEq)]
pub struct StateEncoder {
    num_ports: usize,
    num_vnets: usize,
    features: FeatureSet,
    bounds: FeatureBounds,
}

impl StateEncoder {
    /// Creates an encoder for routers with `num_ports × num_vnets` buffers.
    pub fn new(
        num_ports: usize,
        num_vnets: usize,
        features: FeatureSet,
        bounds: FeatureBounds,
    ) -> Self {
        StateEncoder {
            num_ports,
            num_vnets,
            features,
            bounds,
        }
    }

    /// Buffers per router (= the agent's action-space size).
    pub fn num_slots(&self) -> usize {
        self.num_ports * self.num_vnets
    }

    /// State-vector width (= the agent network's input width).
    ///
    /// For the paper's APU router this is 6 ports × 7 VCs × 12 features
    /// = 504 (§4.6); for the synthetic 4×4 router, 5 × 3 × 4 = 60 (§3.2).
    pub fn state_width(&self) -> usize {
        self.num_slots() * self.features.width_per_buffer()
    }

    /// The enabled feature set.
    pub fn features(&self) -> &FeatureSet {
        &self.features
    }

    /// Virtual networks per port.
    pub fn num_vnets(&self) -> usize {
        self.num_vnets
    }

    /// Ports per router.
    pub fn num_ports(&self) -> usize {
        self.num_ports
    }

    /// The feature-normalization caps in effect.
    pub fn bounds(&self) -> FeatureBounds {
        self.bounds
    }

    /// Encodes one candidate's features into `out[offset..]`.
    fn encode_candidate(&self, c: &Candidate, out: &mut [f64], mut offset: usize) {
        let b = &self.bounds;
        for &f in self.features.features() {
            match f {
                Feature::PayloadSize => {
                    out[offset] =
                        FeatureBounds::norm_u64(c.features.payload_size as u64, b.max_payload as u64);
                }
                Feature::LocalAge => {
                    // Square-root companding: waiting times cluster at the
                    // low end of the cap, and a linear map would compress
                    // exactly the region the policy must discriminate
                    // (§6.2's normalization lesson, adapted).
                    out[offset] =
                        FeatureBounds::norm_u64(c.features.local_age, b.max_local_age).sqrt();
                }
                Feature::Distance => {
                    out[offset] =
                        FeatureBounds::norm_u64(c.features.distance as u64, b.max_distance as u64);
                }
                Feature::HopCount => {
                    out[offset] =
                        FeatureBounds::norm_u64(c.features.hop_count as u64, b.max_hop_count as u64);
                }
                Feature::InFlight => {
                    out[offset] = FeatureBounds::norm_u64(
                        c.features.in_flight_from_src as u64,
                        b.max_in_flight as u64,
                    );
                }
                Feature::InterArrival => {
                    out[offset] = FeatureBounds::norm_u64(
                        c.features.inter_arrival,
                        b.max_inter_arrival,
                    )
                    .sqrt();
                }
                Feature::MsgType => {
                    out[offset + c.features.msg_type.one_hot_index()] = 1.0;
                }
                Feature::DestType => {
                    out[offset + c.features.dst_type.one_hot_index()] = 1.0;
                }
            }
            offset += f.width();
        }
    }

    /// Encodes the state vector for one output-port arbitration: the
    /// features of every competing buffer at its `(port, vnet)` position,
    /// zeros elsewhere (paper §3.1.1: "a list of features from all messages
    /// that compete for the same output port").
    pub fn encode(&self, ctx: &OutputCtx<'_>) -> Vec<f64> {
        let mut state = Vec::new();
        self.encode_into(ctx, &mut state);
        state
    }

    /// Allocation-free variant of [`StateEncoder::encode`]: `out` is cleared,
    /// zero-filled to the state width, and populated in place. Reusing one
    /// buffer across calls keeps per-decision encoding off the heap.
    pub fn encode_into(&self, ctx: &OutputCtx<'_>, out: &mut Vec<f64>) {
        out.clear();
        self.encode_append(ctx, out);
    }

    /// Like [`StateEncoder::encode_into`] but appends the encoded row to
    /// `out` instead of replacing it, so a row-major batch can be built
    /// directly without a per-row staging copy.
    pub fn encode_append(&self, ctx: &OutputCtx<'_>, out: &mut Vec<f64>) {
        let base = out.len();
        out.resize(base + self.state_width(), 0.0);
        let w = self.features.width_per_buffer();
        for c in ctx.candidates {
            debug_assert!(c.slot < self.num_slots(), "candidate slot out of range");
            self.encode_candidate(c, out, base + c.slot * w);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use noc_sim::{DestType, Features, MsgType, NetSnapshot, NodeId, RouterId};

    fn cand(slot: usize, vnets: usize) -> Candidate {
        Candidate {
            in_port: slot / vnets,
            vnet: slot % vnets,
            slot,
            features: Features {
                payload_size: 4,
                local_age: 32,
                distance: 7,
                hop_count: 3,
                in_flight_from_src: 16,
                inter_arrival: 8,
                msg_type: MsgType::Response,
                dst_type: DestType::Memory,
            },
            packet_id: 1,
            create_cycle: 0,
            arrival_cycle: 0,
            src: NodeId(0),
            dst: NodeId(1),
            port_degraded: false,
        }
    }

    fn bounds() -> FeatureBounds {
        FeatureBounds {
            max_payload: 8,
            max_local_age: 64,
            max_distance: 14,
            max_hop_count: 14,
            max_in_flight: 64,
            max_inter_arrival: 64,
        }
    }

    #[test]
    fn paper_widths_are_reproduced() {
        // §4.6: 6 × 7 × 12 = 504.
        let apu = StateEncoder::new(6, 7, FeatureSet::full(), bounds());
        assert_eq!(apu.state_width(), 504);
        assert_eq!(apu.num_slots(), 42);
        // §3.2: 5 × 3 × 4 = 60.
        let synth = StateEncoder::new(5, 3, FeatureSet::synthetic(), bounds());
        assert_eq!(synth.state_width(), 60);
        assert_eq!(synth.num_slots(), 15);
    }

    #[test]
    fn encoding_places_features_at_slot_offset() {
        let enc = StateEncoder::new(5, 3, FeatureSet::synthetic(), bounds());
        let net = NetSnapshot::default();
        let cands = vec![cand(4, 3)];
        let ctx = OutputCtx {
            router: RouterId(0),
            out_port: 0,
            cycle: 0,
            num_ports: 5,
            num_vnets: 3,
            candidates: &cands,
            net: &net,
        };
        let s = enc.encode(&ctx);
        assert_eq!(s.len(), 60);
        let base = 4 * 4; // slot 4 × 4 features
        assert!((s[base] - 0.5).abs() < 1e-12, "payload 4/8");
        // Local age is sqrt-companded: sqrt(32/64).
        assert!((s[base + 1] - (0.5_f64).sqrt()).abs() < 1e-12, "local age sqrt(32/64)");
        assert!((s[base + 2] - 0.5).abs() < 1e-12, "distance 7/14");
        assert!((s[base + 3] - 3.0 / 14.0).abs() < 1e-12, "hops 3/14");
        // All other entries zero.
        let nonzero = s.iter().filter(|&&v| v != 0.0).count();
        assert_eq!(nonzero, 4);
    }

    #[test]
    fn one_hot_features_set_exactly_one_bit() {
        let enc = StateEncoder::new(6, 7, FeatureSet::full(), bounds());
        let net = NetSnapshot::default();
        let cands = vec![cand(0, 7)];
        let ctx = OutputCtx {
            router: RouterId(0),
            out_port: 0,
            cycle: 0,
            num_ports: 6,
            num_vnets: 7,
            candidates: &cands,
            net: &net,
        };
        let s = enc.encode(&ctx);
        // Layout per buffer: 6 scalars, then msg-type one-hot, then dest-type.
        let msg = &s[6..9];
        let dst = &s[9..12];
        assert_eq!(msg, &[0.0, 1.0, 0.0]); // Response
        assert_eq!(dst, &[0.0, 0.0, 1.0]); // Memory
    }

    #[test]
    fn all_encoded_values_are_normalized() {
        let enc = StateEncoder::new(6, 7, FeatureSet::full(), bounds());
        let net = NetSnapshot::default();
        let mut c = cand(10, 7);
        c.features.local_age = 1_000_000; // way past the cap
        c.features.hop_count = 200;
        let cands = vec![c];
        let ctx = OutputCtx {
            router: RouterId(0),
            out_port: 0,
            cycle: 0,
            num_ports: 6,
            num_vnets: 7,
            candidates: &cands,
            net: &net,
        };
        let s = enc.encode(&ctx);
        assert!(s.iter().all(|&v| (0.0..=1.0).contains(&v)));
    }

    #[test]
    fn feature_set_builders() {
        assert_eq!(FeatureSet::full().width_per_buffer(), 12);
        assert_eq!(FeatureSet::synthetic().width_per_buffer(), 4);
        assert_eq!(FeatureSet::only(Feature::MsgType).width_per_buffer(), 3);
        let combined = FeatureSet::only(Feature::LocalAge).with(Feature::HopCount);
        assert_eq!(combined.width_per_buffer(), 2);
        assert!(combined.contains(Feature::HopCount));
        // Duplicate insertion is a no-op.
        assert_eq!(combined.with(Feature::LocalAge).width_per_buffer(), 2);
        let dedup = FeatureSet::from_features(&[Feature::LocalAge, Feature::LocalAge]);
        assert_eq!(dedup.features().len(), 1);
    }

    #[test]
    fn feature_sets_round_trip_through_list_strings() {
        for set in [FeatureSet::full(), FeatureSet::synthetic(), FeatureSet::only(Feature::MsgType)]
        {
            let encoded = set.to_list_string();
            assert_eq!(FeatureSet::from_list_string(&encoded).unwrap(), set);
        }
        assert_eq!(
            FeatureSet::synthetic().to_list_string(),
            "payload_size,local_age,distance,hop_count"
        );
        assert!(FeatureSet::from_list_string("").is_err());
        assert!(FeatureSet::from_list_string("payload_size,bogus").is_err());
    }
}
