//! One progress reporter for the training and experiment stack.
//!
//! Training drivers and the `repro` experiment driver used to scatter
//! ad-hoc `eprintln!("training ...")` lines. They now all route through
//! [`progress!`](crate::progress!), so a single `--quiet` flag (wired to
//! [`set_quiet`]) silences the chatter and keeps driver output
//! machine-parseable.

use std::fmt;
use std::sync::atomic::{AtomicBool, Ordering};

static QUIET: AtomicBool = AtomicBool::new(false);

/// Globally silences (or re-enables) progress notes.
pub fn set_quiet(quiet: bool) {
    QUIET.store(quiet, Ordering::Relaxed);
}

/// True when progress notes are suppressed.
pub fn is_quiet() -> bool {
    QUIET.load(Ordering::Relaxed)
}

/// Emits one progress note to stderr unless quieted. Prefer the
/// [`progress!`](crate::progress!) macro over calling this directly.
pub fn note(args: fmt::Arguments<'_>) {
    if !is_quiet() {
        eprintln!("{args}");
    }
}

/// `eprintln!`-style progress reporting that honors the global `--quiet`
/// state ([`set_quiet`]).
#[macro_export]
macro_rules! progress {
    ($($arg:tt)*) => {
        $crate::progress::note(::core::format_args!($($arg)*))
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quiet_flag_round_trips() {
        // Note: process-global state; restore the default before exiting.
        assert!(!is_quiet());
        set_quiet(true);
        assert!(is_quiet());
        // A quieted note must not panic (output itself is untestable here).
        progress!("hidden {}", 1);
        set_quiet(false);
        assert!(!is_quiet());
    }
}
