//! A learned per-VC credit-budget controller.
//!
//! [`RlVcController`] is the second learned decision point beside
//! arbitration: each control epoch it chooses, per VC buffer, whether to
//! *withhold* a slice of the advertised credit budget (actuated through
//! the simulator's fault-shrinkage machinery, so it can never touch raw
//! capacity or the occupancy books — see [`noc_sim::BufferController`]).
//! Withholding idle buffers concentrates the credit the network is
//! actually using; releasing pressured buffers restores headroom when
//! traffic shifts, e.g. onto detour paths around a link-down fault.
//!
//! The learner is deliberately small — an independent two-armed bandit
//! per VC (arms: withhold `0` or `withhold_flits`), with an incremental
//! Q update toward a pressure-derived reward — because the decision is
//! binary, per-buffer, and must run every epoch on the simulator's hot
//! path. Like [`OnlinePolicy`](crate::OnlinePolicy), all randomness is
//! counter-keyed [`SplitMix64`] streams and all mutable state round-trips
//! through `checkpoint_state`/`restore_state`, so runs stay deterministic,
//! thread-invariant, and bit-identically splittable.

use noc_sim::{BufferController, SplitMix64, VcUsage};

/// Golden-ratio odd constant decorrelating successive RNG counter keys.
const RNG_STREAM_MIX: u64 = 0x9E3779B97F4A7C15;

/// Pressure below this is "idle enough to withhold": the reward for
/// withholding is `MARGIN - pressure`, for releasing `pressure - MARGIN`.
const PRESSURE_MARGIN: f64 = 0.25;

/// Per-VC two-armed bandit over credit withholding (see the module docs).
#[derive(Debug, Clone)]
pub struct RlVcController {
    epoch: u64,
    withhold_flits: u32,
    epsilon: f64,
    lr: f64,
    /// Q value per VC per arm (`[release, withhold]`); sized lazily on
    /// the first epoch, when the buffer count is first visible.
    q: Vec<[f64; 2]>,
    /// Arm pulled last epoch, per VC (0 = release, 1 = withhold).
    last_arm: Vec<u8>,
    rng_key: u64,
    rng_ctr: u64,
    epochs: u64,
    explored: u64,
}

impl RlVcController {
    /// Creates a controller acting every `epoch` cycles, withholding
    /// `withhold_flits` credits per VC when the withhold arm wins.
    ///
    /// # Panics
    ///
    /// Panics if `epoch` is zero.
    pub fn new(epoch: u64, withhold_flits: u32, epsilon: f64, lr: f64, seed: u64) -> Self {
        assert!(epoch > 0, "control epoch must be positive");
        RlVcController {
            epoch,
            withhold_flits,
            epsilon,
            lr,
            q: Vec::new(),
            last_arm: Vec::new(),
            rng_key: seed,
            rng_ctr: 0,
            epochs: 0,
            explored: 0,
        }
    }

    /// The configuration used by the self-healing experiments: act every
    /// 64 cycles, withhold 2 flits, ε = 0.05, learning rate 0.2.
    pub fn paper_default(seed: u64) -> Self {
        RlVcController::new(64, 2, 0.05, 0.2, seed)
    }

    /// Control epochs executed so far (the warm-cache "no work" witness).
    pub fn epochs(&self) -> u64 {
        self.epochs
    }

    /// Epoch decisions that were random explorations.
    pub fn explored(&self) -> u64 {
        self.explored
    }

    fn draw(&mut self) -> SplitMix64 {
        let s = SplitMix64::new(self.rng_key ^ self.rng_ctr.wrapping_mul(RNG_STREAM_MIX));
        self.rng_ctr += 1;
        s
    }

    /// Demand pressure on one VC: occupancy (queued + reserved) over the
    /// credit actually advertisable (capacity minus fault shrink), in
    /// `[0, 1]`.
    fn pressure(u: &VcUsage) -> f64 {
        let cap = u.capacity.saturating_sub(u.fault_shrink).max(1);
        (f64::from(u.used + u.reserved) / f64::from(cap)).min(1.0)
    }
}

impl BufferController for RlVcController {
    fn name(&self) -> String {
        "RL-vcctl".into()
    }

    fn control_epoch(&self) -> u64 {
        self.epoch
    }

    fn reallocate(&mut self, _cycle: u64, usage: &[VcUsage], withhold: &mut [u32]) {
        if self.q.len() != usage.len() {
            // First epoch (or a topology the state was not sized for):
            // start neutral, with "release" as the incumbent arm.
            self.q = vec![[0.0; 2]; usage.len()];
            self.last_arm = vec![0; usage.len()];
        }
        for (bi, u) in usage.iter().enumerate() {
            let pressure = Self::pressure(u);
            // Credit the arm pulled last epoch with the pressure it
            // produced: withholding idle buffers is good, withholding
            // pressured ones is bad (and symmetrically for releasing).
            let prev = usize::from(self.last_arm[bi]);
            let reward = if prev == 1 {
                PRESSURE_MARGIN - pressure
            } else {
                pressure - PRESSURE_MARGIN
            };
            self.q[bi][prev] += self.lr * (reward - self.q[bi][prev]);
            let arm = if self.epsilon > 0.0 {
                let mut s = self.draw();
                if s.next_f64() < self.epsilon {
                    self.explored += 1;
                    s.next_bounded(2) as usize
                } else {
                    usize::from(self.q[bi][1] > self.q[bi][0])
                }
            } else {
                usize::from(self.q[bi][1] > self.q[bi][0])
            };
            self.last_arm[bi] = arm as u8;
            withhold[bi] = arm as u32 * self.withhold_flits;
        }
        self.epochs += 1;
    }

    fn checkpoint_state(&self) -> Option<String> {
        let mut q = self
            .q
            .iter()
            .flat_map(|arms| arms.iter().map(|v| v.to_bits().to_string()))
            .collect::<Vec<_>>()
            .join(",");
        let mut arms = self
            .last_arm
            .iter()
            .map(u8::to_string)
            .collect::<Vec<_>>()
            .join(",");
        // An empty section must still occupy its slot.
        if q.is_empty() {
            q = "-".into();
        }
        if arms.is_empty() {
            arms = "-".into();
        }
        Some(format!(
            "v1|{};{};{}|{q}|{arms}",
            self.epochs, self.explored, self.rng_ctr
        ))
    }

    fn restore_state(&mut self, state: &str) -> Result<(), String> {
        let parts: Vec<&str> = state.split('|').collect();
        if parts.len() != 4 || parts[0] != "v1" {
            return Err(format!(
                "bad vc-controller state (expected 4 v1 sections, got {})",
                parts.len()
            ));
        }
        let counters: Vec<&str> = parts[1].split(';').collect();
        if counters.len() != 3 {
            return Err("bad vc-controller counter section".into());
        }
        let n = |s: &str| -> Result<u64, String> {
            s.parse().map_err(|_| format!("bad number '{s}' in vc-controller state"))
        };
        let mut q = Vec::new();
        if parts[2] != "-" {
            let bits: Vec<u64> = parts[2].split(',').map(&n).collect::<Result<_, _>>()?;
            if !bits.len().is_multiple_of(2) {
                return Err("vc-controller Q table must hold two arms per VC".into());
            }
            q = bits
                .chunks_exact(2)
                .map(|c| [f64::from_bits(c[0]), f64::from_bits(c[1])])
                .collect();
        }
        let mut last_arm = Vec::new();
        if parts[3] != "-" {
            last_arm = parts[3]
                .split(',')
                .map(|s| match s {
                    "0" => Ok(0u8),
                    "1" => Ok(1u8),
                    other => Err(format!("bad arm '{other}' in vc-controller state")),
                })
                .collect::<Result<_, _>>()?;
        }
        if q.len() != last_arm.len() {
            return Err("vc-controller Q table and arm history disagree on VC count".into());
        }
        self.epochs = n(counters[0])?;
        self.explored = n(counters[1])?;
        self.rng_ctr = n(counters[2])?;
        self.q = q;
        self.last_arm = last_arm;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn usage(used: u32, capacity: u32) -> VcUsage {
        VcUsage {
            used,
            reserved: 0,
            fault_shrink: 0,
            capacity,
        }
    }

    #[test]
    fn withholds_idle_buffers_and_releases_pressured_ones() {
        let mut c = RlVcController::new(16, 2, 0.0, 0.5, 1);
        let usage = vec![usage(0, 8), usage(7, 8)];
        let mut withhold = vec![0u32; 2];
        for cycle in 0..40 {
            c.reallocate(cycle * 16, &usage, &mut withhold);
        }
        assert_eq!(withhold[0], 2, "idle VC should end up withheld");
        assert_eq!(withhold[1], 0, "pressured VC should end up released");
        assert_eq!(c.epochs(), 40);
    }

    #[test]
    fn same_seed_same_decisions() {
        let run = || {
            let mut c = RlVcController::paper_default(9);
            let usage = vec![usage(3, 8), usage(1, 8), usage(6, 8)];
            let mut w = vec![0u32; 3];
            let mut trace = Vec::new();
            for cycle in 0..64 {
                c.reallocate(cycle * 64, &usage, &mut w);
                trace.push(w.clone());
            }
            (trace, c.checkpoint_state())
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn checkpoint_round_trips_and_continues_identically() {
        let mut c = RlVcController::paper_default(4);
        let usage = vec![usage(2, 8), usage(5, 8)];
        let mut w = vec![0u32; 2];
        for cycle in 0..30 {
            c.reallocate(cycle * 64, &usage, &mut w);
        }
        let state = c.checkpoint_state().expect("serializable");
        let mut d = RlVcController::paper_default(4);
        d.restore_state(&state).expect("restorable");
        assert_eq!(d.checkpoint_state().unwrap(), state);
        let mut wc = vec![0u32; 2];
        let mut wd = vec![0u32; 2];
        for cycle in 30..60 {
            c.reallocate(cycle * 64, &usage, &mut wc);
            d.reallocate(cycle * 64, &usage, &mut wd);
            assert_eq!(wc, wd, "epoch {cycle}");
        }
        assert_eq!(c.checkpoint_state(), d.checkpoint_state());
    }

    #[test]
    fn fresh_controller_state_round_trips() {
        let c = RlVcController::paper_default(1);
        let state = c.checkpoint_state().unwrap();
        let mut d = RlVcController::paper_default(1);
        d.restore_state(&state).expect("fresh state restorable");
        assert_eq!(d.checkpoint_state().unwrap(), state);
    }

    #[test]
    fn restore_rejects_malformed_state() {
        let mut c = RlVcController::paper_default(1);
        assert!(c.restore_state("").is_err());
        assert!(c.restore_state("v1|0;0|x|-").is_err());
        assert!(c.restore_state("v1|0;0;0|1,2,3|0").is_err());
    }
}
