//! Training environments: the agent ↔ simulator seam behind [`Trainer`].
//!
//! ArchGym's core reproducibility argument — and RACE's multi-environment
//! agent loop — both reduce to the same interface requirement: one generic
//! training loop that can be pointed at any environment. [`TrainEnv`] is
//! that seam here; [`SyntheticEnv`] (open-loop `noc-sim` traffic) and
//! [`ApuEnv`] (closed-loop `apu-sim` workloads) are its two
//! implementations, replacing the formerly parallel
//! `train_synthetic`/`train_apu_agent` code paths.
//!
//! [`Trainer`]: crate::Trainer

use apu_sim::{make_apu_sim, ApuEngine, EngineConfig, WorkloadSpec, APU_MESH, NUM_QUADRANTS};
use apu_workloads::Benchmark;
use noc_sim::{SimConfig, Simulator, SyntheticTraffic, Topology};

use crate::agent::{AgentConfig, SharedAgent};
use crate::features::{FeatureSet, StateEncoder};
use crate::train::{fnv1a64, TrainSpec};

/// An environment the generic trainer can run an agent in: it knows the
/// router geometry (for the state encoder), the epoch schedule, and how
/// to advance the simulation by one epoch.
pub trait TrainEnv {
    /// Short human label for progress notes (e.g. `"4x4 synthetic"`).
    fn label(&self) -> String;

    /// Encoder for the routers the agent will arbitrate.
    fn encoder(&self) -> StateEncoder;

    /// Total epochs in the schedule.
    fn num_epochs(&self) -> usize;

    /// Runs one epoch with `agent` arbitrating and returns the epoch's
    /// average message latency (one learning-curve sample).
    fn run_epoch(&mut self, agent: &SharedAgent) -> f64;

    /// Drops any live simulator state holding agent handles. The trainer
    /// calls this before reclaiming the shared agent; environments that
    /// do not retain a simulator across epochs can keep the default no-op.
    fn release(&mut self) {}
}

/// Synthetic-traffic training environment (paper §3.2).
///
/// One continuous simulation per curriculum stage, observed in
/// epoch-sized windows: statistics reset between epochs, but buffers and
/// network state persist within a stage — matching the paper's "training
/// time" axis.
#[derive(Debug)]
pub struct SyntheticEnv {
    spec: TrainSpec,
    topo: Topology,
    cfg: SimConfig,
    /// Curriculum stages plus the main phase, as `(rate, epochs)`.
    stages: Vec<(f64, usize)>,
    /// Next stage to start when the current one is exhausted.
    next_stage: usize,
    /// Epochs left in the currently running stage.
    remaining: usize,
    sim: Option<Simulator<SyntheticTraffic>>,
}

impl SyntheticEnv {
    /// Builds the environment for a training spec.
    ///
    /// # Panics
    ///
    /// Panics if the specification is internally inconsistent (zero-sized
    /// mesh, empty schedule, epochs of zero cycles, …).
    pub fn new(spec: &TrainSpec) -> Self {
        assert!(spec.epochs > 0 && spec.cycles_per_epoch > 0, "empty training run");
        let topo = Topology::uniform_mesh(spec.width, spec.height).expect("valid mesh");
        let mut cfg = SimConfig::synthetic(spec.width, spec.height);
        if let Some(bounds) = spec.feature_bounds {
            cfg.feature_bounds = bounds;
        }
        if let Some(vnets) = spec.vnets {
            assert!(vnets > 0, "vnets override must be positive");
            cfg.num_vnets = vnets;
        }
        let mut stages = spec.curriculum.clone();
        stages.push((spec.injection_rate, spec.epochs));
        SyntheticEnv {
            spec: spec.clone(),
            topo,
            cfg,
            stages,
            next_stage: 0,
            remaining: 0,
            sim: None,
        }
    }
}

impl TrainEnv for SyntheticEnv {
    fn label(&self) -> String {
        format!(
            "{}x{} synthetic @ {:.2}",
            self.spec.width, self.spec.height, self.spec.injection_rate
        )
    }

    fn encoder(&self) -> StateEncoder {
        StateEncoder::new(
            self.topo.ports_per_router(),
            self.cfg.num_vnets,
            self.spec.features.clone(),
            self.cfg.feature_bounds,
        )
    }

    fn num_epochs(&self) -> usize {
        self.stages.iter().map(|&(_, e)| e).sum()
    }

    fn run_epoch(&mut self, agent: &SharedAgent) -> f64 {
        while self.remaining == 0 {
            assert!(self.next_stage < self.stages.len(), "epoch past schedule end");
            let (rate, epochs) = self.stages[self.next_stage];
            let traffic = SyntheticTraffic::new(
                &self.topo,
                self.spec.pattern,
                rate,
                self.cfg.num_vnets,
                self.spec.traffic_seed.wrapping_add(self.next_stage as u64),
            );
            self.sim = Some(
                Simulator::new(
                    self.topo.clone(),
                    self.cfg.clone(),
                    Box::new(agent.training_arbiter()),
                    traffic,
                )
                .expect("valid simulator configuration"),
            );
            self.remaining = epochs;
            self.next_stage += 1;
        }
        let sim = self.sim.as_mut().expect("stage simulator exists");
        sim.reset_stats();
        sim.run(self.spec.cycles_per_epoch);
        self.remaining -= 1;
        sim.stats().avg_latency()
    }

    fn release(&mut self) {
        self.sim = None;
        self.remaining = 0;
    }
}

/// Specification of an APU-workload training run: the pure-data,
/// FNV-hashable recipe mirroring [`TrainSpec`] on the closed-loop side
/// (paper §4.2: "we execute the same set of model files repeatedly until
/// the training converges").
#[derive(Debug, Clone)]
pub struct ApuTrainSpec {
    /// Workload name (an `apu_workloads::Benchmark` name, e.g. `"bfs"`).
    pub benchmark: String,
    /// Back-to-back runs of the four workload copies (one run = one epoch).
    pub repeats: usize,
    /// Cycle budget per run.
    pub max_cycles: u64,
    /// Workload intensity scale (the experiment tiers' `apu_scale`).
    pub scale: f64,
    /// Agent hyperparameters.
    pub agent: AgentConfig,
    /// Input features for the agent.
    pub features: FeatureSet,
    /// Base seed for the engine; run `r` uses `seed.wrapping_add(r)`.
    pub seed: u64,
}

impl ApuTrainSpec {
    /// The tuned APU recipe the figure drivers use: full Table 2 features,
    /// tuned hyperparameters at 42 hidden neurons.
    pub fn tuned(benchmark: &str, repeats: usize, max_cycles: u64, scale: f64, seed: u64) -> Self {
        ApuTrainSpec {
            benchmark: benchmark.into(),
            repeats,
            max_cycles,
            scale,
            agent: AgentConfig::tuned_apu(seed),
            features: FeatureSet::full(),
            seed,
        }
    }

    /// Content hash of the recipe (FNV-1a 64 over the `Debug` encoding).
    pub fn hash_hex(&self) -> String {
        format!("{:016x}", fnv1a64(format!("{self:?}").as_bytes()))
    }
}

/// APU-workload training environment (paper §4.2): each epoch is one
/// closed-loop run of four workload copies from a fresh engine seed, with
/// the shared agent's state persisting across runs.
#[derive(Debug)]
pub struct ApuEnv {
    specs: Vec<WorkloadSpec>,
    repeats: usize,
    max_cycles: u64,
    seed: u64,
    features: FeatureSet,
    label: String,
    rep: usize,
}

impl ApuEnv {
    /// Builds the environment for a named-benchmark recipe.
    ///
    /// # Errors
    ///
    /// Returns an error if the benchmark name is unknown.
    pub fn new(spec: &ApuTrainSpec) -> Result<Self, String> {
        let bench = Benchmark::ALL
            .iter()
            .copied()
            .find(|b| b.name() == spec.benchmark)
            .ok_or_else(|| format!("unknown APU benchmark '{}'", spec.benchmark))?;
        let specs = vec![bench.spec_scaled(spec.scale); NUM_QUADRANTS];
        Ok(ApuEnv {
            label: format!("apu:{}", spec.benchmark),
            specs,
            repeats: spec.repeats,
            max_cycles: spec.max_cycles,
            seed: spec.seed,
            features: spec.features.clone(),
            rep: 0,
        })
    }

    /// Builds the environment from explicit workload specs (e.g. a mixed
    /// scenario) instead of a named benchmark.
    ///
    /// # Panics
    ///
    /// Panics unless exactly [`NUM_QUADRANTS`] workload specs are given.
    pub fn from_workloads(
        specs: Vec<WorkloadSpec>,
        repeats: usize,
        max_cycles: u64,
        seed: u64,
        features: FeatureSet,
    ) -> Self {
        assert_eq!(specs.len(), NUM_QUADRANTS, "one workload per quadrant");
        ApuEnv {
            label: "apu:custom".into(),
            specs,
            repeats,
            max_cycles,
            seed,
            features,
            rep: 0,
        }
    }

    fn build_sim(&self, agent: &SharedAgent) -> Simulator<ApuEngine> {
        make_apu_sim(
            self.specs.clone(),
            Box::new(agent.training_arbiter()),
            EngineConfig::default(),
            self.seed.wrapping_add(self.rep as u64),
        )
    }
}

impl TrainEnv for ApuEnv {
    fn label(&self) -> String {
        self.label.clone()
    }

    fn encoder(&self) -> StateEncoder {
        let cfg = SimConfig::apu(APU_MESH, APU_MESH);
        StateEncoder::new(6, cfg.num_vnets, self.features.clone(), cfg.feature_bounds)
    }

    fn num_epochs(&self) -> usize {
        self.repeats
    }

    fn run_epoch(&mut self, agent: &SharedAgent) -> f64 {
        let mut sim = self.build_sim(agent);
        sim.run_until_done(self.max_cycles);
        self.rep += 1;
        sim.stats().avg_latency()
    }
}

/// A complete training recipe — synthetic or APU — as pure data. This is
/// the unit the content-addressed artifact store keys on: equal recipes
/// hash equal, and any field change (hyperparameters, curriculum, seeds)
/// changes the hash.
#[derive(Debug, Clone)]
pub enum TrainRecipe {
    /// Synthetic-mesh training ([`SyntheticEnv`]).
    Synthetic(TrainSpec),
    /// APU closed-loop training ([`ApuEnv`]).
    Apu(ApuTrainSpec),
}

impl TrainRecipe {
    /// Content hash of the recipe, including which environment it targets.
    pub fn hash_hex(&self) -> String {
        format!("{:016x}", fnv1a64(format!("{self:?}").as_bytes()))
    }

    /// The agent hyperparameters the recipe trains with.
    pub fn agent_config(&self) -> &AgentConfig {
        match self {
            TrainRecipe::Synthetic(s) => &s.agent,
            TrainRecipe::Apu(s) => &s.agent,
        }
    }

    /// Short human label for progress notes.
    pub fn label(&self) -> String {
        match self {
            TrainRecipe::Synthetic(s) => {
                format!("{}x{} synthetic @ {:.2}", s.width, s.height, s.injection_rate)
            }
            TrainRecipe::Apu(s) => format!("apu:{}", s.benchmark),
        }
    }

    /// Builds the matching environment.
    ///
    /// # Errors
    ///
    /// Returns an error for unresolvable recipes (unknown benchmark name).
    pub fn env(&self) -> Result<Box<dyn TrainEnv>, String> {
        match self {
            TrainRecipe::Synthetic(s) => Ok(Box::new(SyntheticEnv::new(s))),
            TrainRecipe::Apu(s) => Ok(Box::new(ApuEnv::new(s)?)),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn synthetic_env_reports_schedule_and_geometry() {
        let mut spec = TrainSpec::tuned_synthetic(4, 0.4, 7);
        spec.epochs = 5;
        spec.curriculum = vec![(0.2, 3)];
        let env = SyntheticEnv::new(&spec);
        assert_eq!(env.num_epochs(), 8);
        let enc = env.encoder();
        assert_eq!(enc.state_width(), 60); // 5 ports × 3 vnets × 4 features
        assert!(env.label().contains("4x4"));
    }

    #[test]
    fn apu_env_resolves_benchmarks_by_name() {
        let spec = ApuTrainSpec::tuned("bfs", 3, 100, 0.05, 1);
        let env = ApuEnv::new(&spec).unwrap();
        assert_eq!(env.num_epochs(), 3);
        assert_eq!(env.label(), "apu:bfs");
        assert_eq!(env.encoder().state_width(), 504); // §4.6: 6 × 7 × 12
        assert!(ApuEnv::new(&ApuTrainSpec::tuned("nope", 1, 1, 0.1, 0)).is_err());
    }

    #[test]
    fn recipe_hashes_distinguish_environments_and_fields() {
        let synth = TrainRecipe::Synthetic(TrainSpec::tuned_synthetic(4, 0.4, 7));
        let apu = TrainRecipe::Apu(ApuTrainSpec::tuned("bfs", 3, 100, 0.05, 7));
        assert_ne!(synth.hash_hex(), apu.hash_hex());
        // Hashing is content-addressed: same recipe ⇒ same hash ...
        assert_eq!(
            synth.hash_hex(),
            TrainRecipe::Synthetic(TrainSpec::tuned_synthetic(4, 0.4, 7)).hash_hex()
        );
        // ... and any field change ⇒ a different hash.
        assert_ne!(
            synth.hash_hex(),
            TrainRecipe::Synthetic(TrainSpec::tuned_synthetic(4, 0.4, 8)).hash_hex()
        );
        assert_eq!(synth.hash_hex().len(), 16);
    }
}
