//! Bridging trained agents to [`nn_mlp::Checkpoint`]s — the producer and
//! consumer sides of the content-addressed artifact store.
//!
//! A checkpoint carries everything needed to rebuild the frozen
//! evaluation policy *without retraining*: the weights (round-trip exact),
//! the encoder geometry and feature bounds, and the full `agent.*`
//! hyperparameter set. [`policy_from_checkpoint`] is byte-equivalent to
//! `outcome.agent.freeze()` because the frozen arbiter's remaining inputs
//! (inference ε, tie-break RNG seed) are fixed constants.

use nn_mlp::Checkpoint;
use noc_arbiters::RlInspiredSynthetic;
use noc_sim::FeatureBounds;

use crate::agent::{AgentConfig, NnPolicyArbiter};
use crate::features::{Feature, FeatureSet, StateEncoder};
use crate::interpret::weight_heatmap;
use crate::train::TrainOutcome;

/// Builds a schema-v1 checkpoint from a finished training run.
///
/// `recipe_hash` is the producing recipe's content hash (see
/// `TrainRecipe::hash_hex`); `git_describe` stamps the producing checkout.
pub fn checkpoint_from_outcome(
    outcome: &TrainOutcome,
    recipe_hash: &str,
    git_describe: &str,
) -> Checkpoint {
    let encoder = outcome.agent.encoder();
    let b = encoder.bounds();
    let mut config = vec![
        ("num_ports".to_string(), encoder.num_ports().to_string()),
        ("num_vnets".to_string(), encoder.num_vnets().to_string()),
        ("features".to_string(), encoder.features().to_list_string()),
        ("bounds.max_payload".to_string(), b.max_payload.to_string()),
        ("bounds.max_local_age".to_string(), b.max_local_age.to_string()),
        ("bounds.max_distance".to_string(), b.max_distance.to_string()),
        ("bounds.max_hop_count".to_string(), b.max_hop_count.to_string()),
        ("bounds.max_in_flight".to_string(), b.max_in_flight.to_string()),
        (
            "bounds.max_inter_arrival".to_string(),
            b.max_inter_arrival.to_string(),
        ),
    ];
    config.extend(outcome.agent.config().config_entries());
    Checkpoint {
        recipe_hash: recipe_hash.into(),
        git_describe: git_describe.into(),
        converged: outcome.converged,
        curve: outcome.curve.clone(),
        accuracy: outcome.accuracy.clone(),
        config,
        model: outcome.agent.network().clone(),
    }
}

fn config_u64(ckpt: &Checkpoint, key: &str) -> Result<u64, String> {
    ckpt.config_value(key)
        .ok_or_else(|| format!("checkpoint config missing '{key}'"))?
        .parse()
        .map_err(|_| format!("bad value for '{key}'"))
}

/// Rebuilds the state encoder a checkpointed agent was trained with.
///
/// # Errors
///
/// Returns a description of the first missing or unparseable entry.
pub fn encoder_from_checkpoint(ckpt: &Checkpoint) -> Result<StateEncoder, String> {
    let features = FeatureSet::from_list_string(
        ckpt.config_value("features")
            .ok_or_else(|| "checkpoint config missing 'features'".to_string())?,
    )?;
    let bounds = FeatureBounds {
        max_payload: config_u64(ckpt, "bounds.max_payload")? as u32,
        max_local_age: config_u64(ckpt, "bounds.max_local_age")?,
        max_distance: config_u64(ckpt, "bounds.max_distance")? as u32,
        max_hop_count: config_u64(ckpt, "bounds.max_hop_count")? as u32,
        max_in_flight: config_u64(ckpt, "bounds.max_in_flight")? as u32,
        max_inter_arrival: config_u64(ckpt, "bounds.max_inter_arrival")?,
    };
    Ok(StateEncoder::new(
        config_u64(ckpt, "num_ports")? as usize,
        config_u64(ckpt, "num_vnets")? as usize,
        features,
        bounds,
    ))
}

/// Reconstructs the agent hyperparameters stored in a checkpoint.
///
/// # Errors
///
/// Returns a description of the first missing or unparseable `agent.*`
/// entry.
pub fn agent_config_from_checkpoint(ckpt: &Checkpoint) -> Result<AgentConfig, String> {
    AgentConfig::from_config_entries(&ckpt.config)
}

/// Rebuilds the frozen "NN" evaluation policy from a checkpoint —
/// byte-equivalent to freezing the just-trained agent, with zero training
/// steps.
///
/// # Errors
///
/// Returns an error for incomplete config entries or a model whose shape
/// does not match the reconstructed encoder.
pub fn policy_from_checkpoint(ckpt: &Checkpoint) -> Result<NnPolicyArbiter, String> {
    let encoder = encoder_from_checkpoint(ckpt)?;
    if ckpt.model.input_size() != encoder.state_width()
        || ckpt.model.output_size() != encoder.num_slots()
    {
        return Err(format!(
            "checkpoint model shape {}→{} does not match its encoder ({}→{})",
            ckpt.model.input_size(),
            ckpt.model.output_size(),
            encoder.state_width(),
            encoder.num_slots()
        ));
    }
    Ok(NnPolicyArbiter::new(ckpt.model.clone(), encoder))
}

/// The paper's §3.2 end game on a stored artifact: distills a
/// checkpointed synthetic-study agent into the implementable
/// shift-and-add arbiter. Feature importance is read off the weight
/// heatmap (mean `|w|` per feature row, the Fig. 4 readout); the relative
/// local-age / hop-count magnitudes pick the hardware shifts.
///
/// # Errors
///
/// Returns an error if the checkpoint cannot be decoded or its feature
/// set lacks local age or hop count (nothing to distill from).
pub fn distill_checkpoint(ckpt: &Checkpoint) -> Result<RlInspiredSynthetic, String> {
    let encoder = encoder_from_checkpoint(ckpt)?;
    if ckpt.model.input_size() != encoder.state_width() {
        return Err("checkpoint model does not match its encoder".into());
    }
    let mut la_row = None;
    let mut hc_row = None;
    let mut row = 0;
    for &f in encoder.features().features() {
        match f {
            Feature::LocalAge => la_row = Some(row),
            Feature::HopCount => hc_row = Some(row),
            _ => {}
        }
        row += f.width();
    }
    let (Some(la_row), Some(hc_row)) = (la_row, hc_row) else {
        return Err("distillation needs local_age and hop_count features".into());
    };
    let heat = weight_heatmap(&ckpt.model, &encoder);
    Ok(RlInspiredSynthetic::from_weights(
        heat.row_mean(la_row),
        heat.row_mean(hc_row),
    ))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::train::{train_synthetic, TrainSpec};

    fn trained() -> TrainOutcome {
        let mut spec = TrainSpec::synthetic_4x4(5);
        spec.epochs = 2;
        spec.cycles_per_epoch = 300;
        train_synthetic(&spec)
    }

    #[test]
    fn checkpoint_round_trips_encoder_agent_and_weights() {
        let out = trained();
        let ckpt = checkpoint_from_outcome(&out, "abcd", "test");
        let json = ckpt.to_json();
        let back = Checkpoint::from_json(&json).unwrap();
        assert_eq!(back, ckpt);
        // Agent config round-trips exactly.
        assert_eq!(agent_config_from_checkpoint(&back).unwrap(), *out.agent.config());
        // Encoder round-trips exactly.
        assert_eq!(encoder_from_checkpoint(&back).unwrap(), *out.agent.encoder());
        // Weights round-trip exactly.
        assert_eq!(back.model, *out.agent.network());
        assert_eq!(back.curve, out.curve);
        assert_eq!(back.converged, None);
    }

    #[test]
    fn rebuilt_policy_matches_frozen_agent() {
        let out = trained();
        let ckpt = checkpoint_from_outcome(&out, "abcd", "test");
        let rebuilt = policy_from_checkpoint(&ckpt).unwrap();
        // The arbiter is not `PartialEq` (it carries an RNG), but its
        // entire state is seeded constants + the weights: the Debug
        // encodings matching means the two policies are bit-identical.
        assert_eq!(format!("{rebuilt:?}"), format!("{:?}", out.agent.freeze()));
    }

    #[test]
    fn shape_mismatch_is_rejected() {
        let out = trained();
        let mut ckpt = checkpoint_from_outcome(&out, "abcd", "test");
        // Claim a different geometry than the stored model.
        for entry in &mut ckpt.config {
            if entry.0 == "num_vnets" {
                entry.1 = "7".into();
            }
        }
        let err = policy_from_checkpoint(&ckpt).unwrap_err();
        assert!(err.contains("does not match"), "{err}");
    }

    #[test]
    fn distillation_consumes_checkpoints() {
        let out = trained();
        let ckpt = checkpoint_from_outcome(&out, "abcd", "test");
        // The synthetic feature set includes local age and hop count, so
        // distillation succeeds and yields a valid shift-and-add arbiter.
        let distilled = distill_checkpoint(&ckpt).unwrap();
        let _ = distilled.arbiter();
        // A feature set without hop count cannot be distilled.
        let mut stripped = ckpt.clone();
        for entry in &mut stripped.config {
            if entry.0 == "features" {
                entry.1 = "payload_size,local_age".into();
            }
        }
        assert!(distill_checkpoint(&stripped).is_err());
    }
}
