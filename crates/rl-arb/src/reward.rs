//! Reward functions (paper §3.1.1 and §6.3).

use noc_sim::OutputCtx;

/// The three reward formulations the paper compares in Fig. 12.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RewardKind {
    /// `+1` when the agent grants the message with the oldest global age
    /// among the competitors, `0` otherwise. Immediate and
    /// decision-specific — the only reward the paper found to converge.
    GlobalAge,
    /// Reciprocal of the periodically refreshed average accumulated
    /// latency of delivered + in-flight messages (§6.3). A global,
    /// delayed signal.
    AccLatency,
    /// Fraction of mesh links that carried a flit in the previous cycle
    /// (§6.3). Also global and only loosely tied to single decisions.
    LinkUtil,
}

impl RewardKind {
    /// All reward kinds in reporting order.
    pub const ALL: [RewardKind; 3] = [
        RewardKind::GlobalAge,
        RewardKind::AccLatency,
        RewardKind::LinkUtil,
    ];

    /// Display label used in training-curve reports.
    pub fn label(self) -> &'static str {
        match self {
            RewardKind::GlobalAge => "global_age",
            RewardKind::AccLatency => "acc_latency",
            RewardKind::LinkUtil => "link_util",
        }
    }

    /// Parses a label back into the kind — the inverse of
    /// [`RewardKind::label`], used by the checkpoint config round-trip.
    ///
    /// # Errors
    ///
    /// Returns an error for unknown labels.
    pub fn from_label(label: &str) -> Result<RewardKind, String> {
        RewardKind::ALL
            .iter()
            .copied()
            .find(|r| r.label() == label)
            .ok_or_else(|| format!("unknown reward '{label}'"))
    }

    /// Computes the reward for granting `chosen` (an index into
    /// `ctx.candidates`).
    ///
    /// # Panics
    ///
    /// Panics if `chosen` is out of range for the candidate list.
    pub fn compute(self, ctx: &OutputCtx<'_>, chosen: usize) -> f64 {
        assert!(chosen < ctx.candidates.len(), "chosen index out of range");
        match self {
            RewardKind::GlobalAge => {
                if chosen == ctx.oldest_global_index() {
                    1.0
                } else {
                    0.0
                }
            }
            RewardKind::AccLatency => {
                // Lower average latency ⇒ higher reward; guard the cold
                // start where the statistic is still zero.
                1.0 / ctx.net.avg_accumulated_latency.max(1.0)
            }
            RewardKind::LinkUtil => ctx.net.link_utilization_prev,
        }
    }
}

impl std::str::FromStr for RewardKind {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        RewardKind::from_label(s)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use noc_sim::{Candidate, DestType, Features, MsgType, NetSnapshot, NodeId, RouterId};

    fn cand(create: u64, id: u64) -> Candidate {
        Candidate {
            in_port: 0,
            vnet: 0,
            slot: 0,
            features: Features {
                payload_size: 1,
                local_age: 0,
                distance: 1,
                hop_count: 0,
                in_flight_from_src: 0,
                inter_arrival: 0,
                msg_type: MsgType::Request,
                dst_type: DestType::Core,
            },
            packet_id: id,
            create_cycle: create,
            arrival_cycle: create,
            src: NodeId(0),
            dst: NodeId(1),
            port_degraded: false,
        }
    }

    fn ctx<'a>(cands: &'a [Candidate], net: &'a NetSnapshot) -> OutputCtx<'a> {
        OutputCtx {
            router: RouterId(0),
            out_port: 0,
            cycle: 100,
            num_ports: 5,
            num_vnets: 1,
            candidates: cands,
            net,
        }
    }

    #[test]
    fn global_age_rewards_only_the_oldest() {
        let net = NetSnapshot::default();
        let cands = vec![cand(50, 0), cand(10, 1)];
        let c = ctx(&cands, &net);
        assert_eq!(RewardKind::GlobalAge.compute(&c, 1), 1.0);
        assert_eq!(RewardKind::GlobalAge.compute(&c, 0), 0.0);
    }

    #[test]
    fn acc_latency_is_reciprocal_and_guarded() {
        let mut net = NetSnapshot::default();
        let cands = vec![cand(0, 0), cand(1, 1)];
        net.avg_accumulated_latency = 25.0;
        assert_eq!(RewardKind::AccLatency.compute(&ctx(&cands, &net), 0), 0.04);
        net.avg_accumulated_latency = 0.0;
        assert_eq!(RewardKind::AccLatency.compute(&ctx(&cands, &net), 0), 1.0);
    }

    #[test]
    fn link_util_passes_through_snapshot() {
        let net = NetSnapshot {
            link_utilization_prev: 0.375,
            ..Default::default()
        };
        let cands = vec![cand(0, 0), cand(1, 1)];
        assert_eq!(RewardKind::LinkUtil.compute(&ctx(&cands, &net), 1), 0.375);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn out_of_range_choice_panics() {
        let net = NetSnapshot::default();
        let cands = vec![cand(0, 0)];
        RewardKind::GlobalAge.compute(&ctx(&cands, &net), 5);
    }

    #[test]
    fn labels_are_unique() {
        let labels: Vec<&str> = RewardKind::ALL.iter().map(|r| r.label()).collect();
        assert_eq!(labels, vec!["global_age", "acc_latency", "link_util"]);
    }

    #[test]
    fn labels_round_trip_through_parsing() {
        for kind in RewardKind::ALL {
            assert_eq!(kind.label().parse::<RewardKind>(), Ok(kind));
        }
        assert!("oldest_first".parse::<RewardKind>().is_err());
    }
}
