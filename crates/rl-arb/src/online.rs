//! Online/continual learning: a self-contained DQN arbiter that keeps
//! training *during* the measured run.
//!
//! The paper trains offline and freezes the policy; [`OnlinePolicy`] is
//! the self-healing counterpoint (ROADMAP #4, after Charrwi & Hussain's
//! "Toward Self-Healing Networks-on-Chip"): it interleaves ε-greedy acting
//! with in-situ DQN updates on a bounded replay ring fed by live
//! [`Candidate`](noc_sim::Candidate) outcomes, so the policy can adapt
//! around link-down windows instead of arbitrating with stale weights.
//!
//! Two properties distinguish it from the training-harness
//! [`RlAgentArbiter`](crate::RlAgentArbiter):
//!
//! * **Determinism.** Every random draw (exploration, replay sampling)
//!   comes from counter-keyed [`SplitMix64`] streams derived from the
//!   construction seed — no shared mutable RNG — so runs are
//!   bit-deterministic and thread-invariant, and the entire RNG position
//!   is one serializable counter.
//! * **Checkpointability.** All mutable state (both networks, the replay
//!   ring, pending transitions, counters, the RNG counter) round-trips
//!   through [`Arbiter::checkpoint_state`] / [`Arbiter::restore_state`],
//!   so a run split at any cycle boundary is bit-identical to the
//!   unsplit run.
//!
//! With `lr == 0` and `epsilon == 0` the wrapper never trains and never
//! explores, and its decisions are bit-identical to the frozen
//! [`NnPolicyArbiter`](crate::NnPolicyArbiter) over the same network
//! (pinned by a property test): the frozen baseline is literally the
//! zero-learning point of this policy's configuration space.

use nn_mlp::{Activation, Checkpoint, DenseLayer, Mlp};
use noc_sim::{Arbiter, NetSnapshot, OutputCtx, SplitMix64};
use std::collections::BTreeMap;

use crate::agent::{greedy_choice_with, AgentConfig, InferenceScratch};
use crate::ckpt::encoder_from_checkpoint;
use crate::features::StateEncoder;
use crate::replay::Experience;

/// Golden-ratio odd constant decorrelating successive RNG counter keys.
const RNG_STREAM_MIX: u64 = 0x9E3779B97F4A7C15;

/// Decisions over which the exploration rate halves:
/// `ε(d) = ε₀ / (1 + d / EPSILON_HALF_LIFE)`.
const EPSILON_HALF_LIFE: f64 = 10_000.0;

/// An incomplete `⟨s, a, r, ·⟩` transition awaiting its next state.
#[derive(Debug, Clone, PartialEq)]
struct Pending {
    state: Vec<f64>,
    /// Chosen action (buffer slot).
    action: usize,
    reward: f64,
}

/// A continually learning DQN arbitration policy (see the module docs).
///
/// Construct with [`OnlinePolicy::new`] from an explicit network (cold
/// start or a hand-built warm start) or with
/// [`OnlinePolicy::from_checkpoint`] to resume learning from a trained
/// artifact. Hyperparameters reuse [`AgentConfig`]; `double_dqn` and
/// `prioritized` are ignored (the online path is plain DQN), and
/// `replay_capacity` bounds the in-situ ring.
#[derive(Debug, Clone)]
pub struct OnlinePolicy {
    encoder: StateEncoder,
    net: Mlp,
    target: Mlp,
    cfg: AgentConfig,
    /// Bounded replay ring (insertion semantics of
    /// [`crate::ReplayMemory`], RNG factored out).
    ring: Vec<Experience>,
    write: usize,
    capacity: usize,
    /// Incomplete transitions per `(router index, out_port)`. A `BTreeMap`
    /// so checkpoint serialization has a canonical order.
    pending: BTreeMap<(usize, usize), Pending>,
    /// Base key of the counter-RNG streams (from the config seed;
    /// construction-time, not serialized).
    rng_key: u64,
    /// Draws taken so far — the entire serializable RNG position.
    rng_ctr: u64,
    decisions: u64,
    explored: u64,
    train_ticks: u64,
    cum_reward: f64,
    scratch: InferenceScratch,
}

impl OnlinePolicy {
    /// Creates an online policy over `net` (the target network starts as
    /// a copy). Use a freshly initialized network for learning from
    /// scratch, or a trained one to continue learning in deployment.
    ///
    /// # Panics
    ///
    /// Panics if the network shape does not match the encoder.
    pub fn new(net: Mlp, encoder: StateEncoder, cfg: AgentConfig) -> Self {
        assert_eq!(net.input_size(), encoder.state_width(), "input width mismatch");
        assert_eq!(net.output_size(), encoder.num_slots(), "output width mismatch");
        let target = net.clone();
        let capacity = cfg.replay_capacity.max(1);
        let rng_key = cfg.seed;
        OnlinePolicy {
            encoder,
            net,
            target,
            cfg,
            ring: Vec::new(),
            write: 0,
            capacity,
            pending: BTreeMap::new(),
            rng_key,
            rng_ctr: 0,
            decisions: 0,
            explored: 0,
            train_ticks: 0,
            cum_reward: 0.0,
            scratch: InferenceScratch::default(),
        }
    }

    /// Warm-starts online learning from a trained artifact: the
    /// checkpoint's network and encoder, this run's hyperparameters.
    ///
    /// # Errors
    ///
    /// Returns an error for incomplete config entries or a model whose
    /// shape does not match the reconstructed encoder.
    pub fn from_checkpoint(ckpt: &Checkpoint, cfg: AgentConfig) -> Result<OnlinePolicy, String> {
        let encoder = encoder_from_checkpoint(ckpt)?;
        if ckpt.model.input_size() != encoder.state_width()
            || ckpt.model.output_size() != encoder.num_slots()
        {
            return Err(format!(
                "checkpoint model shape {}→{} does not match its encoder ({}→{})",
                ckpt.model.input_size(),
                ckpt.model.output_size(),
                encoder.state_width(),
                encoder.num_slots()
            ));
        }
        Ok(OnlinePolicy::new(ckpt.model.clone(), encoder, cfg))
    }

    /// The live Q-network.
    pub fn network(&self) -> &Mlp {
        &self.net
    }

    /// The state encoder.
    pub fn encoder(&self) -> &StateEncoder {
        &self.encoder
    }

    /// The hyperparameters in effect.
    pub fn config(&self) -> &AgentConfig {
        &self.cfg
    }

    /// Decisions made so far.
    pub fn decisions(&self) -> u64 {
        self.decisions
    }

    /// Decisions that were random explorations.
    pub fn explored(&self) -> u64 {
        self.explored
    }

    /// Training ticks executed so far (0 when `lr == 0`). The
    /// "zero training epochs" witness for warm-cache tests.
    pub fn train_ticks(&self) -> u64 {
        self.train_ticks
    }

    /// Sum of immediate rewards over all decisions.
    pub fn cumulative_reward(&self) -> f64 {
        self.cum_reward
    }

    /// Experiences currently in the replay ring.
    pub fn replay_len(&self) -> usize {
        self.ring.len()
    }

    /// The current (decayed) exploration rate:
    /// `ε₀ / (1 + decisions / 10000)`.
    pub fn epsilon_now(&self) -> f64 {
        self.cfg.epsilon / (1.0 + self.decisions as f64 / EPSILON_HALF_LIFE)
    }

    /// One fresh RNG stream: keyed by the construction seed and the draw
    /// counter, so the serializable `(rng_ctr)` scalar is the complete
    /// stream position.
    fn draw(&mut self) -> SplitMix64 {
        let s = SplitMix64::new(self.rng_key ^ self.rng_ctr.wrapping_mul(RNG_STREAM_MIX));
        self.rng_ctr += 1;
        s
    }

    fn push_ring(&mut self, exp: Experience) {
        if self.ring.len() < self.capacity {
            self.ring.push(exp);
        } else {
            self.ring[self.write] = exp;
        }
        self.write = (self.write + 1) % self.capacity;
    }

    /// One DQN update on a uniformly sampled experience (plain targets:
    /// the target network both selects and evaluates).
    fn train_one(&mut self) {
        let idx = self.draw().next_bounded(self.ring.len() as u64) as usize;
        let exp = self.ring[idx].clone();
        let mut target_q = self.net.forward(&exp.state);
        let next_q = self.target.forward(&exp.next_state);
        let best_next = exp
            .next_valid_slots
            .iter()
            .map(|&s| next_q[s as usize])
            .fold(f64::NEG_INFINITY, f64::max);
        target_q[exp.action] = exp.reward + self.cfg.gamma * best_next;
        self.net
            .train_sse(&exp.state, &target_q, self.cfg.lr, self.cfg.grad_clip);
    }
}

impl Arbiter for OnlinePolicy {
    fn name(&self) -> String {
        "NN-online".into()
    }

    fn select(&mut self, ctx: &OutputCtx<'_>) -> Option<usize> {
        let eps = self.epsilon_now();
        self.decisions += 1;
        // With ε₀ == 0 no stream is consumed, so the zero-exploration
        // policy is draw-for-draw identical to the frozen arbiter.
        let chosen = if eps > 0.0 {
            let mut s = self.draw();
            if s.next_f64() < eps {
                self.explored += 1;
                s.next_bounded(ctx.candidates.len() as u64) as usize
            } else {
                greedy_choice_with(&self.net, &self.encoder, ctx, &mut self.scratch)
            }
        } else {
            greedy_choice_with(&self.net, &self.encoder, ctx, &mut self.scratch)
        };
        let state = self.encoder.encode(ctx);
        let reward = self.cfg.reward.compute(ctx, chosen);
        self.cum_reward += reward;
        // Complete the previous tuple for this (router, output): its next
        // state is the state just observed, and the Bellman backup may
        // only maximize over the buffers actually competing in it (same
        // chain as `DqnAgent::decide`).
        let key = (ctx.router.index(), ctx.out_port);
        if let Some(prev) = self.pending.remove(&key) {
            self.push_ring(Experience {
                state: prev.state,
                action: prev.action,
                next_state: state.clone(),
                next_valid_slots: ctx.candidates.iter().map(|c| c.slot as u16).collect(),
                reward: prev.reward,
            });
        }
        self.pending.insert(
            key,
            Pending {
                state,
                action: ctx.candidates[chosen].slot,
                reward,
            },
        );
        Some(chosen)
    }

    fn end_cycle(&mut self, _net: &NetSnapshot) {
        // lr == 0 is the frozen-policy fixed point: no training, no
        // target syncs, no RNG draws — bit-identical to never learning.
        if self.cfg.lr == 0.0 || self.ring.is_empty() {
            return;
        }
        for _ in 0..self.cfg.batch_size {
            self.train_one();
        }
        self.train_ticks += 1;
        if self
            .train_ticks
            .is_multiple_of(self.cfg.target_sync_period.max(1))
        {
            self.target = self.net.clone();
        }
    }

    fn checkpoint_state(&self) -> Option<String> {
        let mut parts = vec![
            "v1".to_string(),
            format!(
                "{};{};{};{};{};{}",
                self.decisions,
                self.explored,
                self.train_ticks,
                self.rng_ctr,
                self.write,
                self.cum_reward.to_bits()
            ),
            mlp_to_str(&self.net),
            mlp_to_str(&self.target),
            self.ring.iter().map(exp_to_str).collect::<Vec<_>>().join(";"),
            self.pending
                .iter()
                .map(|(&(router, port), p)| {
                    format!(
                        "{router}:{port}:{}:{}:{}",
                        p.action,
                        p.reward.to_bits(),
                        f64s_to_csv(&p.state)
                    )
                })
                .collect::<Vec<_>>()
                .join(";"),
        ];
        // An empty trailing section must still occupy its slot.
        for p in &mut parts {
            if p.is_empty() {
                *p = "-".into();
            }
        }
        Some(parts.join("|"))
    }

    fn restore_state(&mut self, state: &str) -> Result<(), String> {
        let parts: Vec<&str> = state.split('|').collect();
        if parts.len() != 6 || parts[0] != "v1" {
            return Err(format!(
                "bad online-policy state (expected 6 v1 sections, got {})",
                parts.len()
            ));
        }
        let counters: Vec<&str> = parts[1].split(';').collect();
        if counters.len() != 6 {
            return Err("bad online-policy counter section".into());
        }
        let n = |s: &str| -> Result<u64, String> {
            s.parse().map_err(|_| format!("bad number '{s}' in online-policy state"))
        };
        let net = mlp_from_str(parts[2])?;
        let target = mlp_from_str(parts[3])?;
        for (what, m) in [("network", &net), ("target", &target)] {
            if m.input_size() != self.encoder.state_width()
                || m.output_size() != self.encoder.num_slots()
            {
                return Err(format!("restored {what} shape does not match the encoder"));
            }
        }
        let mut ring = Vec::new();
        if parts[4] != "-" {
            for rec in parts[4].split(';') {
                ring.push(exp_from_str(rec)?);
            }
        }
        if ring.len() > self.capacity {
            return Err(format!(
                "restored ring holds {} experiences, capacity is {}",
                ring.len(),
                self.capacity
            ));
        }
        let mut pending = BTreeMap::new();
        if parts[5] != "-" {
            for rec in parts[5].split(';') {
                let f: Vec<&str> = rec.split(':').collect();
                if f.len() != 5 {
                    return Err("bad pending record in online-policy state".into());
                }
                pending.insert(
                    (n(f[0])? as usize, n(f[1])? as usize),
                    Pending {
                        action: n(f[2])? as usize,
                        reward: f64::from_bits(n(f[3])?),
                        state: f64s_from_csv(f[4])?,
                    },
                );
            }
        }
        self.decisions = n(counters[0])?;
        self.explored = n(counters[1])?;
        self.train_ticks = n(counters[2])?;
        self.rng_ctr = n(counters[3])?;
        self.write = n(counters[4])? as usize;
        self.cum_reward = f64::from_bits(n(counters[5])?);
        self.net = net;
        self.target = target;
        self.ring = ring;
        self.pending = pending;
        Ok(())
    }
}

fn act_tag(a: Activation) -> u64 {
    match a {
        Activation::Identity => 0,
        Activation::Sigmoid => 1,
        Activation::Relu => 2,
        Activation::Tanh => 3,
    }
}

fn act_from_tag(t: u64) -> Result<Activation, String> {
    match t {
        0 => Ok(Activation::Identity),
        1 => Ok(Activation::Sigmoid),
        2 => Ok(Activation::Relu),
        3 => Ok(Activation::Tanh),
        other => Err(format!("unknown activation tag {other}")),
    }
}

fn f64s_to_csv(vals: &[f64]) -> String {
    vals.iter()
        .map(|v| v.to_bits().to_string())
        .collect::<Vec<_>>()
        .join(",")
}

fn f64s_from_csv(s: &str) -> Result<Vec<f64>, String> {
    if s.is_empty() {
        return Ok(Vec::new());
    }
    s.split(',')
        .map(|t| {
            t.parse::<u64>()
                .map(f64::from_bits)
                .map_err(|_| format!("bad f64 bits '{t}'"))
        })
        .collect()
}

fn u16s_to_csv(vals: &[u16]) -> String {
    vals.iter().map(u16::to_string).collect::<Vec<_>>().join(",")
}

/// Lossless text form of a network: layers joined by `/`, each
/// `inputs:outputs:activation:weight_bits_csv:bias_bits_csv` (floats as
/// IEEE-754 bit patterns). Stays within the simulator checkpoint codec's
/// clean-string subset.
fn mlp_to_str(m: &Mlp) -> String {
    m.layers()
        .iter()
        .map(|l| {
            format!(
                "{}:{}:{}:{}:{}",
                l.inputs(),
                l.outputs(),
                act_tag(l.activation()),
                f64s_to_csv(l.weights()),
                f64s_to_csv(l.biases())
            )
        })
        .collect::<Vec<_>>()
        .join("/")
}

fn mlp_from_str(s: &str) -> Result<Mlp, String> {
    let mut layers = Vec::new();
    for rec in s.split('/') {
        let f: Vec<&str> = rec.split(':').collect();
        if f.len() != 5 {
            return Err("bad layer record in online-policy state".into());
        }
        let inputs: usize = f[0].parse().map_err(|_| "bad layer inputs".to_string())?;
        let outputs: usize = f[1].parse().map_err(|_| "bad layer outputs".to_string())?;
        let act = act_from_tag(f[2].parse().map_err(|_| "bad activation tag".to_string())?)?;
        let weights = f64s_from_csv(f[3])?;
        let biases = f64s_from_csv(f[4])?;
        if weights.len() != inputs * outputs || biases.len() != outputs {
            return Err("layer parameter shapes do not match in online-policy state".into());
        }
        layers.push(DenseLayer::from_parts(inputs, outputs, weights, biases, act));
    }
    if layers.is_empty() {
        return Err("empty network in online-policy state".into());
    }
    Ok(Mlp::from_layers(layers))
}

fn exp_to_str(e: &Experience) -> String {
    format!(
        "{}:{}:{}:{}:{}",
        e.action,
        e.reward.to_bits(),
        f64s_to_csv(&e.state),
        f64s_to_csv(&e.next_state),
        u16s_to_csv(&e.next_valid_slots)
    )
}

fn exp_from_str(s: &str) -> Result<Experience, String> {
    let f: Vec<&str> = s.split(':').collect();
    if f.len() != 5 {
        return Err("bad experience record in online-policy state".into());
    }
    Ok(Experience {
        action: f[0].parse().map_err(|_| "bad action".to_string())?,
        reward: f64::from_bits(f[1].parse().map_err(|_| "bad reward bits".to_string())?),
        state: f64s_from_csv(f[2])?,
        next_state: f64s_from_csv(f[3])?,
        next_valid_slots: if f[4].is_empty() {
            Vec::new()
        } else {
            f[4].split(',')
                .map(|t| t.parse().map_err(|_| "bad slot".to_string()))
                .collect::<Result<_, String>>()?
        },
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::features::FeatureSet;
    use noc_sim::{Candidate, DestType, FeatureBounds, Features, MsgType, NodeId, RouterId};

    fn encoder() -> StateEncoder {
        StateEncoder::new(5, 3, FeatureSet::synthetic(), FeatureBounds::for_mesh(4, 4))
    }

    fn policy(lr: f64, eps: f64, seed: u64) -> OnlinePolicy {
        let enc = encoder();
        let cfg = AgentConfig {
            lr,
            epsilon: eps,
            ..AgentConfig::tuned_synthetic(seed)
        };
        let net = Mlp::paper_agent(enc.state_width(), cfg.hidden, enc.num_slots(), seed);
        OnlinePolicy::new(net, enc, cfg)
    }

    fn cand(slot: usize, create: u64, la: u64) -> Candidate {
        Candidate {
            in_port: slot / 3,
            vnet: slot % 3,
            slot,
            features: Features {
                payload_size: 1,
                local_age: la,
                distance: 3,
                hop_count: 1,
                in_flight_from_src: 2,
                inter_arrival: 4,
                msg_type: MsgType::Request,
                dst_type: DestType::Core,
            },
            packet_id: slot as u64,
            create_cycle: create,
            arrival_cycle: create,
            src: NodeId(0),
            dst: NodeId(1),
            port_degraded: false,
        }
    }

    fn ctx<'a>(cands: &'a [Candidate], net: &'a NetSnapshot, cycle: u64) -> OutputCtx<'a> {
        OutputCtx {
            router: RouterId(1),
            out_port: 2,
            cycle,
            num_ports: 5,
            num_vnets: 3,
            candidates: cands,
            net,
        }
    }

    #[test]
    fn decisions_fill_replay_via_pending_chain() {
        let mut p = policy(0.05, 0.0, 7);
        let net = NetSnapshot::default();
        let cands = vec![cand(0, 5, 10), cand(4, 1, 2)];
        assert_eq!(p.replay_len(), 0);
        p.select(&ctx(&cands, &net, 20));
        assert_eq!(p.replay_len(), 0);
        p.select(&ctx(&cands, &net, 21));
        assert_eq!(p.replay_len(), 1);
        assert_eq!(p.decisions(), 2);
    }

    #[test]
    fn zero_lr_never_trains_and_matches_frozen_decisions() {
        let enc = encoder();
        let net = Mlp::paper_agent(enc.state_width(), 15, enc.num_slots(), 11);
        let cfg = AgentConfig {
            lr: 0.0,
            epsilon: 0.0,
            ..AgentConfig::tuned_synthetic(11)
        };
        let mut online = OnlinePolicy::new(net.clone(), enc.clone(), cfg);
        let mut frozen = crate::NnPolicyArbiter::new(net, enc).with_epsilon(0.0);
        let snap = NetSnapshot::default();
        let cands = vec![cand(1, 5, 10), cand(7, 1, 2), cand(11, 3, 4)];
        for c in 0..200 {
            let x = ctx(&cands, &snap, c);
            assert_eq!(online.select(&x), frozen.select(&x), "cycle {c}");
            online.end_cycle(&snap);
        }
        assert_eq!(online.train_ticks(), 0);
        assert_eq!(online.explored(), 0);
    }

    #[test]
    fn learning_changes_the_network() {
        let mut p = policy(0.05, 0.3, 3);
        let before = mlp_to_str(p.network());
        let snap = NetSnapshot::default();
        let cands = vec![cand(0, 50, 10), cand(4, 1, 2)];
        for c in 0..300 {
            p.select(&ctx(&cands, &snap, c));
            p.end_cycle(&snap);
        }
        assert!(p.train_ticks() > 0);
        assert_ne!(mlp_to_str(p.network()), before, "weights never moved");
    }

    #[test]
    fn epsilon_schedule_decays() {
        let mut p = policy(0.0, 0.2, 5);
        assert!((p.epsilon_now() - 0.2).abs() < 1e-12);
        p.decisions = 10_000;
        assert!((p.epsilon_now() - 0.1).abs() < 1e-12);
    }

    #[test]
    fn state_round_trips_exactly_mid_learning() {
        let mut p = policy(0.05, 0.3, 9);
        let snap = NetSnapshot::default();
        let cands = vec![cand(0, 50, 10), cand(4, 1, 2), cand(9, 7, 3)];
        for c in 0..120 {
            p.select(&ctx(&cands, &snap, c));
            p.end_cycle(&snap);
        }
        let state = p.checkpoint_state().expect("serializable");
        let mut q = policy(0.05, 0.3, 9);
        q.restore_state(&state).expect("restorable");
        assert_eq!(q.checkpoint_state().unwrap(), state, "round-trip drift");
        // The restored policy must continue identically.
        for c in 120..180 {
            let x = ctx(&cands, &snap, c);
            assert_eq!(p.select(&x), q.select(&x), "cycle {c}");
            p.end_cycle(&snap);
            q.end_cycle(&snap);
        }
        assert_eq!(
            p.checkpoint_state().unwrap(),
            q.checkpoint_state().unwrap()
        );
    }

    #[test]
    fn restore_rejects_malformed_state() {
        let mut p = policy(0.0, 0.0, 1);
        assert!(p.restore_state("").is_err());
        assert!(p.restore_state("v2|a|b|c|d|e").is_err());
        assert!(p.restore_state("v1|0;0;0;0;0|x|x|-|-").is_err());
    }

    #[test]
    fn ring_is_bounded_by_replay_capacity() {
        let enc = encoder();
        let cfg = AgentConfig {
            lr: 0.0,
            epsilon: 0.0,
            replay_capacity: 8,
            ..AgentConfig::tuned_synthetic(2)
        };
        let net = Mlp::paper_agent(enc.state_width(), cfg.hidden, enc.num_slots(), 2);
        let mut p = OnlinePolicy::new(net, enc, cfg);
        let snap = NetSnapshot::default();
        let cands = vec![cand(0, 5, 10), cand(4, 1, 2)];
        for c in 0..100 {
            p.select(&ctx(&cands, &snap, c));
        }
        assert_eq!(p.replay_len(), 8);
    }
}
