//! Interpretability tooling: the weight heatmaps of Figs. 4 and 7.
//!
//! "Fig. 4 shows a heatmap where each pixel is the average of the absolute
//! value of a specific weight across all 15 neurons in the hidden layer. A
//! darker pixel has a higher magnitude … each row corresponds to a feature,
//! and each column corresponds to an input buffer." This module computes
//! that matrix from a trained network plus its encoder, and renders it as
//! ASCII art or CSV.

use nn_mlp::Mlp;

use crate::features::StateEncoder;

/// The averaged first-layer weight-magnitude matrix.
#[derive(Debug, Clone, PartialEq)]
pub struct Heatmap {
    /// Row labels — one per state-vector entry of a buffer (feature name,
    /// with an index suffix for one-hot features).
    pub row_labels: Vec<String>,
    /// Column labels — one per input buffer, `"{port}.vc{v}"`.
    pub col_labels: Vec<String>,
    /// Row-major values, `rows × cols`, each the mean `|w|` over hidden
    /// neurons for that (feature entry, buffer) input.
    pub values: Vec<f64>,
    /// Number of columns.
    pub cols: usize,
}

impl Heatmap {
    /// Value at `(row, col)`.
    ///
    /// # Panics
    ///
    /// Panics if out of range.
    pub fn at(&self, row: usize, col: usize) -> f64 {
        assert!(col < self.cols, "column out of range");
        self.values[row * self.cols + col]
    }

    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.row_labels.len()
    }

    /// Mean magnitude of a whole row (a feature entry across all buffers).
    pub fn row_mean(&self, row: usize) -> f64 {
        let r = &self.values[row * self.cols..(row + 1) * self.cols];
        r.iter().sum::<f64>() / self.cols as f64
    }

    /// Rows ranked by mean magnitude, strongest first — the "which features
    /// does the network use" readout of §3.2 and §4.6.
    pub fn ranked_rows(&self) -> Vec<(usize, f64)> {
        let mut v: Vec<(usize, f64)> = (0..self.rows()).map(|r| (r, self.row_mean(r))).collect();
        v.sort_by(|a, b| b.1.partial_cmp(&a.1).unwrap_or(std::cmp::Ordering::Equal));
        v
    }

    /// Renders the heatmap as ASCII art (darker character = larger
    /// magnitude), mirroring the paper's figures in a terminal.
    pub fn to_ascii(&self) -> String {
        const SHADES: &[u8] = b" .:-=+*#%@";
        let max = self
            .values
            .iter()
            .fold(0.0_f64, |m, &v| m.max(v))
            .max(1e-12);
        let label_w = self.row_labels.iter().map(|l| l.len()).max().unwrap_or(0);
        let mut out = String::new();
        for (r, label) in self.row_labels.iter().enumerate() {
            out.push_str(&format!("{label:>label_w$} |"));
            for c in 0..self.cols {
                let v = self.at(r, c) / max;
                let idx = ((v * (SHADES.len() - 1) as f64).round() as usize)
                    .min(SHADES.len() - 1);
                out.push(SHADES[idx] as char);
            }
            out.push('\n');
        }
        out
    }

    /// Renders the heatmap as CSV with header row/column.
    pub fn to_csv(&self) -> String {
        let mut out = String::from("feature");
        for c in &self.col_labels {
            out.push(',');
            out.push_str(c);
        }
        out.push('\n');
        for (r, label) in self.row_labels.iter().enumerate() {
            out.push_str(label);
            for c in 0..self.cols {
                out.push_str(&format!(",{:.6}", self.at(r, c)));
            }
            out.push('\n');
        }
        out
    }
}

/// Computes the Fig. 4 / Fig. 7 heatmap from a trained network.
///
/// # Panics
///
/// Panics if the network's input width does not match the encoder.
pub fn weight_heatmap(net: &Mlp, encoder: &StateEncoder) -> Heatmap {
    assert_eq!(
        net.input_size(),
        encoder.state_width(),
        "network does not match encoder"
    );
    let first = &net.layers()[0];
    let hidden = first.outputs();
    let per_buffer = encoder.features().width_per_buffer();
    let slots = encoder.num_slots();

    // Row labels: feature entries in encoding order.
    let mut row_labels = Vec::with_capacity(per_buffer);
    for f in encoder.features().features() {
        if f.width() == 1 {
            row_labels.push(f.label().to_string());
        } else {
            for k in 0..f.width() {
                row_labels.push(format!("{}[{k}]", f.label()));
            }
        }
    }

    // Column labels: Local0.., N, S, W, E × vnet.
    let locals = encoder.num_ports() - 4;
    let mut col_labels = Vec::with_capacity(slots);
    for port in 0..encoder.num_ports() {
        let pname = if port < locals {
            match (locals, port) {
                (1, _) => "Core".to_string(),
                (2, 0) => "Core".to_string(),
                (2, 1) => "Mem".to_string(),
                _ => format!("L{port}"),
            }
        } else {
            ["N", "S", "W", "E"][port - locals].to_string()
        };
        for v in 0..encoder.num_vnets() {
            col_labels.push(format!("{pname}.vc{v}"));
        }
    }

    // values[row][slot] = mean over hidden neurons of |w[neuron][input]|
    // where input = slot * per_buffer + row.
    let mut values = vec![0.0; per_buffer * slots];
    for row in 0..per_buffer {
        for slot in 0..slots {
            let input = slot * per_buffer + row;
            let sum: f64 = (0..hidden).map(|h| first.weight(h, input).abs()).sum();
            values[row * slots + slot] = sum / hidden as f64;
        }
    }
    Heatmap {
        row_labels,
        col_labels,
        values,
        cols: slots,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::features::{Feature, FeatureSet};
    use nn_mlp::{Activation, DenseLayer};
    use noc_sim::FeatureBounds;

    fn encoder() -> StateEncoder {
        StateEncoder::new(5, 3, FeatureSet::synthetic(), FeatureBounds::for_mesh(4, 4))
    }

    /// Builds a network whose first layer has |w| = input index, so the
    /// heatmap values are predictable.
    fn indexed_net(enc: &StateEncoder) -> Mlp {
        let inputs = enc.state_width();
        let hidden = 2;
        let mut w1 = Vec::with_capacity(inputs * hidden);
        for _h in 0..hidden {
            for i in 0..inputs {
                w1.push(i as f64);
            }
        }
        let l1 = DenseLayer::from_parts(inputs, hidden, w1, vec![0.0; hidden], Activation::Sigmoid);
        let l2 = DenseLayer::from_parts(
            hidden,
            enc.num_slots(),
            vec![0.1; hidden * enc.num_slots()],
            vec![0.0; enc.num_slots()],
            Activation::Relu,
        );
        Mlp::from_layers(vec![l1, l2])
    }

    #[test]
    fn heatmap_shape_matches_encoder() {
        let enc = encoder();
        let hm = weight_heatmap(&indexed_net(&enc), &enc);
        assert_eq!(hm.rows(), 4); // 4 synthetic features
        assert_eq!(hm.cols, 15); // 5 ports × 3 vcs
        assert_eq!(hm.col_labels[0], "Core.vc0");
        assert_eq!(hm.col_labels[14], "E.vc2");
        assert_eq!(hm.row_labels[1], "local age");
    }

    #[test]
    fn heatmap_values_average_first_layer_magnitudes() {
        let enc = encoder();
        let hm = weight_heatmap(&indexed_net(&enc), &enc);
        // Input index for (row=1 local age, slot=3) is 3*4+1 = 13; both
        // hidden neurons carry |w| = 13.
        assert!((hm.at(1, 3) - 13.0).abs() < 1e-12);
    }

    #[test]
    fn ranked_rows_orders_by_mean_magnitude() {
        let enc = encoder();
        let hm = weight_heatmap(&indexed_net(&enc), &enc);
        // With |w| = input index, later rows within each buffer have larger
        // weights: hop count (row 3) must rank first.
        let ranked = hm.ranked_rows();
        assert_eq!(ranked[0].0, 3);
        assert_eq!(ranked.last().unwrap().0, 0);
    }

    #[test]
    fn ascii_and_csv_render_every_cell() {
        let enc = encoder();
        let hm = weight_heatmap(&indexed_net(&enc), &enc);
        let ascii = hm.to_ascii();
        assert_eq!(ascii.lines().count(), 4);
        let csv = hm.to_csv();
        assert_eq!(csv.lines().count(), 5); // header + 4 rows
        assert!(csv.starts_with("feature,Core.vc0,"));
    }

    #[test]
    fn one_hot_rows_get_indexed_labels() {
        let enc = StateEncoder::new(
            6,
            7,
            FeatureSet::from_features(&[Feature::LocalAge, Feature::MsgType]),
            FeatureBounds::for_mesh(8, 8),
        );
        let net = Mlp::paper_agent(enc.state_width(), 4, enc.num_slots(), 0);
        let hm = weight_heatmap(&net, &enc);
        assert_eq!(hm.row_labels, vec![
            "local age",
            "message type[0]",
            "message type[1]",
            "message type[2]"
        ]);
        assert_eq!(hm.col_labels[0], "Core.vc0");
        assert_eq!(hm.col_labels[7], "Mem.vc0");
    }
}
