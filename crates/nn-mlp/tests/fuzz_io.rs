//! Fuzz-style robustness tests for the model-text and checkpoint-JSON
//! readers.
//!
//! Checkpoints cross machine and version boundaries (the
//! content-addressed artifact store hands them to future builds), so the
//! readers must fail *structurally* on damaged input: every mutated or
//! truncated document returns an `Err` or a still-valid parse — never a
//! panic.

use proptest::prelude::*;

use nn_mlp::{Activation, Checkpoint, Mlp};

/// The checked-in golden checkpoint document.
const GOLDEN_CKPT: &str = include_str!("golden/checkpoint_v1.json");

/// A tiny deterministic xorshift so mutations need no external RNG.
fn next(state: &mut u64) -> u64 {
    *state ^= *state << 13;
    *state ^= *state >> 7;
    *state ^= *state << 17;
    *state
}

/// Applies `n` seeded printable-ASCII single-byte mutations.
fn mutate(doc: &str, seed: u64, n: usize) -> String {
    let mut bytes = doc.as_bytes().to_vec();
    let mut state = seed | 1;
    for _ in 0..n {
        let pos = (next(&mut state) % bytes.len() as u64) as usize;
        bytes[pos] = 0x20 + (next(&mut state) % 0x5f) as u8;
    }
    String::from_utf8(bytes).expect("ascii mutations keep ascii")
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Corrupted checkpoint JSON never panics the reader.
    #[test]
    fn mutated_checkpoints_never_panic(seed in any::<u64>(), burst in any::<u32>()) {
        let n = 1 + (burst as usize % 8);
        let _ = Checkpoint::from_json(&mutate(GOLDEN_CKPT, seed, n));
    }

    /// Truncated checkpoint JSON always errors, never panics.
    #[test]
    fn truncated_checkpoints_never_panic(cut in any::<u64>()) {
        let len = (cut % GOLDEN_CKPT.len() as u64) as usize;
        if len < GOLDEN_CKPT.len() {
            prop_assert!(
                Checkpoint::from_json(&GOLDEN_CKPT[..len]).is_err(),
                "a strict prefix of the golden checkpoint must not parse"
            );
        }
    }

    /// Corrupted and truncated model text never panics `Mlp::from_text`.
    #[test]
    fn mutated_model_text_never_panics(seed in any::<u64>(), cut in any::<u32>()) {
        let model = Mlp::new(&[4, 3, 2], &[Activation::Sigmoid, Activation::Relu], 9);
        let text = model.to_text();
        let _ = Mlp::from_text(&mutate(&text, seed, 4));
        let len = (cut as usize) % text.len();
        let _ = Mlp::from_text(&text[..len]);
    }
}

/// The fuzz corpora are live: unmutated inputs round-trip.
#[test]
fn golden_inputs_parse() {
    Checkpoint::from_json(GOLDEN_CKPT).expect("golden checkpoint parses");
    let model = Mlp::new(&[4, 3, 2], &[Activation::Sigmoid, Activation::Relu], 9);
    let back = Mlp::from_text(&model.to_text()).expect("model text round-trips");
    assert_eq!(model.to_text(), back.to_text());
}
