//! Checkpoint JSON schema tests: the serialized form is a versioned
//! interface, pinned by a checked-in golden file.
//!
//! To regenerate the golden after an intentional schema bump:
//! `BLESS=1 cargo test -p nn-mlp --test checkpoint_golden`.

use nn_mlp::{Checkpoint, Mlp, CHECKPOINT_SCHEMA_VERSION};

fn sample_checkpoint() -> Checkpoint {
    Checkpoint {
        recipe_hash: "0123456789abcdef".into(),
        git_describe: "test-fixture".into(),
        converged: Some(false),
        curve: vec![42.5, 17.125, 9.0625],
        accuracy: vec![0.25, 0.5, 0.625],
        config: vec![
            ("num_ports".into(), "6".into()),
            ("hidden".into(), "15".into()),
            ("features".into(), "payload_size,local_age".into()),
        ],
        // Seeded init is deterministic (vendored StdRng), so the golden
        // pins real weight bytes, not just structure.
        model: Mlp::paper_agent(3, 2, 2, 7),
    }
}

const GOLDEN_PATH: &str = concat!(
    env!("CARGO_MANIFEST_DIR"),
    "/tests/golden/checkpoint_v1.json"
);

/// The serialized form matches the checked-in golden byte-for-byte, and
/// the golden parses back to the identical checkpoint.
#[test]
fn checkpoint_matches_golden_schema() {
    let ckpt = sample_checkpoint();
    let json = ckpt.to_json();
    if std::env::var_os("BLESS").is_some() {
        std::fs::write(GOLDEN_PATH, &json).expect("bless golden");
    }
    let golden = std::fs::read_to_string(GOLDEN_PATH)
        .expect("golden file missing — run with BLESS=1 to create it");
    assert_eq!(
        json, golden,
        "Checkpoint JSON no longer matches the v{CHECKPOINT_SCHEMA_VERSION} golden; \
         if the schema change is intentional, bump CHECKPOINT_SCHEMA_VERSION and re-bless"
    );
    let parsed = Checkpoint::from_json(&golden).expect("golden parses");
    assert_eq!(parsed, ckpt, "golden does not round-trip");
}

/// Serialize → parse → serialize is a fixpoint.
#[test]
fn checkpoint_serialization_is_a_fixpoint() {
    let once = sample_checkpoint().to_json();
    let twice = Checkpoint::from_json(&once).unwrap().to_json();
    assert_eq!(once, twice);
}

/// The schema version field gates evolution: checkpoints always carry it.
#[test]
fn schema_version_is_stamped() {
    let json = sample_checkpoint().to_json();
    assert!(json.starts_with("{\n  \"ckpt_schema\": 1,"));
}
