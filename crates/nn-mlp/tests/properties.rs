//! Property-based tests: backprop correctness and quantization bounds.

use nn_mlp::{Activation, DenseLayer, Mlp, QuantizedMlp, Scratch};
use proptest::prelude::*;

proptest! {
    /// The allocation-free forward path is bit-identical to the allocating
    /// one, across shapes, depths, seeds, and scratch reuse.
    #[test]
    fn forward_into_matches_forward(
        seed in any::<u64>(),
        inputs in 1usize..10,
        hidden in 1usize..12,
        outputs in 1usize..8,
        deep in any::<bool>(),
        xs in proptest::collection::vec(-2.0f64..2.0, 16),
    ) {
        let net = if deep {
            Mlp::new(
                &[inputs, hidden, hidden, outputs],
                &[Activation::Sigmoid, Activation::Tanh, Activation::Relu],
                seed,
            )
        } else {
            Mlp::paper_agent(inputs, hidden, outputs, seed)
        };
        let mut scratch = Scratch::for_net(&net);
        // Reuse the same scratch across calls with different inputs: stale
        // buffer contents must not leak into later results.
        for chunk in xs.chunks_exact(inputs).take(3) {
            let reference = net.forward(chunk);
            let fast = net.forward_into(chunk, &mut scratch);
            prop_assert_eq!(fast, &reference[..]);
        }
    }
    /// Analytic gradients match central finite differences on random
    /// single layers (the core correctness property of the whole crate).
    #[test]
    fn layer_gradient_matches_finite_difference(
        seed in any::<u64>(),
        inputs in 1usize..6,
        outputs in 1usize..5,
        xs in proptest::collection::vec(-1.0f64..1.0, 1..6),
    ) {
        prop_assume!(xs.len() >= inputs);
        let x = &xs[..inputs];
        for act in [Activation::Identity, Activation::Sigmoid, Activation::Tanh] {
            let make = || {
                use rand::SeedableRng;
                let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
                DenseLayer::xavier(inputs, outputs, act, &mut rng)
            };
            // Loss: sum of outputs. dL/dy = 1 per output.
            let grad_out = vec![1.0; outputs];
            let layer0 = make();
            let y0 = layer0.forward(x);
            // Analytic input gradient from backward (lr=0 so no update).
            let mut layer = make();
            let grad_in = layer.backward(x, &y0, &grad_out, 0.0, 1e18);
            // Finite differences.
            let eps = 1e-6;
            for i in 0..inputs {
                let mut xp = x.to_vec();
                xp[i] += eps;
                let mut xm = x.to_vec();
                xm[i] -= eps;
                let lp: f64 = layer0.forward(&xp).iter().sum();
                let lm: f64 = layer0.forward(&xm).iter().sum();
                let numeric = (lp - lm) / (2.0 * eps);
                prop_assert!(
                    (numeric - grad_in[i]).abs() < 1e-4,
                    "{act:?} input {i}: numeric {numeric} vs analytic {}",
                    grad_in[i]
                );
            }
        }
    }

    /// Forward passes are deterministic and finite for bounded inputs.
    #[test]
    fn forward_is_finite_and_deterministic(
        seed in any::<u64>(),
        xs in proptest::collection::vec(-1.0f64..1.0, 8),
    ) {
        let net = Mlp::paper_agent(8, 6, 4, seed);
        let a = net.forward(&xs);
        let b = net.forward(&xs);
        prop_assert_eq!(a.clone(), b);
        prop_assert!(a.iter().all(|v| v.is_finite()));
    }

    /// INT8 quantization error stays small relative to the activation
    /// scale for normalized inputs.
    #[test]
    fn quantization_error_is_bounded(
        seed in any::<u64>(),
        xs in proptest::collection::vec(0.0f64..1.0, 12),
    ) {
        let net = Mlp::paper_agent(12, 8, 5, seed);
        let q = QuantizedMlp::from_mlp(&net);
        let yf = net.forward(&xs);
        let yq = q.forward(&xs);
        for (a, b) in yf.iter().zip(&yq) {
            prop_assert!((a - b).abs() < 0.1, "float {a} vs int8 {b}");
        }
    }

    /// SGD on a fixed sample strictly reduces (or maintains) squared error.
    #[test]
    fn training_reduces_loss(seed in any::<u64>()) {
        let mut net = Mlp::new(&[4, 6, 2], &[Activation::Sigmoid, Activation::Identity], seed);
        let x = [0.3, -0.2, 0.8, 0.1];
        let t = [0.4, -0.6];
        let before = net.mse(&x, &t);
        for _ in 0..50 {
            net.train_mse(&x, &t, 0.05, 10.0);
        }
        let after = net.mse(&x, &t);
        prop_assert!(after <= before + 1e-12, "loss rose from {before} to {after}");
    }

    /// train_sse and train_mse agree on the gradient direction (they
    /// differ only by a positive scale).
    #[test]
    fn sse_and_mse_agree_in_direction(seed in any::<u64>()) {
        let x = [0.5, -0.5, 0.25];
        let t = [1.0, -1.0];
        let mut a = Mlp::new(&[3, 4, 2], &[Activation::Tanh, Activation::Identity], seed);
        let mut b = a.clone();
        let before_a = a.mse(&x, &t);
        a.train_mse(&x, &t, 0.01, 1e18);
        b.train_sse(&x, &t, 0.01, 1e18);
        prop_assert!(a.mse(&x, &t) <= before_a + 1e-12);
        prop_assert!(b.mse(&x, &t) <= before_a + 1e-12);
    }
}
