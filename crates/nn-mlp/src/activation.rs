//! Activation functions.

/// Activation function applied element-wise after a dense layer.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Activation {
    /// `f(x) = x`.
    Identity,
    /// `f(x) = 1 / (1 + e^{-x})` — used by the paper's hidden layer.
    Sigmoid,
    /// `f(x) = max(0, x)` — used by the paper's output layer.
    Relu,
    /// `f(x) = tanh(x)`.
    Tanh,
}

impl Activation {
    /// Applies the activation to a pre-activation value.
    ///
    /// ```
    /// use nn_mlp::Activation;
    /// assert_eq!(Activation::Relu.apply(-2.0), 0.0);
    /// assert_eq!(Activation::Relu.apply(3.0), 3.0);
    /// assert!((Activation::Sigmoid.apply(0.0) - 0.5).abs() < 1e-12);
    /// ```
    pub fn apply(self, x: f64) -> f64 {
        match self {
            Activation::Identity => x,
            Activation::Sigmoid => 1.0 / (1.0 + (-x).exp()),
            Activation::Relu => x.max(0.0),
            Activation::Tanh => x.tanh(),
        }
    }

    /// Derivative of the activation expressed in terms of the *output*
    /// value `y = f(x)` (all four functions admit this form, which avoids
    /// storing pre-activations).
    pub fn derivative_from_output(self, y: f64) -> f64 {
        match self {
            Activation::Identity => 1.0,
            Activation::Sigmoid => y * (1.0 - y),
            Activation::Relu => {
                if y > 0.0 {
                    1.0
                } else {
                    0.0
                }
            }
            Activation::Tanh => 1.0 - y * y,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sigmoid_saturates() {
        assert!(Activation::Sigmoid.apply(40.0) > 0.999_999);
        assert!(Activation::Sigmoid.apply(-40.0) < 1e-6);
    }

    #[test]
    fn derivatives_match_finite_differences() {
        let eps = 1e-6;
        for act in [
            Activation::Identity,
            Activation::Sigmoid,
            Activation::Relu,
            Activation::Tanh,
        ] {
            for &x in &[-1.5_f64, -0.3, 0.4, 2.0] {
                if act == Activation::Relu && x.abs() < eps {
                    continue; // kink
                }
                let y = act.apply(x);
                let numeric = (act.apply(x + eps) - act.apply(x - eps)) / (2.0 * eps);
                let analytic = act.derivative_from_output(y);
                assert!(
                    (numeric - analytic).abs() < 1e-5,
                    "{act:?} at {x}: {numeric} vs {analytic}"
                );
            }
        }
    }

    #[test]
    fn relu_clamps_negatives() {
        assert_eq!(Activation::Relu.apply(-7.5), 0.0);
        assert_eq!(Activation::Relu.derivative_from_output(0.0), 0.0);
    }
}
