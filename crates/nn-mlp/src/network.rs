//! Multi-layer perceptrons and SGD training.

use rand::rngs::StdRng;
use rand::SeedableRng;

use crate::activation::Activation;
use crate::layer::DenseLayer;

/// A feed-forward multi-layer perceptron.
///
/// The paper's agent is a 1-hidden-layer MLP (sigmoid hidden, ReLU output);
/// [`Mlp::paper_agent`] builds exactly that shape.
///
/// ```
/// use nn_mlp::{Mlp, Activation};
/// let net = Mlp::new(&[4, 8, 2], &[Activation::Sigmoid, Activation::Relu], 42);
/// let q = net.forward(&[0.1, 0.2, 0.3, 0.4]);
/// assert_eq!(q.len(), 2);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Mlp {
    layers: Vec<DenseLayer>,
}

/// Reusable activation buffers for [`Mlp::forward_into`].
///
/// One scratch serves any network: the buffers grow to the widest layer on
/// first use and are reused (allocation-free) thereafter. Keep one per
/// inference site, not per call.
#[derive(Debug, Clone, Default)]
pub struct Scratch {
    ping: Vec<f64>,
    pong: Vec<f64>,
}

impl Scratch {
    /// An empty scratch; buffers are sized lazily on first use.
    pub fn new() -> Self {
        Scratch::default()
    }

    /// A scratch with capacity preallocated for `net`, so even the first
    /// [`Mlp::forward_into`] call does not allocate.
    pub fn for_net(net: &Mlp) -> Self {
        let widest = net.layers.iter().map(DenseLayer::outputs).max().unwrap_or(0);
        Scratch {
            ping: Vec::with_capacity(widest),
            pong: Vec::with_capacity(widest),
        }
    }
}

impl Mlp {
    /// Builds an MLP with the given layer sizes (`sizes[0]` is the input
    /// width) and one activation per layer transition, Xavier-initialized
    /// from `seed`.
    ///
    /// # Panics
    ///
    /// Panics if fewer than two sizes are given or
    /// `activations.len() != sizes.len() - 1`.
    pub fn new(sizes: &[usize], activations: &[Activation], seed: u64) -> Self {
        assert!(sizes.len() >= 2, "need at least input and output sizes");
        assert_eq!(
            activations.len(),
            sizes.len() - 1,
            "one activation per layer transition"
        );
        let mut rng = StdRng::seed_from_u64(seed);
        let layers = sizes
            .windows(2)
            .zip(activations)
            .map(|(w, &a)| DenseLayer::xavier(w[0], w[1], a, &mut rng))
            .collect();
        Mlp { layers }
    }

    /// The network shape used throughout the paper: one sigmoid hidden
    /// layer and a ReLU output layer (§3.2 and §4.6).
    pub fn paper_agent(inputs: usize, hidden: usize, outputs: usize, seed: u64) -> Self {
        Mlp::new(
            &[inputs, hidden, outputs],
            &[Activation::Sigmoid, Activation::Relu],
            seed,
        )
    }

    /// Builds an MLP from explicit layers.
    ///
    /// # Panics
    ///
    /// Panics if consecutive layer widths do not chain or `layers` is empty.
    pub fn from_layers(layers: Vec<DenseLayer>) -> Self {
        assert!(!layers.is_empty(), "need at least one layer");
        for pair in layers.windows(2) {
            assert_eq!(
                pair[0].outputs(),
                pair[1].inputs(),
                "layer widths must chain"
            );
        }
        Mlp { layers }
    }

    /// The layers, input-side first.
    pub fn layers(&self) -> &[DenseLayer] {
        &self.layers
    }

    /// Input width.
    pub fn input_size(&self) -> usize {
        self.layers[0].inputs()
    }

    /// Output width.
    pub fn output_size(&self) -> usize {
        self.layers.last().unwrap().outputs()
    }

    /// Total trainable parameters.
    pub fn num_parameters(&self) -> usize {
        self.layers
            .iter()
            .map(|l| l.inputs() * l.outputs() + l.outputs())
            .sum()
    }

    /// Forward pass.
    pub fn forward(&self, input: &[f64]) -> Vec<f64> {
        let mut x = input.to_vec();
        for layer in &self.layers {
            x = layer.forward(&x);
        }
        x
    }

    /// Allocation-free forward pass: activations ping-pong between the two
    /// buffers in `scratch`, and the returned slice borrows the one holding
    /// the output layer. After the first call with a given scratch, no heap
    /// allocation occurs — this is the inference path the NoC arbiter runs
    /// once per contended output port per cycle.
    ///
    /// Numerically identical to [`Mlp::forward`].
    pub fn forward_into<'s>(&self, input: &[f64], scratch: &'s mut Scratch) -> &'s [f64] {
        let Scratch { ping, pong } = scratch;
        let mut cur: &mut Vec<f64> = ping;
        let mut next: &mut Vec<f64> = pong;
        let (first, rest) = self.layers.split_first().expect("Mlp has at least one layer");
        first.forward_into(input, cur);
        for layer in rest {
            layer.forward_into(cur, next);
            std::mem::swap(&mut cur, &mut next);
        }
        cur
    }

    /// Batched allocation-free forward pass: `inputs` holds `rows` samples
    /// back to back (`rows * self.input_size()` values) and the returned
    /// slice holds `rows * self.output_size()` Q-values in the same
    /// row-major layout.
    ///
    /// Row `r` of the result is **bit-identical** to
    /// `self.forward_into(&inputs[r*w..(r+1)*w], ..)` — the batched kernel
    /// changes only the loop order across samples, never the per-element
    /// accumulation order (see [`crate::DenseLayer::forward_batch_into`]).
    /// The NoC arbiter relies on this to batch every contended output port
    /// of a router into one network pass per cycle without perturbing a
    /// single decision.
    ///
    /// The same [`Scratch`] type serves scalar and batched calls; buffers
    /// grow to `rows × widest layer` on first use and are reused thereafter.
    ///
    /// # Panics
    ///
    /// Panics if `inputs.len() != rows * self.input_size()`.
    pub fn forward_batch_into<'s>(
        &self,
        inputs: &[f64],
        rows: usize,
        scratch: &'s mut Scratch,
    ) -> &'s [f64] {
        assert_eq!(
            inputs.len(),
            rows * self.input_size(),
            "batch input width mismatch"
        );
        let Scratch { ping, pong } = scratch;
        let mut cur: &mut Vec<f64> = ping;
        let mut next: &mut Vec<f64> = pong;
        let (first, rest) = self.layers.split_first().expect("Mlp has at least one layer");
        first.forward_batch_into(inputs, rows, cur);
        for layer in rest {
            layer.forward_batch_into(cur, rows, next);
            std::mem::swap(&mut cur, &mut next);
        }
        cur
    }

    /// Forward pass keeping every layer's output (needed for backprop).
    fn forward_trace(&self, input: &[f64]) -> Vec<Vec<f64>> {
        let mut acts = Vec::with_capacity(self.layers.len() + 1);
        acts.push(input.to_vec());
        for layer in &self.layers {
            let next = layer.forward(acts.last().unwrap());
            acts.push(next);
        }
        acts
    }

    /// One SGD step on squared error against `target`, returning the
    /// pre-update mean squared error. Gradients are clipped per element at
    /// `clip` (the paper found large unnormalized values destabilize
    /// training, §6.2).
    ///
    /// # Panics
    ///
    /// Panics if `target.len() != self.output_size()`.
    pub fn train_mse(&mut self, input: &[f64], target: &[f64], lr: f64, clip: f64) -> f64 {
        assert_eq!(target.len(), self.output_size(), "target width mismatch");
        let acts = self.forward_trace(input);
        let out = acts.last().unwrap();
        let n = out.len() as f64;
        let mut grad: Vec<f64> = out
            .iter()
            .zip(target)
            .map(|(y, t)| 2.0 * (y - t) / n)
            .collect();
        let mse: f64 = out
            .iter()
            .zip(target)
            .map(|(y, t)| (y - t) * (y - t))
            .sum::<f64>()
            / n;
        for (idx, layer) in self.layers.iter_mut().enumerate().rev() {
            grad = layer.backward(&acts[idx], &acts[idx + 1], &grad, lr, clip);
        }
        mse
    }

    /// One SGD step on the *sum* of squared errors (no division by output
    /// width). For sparse targets — e.g. Q-learning, where only one output
    /// differs from the current prediction — this keeps the gradient
    /// magnitude independent of the action-space size, which matters for
    /// convergence speed.
    ///
    /// # Panics
    ///
    /// Panics if `target.len() != self.output_size()`.
    pub fn train_sse(&mut self, input: &[f64], target: &[f64], lr: f64, clip: f64) -> f64 {
        assert_eq!(target.len(), self.output_size(), "target width mismatch");
        let acts = self.forward_trace(input);
        let out = acts.last().unwrap();
        let mut grad: Vec<f64> = out.iter().zip(target).map(|(y, t)| 2.0 * (y - t)).collect();
        let sse: f64 = out
            .iter()
            .zip(target)
            .map(|(y, t)| (y - t) * (y - t))
            .sum::<f64>();
        for (idx, layer) in self.layers.iter_mut().enumerate().rev() {
            grad = layer.backward(&acts[idx], &acts[idx + 1], &grad, lr, clip);
        }
        sse
    }

    /// Squared-error loss on a single sample without updating weights.
    pub fn mse(&self, input: &[f64], target: &[f64]) -> f64 {
        let out = self.forward(input);
        out.iter()
            .zip(target)
            .map(|(y, t)| (y - t) * (y - t))
            .sum::<f64>()
            / out.len() as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_agent_shapes_match_the_paper() {
        // §4.6: 504 inputs, hidden and output layers of 42 neurons.
        let net = Mlp::paper_agent(504, 42, 42, 0);
        assert_eq!(net.input_size(), 504);
        assert_eq!(net.output_size(), 42);
        assert_eq!(net.layers().len(), 2);
        assert_eq!(net.layers()[0].activation(), Activation::Sigmoid);
        assert_eq!(net.layers()[1].activation(), Activation::Relu);
        assert_eq!(net.num_parameters(), 504 * 42 + 42 + 42 * 42 + 42);
    }

    #[test]
    fn deterministic_from_seed() {
        let a = Mlp::paper_agent(10, 5, 3, 77);
        let b = Mlp::paper_agent(10, 5, 3, 77);
        assert_eq!(a, b);
        let c = Mlp::paper_agent(10, 5, 3, 78);
        assert_ne!(a, c);
    }

    #[test]
    fn learns_xor() {
        let mut net = Mlp::new(&[2, 8, 1], &[Activation::Tanh, Activation::Identity], 1);
        let data = [
            ([0.0, 0.0], [0.0]),
            ([0.0, 1.0], [1.0]),
            ([1.0, 0.0], [1.0]),
            ([1.0, 1.0], [0.0]),
        ];
        for _ in 0..4000 {
            for (x, t) in &data {
                net.train_mse(x, t, 0.1, 10.0);
            }
        }
        for (x, t) in &data {
            let y = net.forward(x)[0];
            assert!((y - t[0]).abs() < 0.2, "xor({x:?}) = {y}");
        }
    }

    #[test]
    fn forward_into_equals_forward_with_lazy_scratch() {
        let net = Mlp::paper_agent(6, 9, 4, 3);
        let mut scratch = Scratch::new();
        let x = [0.1, -0.3, 0.7, 0.0, 0.5, -0.9];
        assert_eq!(net.forward_into(&x, &mut scratch), &net.forward(&x)[..]);
        // Second call reuses the (now-sized) buffers.
        let y = [1.0, 1.0, 1.0, 1.0, 1.0, 1.0];
        assert_eq!(net.forward_into(&y, &mut scratch), &net.forward(&y)[..]);
    }

    #[test]
    fn forward_batch_rows_are_bitwise_identical_to_scalar() {
        let net = Mlp::paper_agent(60, 15, 15, 7);
        let rows = 5;
        let inputs: Vec<f64> = (0..rows * 60)
            .map(|i| ((i * 2654435761_usize) % 1000) as f64 / 1000.0 - 0.3)
            .collect();
        let mut batch = Scratch::new();
        let q = net.forward_batch_into(&inputs, rows, &mut batch).to_vec();
        assert_eq!(q.len(), rows * net.output_size());
        let mut scalar = Scratch::new();
        for r in 0..rows {
            let row = net.forward_into(&inputs[r * 60..(r + 1) * 60], &mut scalar);
            for (o, (&b, &s)) in q[r * 15..(r + 1) * 15].iter().zip(row).enumerate() {
                assert_eq!(
                    b.to_bits(),
                    s.to_bits(),
                    "row {r} output {o}: batched {b} != scalar {s}"
                );
            }
        }
    }

    #[test]
    fn forward_batch_handles_single_row_and_empty_batch() {
        let net = Mlp::paper_agent(6, 9, 4, 3);
        let mut scratch = Scratch::new();
        let x = [0.1, -0.3, 0.7, 0.0, 0.5, -0.9];
        let one = net.forward_batch_into(&x, 1, &mut scratch).to_vec();
        assert_eq!(one, net.forward(&x));
        assert!(net.forward_batch_into(&[], 0, &mut scratch).is_empty());
    }

    #[test]
    #[should_panic(expected = "batch input width mismatch")]
    fn forward_batch_rejects_ragged_input() {
        let net = Mlp::paper_agent(4, 3, 2, 0);
        let mut scratch = Scratch::new();
        net.forward_batch_into(&[0.0; 7], 2, &mut scratch);
    }

    #[test]
    fn train_mse_returns_decreasing_loss() {
        let mut net = Mlp::new(&[3, 6, 2], &[Activation::Sigmoid, Activation::Identity], 5);
        let x = [0.2, -0.4, 0.9];
        let t = [0.3, -0.1];
        let first = net.train_mse(&x, &t, 0.05, 10.0);
        let mut last = first;
        for _ in 0..500 {
            last = net.train_mse(&x, &t, 0.05, 10.0);
        }
        assert!(last < first * 0.01, "loss {first} -> {last}");
    }

    #[test]
    #[should_panic(expected = "layer widths must chain")]
    fn mismatched_layers_rejected() {
        use crate::layer::DenseLayer;
        let l1 = DenseLayer::from_parts(2, 3, vec![0.0; 6], vec![0.0; 3], Activation::Identity);
        let l2 = DenseLayer::from_parts(4, 1, vec![0.0; 4], vec![0.0], Activation::Identity);
        Mlp::from_layers(vec![l1, l2]);
    }

    #[test]
    #[should_panic(expected = "target width mismatch")]
    fn wrong_target_width_panics() {
        let mut net = Mlp::paper_agent(4, 3, 2, 0);
        net.train_mse(&[0.0; 4], &[0.0; 3], 0.1, 1.0);
    }
}
