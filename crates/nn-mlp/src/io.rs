//! Plain-text model persistence.
//!
//! Trained agents need to move between the figure binaries (train once on
//! `bfs`, evaluate everywhere) without pulling a serialization framework
//! into the workspace. The format is a line-oriented text file:
//!
//! ```text
//! mlp v1
//! layers <n>
//! layer <inputs> <outputs> <activation>
//! w <f64> <f64> ...        (one line per output row)
//! b <f64> ...
//! ```
//!
//! Floats are written with `{:e}` round-trip precision.

use std::fmt::Write as _;
use std::str::FromStr;

use crate::activation::Activation;
use crate::layer::DenseLayer;
use crate::network::Mlp;

/// Errors raised while parsing a serialized model.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseModelError {
    /// Line number (1-based) the error was detected at.
    pub line: usize,
    /// Human-readable explanation.
    pub message: String,
}

impl std::fmt::Display for ParseModelError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "model parse error at line {}: {}", self.line, self.message)
    }
}

impl std::error::Error for ParseModelError {}

fn activation_name(a: Activation) -> &'static str {
    match a {
        Activation::Identity => "identity",
        Activation::Sigmoid => "sigmoid",
        Activation::Relu => "relu",
        Activation::Tanh => "tanh",
    }
}

fn activation_from(name: &str, line: usize) -> Result<Activation, ParseModelError> {
    match name {
        "identity" => Ok(Activation::Identity),
        "sigmoid" => Ok(Activation::Sigmoid),
        "relu" => Ok(Activation::Relu),
        "tanh" => Ok(Activation::Tanh),
        other => Err(ParseModelError {
            line,
            message: format!("unknown activation '{other}'"),
        }),
    }
}

impl Mlp {
    /// Serializes the network to the text format.
    pub fn to_text(&self) -> String {
        let mut out = String::from("mlp v1\n");
        let _ = writeln!(out, "layers {}", self.layers().len());
        for layer in self.layers() {
            let _ = writeln!(
                out,
                "layer {} {} {}",
                layer.inputs(),
                layer.outputs(),
                activation_name(layer.activation())
            );
            for o in 0..layer.outputs() {
                out.push('w');
                for i in 0..layer.inputs() {
                    let _ = write!(out, " {:e}", layer.weight(o, i));
                }
                out.push('\n');
            }
            out.push('b');
            for b in layer.biases() {
                let _ = write!(out, " {b:e}");
            }
            out.push('\n');
        }
        out
    }

    /// Parses a network from the text format.
    ///
    /// # Errors
    ///
    /// Returns a [`ParseModelError`] describing the first malformed line.
    pub fn from_text(text: &str) -> Result<Mlp, ParseModelError> {
        let mut lines = text.lines().enumerate().map(|(i, l)| (i + 1, l));
        let mut next = |expect: &str| -> Result<(usize, String), ParseModelError> {
            lines.next().map(|(n, l)| (n, l.to_string())).ok_or_else(|| ParseModelError {
                line: 0,
                message: format!("unexpected end of file, expected {expect}"),
            })
        };

        let (n, header) = next("header")?;
        if header.trim() != "mlp v1" {
            return Err(ParseModelError {
                line: n,
                message: format!("bad header '{header}'"),
            });
        }
        let (n, count_line) = next("layer count")?;
        let num_layers: usize = count_line
            .strip_prefix("layers ")
            .and_then(|v| v.trim().parse().ok())
            .ok_or_else(|| ParseModelError {
                line: n,
                message: "expected 'layers <n>'".into(),
            })?;

        let parse_floats = |line: &str, n: usize, prefix: char| -> Result<Vec<f64>, ParseModelError> {
            let body = line
                .strip_prefix(prefix)
                .ok_or_else(|| ParseModelError {
                    line: n,
                    message: format!("expected '{prefix}' row"),
                })?;
            body.split_whitespace()
                .map(|tok| {
                    f64::from_str(tok).map_err(|_| ParseModelError {
                        line: n,
                        message: format!("bad float '{tok}'"),
                    })
                })
                .collect()
        };

        let mut layers = Vec::with_capacity(num_layers);
        for _ in 0..num_layers {
            let (n, meta) = next("layer header")?;
            let parts: Vec<&str> = meta.split_whitespace().collect();
            if parts.len() != 4 || parts[0] != "layer" {
                return Err(ParseModelError {
                    line: n,
                    message: "expected 'layer <in> <out> <act>'".into(),
                });
            }
            let inputs: usize = parts[1].parse().map_err(|_| ParseModelError {
                line: n,
                message: "bad input width".into(),
            })?;
            let outputs: usize = parts[2].parse().map_err(|_| ParseModelError {
                line: n,
                message: "bad output width".into(),
            })?;
            if inputs == 0 || outputs == 0 {
                return Err(ParseModelError {
                    line: n,
                    message: "layer dimensions must be positive".into(),
                });
            }
            let activation = activation_from(parts[3], n)?;
            let mut weights = Vec::with_capacity(inputs * outputs);
            for _ in 0..outputs {
                let (wn, wline) = next("weight row")?;
                let row = parse_floats(&wline, wn, 'w')?;
                if row.len() != inputs {
                    return Err(ParseModelError {
                        line: wn,
                        message: format!("expected {inputs} weights, found {}", row.len()),
                    });
                }
                weights.extend(row);
            }
            let (bn, bline) = next("bias row")?;
            let biases = parse_floats(&bline, bn, 'b')?;
            if biases.len() != outputs {
                return Err(ParseModelError {
                    line: bn,
                    message: format!("expected {outputs} biases, found {}", biases.len()),
                });
            }
            layers.push(DenseLayer::from_parts(inputs, outputs, weights, biases, activation));
        }
        if layers.is_empty() {
            return Err(ParseModelError {
                line: 0,
                message: "model has no layers".into(),
            });
        }
        for pair in layers.windows(2) {
            if pair[0].outputs() != pair[1].inputs() {
                return Err(ParseModelError {
                    line: 0,
                    message: "layer widths do not chain".into(),
                });
            }
        }
        Ok(Mlp::from_layers(layers))
    }

    /// Writes the network to a file.
    ///
    /// # Errors
    ///
    /// Propagates I/O errors.
    pub fn save(&self, path: impl AsRef<std::path::Path>) -> std::io::Result<()> {
        std::fs::write(path, self.to_text())
    }

    /// Reads a network from a file.
    ///
    /// # Errors
    ///
    /// Returns an I/O error for unreadable files, or an
    /// `InvalidData`-wrapped [`ParseModelError`] for malformed content.
    pub fn load(path: impl AsRef<std::path::Path>) -> std::io::Result<Mlp> {
        let text = std::fs::read_to_string(path)?;
        Mlp::from_text(&text)
            .map_err(|e| std::io::Error::new(std::io::ErrorKind::InvalidData, e))
    }
}

// --------------------------------------------------------------------
// Versioned training checkpoints
// --------------------------------------------------------------------

/// Version stamp of the checkpoint JSON schema
/// ([`Checkpoint::to_json`]). Bump on any breaking change and teach
/// consumers both shapes.
pub const CHECKPOINT_SCHEMA_VERSION: u64 = 1;

/// A versioned trained-model checkpoint: the network plus everything a
/// consumer needs to rebuild the policy and audit where it came from.
///
/// The weights travel as the embedded `mlp v1` text (round-trip exact:
/// floats are written in Rust's shortest form that parses back to the
/// same bits), so `save → load` reproduces the `Mlp` bit-identically.
/// The `config` entries are an ordered string map the training layer
/// uses to persist its agent/encoder configuration — this crate treats
/// them as opaque data.
///
/// Schema v1 layout:
///
/// ```json
/// {
///   "ckpt_schema": 1,
///   "recipe_hash": "<fnv-1a of the training recipe>",
///   "git_describe": "<producing checkout>",
///   "converged": true | false | null,
///   "curve": [..],
///   "accuracy": [..],
///   "config": {"k": "v", ...},
///   "model": "mlp v1\n..."
/// }
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Checkpoint {
    /// Content hash of the training recipe that produced the model (the
    /// artifact store's addressing key).
    pub recipe_hash: String,
    /// `git describe` of the producing checkout (`"unknown"` offline).
    pub git_describe: String,
    /// The trainer's convergence verdict, when early-stop was armed;
    /// `None` when the trainer ran the full epoch budget unconditionally.
    pub converged: Option<bool>,
    /// Learning curve: average message latency per training epoch.
    pub curve: Vec<f64>,
    /// Oracle-match accuracy per training epoch.
    pub accuracy: Vec<f64>,
    /// Ordered key/value configuration entries (agent hyperparameters,
    /// encoder shape, feature bounds — written and read by `rl-arb`).
    pub config: Vec<(String, String)>,
    /// The trained network.
    pub model: Mlp,
}

impl Checkpoint {
    /// Looks up a config entry by key.
    pub fn config_value(&self, key: &str) -> Option<&str> {
        self.config.iter().find(|(k, _)| k == key).map(|(_, v)| v.as_str())
    }

    /// Serializes the checkpoint as pretty-printed JSON (schema v1).
    ///
    /// Emission order is fixed, so equal checkpoints serialize to equal
    /// bytes — the property the golden-file test pins.
    pub fn to_json(&self) -> String {
        let mut s = String::new();
        s.push_str("{\n");
        let _ = writeln!(s, "  \"ckpt_schema\": {CHECKPOINT_SCHEMA_VERSION},");
        let _ = writeln!(s, "  \"recipe_hash\": {},", json_escape(&self.recipe_hash));
        let _ = writeln!(s, "  \"git_describe\": {},", json_escape(&self.git_describe));
        match self.converged {
            Some(c) => {
                let _ = writeln!(s, "  \"converged\": {c},");
            }
            None => s.push_str("  \"converged\": null,\n"),
        }
        let _ = writeln!(s, "  \"curve\": [{}],", json_f64_list(&self.curve));
        let _ = writeln!(s, "  \"accuracy\": [{}],", json_f64_list(&self.accuracy));
        if self.config.is_empty() {
            s.push_str("  \"config\": {},\n");
        } else {
            s.push_str("  \"config\": {\n");
            for (i, (k, v)) in self.config.iter().enumerate() {
                let _ = write!(s, "    {}: {}", json_escape(k), json_escape(v));
                s.push_str(if i + 1 < self.config.len() { ",\n" } else { "\n" });
            }
            s.push_str("  },\n");
        }
        let _ = writeln!(s, "  \"model\": {}", json_escape(&self.model.to_text()));
        s.push_str("}\n");
        s
    }

    /// Parses a checkpoint back from JSON.
    ///
    /// # Errors
    ///
    /// Returns a description of the first structural problem: malformed
    /// JSON, a schema version this build does not understand, missing or
    /// mistyped fields, or an embedded model that fails [`Mlp::from_text`].
    pub fn from_json(text: &str) -> Result<Checkpoint, String> {
        let value = JsonValue::parse(text)?;
        let obj = value.as_object()?;
        let schema = obj.field("ckpt_schema")?.as_u64()?;
        if schema != CHECKPOINT_SCHEMA_VERSION {
            return Err(format!(
                "unsupported checkpoint schema {schema} (this build reads v{CHECKPOINT_SCHEMA_VERSION})"
            ));
        }
        let converged = match obj.field("converged")? {
            JsonValue::Null => None,
            JsonValue::Bool(b) => Some(*b),
            other => return Err(format!("'converged' must be bool or null, got {other:?}")),
        };
        let f64_list = |key: &str| -> Result<Vec<f64>, String> {
            obj.field(key)?
                .as_array()?
                .iter()
                .map(JsonValue::as_f64)
                .collect::<Result<Vec<_>, _>>()
                .map_err(|e| format!("'{key}': {e}"))
        };
        let mut config = Vec::new();
        for (k, v) in obj.field("config")?.as_object()? {
            config.push((k.clone(), v.as_str()?));
        }
        let model_text = obj.field("model")?.as_str()?;
        let model = Mlp::from_text(&model_text).map_err(|e| format!("embedded model: {e}"))?;
        Ok(Checkpoint {
            recipe_hash: obj.field("recipe_hash")?.as_str()?,
            git_describe: obj.field("git_describe")?.as_str()?,
            converged,
            curve: f64_list("curve")?,
            accuracy: f64_list("accuracy")?,
            config,
            model,
        })
    }

    /// Writes the checkpoint to a file, creating parent directories.
    ///
    /// # Errors
    ///
    /// Propagates I/O errors.
    pub fn save(&self, path: impl AsRef<std::path::Path>) -> std::io::Result<()> {
        let path = path.as_ref();
        if let Some(parent) = path.parent() {
            std::fs::create_dir_all(parent)?;
        }
        std::fs::write(path, self.to_json())
    }

    /// Reads a checkpoint from a file.
    ///
    /// # Errors
    ///
    /// Returns an I/O error for unreadable files, or an
    /// `InvalidData`-wrapped message for malformed content.
    pub fn load(path: impl AsRef<std::path::Path>) -> std::io::Result<Checkpoint> {
        let text = std::fs::read_to_string(path)?;
        Checkpoint::from_json(&text)
            .map_err(|e| std::io::Error::new(std::io::ErrorKind::InvalidData, e))
    }
}

/// Escapes a string for JSON.
fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for ch in s.chars() {
        match ch {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

/// Formats finite f64s so each parses back to the same bits (`{:?}` is
/// Rust's shortest round-trip form). Learning curves are always finite;
/// non-finite values would not survive JSON and are a caller bug.
fn json_f64_list(values: &[f64]) -> String {
    debug_assert!(values.iter().all(|v| v.is_finite()), "non-finite curve value");
    values.iter().map(|v| format!("{v:?}")).collect::<Vec<_>>().join(", ")
}

/// A minimal JSON value — just enough for the checkpoint schema. (The
/// build environment has no crates.io access, and this crate sits below
/// the experiment layer's parser, so it carries its own.)
#[derive(Debug, Clone, PartialEq)]
enum JsonValue {
    Null,
    Bool(bool),
    /// Numbers keep their lexeme so integers survive exactly.
    Num(String),
    Str(String),
    Arr(Vec<JsonValue>),
    Obj(Vec<(String, JsonValue)>),
}

impl JsonValue {
    fn parse(text: &str) -> Result<JsonValue, String> {
        let bytes = text.as_bytes();
        let mut pos = 0;
        let v = json_parse_value(bytes, &mut pos)?;
        json_skip_ws(bytes, &mut pos);
        if pos != bytes.len() {
            return Err(format!("trailing garbage at byte {pos}"));
        }
        Ok(v)
    }

    fn as_object(&self) -> Result<&Vec<(String, JsonValue)>, String> {
        match self {
            JsonValue::Obj(m) => Ok(m),
            other => Err(format!("expected object, got {other:?}")),
        }
    }

    fn as_array(&self) -> Result<&Vec<JsonValue>, String> {
        match self {
            JsonValue::Arr(a) => Ok(a),
            other => Err(format!("expected array, got {other:?}")),
        }
    }

    fn as_str(&self) -> Result<String, String> {
        match self {
            JsonValue::Str(s) => Ok(s.clone()),
            other => Err(format!("expected string, got {other:?}")),
        }
    }

    fn as_u64(&self) -> Result<u64, String> {
        match self {
            JsonValue::Num(n) => n.parse().map_err(|_| format!("expected u64, got {n}")),
            other => Err(format!("expected number, got {other:?}")),
        }
    }

    fn as_f64(&self) -> Result<f64, String> {
        match self {
            JsonValue::Num(n) => n.parse().map_err(|_| format!("bad number {n}")),
            other => Err(format!("expected number, got {other:?}")),
        }
    }
}

/// Field lookup on the insertion-ordered object pairs.
trait JsonObjExt {
    fn field(&self, key: &str) -> Result<&JsonValue, String>;
}

impl JsonObjExt for Vec<(String, JsonValue)> {
    fn field(&self, key: &str) -> Result<&JsonValue, String> {
        self.iter()
            .find(|(k, _)| k == key)
            .map(|(_, v)| v)
            .ok_or_else(|| format!("missing '{key}'"))
    }
}

fn json_skip_ws(b: &[u8], pos: &mut usize) {
    while *pos < b.len() && matches!(b[*pos], b' ' | b'\t' | b'\n' | b'\r') {
        *pos += 1;
    }
}

fn json_parse_value(b: &[u8], pos: &mut usize) -> Result<JsonValue, String> {
    json_skip_ws(b, pos);
    match b.get(*pos) {
        None => Err("unexpected end of input".into()),
        Some(b'{') => {
            *pos += 1;
            let mut pairs = Vec::new();
            json_skip_ws(b, pos);
            if b.get(*pos) == Some(&b'}') {
                *pos += 1;
                return Ok(JsonValue::Obj(pairs));
            }
            loop {
                json_skip_ws(b, pos);
                let key = json_parse_string(b, pos)?;
                json_skip_ws(b, pos);
                if b.get(*pos) != Some(&b':') {
                    return Err(format!("expected ':' at byte {pos}", pos = *pos));
                }
                *pos += 1;
                let value = json_parse_value(b, pos)?;
                pairs.push((key, value));
                json_skip_ws(b, pos);
                match b.get(*pos) {
                    Some(b',') => *pos += 1,
                    Some(b'}') => {
                        *pos += 1;
                        return Ok(JsonValue::Obj(pairs));
                    }
                    _ => return Err(format!("expected ',' or '}}' at byte {pos}", pos = *pos)),
                }
            }
        }
        Some(b'[') => {
            *pos += 1;
            let mut items = Vec::new();
            json_skip_ws(b, pos);
            if b.get(*pos) == Some(&b']') {
                *pos += 1;
                return Ok(JsonValue::Arr(items));
            }
            loop {
                items.push(json_parse_value(b, pos)?);
                json_skip_ws(b, pos);
                match b.get(*pos) {
                    Some(b',') => *pos += 1,
                    Some(b']') => {
                        *pos += 1;
                        return Ok(JsonValue::Arr(items));
                    }
                    _ => return Err(format!("expected ',' or ']' at byte {pos}", pos = *pos)),
                }
            }
        }
        Some(b'"') => Ok(JsonValue::Str(json_parse_string(b, pos)?)),
        Some(b't') => json_parse_lit(b, pos, "true", JsonValue::Bool(true)),
        Some(b'f') => json_parse_lit(b, pos, "false", JsonValue::Bool(false)),
        Some(b'n') => json_parse_lit(b, pos, "null", JsonValue::Null),
        Some(_) => {
            let start = *pos;
            while *pos < b.len()
                && matches!(b[*pos], b'0'..=b'9' | b'-' | b'+' | b'.' | b'e' | b'E')
            {
                *pos += 1;
            }
            if start == *pos {
                return Err(format!("unexpected byte at {start}"));
            }
            let lexeme = std::str::from_utf8(&b[start..*pos]).map_err(|e| e.to_string())?;
            lexeme
                .parse::<f64>()
                .map_err(|_| format!("bad number '{lexeme}'"))?;
            Ok(JsonValue::Num(lexeme.to_string()))
        }
    }
}

fn json_parse_lit(
    b: &[u8],
    pos: &mut usize,
    lit: &str,
    value: JsonValue,
) -> Result<JsonValue, String> {
    if b[*pos..].starts_with(lit.as_bytes()) {
        *pos += lit.len();
        Ok(value)
    } else {
        Err(format!("bad literal at byte {pos}", pos = *pos))
    }
}

fn json_parse_string(b: &[u8], pos: &mut usize) -> Result<String, String> {
    if b.get(*pos) != Some(&b'"') {
        return Err(format!("expected string at byte {pos}", pos = *pos));
    }
    *pos += 1;
    let mut out = String::new();
    loop {
        match b.get(*pos) {
            None => return Err("unterminated string".into()),
            Some(b'"') => {
                *pos += 1;
                return Ok(out);
            }
            Some(b'\\') => {
                *pos += 1;
                match b.get(*pos) {
                    Some(b'"') => out.push('"'),
                    Some(b'\\') => out.push('\\'),
                    Some(b'/') => out.push('/'),
                    Some(b'n') => out.push('\n'),
                    Some(b'r') => out.push('\r'),
                    Some(b't') => out.push('\t'),
                    Some(b'b') => out.push('\u{8}'),
                    Some(b'f') => out.push('\u{c}'),
                    Some(b'u') => {
                        let hex = b.get(*pos + 1..*pos + 5).ok_or("truncated \\u escape")?;
                        let code = u32::from_str_radix(
                            std::str::from_utf8(hex).map_err(|e| e.to_string())?,
                            16,
                        )
                        .map_err(|e| e.to_string())?;
                        out.push(char::from_u32(code).ok_or("bad \\u escape")?);
                        *pos += 4;
                    }
                    _ => return Err(format!("bad escape at byte {pos}", pos = *pos)),
                }
                *pos += 1;
            }
            Some(_) => {
                let start = *pos;
                *pos += 1;
                while *pos < b.len() && (b[*pos] & 0xC0) == 0x80 {
                    *pos += 1;
                }
                out.push_str(std::str::from_utf8(&b[start..*pos]).map_err(|e| e.to_string())?);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_preserves_network_exactly() {
        let net = Mlp::paper_agent(12, 7, 5, 99);
        let text = net.to_text();
        let back = Mlp::from_text(&text).unwrap();
        assert_eq!(net, back);
        // Behavioral equality too.
        let x: Vec<f64> = (0..12).map(|i| i as f64 / 12.0).collect();
        assert_eq!(net.forward(&x), back.forward(&x));
    }

    #[test]
    fn roundtrip_through_file() {
        let net = Mlp::new(
            &[3, 4, 2],
            &[Activation::Tanh, Activation::Identity],
            5,
        );
        let dir = std::env::temp_dir().join("nn_mlp_io_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("model.txt");
        net.save(&path).unwrap();
        let back = Mlp::load(&path).unwrap();
        assert_eq!(net, back);
        std::fs::remove_file(path).ok();
    }

    #[test]
    fn header_is_validated() {
        let err = Mlp::from_text("nope\nlayers 1\n").unwrap_err();
        assert_eq!(err.line, 1);
        assert!(err.message.contains("bad header"));
    }

    #[test]
    fn truncated_file_is_rejected() {
        let net = Mlp::paper_agent(4, 3, 2, 1);
        let text = net.to_text();
        let cut: String = text.lines().take(4).collect::<Vec<_>>().join("\n");
        assert!(Mlp::from_text(&cut).is_err());
    }

    #[test]
    fn wrong_row_width_is_rejected() {
        let good = Mlp::paper_agent(2, 2, 1, 1).to_text();
        let bad = good.replacen("w ", "w 1.0 ", 1); // extra weight in row
        let err = Mlp::from_text(&bad).unwrap_err();
        assert!(err.message.contains("expected 2 weights"), "{err}");
    }

    #[test]
    fn unknown_activation_is_rejected() {
        let good = Mlp::paper_agent(2, 2, 1, 1).to_text();
        let bad = good.replace("sigmoid", "softmax");
        let err = Mlp::from_text(&bad).unwrap_err();
        assert!(err.message.contains("unknown activation"));
    }

    #[test]
    fn display_of_parse_error_mentions_line() {
        let e = ParseModelError {
            line: 7,
            message: "boom".into(),
        };
        assert_eq!(e.to_string(), "model parse error at line 7: boom");
    }

    fn sample_checkpoint() -> Checkpoint {
        Checkpoint {
            recipe_hash: "00ff00ff00ff00ff".into(),
            git_describe: "v0-test".into(),
            converged: Some(true),
            curve: vec![10.5, 7.25, 0.1 + 0.2], // deliberately awkward float
            accuracy: vec![0.5, 0.75],
            config: vec![
                ("hidden".into(), "15".into()),
                ("features".into(), "payload_size,local_age".into()),
                ("note \"quoted\"\n".into(), "tab\there".into()),
            ],
            model: Mlp::paper_agent(4, 3, 2, 7),
        }
    }

    #[test]
    fn checkpoint_roundtrips_bit_identically() {
        let ckpt = sample_checkpoint();
        let json = ckpt.to_json();
        let back = Checkpoint::from_json(&json).unwrap();
        assert_eq!(ckpt, back);
        // Serialization is a fixpoint, so equal checkpoints mean equal bytes.
        assert_eq!(json, back.to_json());
        // And the embedded model is bitwise the same network.
        let x = [0.1, 0.2, 0.3, 0.4];
        assert_eq!(ckpt.model.forward(&x), back.model.forward(&x));
    }

    #[test]
    fn checkpoint_roundtrips_through_file() {
        let mut ckpt = sample_checkpoint();
        ckpt.converged = None;
        let dir = std::env::temp_dir().join("nn_mlp_ckpt_test");
        let path = dir.join("nested").join("a.ckpt.json");
        ckpt.save(&path).unwrap();
        let back = Checkpoint::load(&path).unwrap();
        assert_eq!(ckpt, back);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn checkpoint_schema_version_is_enforced() {
        let json = sample_checkpoint().to_json().replace(
            "\"ckpt_schema\": 1,",
            "\"ckpt_schema\": 99,",
        );
        let err = Checkpoint::from_json(&json).unwrap_err();
        assert!(err.contains("unsupported checkpoint schema 99"), "{err}");
    }

    #[test]
    fn checkpoint_missing_field_is_reported() {
        let err = Checkpoint::from_json("{\"ckpt_schema\": 1}").unwrap_err();
        assert!(err.contains("missing 'converged'") || err.contains("missing '"), "{err}");
    }

    #[test]
    fn checkpoint_rejects_malformed_json() {
        assert!(Checkpoint::from_json("{\"ckpt_schema\": 1,").is_err());
        assert!(Checkpoint::from_json("[]").is_err());
        assert!(Checkpoint::from_json("{} trailing").is_err());
    }

    #[test]
    fn checkpoint_rejects_corrupt_embedded_model() {
        let json = sample_checkpoint().to_json().replace("mlp v1", "mlp v9");
        let err = Checkpoint::from_json(&json).unwrap_err();
        assert!(err.contains("embedded model"), "{err}");
    }

    #[test]
    fn config_value_finds_entries() {
        let ckpt = sample_checkpoint();
        assert_eq!(ckpt.config_value("hidden"), Some("15"));
        assert_eq!(ckpt.config_value("absent"), None);
    }
}
