//! Plain-text model persistence.
//!
//! Trained agents need to move between the figure binaries (train once on
//! `bfs`, evaluate everywhere) without pulling a serialization framework
//! into the workspace. The format is a line-oriented text file:
//!
//! ```text
//! mlp v1
//! layers <n>
//! layer <inputs> <outputs> <activation>
//! w <f64> <f64> ...        (one line per output row)
//! b <f64> ...
//! ```
//!
//! Floats are written with `{:e}` round-trip precision.

use std::fmt::Write as _;
use std::str::FromStr;

use crate::activation::Activation;
use crate::layer::DenseLayer;
use crate::network::Mlp;

/// Errors raised while parsing a serialized model.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseModelError {
    /// Line number (1-based) the error was detected at.
    pub line: usize,
    /// Human-readable explanation.
    pub message: String,
}

impl std::fmt::Display for ParseModelError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "model parse error at line {}: {}", self.line, self.message)
    }
}

impl std::error::Error for ParseModelError {}

fn activation_name(a: Activation) -> &'static str {
    match a {
        Activation::Identity => "identity",
        Activation::Sigmoid => "sigmoid",
        Activation::Relu => "relu",
        Activation::Tanh => "tanh",
    }
}

fn activation_from(name: &str, line: usize) -> Result<Activation, ParseModelError> {
    match name {
        "identity" => Ok(Activation::Identity),
        "sigmoid" => Ok(Activation::Sigmoid),
        "relu" => Ok(Activation::Relu),
        "tanh" => Ok(Activation::Tanh),
        other => Err(ParseModelError {
            line,
            message: format!("unknown activation '{other}'"),
        }),
    }
}

impl Mlp {
    /// Serializes the network to the text format.
    pub fn to_text(&self) -> String {
        let mut out = String::from("mlp v1\n");
        let _ = writeln!(out, "layers {}", self.layers().len());
        for layer in self.layers() {
            let _ = writeln!(
                out,
                "layer {} {} {}",
                layer.inputs(),
                layer.outputs(),
                activation_name(layer.activation())
            );
            for o in 0..layer.outputs() {
                out.push('w');
                for i in 0..layer.inputs() {
                    let _ = write!(out, " {:e}", layer.weight(o, i));
                }
                out.push('\n');
            }
            out.push('b');
            for b in layer.biases() {
                let _ = write!(out, " {b:e}");
            }
            out.push('\n');
        }
        out
    }

    /// Parses a network from the text format.
    ///
    /// # Errors
    ///
    /// Returns a [`ParseModelError`] describing the first malformed line.
    pub fn from_text(text: &str) -> Result<Mlp, ParseModelError> {
        let mut lines = text.lines().enumerate().map(|(i, l)| (i + 1, l));
        let mut next = |expect: &str| -> Result<(usize, String), ParseModelError> {
            lines.next().map(|(n, l)| (n, l.to_string())).ok_or_else(|| ParseModelError {
                line: 0,
                message: format!("unexpected end of file, expected {expect}"),
            })
        };

        let (n, header) = next("header")?;
        if header.trim() != "mlp v1" {
            return Err(ParseModelError {
                line: n,
                message: format!("bad header '{header}'"),
            });
        }
        let (n, count_line) = next("layer count")?;
        let num_layers: usize = count_line
            .strip_prefix("layers ")
            .and_then(|v| v.trim().parse().ok())
            .ok_or_else(|| ParseModelError {
                line: n,
                message: "expected 'layers <n>'".into(),
            })?;

        let parse_floats = |line: &str, n: usize, prefix: char| -> Result<Vec<f64>, ParseModelError> {
            let body = line
                .strip_prefix(prefix)
                .ok_or_else(|| ParseModelError {
                    line: n,
                    message: format!("expected '{prefix}' row"),
                })?;
            body.split_whitespace()
                .map(|tok| {
                    f64::from_str(tok).map_err(|_| ParseModelError {
                        line: n,
                        message: format!("bad float '{tok}'"),
                    })
                })
                .collect()
        };

        let mut layers = Vec::with_capacity(num_layers);
        for _ in 0..num_layers {
            let (n, meta) = next("layer header")?;
            let parts: Vec<&str> = meta.split_whitespace().collect();
            if parts.len() != 4 || parts[0] != "layer" {
                return Err(ParseModelError {
                    line: n,
                    message: "expected 'layer <in> <out> <act>'".into(),
                });
            }
            let inputs: usize = parts[1].parse().map_err(|_| ParseModelError {
                line: n,
                message: "bad input width".into(),
            })?;
            let outputs: usize = parts[2].parse().map_err(|_| ParseModelError {
                line: n,
                message: "bad output width".into(),
            })?;
            if inputs == 0 || outputs == 0 {
                return Err(ParseModelError {
                    line: n,
                    message: "layer dimensions must be positive".into(),
                });
            }
            let activation = activation_from(parts[3], n)?;
            let mut weights = Vec::with_capacity(inputs * outputs);
            for _ in 0..outputs {
                let (wn, wline) = next("weight row")?;
                let row = parse_floats(&wline, wn, 'w')?;
                if row.len() != inputs {
                    return Err(ParseModelError {
                        line: wn,
                        message: format!("expected {inputs} weights, found {}", row.len()),
                    });
                }
                weights.extend(row);
            }
            let (bn, bline) = next("bias row")?;
            let biases = parse_floats(&bline, bn, 'b')?;
            if biases.len() != outputs {
                return Err(ParseModelError {
                    line: bn,
                    message: format!("expected {outputs} biases, found {}", biases.len()),
                });
            }
            layers.push(DenseLayer::from_parts(inputs, outputs, weights, biases, activation));
        }
        if layers.is_empty() {
            return Err(ParseModelError {
                line: 0,
                message: "model has no layers".into(),
            });
        }
        for pair in layers.windows(2) {
            if pair[0].outputs() != pair[1].inputs() {
                return Err(ParseModelError {
                    line: 0,
                    message: "layer widths do not chain".into(),
                });
            }
        }
        Ok(Mlp::from_layers(layers))
    }

    /// Writes the network to a file.
    ///
    /// # Errors
    ///
    /// Propagates I/O errors.
    pub fn save(&self, path: impl AsRef<std::path::Path>) -> std::io::Result<()> {
        std::fs::write(path, self.to_text())
    }

    /// Reads a network from a file.
    ///
    /// # Errors
    ///
    /// Returns an I/O error for unreadable files, or an
    /// `InvalidData`-wrapped [`ParseModelError`] for malformed content.
    pub fn load(path: impl AsRef<std::path::Path>) -> std::io::Result<Mlp> {
        let text = std::fs::read_to_string(path)?;
        Mlp::from_text(&text)
            .map_err(|e| std::io::Error::new(std::io::ErrorKind::InvalidData, e))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_preserves_network_exactly() {
        let net = Mlp::paper_agent(12, 7, 5, 99);
        let text = net.to_text();
        let back = Mlp::from_text(&text).unwrap();
        assert_eq!(net, back);
        // Behavioral equality too.
        let x: Vec<f64> = (0..12).map(|i| i as f64 / 12.0).collect();
        assert_eq!(net.forward(&x), back.forward(&x));
    }

    #[test]
    fn roundtrip_through_file() {
        let net = Mlp::new(
            &[3, 4, 2],
            &[Activation::Tanh, Activation::Identity],
            5,
        );
        let dir = std::env::temp_dir().join("nn_mlp_io_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("model.txt");
        net.save(&path).unwrap();
        let back = Mlp::load(&path).unwrap();
        assert_eq!(net, back);
        std::fs::remove_file(path).ok();
    }

    #[test]
    fn header_is_validated() {
        let err = Mlp::from_text("nope\nlayers 1\n").unwrap_err();
        assert_eq!(err.line, 1);
        assert!(err.message.contains("bad header"));
    }

    #[test]
    fn truncated_file_is_rejected() {
        let net = Mlp::paper_agent(4, 3, 2, 1);
        let text = net.to_text();
        let cut: String = text.lines().take(4).collect::<Vec<_>>().join("\n");
        assert!(Mlp::from_text(&cut).is_err());
    }

    #[test]
    fn wrong_row_width_is_rejected() {
        let good = Mlp::paper_agent(2, 2, 1, 1).to_text();
        let bad = good.replacen("w ", "w 1.0 ", 1); // extra weight in row
        let err = Mlp::from_text(&bad).unwrap_err();
        assert!(err.message.contains("expected 2 weights"), "{err}");
    }

    #[test]
    fn unknown_activation_is_rejected() {
        let good = Mlp::paper_agent(2, 2, 1, 1).to_text();
        let bad = good.replace("sigmoid", "softmax");
        let err = Mlp::from_text(&bad).unwrap_err();
        assert!(err.message.contains("unknown activation"));
    }

    #[test]
    fn display_of_parse_error_mentions_line() {
        let e = ParseModelError {
            line: 7,
            message: "boom".into(),
        };
        assert_eq!(e.to_string(), "model parse error at line 7: boom");
    }
}
