//! # nn-mlp — a minimal dense-MLP library
//!
//! The function approximator behind the reproduction's deep-Q-learning
//! agent. Written from scratch (no external ML dependencies) because the
//! paper's networks are tiny — the largest is a 504→42→42 perceptron — and
//! because the study needs full weight introspection for its
//! interpretability analysis (Figs. 4 and 7 heatmaps).
//!
//! * [`Mlp`] — feed-forward networks with per-sample SGD and gradient
//!   clipping ([`Mlp::paper_agent`] builds the paper's sigmoid/ReLU shape).
//! * [`DenseLayer`] — exposes raw weights for heatmap analysis.
//! * [`QuantizedMlp`] — INT8 post-training quantization, the inference
//!   datapath costed in the paper's Table 3.
//! * [`Checkpoint`] — versioned trained-model checkpoints (schema v1:
//!   weights + training config + recipe hash + learning curve) backing the
//!   content-addressed artifact store in `bench`.

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

mod activation;
mod io;
mod layer;
mod network;
mod quantize;

pub use activation::Activation;
pub use io::{Checkpoint, ParseModelError, CHECKPOINT_SCHEMA_VERSION};
pub use layer::DenseLayer;
pub use network::{Mlp, Scratch};
pub use quantize::{QuantScratch, QuantizedLayer, QuantizedMlp};
