//! A dense (fully connected) layer.

use rand::Rng;

use crate::activation::Activation;

/// A dense layer: `y = act(W x + b)` with `W` stored row-major
/// (`outputs × inputs`).
#[derive(Debug, Clone, PartialEq)]
pub struct DenseLayer {
    inputs: usize,
    outputs: usize,
    /// Row-major weights, `weights[o * inputs + i]`.
    weights: Vec<f64>,
    biases: Vec<f64>,
    activation: Activation,
}

impl DenseLayer {
    /// Creates a layer with Xavier/Glorot-uniform initial weights drawn
    /// from the supplied RNG and zero biases.
    ///
    /// # Panics
    ///
    /// Panics if `inputs` or `outputs` is zero.
    pub fn xavier<R: Rng>(inputs: usize, outputs: usize, activation: Activation, rng: &mut R) -> Self {
        assert!(inputs > 0 && outputs > 0, "layer dimensions must be positive");
        let limit = (6.0 / (inputs + outputs) as f64).sqrt();
        let weights = (0..inputs * outputs)
            .map(|_| rng.gen_range(-limit..limit))
            .collect();
        DenseLayer {
            inputs,
            outputs,
            weights,
            biases: vec![0.0; outputs],
            activation,
        }
    }

    /// Creates a layer from explicit parameters (used by tests and model
    /// loading).
    ///
    /// # Panics
    ///
    /// Panics if the parameter shapes are inconsistent.
    pub fn from_parts(
        inputs: usize,
        outputs: usize,
        weights: Vec<f64>,
        biases: Vec<f64>,
        activation: Activation,
    ) -> Self {
        assert_eq!(weights.len(), inputs * outputs, "weight shape mismatch");
        assert_eq!(biases.len(), outputs, "bias shape mismatch");
        DenseLayer {
            inputs,
            outputs,
            weights,
            biases,
            activation,
        }
    }

    /// Input width.
    pub fn inputs(&self) -> usize {
        self.inputs
    }

    /// Output width.
    pub fn outputs(&self) -> usize {
        self.outputs
    }

    /// The activation function.
    pub fn activation(&self) -> Activation {
        self.activation
    }

    /// Row-major weights (`outputs × inputs`).
    pub fn weights(&self) -> &[f64] {
        &self.weights
    }

    /// Biases.
    pub fn biases(&self) -> &[f64] {
        &self.biases
    }

    /// The weight connecting input `i` to output `o`.
    pub fn weight(&self, o: usize, i: usize) -> f64 {
        self.weights[o * self.inputs + i]
    }

    /// Forward pass.
    ///
    /// # Panics
    ///
    /// Panics if `input.len() != self.inputs()`.
    pub fn forward(&self, input: &[f64]) -> Vec<f64> {
        assert_eq!(input.len(), self.inputs, "input width mismatch");
        let mut out = Vec::with_capacity(self.outputs);
        for o in 0..self.outputs {
            let row = &self.weights[o * self.inputs..(o + 1) * self.inputs];
            let mut acc = self.biases[o];
            for (w, x) in row.iter().zip(input) {
                acc += w * x;
            }
            out.push(self.activation.apply(acc));
        }
        out
    }

    /// Forward pass into a caller-owned buffer: `out` is cleared and filled
    /// with the layer's activations. Once `out` has capacity for
    /// `self.outputs()` values this never allocates, which keeps per-decision
    /// inference off the heap (see [`crate::Mlp::forward_into`]).
    ///
    /// # Panics
    ///
    /// Panics if `input.len() != self.inputs()`.
    pub fn forward_into(&self, input: &[f64], out: &mut Vec<f64>) {
        assert_eq!(input.len(), self.inputs, "input width mismatch");
        out.clear();
        out.reserve(self.outputs);
        for o in 0..self.outputs {
            let row = &self.weights[o * self.inputs..(o + 1) * self.inputs];
            let mut acc = self.biases[o];
            for (w, x) in row.iter().zip(input) {
                acc += w * x;
            }
            out.push(self.activation.apply(acc));
        }
    }

    /// Batched forward pass: `inputs` holds `rows` samples back to back
    /// (row-major, `rows * self.inputs()` values) and `out` is filled with
    /// the activations in the same layout (`rows * self.outputs()`).
    ///
    /// The loop runs output-neuron-major so one weight row is streamed
    /// against every sample while it is hot in cache — the point of
    /// batching — but each output element accumulates `bias + Σ wᵢ·xᵢ` in
    /// exactly the order [`DenseLayer::forward_into`] uses, so every row of
    /// the result is bit-identical to a scalar pass over that sample.
    ///
    /// # Panics
    ///
    /// Panics if `inputs.len() != rows * self.inputs()`.
    pub fn forward_batch_into(&self, inputs: &[f64], rows: usize, out: &mut Vec<f64>) {
        assert_eq!(
            inputs.len(),
            rows * self.inputs,
            "batch input width mismatch"
        );
        out.clear();
        out.resize(rows * self.outputs, 0.0);
        for o in 0..self.outputs {
            let wrow = &self.weights[o * self.inputs..(o + 1) * self.inputs];
            let bias = self.biases[o];
            for r in 0..rows {
                let x = &inputs[r * self.inputs..(r + 1) * self.inputs];
                let mut acc = bias;
                for (w, v) in wrow.iter().zip(x) {
                    acc += w * v;
                }
                out[r * self.outputs + o] = self.activation.apply(acc);
            }
        }
    }

    /// Backward pass for one sample.
    ///
    /// `output` must be the value returned by [`DenseLayer::forward`] for
    /// `input`, and `grad_output` the loss gradient w.r.t. that output.
    /// Applies an SGD update scaled by `lr` (with per-element gradient
    /// clipping at `clip`) and returns the gradient w.r.t. the input.
    pub fn backward(
        &mut self,
        input: &[f64],
        output: &[f64],
        grad_output: &[f64],
        lr: f64,
        clip: f64,
    ) -> Vec<f64> {
        assert_eq!(input.len(), self.inputs);
        assert_eq!(output.len(), self.outputs);
        assert_eq!(grad_output.len(), self.outputs);
        let mut grad_input = vec![0.0; self.inputs];
        for o in 0..self.outputs {
            let delta = grad_output[o] * self.activation.derivative_from_output(output[o]);
            if delta == 0.0 {
                continue;
            }
            let row = &mut self.weights[o * self.inputs..(o + 1) * self.inputs];
            for i in 0..self.inputs {
                grad_input[i] += delta * row[i];
                let g = (delta * input[i]).clamp(-clip, clip);
                row[i] -= lr * g;
            }
            self.biases[o] -= lr * delta.clamp(-clip, clip);
        }
        grad_input
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn forward_computes_affine_map() {
        let layer = DenseLayer::from_parts(
            2,
            2,
            vec![1.0, 2.0, 3.0, 4.0],
            vec![0.5, -0.5],
            Activation::Identity,
        );
        let y = layer.forward(&[1.0, 1.0]);
        assert_eq!(y, vec![3.5, 6.5]);
    }

    #[test]
    fn xavier_weights_lie_within_limit() {
        let mut rng = StdRng::seed_from_u64(1);
        let layer = DenseLayer::xavier(10, 5, Activation::Relu, &mut rng);
        let limit = (6.0_f64 / 15.0).sqrt();
        assert!(layer.weights().iter().all(|w| w.abs() <= limit));
        assert!(layer.biases().iter().all(|&b| b == 0.0));
    }

    #[test]
    fn backward_reduces_loss_on_simple_regression() {
        let mut rng = StdRng::seed_from_u64(7);
        let mut layer = DenseLayer::xavier(1, 1, Activation::Identity, &mut rng);
        // Learn y = 3x.
        let mut last_loss = f64::INFINITY;
        for _ in 0..200 {
            let x = [0.5];
            let y = layer.forward(&x);
            let err = y[0] - 1.5;
            layer.backward(&x, &y, &[2.0 * err], 0.1, 10.0);
            let loss = err * err;
            assert!(loss <= last_loss + 1e-9, "loss must not increase");
            last_loss = loss;
        }
        assert!(last_loss < 1e-6);
    }

    #[test]
    fn gradient_clipping_bounds_updates() {
        let mut layer =
            DenseLayer::from_parts(1, 1, vec![0.0], vec![0.0], Activation::Identity);
        let x = [1000.0];
        let y = layer.forward(&x);
        layer.backward(&x, &y, &[1000.0], 1.0, 1.0);
        // Without clipping the weight would move by 1e6; with clip=1 it
        // moves by exactly lr*clip = 1.
        assert!((layer.weight(0, 0) + 1.0).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "input width mismatch")]
    fn wrong_input_width_panics() {
        let layer = DenseLayer::from_parts(2, 1, vec![1.0, 1.0], vec![0.0], Activation::Identity);
        layer.forward(&[1.0]);
    }

    #[test]
    #[should_panic(expected = "weight shape mismatch")]
    fn bad_weight_shape_panics() {
        DenseLayer::from_parts(2, 2, vec![1.0], vec![0.0, 0.0], Activation::Identity);
    }
}
