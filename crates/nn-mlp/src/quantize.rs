//! INT8 post-training quantization.
//!
//! The paper's Table 3 synthesizes the inference network "quantizing to
//! INT8". This module provides the corresponding software model: symmetric
//! per-layer weight quantization with i32 accumulators, so the hardware-cost
//! crate can count 8-bit MACs and tests can bound the quantization error.

use crate::activation::Activation;
use crate::network::Mlp;

/// One quantized dense layer: `int8` weights with a per-layer scale,
/// biases kept in `f64` (hardware would fold them into the accumulator).
#[derive(Debug, Clone, PartialEq)]
pub struct QuantizedLayer {
    inputs: usize,
    outputs: usize,
    weights_q: Vec<i8>,
    scale: f64,
    biases: Vec<f64>,
    activation: Activation,
}

impl QuantizedLayer {
    /// Input width.
    pub fn inputs(&self) -> usize {
        self.inputs
    }

    /// Output width.
    pub fn outputs(&self) -> usize {
        self.outputs
    }

    /// Per-layer dequantization scale.
    pub fn scale(&self) -> f64 {
        self.scale
    }

    /// The quantized weights, row-major.
    pub fn weights_q(&self) -> &[i8] {
        &self.weights_q
    }

    /// Multiply-accumulate count of one inference through this layer.
    pub fn macs(&self) -> usize {
        self.inputs * self.outputs
    }

    /// One layer of the fixed-point datapath on caller-owned buffers:
    /// quantize `input` against its own maximum into `xq`, accumulate in
    /// `i32`, dequantize and activate into `out`. Numerically identical to
    /// the corresponding layer step of [`QuantizedMlp::forward`].
    fn forward_into(&self, input: &[f64], xq: &mut Vec<i8>, out: &mut Vec<f64>) {
        assert_eq!(input.len(), self.inputs, "input width mismatch");
        let in_max = input.iter().fold(0.0_f64, |m, v| m.max(v.abs())).max(1e-12);
        let in_scale = in_max / 127.0;
        xq.clear();
        xq.extend(
            input
                .iter()
                .map(|v| (v / in_scale).round().clamp(-127.0, 127.0) as i8),
        );
        out.clear();
        out.reserve(self.outputs);
        for o in 0..self.outputs {
            let row = &self.weights_q[o * self.inputs..(o + 1) * self.inputs];
            let acc: i32 = row
                .iter()
                .zip(xq.iter())
                .map(|(&w, &v)| w as i32 * v as i32)
                .sum();
            let deq = acc as f64 * self.scale * in_scale + self.biases[o];
            out.push(self.activation.apply(deq));
        }
    }
}

/// An INT8-quantized MLP.
#[derive(Debug, Clone, PartialEq)]
pub struct QuantizedMlp {
    layers: Vec<QuantizedLayer>,
}

/// Reusable buffers for [`QuantizedMlp::forward_into`] and
/// [`QuantizedMlp::forward_batch_into`]: the per-layer INT8 input vector,
/// the f64 activation ping-pong, and the batched-output accumulator. Sized
/// lazily on first use and reused (allocation-free) thereafter — keep one
/// per inference site, as with [`crate::Scratch`].
#[derive(Debug, Clone, Default)]
pub struct QuantScratch {
    xq: Vec<i8>,
    ping: Vec<f64>,
    pong: Vec<f64>,
    batch: Vec<f64>,
}

impl QuantScratch {
    /// An empty scratch; buffers are sized lazily on first use.
    pub fn new() -> Self {
        QuantScratch::default()
    }
}

impl QuantizedMlp {
    /// Quantizes a trained float network with symmetric per-layer scaling.
    pub fn from_mlp(net: &Mlp) -> Self {
        let layers = net
            .layers()
            .iter()
            .map(|l| {
                let max = l
                    .weights()
                    .iter()
                    .fold(0.0_f64, |m, w| m.max(w.abs()))
                    .max(1e-12);
                let scale = max / 127.0;
                let weights_q = l
                    .weights()
                    .iter()
                    .map(|w| (w / scale).round().clamp(-127.0, 127.0) as i8)
                    .collect();
                QuantizedLayer {
                    inputs: l.inputs(),
                    outputs: l.outputs(),
                    weights_q,
                    scale,
                    biases: l.biases().to_vec(),
                    activation: l.activation(),
                }
            })
            .collect();
        QuantizedMlp { layers }
    }

    /// The quantized layers.
    pub fn layers(&self) -> &[QuantizedLayer] {
        &self.layers
    }

    /// Total multiply-accumulate operations per inference.
    pub fn total_macs(&self) -> usize {
        self.layers.iter().map(|l| l.macs()).sum()
    }

    /// Inference. Inputs are quantized to INT8 against their own maximum
    /// (inputs in this system are pre-normalized to `[0, 1]`), products
    /// accumulate in `i32`, and activations run on the dequantized value —
    /// the standard fixed-point datapath of an INT8 inference engine.
    pub fn forward(&self, input: &[f64]) -> Vec<f64> {
        let mut x = input.to_vec();
        for layer in &self.layers {
            assert_eq!(x.len(), layer.inputs, "input width mismatch");
            let in_max = x.iter().fold(0.0_f64, |m, v| m.max(v.abs())).max(1e-12);
            let in_scale = in_max / 127.0;
            let xq: Vec<i8> = x
                .iter()
                .map(|v| (v / in_scale).round().clamp(-127.0, 127.0) as i8)
                .collect();
            let mut out = Vec::with_capacity(layer.outputs);
            for o in 0..layer.outputs {
                let row = &layer.weights_q[o * layer.inputs..(o + 1) * layer.inputs];
                let acc: i32 = row
                    .iter()
                    .zip(&xq)
                    .map(|(&w, &v)| w as i32 * v as i32)
                    .sum();
                let deq = acc as f64 * layer.scale * in_scale + layer.biases[o];
                out.push(layer.activation.apply(deq));
            }
            x = out;
        }
        x
    }

    /// Allocation-free [`QuantizedMlp::forward`]: the fixed-point datapath
    /// on caller-owned buffers, returning a slice borrowing `scratch`.
    /// Numerically identical to `forward` — same quantization, same `i32`
    /// accumulation order, same dequantize-then-activate step.
    pub fn forward_into<'s>(&self, input: &[f64], scratch: &'s mut QuantScratch) -> &'s [f64] {
        let QuantScratch { xq, ping, pong, .. } = scratch;
        Self::row_into(&self.layers, input, xq, ping, pong)
    }

    /// Batched [`QuantizedMlp::forward_into`]: `inputs` holds `rows`
    /// samples back to back and the returned slice holds the outputs in the
    /// same row-major layout. Each input row is quantized against **its
    /// own** maximum — exactly as the scalar path quantizes it — so every
    /// row of the result is bit-identical to a scalar
    /// [`QuantizedMlp::forward_into`] call on that row.
    ///
    /// # Panics
    ///
    /// Panics if `inputs.len() != rows * input width`.
    pub fn forward_batch_into<'s>(
        &self,
        inputs: &[f64],
        rows: usize,
        scratch: &'s mut QuantScratch,
    ) -> &'s [f64] {
        let iw = self
            .layers
            .first()
            .expect("QuantizedMlp has at least one layer")
            .inputs;
        assert_eq!(inputs.len(), rows * iw, "batch input width mismatch");
        let ow = self.layers.last().unwrap().outputs;
        let QuantScratch { xq, ping, pong, batch } = scratch;
        batch.clear();
        batch.reserve(rows * ow);
        for r in 0..rows {
            let y = Self::row_into(
                &self.layers,
                &inputs[r * iw..(r + 1) * iw],
                xq,
                &mut *ping,
                &mut *pong,
            );
            batch.extend_from_slice(y);
        }
        batch
    }

    /// One sample through every layer on the given buffers; the returned
    /// slice borrows whichever ping-pong buffer holds the output layer.
    fn row_into<'a>(
        layers: &[QuantizedLayer],
        input: &[f64],
        xq: &mut Vec<i8>,
        ping: &'a mut Vec<f64>,
        pong: &'a mut Vec<f64>,
    ) -> &'a [f64] {
        let mut cur: &mut Vec<f64> = ping;
        let mut next: &mut Vec<f64> = pong;
        let (first, rest) = layers
            .split_first()
            .expect("QuantizedMlp has at least one layer");
        first.forward_into(input, xq, cur);
        for layer in rest {
            layer.forward_into(cur, xq, next);
            std::mem::swap(&mut cur, &mut next);
        }
        cur
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quantized_outputs_track_float_outputs() {
        let net = Mlp::paper_agent(60, 15, 15, 11);
        let q = QuantizedMlp::from_mlp(&net);
        let input: Vec<f64> = (0..60).map(|i| i as f64 / 60.0).collect();
        let yf = net.forward(&input);
        let yq = q.forward(&input);
        for (a, b) in yf.iter().zip(&yq) {
            assert!((a - b).abs() < 0.05, "float {a} vs int8 {b}");
        }
    }

    #[test]
    fn forward_into_is_bitwise_identical_to_forward() {
        let net = Mlp::paper_agent(60, 15, 15, 9);
        let q = QuantizedMlp::from_mlp(&net);
        let mut scratch = QuantScratch::new();
        for seed in 0..4_u64 {
            let input: Vec<f64> = (0..60)
                .map(|i| ((i as u64 * 31 + seed * 7919) % 997) as f64 / 997.0)
                .collect();
            let alloc = q.forward(&input);
            let free = q.forward_into(&input, &mut scratch);
            for (a, b) in alloc.iter().zip(free) {
                assert_eq!(a.to_bits(), b.to_bits(), "{a} != {b}");
            }
        }
    }

    #[test]
    fn batched_rows_are_bitwise_identical_to_scalar() {
        let net = Mlp::paper_agent(60, 15, 15, 11);
        let q = QuantizedMlp::from_mlp(&net);
        let rows = 4;
        let inputs: Vec<f64> = (0..rows * 60)
            .map(|i| ((i * 2654435761_usize) % 1000) as f64 / 1000.0)
            .collect();
        let mut scratch = QuantScratch::new();
        let batched = q.forward_batch_into(&inputs, rows, &mut scratch).to_vec();
        assert_eq!(batched.len(), rows * 15);
        for r in 0..rows {
            let scalar = q.forward(&inputs[r * 60..(r + 1) * 60]);
            for (o, (&b, &s)) in batched[r * 15..(r + 1) * 15].iter().zip(&scalar).enumerate() {
                assert_eq!(b.to_bits(), s.to_bits(), "row {r} output {o}: {b} != {s}");
            }
        }
    }

    #[test]
    fn mac_count_matches_architecture() {
        let net = Mlp::paper_agent(504, 42, 42, 0);
        let q = QuantizedMlp::from_mlp(&net);
        assert_eq!(q.total_macs(), 504 * 42 + 42 * 42);
    }

    #[test]
    fn weights_fit_in_int8() {
        let net = Mlp::paper_agent(20, 10, 5, 3);
        let q = QuantizedMlp::from_mlp(&net);
        for layer in q.layers() {
            assert!(layer.weights_q().iter().all(|&w| w >= -127));
            assert!(layer.scale() > 0.0);
        }
    }
}
