//! INT8 post-training quantization.
//!
//! The paper's Table 3 synthesizes the inference network "quantizing to
//! INT8". This module provides the corresponding software model: symmetric
//! per-layer weight quantization with i32 accumulators, so the hardware-cost
//! crate can count 8-bit MACs and tests can bound the quantization error.

use crate::activation::Activation;
use crate::network::Mlp;

/// One quantized dense layer: `int8` weights with a per-layer scale,
/// biases kept in `f64` (hardware would fold them into the accumulator).
#[derive(Debug, Clone, PartialEq)]
pub struct QuantizedLayer {
    inputs: usize,
    outputs: usize,
    weights_q: Vec<i8>,
    scale: f64,
    biases: Vec<f64>,
    activation: Activation,
}

impl QuantizedLayer {
    /// Input width.
    pub fn inputs(&self) -> usize {
        self.inputs
    }

    /// Output width.
    pub fn outputs(&self) -> usize {
        self.outputs
    }

    /// Per-layer dequantization scale.
    pub fn scale(&self) -> f64 {
        self.scale
    }

    /// The quantized weights, row-major.
    pub fn weights_q(&self) -> &[i8] {
        &self.weights_q
    }

    /// Multiply-accumulate count of one inference through this layer.
    pub fn macs(&self) -> usize {
        self.inputs * self.outputs
    }
}

/// An INT8-quantized MLP.
#[derive(Debug, Clone, PartialEq)]
pub struct QuantizedMlp {
    layers: Vec<QuantizedLayer>,
}

impl QuantizedMlp {
    /// Quantizes a trained float network with symmetric per-layer scaling.
    pub fn from_mlp(net: &Mlp) -> Self {
        let layers = net
            .layers()
            .iter()
            .map(|l| {
                let max = l
                    .weights()
                    .iter()
                    .fold(0.0_f64, |m, w| m.max(w.abs()))
                    .max(1e-12);
                let scale = max / 127.0;
                let weights_q = l
                    .weights()
                    .iter()
                    .map(|w| (w / scale).round().clamp(-127.0, 127.0) as i8)
                    .collect();
                QuantizedLayer {
                    inputs: l.inputs(),
                    outputs: l.outputs(),
                    weights_q,
                    scale,
                    biases: l.biases().to_vec(),
                    activation: l.activation(),
                }
            })
            .collect();
        QuantizedMlp { layers }
    }

    /// The quantized layers.
    pub fn layers(&self) -> &[QuantizedLayer] {
        &self.layers
    }

    /// Total multiply-accumulate operations per inference.
    pub fn total_macs(&self) -> usize {
        self.layers.iter().map(|l| l.macs()).sum()
    }

    /// Inference. Inputs are quantized to INT8 against their own maximum
    /// (inputs in this system are pre-normalized to `[0, 1]`), products
    /// accumulate in `i32`, and activations run on the dequantized value —
    /// the standard fixed-point datapath of an INT8 inference engine.
    pub fn forward(&self, input: &[f64]) -> Vec<f64> {
        let mut x = input.to_vec();
        for layer in &self.layers {
            assert_eq!(x.len(), layer.inputs, "input width mismatch");
            let in_max = x.iter().fold(0.0_f64, |m, v| m.max(v.abs())).max(1e-12);
            let in_scale = in_max / 127.0;
            let xq: Vec<i8> = x
                .iter()
                .map(|v| (v / in_scale).round().clamp(-127.0, 127.0) as i8)
                .collect();
            let mut out = Vec::with_capacity(layer.outputs);
            for o in 0..layer.outputs {
                let row = &layer.weights_q[o * layer.inputs..(o + 1) * layer.inputs];
                let acc: i32 = row
                    .iter()
                    .zip(&xq)
                    .map(|(&w, &v)| w as i32 * v as i32)
                    .sum();
                let deq = acc as f64 * layer.scale * in_scale + layer.biases[o];
                out.push(layer.activation.apply(deq));
            }
            x = out;
        }
        x
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quantized_outputs_track_float_outputs() {
        let net = Mlp::paper_agent(60, 15, 15, 11);
        let q = QuantizedMlp::from_mlp(&net);
        let input: Vec<f64> = (0..60).map(|i| i as f64 / 60.0).collect();
        let yf = net.forward(&input);
        let yq = q.forward(&input);
        for (a, b) in yf.iter().zip(&yq) {
            assert!((a - b).abs() < 0.05, "float {a} vs int8 {b}");
        }
    }

    #[test]
    fn mac_count_matches_architecture() {
        let net = Mlp::paper_agent(504, 42, 42, 0);
        let q = QuantizedMlp::from_mlp(&net);
        assert_eq!(q.total_macs(), 504 * 42 + 42 * 42);
    }

    #[test]
    fn weights_fit_in_int8() {
        let net = Mlp::paper_agent(20, 10, 5, 3);
        let q = QuantizedMlp::from_mlp(&net);
        for layer in q.layers() {
            assert!(layer.weights_q().iter().all(|&w| w >= -127));
            assert!(layer.scale() > 0.0);
        }
    }
}
