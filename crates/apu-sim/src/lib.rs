//! # apu-sim — the heterogeneous CPU+GPU chip model
//!
//! The §4 evaluation platform of *"Experiences with ML-Driven Design: A NoC
//! Case Study"* (HPCA 2020), rebuilt on the `noc-sim` substrate:
//!
//! * [`ApuTopology`] — the Fig. 6b chip: an 8×8 mesh carrying 64 compute
//!   units, 16 directories, 16 L1I caches, GPU L2 banks, and a CPU core +
//!   LLC per quadrant, with uniform 6-port routers.
//! * [`Vnet`] — the seven coherence message classes (§4.1).
//! * [`ApuEngine`] — a closed-loop protocol engine generating dependent
//!   request/response/coherence traffic with bounded per-core windows, so
//!   that arbitration quality shows up as program execution time (§4.2).
//! * [`WorkloadSpec`] — SynFull-substitute statistical program models
//!   (phase machines with Markov flow).
//! * [`run_apu`] — the four-copies-in-four-quadrants experiment harness
//!   behind Figs. 9–11.

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

mod engine;
mod kinds;
mod run;
mod topology;
mod workload;

pub use engine::{ApuEngine, EngineConfig, PhaseVisit, ProgramStatus};
pub use kinds::{flits, ApuNodeKind, Vnet};
pub use run::{
    make_apu_sim, run_apu, run_apu_checked, run_apu_with_faults, ApuConformance, ApuRunResult,
};
pub use topology::{quadrant_of, ApuTopology, APU_MESH, NUM_QUADRANTS};
pub use workload::{PhaseFlow, PhaseSpec, WorkloadSpec};
