//! Node kinds and virtual-network assignments of the APU system.

use noc_sim::{DestType, MsgType};

/// The component attached to a router local port (paper Fig. 6).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ApuNodeKind {
    /// GPU compute unit with its private L1 data cache.
    Cu,
    /// GPU L1 instruction cache (shared by four CUs).
    GpuL1i,
    /// GPU L2 cache bank (quadrant-private, address-interleaved).
    GpuL2,
    /// Coherence directory + memory controller.
    Dir,
    /// CPU core with private L1/L2.
    CpuCore,
    /// CPU last-level cache.
    CpuLlc,
}

impl ApuNodeKind {
    /// The destination class advertised in packet headers.
    pub fn dest_type(self) -> DestType {
        match self {
            ApuNodeKind::Cu | ApuNodeKind::CpuCore => DestType::Core,
            ApuNodeKind::GpuL1i | ApuNodeKind::GpuL2 | ApuNodeKind::CpuLlc => DestType::Cache,
            ApuNodeKind::Dir => DestType::Memory,
        }
    }

    /// Short label used in reports.
    pub fn label(self) -> &'static str {
        match self {
            ApuNodeKind::Cu => "CU",
            ApuNodeKind::GpuL1i => "L1I",
            ApuNodeKind::GpuL2 => "GPU-L2",
            ApuNodeKind::Dir => "Dir",
            ApuNodeKind::CpuCore => "CPU",
            ApuNodeKind::CpuLlc => "LLC",
        }
    }
}

/// The seven virtual networks (message classes) of the coherence protocol
/// (paper §4.1: "This system requires seven network classes for coherence").
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Vnet {
    /// GPU requests: CU → L2 / L1I.
    GpuReq,
    /// CPU requests: CPU → LLC.
    CpuReq,
    /// Cache-to-directory memory requests: L2/LLC → Dir.
    MemReq,
    /// Cache-to-requester data responses (5 flits).
    DataResp,
    /// Coherence actions: probes and kernel-launch invalidations.
    Coherence,
    /// Probe / invalidation responses.
    ProbeResp,
    /// Directory-to-cache memory responses (5 flits).
    MemResp,
}

impl Vnet {
    /// All vnets in index order.
    pub const ALL: [Vnet; 7] = [
        Vnet::GpuReq,
        Vnet::CpuReq,
        Vnet::MemReq,
        Vnet::DataResp,
        Vnet::Coherence,
        Vnet::ProbeResp,
        Vnet::MemResp,
    ];

    /// Virtual-network index used by the simulator.
    pub fn index(self) -> usize {
        match self {
            Vnet::GpuReq => 0,
            Vnet::CpuReq => 1,
            Vnet::MemReq => 2,
            Vnet::DataResp => 3,
            Vnet::Coherence => 4,
            Vnet::ProbeResp => 5,
            Vnet::MemResp => 6,
        }
    }

    /// The coarse message type carried by packets on this vnet.
    pub fn msg_type(self) -> MsgType {
        match self {
            Vnet::GpuReq | Vnet::CpuReq | Vnet::MemReq => MsgType::Request,
            Vnet::DataResp | Vnet::MemResp => MsgType::Response,
            Vnet::Coherence | Vnet::ProbeResp => MsgType::Coherence,
        }
    }
}

/// Flit sizes (paper §4.1: requests and coherence 1 flit, data 5 flits —
/// 1 header + 4 data).
pub mod flits {
    /// Control messages (requests, probes, acks).
    pub const CONTROL: u32 = 1;
    /// Data-bearing messages (responses, write-through data).
    pub const DATA: u32 = 5;
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn seven_distinct_vnets() {
        let mut idx: Vec<usize> = Vnet::ALL.iter().map(|v| v.index()).collect();
        idx.sort_unstable();
        assert_eq!(idx, vec![0, 1, 2, 3, 4, 5, 6]);
    }

    #[test]
    fn vnet_message_types_partition_classes() {
        assert_eq!(Vnet::GpuReq.msg_type(), MsgType::Request);
        assert_eq!(Vnet::DataResp.msg_type(), MsgType::Response);
        assert_eq!(Vnet::Coherence.msg_type(), MsgType::Coherence);
        assert_eq!(Vnet::ProbeResp.msg_type(), MsgType::Coherence);
    }

    #[test]
    fn dest_types_follow_component_roles() {
        assert_eq!(ApuNodeKind::Cu.dest_type(), DestType::Core);
        assert_eq!(ApuNodeKind::GpuL2.dest_type(), DestType::Cache);
        assert_eq!(ApuNodeKind::Dir.dest_type(), DestType::Memory);
    }

    #[test]
    fn labels_are_unique() {
        let kinds = [
            ApuNodeKind::Cu,
            ApuNodeKind::GpuL1i,
            ApuNodeKind::GpuL2,
            ApuNodeKind::Dir,
            ApuNodeKind::CpuCore,
            ApuNodeKind::CpuLlc,
        ];
        let mut labels: Vec<&str> = kinds.iter().map(|k| k.label()).collect();
        labels.sort_unstable();
        labels.dedup();
        assert_eq!(labels.len(), 6);
    }
}
