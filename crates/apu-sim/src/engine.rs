//! The closed-loop coherence-protocol engine.
//!
//! Drives the Fig. 6 chip with dependent memory transactions:
//!
//! * **GPU loads** — CU → L2 bank (quadrant-private, interleaved); on a
//!   miss, L2 → directory → (memory latency) → L2 → CU.
//! * **GPU stores** — write-through, write-no-allocate (§4.1): CU → L2,
//!   which acks the CU immediately and forwards the data to a directory.
//! * **Instruction fetches** — CU → shared L1I; misses go to a directory.
//! * **CPU loads** — CPU → LLC; on a miss, LLC → directory, which may first
//!   probe another cache (MOESI sharing) before responding.
//! * **Kernel-launch invalidations** — at each phase entry a directory
//!   broadcasts invalidations to the quadrant's CUs, which ack.
//!
//! Program progress is dependency-limited: each CU/CPU has a bounded
//! outstanding-operation window, so round-trip latency — and therefore
//! arbitration quality — directly determines execution time (§4.2).

use std::collections::{BTreeMap, HashMap};

use noc_sim::{
    InjectionRequest, InvariantViolation, NetSnapshot, NodeId, Packet, SplitMix64, TrafficSource,
    ViolationKind,
};

use crate::kinds::{flits, ApuNodeKind, Vnet};
use crate::topology::{ApuTopology, NUM_QUADRANTS};
use crate::workload::{PhaseFlow, PhaseSpec, WorkloadSpec};

/// Engine-level configuration.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct EngineConfig {
    /// Directory/DRAM access latency in cycles.
    pub mem_latency: u64,
}

impl Default for EngineConfig {
    fn default() -> Self {
        EngineConfig { mem_latency: 60 }
    }
}

/// Kind of an in-flight transaction.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum TxnKind {
    GpuLoad,
    GpuStore,
    WriteThrough,
    IFetch,
    CpuLoad,
    Invalidate,
}

#[derive(Debug, Clone)]
struct Txn {
    kind: TxnKind,
    /// The core the final response returns to (CU or CPU), or the
    /// directory that issued an invalidation.
    issuer: NodeId,
    quadrant: usize,
    /// For probing CPU loads: the LLC awaiting the directory's response.
    probe_waiter: Option<NodeId>,
    /// Deterministic per-operation random value fixing the transaction's
    /// fate (hit/miss, sharing, bank/directory choices). Derived from the
    /// issuing core and its operation index — *not* from a shared RNG — so
    /// every arbitration policy executes the identical protocol work and
    /// execution-time comparisons are paired (the property APU-SynFull's
    /// fixed instruction mix provides in the paper, §4.2).
    fate: u64,
}

#[derive(Debug, Clone, Default)]
struct CoreState {
    outstanding: usize,
    issued: u64,
    completed: u64,
    /// Monotonic operation counter (never reset at phase boundaries);
    /// indexes the deterministic fate streams.
    op_counter: u64,
}

#[derive(Debug)]
struct ProgramState {
    spec: WorkloadSpec,
    phase_idx: usize,
    visits_done: usize,
    cus: Vec<CoreState>,
    cpu: CoreState,
    invals_outstanding: usize,
    total_completed: u64,
    timeline: Vec<PhaseVisit>,
    done: bool,
    finish_cycle: Option<u64>,
}

impl ProgramState {
    fn phase(&self) -> &PhaseSpec {
        &self.spec.phases[self.phase_idx]
    }

    fn phase_finished(&self) -> bool {
        self.invals_outstanding == 0
            && self.cpu.completed >= self.phase().cpu_ops
            && self
                .cus
                .iter()
                .all(|c| c.completed >= self.phase().ops_per_cu)
    }
}

/// One phase execution in a program's timeline.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PhaseVisit {
    /// Index into the workload's phase list.
    pub phase: usize,
    /// Cycle the phase became active.
    pub start: u64,
    /// Cycle the phase completed (`None` while still running).
    pub end: Option<u64>,
}

/// Per-quadrant completion record.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ProgramStatus {
    /// Whether the program copy has finished every phase.
    pub done: bool,
    /// Completion cycle if finished.
    pub finish_cycle: Option<u64>,
    /// Memory operations completed so far (CU + CPU).
    pub ops_completed: u64,
}

/// The closed-loop traffic engine implementing [`TrafficSource`].
#[derive(Debug)]
pub struct ApuEngine {
    apu: ApuTopology,
    cfg: EngineConfig,
    programs: Vec<ProgramState>,
    txns: HashMap<u64, Txn>,
    next_tag: u64,
    delayed: BTreeMap<u64, Vec<InjectionRequest>>,
    outbox: Vec<InjectionRequest>,
    seed: u64,
    total_ops_completed: u64,
    /// Protocol-level invariant checker; `None` (the default) takes the
    /// exact branches of a build without the subsystem, so checked-off
    /// runs are bit-identical (same pattern as the simulator's checker).
    checker: Option<Box<EngineChecker>>,
}

/// Redundant protocol books for the engine: per-vnet sent/delivered
/// message counts plus dependency-order and state-machine violations
/// observed at delivery time. See [`noc_sim::InvariantChecker`] for the
/// network-level analogue.
#[derive(Debug, Default)]
struct EngineChecker {
    /// Messages handed to the simulator, per virtual network.
    sent: [u64; Vnet::ALL.len()],
    /// Messages delivered back to the engine, per virtual network.
    delivered: [u64; Vnet::ALL.len()],
    violations: Vec<InvariantViolation>,
    total: u64,
}

/// Cap on recorded violations (the count keeps going past it).
const MAX_RECORDED: usize = 64;

impl EngineChecker {
    fn record(&mut self, cycle: u64, location: String, kind: ViolationKind) {
        self.total += 1;
        if self.violations.len() < MAX_RECORDED {
            self.violations.push(InvariantViolation {
                cycle,
                location,
                kind,
            });
        }
    }
}

impl ApuEngine {
    /// Creates an engine running one program copy per quadrant.
    ///
    /// # Panics
    ///
    /// Panics unless exactly [`NUM_QUADRANTS`] specs are supplied, or if any
    /// spec fails validation.
    pub fn new(apu: ApuTopology, specs: Vec<WorkloadSpec>, cfg: EngineConfig, seed: u64) -> Self {
        assert_eq!(specs.len(), NUM_QUADRANTS, "one workload per quadrant");
        for s in &specs {
            s.validate();
        }
        let programs = specs
            .into_iter()
            .enumerate()
            .map(|(q, spec)| ProgramState {
                cus: vec![CoreState::default(); apu.cus(q).len()],
                cpu: CoreState::default(),
                spec,
                phase_idx: 0,
                visits_done: 0,
                invals_outstanding: 0,
                total_completed: 0,
                timeline: vec![PhaseVisit {
                    phase: 0,
                    start: 0,
                    end: None,
                }],
                done: false,
                finish_cycle: None,
            })
            .collect();
        let mut engine = ApuEngine {
            apu,
            cfg,
            programs,
            txns: HashMap::new(),
            next_tag: 1,
            delayed: BTreeMap::new(),
            outbox: Vec::new(),
            seed,
            total_ops_completed: 0,
            checker: None,
        };
        // Kernel-launch invalidations for the first phase of each program.
        for q in 0..NUM_QUADRANTS {
            if engine.programs[q].spec.kernel_invalidate {
                engine.send_invalidations(q);
            }
        }
        engine
    }

    /// The chip topology the engine drives.
    pub fn apu(&self) -> &ApuTopology {
        &self.apu
    }

    /// Enables the opt-in protocol invariant checker: per-vnet message
    /// conservation across the seven virtual networks, and dependency
    /// order (a response-class message must find the live transaction its
    /// request opened). Violations are recorded as structured
    /// [`InvariantViolation`] values instead of panicking; the checker
    /// never changes engine behavior on protocol-conforming runs.
    pub fn enable_invariant_checker(&mut self) {
        self.checker = Some(Box::default());
    }

    /// True when the protocol checker is enabled.
    pub fn invariants_enabled(&self) -> bool {
        self.checker.is_some()
    }

    /// Protocol violations recorded so far (empty when the checker is
    /// disabled or the run is clean). The list is capped; see
    /// [`ApuEngine::total_invariant_violations`].
    pub fn invariant_violations(&self) -> &[InvariantViolation] {
        self.checker.as_ref().map_or(&[], |ck| &ck.violations)
    }

    /// Every violation detected, including those past the recording cap.
    pub fn total_invariant_violations(&self) -> u64 {
        self.checker.as_ref().map_or(0, |ck| ck.total)
    }

    /// End-of-run conservation sweep: checks the engine's per-vnet sent
    /// counts against the simulator's delivered counts
    /// (`delivered_per_vnet` from [`noc_sim::SimStats`]), given how many
    /// messages the simulator still holds (`in_flight` + `queued`). With
    /// a fully drained network every vnet must balance exactly; at a
    /// cycle horizon only the aggregate balance is checkable. No-op when
    /// the checker is disabled.
    pub fn finalize_invariants(
        &mut self,
        cycle: u64,
        delivered_per_vnet: &[u64],
        in_flight: u64,
        queued: u64,
    ) {
        let Some(ck) = &mut self.checker else { return };
        for (v, &sim_delivered) in delivered_per_vnet.iter().enumerate() {
            // The engine observes every delivery the simulator performs;
            // the two delivered books must agree unconditionally.
            if ck.delivered[v] != sim_delivered {
                ck.record(
                    cycle,
                    format!("engine vs sim, vnet {v}"),
                    ViolationKind::VnetConservation {
                        vnet: v,
                        sent: ck.delivered[v],
                        delivered: sim_delivered,
                    },
                );
            }
        }
        if in_flight + queued == 0 {
            for v in 0..Vnet::ALL.len() {
                if ck.sent[v] != ck.delivered[v] {
                    ck.record(
                        cycle,
                        format!("vnet {v}"),
                        ViolationKind::VnetConservation {
                            vnet: v,
                            sent: ck.sent[v],
                            delivered: ck.delivered[v],
                        },
                    );
                }
            }
        } else {
            let sent: u64 = ck.sent.iter().sum();
            let delivered: u64 = ck.delivered.iter().sum();
            if sent != delivered + in_flight + queued {
                ck.record(
                    cycle,
                    "aggregate".to_string(),
                    ViolationKind::MessageConservation {
                        created: sent,
                        delivered,
                        in_flight,
                        queued,
                    },
                );
            }
        }
    }

    /// Status of each quadrant's program copy.
    pub fn statuses(&self) -> Vec<ProgramStatus> {
        self.programs
            .iter()
            .map(|p| ProgramStatus {
                done: p.done,
                finish_cycle: p.finish_cycle,
                ops_completed: p.total_completed,
            })
            .collect()
    }

    /// Completion cycles of the four program copies, where finished.
    pub fn execution_times(&self) -> Vec<Option<u64>> {
        self.programs.iter().map(|p| p.finish_cycle).collect()
    }

    /// Mean completion cycle across quadrants ("average program execution
    /// time", §4.2). Unfinished copies count as `fallback`.
    pub fn avg_execution_time(&self, fallback: u64) -> f64 {
        let sum: u64 = self
            .programs
            .iter()
            .map(|p| p.finish_cycle.unwrap_or(fallback))
            .sum();
        sum as f64 / self.programs.len() as f64
    }

    /// Slowest copy's completion cycle ("tail program execution time").
    pub fn tail_execution_time(&self, fallback: u64) -> u64 {
        self.programs
            .iter()
            .map(|p| p.finish_cycle.unwrap_or(fallback))
            .max()
            .unwrap_or(0)
    }

    /// Total memory operations completed across the chip.
    pub fn total_ops_completed(&self) -> u64 {
        self.total_ops_completed
    }

    /// The phase timeline of a quadrant's program: every phase execution
    /// with its start/end cycles, in order.
    ///
    /// # Panics
    ///
    /// Panics if `quadrant >= NUM_QUADRANTS`.
    pub fn phase_timeline(&self, quadrant: usize) -> &[PhaseVisit] {
        &self.programs[quadrant].timeline
    }

    /// A fresh deterministic stream keyed by `(domain, a, b)` and the
    /// engine seed.
    fn stream(&self, domain: u64, a: u64, b: u64) -> SplitMix64 {
        let mut mixer = SplitMix64::new(
            self.seed
                ^ domain.wrapping_mul(0x9E37_79B9_7F4A_7C15)
                ^ a.wrapping_mul(0xC2B2_AE3D_27D4_EB4F)
                ^ b.wrapping_mul(0x1656_67B1_9E37_79F9),
        );
        // Burn one output so nearby keys decorrelate.
        let _ = mixer.next_u64();
        mixer
    }

    fn alloc_txn(&mut self, txn: Txn) -> u64 {
        let tag = self.next_tag;
        self.next_tag += 1;
        self.txns.insert(tag, txn);
        tag
    }

    fn push_msg(&mut self, src: NodeId, dst: NodeId, vnet: Vnet, len: u32, tag: u64) {
        self.outbox.push(InjectionRequest {
            src,
            dst,
            vnet: vnet.index(),
            msg_type: vnet.msg_type(),
            dst_type: self.apu.kind(dst).dest_type(),
            len_flits: len,
            tag,
        });
    }

    fn push_delayed(&mut self, at: u64, src: NodeId, dst: NodeId, vnet: Vnet, len: u32, tag: u64) {
        let dst_type = self.apu.kind(dst).dest_type();
        self.delayed.entry(at).or_default().push(InjectionRequest {
            src,
            dst,
            vnet: vnet.index(),
            msg_type: vnet.msg_type(),
            dst_type,
            len_flits: len,
            tag,
        });
    }

    fn pick(rng: &mut SplitMix64, nodes: &[NodeId]) -> NodeId {
        nodes[rng.next_bounded(nodes.len() as u64) as usize]
    }

    /// Broadcasts kernel-launch invalidations to the quadrant's CUs.
    fn send_invalidations(&mut self, quadrant: usize) {
        let visit = self.programs[quadrant].visits_done as u64;
        let mut rng = self.stream(3, quadrant as u64, visit);
        let dir = Self::pick(&mut rng, self.apu.dirs());
        let cus = self.apu.cus(quadrant).to_vec();
        for cu in cus {
            let fate = rng.next_u64();
            let tag = self.alloc_txn(Txn {
                kind: TxnKind::Invalidate,
                issuer: dir,
                quadrant,
                probe_waiter: None,
                fate,
            });
            self.push_msg(dir, cu, Vnet::Coherence, flits::CONTROL, tag);
            self.programs[quadrant].invals_outstanding += 1;
        }
    }

    /// Issues one CU memory operation. The operation's kind, target bank,
    /// and downstream fate are all functions of `(cu, op index)` — never of
    /// global event order — so they are identical under every policy.
    fn issue_cu_op(&mut self, quadrant: usize, cu_idx: usize) {
        let cu = self.apu.cus(quadrant)[cu_idx];
        let op_idx = self.programs[quadrant].cus[cu_idx].op_counter;
        let phase = self.programs[quadrant].phase().clone();
        let mut rng = self.stream(1, cu.index() as u64, op_idx);
        let fate = rng.next_u64();
        let draw = rng.next_f64();
        if draw < phase.ifetch_frac {
            let l1i = {
                let banks = self.apu.l1is(quadrant).to_vec();
                Self::pick(&mut rng, &banks)
            };
            let tag = self.alloc_txn(Txn {
                kind: TxnKind::IFetch,
                issuer: cu,
                quadrant,
                probe_waiter: None,
                fate,
            });
            self.push_msg(cu, l1i, Vnet::GpuReq, flits::CONTROL, tag);
        } else {
            let l2 = {
                let banks = self.apu.l2_banks(quadrant).to_vec();
                Self::pick(&mut rng, &banks)
            };
            let is_store = draw < phase.ifetch_frac + phase.store_frac;
            let (kind, len) = if is_store {
                (TxnKind::GpuStore, flits::DATA)
            } else {
                (TxnKind::GpuLoad, flits::CONTROL)
            };
            let tag = self.alloc_txn(Txn {
                kind,
                issuer: cu,
                quadrant,
                probe_waiter: None,
                fate,
            });
            self.push_msg(cu, l2, Vnet::GpuReq, len, tag);
        }
        let st = &mut self.programs[quadrant].cus[cu_idx];
        st.issued += 1;
        st.outstanding += 1;
        st.op_counter += 1;
    }

    /// Issues one CPU memory operation.
    fn issue_cpu_op(&mut self, quadrant: usize) {
        let cpu = self.apu.cpu(quadrant);
        let llc = self.apu.llc(quadrant);
        let op_idx = self.programs[quadrant].cpu.op_counter;
        let mut rng = self.stream(2, cpu.index() as u64, op_idx);
        let fate = rng.next_u64();
        let tag = self.alloc_txn(Txn {
            kind: TxnKind::CpuLoad,
            issuer: cpu,
            quadrant,
            probe_waiter: None,
            fate,
        });
        self.push_msg(cpu, llc, Vnet::CpuReq, flits::CONTROL, tag);
        let st = &mut self.programs[quadrant].cpu;
        st.issued += 1;
        st.outstanding += 1;
        st.op_counter += 1;
    }

    /// Marks an operation complete at its issuing core.
    fn complete_op(&mut self, quadrant: usize, issuer: NodeId) {
        self.total_ops_completed += 1;
        let p = &mut self.programs[quadrant];
        p.total_completed += 1;
        if self.apu.kind(issuer) == ApuNodeKind::CpuCore {
            p.cpu.outstanding -= 1;
            p.cpu.completed += 1;
        } else {
            let idx = self
                .apu
                .cus(quadrant)
                .iter()
                .position(|&c| c == issuer)
                .expect("issuer CU belongs to its quadrant");
            p.cus[idx].outstanding -= 1;
            p.cus[idx].completed += 1;
        }
    }

    /// Advances a program's phase machine when the current phase is done.
    fn maybe_advance_phase(&mut self, quadrant: usize, cycle: u64) {
        loop {
            let p = &self.programs[quadrant];
            if p.done || !p.phase_finished() {
                return;
            }
            let total_visits = p.spec.total_phase_visits();
            let next = match &p.spec.flow {
                PhaseFlow::Sequence => {
                    if p.phase_idx + 1 < p.spec.phases.len() {
                        Some(p.phase_idx + 1)
                    } else {
                        None
                    }
                }
                PhaseFlow::Markov { transition, .. } => {
                    if p.visits_done + 1 < total_visits {
                        let row = transition[p.phase_idx].clone();
                        let (q, visit) = (quadrant as u64, p.visits_done as u64);
                        let mut draw = self.stream(4, q, visit).next_f64();
                        let mut chosen = row.len() - 1;
                        for (j, &pr) in row.iter().enumerate() {
                            if draw < pr {
                                chosen = j;
                                break;
                            }
                            draw -= pr;
                        }
                        Some(chosen)
                    } else {
                        None
                    }
                }
            };
            let p = &mut self.programs[quadrant];
            p.visits_done += 1;
            if let Some(open) = p.timeline.last_mut() {
                open.end = Some(cycle);
            }
            match next {
                None => {
                    p.done = true;
                    p.finish_cycle = Some(cycle);
                    return;
                }
                Some(idx) => {
                    p.phase_idx = idx;
                    p.timeline.push(PhaseVisit {
                        phase: idx,
                        start: cycle,
                        end: None,
                    });
                    for c in &mut p.cus {
                        c.issued = 0;
                        c.completed = 0;
                    }
                    p.cpu.issued = 0;
                    p.cpu.completed = 0;
                    let inval = p.spec.kernel_invalidate;
                    if inval {
                        self.send_invalidations(quadrant);
                    }
                    // Loop again: a zero-op phase may complete immediately.
                }
            }
        }
    }
}

impl TrafficSource for ApuEngine {
    fn pull(&mut self, cycle: u64, _net: &NetSnapshot) -> Vec<InjectionRequest> {
        // Release delayed (memory-latency) messages.
        let due: Vec<u64> = self.delayed.range(..=cycle).map(|(&k, _)| k).collect();
        for k in due {
            let mut msgs = self.delayed.remove(&k).unwrap_or_default();
            self.outbox.append(&mut msgs);
        }

        // Issue new operations.
        for q in 0..NUM_QUADRANTS {
            if self.programs[q].done {
                continue;
            }
            let phase = self.programs[q].phase().clone();
            for cu_idx in 0..self.programs[q].cus.len() {
                let st = &self.programs[q].cus[cu_idx];
                let cu = self.apu.cus(q)[cu_idx];
                if st.issued < phase.ops_per_cu
                    && st.outstanding < phase.window
                    && self.stream(5, cu.index() as u64, cycle).chance(phase.issue_prob)
                {
                    self.issue_cu_op(q, cu_idx);
                }
            }
            let cpu_state = &self.programs[q].cpu;
            let cpu_node = self.apu.cpu(q);
            if cpu_state.issued < phase.cpu_ops
                && cpu_state.outstanding < phase.window
                && self
                    .stream(5, cpu_node.index() as u64, cycle)
                    .chance(phase.cpu_issue_prob)
            {
                self.issue_cpu_op(q);
            }
            self.maybe_advance_phase(q, cycle);
        }
        if let Some(ck) = &mut self.checker {
            // Count sends at the moment messages leave for the simulator
            // (not at push time), so delayed messages still held in the
            // memory-latency queue never skew the conservation books.
            for req in &self.outbox {
                ck.sent[req.vnet] += 1;
            }
        }
        std::mem::take(&mut self.outbox)
    }

    fn on_delivered(&mut self, pkt: &Packet, cycle: u64) {
        if let Some(ck) = &mut self.checker {
            ck.delivered[pkt.vnet] += 1;
            // Dependency order: a response-class message must find the
            // live transaction its request opened. Requests create their
            // transaction before being pushed, so an untracked response
            // means it overtook (or outlived) its own request.
            if !self.txns.contains_key(&pkt.tag)
                && matches!(
                    Vnet::ALL[pkt.vnet],
                    Vnet::DataResp | Vnet::MemResp | Vnet::ProbeResp
                )
            {
                ck.record(
                    cycle,
                    format!("tag {}", pkt.tag),
                    ViolationKind::ResponseWithoutRequest {
                        tag: pkt.tag,
                        vnet: pkt.vnet,
                    },
                );
            }
        }
        let Some(txn) = self.txns.get(&pkt.tag).cloned() else {
            return; // untracked message (should not happen)
        };
        let here = pkt.dst;
        let vnet = Vnet::ALL[pkt.vnet];
        match (vnet, txn.kind) {
            // ---- requests arriving at caches ----
            (Vnet::GpuReq, TxnKind::GpuLoad) => {
                let mut rng = self.stream(6, txn.fate, 0);
                let hit = rng.chance(self.programs[txn.quadrant].phase().l2_hit_rate);
                if hit {
                    self.push_msg(here, txn.issuer, Vnet::DataResp, flits::DATA, pkt.tag);
                } else {
                    let dir = Self::pick(&mut rng, self.apu.dirs());
                    self.push_msg(here, dir, Vnet::MemReq, flits::CONTROL, pkt.tag);
                }
            }
            (Vnet::GpuReq, TxnKind::GpuStore) => {
                // Write-through: ack the CU, forward data to memory.
                self.push_msg(here, txn.issuer, Vnet::DataResp, flits::CONTROL, pkt.tag);
                let mut rng = self.stream(6, txn.fate, 1);
                let dir = Self::pick(&mut rng, self.apu.dirs());
                let fate = rng.next_u64();
                let wt = self.alloc_txn(Txn {
                    kind: TxnKind::WriteThrough,
                    issuer: here,
                    quadrant: txn.quadrant,
                    probe_waiter: None,
                    fate,
                });
                self.push_msg(here, dir, Vnet::MemReq, flits::DATA, wt);
            }
            (Vnet::GpuReq, TxnKind::IFetch) => {
                let mut rng = self.stream(6, txn.fate, 2);
                let hit = rng.chance(self.programs[txn.quadrant].phase().l1i_hit_rate);
                if hit {
                    self.push_msg(here, txn.issuer, Vnet::DataResp, flits::DATA, pkt.tag);
                } else {
                    let dir = Self::pick(&mut rng, self.apu.dirs());
                    self.push_msg(here, dir, Vnet::MemReq, flits::CONTROL, pkt.tag);
                }
            }
            (Vnet::CpuReq, TxnKind::CpuLoad) => {
                let mut rng = self.stream(6, txn.fate, 3);
                let hit = rng.chance(self.programs[txn.quadrant].phase().llc_hit_rate);
                if hit {
                    self.push_msg(here, txn.issuer, Vnet::DataResp, flits::DATA, pkt.tag);
                } else {
                    let dir = Self::pick(&mut rng, self.apu.dirs());
                    self.push_msg(here, dir, Vnet::MemReq, flits::CONTROL, pkt.tag);
                }
            }
            // ---- requests arriving at directories ----
            (Vnet::MemReq, TxnKind::WriteThrough) => {
                // Data reached memory; transaction dissolves.
                self.txns.remove(&pkt.tag);
            }
            (Vnet::MemReq, TxnKind::GpuLoad | TxnKind::IFetch) => {
                self.push_delayed(
                    cycle + self.cfg.mem_latency,
                    here,
                    pkt.src,
                    Vnet::MemResp,
                    flits::DATA,
                    pkt.tag,
                );
            }
            (Vnet::MemReq, TxnKind::CpuLoad) => {
                let mut rng = self.stream(6, txn.fate, 4);
                let sharing = rng.chance(self.programs[txn.quadrant].phase().sharing_prob);
                if sharing {
                    // Probe a deterministic GPU L2 (an owner cache) first.
                    let owner = {
                        let banks = self.apu.l2_banks(txn.quadrant).to_vec();
                        Self::pick(&mut rng, &banks)
                    };
                    if let Some(t) = self.txns.get_mut(&pkt.tag) {
                        t.probe_waiter = Some(pkt.src);
                    }
                    self.push_msg(here, owner, Vnet::Coherence, flits::CONTROL, pkt.tag);
                } else {
                    self.push_delayed(
                        cycle + self.cfg.mem_latency,
                        here,
                        pkt.src,
                        Vnet::MemResp,
                        flits::DATA,
                        pkt.tag,
                    );
                }
            }
            // ---- coherence ----
            (Vnet::Coherence, TxnKind::Invalidate) => {
                // CU acks the kernel-launch invalidation.
                self.push_msg(here, txn.issuer, Vnet::ProbeResp, flits::CONTROL, pkt.tag);
            }
            (Vnet::Coherence, TxnKind::CpuLoad) => {
                // Probed cache responds with (possibly dirty) data.
                self.push_msg(here, pkt.src, Vnet::ProbeResp, flits::DATA, pkt.tag);
            }
            (Vnet::ProbeResp, TxnKind::Invalidate) => {
                self.programs[txn.quadrant].invals_outstanding -= 1;
                self.txns.remove(&pkt.tag);
            }
            (Vnet::ProbeResp, TxnKind::CpuLoad) => {
                let waiter = txn.probe_waiter.expect("probe ack without waiter");
                self.push_msg(here, waiter, Vnet::MemResp, flits::DATA, pkt.tag);
            }
            // ---- memory responses back through the cache ----
            (Vnet::MemResp, TxnKind::GpuLoad | TxnKind::IFetch | TxnKind::CpuLoad) => {
                self.push_msg(here, txn.issuer, Vnet::DataResp, flits::DATA, pkt.tag);
            }
            // ---- final responses at the issuing core ----
            (Vnet::DataResp, TxnKind::GpuLoad | TxnKind::GpuStore | TxnKind::IFetch | TxnKind::CpuLoad) => {
                self.txns.remove(&pkt.tag);
                self.complete_op(txn.quadrant, txn.issuer);
            }
            (v, k) => {
                // With the checker on, an illegal (vnet, txn-kind) pairing
                // becomes a structured violation the conformance harness
                // can report and shrink; without it, the legacy loud-crash
                // behavior is preserved bit for bit.
                if let Some(ck) = &mut self.checker {
                    ck.record(
                        cycle,
                        format!("tag {}", pkt.tag),
                        ViolationKind::ProtocolViolation {
                            detail: format!("{v:?} delivered for {k:?} transaction"),
                        },
                    );
                } else {
                    unreachable!("protocol violation: {v:?} delivered for {k:?} transaction")
                }
            }
        }
    }

    fn is_done(&self, _cycle: u64) -> bool {
        self.programs.iter().all(|p| p.done) && self.txns.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::workload::PhaseSpec;
    use noc_sim::arbiters::FifoArbiter;
    use noc_sim::{SimConfig, Simulator};

    fn tiny_spec(ops: u64) -> WorkloadSpec {
        let mut phase = PhaseSpec::balanced();
        phase.ops_per_cu = ops;
        phase.cpu_ops = ops;
        phase.issue_prob = 0.4;
        phase.cpu_issue_prob = 0.4;
        WorkloadSpec::single_phase("tiny", phase)
    }

    fn make_sim(ops: u64, seed: u64) -> Simulator<ApuEngine> {
        let apu = ApuTopology::build();
        let topo = apu.clone_topology();
        let engine = ApuEngine::new(
            apu,
            vec![tiny_spec(ops); 4],
            EngineConfig::default(),
            seed,
        );
        Simulator::new(
            topo,
            SimConfig::apu(8, 8),
            Box::new(FifoArbiter::new()),
            engine,
        )
        .unwrap()
    }

    #[test]
    fn tiny_programs_run_to_completion() {
        let mut sim = make_sim(3, 1);
        let done = sim.run_until_done(200_000);
        assert!(done, "programs did not finish");
        let st = sim.traffic().statuses();
        assert!(st.iter().all(|s| s.done));
        for s in &st {
            // 16 CUs × 3 ops + 3 CPU ops = 51 per quadrant.
            assert_eq!(s.ops_completed, 51);
            assert!(s.finish_cycle.is_some());
        }
    }

    #[test]
    fn all_seven_vnets_carry_traffic() {
        let mut sim = make_sim(20, 3);
        sim.run_until_done(400_000);
        let per_vnet = &sim.stats().delivered_per_vnet;
        for (i, &count) in per_vnet.iter().enumerate() {
            assert!(count > 0, "vnet {i} carried no traffic: {per_vnet:?}");
        }
    }

    #[test]
    fn execution_times_are_recorded_per_quadrant() {
        let mut sim = make_sim(3, 7);
        assert!(sim.run_until_done(200_000));
        let times = sim.traffic().execution_times();
        assert_eq!(times.len(), 4);
        assert!(times.iter().all(|t| t.is_some()));
        let avg = sim.traffic().avg_execution_time(0);
        let tail = sim.traffic().tail_execution_time(0);
        assert!(avg > 0.0);
        assert!(tail as f64 >= avg);
    }

    #[test]
    fn multi_phase_sequence_advances() {
        let apu = ApuTopology::build();
        let topo = apu.clone_topology();
        let mut phase = PhaseSpec::balanced();
        phase.ops_per_cu = 2;
        phase.cpu_ops = 0;
        phase.issue_prob = 0.5;
        let spec = WorkloadSpec {
            name: "two-phase".into(),
            phases: vec![phase.clone(), phase],
            flow: PhaseFlow::Sequence,
            kernel_invalidate: true,
        };
        let engine = ApuEngine::new(apu, vec![spec; 4], EngineConfig::default(), 9);
        let mut sim = Simulator::new(
            topo,
            SimConfig::apu(8, 8),
            Box::new(FifoArbiter::new()),
            engine,
        )
        .unwrap();
        assert!(sim.run_until_done(400_000));
        for s in sim.traffic().statuses() {
            assert!(s.done);
            // Two phases × 16 CUs × 2 ops.
            assert_eq!(s.ops_completed, 64);
        }
    }

    #[test]
    fn markov_flow_terminates_after_total_visits() {
        let apu = ApuTopology::build();
        let topo = apu.clone_topology();
        let mut phase = PhaseSpec::balanced();
        phase.ops_per_cu = 1;
        phase.cpu_ops = 0;
        phase.issue_prob = 0.5;
        let spec = WorkloadSpec {
            name: "markov".into(),
            phases: vec![phase.clone(), phase],
            flow: PhaseFlow::Markov {
                transition: vec![vec![0.5, 0.5], vec![0.5, 0.5]],
                total_visits: 3,
            },
            kernel_invalidate: false,
        };
        let engine = ApuEngine::new(apu, vec![spec; 4], EngineConfig::default(), 11);
        let mut sim = Simulator::new(
            topo,
            SimConfig::apu(8, 8),
            Box::new(FifoArbiter::new()),
            engine,
        )
        .unwrap();
        assert!(sim.run_until_done(400_000));
        for s in sim.traffic().statuses() {
            // 3 phase visits × 16 ops.
            assert_eq!(s.ops_completed, 48);
        }
    }

    #[test]
    fn memory_latency_slows_execution() {
        let run = |lat: u64| {
            let apu = ApuTopology::build();
            let topo = apu.clone_topology();
            let mut phase = PhaseSpec::balanced();
            phase.ops_per_cu = 10;
            phase.cpu_ops = 0;
            phase.l2_hit_rate = 0.0; // every load goes to memory
            let spec = WorkloadSpec::single_phase("mem", phase);
            let engine = ApuEngine::new(apu, vec![spec; 4], EngineConfig { mem_latency: lat }, 5);
            let mut sim = Simulator::new(
                topo,
                SimConfig::apu(8, 8),
                Box::new(FifoArbiter::new()),
                engine,
            )
            .unwrap();
            assert!(sim.run_until_done(500_000));
            sim.traffic().tail_execution_time(0)
        };
        assert!(run(200) > run(10), "longer memory latency must slow programs");
    }

    #[test]
    fn phase_timeline_records_every_visit() {
        let apu = ApuTopology::build();
        let topo = apu.clone_topology();
        let mut phase = PhaseSpec::balanced();
        phase.ops_per_cu = 2;
        phase.cpu_ops = 0;
        phase.issue_prob = 0.5;
        let spec = WorkloadSpec {
            name: "timeline".into(),
            phases: vec![phase.clone(), phase],
            flow: PhaseFlow::Sequence,
            kernel_invalidate: false,
        };
        let engine = ApuEngine::new(apu, vec![spec; 4], EngineConfig::default(), 3);
        let mut sim = Simulator::new(
            topo,
            SimConfig::apu(8, 8),
            Box::new(FifoArbiter::new()),
            engine,
        )
        .unwrap();
        assert!(sim.run_until_done(400_000));
        for q in 0..4 {
            let tl = sim.traffic().phase_timeline(q);
            assert_eq!(tl.len(), 2, "quadrant {q} timeline: {tl:?}");
            assert_eq!(tl[0].phase, 0);
            assert_eq!(tl[1].phase, 1);
            let end0 = tl[0].end.expect("phase 0 closed");
            assert_eq!(tl[1].start, end0);
            let end1 = tl[1].end.expect("phase 1 closed");
            assert_eq!(Some(end1), sim.traffic().execution_times()[q]);
            assert!(tl[0].start < end0 && tl[1].start < end1);
        }
    }

    #[test]
    fn protocol_work_is_policy_invariant() {
        // Same specs + seed must generate exactly the same protocol work
        // under different arbitration policies; only timing may differ.
        let run = |arb: Box<dyn noc_sim::Arbiter>| {
            let apu = ApuTopology::build();
            let topo = apu.clone_topology();
            let engine =
                ApuEngine::new(apu, vec![tiny_spec(10); 4], EngineConfig::default(), 5);
            let mut sim = Simulator::new(topo, SimConfig::apu(8, 8), arb, engine).unwrap();
            assert!(sim.run_until_done(400_000));
            sim.stats().created
        };
        let fifo = run(Box::new(FifoArbiter::new()));
        let rr = run(Box::new(noc_sim::arbiters::RoundRobinArbiter::new()));
        assert_eq!(fifo, rr, "policies must execute identical workloads");
    }

    #[test]
    #[should_panic(expected = "one workload per quadrant")]
    fn wrong_spec_count_rejected() {
        ApuEngine::new(
            ApuTopology::build(),
            vec![tiny_spec(1); 3],
            EngineConfig::default(),
            0,
        );
    }
}
