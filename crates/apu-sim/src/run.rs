//! Convenience harness: build and run a four-quadrant APU experiment.

use noc_sim::{Arbiter, FaultPlan, InvariantViolation, SimConfig, SimStats, Simulator};

use crate::engine::{ApuEngine, EngineConfig};
use crate::topology::{ApuTopology, APU_MESH, NUM_QUADRANTS};
use crate::workload::WorkloadSpec;

/// Outcome of one APU run.
#[derive(Debug, Clone)]
pub struct ApuRunResult {
    /// Network statistics of the run.
    pub stats: SimStats,
    /// Per-quadrant completion cycles (`max_cycles` for unfinished copies).
    pub exec_times: Vec<u64>,
    /// Mean completion cycle (paper Fig. 9 metric).
    pub avg_exec: f64,
    /// Slowest copy's completion cycle (paper Fig. 10 metric).
    pub tail_exec: u64,
    /// Whether all four copies finished within the cycle budget.
    pub completed: bool,
}

/// Builds a ready-to-run APU simulator: Fig. 6 topology, 7-vnet
/// configuration, closed-loop engine with one workload copy per quadrant.
///
/// # Panics
///
/// Panics unless exactly [`NUM_QUADRANTS`] workload specs are given.
pub fn make_apu_sim(
    specs: Vec<WorkloadSpec>,
    arbiter: Box<dyn Arbiter>,
    engine_cfg: EngineConfig,
    seed: u64,
) -> Simulator<ApuEngine> {
    assert_eq!(specs.len(), NUM_QUADRANTS, "one workload per quadrant");
    let apu = ApuTopology::build();
    let topo = apu.clone_topology();
    let engine = ApuEngine::new(apu, specs, engine_cfg, seed);
    Simulator::new(topo, SimConfig::apu(APU_MESH, APU_MESH), arbiter, engine)
        .expect("static APU configuration is valid")
}

/// Runs four copies of workloads to completion (or `max_cycles`) under the
/// given arbiter and reports execution times — the §4.2/§5 experiment in
/// one call.
///
/// ```no_run
/// use apu_sim::{run_apu, EngineConfig, WorkloadSpec, PhaseSpec};
/// use noc_sim::arbiters::FifoArbiter;
///
/// let spec = WorkloadSpec::single_phase("demo", PhaseSpec::balanced());
/// let result = run_apu(
///     vec![spec; 4],
///     Box::new(FifoArbiter::new()),
///     EngineConfig::default(),
///     42,
///     1_000_000,
/// );
/// println!("avg execution time: {:.0} cycles", result.avg_exec);
/// ```
pub fn run_apu(
    specs: Vec<WorkloadSpec>,
    arbiter: Box<dyn Arbiter>,
    engine_cfg: EngineConfig,
    seed: u64,
    max_cycles: u64,
) -> ApuRunResult {
    run_apu_with_faults(specs, arbiter, engine_cfg, seed, max_cycles, None)
}

/// [`run_apu`] with an optional deterministic [`FaultPlan`] injected into
/// the underlying simulator. Passing `None` (or an empty plan) is
/// bit-identical to the fault-free path.
pub fn run_apu_with_faults(
    specs: Vec<WorkloadSpec>,
    arbiter: Box<dyn Arbiter>,
    engine_cfg: EngineConfig,
    seed: u64,
    max_cycles: u64,
    faults: Option<&FaultPlan>,
) -> ApuRunResult {
    let mut sim = make_apu_sim(specs, arbiter, engine_cfg, seed);
    if let Some(plan) = faults {
        sim.set_fault_plan(plan);
    }
    let completed = sim.run_until_done(max_cycles);
    let engine = sim.traffic();
    let exec_times: Vec<u64> = engine
        .execution_times()
        .into_iter()
        .map(|t| t.unwrap_or(max_cycles))
        .collect();
    ApuRunResult {
        avg_exec: engine.avg_execution_time(max_cycles),
        tail_exec: engine.tail_execution_time(max_cycles),
        stats: sim.stats().clone(),
        exec_times,
        completed,
    }
}

/// Outcome of a conformance run: the usual results plus every invariant
/// violation the network-level and protocol-level checkers recorded.
#[derive(Debug, Clone)]
pub struct ApuConformance {
    /// The run's results, exactly as [`run_apu_with_faults`] reports them.
    pub result: ApuRunResult,
    /// Violations from both checkers (simulator first, then engine),
    /// empty for a conforming run.
    pub violations: Vec<InvariantViolation>,
}

/// [`run_apu_with_faults`] with both invariant checkers enabled: the
/// network-level [`noc_sim::InvariantChecker`] on the simulator and the
/// protocol-level checker on the [`ApuEngine`] (per-vnet conservation
/// across the seven virtual networks, dependency order). The checkers
/// observe without perturbing — `result` is bit-identical to an unchecked
/// run with the same arguments.
pub fn run_apu_checked(
    specs: Vec<WorkloadSpec>,
    arbiter: Box<dyn Arbiter>,
    engine_cfg: EngineConfig,
    seed: u64,
    max_cycles: u64,
    faults: Option<&FaultPlan>,
) -> ApuConformance {
    let mut sim = make_apu_sim(specs, arbiter, engine_cfg, seed);
    sim.enable_invariant_checker();
    sim.traffic_mut().enable_invariant_checker();
    if let Some(plan) = faults {
        sim.set_fault_plan(plan);
    }
    let completed = sim.run_until_done(max_cycles);

    let cycle = sim.cycle();
    let in_flight = sim.in_flight();
    let queued = sim.queued_at_sources() as u64;
    let delivered_per_vnet = sim.stats().delivered_per_vnet.clone();
    sim.traffic_mut()
        .finalize_invariants(cycle, &delivered_per_vnet, in_flight, queued);

    let mut violations = sim.invariant_violations().to_vec();
    violations.extend_from_slice(sim.traffic().invariant_violations());

    let engine = sim.traffic();
    let exec_times: Vec<u64> = engine
        .execution_times()
        .into_iter()
        .map(|t| t.unwrap_or(max_cycles))
        .collect();
    ApuConformance {
        result: ApuRunResult {
            avg_exec: engine.avg_execution_time(max_cycles),
            tail_exec: engine.tail_execution_time(max_cycles),
            stats: sim.stats().clone(),
            exec_times,
            completed,
        },
        violations,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::workload::PhaseSpec;
    use noc_sim::arbiters::FifoArbiter;

    fn quick() -> WorkloadSpec {
        let mut p = PhaseSpec::balanced();
        p.ops_per_cu = 4;
        p.cpu_ops = 4;
        p.issue_prob = 0.4;
        WorkloadSpec::single_phase("quick", p)
    }

    #[test]
    fn run_apu_reports_consistent_times() {
        let r = run_apu(
            vec![quick(); 4],
            Box::new(FifoArbiter::new()),
            EngineConfig::default(),
            3,
            300_000,
        );
        assert!(r.completed);
        assert_eq!(r.exec_times.len(), 4);
        let max = *r.exec_times.iter().max().unwrap();
        assert_eq!(r.tail_exec, max);
        assert!(r.avg_exec <= max as f64);
        assert!(r.stats.delivered > 0);
    }

    #[test]
    fn different_seeds_change_timing_but_not_work() {
        let a = run_apu(
            vec![quick(); 4],
            Box::new(FifoArbiter::new()),
            EngineConfig::default(),
            1,
            300_000,
        );
        let b = run_apu(
            vec![quick(); 4],
            Box::new(FifoArbiter::new()),
            EngineConfig::default(),
            2,
            300_000,
        );
        assert!(a.completed && b.completed);
        // Same total protocol work is performed regardless of seed.
        assert_eq!(
            a.stats.created > 0,
            b.stats.created > 0
        );
        assert_ne!(a.exec_times, b.exec_times, "seeds should perturb timing");
    }

    #[test]
    fn checked_run_is_clean_and_bit_identical() {
        let plain = run_apu(
            vec![quick(); 4],
            Box::new(FifoArbiter::new()),
            EngineConfig::default(),
            11,
            300_000,
        );
        let checked = run_apu_checked(
            vec![quick(); 4],
            Box::new(FifoArbiter::new()),
            EngineConfig::default(),
            11,
            300_000,
            None,
        );
        assert!(
            checked.violations.is_empty(),
            "violations: {:?}",
            checked.violations
        );
        assert_eq!(plain.exec_times, checked.result.exec_times);
        assert_eq!(
            format!("{:?}", plain.stats),
            format!("{:?}", checked.result.stats),
            "enabling the checkers changed the simulation"
        );
    }

    #[test]
    fn checked_run_stays_clean_under_faults() {
        let topo = ApuTopology::build().clone_topology();
        let plan = noc_sim::FaultPlan::generate(5, 1.0, &topo, 300_000);
        let checked = run_apu_checked(
            vec![quick(); 4],
            Box::new(FifoArbiter::new()),
            EngineConfig::default(),
            13,
            300_000,
            Some(&plan),
        );
        assert!(
            checked.violations.is_empty(),
            "violations: {:?}",
            checked.violations
        );
    }

    #[test]
    fn identical_seeds_reproduce_exactly() {
        let a = run_apu(
            vec![quick(); 4],
            Box::new(FifoArbiter::new()),
            EngineConfig::default(),
            9,
            300_000,
        );
        let b = run_apu(
            vec![quick(); 4],
            Box::new(FifoArbiter::new()),
            EngineConfig::default(),
            9,
            300_000,
        );
        assert_eq!(a.exec_times, b.exec_times);
        assert_eq!(a.stats.delivered, b.stats.delivered);
    }
}
