//! The Fig. 6b chip topology.
//!
//! An 8×8 mesh whose routers each carry two local ports. Slot 0 ("core")
//! always hosts a GPU compute unit (64 CUs). Slot 1 ("memory") hosts, per
//! tile:
//!
//! * the 16 coherence directories along the left and right edges (x = 0, 7),
//! * the 16 GPU L1 instruction caches in the 4×4 center block,
//! * one CPU core and one CPU LLC per quadrant (8 tiles total), and
//! * GPU L2 banks on the remaining 24 tiles (6 per quadrant,
//!   quadrant-private and address-interleaved).
//!
//! Every router therefore has exactly 6 input ports — core, memory, north,
//! south, west, east — matching the paper's "largest router" and its
//! 6 × 7 × 12 = 504-entry agent state vector (§4.4, §4.6).
//!
//! **Substitution note** (documented in DESIGN.md): the paper augments the
//! mesh with two extra CPU nodes per quadrant; we host CPU and LLC in the
//! memory slot of two interior tiles per quadrant instead, trading 8 GPU L2
//! banks for a uniform 6-port fabric. Traffic classes, route lengths, and
//! contention structure are preserved.

use noc_sim::{Coord, NodeId, RouterId, Topology};

use crate::kinds::ApuNodeKind;

/// Mesh width/height of the APU fabric.
pub const APU_MESH: u16 = 8;
/// Number of quadrants (one workload copy runs in each, §4.2).
pub const NUM_QUADRANTS: usize = 4;

/// The built APU topology: the mesh plus kind/quadrant indices.
#[derive(Debug, Clone)]
pub struct ApuTopology {
    topo: Topology,
    kinds: Vec<ApuNodeKind>,
    /// CU nodes per quadrant (16 each).
    cus: Vec<Vec<NodeId>>,
    /// GPU L2 banks per quadrant (6 each).
    l2s: Vec<Vec<NodeId>>,
    /// L1I caches per quadrant (4 each).
    l1is: Vec<Vec<NodeId>>,
    /// All 16 directories.
    dirs: Vec<NodeId>,
    /// CPU core per quadrant.
    cpus: Vec<NodeId>,
    /// CPU LLC per quadrant.
    llcs: Vec<NodeId>,
}

/// Kind of the slot-1 component at a coordinate.
fn slot1_kind(c: Coord) -> ApuNodeKind {
    let (x, y) = (c.x, c.y);
    if x == 0 || x == APU_MESH - 1 {
        ApuNodeKind::Dir
    } else if (2..=5).contains(&x) && (2..=5).contains(&y) {
        ApuNodeKind::GpuL1i
    } else if (x == 1 || x == 6) && (y == 1 || y == 6) {
        ApuNodeKind::CpuCore
    } else if (x == 1 || x == 6) && (y == 2 || y == 5) {
        ApuNodeKind::CpuLlc
    } else {
        ApuNodeKind::GpuL2
    }
}

/// Quadrant (0–3) of a coordinate: `(x < 4, y < 4)` → NW=0, NE=1, SW=2,
/// SE=3.
pub fn quadrant_of(c: Coord) -> usize {
    let qx = usize::from(c.x >= APU_MESH / 2);
    let qy = usize::from(c.y >= APU_MESH / 2);
    qy * 2 + qx
}

impl ApuTopology {
    /// Builds the Fig. 6b topology.
    pub fn build() -> Self {
        let mut topo = Topology::mesh(APU_MESH, APU_MESH, 2).expect("static mesh dims");
        let mut kinds = Vec::new();
        let mut cus = vec![Vec::new(); NUM_QUADRANTS];
        let mut l2s = vec![Vec::new(); NUM_QUADRANTS];
        let mut l1is = vec![Vec::new(); NUM_QUADRANTS];
        let mut dirs = Vec::new();
        let mut cpus = vec![None; NUM_QUADRANTS];
        let mut llcs = vec![None; NUM_QUADRANTS];

        for r in 0..topo.num_routers() {
            let router = RouterId(r);
            let c = topo.coord(router);
            let q = quadrant_of(c);
            // Slot 0: a CU on every tile.
            let cu = topo
                .attach_node(router, 0, ApuNodeKind::Cu.dest_type())
                .expect("slot 0 free");
            kinds.push(ApuNodeKind::Cu);
            cus[q].push(cu);
            // Slot 1: the tile's second component.
            let kind = slot1_kind(c);
            let node = topo
                .attach_node(router, 1, kind.dest_type())
                .expect("slot 1 free");
            kinds.push(kind);
            match kind {
                ApuNodeKind::Dir => dirs.push(node),
                ApuNodeKind::GpuL2 => l2s[q].push(node),
                ApuNodeKind::GpuL1i => l1is[q].push(node),
                ApuNodeKind::CpuCore => cpus[q] = Some(node),
                ApuNodeKind::CpuLlc => llcs[q] = Some(node),
                ApuNodeKind::Cu => unreachable!("slot 1 never hosts a CU"),
            }
        }

        ApuTopology {
            topo,
            kinds,
            cus,
            l2s,
            l1is,
            dirs,
            cpus: cpus.into_iter().map(|c| c.expect("one CPU per quadrant")).collect(),
            llcs: llcs.into_iter().map(|c| c.expect("one LLC per quadrant")).collect(),
        }
    }

    /// The underlying mesh topology (consumed by the simulator).
    pub fn topology(&self) -> &Topology {
        &self.topo
    }

    /// Clones the underlying mesh for handing to a [`noc_sim::Simulator`].
    pub fn clone_topology(&self) -> Topology {
        self.topo.clone()
    }

    /// Kind of a node.
    ///
    /// # Panics
    ///
    /// Panics if the node id is out of range.
    pub fn kind(&self, node: NodeId) -> ApuNodeKind {
        self.kinds[node.index()]
    }

    /// Quadrant a node belongs to.
    pub fn quadrant(&self, node: NodeId) -> usize {
        let router = self.topo.node(node).router;
        quadrant_of(self.topo.coord(router))
    }

    /// CU nodes of a quadrant (16).
    pub fn cus(&self, quadrant: usize) -> &[NodeId] {
        &self.cus[quadrant]
    }

    /// GPU L2 banks of a quadrant (6, quadrant-private).
    pub fn l2_banks(&self, quadrant: usize) -> &[NodeId] {
        &self.l2s[quadrant]
    }

    /// L1I caches of a quadrant (4).
    pub fn l1is(&self, quadrant: usize) -> &[NodeId] {
        &self.l1is[quadrant]
    }

    /// All coherence directories (16, shared by all quadrants).
    pub fn dirs(&self) -> &[NodeId] {
        &self.dirs
    }

    /// The CPU core of a quadrant.
    pub fn cpu(&self, quadrant: usize) -> NodeId {
        self.cpus[quadrant]
    }

    /// The CPU LLC of a quadrant.
    pub fn llc(&self, quadrant: usize) -> NodeId {
        self.llcs[quadrant]
    }
}

impl Default for ApuTopology {
    fn default() -> Self {
        ApuTopology::build()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn component_counts_match_fig6() {
        let apu = ApuTopology::build();
        let count = |k: ApuNodeKind| apu.kinds.iter().filter(|&&x| x == k).count();
        assert_eq!(count(ApuNodeKind::Cu), 64);
        assert_eq!(count(ApuNodeKind::Dir), 16);
        assert_eq!(count(ApuNodeKind::GpuL1i), 16);
        assert_eq!(count(ApuNodeKind::GpuL2), 24);
        assert_eq!(count(ApuNodeKind::CpuCore), 4);
        assert_eq!(count(ApuNodeKind::CpuLlc), 4);
        assert_eq!(apu.topology().num_nodes(), 128);
    }

    #[test]
    fn every_router_has_six_ports() {
        let apu = ApuTopology::build();
        assert_eq!(apu.topology().ports_per_router(), 6);
    }

    #[test]
    fn quadrants_partition_components_evenly() {
        let apu = ApuTopology::build();
        for q in 0..NUM_QUADRANTS {
            assert_eq!(apu.cus(q).len(), 16, "quadrant {q} CUs");
            assert_eq!(apu.l2_banks(q).len(), 6, "quadrant {q} L2s");
            assert_eq!(apu.l1is(q).len(), 4, "quadrant {q} L1Is");
            // Every CU of the quadrant really lies inside it.
            for &cu in apu.cus(q) {
                assert_eq!(apu.quadrant(cu), q);
            }
            for &l2 in apu.l2_banks(q) {
                assert_eq!(apu.quadrant(l2), q);
            }
        }
        assert_eq!(apu.dirs().len(), 16);
    }

    #[test]
    fn directories_sit_on_the_edge_columns() {
        let apu = ApuTopology::build();
        for &d in apu.dirs() {
            let router = apu.topology().node(d).router;
            let c = apu.topology().coord(router);
            assert!(c.x == 0 || c.x == 7, "dir at {c}");
        }
    }

    #[test]
    fn l1is_fill_the_center_block() {
        let apu = ApuTopology::build();
        for q in 0..4 {
            for &n in apu.l1is(q) {
                let c = apu.topology().coord(apu.topology().node(n).router);
                assert!((2..=5).contains(&c.x) && (2..=5).contains(&c.y), "L1I at {c}");
            }
        }
    }

    #[test]
    fn quadrant_mapping_is_consistent() {
        assert_eq!(quadrant_of(Coord::new(0, 0)), 0);
        assert_eq!(quadrant_of(Coord::new(7, 0)), 1);
        assert_eq!(quadrant_of(Coord::new(0, 7)), 2);
        assert_eq!(quadrant_of(Coord::new(7, 7)), 3);
        let apu = ApuTopology::build();
        for q in 0..4 {
            assert_eq!(apu.quadrant(apu.cpu(q)), q);
            assert_eq!(apu.quadrant(apu.llc(q)), q);
        }
    }
}
