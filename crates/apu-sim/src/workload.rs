//! Workload model types — the SynFull-substitute statistical programs.
//!
//! APU-SynFull (paper §4.2) replays Markov-model-based statistical traffic
//! that preserves program phases, injection rates, source/destination
//! distributions and memory-instruction dependencies. Our substitute keeps
//! exactly those properties: a program is a phase machine (linear sequence
//! or Markov chain); each phase issues a budget of dependent memory
//! operations per CU under a bounded outstanding window (the MSHR/MLP
//! limit), with per-phase intensities, read/write mixes and hit rates.
//! Execution time emerges from dependency-limited progress, which is the
//! property arbitration quality affects.

/// Parameters of one program phase.
#[derive(Debug, Clone, PartialEq)]
pub struct PhaseSpec {
    /// Memory operations each CU must complete in this phase.
    pub ops_per_cu: u64,
    /// Per-cycle probability that an eligible CU issues a new operation.
    pub issue_prob: f64,
    /// Maximum outstanding operations per CU (memory-level parallelism).
    pub window: usize,
    /// Fraction of CU operations that are write-through stores.
    pub store_frac: f64,
    /// Fraction of CU operations that are instruction fetches (to L1I).
    pub ifetch_frac: f64,
    /// GPU L2 hit rate.
    pub l2_hit_rate: f64,
    /// L1I hit rate.
    pub l1i_hit_rate: f64,
    /// Memory operations the quadrant's CPU core must complete.
    pub cpu_ops: u64,
    /// Per-cycle CPU issue probability.
    pub cpu_issue_prob: f64,
    /// CPU LLC hit rate.
    pub llc_hit_rate: f64,
    /// Probability that an LLC miss requires a coherence probe before the
    /// directory responds (MOESI sharing).
    pub sharing_prob: f64,
}

impl PhaseSpec {
    /// A balanced default phase, useful as a starting point for builders.
    pub fn balanced() -> Self {
        PhaseSpec {
            ops_per_cu: 40,
            issue_prob: 0.2,
            window: 8,
            store_frac: 0.3,
            ifetch_frac: 0.1,
            l2_hit_rate: 0.6,
            l1i_hit_rate: 0.95,
            cpu_ops: 40,
            cpu_issue_prob: 0.2,
            llc_hit_rate: 0.5,
            sharing_prob: 0.2,
        }
    }

    /// Validates probability/ratio fields.
    ///
    /// # Panics
    ///
    /// Panics on out-of-range parameters — workload specs are static data,
    /// so violations are programming errors.
    pub fn validate(&self) {
        for (name, v) in [
            ("issue_prob", self.issue_prob),
            ("store_frac", self.store_frac),
            ("ifetch_frac", self.ifetch_frac),
            ("l2_hit_rate", self.l2_hit_rate),
            ("l1i_hit_rate", self.l1i_hit_rate),
            ("cpu_issue_prob", self.cpu_issue_prob),
            ("llc_hit_rate", self.llc_hit_rate),
            ("sharing_prob", self.sharing_prob),
        ] {
            assert!((0.0..=1.0).contains(&v), "{name} = {v} outside [0,1]");
        }
        assert!(
            self.store_frac + self.ifetch_frac <= 1.0,
            "store_frac + ifetch_frac must not exceed 1"
        );
        assert!(self.window > 0, "window must be positive");
    }
}

/// How a program moves between phases.
#[derive(Debug, Clone, PartialEq)]
pub enum PhaseFlow {
    /// Run each phase once, in order.
    Sequence,
    /// A Markov chain over phases: after finishing phase `i`, move to
    /// phase `j` with probability `transition[i][j]`; the program ends
    /// after `total_visits` phase executions (SynFull-style).
    Markov {
        /// Row-stochastic transition matrix, one row per phase.
        transition: Vec<Vec<f64>>,
        /// Total phase executions before the program completes.
        total_visits: usize,
    },
}

/// A complete statistical program ("model file" in APU-SynFull terms).
#[derive(Debug, Clone, PartialEq)]
pub struct WorkloadSpec {
    /// Benchmark name.
    pub name: String,
    /// The phases.
    pub phases: Vec<PhaseSpec>,
    /// Phase sequencing.
    pub flow: PhaseFlow,
    /// Broadcast invalidations to the quadrant's CUs at each phase entry
    /// (models write-through GPU caches invalidated at kernel launch, §4.1).
    pub kernel_invalidate: bool,
}

impl WorkloadSpec {
    /// Builds a single-phase sequential workload.
    pub fn single_phase(name: impl Into<String>, phase: PhaseSpec) -> Self {
        WorkloadSpec {
            name: name.into(),
            phases: vec![phase],
            flow: PhaseFlow::Sequence,
            kernel_invalidate: true,
        }
    }

    /// Validates the spec.
    ///
    /// # Panics
    ///
    /// Panics on empty phases, malformed transition matrices, or invalid
    /// phase parameters.
    pub fn validate(&self) {
        assert!(!self.phases.is_empty(), "workload needs at least one phase");
        for p in &self.phases {
            p.validate();
        }
        if let PhaseFlow::Markov {
            transition,
            total_visits,
        } = &self.flow
        {
            assert!(*total_visits > 0, "total_visits must be positive");
            assert_eq!(
                transition.len(),
                self.phases.len(),
                "one transition row per phase"
            );
            for (i, row) in transition.iter().enumerate() {
                assert_eq!(row.len(), self.phases.len(), "square transition matrix");
                let sum: f64 = row.iter().sum();
                assert!(
                    (sum - 1.0).abs() < 1e-9,
                    "transition row {i} sums to {sum}, not 1"
                );
                assert!(row.iter().all(|&p| p >= 0.0), "negative probability in row {i}");
            }
        }
    }

    /// Total phase executions this program will perform.
    pub fn total_phase_visits(&self) -> usize {
        match &self.flow {
            PhaseFlow::Sequence => self.phases.len(),
            PhaseFlow::Markov { total_visits, .. } => *total_visits,
        }
    }

    /// Approximate flit-injection intensity (flits/cycle/node) of the
    /// workload's busiest phase — used to classify workloads into the
    /// paper's Fig. 11 high-injection (> 0.05) and low-injection groups.
    pub fn peak_injection_estimate(&self) -> f64 {
        self.phases
            .iter()
            .map(|p| {
                // One request flit out, ~data flits back, spread over the
                // round trip; a coarse estimate of offered load per CU.
                let avg_flits = 1.0 + 4.0 * (1.0 - p.store_frac);
                p.issue_prob * avg_flits / 6.0
            })
            .fold(0.0, f64::max)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn balanced_phase_is_valid() {
        PhaseSpec::balanced().validate();
    }

    #[test]
    #[should_panic(expected = "outside [0,1]")]
    fn bad_probability_rejected() {
        let mut p = PhaseSpec::balanced();
        p.l2_hit_rate = 1.5;
        p.validate();
    }

    #[test]
    #[should_panic(expected = "must not exceed 1")]
    fn overlapping_fractions_rejected() {
        let mut p = PhaseSpec::balanced();
        p.store_frac = 0.7;
        p.ifetch_frac = 0.5;
        p.validate();
    }

    #[test]
    fn markov_flow_validation() {
        let spec = WorkloadSpec {
            name: "m".into(),
            phases: vec![PhaseSpec::balanced(), PhaseSpec::balanced()],
            flow: PhaseFlow::Markov {
                transition: vec![vec![0.5, 0.5], vec![0.2, 0.8]],
                total_visits: 5,
            },
            kernel_invalidate: false,
        };
        spec.validate();
        assert_eq!(spec.total_phase_visits(), 5);
    }

    #[test]
    #[should_panic(expected = "sums to")]
    fn non_stochastic_row_rejected() {
        let spec = WorkloadSpec {
            name: "m".into(),
            phases: vec![PhaseSpec::balanced()],
            flow: PhaseFlow::Markov {
                transition: vec![vec![0.5]],
                total_visits: 3,
            },
            kernel_invalidate: false,
        };
        spec.validate();
    }

    #[test]
    fn peak_injection_scales_with_issue_prob() {
        let mut hot = PhaseSpec::balanced();
        hot.issue_prob = 0.6;
        let hi = WorkloadSpec::single_phase("hi", hot);
        let lo = WorkloadSpec::single_phase("lo", {
            let mut p = PhaseSpec::balanced();
            p.issue_prob = 0.02;
            p
        });
        assert!(hi.peak_injection_estimate() > lo.peak_injection_estimate());
    }
}
