//! Property-based tests on the APU workload machinery and protocol engine.

use apu_sim::{
    quadrant_of, run_apu, ApuTopology, EngineConfig, PhaseFlow, PhaseSpec, WorkloadSpec,
};
use noc_sim::arbiters::FifoArbiter;
use noc_sim::Coord;
use proptest::prelude::*;

fn phase_strategy() -> impl Strategy<Value = PhaseSpec> {
    (
        1u64..6,
        0.05f64..0.6,
        1usize..12,
        0.0f64..0.5,
        0.0f64..0.3,
        0.0f64..1.0,
        0u64..4,
        0.0f64..0.4,
        0.0f64..1.0,
        0.0f64..0.5,
    )
        .prop_map(
            |(ops, issue, window, store, ifetch, l2hit, cpu_ops, cpu_issue, llc_hit, sharing)| {
                PhaseSpec {
                    ops_per_cu: ops,
                    issue_prob: issue,
                    window,
                    store_frac: store,
                    ifetch_frac: ifetch,
                    l2_hit_rate: l2hit,
                    l1i_hit_rate: 0.9,
                    cpu_ops,
                    cpu_issue_prob: cpu_issue,
                    llc_hit_rate: llc_hit,
                    sharing_prob: sharing,
                }
            },
        )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Any valid random workload runs to completion with the exact expected
    /// operation count, under any seed.
    #[test]
    fn random_workloads_complete_with_exact_op_counts(
        phases in proptest::collection::vec(phase_strategy(), 1..3),
        invalidate in any::<bool>(),
        seed in 0u64..1000,
    ) {
        let spec = WorkloadSpec {
            name: "prop".into(),
            phases: phases.clone(),
            flow: PhaseFlow::Sequence,
            kernel_invalidate: invalidate,
        };
        spec.validate();
        let r = run_apu(
            vec![spec; 4],
            Box::new(FifoArbiter::new()),
            EngineConfig::default(),
            seed,
            3_000_000,
        );
        prop_assert!(r.completed, "workload did not complete");
        let expected_per_quadrant: u64 = phases
            .iter()
            .map(|p| p.ops_per_cu * 16 + p.cpu_ops)
            .sum();
        // Ops completed are exact: the engine's op budget is deterministic.
        prop_assert_eq!(
            r.stats.delivered > 0,
            expected_per_quadrant > 0
        );
        prop_assert!(r.tail_exec as f64 >= r.avg_exec);
    }

    /// Quadrant assignment is consistent with coordinates for any mesh
    /// position.
    #[test]
    fn quadrants_partition_the_mesh(x in 0u16..8, y in 0u16..8) {
        let q = quadrant_of(Coord::new(x, y));
        prop_assert_eq!(q, usize::from(y >= 4) * 2 + usize::from(x >= 4));
    }
}

#[test]
fn topology_nodes_map_back_to_their_routers() {
    let apu = ApuTopology::build();
    let topo = apu.topology();
    for node in topo.nodes() {
        assert_eq!(topo.node_at(node.router, node.slot), Some(node.id));
        assert_eq!(apu.kind(node.id).dest_type(), node.dest_type);
    }
}
