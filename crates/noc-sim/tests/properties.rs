//! Property-based tests on the simulator's core invariants.

use proptest::prelude::*;

use noc_sim::arbiters::FifoArbiter;
use noc_sim::{
    route_xy, xy_path, Coord, DestType, InjectionRequest, MsgType, NodeId, Packet, RouteStep,
    SimConfig, Simulator, SplitMix64, Topology, TraceTraffic, TrafficSource, VcBuffer,
};

proptest! {
    /// X-Y routing always takes exactly the Manhattan distance in hops.
    #[test]
    fn xy_path_is_minimal(w in 2u16..10, h in 2u16..10, a in 0usize..100, b in 0usize..100) {
        let topo = Topology::uniform_mesh(w, h).unwrap();
        let n = topo.num_routers();
        let (src, dst) = (noc_sim::RouterId(a % n), noc_sim::RouterId(b % n));
        let path = xy_path(&topo, src, dst);
        let dist = topo.coord(src).manhattan(topo.coord(dst));
        prop_assert_eq!(path.len() as u32, dist + 1);
        // Consecutive routers in the path are mesh neighbors.
        for pair in path.windows(2) {
            let c0 = topo.coord(pair[0]);
            let c1 = topo.coord(pair[1]);
            prop_assert_eq!(c0.manhattan(c1), 1);
        }
    }

    /// Routing never proposes a direction off the mesh edge.
    #[test]
    fn routing_stays_on_mesh(w in 2u16..9, h in 2u16..9, here in 0usize..81, dst in 0usize..81) {
        let topo = Topology::uniform_mesh(w, h).unwrap();
        let n = topo.num_routers();
        let (here, dst) = (noc_sim::RouterId(here % n), noc_sim::RouterId(dst % n));
        match route_xy(&topo, here, dst, 0) {
            RouteStep::Forward(dir) => prop_assert!(topo.neighbor(here, dir).is_some()),
            RouteStep::Eject(slot) => prop_assert_eq!(slot, 0),
        }
    }

    /// SplitMix64 bounded output respects its bound for arbitrary seeds.
    #[test]
    fn splitmix_bounds(seed in any::<u64>(), bound in 1u64..1_000_000) {
        let mut rng = SplitMix64::new(seed);
        for _ in 0..100 {
            prop_assert!(rng.next_bounded(bound) < bound);
            let f = rng.next_f64();
            prop_assert!((0.0..1.0).contains(&f));
        }
    }

    /// VC buffers never leak or fabricate flits under arbitrary
    /// reserve/arrive/pop sequences.
    #[test]
    fn vc_buffer_invariants(ops in proptest::collection::vec(0u8..3, 1..80)) {
        let mut buf = VcBuffer::new(16);
        let mut pending: Vec<u32> = Vec::new(); // reserved lengths awaiting arrival
        let mut cycle = 0u64;
        for op in ops {
            cycle += 1;
            match op {
                0 => {
                    // Try to reserve a random-ish length 1..=5.
                    let len = (cycle % 5 + 1) as u32;
                    if buf.can_reserve(len) {
                        buf.reserve(len);
                        pending.push(len);
                    }
                }
                1 => {
                    if let Some(len) = pending.pop() {
                        let mut p = Packet::test_packet();
                        p.len_flits = len;
                        buf.push_arrival(p, cycle);
                    }
                }
                _ => {
                    buf.pop();
                }
            }
            let occupied = buf.used_flits() + buf.reserved_flits();
            prop_assert!(occupied <= buf.capacity_flits());
            prop_assert_eq!(buf.free_flits(), buf.capacity_flits() - occupied);
        }
    }

    /// For every delivered packet: hops == distance (minimal routing),
    /// latency is at least the zero-load bound, and the packet count
    /// balances.
    #[test]
    fn simulation_conserves_and_routes_minimally(
        seed in any::<u64>(),
        events in proptest::collection::vec((0u64..200, 0usize..16, 0usize..16, 1u32..5), 1..60)
    ) {
        let _ = seed;
        let mut evs: Vec<(u64, InjectionRequest)> = events
            .into_iter()
            .filter(|(_, s, d, _)| s != d)
            .map(|(cycle, src, dst, len)| {
                (cycle, InjectionRequest {
                    src: NodeId(src),
                    dst: NodeId(dst),
                    vnet: (src + dst) % 3,
                    msg_type: MsgType::Request,
                    dst_type: DestType::Core,
                    len_flits: len,
                    tag: 0,
                })
            })
            .collect();
        evs.sort_by_key(|(c, _)| *c);
        prop_assume!(!evs.is_empty());
        let expected = evs.len() as u64;

        /// Records per-delivery invariants.
        #[derive(Debug)]
        struct Recorder {
            inner: TraceTraffic,
            ok: bool,
        }
        impl TrafficSource for Recorder {
            fn pull(&mut self, cycle: u64, net: &noc_sim::NetSnapshot) -> Vec<InjectionRequest> {
                self.inner.pull(cycle, net)
            }
            fn on_delivered(&mut self, p: &Packet, cycle: u64) {
                if p.hop_count != p.distance || cycle <= p.create_cycle {
                    self.ok = false;
                }
            }
            fn is_done(&self, cycle: u64) -> bool {
                self.inner.is_done(cycle)
            }
        }

        let topo = Topology::uniform_mesh(4, 4).unwrap();
        let cfg = SimConfig::synthetic(4, 4);
        let traffic = Recorder { inner: TraceTraffic::new(evs), ok: true };
        let mut sim = Simulator::new(topo, cfg, Box::new(FifoArbiter::new()), traffic).unwrap();
        let done = sim.run_until_done(100_000);
        prop_assert!(done, "finite trace must drain");
        prop_assert!(sim.traffic().ok, "hop/latency invariant violated");
        prop_assert_eq!(sim.stats().delivered, expected);
        prop_assert_eq!(sim.in_flight(), 0);
    }

    /// Manhattan distance is a metric (triangle inequality) on the mesh.
    #[test]
    fn manhattan_triangle_inequality(
        ax in 0u16..16, ay in 0u16..16,
        bx in 0u16..16, by in 0u16..16,
        cx in 0u16..16, cy in 0u16..16,
    ) {
        let (a, b, c) = (Coord::new(ax, ay), Coord::new(bx, by), Coord::new(cx, cy));
        prop_assert!(a.manhattan(c) <= a.manhattan(b) + b.manhattan(c));
    }
}
