//! Property-based tests on the fault-injection subsystem.
//!
//! Two invariants hold for *any* generated fault plan, not just the
//! hand-written ones in the unit tests:
//!
//! * **Termination & accounting** — a simulation under an arbitrary
//!   `FaultPlan::generate` plan always runs to its cycle budget, and
//!   every transient-fault drop reserves exactly the credits it later
//!   returns (`fault_credits_reconciled == link_fault_drops`).
//! * **Zero-fault identity** — an *empty* plan is indistinguishable,
//!   bit for bit, from running with no plan installed at all.

use proptest::prelude::*;

use noc_sim::arbiters::FifoArbiter;
use noc_sim::{FaultPlan, Pattern, SimConfig, Simulator, SyntheticTraffic, Topology};

/// A 4x4 uniform-random sim, the resilience sweep's smoke shape.
fn uniform_sim(seed: u64, rate: f64) -> Simulator<SyntheticTraffic> {
    let topo = Topology::uniform_mesh(4, 4).unwrap();
    let cfg = SimConfig::synthetic(4, 4);
    let traffic = SyntheticTraffic::new(&topo, Pattern::UniformRandom, rate, 3, seed);
    Simulator::new(topo, cfg, Box::new(FifoArbiter::new()), traffic).unwrap()
}

proptest! {
    // Each case runs a few thousand simulated cycles; keep the count
    // suite-friendly while still covering a spread of plans.
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Any generated plan terminates (the sim reaches its budget rather
    /// than wedging the event loop) and reconciles every credit it
    /// reserved for a faulted grant.
    #[test]
    fn any_generated_plan_terminates_and_reconciles_credits(
        plan_seed in any::<u64>(),
        traffic_seed in any::<u64>(),
        intensity in 0.0f64..4.0,
    ) {
        let horizon = 3_000u64;
        let topo = Topology::uniform_mesh(4, 4).unwrap();
        let plan = FaultPlan::generate(plan_seed, intensity, &topo, horizon);
        prop_assert!(plan.validate(&topo).is_ok(), "generated plan must be valid");

        let mut sim = uniform_sim(traffic_seed, 0.20);
        sim.set_fault_plan(&plan);
        sim.run(horizon);
        let s = sim.stats();
        prop_assert_eq!(s.cycles, horizon, "sim must run to its full budget");
        // Generated plans target mesh ports only, so every drop reserved
        // the packet's flit count downstream; and every transient window
        // closes by 3/4·horizon, leaving ample time for the last
        // reconciliation message to land before the cutoff.
        prop_assert!(
            s.fault_credits_reserved >= s.link_fault_drops,
            "mesh-port drops must each reserve at least one credit flit"
        );
        prop_assert_eq!(
            s.fault_credits_reconciled, s.fault_credits_reserved,
            "every credit reserved by a faulted transmission must come back"
        );
    }

    /// An empty plan (`FaultPlan::empty`) is bit-identical to no plan:
    /// the entire stats block — latencies, per-node counters, fault
    /// fields — matches a plain run exactly.
    #[test]
    fn empty_plan_is_bit_identical_to_no_plan(
        plan_seed in any::<u64>(),
        traffic_seed in any::<u64>(),
    ) {
        let mut plain = uniform_sim(traffic_seed, 0.15);
        plain.run(2_000);

        let mut empty = uniform_sim(traffic_seed, 0.15);
        empty.set_fault_plan(&FaultPlan::empty(plan_seed));
        empty.run(2_000);

        prop_assert_eq!(
            format!("{:?}", plain.stats()),
            format!("{:?}", empty.stats()),
            "an empty fault plan must not perturb the simulation"
        );
    }
}
