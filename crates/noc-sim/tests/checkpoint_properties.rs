//! Property-based tests for simulator checkpoint/restore.
//!
//! The contract under test: a run split at *any* cycle boundary through
//! `checkpoint()` → JSON text → `SimCheckpoint::from_json` → `restore()`
//! (i.e. surviving a process restart) is bit-identical to the unsplit
//! run — same statistics (including the delivery-ordered latency list),
//! and the same *complete* simulator state, pinned by comparing the
//! content hash of a second checkpoint taken at the horizon.

use proptest::prelude::*;

use noc_sim::arbiters::{FifoArbiter, RoundRobinArbiter};
use noc_sim::{
    Arbiter, BufferController, FaultPlan, Pattern, SimCheckpoint, SimConfig, Simulator,
    SyntheticTraffic, Topology, VcUsage, ViolationKind,
};

/// A deterministic stateful test controller: each epoch it advances a
/// counter and withholds `(counter + bi) % 3` flits from buffer `bi`.
/// The counter is the mutable state that must survive a checkpoint for a
/// split run to keep proposing the same squeeze pattern.
struct PulseController {
    epoch: u64,
    counter: u64,
}

impl PulseController {
    fn new(epoch: u64) -> Self {
        Self { epoch, counter: 0 }
    }
}

impl BufferController for PulseController {
    fn name(&self) -> String {
        "pulse-test".into()
    }
    fn control_epoch(&self) -> u64 {
        self.epoch
    }
    fn reallocate(&mut self, _cycle: u64, usage: &[VcUsage], withhold: &mut [u32]) {
        self.counter += 1;
        for (bi, w) in withhold.iter_mut().enumerate().take(usage.len()) {
            *w = ((self.counter + bi as u64) % 3) as u32;
        }
    }
    fn checkpoint_state(&self) -> Option<String> {
        Some(self.counter.to_string())
    }
    fn restore_state(&mut self, state: &str) -> Result<(), String> {
        self.counter = state
            .parse()
            .map_err(|e| format!("pulse-test state {state:?}: {e}"))?;
        Ok(())
    }
}

fn mesh_sim(seed: u64, rate: f64, arbiter: Box<dyn Arbiter>) -> Simulator<SyntheticTraffic> {
    let topo = Topology::uniform_mesh(4, 4).unwrap();
    let cfg = SimConfig::synthetic(4, 4);
    let traffic = SyntheticTraffic::new(&topo, Pattern::UniformRandom, rate, cfg.num_vnets, seed);
    Simulator::new(topo, cfg, arbiter, traffic).unwrap()
}

fn restore_sim(seed: u64, arbiter: Box<dyn Arbiter>, ck: &SimCheckpoint) -> Simulator<SyntheticTraffic> {
    let topo = Topology::uniform_mesh(4, 4).unwrap();
    let cfg = SimConfig::synthetic(4, 4);
    let traffic = SyntheticTraffic::new(&topo, Pattern::UniformRandom, 0.15, cfg.num_vnets, seed);
    Simulator::restore(topo, cfg, arbiter, traffic, ck).unwrap()
}

/// Runs `horizon` cycles split at `split`, round-tripping the checkpoint
/// through its JSON text (as a file on disk would), and returns the final
/// stats debug string plus the content hash of a checkpoint at the end.
fn split_run(
    seed: u64,
    split: u64,
    horizon: u64,
    make_arb: &dyn Fn() -> Box<dyn Arbiter>,
    plan: Option<&FaultPlan>,
    checker: bool,
) -> (String, String) {
    let mut sim = mesh_sim(seed, 0.15, make_arb());
    if let Some(p) = plan {
        sim.set_fault_plan(p);
    }
    if checker {
        sim.enable_invariant_checker();
    }
    sim.run(split);
    let ck = sim.checkpoint().unwrap();
    // Simulate a process restart: only the serialized text survives.
    let text = ck.to_json().to_string();
    drop(sim);
    let ck = SimCheckpoint::from_json(&text).unwrap();
    let mut sim = restore_sim(seed, make_arb(), &ck);
    assert_eq!(sim.cycle(), split);
    sim.run(horizon - split);
    if checker {
        assert!(
            sim.check_invariants().is_ok(),
            "restored run must stay invariant-clean"
        );
    }
    let final_ck = sim.checkpoint().unwrap();
    (format!("{:?}", sim.stats()), final_ck.content_hash())
}

fn unsplit_run(
    seed: u64,
    horizon: u64,
    make_arb: &dyn Fn() -> Box<dyn Arbiter>,
    plan: Option<&FaultPlan>,
    checker: bool,
) -> (String, String) {
    let mut sim = mesh_sim(seed, 0.15, make_arb());
    if let Some(p) = plan {
        sim.set_fault_plan(p);
    }
    if checker {
        sim.enable_invariant_checker();
    }
    sim.run(horizon);
    if checker {
        assert!(sim.check_invariants().is_ok());
    }
    let ck = sim.checkpoint().unwrap();
    (format!("{:?}", sim.stats()), ck.content_hash())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Splitting a fault-free run at a random cycle boundary is
    /// bit-identical to not splitting, for both a stateless (FIFO) and a
    /// stateful (round-robin pointer) arbiter.
    #[test]
    fn split_run_is_bit_identical(seed in any::<u64>(), split in 0u64..1_501) {
        let horizon = 1_500u64;
        let fifo: Box<dyn Fn() -> Box<dyn Arbiter>> = Box::new(|| Box::new(FifoArbiter::new()));
        let rr: Box<dyn Fn() -> Box<dyn Arbiter>> = Box::new(|| Box::new(RoundRobinArbiter::new()));
        for make_arb in [&*fifo, &*rr] {
            let (stats_a, hash_a) = split_run(seed, split, horizon, make_arb, None, false);
            let (stats_b, hash_b) = unsplit_run(seed, horizon, make_arb, None, false);
            prop_assert_eq!(stats_a, stats_b);
            prop_assert_eq!(hash_a, hash_b);
        }
    }

    /// The same split identity holds with an active fault runtime (retry
    /// backoff state, credit reconciliation in flight) and the runtime
    /// invariant checker armed on both sides of the split.
    #[test]
    fn split_with_faults_and_checker_is_bit_identical(
        seed in any::<u64>(),
        plan_seed in any::<u64>(),
        split in 0u64..2_001,
        intensity in 0.5f64..3.0,
    ) {
        let horizon = 2_000u64;
        let topo = Topology::uniform_mesh(4, 4).unwrap();
        let plan = FaultPlan::generate(plan_seed, intensity, &topo, horizon);
        let rr: Box<dyn Fn() -> Box<dyn Arbiter>> = Box::new(|| Box::new(RoundRobinArbiter::new()));
        let (stats_a, hash_a) = split_run(seed, split, horizon, &*rr, Some(&plan), true);
        let (stats_b, hash_b) = unsplit_run(seed, horizon, &*rr, Some(&plan), true);
        prop_assert_eq!(stats_a, stats_b);
        prop_assert_eq!(hash_a, hash_b);
    }

    /// A double split (checkpoint, resume, checkpoint again later) also
    /// matches — resumability composes.
    #[test]
    fn double_split_composes(seed in any::<u64>(), a in 0u64..601, b in 0u64..601) {
        let (first, second) = (a.min(b), a.max(b));
        let horizon = 1_200u64;
        let rr: Box<dyn Fn() -> Box<dyn Arbiter>> = Box::new(|| Box::new(RoundRobinArbiter::new()));

        let mut sim = mesh_sim(seed, 0.15, Box::new(RoundRobinArbiter::new()));
        sim.run(first);
        let ck = SimCheckpoint::from_json(sim.checkpoint().unwrap().to_json()).unwrap();
        let mut sim = restore_sim(seed, Box::new(RoundRobinArbiter::new()), &ck);
        sim.run(second - first);
        let ck = SimCheckpoint::from_json(sim.checkpoint().unwrap().to_json()).unwrap();
        let mut sim = restore_sim(seed, Box::new(RoundRobinArbiter::new()), &ck);
        sim.run(horizon - second);
        let twice = (format!("{:?}", sim.stats()), sim.checkpoint().unwrap().content_hash());

        let straight = unsplit_run(seed, horizon, &*rr, None, false);
        prop_assert_eq!(twice, straight);
    }

    /// The split identity holds with a *stateful buffer controller*
    /// installed alongside an active fault runtime and the checker: the
    /// controller's counter, actuated withholds, and epoch tally all
    /// round-trip through the checkpoint, so the squeeze schedule after
    /// the split matches the unsplit run exactly. Restores go through
    /// `set_buffer_controller` + `restore_checkpoint`, mirroring how the
    /// experiment service resumes controller-bearing jobs.
    #[test]
    fn split_with_buffer_controller_is_bit_identical(
        seed in any::<u64>(),
        plan_seed in any::<u64>(),
        split in 0u64..1_501,
        epoch in 1u64..100,
    ) {
        let horizon = 1_500u64;
        let topo = Topology::uniform_mesh(4, 4).unwrap();
        let plan = FaultPlan::generate(plan_seed, 1.0, &topo, horizon);

        let mut sim = mesh_sim(seed, 0.15, Box::new(RoundRobinArbiter::new()));
        sim.set_buffer_controller(Box::new(PulseController::new(epoch)));
        sim.set_fault_plan(&plan);
        sim.enable_invariant_checker();
        sim.run(split);
        let text = sim.checkpoint().unwrap().to_json().to_string();
        drop(sim);

        let ck = SimCheckpoint::from_json(&text).unwrap();
        let mut sim = mesh_sim(seed, 0.15, Box::new(RoundRobinArbiter::new()));
        sim.set_buffer_controller(Box::new(PulseController::new(epoch)));
        sim.restore_checkpoint(&ck).unwrap();
        prop_assert_eq!(sim.cycle(), split);
        sim.run(horizon - split);
        prop_assert!(sim.check_invariants().is_ok());
        let split_out = (format!("{:?}", sim.stats()), sim.checkpoint().unwrap().content_hash());

        let mut sim = mesh_sim(seed, 0.15, Box::new(RoundRobinArbiter::new()));
        sim.set_buffer_controller(Box::new(PulseController::new(epoch)));
        sim.set_fault_plan(&plan);
        sim.enable_invariant_checker();
        sim.run(horizon);
        prop_assert!(sim.check_invariants().is_ok());
        let straight = (format!("{:?}", sim.stats()), sim.checkpoint().unwrap().content_hash());

        prop_assert_eq!(split_out, straight);
    }
}

/// A controller that corrupts the credit books directly (modelled by the
/// test-only `debug_misbehaving_controller` hook) is flagged by the
/// occupancy-integrity sweep the same cycle — while a well-behaved
/// controller driving the exact same run stays violation-free. This pins
/// the safety-by-construction claim: the withhold interface cannot
/// corrupt accounting, only book-tampering can.
#[test]
fn occupancy_invariant_catches_misbehaving_controller() {
    let run = |misbehave: Option<u64>| {
        let mut sim = mesh_sim(17, 0.15, Box::new(FifoArbiter::new()));
        sim.set_buffer_controller(Box::new(PulseController::new(8)));
        sim.enable_invariant_checker();
        if let Some(at) = misbehave {
            sim.debug_misbehaving_controller(at);
        }
        sim.run(600);
        sim
    };

    let clean = run(None);
    assert_eq!(
        clean.total_invariant_violations(),
        0,
        "a withhold-interface controller must stay violation-free"
    );

    let corrupt = run(Some(250));
    assert!(corrupt.total_invariant_violations() > 0, "corruption went undetected");
    let first = &corrupt.invariant_violations()[0];
    assert_eq!(first.cycle, 250, "must be caught the same cycle it lands");
    assert!(
        matches!(first.kind, ViolationKind::OccupancyMismatch { .. }),
        "wrong violation class: {first}"
    );
}

/// A checkpoint from a controller-bearing run refuses to restore onto a
/// simulator without the controller installed (and vice versa) — the
/// controller is construction-time input, like the arbiter.
#[test]
fn restore_rejects_controller_mismatch() {
    let mut sim = mesh_sim(9, 0.15, Box::new(FifoArbiter::new()));
    sim.set_buffer_controller(Box::new(PulseController::new(16)));
    sim.run(200);
    let ck = sim.checkpoint().unwrap();

    // Controller-bearing checkpoint, plain restore target.
    let mut plain = mesh_sim(9, 0.15, Box::new(FifoArbiter::new()));
    let err = plain.restore_checkpoint(&ck).unwrap_err();
    assert!(err.contains("controller"), "{err}");

    // Plain checkpoint, controller-bearing restore target.
    let mut sim = mesh_sim(9, 0.15, Box::new(FifoArbiter::new()));
    sim.run(200);
    let plain_ck = sim.checkpoint().unwrap();
    let mut with_ctl = mesh_sim(9, 0.15, Box::new(FifoArbiter::new()));
    with_ctl.set_buffer_controller(Box::new(PulseController::new(16)));
    let err = with_ctl.restore_checkpoint(&plain_ck).unwrap_err();
    assert!(err.contains("controller"), "{err}");
}

#[test]
fn checkpoint_refuses_diagnostic_state() {
    let mut sim = mesh_sim(7, 0.15, Box::new(FifoArbiter::new()));
    sim.enable_grant_log();
    assert!(sim.checkpoint().unwrap_err().contains("grant log"));

    let mut sim = mesh_sim(7, 0.15, Box::new(FifoArbiter::new()));
    sim.enable_packet_trace(64);
    assert!(sim.checkpoint().unwrap_err().contains("trac"));
}

#[test]
fn restore_rejects_mismatched_shapes() {
    let mut sim = mesh_sim(3, 0.15, Box::new(FifoArbiter::new()));
    sim.run(100);
    let ck = sim.checkpoint().unwrap();

    // Wrong arbiter type.
    let topo = Topology::uniform_mesh(4, 4).unwrap();
    let cfg = SimConfig::synthetic(4, 4);
    let traffic = SyntheticTraffic::new(&topo, Pattern::UniformRandom, 0.15, cfg.num_vnets, 3);
    let err = Simulator::restore(topo, cfg, Box::new(RoundRobinArbiter::new()), traffic, &ck)
        .map(|_| ())
        .unwrap_err();
    assert!(err.contains("arbiter"), "{err}");

    // Wrong topology shape.
    let topo = Topology::uniform_mesh(3, 3).unwrap();
    let cfg = SimConfig::synthetic(3, 3);
    let traffic = SyntheticTraffic::new(&topo, Pattern::UniformRandom, 0.15, cfg.num_vnets, 3);
    let err = Simulator::restore(topo, cfg, Box::new(FifoArbiter::new()), traffic, &ck)
        .map(|_| ())
        .unwrap_err();
    assert!(err.contains("mismatch"), "{err}");
}

#[test]
fn checkpoint_hash_is_content_addressed() {
    let mut a = mesh_sim(11, 0.15, Box::new(FifoArbiter::new()));
    let mut b = mesh_sim(11, 0.15, Box::new(FifoArbiter::new()));
    a.run(500);
    b.run(500);
    assert_eq!(
        a.checkpoint().unwrap().content_hash(),
        b.checkpoint().unwrap().content_hash(),
        "identical runs must checkpoint to identical hashes"
    );
    b.run(1);
    assert_ne!(
        a.checkpoint().unwrap().content_hash(),
        b.checkpoint().unwrap().content_hash(),
        "different states must hash differently"
    );
}

#[test]
fn simulated_cycles_counter_advances_with_run() {
    let before = noc_sim::simulated_cycles();
    let mut sim = mesh_sim(5, 0.10, Box::new(FifoArbiter::new()));
    sim.run(123);
    let after = noc_sim::simulated_cycles();
    assert!(
        after >= before + 123,
        "counter must advance by at least the cycles run ({before} -> {after})"
    );
}
