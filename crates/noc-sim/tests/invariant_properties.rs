//! Property-based tests on the runtime invariant checker.
//!
//! Two sides of the contract:
//!
//! * **Soundness of the simulator** — for arbitrary traffic seeds, rates,
//!   patterns, and generated fault plans, a checked run reports *zero*
//!   violations: the engine really conserves messages and credits.
//! * **No observer effect** — enabling the checker never changes the
//!   simulation: the full stats block is bit-identical with and without
//!   it, under faults or not.
//!
//! A third test arms the deliberate test-only credit leak and asserts the
//! checker catches it for any seed — the checker is not vacuously green.

use proptest::prelude::*;

use noc_sim::arbiters::FifoArbiter;
use noc_sim::{
    FaultPlan, Pattern, SimConfig, Simulator, SyntheticTraffic, Topology, ViolationKind,
};

fn patterned_sim(seed: u64, rate: f64, pattern: Pattern) -> Simulator<SyntheticTraffic> {
    let topo = Topology::uniform_mesh(4, 4).unwrap();
    let cfg = SimConfig::synthetic(4, 4);
    let traffic = SyntheticTraffic::new(&topo, pattern, rate, 3, seed);
    Simulator::new(topo, cfg, Box::new(FifoArbiter::new()), traffic).unwrap()
}

fn pattern_of(idx: u32) -> Pattern {
    match idx % 4 {
        0 => Pattern::UniformRandom,
        1 => Pattern::Transpose,
        2 => Pattern::BitComplement,
        _ => Pattern::Tornado,
    }
}

proptest! {
    // Each case simulates a few thousand cycles; keep counts suite-friendly.
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Arbitrary (seed, rate, pattern, fault plan) scenarios run clean
    /// under the checker.
    #[test]
    fn checked_runs_report_zero_violations(
        traffic_seed in any::<u64>(),
        plan_seed in any::<u64>(),
        rate in 0.02f64..0.5,
        pattern_idx in any::<u32>(),
        intensity in 0.0f64..2.0,
    ) {
        let mut sim = patterned_sim(traffic_seed, rate, pattern_of(pattern_idx));
        sim.enable_invariant_checker();
        if intensity > 0.0 {
            let topo = Topology::uniform_mesh(4, 4).unwrap();
            sim.set_fault_plan(&FaultPlan::generate(plan_seed, intensity, &topo, 2_500));
        }
        sim.run(2_500);
        prop_assert_eq!(
            sim.total_invariant_violations(), 0,
            "violations: {:?}", sim.invariant_violations()
        );
    }

    /// The checker is a pure observer: stats are bit-identical with it
    /// on and off.
    #[test]
    fn checker_never_perturbs_the_simulation(
        traffic_seed in any::<u64>(),
        rate in 0.02f64..0.4,
        pattern_idx in any::<u32>(),
    ) {
        let mut plain = patterned_sim(traffic_seed, rate, pattern_of(pattern_idx));
        plain.run(2_000);

        let mut checked = patterned_sim(traffic_seed, rate, pattern_of(pattern_idx));
        checked.enable_invariant_checker();
        checked.run(2_000);

        prop_assert_eq!(
            format!("{:?}", plain.stats()),
            format!("{:?}", checked.stats()),
            "enabling the checker changed the simulation"
        );
    }

    /// The deliberate credit leak is detected for any seed — the checker
    /// has teeth.
    #[test]
    fn seeded_credit_leak_is_always_caught(traffic_seed in any::<u64>()) {
        let mut sim = patterned_sim(traffic_seed, 0.15, Pattern::UniformRandom);
        sim.enable_invariant_checker();
        sim.debug_inject_credit_leak(200);
        sim.run(1_000);
        prop_assert!(
            sim.invariant_violations().iter().any(
                |v| matches!(v.kind, ViolationKind::CreditMismatch { .. })
            ),
            "leak went undetected; violations: {:?}",
            sim.invariant_violations()
        );
    }
}
