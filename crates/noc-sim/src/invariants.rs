//! Opt-in runtime invariant checking for the simulation engine.
//!
//! The checker maintains a *redundant* set of books alongside the
//! simulator's own accounting — message counts, per-(buffer, VC) credit
//! reservations, delivered-packet identities — and cross-checks the two
//! every cycle. Any divergence is recorded as a structured
//! [`InvariantViolation`] (never a panic), so a conformance sweep can run
//! thousands of randomized scenarios and report every failure with enough
//! context to reproduce it.
//!
//! The checker is held behind an `Option` on [`crate::Simulator`], exactly
//! like the fault runtime: with the checker disabled the simulator takes
//! the same branches it always did and is bit-identical to a build without
//! this module.
//!
//! Checked invariants (see ARCHITECTURE.md for the recipe to add one):
//!
//! * **Message conservation** — every created packet is delivered, in
//!   flight, or still queued at its source: `created = delivered +
//!   in-flight + queued`, where fault-dropped transmissions keep their
//!   packet queued (transient faults corrupt the wire, not the buffer).
//! * **Counter agreement** — the simulator's [`crate::SimStats`] counters
//!   match the checker's independently maintained ones.
//! * **Credit conservation** — each input VC's `reserved_flits` equals the
//!   reservations the checker observed (grants + fault reserves − arrivals
//!   − reconciliations) for that exact buffer.
//! * **No duplicate delivery** — a packet id is delivered at most once.
//! * **Per-flow in-order delivery** — under any deterministic routing kind
//!   (X-Y, torus dimension-order, ring traversal, shortest-path table),
//!   packets of the same (source, destination, vnet) flow are delivered in
//!   creation order (adaptive routing may legitimately reorder, so the
//!   check is keyed off [`crate::RoutingKind::is_deterministic`]).
//! * **Occupancy bounds** — `used + reserved ≤ capacity` against the *raw*
//!   buffer capacity, even while the advertised credit is squeezed by a
//!   VC-shrink fault or a [`crate::BufferController`] withhold (both
//!   learned decision points — arbitration and buffer control — are
//!   audited by the same books), and `used_flits` equals the flits of the
//!   packets actually queued.
//! * **Age monotonicity** — arrival cycles are non-decreasing from head to
//!   tail of every VC (FIFO order), and never in the future.

use std::collections::HashMap;

use crate::buffer::VcView;
use crate::packet::Packet;
use crate::stats::SimStats;

/// Cap on *recorded* violations, so a systematically broken run cannot
/// balloon memory; [`InvariantChecker::total_violations`] keeps counting
/// past the cap.
const MAX_RECORDED: usize = 64;

/// What went wrong, with the numbers that disagreed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ViolationKind {
    /// `created != delivered + in_flight + queued` over the whole run.
    MessageConservation {
        /// Packets created since the simulation started (checker's count).
        created: u64,
        /// Packets delivered since the simulation started (checker's count).
        delivered: u64,
        /// Packets inside the network at the time of the check.
        in_flight: u64,
        /// Packets waiting in source injection queues.
        queued: u64,
    },
    /// A [`crate::SimStats`] counter disagrees with the checker's
    /// independently maintained count (both relative to the last
    /// [`crate::Simulator::reset_stats`]).
    CounterDrift {
        /// Name of the drifting counter.
        counter: &'static str,
        /// The simulator's value.
        simulator: u64,
        /// The checker's value.
        checker: u64,
    },
    /// A packet id was delivered more than once.
    DuplicateDelivery {
        /// The twice-delivered packet id.
        packet_id: u64,
    },
    /// A packet of a (src, dst, vnet) flow was delivered before an earlier
    /// packet of the same flow (only checked under deterministic routing).
    OutOfOrderDelivery {
        /// The packet that arrived out of order.
        packet_id: u64,
        /// The later-created flow member that was delivered first.
        after_id: u64,
    },
    /// A buffer's `reserved_flits` does not equal the reservations the
    /// checker observed for it (a credit leak or double-return).
    CreditMismatch {
        /// Reserved flits the checker expected (negative = more returns
        /// than reservations were observed).
        expected: i64,
        /// Reserved flits the buffer actually reports.
        actual: u32,
    },
    /// A buffer holds more flits (stored + promised) than its capacity.
    BufferOverflow {
        /// Stored flits.
        used: u32,
        /// Reserved (promised) flits.
        reserved: u32,
        /// Hardware capacity in flits.
        capacity: u32,
    },
    /// A buffer's incremental `used_flits` count disagrees with the flits
    /// of the packets actually in its queue.
    OccupancyMismatch {
        /// The buffer's incremental count.
        used: u32,
        /// Sum of queued packet lengths.
        queued: u32,
    },
    /// Arrival cycles regress from head to tail of a VC queue (FIFO order
    /// broken), or an arrival is stamped in the future.
    AgeRegression {
        /// Arrival cycle of the earlier (closer to head) packet.
        earlier: u64,
        /// Arrival cycle of the later packet (or the current cycle, when a
        /// future-stamped arrival is reported).
        later: u64,
    },
    /// More fault credits were reconciled than were ever reserved.
    FaultCreditImbalance {
        /// Credits reserved by fault-corrupted transmissions.
        reserved: u64,
        /// Credits returned by reconciliation messages.
        reconciled: u64,
    },
    /// A response-class message was delivered with no live transaction to
    /// receive it (the request it answers was never issued, or the
    /// transaction already dissolved). Reported by the `apu-sim` engine
    /// checker.
    ResponseWithoutRequest {
        /// Transaction tag carried by the orphaned message.
        tag: u64,
        /// Virtual-network index the message arrived on.
        vnet: usize,
    },
    /// A message arrived on a virtual network that its transaction's state
    /// machine cannot accept. Reported by the `apu-sim` engine checker.
    ProtocolViolation {
        /// Human-readable description of the illegal (vnet, txn) pairing.
        detail: String,
    },
    /// Per-virtual-network conservation failed: messages sent into the
    /// network on a vnet do not match messages delivered from it (plus
    /// any still in flight at the horizon). Reported by the `apu-sim`
    /// engine checker.
    VnetConservation {
        /// Virtual-network index.
        vnet: usize,
        /// Messages the engine handed to the simulator on this vnet.
        sent: u64,
        /// Messages the simulator delivered on this vnet.
        delivered: u64,
    },
}

/// One invariant failure: where and when it was detected, and the numbers
/// that disagreed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct InvariantViolation {
    /// Simulation cycle at which the violation was detected.
    pub cycle: u64,
    /// Where it was detected (a buffer coordinate, or `"global"`).
    pub location: String,
    /// What went wrong.
    pub kind: ViolationKind,
}

impl std::fmt::Display for InvariantViolation {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "cycle {} at {}: {:?}", self.cycle, self.location, self.kind)
    }
}

/// Simulation-level error: the invariant checker found violations.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SimError {
    /// One or more invariants were violated during the run. The vector is
    /// capped (see [`InvariantChecker::total_violations`] for the full
    /// count) and ordered by detection cycle.
    InvariantsViolated(Vec<InvariantViolation>),
}

impl std::fmt::Display for SimError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SimError::InvariantsViolated(vs) => {
                write!(f, "{} invariant violation(s)", vs.len())?;
                if let Some(first) = vs.first() {
                    write!(f, "; first: {first}")?;
                }
                Ok(())
            }
        }
    }
}

impl std::error::Error for SimError {}

/// The mutable portion of an [`InvariantChecker`], lifted out for simulator
/// checkpoints. Field order mirrors the checker itself; `last_in_flow` is a
/// sorted vector so the snapshot (and therefore the checkpoint hash) is
/// deterministic regardless of `HashMap` iteration order.
#[derive(Debug, Clone, PartialEq)]
pub(crate) struct CheckerSnapshot {
    pub(crate) created: u64,
    pub(crate) delivered: u64,
    pub(crate) created_at_reset: u64,
    pub(crate) delivered_at_reset: u64,
    pub(crate) fault_reserved: u64,
    pub(crate) fault_reconciled: u64,
    pub(crate) fault_reserved_at_reset: u64,
    pub(crate) fault_reconciled_at_reset: u64,
    pub(crate) delivered_ids: Vec<u64>,
    pub(crate) last_in_flow: Vec<(u64, u64, u64, u64)>,
    pub(crate) expected_reserved: Vec<i64>,
    pub(crate) total_violations: u64,
}

/// The redundant bookkeeper. Owned by [`crate::Simulator`] behind an
/// `Option`; every method is a no-op cost when the option is `None`
/// because the simulator never calls in.
#[derive(Debug)]
pub struct InvariantChecker {
    ports: usize,
    vnets: usize,
    /// In-order delivery is only guaranteed under deterministic routing.
    check_order: bool,
    /// Whole-run message counts (never reset).
    created: u64,
    delivered: u64,
    /// Snapshot of the whole-run counts at the last `reset_stats`, so the
    /// checker can compare deltas against the (resettable) [`SimStats`].
    created_at_reset: u64,
    delivered_at_reset: u64,
    /// Whole-run fault-credit flow (never reset), plus reset snapshots.
    fault_reserved: u64,
    fault_reconciled: u64,
    fault_reserved_at_reset: u64,
    fault_reconciled_at_reset: u64,
    /// Bitmap over delivered packet ids (ids are dense from 0).
    delivered_ids: Vec<u64>,
    /// Last delivered packet id per (src, dst, vnet) flow.
    last_in_flow: HashMap<(usize, usize, usize), u64>,
    /// Reserved flits the checker expects per buffer slot
    /// `(router * ports + in_port) * vnets + vnet`; `i64` so a
    /// double-return shows up as a negative expectation instead of
    /// wrapping.
    expected_reserved: Vec<i64>,
    violations: Vec<InvariantViolation>,
    total_violations: u64,
}

impl InvariantChecker {
    /// A checker sized for `num_routers` routers of `ports` ports and
    /// `vnets` virtual networks. `check_order` enables the per-flow
    /// in-order delivery check (deterministic routing only).
    pub fn new(num_routers: usize, ports: usize, vnets: usize, check_order: bool) -> Self {
        InvariantChecker {
            ports,
            vnets,
            check_order,
            created: 0,
            delivered: 0,
            created_at_reset: 0,
            delivered_at_reset: 0,
            fault_reserved: 0,
            fault_reconciled: 0,
            fault_reserved_at_reset: 0,
            fault_reconciled_at_reset: 0,
            delivered_ids: Vec::new(),
            last_in_flow: HashMap::new(),
            expected_reserved: vec![0; num_routers * ports * vnets],
            violations: Vec::new(),
            total_violations: 0,
        }
    }

    fn slot(&self, router: usize, in_port: usize, vnet: usize) -> usize {
        (router * self.ports + in_port) * self.vnets + vnet
    }

    fn record(&mut self, cycle: u64, location: String, kind: ViolationKind) {
        self.total_violations += 1;
        if self.violations.len() < MAX_RECORDED {
            self.violations.push(InvariantViolation {
                cycle,
                location,
                kind,
            });
        }
    }

    /// Violations recorded so far (capped; see
    /// [`InvariantChecker::total_violations`]).
    pub fn violations(&self) -> &[InvariantViolation] {
        &self.violations
    }

    /// Every violation detected, including those past the recording cap.
    pub fn total_violations(&self) -> u64 {
        self.total_violations
    }

    /// Snapshots the checker's mutable state for a simulator checkpoint.
    /// The recorded violation list is not carried (checkpointing a
    /// violated run is refused upstream), only the running counters and
    /// cross-cycle tables needed to keep checking seamlessly after a
    /// restore.
    pub(crate) fn snapshot(&self) -> CheckerSnapshot {
        let mut flows: Vec<(u64, u64, u64, u64)> = self
            .last_in_flow
            .iter()
            .map(|(&(s, d, v), &id)| (s as u64, d as u64, v as u64, id))
            .collect();
        flows.sort_unstable();
        CheckerSnapshot {
            created: self.created,
            delivered: self.delivered,
            created_at_reset: self.created_at_reset,
            delivered_at_reset: self.delivered_at_reset,
            fault_reserved: self.fault_reserved,
            fault_reconciled: self.fault_reconciled,
            fault_reserved_at_reset: self.fault_reserved_at_reset,
            fault_reconciled_at_reset: self.fault_reconciled_at_reset,
            delivered_ids: self.delivered_ids.clone(),
            last_in_flow: flows,
            expected_reserved: self.expected_reserved.clone(),
            total_violations: self.total_violations,
        }
    }

    /// Overwrites the checker's mutable state from a checkpoint snapshot.
    pub(crate) fn restore_snapshot(&mut self, s: CheckerSnapshot) -> Result<(), String> {
        if s.expected_reserved.len() != self.expected_reserved.len() {
            return Err(format!(
                "checker state shape mismatch: {} reserved slots in checkpoint, {} configured",
                s.expected_reserved.len(),
                self.expected_reserved.len()
            ));
        }
        self.created = s.created;
        self.delivered = s.delivered;
        self.created_at_reset = s.created_at_reset;
        self.delivered_at_reset = s.delivered_at_reset;
        self.fault_reserved = s.fault_reserved;
        self.fault_reconciled = s.fault_reconciled;
        self.fault_reserved_at_reset = s.fault_reserved_at_reset;
        self.fault_reconciled_at_reset = s.fault_reconciled_at_reset;
        self.delivered_ids = s.delivered_ids;
        self.last_in_flow = s
            .last_in_flow
            .into_iter()
            .map(|(src, dst, vnet, id)| ((src as usize, dst as usize, vnet as usize), id))
            .collect();
        self.expected_reserved = s.expected_reserved;
        self.violations.clear();
        self.total_violations = s.total_violations;
        Ok(())
    }

    /// A packet was created by the traffic source.
    pub(crate) fn on_created(&mut self) {
        self.created += 1;
    }

    /// `reset_stats` was called: re-baseline the delta comparisons.
    pub(crate) fn on_reset_stats(&mut self) {
        self.created_at_reset = self.created;
        self.delivered_at_reset = self.delivered;
        self.fault_reserved_at_reset = self.fault_reserved;
        self.fault_reconciled_at_reset = self.fault_reconciled;
    }

    /// A packet reached its destination node.
    pub(crate) fn on_delivered(&mut self, cycle: u64, pkt: &Packet) {
        self.delivered += 1;
        let word = (pkt.id / 64) as usize;
        let bit = 1u64 << (pkt.id % 64);
        if word >= self.delivered_ids.len() {
            self.delivered_ids.resize(word + 1, 0);
        }
        if self.delivered_ids[word] & bit != 0 {
            self.record(
                cycle,
                "global".to_string(),
                ViolationKind::DuplicateDelivery { packet_id: pkt.id },
            );
        }
        self.delivered_ids[word] |= bit;
        if self.check_order {
            let key = (pkt.src.index(), pkt.dst.index(), pkt.vnet);
            if let Some(&prev) = self.last_in_flow.get(&key) {
                if prev > pkt.id {
                    self.record(
                        cycle,
                        format!("flow {}->{} vnet {}", pkt.src, pkt.dst, pkt.vnet),
                        ViolationKind::OutOfOrderDelivery {
                            packet_id: pkt.id,
                            after_id: prev,
                        },
                    );
                }
            }
            self.last_in_flow
                .entry(key)
                .and_modify(|v| *v = (*v).max(pkt.id))
                .or_insert(pkt.id);
        }
    }

    /// Credit was reserved downstream by a healthy grant.
    pub(crate) fn on_reserve(&mut self, router: usize, in_port: usize, vnet: usize, len: u32) {
        let slot = self.slot(router, in_port, vnet);
        self.expected_reserved[slot] += len as i64;
    }

    /// Credit was reserved downstream by a fault-corrupted transmission.
    pub(crate) fn on_fault_reserve(&mut self, router: usize, in_port: usize, vnet: usize, len: u32) {
        self.on_reserve(router, in_port, vnet, len);
        self.fault_reserved += len as u64;
    }

    /// A packet physically arrived, converting its reservation into
    /// occupancy.
    pub(crate) fn on_arrival(&mut self, router: usize, in_port: usize, vnet: usize, len: u32) {
        let slot = self.slot(router, in_port, vnet);
        self.expected_reserved[slot] -= len as i64;
    }

    /// A credit-reconciliation message landed, returning fault-reserved
    /// credit.
    pub(crate) fn on_credit_return(&mut self, router: usize, in_port: usize, vnet: usize, len: u32) {
        let slot = self.slot(router, in_port, vnet);
        self.expected_reserved[slot] -= len as i64;
        self.fault_reconciled += len as u64;
    }

    /// Per-buffer sweep: occupancy bounds, incremental-count agreement,
    /// credit-reservation agreement, and FIFO age monotonicity.
    pub(crate) fn check_buffer(
        &mut self,
        cycle: u64,
        router: usize,
        in_port: usize,
        vnet: usize,
        buf: VcView<'_>,
    ) {
        let loc = || format!("router {router} in_port {in_port} vnet {vnet}");
        let used = buf.used_flits();
        let reserved = buf.reserved_flits();
        let capacity = buf.capacity_flits();
        if used + reserved > capacity {
            self.record(
                cycle,
                loc(),
                ViolationKind::BufferOverflow {
                    used,
                    reserved,
                    capacity,
                },
            );
        }
        let queued = buf.queued_flits();
        if used != queued {
            self.record(cycle, loc(), ViolationKind::OccupancyMismatch { used, queued });
        }
        let expected = self.expected_reserved[self.slot(router, in_port, vnet)];
        if expected != reserved as i64 {
            self.record(
                cycle,
                loc(),
                ViolationKind::CreditMismatch {
                    expected,
                    actual: reserved,
                },
            );
        }
        let mut prev: Option<u64> = None;
        for bp in buf.iter() {
            if bp.arrival_cycle > cycle {
                self.record(
                    cycle,
                    loc(),
                    ViolationKind::AgeRegression {
                        earlier: bp.arrival_cycle,
                        later: cycle,
                    },
                );
            }
            if let Some(p) = prev {
                if bp.arrival_cycle < p {
                    self.record(
                        cycle,
                        loc(),
                        ViolationKind::AgeRegression {
                            earlier: p,
                            later: bp.arrival_cycle,
                        },
                    );
                }
            }
            prev = Some(bp.arrival_cycle);
        }
    }

    /// Whole-simulation sweep: message conservation, stats-counter
    /// agreement, and fault-credit balance.
    pub(crate) fn check_global(
        &mut self,
        cycle: u64,
        stats: &SimStats,
        in_flight: u64,
        queued: u64,
    ) {
        // Signed arithmetic: a double-delivery bug can push `delivered`
        // past `created`, and the conservation check must still report
        // rather than overflow.
        let live = self.created as i128 - self.delivered as i128;
        if live != (in_flight + queued) as i128 {
            self.record(
                cycle,
                "global".to_string(),
                ViolationKind::MessageConservation {
                    created: self.created,
                    delivered: self.delivered,
                    in_flight,
                    queued,
                },
            );
        }
        let drifts = [
            ("created", stats.created, self.created - self.created_at_reset),
            (
                "delivered",
                stats.delivered,
                self.delivered - self.delivered_at_reset,
            ),
            (
                "fault_credits_reserved",
                stats.fault_credits_reserved,
                self.fault_reserved - self.fault_reserved_at_reset,
            ),
            (
                "fault_credits_reconciled",
                stats.fault_credits_reconciled,
                self.fault_reconciled - self.fault_reconciled_at_reset,
            ),
        ];
        for (counter, simulator, checker) in drifts {
            if simulator != checker {
                self.record(
                    cycle,
                    "global".to_string(),
                    ViolationKind::CounterDrift {
                        counter,
                        simulator,
                        checker,
                    },
                );
            }
        }
        if self.fault_reconciled > self.fault_reserved {
            self.record(
                cycle,
                "global".to_string(),
                ViolationKind::FaultCreditImbalance {
                    reserved: self.fault_reserved,
                    reconciled: self.fault_reconciled,
                },
            );
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::packet::Packet;

    fn pkt(id: u64) -> Packet {
        let mut p = Packet::test_packet();
        p.id = id;
        p
    }

    #[test]
    fn duplicate_delivery_is_detected() {
        let mut ck = InvariantChecker::new(1, 1, 1, false);
        ck.on_created();
        ck.on_delivered(5, &pkt(0));
        assert!(ck.violations().is_empty());
        ck.on_delivered(6, &pkt(0));
        assert_eq!(ck.total_violations(), 1);
        assert!(matches!(
            ck.violations()[0].kind,
            ViolationKind::DuplicateDelivery { packet_id: 0 }
        ));
    }

    #[test]
    fn out_of_order_delivery_is_detected_only_when_enabled() {
        for (enabled, expect) in [(true, 1u64), (false, 0)] {
            let mut ck = InvariantChecker::new(1, 1, 1, enabled);
            ck.on_delivered(5, &pkt(7));
            ck.on_delivered(6, &pkt(3)); // same flow, earlier id, later delivery
            assert_eq!(ck.total_violations(), expect, "enabled={enabled}");
        }
    }

    #[test]
    fn credit_books_balance_through_reserve_arrival() {
        let mut ck = InvariantChecker::new(2, 3, 2, false);
        ck.on_reserve(1, 2, 1, 5);
        let buf = {
            let mut b = crate::buffer::VcBuffer::new(8);
            b.reserve(5);
            b
        };
        ck.check_buffer(0, 1, 2, 1, buf.as_view());
        assert_eq!(ck.total_violations(), 0);
        // The same reservation checked against an *empty* buffer is a leak.
        let empty = crate::buffer::VcBuffer::new(8);
        ck.check_buffer(1, 1, 2, 1, empty.as_view());
        assert_eq!(ck.total_violations(), 1);
        assert!(matches!(
            ck.violations()[0].kind,
            ViolationKind::CreditMismatch {
                expected: 5,
                actual: 0
            }
        ));
    }

    #[test]
    fn violation_recording_caps_but_keeps_counting() {
        let mut ck = InvariantChecker::new(1, 1, 1, false);
        for i in 0..(MAX_RECORDED as u64 + 10) {
            ck.on_delivered(1, &pkt(0)); // every call after the first is a dup
            let _ = i;
        }
        assert_eq!(ck.violations().len(), MAX_RECORDED);
        assert_eq!(ck.total_violations(), MAX_RECORDED as u64 + 9);
    }

    #[test]
    fn sim_error_display_mentions_first_violation() {
        let err = SimError::InvariantsViolated(vec![InvariantViolation {
            cycle: 12,
            location: "global".into(),
            kind: ViolationKind::DuplicateDelivery { packet_id: 3 },
        }]);
        let text = err.to_string();
        assert!(text.contains("1 invariant violation"), "{text}");
        assert!(text.contains("cycle 12"), "{text}");
    }
}
