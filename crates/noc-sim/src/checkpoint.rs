//! Simulator checkpoints: versioned, content-hashed snapshots of every
//! piece of mutable simulator state, so a run can be split at any cycle
//! boundary — including across process restarts — and continue
//! bit-identically to the unsplit run.
//!
//! A [`SimCheckpoint`] is a canonical JSON document in the same minimal
//! dialect the fault-plan codec reads ([`crate::faults::json`]): objects,
//! arrays, escape-free strings, and unsigned integers. Everything that is
//! not naturally an unsigned integer is mapped onto one — `f64` fields
//! travel as their IEEE-754 bit patterns, signed counters as two's
//! complement casts, and the one `u128` accumulator as a (hi, lo) pair —
//! so the codec stays lossless without growing a float/negative-number
//! grammar.
//!
//! The document captures only *mutable* state. Construction-time inputs
//! (topology, configuration, the arbiter and traffic-source objects)
//! are re-supplied by the caller to [`crate::Simulator::restore`], which
//! cross-checks their shape against the checkpoint before applying it.

use crate::faults::json::Value;
use crate::packet::{BufferedPacket, Packet};
use crate::types::{DestType, MsgType, NodeId, RouterId};

/// Checkpoint document schema version. Bumped whenever the layout
/// changes incompatibly; [`SimCheckpoint::from_json`] rejects documents
/// written by a different version instead of misinterpreting them.
pub const CHECKPOINT_VERSION: u64 = 2;

/// A serialized simulator snapshot (see the module docs for the format).
///
/// Produced by [`crate::Simulator::checkpoint`] and consumed by
/// [`crate::Simulator::restore`]. The canonical JSON text is the value:
/// it can be written to disk, moved between machines, and identified by
/// its [`SimCheckpoint::content_hash`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SimCheckpoint {
    text: String,
}

impl SimCheckpoint {
    /// Wraps freshly serialized checkpoint text (crate-internal; external
    /// callers go through [`SimCheckpoint::from_json`], which validates).
    pub(crate) fn from_text(text: String) -> Self {
        SimCheckpoint { text }
    }

    /// The canonical JSON document.
    pub fn to_json(&self) -> &str {
        &self.text
    }

    /// Parses checkpoint text (e.g. read back from disk).
    ///
    /// # Errors
    ///
    /// Returns a description of the first syntax problem, or a version
    /// mismatch against [`CHECKPOINT_VERSION`]. Field-level validation
    /// happens later, in [`crate::Simulator::restore`].
    pub fn from_json(text: &str) -> Result<Self, String> {
        let v = crate::faults::json::parse(text)?;
        let obj = v.as_obj("checkpoint")?;
        let version = crate::faults::json::get(obj, "version")?.as_u64("version")?;
        if version != CHECKPOINT_VERSION {
            return Err(format!(
                "checkpoint version {version} not supported (expected {CHECKPOINT_VERSION})"
            ));
        }
        Ok(SimCheckpoint {
            text: text.to_string(),
        })
    }

    /// 64-bit FNV-1a content hash of the canonical text, as 16 hex
    /// digits. Two checkpoints with the same hash hold byte-identical
    /// simulator state.
    pub fn content_hash(&self) -> String {
        format!("{:016x}", fnv1a64(self.text.as_bytes()))
    }
}

/// 64-bit FNV-1a over raw bytes (the same constants the fault-plan and
/// experiment-spec hashes use).
pub(crate) fn fnv1a64(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
    h
}

/// Number of integers a [`Packet`] flattens to.
pub(crate) const PACKET_NUMS: usize = 15;

/// Number of integers a [`BufferedPacket`] flattens to.
pub(crate) const BUFFERED_NUMS: usize = PACKET_NUMS + 2;

/// Flattens a packet to its canonical integer tuple. Enum tags travel as
/// their one-hot indices so the mapping is pinned by the same tables the
/// feature encoder uses ([`MsgType::ALL`] / [`DestType::ALL`]).
pub(crate) fn packet_nums(p: &Packet) -> [u64; PACKET_NUMS] {
    [
        p.id,
        p.src.index() as u64,
        p.dst.index() as u64,
        p.vnet as u64,
        p.msg_type.one_hot_index() as u64,
        p.dst_type.one_hot_index() as u64,
        p.len_flits as u64,
        p.create_cycle,
        p.inject_cycle,
        p.src_router.index() as u64,
        p.dst_router.index() as u64,
        p.dst_slot as u64,
        p.hop_count as u64,
        p.distance as u64,
        p.tag,
    ]
}

/// Inverse of [`packet_nums`].
pub(crate) fn packet_from_nums(n: &[u64]) -> Result<Packet, String> {
    if n.len() != PACKET_NUMS {
        return Err(format!(
            "packet record has {} fields, expected {PACKET_NUMS}",
            n.len()
        ));
    }
    let enum3 = |idx: u64, what: &str| -> Result<usize, String> {
        if idx < 3 {
            Ok(idx as usize)
        } else {
            Err(format!("{what} tag {idx} out of range"))
        }
    };
    Ok(Packet {
        id: n[0],
        src: NodeId(n[1] as usize),
        dst: NodeId(n[2] as usize),
        vnet: n[3] as usize,
        msg_type: MsgType::ALL[enum3(n[4], "msg_type")?],
        dst_type: DestType::ALL[enum3(n[5], "dst_type")?],
        len_flits: n[6] as u32,
        create_cycle: n[7],
        inject_cycle: n[8],
        src_router: RouterId(n[9] as usize),
        dst_router: RouterId(n[10] as usize),
        dst_slot: n[11] as u8,
        hop_count: n[12] as u32,
        distance: n[13] as u32,
        tag: n[14],
    })
}

/// Flattens a buffered packet: the packet tuple plus its per-buffer
/// arrival bookkeeping.
pub(crate) fn buffered_nums(bp: &BufferedPacket, out: &mut Vec<u64>) {
    out.extend_from_slice(&packet_nums(&bp.packet));
    out.push(bp.arrival_cycle);
    out.push(bp.inter_arrival);
}

/// Inverse of [`buffered_nums`].
pub(crate) fn buffered_from_nums(n: &[u64]) -> Result<BufferedPacket, String> {
    if n.len() != BUFFERED_NUMS {
        return Err(format!(
            "buffered-packet record has {} fields, expected {BUFFERED_NUMS}",
            n.len()
        ));
    }
    Ok(BufferedPacket {
        packet: packet_from_nums(&n[..PACKET_NUMS])?,
        arrival_cycle: n[PACKET_NUMS],
        inter_arrival: n[PACKET_NUMS + 1],
    })
}

/// Emits a JSON array of unsigned integers: `[1,2,3]`.
pub(crate) fn push_num_arr(out: &mut String, vals: impl IntoIterator<Item = u64>) {
    out.push('[');
    for (i, v) in vals.into_iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&v.to_string());
    }
    out.push(']');
}

/// Reads a parsed value as a flat `u64` array.
pub(crate) fn num_arr(v: &Value, what: &str) -> Result<Vec<u64>, String> {
    v.as_arr(what)?
        .iter()
        .map(|item| item.as_u64(what))
        .collect()
}

/// Rejects state strings the escape-free codec cannot carry. Opaque
/// arbiter/traffic state is formatted by this crate and its policy
/// crates from integers and `:;|` separators, so a quote, backslash or
/// control character here is a bug in a `checkpoint_state`
/// implementation — better to refuse than to emit an unreadable
/// document.
pub(crate) fn check_clean_str(s: &str, what: &str) -> Result<(), String> {
    if s.chars().any(|c| c == '"' || c == '\\' || c.is_control()) {
        return Err(format!(
            "{what} state contains characters the checkpoint codec cannot carry: {s:?}"
        ));
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn packet_round_trips_through_nums() {
        let mut p = Packet::test_packet();
        p.id = 918;
        p.msg_type = MsgType::Coherence;
        p.dst_type = DestType::Memory;
        p.tag = u64::MAX;
        p.create_cycle = 123_456;
        let back = packet_from_nums(&packet_nums(&p)).unwrap();
        assert_eq!(back, p);
    }

    #[test]
    fn buffered_packet_round_trips() {
        let bp = BufferedPacket {
            packet: Packet::test_packet(),
            arrival_cycle: 77,
            inter_arrival: 5,
        };
        let mut nums = Vec::new();
        buffered_nums(&bp, &mut nums);
        assert_eq!(buffered_from_nums(&nums).unwrap(), bp);
    }

    #[test]
    fn bad_enum_tags_are_rejected() {
        let mut nums = packet_nums(&Packet::test_packet()).to_vec();
        nums[4] = 3;
        assert!(packet_from_nums(&nums).unwrap_err().contains("msg_type"));
    }

    #[test]
    fn version_mismatch_is_rejected() {
        let err = SimCheckpoint::from_json("{\"version\": 999}").unwrap_err();
        assert!(err.contains("999"), "{err}");
    }

    #[test]
    fn content_hash_is_stable_and_text_sensitive(){
        let a = SimCheckpoint::from_text("{\"version\": 1}".into());
        let b = SimCheckpoint::from_text("{\"version\": 1}".into());
        let c = SimCheckpoint::from_text("{\"version\": 1} ".into());
        assert_eq!(a.content_hash(), b.content_hash());
        assert_ne!(a.content_hash(), c.content_hash());
        assert_eq!(a.content_hash().len(), 16);
    }

    #[test]
    fn dirty_state_strings_are_refused() {
        assert!(check_clean_str("12:3;4", "arbiter").is_ok());
        assert!(check_clean_str("a\"b", "arbiter").is_err());
        assert!(check_clean_str("a\\b", "traffic").is_err());
        assert!(check_clean_str("a\nb", "traffic").is_err());
    }
}
