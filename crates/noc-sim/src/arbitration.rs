//! The arbitration interface: what a policy sees and what it must return.
//!
//! Every cycle, for every output port with two or more competing input
//! buffers, the simulator asks the installed [`Arbiter`] to pick a winner
//! (paper Algorithm 1). Output ports with exactly one requester are granted
//! directly without consulting the policy, matching §4.5 of the paper.

use crate::types::{DestType, MsgType, NodeId, RouterId};

/// The message features visible to an arbitration policy (paper Table 2).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct Features {
    /// Size of the message in flits.
    pub payload_size: u32,
    /// Cycles spent waiting at the current router.
    pub local_age: u64,
    /// Hops from the message's source router to its destination router.
    pub distance: u32,
    /// Hops the message has traversed so far.
    pub hop_count: u32,
    /// Outstanding (injected, undelivered) messages from the message's
    /// source router.
    pub in_flight_from_src: u32,
    /// Cycles between the arrivals of the two most recent messages at the
    /// same buffer.
    pub inter_arrival: u64,
    /// Message type (one-hot encoded for the agent).
    pub msg_type: MsgType,
    /// Destination node type (one-hot encoded for the agent).
    pub dst_type: DestType,
}

/// One input buffer competing for an output port.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Candidate {
    /// Input port the message waits at.
    pub in_port: usize,
    /// Virtual network / VC index within the input port.
    pub vnet: usize,
    /// Flattened buffer index `in_port * num_vnets + vnet` — the action
    /// slot in the agent's Q-value vector.
    pub slot: usize,
    /// Table-2 features of the head message.
    pub features: Features,
    /// Id of the head message.
    pub packet_id: u64,
    /// Cycle the head message was created (global-age basis).
    pub create_cycle: u64,
    /// Cycle the head message arrived at this router.
    pub arrival_cycle: u64,
    /// Source endpoint of the head message.
    pub src: NodeId,
    /// Destination endpoint of the head message.
    pub dst: NodeId,
    /// True when the output link this candidate is routed toward is
    /// currently degraded by an active fault (transient corruption or
    /// link-down; see [`crate::FaultPlan`]). Always `false` on a healthy
    /// mesh, so policies may branch on it without perturbing fault-free
    /// behaviour.
    pub port_degraded: bool,
}

/// Network-global statistics made available to arbiters and reward
/// functions (paper §6.3 uses these for the alternative rewards).
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct NetSnapshot {
    /// Current simulation cycle.
    pub cycle: u64,
    /// Fraction of mesh links that carried a flit in the previous cycle.
    pub link_utilization_prev: f64,
    /// Average accumulated latency of messages delivered in the last
    /// reward period plus the current age of in-flight messages,
    /// refreshed every [`crate::SimConfig::reward_period`] cycles.
    pub avg_accumulated_latency: f64,
    /// Messages currently inside the network.
    pub in_flight_packets: usize,
}

/// The full arbitration picture at one router in one cycle: every free
/// output port together with the candidates requesting it.
///
/// Matching allocators (iSLIP, wavefront) need the whole request matrix at
/// once; per-output policies can ignore this and implement only
/// [`Arbiter::select`].
#[derive(Debug)]
pub struct RouterCtx<'a> {
    /// Router being arbitrated.
    pub router: RouterId,
    /// Current cycle.
    pub cycle: u64,
    /// Ports per router in this configuration.
    pub num_ports: usize,
    /// Virtual networks per port in this configuration.
    pub num_vnets: usize,
    /// `(output port, candidates requesting it)`, ascending by port. Only
    /// outputs that are free this cycle and have at least one candidate
    /// appear.
    pub outputs: &'a [(usize, Vec<Candidate>)],
    /// Network-global statistics.
    pub net: &'a NetSnapshot,
}

/// The context for a single output-port decision.
#[derive(Debug)]
pub struct OutputCtx<'a> {
    /// Router being arbitrated.
    pub router: RouterId,
    /// Output port being arbitrated.
    pub out_port: usize,
    /// Current cycle.
    pub cycle: u64,
    /// Ports per router in this configuration.
    pub num_ports: usize,
    /// Virtual networks per port in this configuration.
    pub num_vnets: usize,
    /// Buffers competing for this output. Always contains at least two
    /// entries when a policy is consulted; input ports already granted
    /// another output this cycle have been filtered out (Algorithm 1,
    /// constraint 2).
    pub candidates: &'a [Candidate],
    /// Network-global statistics.
    pub net: &'a NetSnapshot,
}

impl OutputCtx<'_> {
    /// Index of the candidate with the oldest global age (smallest creation
    /// cycle); ties broken by lowest packet id for determinism. This is the
    /// oracle the paper's global-age reward compares against.
    pub fn oldest_global_index(&self) -> usize {
        self.candidates
            .iter()
            .enumerate()
            .min_by_key(|(_, c)| (c.create_cycle, c.packet_id))
            .map(|(i, _)| i)
            .expect("oldest_global_index on empty candidate list")
    }
}

/// An arbitration policy.
///
/// Implementations select, for each contended output port, which competing
/// input buffer to grant. The trait is object-safe: the simulator owns one
/// `Box<dyn Arbiter>` shared by all routers, mirroring the paper's single
/// shared agent (§3.1.1). Per-router state (round-robin pointers, learned
/// weights, …) must be keyed internally on `(router, out_port)`.
pub trait Arbiter {
    /// Human-readable policy name used in reports.
    fn name(&self) -> String;

    /// Chooses the winning candidate for one output port.
    ///
    /// Returns `Some(index)` into `ctx.candidates`, or `None` to leave the
    /// output idle this cycle (matching allocators may do this when their
    /// matching left the output unpaired).
    fn select(&mut self, ctx: &OutputCtx<'_>) -> Option<usize>;

    /// Called once per router per cycle *before* any [`Arbiter::select`]
    /// call for that router, with the request matrix restricted to
    /// *contended* outputs (two or more eligible candidates). Sole
    /// requesters are granted directly by the simulator (paper §4.5) and
    /// never appear here or in [`Arbiter::select`]. Matching allocators
    /// compute their matching here; the default does nothing.
    fn plan_router(&mut self, _ctx: &RouterCtx<'_>) {}

    /// Whether the policy reads the Table-2 feature vector (and the
    /// source/destination fields) of its candidates. Policies that order
    /// purely by age and id — e.g. global-age — return `false`, which lets
    /// the simulator skip materialising those fields on the hot path. The
    /// ordering keys (`create_cycle`, `packet_id`, `arrival_cycle`,
    /// `features.payload_size`, `features.local_age`) and the port/vnet
    /// coordinates are always populated.
    fn wants_features(&self) -> bool {
        true
    }

    /// Called at the end of every simulated cycle. Learning arbiters use
    /// this to run training steps; the default does nothing.
    fn end_cycle(&mut self, _net: &NetSnapshot) {}

    /// Serializes the policy's mutable decision state for a simulator
    /// checkpoint (see [`crate::SimCheckpoint`]).
    ///
    /// Returns `Some(state)` — an opaque, escape-free string a later
    /// [`Arbiter::restore_state`] on a freshly constructed instance of the
    /// same policy accepts — or `None` when the policy cannot be
    /// checkpointed (e.g. a training agent whose state is not practically
    /// serializable). The default, `Some("")`, is correct for *stateless*
    /// policies only; any arbiter with cross-cycle mutable state (pointers,
    /// RNGs, toggles) must override both methods or checkpointed runs will
    /// silently diverge from uninterrupted ones.
    fn checkpoint_state(&self) -> Option<String> {
        Some(String::new())
    }

    /// Restores state produced by [`Arbiter::checkpoint_state`] on an
    /// equally configured, freshly constructed policy. The default accepts
    /// only the stateless empty string.
    fn restore_state(&mut self, state: &str) -> Result<(), String> {
        if state.is_empty() {
            Ok(())
        } else {
            Err(format!(
                "arbiter '{}' has no state to restore, got {state:?}",
                self.name()
            ))
        }
    }
}

/// A grant produced by the simulator after arbitration.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Grant {
    /// Router where the grant happened.
    pub router: RouterId,
    /// Output port granted.
    pub out_port: usize,
    /// Winning input port.
    pub in_port: usize,
    /// Winning virtual network.
    pub vnet: usize,
    /// Id of the forwarded packet.
    pub packet_id: u64,
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::types::{DestType, MsgType, NodeId};

    fn cand(create_cycle: u64, id: u64) -> Candidate {
        Candidate {
            in_port: 0,
            vnet: 0,
            slot: 0,
            features: Features {
                payload_size: 1,
                local_age: 0,
                distance: 1,
                hop_count: 0,
                in_flight_from_src: 0,
                inter_arrival: 0,
                msg_type: MsgType::Request,
                dst_type: DestType::Core,
            },
            packet_id: id,
            create_cycle,
            arrival_cycle: 0,
            src: NodeId(0),
            dst: NodeId(1),
            port_degraded: false,
        }
    }

    #[test]
    fn oldest_global_prefers_earliest_creation() {
        let net = NetSnapshot::default();
        let cands = vec![cand(30, 1), cand(10, 2), cand(20, 3)];
        let ctx = OutputCtx {
            router: RouterId(0),
            out_port: 0,
            cycle: 50,
            num_ports: 5,
            num_vnets: 1,
            candidates: &cands,
            net: &net,
        };
        assert_eq!(ctx.oldest_global_index(), 1);
    }

    #[test]
    fn oldest_global_ties_break_by_packet_id() {
        let net = NetSnapshot::default();
        let cands = vec![cand(10, 9), cand(10, 2)];
        let ctx = OutputCtx {
            router: RouterId(0),
            out_port: 0,
            cycle: 50,
            num_ports: 5,
            num_vnets: 1,
            candidates: &cands,
            net: &net,
        };
        assert_eq!(ctx.oldest_global_index(), 1);
    }
}
