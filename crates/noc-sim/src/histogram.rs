//! Bounded-memory latency histograms.
//!
//! [`crate::SimStats`] keeps every delivered latency for exact percentiles,
//! which is fine for figure-scale runs but unbounded for very long ones.
//! `LatencyHistogram` offers the constant-memory alternative: logarithmic
//! buckets with linear sub-buckets (HDR-histogram style), giving ≤ ~6%
//! relative quantile error with a few hundred counters.

/// A log-linear histogram over `u64` latencies.
///
/// Values are bucketed by `(magnitude, sub-bucket)` where magnitude is the
/// bit-length above `sub_bits` and each magnitude splits into
/// `2^sub_bits` linear sub-buckets.
///
/// ```
/// use noc_sim::LatencyHistogram;
/// let mut h = LatencyHistogram::new(5);
/// for v in [3, 10, 10, 250, 9000] {
///     h.record(v);
/// }
/// assert_eq!(h.count(), 5);
/// assert!(h.quantile(0.5) >= 9 && h.quantile(0.5) <= 11);
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LatencyHistogram {
    sub_bits: u32,
    counts: Vec<u64>,
    total: u64,
    sum: u128,
    max: u64,
    min: u64,
}

impl LatencyHistogram {
    /// Creates a histogram with `2^sub_bits` linear sub-buckets per power
    /// of two (5 → ~6% worst-case relative error, 64-value overhead per
    /// magnitude).
    ///
    /// # Panics
    ///
    /// Panics unless `1 <= sub_bits <= 16`.
    pub fn new(sub_bits: u32) -> Self {
        assert!((1..=16).contains(&sub_bits), "sub_bits must be in 1..=16");
        let magnitudes = 64 - sub_bits as usize;
        LatencyHistogram {
            sub_bits,
            counts: vec![0; (magnitudes + 1) << sub_bits],
            total: 0,
            sum: 0,
            max: 0,
            min: u64::MAX,
        }
    }

    fn bucket_of(&self, value: u64) -> usize {
        let sb = self.sub_bits;
        if value < (1 << sb) {
            return value as usize;
        }
        let magnitude = 63 - value.leading_zeros(); // >= sb
        let sub = (value >> (magnitude - sb)) - (1 << sb); // 0..2^sb
        (((magnitude - sb + 1) as usize) << sb) + sub as usize
    }

    /// Representative (upper-bound) value of a bucket.
    fn bucket_value(&self, bucket: usize) -> u64 {
        let sb = self.sub_bits;
        let magnitude = bucket >> sb;
        let sub = (bucket & ((1usize << sb) - 1)) as u64;
        if magnitude == 0 {
            return sub;
        }
        let base = 1u64 << (magnitude as u32 + sb - 1);
        base + (sub << (magnitude - 1))
    }

    /// Records one value.
    pub fn record(&mut self, value: u64) {
        let b = self.bucket_of(value);
        self.counts[b] += 1;
        self.total += 1;
        self.sum += value as u128;
        self.max = self.max.max(value);
        self.min = self.min.min(value);
    }

    /// Number of recorded values.
    pub fn count(&self) -> u64 {
        self.total
    }

    /// Mean of recorded values (exact).
    pub fn mean(&self) -> f64 {
        if self.total == 0 {
            0.0
        } else {
            self.sum as f64 / self.total as f64
        }
    }

    /// Exact maximum recorded value.
    pub fn max(&self) -> u64 {
        if self.total == 0 {
            0
        } else {
            self.max
        }
    }

    /// Exact minimum recorded value.
    pub fn min(&self) -> u64 {
        if self.total == 0 {
            0
        } else {
            self.min
        }
    }

    /// Approximate quantile `q ∈ [0, 1]` (upper-bound of the containing
    /// bucket; within one sub-bucket of the true value).
    pub fn quantile(&self, q: f64) -> u64 {
        if self.total == 0 {
            return 0;
        }
        let q = q.clamp(0.0, 1.0);
        let rank = ((q * self.total as f64).ceil() as u64).max(1);
        let mut seen = 0;
        for (b, &c) in self.counts.iter().enumerate() {
            seen += c;
            if seen >= rank {
                return self.bucket_value(b).min(self.max);
            }
        }
        self.max
    }

    /// Merges another histogram into this one.
    ///
    /// # Panics
    ///
    /// Panics if the histograms have different `sub_bits`.
    pub fn merge(&mut self, other: &LatencyHistogram) {
        assert_eq!(self.sub_bits, other.sub_bits, "incompatible histograms");
        for (a, b) in self.counts.iter_mut().zip(&other.counts) {
            *a += b;
        }
        self.total += other.total;
        self.sum += other.sum;
        self.max = self.max.max(other.max);
        self.min = self.min.min(other.min);
    }
}

impl Default for LatencyHistogram {
    fn default() -> Self {
        LatencyHistogram::new(5)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn small_values_are_exact() {
        let mut h = LatencyHistogram::new(5);
        for v in 0..32 {
            h.record(v);
        }
        assert_eq!(h.min(), 0);
        assert_eq!(h.max(), 31);
        assert_eq!(h.count(), 32);
        // Quantiles of exact buckets are exact.
        assert_eq!(h.quantile(0.5), 15);
        assert_eq!(h.quantile(1.0), 31);
    }

    #[test]
    fn quantiles_have_bounded_relative_error() {
        let mut h = LatencyHistogram::new(5);
        let values: Vec<u64> = (1..5000).map(|i| i * 7 % 100_000 + 1).collect();
        for &v in &values {
            h.record(v);
        }
        let mut sorted = values.clone();
        sorted.sort_unstable();
        for q in [0.5, 0.9, 0.99] {
            let exact = sorted[((q * sorted.len() as f64) as usize).min(sorted.len() - 1)];
            let approx = h.quantile(q);
            let rel = (approx as f64 - exact as f64).abs() / exact as f64;
            assert!(rel < 0.07, "q={q}: exact {exact} approx {approx} rel {rel}");
        }
    }

    #[test]
    fn mean_and_extremes_are_exact() {
        let mut h = LatencyHistogram::new(6);
        for v in [10, 20, 30, 1_000_000] {
            h.record(v);
        }
        assert_eq!(h.mean(), (10.0 + 20.0 + 30.0 + 1_000_000.0) / 4.0);
        assert_eq!(h.min(), 10);
        assert_eq!(h.max(), 1_000_000);
    }

    #[test]
    fn merge_combines_everything() {
        let mut a = LatencyHistogram::new(5);
        let mut b = LatencyHistogram::new(5);
        for v in 1..100 {
            a.record(v);
        }
        for v in 100..200 {
            b.record(v);
        }
        a.merge(&b);
        assert_eq!(a.count(), 199);
        assert_eq!(a.min(), 1);
        assert_eq!(a.max(), 199);
    }

    #[test]
    fn empty_histogram_is_well_behaved() {
        let h = LatencyHistogram::default();
        assert_eq!(h.count(), 0);
        assert_eq!(h.mean(), 0.0);
        assert_eq!(h.quantile(0.99), 0);
        assert_eq!(h.max(), 0);
        assert_eq!(h.min(), 0);
    }

    #[test]
    #[should_panic(expected = "incompatible")]
    fn merging_different_geometries_panics() {
        let mut a = LatencyHistogram::new(4);
        let b = LatencyHistogram::new(5);
        a.merge(&b);
    }

    #[test]
    fn huge_values_do_not_overflow_buckets() {
        let mut h = LatencyHistogram::new(5);
        h.record(u64::MAX);
        h.record(u64::MAX / 2);
        assert_eq!(h.count(), 2);
        assert_eq!(h.max(), u64::MAX);
        assert!(h.quantile(1.0) > 0);
    }

    #[test]
    fn single_sample_pins_every_statistic() {
        let mut h = LatencyHistogram::new(5);
        h.record(37);
        assert_eq!(h.count(), 1);
        assert_eq!(h.mean(), 37.0);
        assert_eq!(h.min(), 37);
        assert_eq!(h.max(), 37);
        // Every quantile of a single sample is that sample, including the
        // q=0 edge (rank clamps to 1) and out-of-range q (clamped).
        for q in [0.0, 0.5, 1.0, -3.0, 7.0] {
            assert_eq!(h.quantile(q), 37, "q={q}");
        }
    }

    #[test]
    fn zero_valued_samples_are_distinct_from_empty() {
        let mut h = LatencyHistogram::new(5);
        h.record(0);
        h.record(0);
        assert_eq!(h.count(), 2);
        assert_eq!(h.min(), 0);
        assert_eq!(h.max(), 0);
        assert_eq!(h.quantile(0.99), 0);
    }

    #[test]
    fn power_of_two_boundaries_land_in_exact_buckets() {
        // Around 2^sub_bits the histogram transitions from exact (one value
        // per bucket) to approximate; the boundary values themselves are
        // still exactly representable.
        for v in [31u64, 32, 33, 63, 64] {
            let mut h = LatencyHistogram::new(5);
            h.record(v);
            assert_eq!(h.quantile(0.5), v, "value {v}");
        }
    }

    #[test]
    fn saturating_top_bucket_keeps_quantiles_bounded() {
        // All mass in the topmost magnitude (the saturating bucket): the
        // quantile must stay clamped to max() from above and within one
        // sub-bucket (1/2^sub_bits relative error) from below — no
        // overflow, no zero.
        let mut h = LatencyHistogram::new(5);
        for _ in 0..100 {
            h.record(u64::MAX - 1);
        }
        for q in [0.5, 1.0] {
            let est = h.quantile(q);
            assert!(est <= h.max(), "q={q}: {est} above max");
            assert!(
                est >= h.max() - (h.max() >> 5),
                "q={q}: {est} more than one sub-bucket below max"
            );
        }
    }
}
