//! Routing functions over router graphs.
//!
//! One pure function per [`RoutingKind`](crate::RoutingKind), each mapping
//! `(topology, here, destination)` to a [`RouteStep`]:
//!
//! * [`route_xy`] — dimension-order X-Y on a mesh: correct the column
//!   (West/East), then the row (North/South), then eject. Minimal and
//!   deadlock-free on a mesh, and the routing function assumed by the
//!   paper's RL-inspired arbiter (§4.7 attributes the East/West vs
//!   North/South hop-count asymmetry to "the underlying X-Y routing").
//! * [`route_west_first`] — minimal west-first adaptive routing on a mesh
//!   (the only non-deterministic kind).
//! * [`route_torus`] — dimension-order with wraparound on a torus: each
//!   dimension is corrected the short way around its ring.
//! * [`route_ring`] — shortest-way-around traversal on a ring.
//! * [`route_table`] — the topology's precomputed shortest-path next-hop
//!   table ([`Topology::next_hop_port`]); works on any connected graph,
//!   including degraded ones.
//!
//! [`route_deterministic`] dispatches over the deterministic kinds, and
//! [`route_path`] walks a full path for tests and analysis.

use crate::config::RoutingKind;
use crate::topology::Topology;
use crate::types::{PortDir, RouterId};

/// Routing decision produced by the routing functions in this module.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RouteStep {
    /// Forward out of the given mesh direction.
    Forward(PortDir),
    /// Eject to the local port with the given slot.
    Eject(u8),
}

/// Computes the output direction a packet at `here` must take to reach
/// `(dst_router, dst_slot)` under X-Y routing.
///
/// ```
/// use noc_sim::{Topology, RouterId, route_xy, RouteStep, PortDir};
/// let t = Topology::uniform_mesh(4, 4).unwrap();
/// // router 0 = (0,0), router 5 = (1,1): go East first.
/// assert_eq!(route_xy(&t, RouterId(0), RouterId(5), 0), RouteStep::Forward(PortDir::East));
/// // at destination: eject.
/// assert_eq!(route_xy(&t, RouterId(5), RouterId(5), 0), RouteStep::Eject(0));
/// ```
pub fn route_xy(topo: &Topology, here: RouterId, dst_router: RouterId, dst_slot: u8) -> RouteStep {
    let c = topo.coord(here);
    let d = topo.coord(dst_router);
    if c.x < d.x {
        RouteStep::Forward(PortDir::East)
    } else if c.x > d.x {
        RouteStep::Forward(PortDir::West)
    } else if c.y < d.y {
        RouteStep::Forward(PortDir::South)
    } else if c.y > d.y {
        RouteStep::Forward(PortDir::North)
    } else {
        RouteStep::Eject(dst_slot)
    }
}

/// Returns the output *port index* (within the shared port layout) for the
/// same decision as [`route_xy`].
pub fn route_xy_port(topo: &Topology, here: RouterId, dst_router: RouterId, dst_slot: u8) -> usize {
    match route_xy(topo, here, dst_router, dst_slot) {
        RouteStep::Forward(dir) => topo.port_index(dir),
        RouteStep::Eject(slot) => topo.port_index(PortDir::Local(slot)),
    }
}

/// Walks the full X-Y path between two routers, returning every router
/// visited including both endpoints. Useful for tests and analysis.
pub fn xy_path(topo: &Topology, src: RouterId, dst: RouterId) -> Vec<RouterId> {
    let mut path = vec![src];
    let mut here = src;
    while here != dst {
        match route_xy(topo, here, dst, 0) {
            RouteStep::Forward(dir) => {
                here = topo
                    .neighbor(here, dir)
                    .expect("x-y routing stepped off the mesh");
                path.push(here);
            }
            RouteStep::Eject(_) => unreachable!("eject before reaching destination"),
        }
    }
    path
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::types::Coord;

    #[test]
    fn path_length_is_manhattan_distance() {
        let t = Topology::uniform_mesh(8, 8).unwrap();
        for (a, b) in [(0usize, 63usize), (7, 56), (10, 10), (3, 32)] {
            let p = xy_path(&t, RouterId(a), RouterId(b));
            let dist = t.coord(RouterId(a)).manhattan(t.coord(RouterId(b)));
            assert_eq!(p.len() as u32, dist + 1);
        }
    }

    #[test]
    fn x_is_corrected_before_y() {
        let t = Topology::uniform_mesh(4, 4).unwrap();
        let src = t.router_at(Coord::new(0, 0));
        let dst = t.router_at(Coord::new(2, 3));
        let path = xy_path(&t, src, dst);
        // First two hops go east, then three go south.
        let coords: Vec<_> = path.iter().map(|&r| t.coord(r)).collect();
        assert_eq!(coords[0], Coord::new(0, 0));
        assert_eq!(coords[1], Coord::new(1, 0));
        assert_eq!(coords[2], Coord::new(2, 0));
        assert_eq!(coords[3], Coord::new(2, 1));
        assert_eq!(coords.last().copied(), Some(Coord::new(2, 3)));
    }

    #[test]
    fn eject_uses_requested_slot() {
        let t = Topology::mesh(2, 2, 2).unwrap();
        assert_eq!(route_xy(&t, RouterId(3), RouterId(3), 1), RouteStep::Eject(1));
        assert_eq!(
            route_xy_port(&t, RouterId(3), RouterId(3), 1),
            t.port_index(PortDir::Local(1))
        );
    }
}

/// Deadlock-free *west-first* adaptive routing (turn model).
///
/// If the destination lies to the west, the packet must finish all its
/// westward hops first (the only allowed turns into West are at the
/// source); otherwise any minimal direction among {East, North, South} may
/// be chosen, and this function picks the one the caller's congestion
/// estimate likes best (lower is better). Forbidding the four turns into
/// West breaks all cycles, so the scheme is deadlock-free on a mesh while
/// letting packets steer around congestion.
pub fn route_west_first<F>(
    topo: &Topology,
    here: RouterId,
    dst_router: RouterId,
    dst_slot: u8,
    congestion: F,
) -> RouteStep
where
    F: Fn(PortDir) -> u32,
{
    let c = topo.coord(here);
    let d = topo.coord(dst_router);
    if c == d {
        return RouteStep::Eject(dst_slot);
    }
    if d.x < c.x {
        // Westward traffic is non-adaptive: go west first.
        return RouteStep::Forward(PortDir::West);
    }
    // Minimal productive directions (never West here).
    let mut options: Vec<PortDir> = Vec::with_capacity(3);
    if d.x > c.x {
        options.push(PortDir::East);
    }
    if d.y < c.y {
        options.push(PortDir::North);
    }
    if d.y > c.y {
        options.push(PortDir::South);
    }
    let best = options
        .into_iter()
        .min_by_key(|&dir| (congestion(dir), topo.port_index(dir)))
        .expect("not at destination, so at least one productive direction");
    RouteStep::Forward(best)
}

/// Dimension-order routing with wraparound on a torus: the column is
/// corrected first, the short way around its ring (East on ties), then the
/// row (South on ties), then the packet ejects. Deterministic and minimal
/// on a torus; on a ring (one-row torus) it degenerates to
/// [`route_ring`].
///
/// ```
/// use noc_sim::{Topology, RouterId, route_torus, RouteStep, PortDir};
/// let t = Topology::uniform_torus(4, 4).unwrap();
/// // (0,0) → (3,0): one wrap hop West beats three hops East.
/// assert_eq!(route_torus(&t, RouterId(0), RouterId(3), 0), RouteStep::Forward(PortDir::West));
/// ```
pub fn route_torus(topo: &Topology, here: RouterId, dst_router: RouterId, dst_slot: u8) -> RouteStep {
    let c = topo.coord(here);
    let d = topo.coord(dst_router);
    if c.x != d.x {
        let w = topo.width();
        // Hops if we keep going East (wrapping); West costs w - fwd.
        let fwd = (d.x + w - c.x) % w;
        if u32::from(fwd) * 2 <= u32::from(w) {
            RouteStep::Forward(PortDir::East)
        } else {
            RouteStep::Forward(PortDir::West)
        }
    } else if c.y != d.y {
        let h = topo.height();
        let fwd = (d.y + h - c.y) % h;
        if u32::from(fwd) * 2 <= u32::from(h) {
            RouteStep::Forward(PortDir::South)
        } else {
            RouteStep::Forward(PortDir::North)
        }
    } else {
        RouteStep::Eject(dst_slot)
    }
}

/// Shortest-way-around traversal on a ring: West or East, whichever side
/// is shorter (East on ties), then eject.
pub fn route_ring(topo: &Topology, here: RouterId, dst_router: RouterId, dst_slot: u8) -> RouteStep {
    let c = topo.coord(here);
    let d = topo.coord(dst_router);
    if c.x == d.x {
        return RouteStep::Eject(dst_slot);
    }
    let n = topo.width();
    let fwd = (d.x + n - c.x) % n;
    if u32::from(fwd) * 2 <= u32::from(n) {
        RouteStep::Forward(PortDir::East)
    } else {
        RouteStep::Forward(PortDir::West)
    }
}

/// Table-driven shortest-path routing: follows the topology's precomputed
/// next-hop table ([`Topology::next_hop_port`]). Deterministic on any
/// connected graph — the routing function for degraded topologies.
pub fn route_table(topo: &Topology, here: RouterId, dst_router: RouterId, dst_slot: u8) -> RouteStep {
    match topo.next_hop_port(here, dst_router) {
        Some(port) => RouteStep::Forward(topo.port_dir(port)),
        None => RouteStep::Eject(dst_slot),
    }
}

/// Dispatches one routing decision for a deterministic [`RoutingKind`].
///
/// # Panics
///
/// Panics on [`RoutingKind::WestFirstAdaptive`] — adaptive routing needs a
/// congestion estimate; call [`route_west_first`] directly.
pub fn route_deterministic(
    kind: RoutingKind,
    topo: &Topology,
    here: RouterId,
    dst_router: RouterId,
    dst_slot: u8,
) -> RouteStep {
    match kind {
        RoutingKind::XY => route_xy(topo, here, dst_router, dst_slot),
        RoutingKind::TorusDimOrder => route_torus(topo, here, dst_router, dst_slot),
        RoutingKind::RingShortest => route_ring(topo, here, dst_router, dst_slot),
        RoutingKind::TableShortest => route_table(topo, here, dst_router, dst_slot),
        RoutingKind::WestFirstAdaptive => {
            panic!("adaptive routing needs a congestion estimate; use route_west_first")
        }
    }
}

/// Walks the full path a deterministic routing kind takes between two
/// routers, returning every router visited including both endpoints.
/// Useful for tests and analysis (the generalization of [`xy_path`]).
///
/// # Panics
///
/// Panics on [`RoutingKind::WestFirstAdaptive`], on a routing/topology
/// mismatch that steps through a disconnected port, and on a routing loop.
pub fn route_path(kind: RoutingKind, topo: &Topology, src: RouterId, dst: RouterId) -> Vec<RouterId> {
    let mut path = vec![src];
    let mut here = src;
    while here != dst {
        match route_deterministic(kind, topo, here, dst, 0) {
            RouteStep::Forward(dir) => {
                here = topo
                    .neighbor(here, dir)
                    .expect("deterministic routing stepped through a disconnected port");
                assert!(path.len() <= topo.num_routers(), "routing loop");
                path.push(here);
            }
            RouteStep::Eject(_) => unreachable!("eject before reaching destination"),
        }
    }
    path
}

#[cfg(test)]
mod graph_routing_tests {
    use super::*;
    use crate::types::Coord;

    /// Golden path: torus dimension-order corrects x the short way around
    /// (with a wrap hop), then y.
    #[test]
    fn torus_path_wraps_the_short_way() {
        let t = Topology::uniform_torus(4, 4).unwrap();
        let src = t.router_at(Coord::new(0, 0));
        let dst = t.router_at(Coord::new(3, 3));
        let path = route_path(RoutingKind::TorusDimOrder, &t, src, dst);
        let coords: Vec<_> = path.iter().map(|&r| t.coord(r)).collect();
        // One wrap hop West to x=3, then one wrap hop North to y=3.
        assert_eq!(
            coords,
            vec![Coord::new(0, 0), Coord::new(3, 0), Coord::new(3, 3)]
        );
    }

    /// Golden path: the exact-half tie goes East (x) and South (y).
    #[test]
    fn torus_tie_breaks_east_then_south() {
        let t = Topology::uniform_torus(4, 4).unwrap();
        let src = t.router_at(Coord::new(0, 0));
        let dst = t.router_at(Coord::new(2, 2));
        let path = route_path(RoutingKind::TorusDimOrder, &t, src, dst);
        let coords: Vec<_> = path.iter().map(|&r| t.coord(r)).collect();
        assert_eq!(
            coords,
            vec![
                Coord::new(0, 0),
                Coord::new(1, 0),
                Coord::new(2, 0),
                Coord::new(2, 1),
                Coord::new(2, 2)
            ]
        );
    }

    /// Torus paths are minimal: path length equals the graph hop distance.
    #[test]
    fn torus_paths_are_minimal() {
        let t = Topology::uniform_torus(4, 3).unwrap();
        for a in 0..t.num_routers() {
            for b in 0..t.num_routers() {
                let p = route_path(RoutingKind::TorusDimOrder, &t, RouterId(a), RouterId(b));
                assert_eq!(p.len() as u32 - 1, t.hop_distance(RouterId(a), RouterId(b)));
            }
        }
    }

    /// Golden path: ring traversal takes the short side and wraps.
    #[test]
    fn ring_path_takes_the_short_side() {
        let t = Topology::uniform_ring(6).unwrap();
        // 0 → 5 is one hop West (wrap), not five hops East.
        assert_eq!(
            route_path(RoutingKind::RingShortest, &t, RouterId(0), RouterId(5)),
            vec![RouterId(0), RouterId(5)]
        );
        // The exact-half tie (0 → 3) goes East.
        assert_eq!(
            route_path(RoutingKind::RingShortest, &t, RouterId(0), RouterId(3)),
            vec![RouterId(0), RouterId(1), RouterId(2), RouterId(3)]
        );
    }

    /// Table routing follows shortest paths on every topology kind, and on
    /// a degraded mesh routes around the holes.
    #[test]
    fn table_paths_are_shortest_on_every_kind() {
        for t in [
            Topology::uniform_mesh(4, 4).unwrap(),
            Topology::uniform_torus(4, 4).unwrap(),
            Topology::uniform_ring(7).unwrap(),
            Topology::uniform_degraded_mesh(4, 4, 5, 0.25).unwrap(),
        ] {
            for a in 0..t.num_routers() {
                for b in 0..t.num_routers() {
                    let p = route_path(RoutingKind::TableShortest, &t, RouterId(a), RouterId(b));
                    assert_eq!(
                        p.len() as u32 - 1,
                        t.hop_distance(RouterId(a), RouterId(b)),
                        "{} {a}->{b}",
                        t.kind().as_str()
                    );
                }
            }
        }
    }

    /// Golden path: table routing detours around a removed link.
    #[test]
    fn table_path_routes_around_a_hole() {
        let t = Topology::degraded(3, 1, 1, &[(RouterId(0), PortDir::East)]).unwrap_err();
        // A 3×1 line minus its first link disconnects — build 2×2 instead.
        assert_eq!(t, crate::error::ConfigError::DisconnectedTopology);
        let t = Topology::degraded(2, 2, 1, &[(RouterId(0), PortDir::East)]).unwrap();
        assert_eq!(
            route_path(RoutingKind::TableShortest, &t, RouterId(0), RouterId(1)),
            vec![RouterId(0), RouterId(2), RouterId(3), RouterId(1)]
        );
    }

    /// On a torus, X-Y routing still works (it never uses the wrap links),
    /// and dimension-order on a ring equals ring traversal.
    #[test]
    fn cross_kind_compatibility() {
        let torus = Topology::uniform_torus(4, 4).unwrap();
        let p = route_path(RoutingKind::XY, &torus, RouterId(0), RouterId(15));
        assert_eq!(p.len() as u32 - 1, 6); // Manhattan, ignoring wraps
        let ring = Topology::uniform_ring(6).unwrap();
        for a in 0..6 {
            for b in 0..6 {
                assert_eq!(
                    route_path(RoutingKind::TorusDimOrder, &ring, RouterId(a), RouterId(b)),
                    route_path(RoutingKind::RingShortest, &ring, RouterId(a), RouterId(b)),
                );
            }
        }
    }
}

#[cfg(test)]
mod west_first_tests {
    use super::*;
    use crate::types::Coord;

    fn uncongested(_: PortDir) -> u32 {
        0
    }

    #[test]
    fn westward_destinations_route_west_first() {
        let t = Topology::uniform_mesh(6, 6).unwrap();
        let here = t.router_at(Coord::new(4, 2));
        let dst = t.router_at(Coord::new(1, 5));
        assert_eq!(
            route_west_first(&t, here, dst, 0, uncongested),
            RouteStep::Forward(PortDir::West)
        );
    }

    #[test]
    fn adaptive_choice_follows_congestion() {
        let t = Topology::uniform_mesh(6, 6).unwrap();
        let here = t.router_at(Coord::new(1, 1));
        let dst = t.router_at(Coord::new(4, 4)); // east and south both minimal
        let prefer_south =
            |dir: PortDir| if dir == PortDir::South { 0 } else { 9 };
        let prefer_east = |dir: PortDir| if dir == PortDir::East { 0 } else { 9 };
        assert_eq!(
            route_west_first(&t, here, dst, 0, prefer_south),
            RouteStep::Forward(PortDir::South)
        );
        assert_eq!(
            route_west_first(&t, here, dst, 0, prefer_east),
            RouteStep::Forward(PortDir::East)
        );
    }

    #[test]
    fn always_minimal_and_terminates() {
        let t = Topology::uniform_mesh(8, 8).unwrap();
        for (a, b) in [(0usize, 63usize), (63, 0), (7, 56), (20, 20), (5, 40)] {
            let (src, dst) = (RouterId(a), RouterId(b));
            let mut here = src;
            let mut hops = 0;
            loop {
                match route_west_first(&t, here, dst, 0, |_| 1) {
                    RouteStep::Eject(_) => break,
                    RouteStep::Forward(dir) => {
                        here = t.neighbor(here, dir).expect("stays on mesh");
                        hops += 1;
                        assert!(hops <= 64, "routing loop");
                    }
                }
            }
            assert_eq!(hops, t.coord(src).manhattan(t.coord(dst)));
        }
    }

    #[test]
    fn no_turn_into_west_after_leaving_source_column() {
        // Once a west-first route makes a non-West move, it never moves
        // West again (the turn-model invariant).
        let t = Topology::uniform_mesh(8, 8).unwrap();
        for (a, b) in [(3usize, 32usize), (60, 5), (10, 17), (56, 7)] {
            let (src, dst) = (RouterId(a), RouterId(b));
            let mut here = src;
            let mut seen_non_west = false;
            loop {
                match route_west_first(&t, here, dst, 0, |_| 0) {
                    RouteStep::Eject(_) => break,
                    RouteStep::Forward(dir) => {
                        if dir == PortDir::West {
                            assert!(!seen_non_west, "illegal turn into West");
                        } else {
                            seen_non_west = true;
                        }
                        here = t.neighbor(here, dir).unwrap();
                    }
                }
            }
        }
    }
}
