//! Deterministic dimension-order (X-Y) routing.
//!
//! X-Y routing first corrects the column (West/East), then the row
//! (North/South), then ejects through the destination's local port. It is
//! minimal and deadlock-free on a mesh, and is the routing function assumed
//! by the paper's RL-inspired arbiter (§4.7 attributes the East/West vs
//! North/South hop-count asymmetry to "the underlying X-Y routing").

use crate::topology::Topology;
use crate::types::{PortDir, RouterId};

/// Routing decision produced by [`route_xy`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RouteStep {
    /// Forward out of the given mesh direction.
    Forward(PortDir),
    /// Eject to the local port with the given slot.
    Eject(u8),
}

/// Computes the output direction a packet at `here` must take to reach
/// `(dst_router, dst_slot)` under X-Y routing.
///
/// ```
/// use noc_sim::{Topology, RouterId, route_xy, RouteStep, PortDir};
/// let t = Topology::uniform_mesh(4, 4).unwrap();
/// // router 0 = (0,0), router 5 = (1,1): go East first.
/// assert_eq!(route_xy(&t, RouterId(0), RouterId(5), 0), RouteStep::Forward(PortDir::East));
/// // at destination: eject.
/// assert_eq!(route_xy(&t, RouterId(5), RouterId(5), 0), RouteStep::Eject(0));
/// ```
pub fn route_xy(topo: &Topology, here: RouterId, dst_router: RouterId, dst_slot: u8) -> RouteStep {
    let c = topo.coord(here);
    let d = topo.coord(dst_router);
    if c.x < d.x {
        RouteStep::Forward(PortDir::East)
    } else if c.x > d.x {
        RouteStep::Forward(PortDir::West)
    } else if c.y < d.y {
        RouteStep::Forward(PortDir::South)
    } else if c.y > d.y {
        RouteStep::Forward(PortDir::North)
    } else {
        RouteStep::Eject(dst_slot)
    }
}

/// Returns the output *port index* (within the shared port layout) for the
/// same decision as [`route_xy`].
pub fn route_xy_port(topo: &Topology, here: RouterId, dst_router: RouterId, dst_slot: u8) -> usize {
    match route_xy(topo, here, dst_router, dst_slot) {
        RouteStep::Forward(dir) => topo.port_index(dir),
        RouteStep::Eject(slot) => topo.port_index(PortDir::Local(slot)),
    }
}

/// Walks the full X-Y path between two routers, returning every router
/// visited including both endpoints. Useful for tests and analysis.
pub fn xy_path(topo: &Topology, src: RouterId, dst: RouterId) -> Vec<RouterId> {
    let mut path = vec![src];
    let mut here = src;
    while here != dst {
        match route_xy(topo, here, dst, 0) {
            RouteStep::Forward(dir) => {
                here = topo
                    .neighbor(here, dir)
                    .expect("x-y routing stepped off the mesh");
                path.push(here);
            }
            RouteStep::Eject(_) => unreachable!("eject before reaching destination"),
        }
    }
    path
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::types::Coord;

    #[test]
    fn path_length_is_manhattan_distance() {
        let t = Topology::uniform_mesh(8, 8).unwrap();
        for (a, b) in [(0usize, 63usize), (7, 56), (10, 10), (3, 32)] {
            let p = xy_path(&t, RouterId(a), RouterId(b));
            let dist = t.coord(RouterId(a)).manhattan(t.coord(RouterId(b)));
            assert_eq!(p.len() as u32, dist + 1);
        }
    }

    #[test]
    fn x_is_corrected_before_y() {
        let t = Topology::uniform_mesh(4, 4).unwrap();
        let src = t.router_at(Coord::new(0, 0));
        let dst = t.router_at(Coord::new(2, 3));
        let path = xy_path(&t, src, dst);
        // First two hops go east, then three go south.
        let coords: Vec<_> = path.iter().map(|&r| t.coord(r)).collect();
        assert_eq!(coords[0], Coord::new(0, 0));
        assert_eq!(coords[1], Coord::new(1, 0));
        assert_eq!(coords[2], Coord::new(2, 0));
        assert_eq!(coords[3], Coord::new(2, 1));
        assert_eq!(coords.last().copied(), Some(Coord::new(2, 3)));
    }

    #[test]
    fn eject_uses_requested_slot() {
        let t = Topology::mesh(2, 2, 2).unwrap();
        assert_eq!(route_xy(&t, RouterId(3), RouterId(3), 1), RouteStep::Eject(1));
        assert_eq!(
            route_xy_port(&t, RouterId(3), RouterId(3), 1),
            t.port_index(PortDir::Local(1))
        );
    }
}

/// Deadlock-free *west-first* adaptive routing (turn model).
///
/// If the destination lies to the west, the packet must finish all its
/// westward hops first (the only allowed turns into West are at the
/// source); otherwise any minimal direction among {East, North, South} may
/// be chosen, and this function picks the one the caller's congestion
/// estimate likes best (lower is better). Forbidding the four turns into
/// West breaks all cycles, so the scheme is deadlock-free on a mesh while
/// letting packets steer around congestion.
pub fn route_west_first<F>(
    topo: &Topology,
    here: RouterId,
    dst_router: RouterId,
    dst_slot: u8,
    congestion: F,
) -> RouteStep
where
    F: Fn(PortDir) -> u32,
{
    let c = topo.coord(here);
    let d = topo.coord(dst_router);
    if c == d {
        return RouteStep::Eject(dst_slot);
    }
    if d.x < c.x {
        // Westward traffic is non-adaptive: go west first.
        return RouteStep::Forward(PortDir::West);
    }
    // Minimal productive directions (never West here).
    let mut options: Vec<PortDir> = Vec::with_capacity(3);
    if d.x > c.x {
        options.push(PortDir::East);
    }
    if d.y < c.y {
        options.push(PortDir::North);
    }
    if d.y > c.y {
        options.push(PortDir::South);
    }
    let best = options
        .into_iter()
        .min_by_key(|&dir| (congestion(dir), topo.port_index(dir)))
        .expect("not at destination, so at least one productive direction");
    RouteStep::Forward(best)
}

#[cfg(test)]
mod west_first_tests {
    use super::*;
    use crate::types::Coord;

    fn uncongested(_: PortDir) -> u32 {
        0
    }

    #[test]
    fn westward_destinations_route_west_first() {
        let t = Topology::uniform_mesh(6, 6).unwrap();
        let here = t.router_at(Coord::new(4, 2));
        let dst = t.router_at(Coord::new(1, 5));
        assert_eq!(
            route_west_first(&t, here, dst, 0, uncongested),
            RouteStep::Forward(PortDir::West)
        );
    }

    #[test]
    fn adaptive_choice_follows_congestion() {
        let t = Topology::uniform_mesh(6, 6).unwrap();
        let here = t.router_at(Coord::new(1, 1));
        let dst = t.router_at(Coord::new(4, 4)); // east and south both minimal
        let prefer_south =
            |dir: PortDir| if dir == PortDir::South { 0 } else { 9 };
        let prefer_east = |dir: PortDir| if dir == PortDir::East { 0 } else { 9 };
        assert_eq!(
            route_west_first(&t, here, dst, 0, prefer_south),
            RouteStep::Forward(PortDir::South)
        );
        assert_eq!(
            route_west_first(&t, here, dst, 0, prefer_east),
            RouteStep::Forward(PortDir::East)
        );
    }

    #[test]
    fn always_minimal_and_terminates() {
        let t = Topology::uniform_mesh(8, 8).unwrap();
        for (a, b) in [(0usize, 63usize), (63, 0), (7, 56), (20, 20), (5, 40)] {
            let (src, dst) = (RouterId(a), RouterId(b));
            let mut here = src;
            let mut hops = 0;
            loop {
                match route_west_first(&t, here, dst, 0, |_| 1) {
                    RouteStep::Eject(_) => break,
                    RouteStep::Forward(dir) => {
                        here = t.neighbor(here, dir).expect("stays on mesh");
                        hops += 1;
                        assert!(hops <= 64, "routing loop");
                    }
                }
            }
            assert_eq!(hops, t.coord(src).manhattan(t.coord(dst)));
        }
    }

    #[test]
    fn no_turn_into_west_after_leaving_source_column() {
        // Once a west-first route makes a non-West move, it never moves
        // West again (the turn-model invariant).
        let t = Topology::uniform_mesh(8, 8).unwrap();
        for (a, b) in [(3usize, 32usize), (60, 5), (10, 17), (56, 7)] {
            let (src, dst) = (RouterId(a), RouterId(b));
            let mut here = src;
            let mut seen_non_west = false;
            loop {
                match route_west_first(&t, here, dst, 0, |_| 0) {
                    RouteStep::Eject(_) => break,
                    RouteStep::Forward(dir) => {
                        if dir == PortDir::West {
                            assert!(!seen_non_west, "illegal turn into West");
                        } else {
                            seen_non_west = true;
                        }
                        here = t.neighbor(here, dir).unwrap();
                    }
                }
            }
        }
    }
}
