//! Per-packet event tracing.
//!
//! When enabled, the simulator records the life of each packet — creation,
//! network injection, every hop, ejection — up to a configurable event
//! budget. Traces are the ground truth behind debugging sessions ("where
//! did this packet spend its 400 cycles?") and the per-hop analyses the
//! paper's interpretability work leans on.

use crate::types::RouterId;

/// One traced packet event.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TraceEvent {
    /// Cycle the event occurred.
    pub cycle: u64,
    /// The packet involved.
    pub packet_id: u64,
    /// What happened.
    pub kind: TraceKind,
}

/// The kind of a trace event.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TraceKind {
    /// Created by the traffic source (entered a source queue).
    Created,
    /// Left the source queue into the network.
    Injected {
        /// Router the packet entered at.
        router: RouterId,
    },
    /// Won switch arbitration and was forwarded to the next router.
    Forwarded {
        /// Router that forwarded the packet.
        router: RouterId,
        /// Output port granted.
        out_port: usize,
    },
    /// Ejected to its destination node.
    Delivered {
        /// Router the packet left the network at.
        router: RouterId,
    },
    /// Won arbitration but the transmission was lost to a transient link
    /// fault; the packet stays queued for retry.
    FaultDropped {
        /// Router whose output link corrupted the transmission.
        router: RouterId,
        /// Output port the transmission was attempted on.
        out_port: usize,
    },
}

/// A bounded event recorder.
#[derive(Debug, Clone, Default)]
pub struct PacketTrace {
    events: Vec<TraceEvent>,
    capacity: usize,
    dropped: u64,
}

impl PacketTrace {
    /// Creates a recorder that keeps at most `capacity` events; further
    /// events are counted but dropped.
    pub fn new(capacity: usize) -> Self {
        PacketTrace {
            events: Vec::new(),
            capacity,
            dropped: 0,
        }
    }

    /// Records an event (or counts it as dropped once full).
    pub fn record(&mut self, event: TraceEvent) {
        if self.events.len() < self.capacity {
            self.events.push(event);
        } else {
            self.dropped += 1;
        }
    }

    /// All recorded events, in simulation order.
    pub fn events(&self) -> &[TraceEvent] {
        &self.events
    }

    /// Events dropped after the budget was exhausted.
    pub fn dropped(&self) -> u64 {
        self.dropped
    }

    /// Events of one packet, in order.
    pub fn packet_events(&self, packet_id: u64) -> Vec<TraceEvent> {
        self.events
            .iter()
            .copied()
            .filter(|e| e.packet_id == packet_id)
            .collect()
    }

    /// Renders a packet's journey as one human-readable line per event.
    pub fn format_packet(&self, packet_id: u64) -> String {
        let mut out = String::new();
        for e in self.packet_events(packet_id) {
            let line = match e.kind {
                TraceKind::Created => format!("cycle {:>6}: created", e.cycle),
                TraceKind::Injected { router } => {
                    format!("cycle {:>6}: injected at {router}", e.cycle)
                }
                TraceKind::Forwarded { router, out_port } => {
                    format!("cycle {:>6}: forwarded by {router} port {out_port}", e.cycle)
                }
                TraceKind::Delivered { router } => {
                    format!("cycle {:>6}: delivered via {router}", e.cycle)
                }
                TraceKind::FaultDropped { router, out_port } => {
                    format!(
                        "cycle {:>6}: dropped by fault at {router} port {out_port}",
                        e.cycle
                    )
                }
            };
            out.push_str(&line);
            out.push('\n');
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ev(cycle: u64, id: u64, kind: TraceKind) -> TraceEvent {
        TraceEvent {
            cycle,
            packet_id: id,
            kind,
        }
    }

    #[test]
    fn records_up_to_capacity_then_counts_drops() {
        let mut t = PacketTrace::new(2);
        t.record(ev(0, 1, TraceKind::Created));
        t.record(ev(1, 1, TraceKind::Injected { router: RouterId(0) }));
        t.record(ev(2, 1, TraceKind::Delivered { router: RouterId(3) }));
        assert_eq!(t.events().len(), 2);
        assert_eq!(t.dropped(), 1);
    }

    #[test]
    fn packet_filter_and_formatting() {
        let mut t = PacketTrace::new(100);
        t.record(ev(0, 7, TraceKind::Created));
        t.record(ev(0, 8, TraceKind::Created));
        t.record(ev(3, 7, TraceKind::Forwarded { router: RouterId(1), out_port: 4 }));
        t.record(ev(9, 7, TraceKind::Delivered { router: RouterId(2) }));
        assert_eq!(t.packet_events(7).len(), 3);
        let text = t.format_packet(7);
        assert!(text.contains("created"));
        assert!(text.contains("forwarded by r1 port 4"));
        assert!(text.contains("delivered via r2"));
        assert_eq!(text.lines().count(), 3);
    }
}
