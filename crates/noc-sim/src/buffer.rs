//! Input virtual-channel buffers with credit (free-space) accounting.

use std::collections::VecDeque;

use crate::packet::{BufferedPacket, Packet};

/// One input virtual-channel buffer.
///
/// Capacity is tracked in flits. Under virtual cut-through switching a packet
/// may only be forwarded when the downstream buffer has room for *all* of its
/// flits, so upstream routers `reserve` space at grant time (the moment the
/// credit is consumed) and convert the reservation into occupancy when the
/// packet physically arrives.
#[derive(Debug, Clone)]
pub struct VcBuffer {
    queue: VecDeque<BufferedPacket>,
    capacity_flits: u32,
    used_flits: u32,
    reserved_flits: u32,
    /// Capacity currently disabled by an active VC-shrink fault
    /// (see [`crate::FaultKind::VcShrink`]).
    shrink_flits: u32,
    last_arrival: Option<u64>,
}

impl VcBuffer {
    /// Creates an empty buffer holding up to `capacity_flits` flits.
    pub fn new(capacity_flits: u32) -> Self {
        VcBuffer {
            queue: VecDeque::new(),
            capacity_flits,
            used_flits: 0,
            reserved_flits: 0,
            shrink_flits: 0,
            last_arrival: None,
        }
    }

    /// Capacity in flits.
    pub fn capacity_flits(&self) -> u32 {
        self.capacity_flits
    }

    /// Disables `flits` flits of capacity (a VC-shrink fault); `0` restores
    /// the full buffer. Packets already stored are unaffected — the shrink
    /// only squeezes the credit advertised upstream, which saturates at
    /// zero while occupancy exceeds the reduced capacity.
    pub fn set_shrink(&mut self, flits: u32) {
        self.shrink_flits = flits;
    }

    /// Capacity currently disabled by a VC-shrink fault.
    pub fn shrink_flits(&self) -> u32 {
        self.shrink_flits
    }

    /// Flits currently stored.
    pub fn used_flits(&self) -> u32 {
        self.used_flits
    }

    /// Flits promised to in-flight packets that have not yet arrived.
    pub fn reserved_flits(&self) -> u32 {
        self.reserved_flits
    }

    /// Free (unreserved, unoccupied) flits — the credit count the upstream
    /// router sees. An active shrink fault reduces the effective capacity;
    /// the result saturates at zero when stored packets already exceed it.
    pub fn free_flits(&self) -> u32 {
        self.capacity_flits
            .saturating_sub(self.shrink_flits)
            .saturating_sub(self.used_flits + self.reserved_flits)
    }

    /// Whether a packet of `len` flits may be granted toward this buffer now.
    pub fn can_reserve(&self, len: u32) -> bool {
        self.free_flits() >= len
    }

    /// Consumes credit for an in-flight packet of `len` flits.
    ///
    /// # Panics
    ///
    /// Panics if the buffer does not have `len` free flits; callers must
    /// check [`VcBuffer::can_reserve`] first.
    pub fn reserve(&mut self, len: u32) {
        assert!(self.can_reserve(len), "reserve() without available credit");
        self.reserved_flits += len;
    }

    /// Returns credit consumed by a transmission that was lost to a link
    /// fault, once the credit-reconciliation message arrives (the inverse
    /// of [`VcBuffer::reserve`]).
    ///
    /// # Panics
    ///
    /// Panics if `len` exceeds the outstanding reservation.
    pub fn unreserve(&mut self, len: u32) {
        assert!(
            self.reserved_flits >= len,
            "unreserve() without a matching reservation"
        );
        self.reserved_flits -= len;
    }

    /// Stores an arriving packet, converting its reservation into occupancy,
    /// and stamps its inter-arrival gap.
    ///
    /// # Panics
    ///
    /// Panics if no matching reservation exists.
    pub fn push_arrival(&mut self, packet: Packet, cycle: u64) {
        let len = packet.len_flits;
        assert!(
            self.reserved_flits >= len,
            "arrival without a matching reservation"
        );
        self.reserved_flits -= len;
        self.used_flits += len;
        let inter_arrival = match self.last_arrival {
            Some(prev) => cycle.saturating_sub(prev),
            None => cycle,
        };
        self.last_arrival = Some(cycle);
        self.queue.push_back(BufferedPacket {
            packet,
            arrival_cycle: cycle,
            inter_arrival,
        });
    }

    /// Stores an injected packet directly (source queue → buffer), which
    /// both reserves and occupies in one step.
    ///
    /// # Panics
    ///
    /// Panics if there is not enough free space.
    pub fn push_injection(&mut self, packet: Packet, cycle: u64) {
        let len = packet.len_flits;
        self.reserve(len);
        self.push_arrival(packet, cycle);
    }

    /// The packet at the head of the buffer, if any. Only head packets
    /// compete for arbitration (FIFO order within a VC).
    pub fn head(&self) -> Option<&BufferedPacket> {
        self.queue.front()
    }

    /// Removes and returns the head packet, releasing its flits.
    pub fn pop(&mut self) -> Option<BufferedPacket> {
        let bp = self.queue.pop_front()?;
        self.used_flits -= bp.packet.len_flits;
        Some(bp)
    }

    /// Total flits of the packets currently queued, recomputed from the
    /// queue itself. The invariant checker cross-checks this against the
    /// incrementally maintained [`VcBuffer::used_flits`].
    pub fn queued_flits(&self) -> u32 {
        self.queue.iter().map(|bp| bp.packet.len_flits).sum()
    }

    /// Number of buffered packets.
    pub fn len(&self) -> usize {
        self.queue.len()
    }

    /// True when no packets are buffered.
    pub fn is_empty(&self) -> bool {
        self.queue.is_empty()
    }

    /// Iterates over buffered packets, head first.
    pub fn iter(&self) -> impl Iterator<Item = &BufferedPacket> {
        self.queue.iter()
    }

    /// A read-only snapshot of this buffer's books (see `VcView`).
    pub fn as_view(&self) -> VcView<'_> {
        VcView {
            used_flits: self.used_flits,
            reserved_flits: self.reserved_flits,
            capacity_flits: self.capacity_flits,
            head: None,
            tail: &self.queue,
        }
    }
}

/// A read-only view of one virtual channel's books, independent of the
/// storage layout. The invariant checker consumes views so it can
/// cross-check both the standalone [`VcBuffer`] and the simulator's
/// structure-of-arrays store ([`VcBufArray`]) through one interface.
#[derive(Debug, Clone, Copy)]
pub struct VcView<'a> {
    used_flits: u32,
    reserved_flits: u32,
    capacity_flits: u32,
    /// Inline head slot ([`VcBufArray`] keeps the head out of the FIFO);
    /// `None` for layouts that store every packet in `tail`.
    head: Option<&'a BufferedPacket>,
    tail: &'a VecDeque<BufferedPacket>,
}

impl<'a> VcView<'a> {
    /// Flits currently stored.
    pub fn used_flits(&self) -> u32 {
        self.used_flits
    }

    /// Flits promised to in-flight packets that have not yet arrived.
    pub fn reserved_flits(&self) -> u32 {
        self.reserved_flits
    }

    /// Capacity in flits.
    pub fn capacity_flits(&self) -> u32 {
        self.capacity_flits
    }

    /// Total flits of the packets currently queued, recomputed from the
    /// queue itself (cross-checked against the incremental count).
    pub fn queued_flits(&self) -> u32 {
        self.iter().map(|bp| bp.packet.len_flits).sum()
    }

    /// Iterates over buffered packets, head first.
    pub fn iter(&self) -> impl Iterator<Item = &'a BufferedPacket> {
        self.head.into_iter().chain(self.tail.iter())
    }
}

/// Structure-of-arrays store for every input VC buffer in a mesh.
///
/// The per-cycle hot loop touches credit counters (used/reserved/shrink)
/// far more often than packet payloads, so those counters live in dense
/// parallel arrays indexed by the flat buffer id
/// `(router * ports + port) * vnets + vnet`, while the packet FIFOs sit in
/// a parallel `Vec<VecDeque>`. Per-index semantics are identical to
/// [`VcBuffer`] — same credit rules, same panic messages — and the
/// equivalence is pinned by tests below; `VcBuffer` remains the
/// single-buffer unit used standalone.
/// A compact mirror of the head packet of one VC: exactly the fields the
/// arbitration request scan reads each cycle, plus the cached route, packed
/// so the whole scan stays within one cache line per VC. Entries are only
/// meaningful while the VC is non-empty; push/pop keep them in sync and
/// reset `route` whenever the head changes.
#[derive(Debug, Clone, Copy)]
pub(crate) struct HotHead {
    pub(crate) arrival_cycle: u64,
    pub(crate) dst_router: u32,
    pub(crate) len_flits: u32,
    pub(crate) dst_slot: u8,
    /// Cached output port for this head (`u8::MAX` = not computed).
    pub(crate) route: u8,
}

impl HotHead {
    #[inline]
    fn of(bp: &BufferedPacket) -> Self {
        HotHead {
            arrival_cycle: bp.arrival_cycle,
            dst_router: bp.packet.dst_router.index() as u32,
            len_flits: bp.packet.len_flits,
            dst_slot: bp.packet.dst_slot,
            route: u8::MAX,
        }
    }
}

/// The second half of the hot mirror: the head fields only needed when a
/// candidate reaches a contended output (age-ordering key). Split from
/// [`HotHead`] so the every-slot scan line stays 24 bytes.
#[derive(Debug, Clone, Copy)]
pub(crate) struct HotAux {
    pub(crate) create_cycle: u64,
    pub(crate) id: u64,
}

#[derive(Debug, Clone)]
pub struct VcBufArray {
    /// Head packet of each buffer, stored inline so the arbitration scan
    /// reads a dense array instead of chasing per-VC heap queues.
    heads: Vec<Option<BufferedPacket>>,
    /// Per-VC hot mirror of the head (see [`HotHead`]).
    pub(crate) hots: Vec<HotHead>,
    /// Per-VC age-key mirror of the head (see [`HotAux`]).
    pub(crate) auxs: Vec<HotAux>,
    /// Second-and-later packets of each buffer (usually empty).
    tails: Vec<VecDeque<BufferedPacket>>,
    /// Credit books, one 12-byte record per buffer so a credit query
    /// touches one cache line instead of three parallel arrays.
    books: Vec<CreditBook>,
    /// Cycle of the most recent arrival per buffer; `u64::MAX` = never.
    last_arrival: Vec<u64>,
    capacity_flits: u32,
}

/// Per-buffer credit counters of [`VcBufArray`], packed together.
#[derive(Debug, Clone, Copy, Default)]
struct CreditBook {
    used: u32,
    reserved: u32,
    shrink: u32,
}

/// Sentinel for "no arrival seen yet" in [`VcBufArray::last_arrival`].
const NEVER: u64 = u64::MAX;

impl VcBufArray {
    /// Creates `n` empty buffers, each holding up to `capacity_flits`.
    pub fn new(n: usize, capacity_flits: u32) -> Self {
        VcBufArray {
            heads: (0..n).map(|_| None).collect(),
            hots: vec![
                HotHead {
                    arrival_cycle: 0,
                    dst_router: 0,
                    len_flits: 0,
                    dst_slot: 0,
                    route: u8::MAX,
                };
                n
            ],
            auxs: vec![
                HotAux {
                    create_cycle: 0,
                    id: 0,
                };
                n
            ],
            tails: (0..n).map(|_| VecDeque::new()).collect(),
            books: vec![CreditBook::default(); n],
            last_arrival: vec![NEVER; n],
            capacity_flits,
        }
    }

    /// Number of buffers in the store.
    pub fn num_buffers(&self) -> usize {
        self.heads.len()
    }

    /// Capacity in flits (uniform across the store).
    pub fn capacity_flits(&self) -> u32 {
        self.capacity_flits
    }

    /// Disables `flits` flits of capacity on buffer `bi` (a VC-shrink
    /// fault); `0` restores the full buffer.
    pub fn set_shrink(&mut self, bi: usize, flits: u32) {
        self.books[bi].shrink = flits;
    }

    /// Free (unreserved, unoccupied) flits of buffer `bi` — the credit
    /// count the upstream router sees (same saturation rules as
    /// [`VcBuffer::free_flits`]).
    #[inline]
    pub fn free_flits(&self, bi: usize) -> u32 {
        let b = self.books[bi];
        self.capacity_flits
            .saturating_sub(b.shrink)
            .saturating_sub(b.used + b.reserved)
    }

    /// Whether a packet of `len` flits may be granted toward buffer `bi`.
    #[inline]
    pub fn can_reserve(&self, bi: usize, len: u32) -> bool {
        self.free_flits(bi) >= len
    }

    /// Consumes credit on buffer `bi` for an in-flight packet of `len`
    /// flits.
    ///
    /// # Panics
    ///
    /// Panics if the buffer does not have `len` free flits.
    #[inline]
    pub fn reserve(&mut self, bi: usize, len: u32) {
        assert!(
            self.can_reserve(bi, len),
            "reserve() without available credit"
        );
        self.books[bi].reserved += len;
    }

    /// Returns previously consumed credit on buffer `bi` (the inverse of
    /// [`VcBufArray::reserve`]).
    ///
    /// # Panics
    ///
    /// Panics if `len` exceeds the outstanding reservation.
    #[inline]
    pub fn unreserve(&mut self, bi: usize, len: u32) {
        assert!(
            self.books[bi].reserved >= len,
            "unreserve() without a matching reservation"
        );
        self.books[bi].reserved -= len;
    }

    /// Stores an arriving packet in buffer `bi`, converting its
    /// reservation into occupancy, and stamps its inter-arrival gap.
    ///
    /// # Panics
    ///
    /// Panics if no matching reservation exists.
    #[inline]
    pub fn push_arrival(&mut self, bi: usize, packet: Packet, cycle: u64) {
        let len = packet.len_flits;
        assert!(
            self.books[bi].reserved >= len,
            "arrival without a matching reservation"
        );
        self.books[bi].reserved -= len;
        self.books[bi].used += len;
        let inter_arrival = match self.last_arrival[bi] {
            NEVER => cycle,
            prev => cycle.saturating_sub(prev),
        };
        self.last_arrival[bi] = cycle;
        let bp = BufferedPacket {
            packet,
            arrival_cycle: cycle,
            inter_arrival,
        };
        if self.heads[bi].is_none() {
            self.hots[bi] = HotHead::of(&bp);
            self.auxs[bi] = HotAux {
                create_cycle: bp.packet.create_cycle,
                id: bp.packet.id,
            };
            self.heads[bi] = Some(bp);
        } else {
            self.tails[bi].push_back(bp);
        }
    }

    /// Stores an injected packet directly into buffer `bi` (source queue →
    /// buffer), which both reserves and occupies in one step.
    ///
    /// # Panics
    ///
    /// Panics if there is not enough free space.
    pub fn push_injection(&mut self, bi: usize, packet: Packet, cycle: u64) {
        let len = packet.len_flits;
        self.reserve(bi, len);
        self.push_arrival(bi, packet, cycle);
    }

    /// The packet at the head of buffer `bi`, if any.
    #[inline]
    pub fn head(&self, bi: usize) -> Option<&BufferedPacket> {
        self.heads[bi].as_ref()
    }

    /// Removes and returns the head packet of buffer `bi`, releasing its
    /// flits.
    #[inline]
    pub fn pop(&mut self, bi: usize) -> Option<BufferedPacket> {
        let bp = self.heads[bi].take()?;
        if let Some(next) = self.tails[bi].pop_front() {
            self.hots[bi] = HotHead::of(&next);
            self.auxs[bi] = HotAux {
                create_cycle: next.packet.create_cycle,
                id: next.packet.id,
            };
            self.heads[bi] = Some(next);
        } else {
            // Leave the hot entry stale; the occupancy bitmap guards reads.
            self.hots[bi].route = u8::MAX;
        }
        self.books[bi].used -= bp.packet.len_flits;
        Some(bp)
    }

    /// True when buffer `bi` holds no packets.
    #[inline]
    pub fn is_empty(&self, bi: usize) -> bool {
        self.heads[bi].is_none()
    }

    /// Iterates over the packets buffered in `bi`, head first.
    pub fn iter(&self, bi: usize) -> impl Iterator<Item = &BufferedPacket> {
        self.heads[bi].iter().chain(self.tails[bi].iter())
    }

    /// The credit book of buffer `bi` as `(used, reserved, shrink)` flits —
    /// the mutable counters a checkpoint must carry.
    pub(crate) fn book_state(&self, bi: usize) -> (u32, u32, u32) {
        let b = self.books[bi];
        (b.used, b.reserved, b.shrink)
    }

    /// Cycle of the most recent arrival at buffer `bi` (`u64::MAX` =
    /// never), the inter-arrival baseline a checkpoint must carry.
    pub(crate) fn last_arrival(&self, bi: usize) -> u64 {
        self.last_arrival[bi]
    }

    /// Deliberately corrupts the credit book of buffer `bi` by counting
    /// one phantom used flit, desynchronizing `used` from the packets
    /// actually stored. Test-only: drives the
    /// [`crate::Simulator::debug_misbehaving_controller`] fault-injection
    /// hook that proves the occupancy-integrity invariant would catch a
    /// buffer controller that touched the books directly.
    pub(crate) fn debug_corrupt_used(&mut self, bi: usize) {
        self.books[bi].used += 1;
    }

    /// Overwrites buffer `bi` with checkpointed state: the exact packet
    /// list (head first, preserving the stored `arrival_cycle` /
    /// `inter_arrival` stamps), credit book, and inter-arrival baseline.
    /// The hot head mirror is rebuilt with an uncomputed route
    /// (`u8::MAX`), which is bit-safe: routes are only cached under
    /// deterministic routing, where recomputation gives the same answer.
    pub(crate) fn restore_buffer(
        &mut self,
        bi: usize,
        mut packets: std::collections::VecDeque<BufferedPacket>,
        book: (u32, u32, u32),
        last_arrival: u64,
    ) {
        let (used, reserved, shrink) = book;
        self.books[bi] = CreditBook {
            used,
            reserved,
            shrink,
        };
        self.last_arrival[bi] = last_arrival;
        match packets.pop_front() {
            Some(head) => {
                self.hots[bi] = HotHead::of(&head);
                self.auxs[bi] = HotAux {
                    create_cycle: head.packet.create_cycle,
                    id: head.packet.id,
                };
                self.heads[bi] = Some(head);
            }
            None => {
                self.heads[bi] = None;
                self.hots[bi].route = u8::MAX;
            }
        }
        self.tails[bi] = packets;
    }

    /// A read-only snapshot of buffer `bi`'s books (see [`VcView`]).
    pub fn view(&self, bi: usize) -> VcView<'_> {
        VcView {
            used_flits: self.books[bi].used,
            reserved_flits: self.books[bi].reserved,
            capacity_flits: self.capacity_flits,
            head: self.heads[bi].as_ref(),
            tail: &self.tails[bi],
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pkt(len: u32) -> Packet {
        let mut p = Packet::test_packet();
        p.len_flits = len;
        p
    }

    #[test]
    fn credit_accounting_roundtrip() {
        let mut b = VcBuffer::new(8);
        assert_eq!(b.free_flits(), 8);
        b.reserve(5);
        assert_eq!(b.free_flits(), 3);
        assert!(!b.can_reserve(4));
        b.push_arrival(pkt(5), 10);
        assert_eq!(b.used_flits(), 5);
        assert_eq!(b.reserved_flits(), 0);
        assert_eq!(b.free_flits(), 3);
        let out = b.pop().unwrap();
        assert_eq!(out.packet.len_flits, 5);
        assert_eq!(b.free_flits(), 8);
        assert!(b.is_empty());
    }

    #[test]
    fn inter_arrival_gap_is_tracked() {
        let mut b = VcBuffer::new(16);
        b.push_injection(pkt(1), 5);
        b.push_injection(pkt(1), 12);
        let mut it = b.iter();
        assert_eq!(it.next().unwrap().inter_arrival, 5); // first arrival: gap = cycle
        assert_eq!(it.next().unwrap().inter_arrival, 7);
    }

    #[test]
    fn queued_flits_recomputes_occupancy() {
        let mut b = VcBuffer::new(16);
        assert_eq!(b.queued_flits(), 0);
        b.push_injection(pkt(5), 0);
        b.push_injection(pkt(3), 1);
        assert_eq!(b.queued_flits(), 8);
        assert_eq!(b.queued_flits(), b.used_flits());
        b.pop();
        assert_eq!(b.queued_flits(), 3);
    }

    #[test]
    fn fifo_order_within_vc() {
        let mut b = VcBuffer::new(8);
        let mut p1 = pkt(1);
        p1.id = 1;
        let mut p2 = pkt(1);
        p2.id = 2;
        b.push_injection(p1, 0);
        b.push_injection(p2, 1);
        assert_eq!(b.pop().unwrap().packet.id, 1);
        assert_eq!(b.pop().unwrap().packet.id, 2);
        assert!(b.pop().is_none());
    }

    #[test]
    #[should_panic(expected = "reserve() without available credit")]
    fn over_reservation_panics() {
        let mut b = VcBuffer::new(4);
        b.reserve(5);
    }

    #[test]
    fn unreserve_returns_credit() {
        let mut b = VcBuffer::new(8);
        b.reserve(5);
        assert_eq!(b.free_flits(), 3);
        b.unreserve(5);
        assert_eq!(b.free_flits(), 8);
        assert_eq!(b.reserved_flits(), 0);
    }

    #[test]
    #[should_panic(expected = "unreserve() without a matching reservation")]
    fn unreserve_without_reservation_panics() {
        let mut b = VcBuffer::new(8);
        b.unreserve(1);
    }

    #[test]
    fn shrink_squeezes_credit_and_saturates() {
        let mut b = VcBuffer::new(8);
        b.push_injection(pkt(5), 0);
        assert_eq!(b.free_flits(), 3);
        b.set_shrink(2);
        assert_eq!(b.free_flits(), 1);
        // Occupancy above the reduced capacity: credit saturates at zero,
        // stored packets are untouched.
        b.set_shrink(6);
        assert_eq!(b.free_flits(), 0);
        assert_eq!(b.used_flits(), 5);
        assert!(!b.can_reserve(1));
        b.set_shrink(0);
        assert_eq!(b.free_flits(), 3);
    }

    #[test]
    #[should_panic(expected = "without a matching reservation")]
    fn arrival_without_reservation_panics() {
        let mut b = VcBuffer::new(4);
        b.push_arrival(pkt(1), 0);
    }

    // ---- structure-of-arrays store --------------------------------------

    #[test]
    fn soa_store_matches_single_buffer_semantics() {
        // Drive a VcBuffer and one slot of a VcBufArray through the same
        // operation sequence; every observable must agree at every step.
        let mut single = VcBuffer::new(8);
        let mut soa = VcBufArray::new(4, 8);
        let bi = 2; // a non-zero slot, so indexing bugs show up
        let ops: &[(&str, u32, u64)] = &[
            ("reserve", 5, 0),
            ("arrive", 5, 10),
            ("shrink", 2, 0),
            ("pop", 0, 0),
            ("shrink", 0, 0),
            ("inject", 3, 15),
            ("inject", 1, 20),
        ];
        for &(op, len, cycle) in ops {
            match op {
                "reserve" => {
                    single.reserve(len);
                    soa.reserve(bi, len);
                }
                "arrive" => {
                    single.push_arrival(pkt(len), cycle);
                    soa.push_arrival(bi, pkt(len), cycle);
                }
                "inject" => {
                    single.push_injection(pkt(len), cycle);
                    soa.push_injection(bi, pkt(len), cycle);
                }
                "shrink" => {
                    single.set_shrink(len);
                    soa.set_shrink(bi, len);
                }
                "pop" => {
                    let a = single.pop().map(|bp| bp.packet.len_flits);
                    let b = soa.pop(bi).map(|bp| bp.packet.len_flits);
                    assert_eq!(a, b);
                }
                _ => unreachable!(),
            }
            assert_eq!(single.free_flits(), soa.free_flits(bi), "after {op}");
            assert_eq!(single.used_flits(), soa.view(bi).used_flits());
            assert_eq!(single.reserved_flits(), soa.view(bi).reserved_flits());
            assert_eq!(single.is_empty(), soa.is_empty(bi));
            let a: Vec<_> = single.iter().map(|bp| bp.inter_arrival).collect();
            let b: Vec<_> = soa.iter(bi).map(|bp| bp.inter_arrival).collect();
            assert_eq!(a, b, "inter-arrival stamps diverged after {op}");
        }
        // Untouched slots stay pristine.
        for other in [0, 1, 3] {
            assert!(soa.is_empty(other));
            assert_eq!(soa.free_flits(other), 8);
        }
    }

    #[test]
    fn soa_first_arrival_gap_equals_cycle() {
        let mut soa = VcBufArray::new(1, 16);
        soa.push_injection(0, pkt(1), 5);
        soa.push_injection(0, pkt(1), 12);
        let gaps: Vec<_> = soa.iter(0).map(|bp| bp.inter_arrival).collect();
        assert_eq!(gaps, vec![5, 7]);
    }

    #[test]
    #[should_panic(expected = "reserve() without available credit")]
    fn soa_over_reservation_panics() {
        let mut soa = VcBufArray::new(2, 4);
        soa.reserve(1, 5);
    }

    #[test]
    fn view_agrees_between_layouts() {
        let mut single = VcBuffer::new(8);
        single.push_injection(pkt(3), 4);
        let mut soa = VcBufArray::new(1, 8);
        soa.push_injection(0, pkt(3), 4);
        let (a, b) = (single.as_view(), soa.view(0));
        assert_eq!(a.used_flits(), b.used_flits());
        assert_eq!(a.reserved_flits(), b.reserved_flits());
        assert_eq!(a.capacity_flits(), b.capacity_flits());
        assert_eq!(a.queued_flits(), b.queued_flits());
    }
}
