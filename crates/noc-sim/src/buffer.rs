//! Input virtual-channel buffers with credit (free-space) accounting.

use std::collections::VecDeque;

use crate::packet::{BufferedPacket, Packet};

/// One input virtual-channel buffer.
///
/// Capacity is tracked in flits. Under virtual cut-through switching a packet
/// may only be forwarded when the downstream buffer has room for *all* of its
/// flits, so upstream routers `reserve` space at grant time (the moment the
/// credit is consumed) and convert the reservation into occupancy when the
/// packet physically arrives.
#[derive(Debug, Clone)]
pub struct VcBuffer {
    queue: VecDeque<BufferedPacket>,
    capacity_flits: u32,
    used_flits: u32,
    reserved_flits: u32,
    /// Capacity currently disabled by an active VC-shrink fault
    /// (see [`crate::FaultKind::VcShrink`]).
    shrink_flits: u32,
    last_arrival: Option<u64>,
}

impl VcBuffer {
    /// Creates an empty buffer holding up to `capacity_flits` flits.
    pub fn new(capacity_flits: u32) -> Self {
        VcBuffer {
            queue: VecDeque::new(),
            capacity_flits,
            used_flits: 0,
            reserved_flits: 0,
            shrink_flits: 0,
            last_arrival: None,
        }
    }

    /// Capacity in flits.
    pub fn capacity_flits(&self) -> u32 {
        self.capacity_flits
    }

    /// Disables `flits` flits of capacity (a VC-shrink fault); `0` restores
    /// the full buffer. Packets already stored are unaffected — the shrink
    /// only squeezes the credit advertised upstream, which saturates at
    /// zero while occupancy exceeds the reduced capacity.
    pub fn set_shrink(&mut self, flits: u32) {
        self.shrink_flits = flits;
    }

    /// Capacity currently disabled by a VC-shrink fault.
    pub fn shrink_flits(&self) -> u32 {
        self.shrink_flits
    }

    /// Flits currently stored.
    pub fn used_flits(&self) -> u32 {
        self.used_flits
    }

    /// Flits promised to in-flight packets that have not yet arrived.
    pub fn reserved_flits(&self) -> u32 {
        self.reserved_flits
    }

    /// Free (unreserved, unoccupied) flits — the credit count the upstream
    /// router sees. An active shrink fault reduces the effective capacity;
    /// the result saturates at zero when stored packets already exceed it.
    pub fn free_flits(&self) -> u32 {
        self.capacity_flits
            .saturating_sub(self.shrink_flits)
            .saturating_sub(self.used_flits + self.reserved_flits)
    }

    /// Whether a packet of `len` flits may be granted toward this buffer now.
    pub fn can_reserve(&self, len: u32) -> bool {
        self.free_flits() >= len
    }

    /// Consumes credit for an in-flight packet of `len` flits.
    ///
    /// # Panics
    ///
    /// Panics if the buffer does not have `len` free flits; callers must
    /// check [`VcBuffer::can_reserve`] first.
    pub fn reserve(&mut self, len: u32) {
        assert!(self.can_reserve(len), "reserve() without available credit");
        self.reserved_flits += len;
    }

    /// Returns credit consumed by a transmission that was lost to a link
    /// fault, once the credit-reconciliation message arrives (the inverse
    /// of [`VcBuffer::reserve`]).
    ///
    /// # Panics
    ///
    /// Panics if `len` exceeds the outstanding reservation.
    pub fn unreserve(&mut self, len: u32) {
        assert!(
            self.reserved_flits >= len,
            "unreserve() without a matching reservation"
        );
        self.reserved_flits -= len;
    }

    /// Stores an arriving packet, converting its reservation into occupancy,
    /// and stamps its inter-arrival gap.
    ///
    /// # Panics
    ///
    /// Panics if no matching reservation exists.
    pub fn push_arrival(&mut self, packet: Packet, cycle: u64) {
        let len = packet.len_flits;
        assert!(
            self.reserved_flits >= len,
            "arrival without a matching reservation"
        );
        self.reserved_flits -= len;
        self.used_flits += len;
        let inter_arrival = match self.last_arrival {
            Some(prev) => cycle.saturating_sub(prev),
            None => cycle,
        };
        self.last_arrival = Some(cycle);
        self.queue.push_back(BufferedPacket {
            packet,
            arrival_cycle: cycle,
            inter_arrival,
        });
    }

    /// Stores an injected packet directly (source queue → buffer), which
    /// both reserves and occupies in one step.
    ///
    /// # Panics
    ///
    /// Panics if there is not enough free space.
    pub fn push_injection(&mut self, packet: Packet, cycle: u64) {
        let len = packet.len_flits;
        self.reserve(len);
        self.push_arrival(packet, cycle);
    }

    /// The packet at the head of the buffer, if any. Only head packets
    /// compete for arbitration (FIFO order within a VC).
    pub fn head(&self) -> Option<&BufferedPacket> {
        self.queue.front()
    }

    /// Removes and returns the head packet, releasing its flits.
    pub fn pop(&mut self) -> Option<BufferedPacket> {
        let bp = self.queue.pop_front()?;
        self.used_flits -= bp.packet.len_flits;
        Some(bp)
    }

    /// Total flits of the packets currently queued, recomputed from the
    /// queue itself. The invariant checker cross-checks this against the
    /// incrementally maintained [`VcBuffer::used_flits`].
    pub fn queued_flits(&self) -> u32 {
        self.queue.iter().map(|bp| bp.packet.len_flits).sum()
    }

    /// Number of buffered packets.
    pub fn len(&self) -> usize {
        self.queue.len()
    }

    /// True when no packets are buffered.
    pub fn is_empty(&self) -> bool {
        self.queue.is_empty()
    }

    /// Iterates over buffered packets, head first.
    pub fn iter(&self) -> impl Iterator<Item = &BufferedPacket> {
        self.queue.iter()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pkt(len: u32) -> Packet {
        let mut p = Packet::test_packet();
        p.len_flits = len;
        p
    }

    #[test]
    fn credit_accounting_roundtrip() {
        let mut b = VcBuffer::new(8);
        assert_eq!(b.free_flits(), 8);
        b.reserve(5);
        assert_eq!(b.free_flits(), 3);
        assert!(!b.can_reserve(4));
        b.push_arrival(pkt(5), 10);
        assert_eq!(b.used_flits(), 5);
        assert_eq!(b.reserved_flits(), 0);
        assert_eq!(b.free_flits(), 3);
        let out = b.pop().unwrap();
        assert_eq!(out.packet.len_flits, 5);
        assert_eq!(b.free_flits(), 8);
        assert!(b.is_empty());
    }

    #[test]
    fn inter_arrival_gap_is_tracked() {
        let mut b = VcBuffer::new(16);
        b.push_injection(pkt(1), 5);
        b.push_injection(pkt(1), 12);
        let mut it = b.iter();
        assert_eq!(it.next().unwrap().inter_arrival, 5); // first arrival: gap = cycle
        assert_eq!(it.next().unwrap().inter_arrival, 7);
    }

    #[test]
    fn queued_flits_recomputes_occupancy() {
        let mut b = VcBuffer::new(16);
        assert_eq!(b.queued_flits(), 0);
        b.push_injection(pkt(5), 0);
        b.push_injection(pkt(3), 1);
        assert_eq!(b.queued_flits(), 8);
        assert_eq!(b.queued_flits(), b.used_flits());
        b.pop();
        assert_eq!(b.queued_flits(), 3);
    }

    #[test]
    fn fifo_order_within_vc() {
        let mut b = VcBuffer::new(8);
        let mut p1 = pkt(1);
        p1.id = 1;
        let mut p2 = pkt(1);
        p2.id = 2;
        b.push_injection(p1, 0);
        b.push_injection(p2, 1);
        assert_eq!(b.pop().unwrap().packet.id, 1);
        assert_eq!(b.pop().unwrap().packet.id, 2);
        assert!(b.pop().is_none());
    }

    #[test]
    #[should_panic(expected = "reserve() without available credit")]
    fn over_reservation_panics() {
        let mut b = VcBuffer::new(4);
        b.reserve(5);
    }

    #[test]
    fn unreserve_returns_credit() {
        let mut b = VcBuffer::new(8);
        b.reserve(5);
        assert_eq!(b.free_flits(), 3);
        b.unreserve(5);
        assert_eq!(b.free_flits(), 8);
        assert_eq!(b.reserved_flits(), 0);
    }

    #[test]
    #[should_panic(expected = "unreserve() without a matching reservation")]
    fn unreserve_without_reservation_panics() {
        let mut b = VcBuffer::new(8);
        b.unreserve(1);
    }

    #[test]
    fn shrink_squeezes_credit_and_saturates() {
        let mut b = VcBuffer::new(8);
        b.push_injection(pkt(5), 0);
        assert_eq!(b.free_flits(), 3);
        b.set_shrink(2);
        assert_eq!(b.free_flits(), 1);
        // Occupancy above the reduced capacity: credit saturates at zero,
        // stored packets are untouched.
        b.set_shrink(6);
        assert_eq!(b.free_flits(), 0);
        assert_eq!(b.used_flits(), 5);
        assert!(!b.can_reserve(1));
        b.set_shrink(0);
        assert_eq!(b.free_flits(), 3);
    }

    #[test]
    #[should_panic(expected = "without a matching reservation")]
    fn arrival_without_reservation_panics() {
        let mut b = VcBuffer::new(4);
        b.push_arrival(pkt(1), 0);
    }
}
