//! A tiny, dependency-free deterministic PRNG (SplitMix64).
//!
//! The simulator core must be reproducible from a single `u64` seed and must
//! not pull in external dependencies, so synthetic traffic and any stochastic
//! policies in this crate use this generator. It is *not* cryptographic.

/// SplitMix64 pseudo-random number generator.
///
/// ```
/// use noc_sim::SplitMix64;
/// let mut a = SplitMix64::new(42);
/// let mut b = SplitMix64::new(42);
/// assert_eq!(a.next_u64(), b.next_u64()); // fully deterministic
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    /// Creates a generator from a seed.
    pub fn new(seed: u64) -> Self {
        SplitMix64 { state: seed }
    }

    /// The current internal state, for checkpointing. Feeding it back into
    /// [`SplitMix64::new`] resumes the stream exactly where it left off.
    pub fn state(&self) -> u64 {
        self.state
    }

    /// Next raw 64-bit output.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform value in `[0, bound)`.
    ///
    /// # Panics
    ///
    /// Panics if `bound == 0`.
    pub fn next_bounded(&mut self, bound: u64) -> u64 {
        assert!(bound > 0, "bound must be positive");
        // Multiply-shift reduction; bias is negligible for simulation bounds.
        ((self.next_u64() as u128 * bound as u128) >> 64) as u64
    }

    /// Uniform `f64` in `[0, 1)`.
    pub fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Bernoulli draw with probability `p` (clamped to `[0, 1]`).
    pub fn chance(&mut self, p: f64) -> bool {
        self.next_f64() < p
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Golden seed-stability pins: the exact first draws of the named
    /// streams every figure in the repo is seeded from. A refactor that
    /// changes any of these values silently shifts *every* experiment, so
    /// the expected outputs are hardcoded (they match the reference
    /// SplitMix64 vectors, e.g. seed 0 → `0xE220A8397B1DCDAF`).
    #[test]
    fn raw_stream_is_pinned_for_seed_0_and_42() {
        let mut rng = SplitMix64::new(0);
        assert_eq!(
            [rng.next_u64(), rng.next_u64(), rng.next_u64(), rng.next_u64()],
            [
                0xE220_A839_7B1D_CDAF,
                0x6E78_9E6A_A1B9_65F4,
                0x06C4_5D18_8009_454F,
                0xF88B_B8A8_724C_81EC,
            ]
        );
        let mut rng = SplitMix64::new(42);
        assert_eq!(
            [rng.next_u64(), rng.next_u64(), rng.next_u64(), rng.next_u64()],
            [
                0xBDD7_3226_2FEB_6E95,
                0x28EF_E333_B266_F103,
                0x4752_6757_130F_9F52,
                0x581C_E1FF_0E4A_E394,
            ]
        );
    }

    /// The derived streams (`next_bounded`, `next_f64`) are pinned too:
    /// they depend on the reduction strategy (multiply-shift, 53-bit
    /// mantissa scaling), not just the raw generator.
    #[test]
    fn derived_streams_are_pinned() {
        let mut rng = SplitMix64::new(42);
        let bounded: Vec<u64> = (0..4).map(|_| rng.next_bounded(100)).collect();
        assert_eq!(bounded, [74, 15, 27, 34]);

        let mut rng = SplitMix64::new(7);
        let f: Vec<f64> = (0..3).map(|_| rng.next_f64()).collect();
        assert_eq!(f, [0.3898297483912715, 0.01678829452815611, 0.9007606806068834]);
    }

    #[test]
    fn bounded_values_stay_in_range() {
        let mut rng = SplitMix64::new(7);
        for _ in 0..10_000 {
            assert!(rng.next_bounded(13) < 13);
        }
    }

    #[test]
    fn f64_stays_in_unit_interval() {
        let mut rng = SplitMix64::new(9);
        for _ in 0..10_000 {
            let x = rng.next_f64();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn chance_extremes() {
        let mut rng = SplitMix64::new(1);
        assert!(!rng.chance(0.0));
        assert!(rng.chance(1.0));
    }

    #[test]
    fn distribution_is_roughly_uniform() {
        let mut rng = SplitMix64::new(1234);
        let mut counts = [0u32; 8];
        for _ in 0..80_000 {
            counts[rng.next_bounded(8) as usize] += 1;
        }
        for c in counts {
            assert!((8_000..12_000).contains(&c), "bucket count {c} far from uniform");
        }
    }

    #[test]
    #[should_panic(expected = "bound must be positive")]
    fn zero_bound_panics() {
        SplitMix64::new(0).next_bounded(0);
    }
}
