//! Human-readable statistics reports.

use crate::stats::SimStats;

/// Renders a multi-line summary of a run's statistics, suitable for
/// examples and quick terminal inspection.
///
/// ```
/// use noc_sim::{SimStats, format_report};
/// let mut s = SimStats::new(3, 16, 48);
/// s.cycles = 1000;
/// s.created = 100;
/// s.injected = 100;
/// s.delivered = 90;
/// s.total_latency = 2700;
/// s.latencies = vec![30; 90];
/// let text = format_report(&s);
/// assert!(text.contains("avg latency"));
/// ```
pub fn format_report(stats: &SimStats) -> String {
    let mut out = String::new();
    let line = |out: &mut String, label: &str, value: String| {
        out.push_str(&format!("{label:<26}{value}\n"));
    };
    line(&mut out, "cycles", stats.cycles.to_string());
    line(
        &mut out,
        "messages (created/del.)",
        format!("{} / {}", stats.created, stats.delivered),
    );
    line(
        &mut out,
        "avg latency",
        format!("{:.1} cycles ({:.1} in-network)", stats.avg_latency(), stats.avg_network_latency()),
    );
    line(
        &mut out,
        "latency p50/p99/max",
        format!(
            "{} / {} / {}",
            stats.latency_percentile(50.0),
            stats.latency_percentile(99.0),
            stats.max_latency()
        ),
    );
    line(&mut out, "avg hops", format!("{:.2}", stats.avg_hops()));
    line(
        &mut out,
        "throughput",
        format!("{:.4} msgs/node/cycle", stats.throughput()),
    );
    line(
        &mut out,
        "link utilization",
        format!("{:.1}%", 100.0 * stats.avg_link_utilization()),
    );
    line(
        &mut out,
        "fairness (Jain)",
        format!("{:.3}", stats.jain_fairness()),
    );
    line(
        &mut out,
        "arbiter queries/grants",
        format!("{} / {}", stats.arbiter_queries, stats.grants),
    );
    if stats.starved_grants > 0 || stats.starving_now > 0 {
        line(
            &mut out,
            "starvation",
            format!(
                "{} starved grants, {} starving now, max local age {}",
                stats.starved_grants, stats.starving_now, stats.max_local_age
            ),
        );
    }
    if stats.link_fault_drops > 0 || stats.watchdog_fires > 0 || stats.stalled_router_cycles > 0 {
        line(
            &mut out,
            "faults",
            format!(
                "{} drops, {} credits reconciled, {} stalled router-cycles, {} wedged ports",
                stats.link_fault_drops,
                stats.fault_credits_reconciled,
                stats.stalled_router_cycles,
                stats.wedged_ports
            ),
        );
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn report_contains_every_headline_number() {
        let mut s = SimStats::new(1, 4, 24);
        s.cycles = 500;
        s.created = 40;
        s.delivered = 40;
        s.total_latency = 1200;
        s.total_network_latency = 800;
        s.total_hops = 120;
        s.latencies = vec![30; 40];
        s.arbiter_queries = 7;
        s.grants = 100;
        let text = format_report(&s);
        for needle in ["500", "40 / 40", "30.0", "3.00", "7 / 100"] {
            assert!(text.contains(needle), "missing '{needle}' in:\n{text}");
        }
        // No starvation line when nothing starved.
        assert!(!text.contains("starvation"));
    }

    #[test]
    fn starvation_line_appears_when_relevant() {
        let mut s = SimStats::new(1, 4, 24);
        s.starved_grants = 3;
        s.max_local_age = 9001;
        let text = format_report(&s);
        assert!(text.contains("starvation"));
        assert!(text.contains("9001"));
    }
}
