//! The cycle-driven simulation engine.
//!
//! Each cycle the engine: delivers in-flight packets that reach their next
//! router or destination, pulls new messages from the traffic source into
//! per-node injection queues, drains injection queues into local input VCs,
//! then arbitrates every router's free output ports (paper Algorithm 1) and
//! launches the winners toward their next hop under credit-based
//! virtual-cut-through flow control.

use std::collections::VecDeque;
use std::sync::atomic::{AtomicU64, Ordering};

use crate::arbitration::{Arbiter, Candidate, Features, Grant, NetSnapshot, OutputCtx, RouterCtx};
use crate::buffer::VcBufArray;
use crate::calendar::{CalendarCounter, CalendarQueue};
use crate::checkpoint as ckpt;
use crate::checkpoint::SimCheckpoint;
use crate::config::SimConfig;
use crate::error::ConfigError;
use crate::faults::{FaultPlan, FaultRuntime};
use crate::invariants::{CheckerSnapshot, InvariantChecker, InvariantViolation, SimError};
use crate::packet::{InjectionRequest, Packet};
use crate::config::RoutingKind;
use crate::routing::{route_deterministic, route_west_first, RouteStep};
use crate::stats::SimStats;
use crate::topology::Topology;
use crate::trace::{PacketTrace, TraceEvent, TraceKind};
use crate::traffic::TrafficSource;
use crate::types::{Coord, PortDir, RouterId, NodeId};
use crate::vc_control::{clamp_withhold, BufferController, VcUsage};

/// Process-wide count of cycles executed by [`Simulator::run`] and
/// [`Simulator::run_until_done`] across every simulator instance and
/// thread (see [`simulated_cycles`]).
static SIMULATED_CYCLES: AtomicU64 = AtomicU64::new(0);

/// Total simulator cycles executed so far in this process, summed over
/// every [`Simulator::run`] / [`Simulator::run_until_done`] call on every
/// thread. Monotone and never reset; experiment harnesses read it before
/// and after a cache-served run to assert that nothing was actually
/// simulated.
pub fn simulated_cycles() -> u64 {
    SIMULATED_CYCLES.load(Ordering::Relaxed)
}

/// A packet in flight between routers (or toward a destination node).
#[derive(Debug, Clone)]
enum Arrival {
    /// Head into a downstream router's input VC.
    Router {
        router: RouterId,
        in_port: usize,
        vnet: usize,
        packet: Packet,
    },
    /// Ejection: consume at the destination node.
    Node { packet: Packet },
    /// Credit reconciliation: return credit that was consumed by a
    /// transmission lost to a transient link fault (only scheduled while a
    /// fault plan is installed).
    CreditReturn {
        /// Router whose input buffer holds the stale reservation.
        router: RouterId,
        /// Input port of that buffer.
        in_port: usize,
        /// Virtual network of that buffer.
        vnet: usize,
        /// Flits of credit to return.
        len: u32,
    },
}

/// Reusable buffers for the per-cycle arbitration loop, so the steady-state
/// step allocates nothing: candidate vectors are pooled in `spare`, the
/// per-output collection buckets keep their capacity across routers, and
/// the request matrix / availability list keep theirs across cycles.
#[derive(Debug, Default)]
struct ArbScratch {
    /// The request matrix being arbitrated: `(out_port, candidates)`.
    outputs: Vec<(usize, Vec<Candidate>)>,
    /// Recycled candidate vectors (capacity retained).
    spare: Vec<Vec<Candidate>>,
    /// Per-output candidates still grantable this cycle.
    avail: Vec<Candidate>,
    /// Per-output collection buckets, indexed by output port.
    buckets: Vec<Vec<Candidate>>,
    /// Pass-1 compact request records, in (in_port, vnet) order.
    reqs: Vec<GrantReq>,
    /// Requests per output port this router/cycle.
    counts: Vec<u32>,
    /// Index into `reqs` of the first request per output (`u32::MAX` =
    /// none) — O(1) lookup for the sole-requester grant path.
    first_req: Vec<u32>,
}

/// Runtime state of an installed [`BufferController`]: the controller
/// object plus the simulator-owned actuation books. The simulator — never
/// the controller — owns the composition of fault shrink and controller
/// withhold, so the clamp in [`crate::vc_control::clamp_withhold`] is
/// enforced on every path that touches `set_shrink`.
struct CtlRuntime {
    ctl: Box<dyn BufferController>,
    /// Clamped withhold currently actuated per flat buffer.
    withhold: Vec<u32>,
    /// Mirror of the fault plan's current shrink per flat buffer, so the
    /// combined `fault_shrink + withhold` can be recomposed when either
    /// side changes.
    fault_shrink: Vec<u32>,
    /// Scratch telemetry handed to the controller (capacity reused).
    usage: Vec<VcUsage>,
    /// Scratch proposal filled by the controller (capacity reused).
    proposal: Vec<u32>,
    /// Control epochs executed so far (checkpointed; also the "zero
    /// training epochs" witness for warm-cache tests).
    epochs_run: u64,
}

/// The subset of a winning [`Candidate`] the grant path needs — small
/// enough to collect for every requesting VC in arbitration pass 1
/// without materialising the full feature vector.
#[derive(Debug, Clone, Copy)]
struct GrantReq {
    /// Head packet local age at the arbitration cycle.
    local_age: u64,
    /// Flat buffer index of the requesting VC.
    bi: u32,
    /// Head packet length in flits.
    len: u32,
    out_port: u8,
    in_port: u8,
    vnet: u8,
    /// Flattened `in_port * vnets + vnet` occupancy-bitmap slot.
    slot: u8,
}

/// The cycle-accurate NoC simulator.
///
/// Generic over the traffic source type `T` so closed-loop workload engines
/// remain directly accessible (e.g. to read per-program execution times);
/// the arbitration policy is a boxed trait object so policies can be swapped
/// uniformly.
///
/// ```
/// use noc_sim::{Simulator, SimConfig, Topology, SyntheticTraffic, Pattern};
/// use noc_sim::arbiters::FifoArbiter;
///
/// let topo = Topology::uniform_mesh(4, 4).unwrap();
/// let cfg = SimConfig::synthetic(4, 4);
/// let traffic = SyntheticTraffic::new(&topo, Pattern::UniformRandom, 0.05, cfg.num_vnets, 1);
/// let mut sim = Simulator::new(topo, cfg, Box::new(FifoArbiter::new()), traffic)?;
/// sim.run(1_000);
/// assert!(sim.stats().delivered > 0);
/// # Ok::<(), noc_sim::ConfigError>(())
/// ```
pub struct Simulator<T: TrafficSource> {
    cfg: SimConfig,
    topo: Topology,
    arbiter: Box<dyn Arbiter>,
    traffic: T,
    /// Every input VC buffer in the mesh, in one structure-of-arrays store
    /// indexed by `(router * ports + port) * vnets + vnet`.
    bufs: VcBufArray,
    /// First cycle each output port is free again, flat `router*ports+port`.
    out_free_at: Vec<u64>,
    /// Per-router occupancy bitmaps (`occ_words` words per router): bit
    /// `in_port * vnets + vnet` is set while that VC holds ≥ 1 packet, so
    /// arbitration iterates only occupied buffers.
    occ: Vec<u64>,
    /// Bitmap words per router: `ceil(ports * vnets / 64)`.
    occ_words: usize,
    /// Cached [`Topology::ports_per_router`].
    ports: usize,
    /// Cached [`SimConfig::num_vnets`].
    vnets: usize,
    /// Cached [`Topology::num_locals`] (ports `< num_locals` are local).
    num_locals: usize,
    /// Precomputed router coordinates (no div/mod on the hot path).
    coords: Vec<Coord>,
    /// `links[router*ports+port]` = `(downstream router, its input port)`
    /// for connected mesh ports; `None` for local ports and mesh edges.
    links: Vec<Option<(usize, usize)>>,
    /// `(router, local port)` for each node id, in node order.
    node_ports: Vec<(usize, usize)>,
    /// `inj_queues[node*vnets+vnet]` — unbounded source queues.
    inj_queues: Vec<VecDeque<Packet>>,
    /// Total packets across all injection queues (kept in sync so the
    /// per-cycle conservation reads are O(1)).
    queued_total: u64,
    /// Packets in flight on links, keyed by arrival cycle.
    arrivals: CalendarQueue<Arrival>,
    cycle: u64,
    next_packet_id: u64,
    stats: SimStats,
    net: NetSnapshot,
    /// Outstanding (injected, undelivered) packets per source router.
    in_flight_per_router: Vec<u32>,
    /// Mesh-link transmissions ending at a given cycle.
    tx_ends: CalendarCounter,
    /// Mesh-link transmissions currently active.
    active_mesh_tx: u32,
    /// Σ create_cycle over in-flight packets (for the acc-latency reward).
    inflight_create_sum: u128,
    inflight_count: u64,
    /// Latency sum / count of packets delivered in the current reward period.
    period_lat_sum: u64,
    period_delivered: u64,
    /// Optional log of every grant (disabled by default; used by tests).
    grant_log: Option<Vec<Grant>>,
    /// Optional per-packet event trace.
    trace: Option<PacketTrace>,
    /// Scratch for draining this cycle's arrivals (capacity reused).
    arrival_scratch: Vec<Arrival>,
    /// Scratch for pulling this cycle's injections (capacity reused).
    inj_scratch: Vec<InjectionRequest>,
    /// Scratch for the arbitration request matrix (capacity reused).
    /// Boxed behind an `Option` so the per-router take/put-back moves a
    /// pointer, not the whole scratch struct; always `Some` between steps.
    arb: Option<Box<ArbScratch>>,
    /// Flat downstream-buffer base per `(router, out_port)`:
    /// `(next * ports + in_port) * vnets` for connected mesh ports,
    /// `u32::MAX` for local/disconnected ports. A compact mirror of
    /// `links` for the arbitration credit gate.
    links_nbi: Vec<u32>,
    /// Bitmap of non-empty injection queues, bit `node * vnets + vnet` —
    /// lets the per-cycle injection scan visit only queued sources.
    inj_occ: Vec<u64>,
    /// Precomputed `!arbiter.wants_features()` (the arbiter never changes
    /// after construction).
    arb_lite: bool,
    /// Whether the per-VC cached route may be consulted (deterministic
    /// routing and port indices that fit in a `u8`).
    route_cacheable: bool,
    /// Fault-injection runtime; `None` (the default) is the fault-free
    /// fast path and is bit-identical to a build without this subsystem.
    faults: Option<Box<FaultRuntime>>,
    /// Runtime invariant checker; `None` (the default) takes the exact
    /// branches of a build without the subsystem, so checkers-off runs
    /// are bit-identical (same pattern as `faults`).
    checker: Option<Box<InvariantChecker>>,
    /// Test-only fault seed: at this cycle, leak one flit of credit by
    /// reserving it behind the checker's back (see
    /// [`Simulator::debug_inject_credit_leak`]).
    leak_at: Option<u64>,
    /// VC buffer-control runtime; `None` (the default) is the static
    /// fast path and is bit-identical to a build without this subsystem
    /// (same pattern as `faults` / `checker`).
    vc_ctl: Option<Box<CtlRuntime>>,
    /// Test-only fault seed: at this cycle, corrupt one credit book as a
    /// misbehaving buffer controller would (see
    /// [`Simulator::debug_misbehaving_controller`]).
    misbehave_at: Option<u64>,
    /// Q48.16 exponential moving average of delivered end-to-end latency
    /// (integer-only so the recovery accounting stays bit-deterministic).
    lat_ema_q16: u64,
    /// EMA snapshot taken at the current episode's fault onset — the
    /// "healthy" baseline recovery is measured against.
    recov_baseline_q16: u64,
    /// Onset cycle of the episode currently awaiting recovery.
    recov_onset_cycle: u64,
    /// A fault episode has onset but not yet recovered.
    recov_pending: bool,
    /// Cycle of the first fault onset ever (`u64::MAX` = none yet);
    /// deliveries at or after it feed the post-fault latency counters.
    first_onset_cycle: u64,
    /// Whether any fault event was active last cycle (edge detector).
    fault_active_prev: bool,
}

impl<T: TrafficSource> Simulator<T> {
    /// Builds a simulator.
    ///
    /// # Errors
    ///
    /// Returns a [`ConfigError`] if the configuration is inconsistent.
    pub fn new(
        topo: Topology,
        cfg: SimConfig,
        arbiter: Box<dyn Arbiter>,
        traffic: T,
    ) -> Result<Self, ConfigError> {
        cfg.validate()?;
        if !cfg.routing.supports(topo.kind()) {
            return Err(ConfigError::RoutingUnsupported {
                routing: cfg.routing.as_str(),
                topology: topo.kind().as_str(),
            });
        }
        let ports = topo.ports_per_router();
        let vnets = cfg.num_vnets;
        let num_locals = topo.num_locals();
        let n_routers = topo.num_routers();
        let bufs = VcBufArray::new(n_routers * ports * vnets, cfg.vc_capacity_flits);
        let occ_words = (ports * vnets).div_ceil(64);
        let coords: Vec<Coord> = (0..n_routers).map(|r| topo.coord(RouterId(r))).collect();
        let mut links = vec![None; n_routers * ports];
        for r in 0..n_routers {
            for p in 0..ports {
                let dir = topo.port_dir(p);
                if dir.is_local() {
                    continue;
                }
                if let Some(next) = topo.neighbor(RouterId(r), dir) {
                    let in_port = topo.port_index(dir.opposite().expect("mesh dir"));
                    links[r * ports + p] = Some((next.index(), in_port));
                }
            }
        }
        let node_ports: Vec<(usize, usize)> = topo
            .nodes()
            .iter()
            .map(|n| (n.router.index(), topo.port_index(PortDir::Local(n.slot))))
            .collect();
        let inj_queues = (0..topo.num_nodes() * vnets).map(|_| VecDeque::new()).collect();
        let stats = SimStats::new(cfg.num_vnets, topo.num_nodes(), topo.num_links());
        let in_flight = vec![0; topo.num_routers()];
        // Every event lands within max_packet_flits + link + router latency
        // cycles of its scheduling cycle, so this horizon keeps the calendar
        // queues on their O(1) ring path (overflow handles anything larger).
        let horizon =
            (cfg.max_packet_flits as u64 + cfg.link_latency + cfg.router_latency + 2) as usize;
        let route_cacheable = cfg.routing.is_deterministic() && ports < u8::MAX as usize;
        let links_nbi: Vec<u32> = links
            .iter()
            .map(|l| match l {
                Some((next, in_port)) => ((next * ports + in_port) * vnets) as u32,
                None => u32::MAX,
            })
            .collect();
        let arb_lite = !arbiter.wants_features();
        let inj_occ_words = (topo.num_nodes() * vnets).div_ceil(64);
        Ok(Simulator {
            cfg,
            topo,
            arbiter,
            traffic,
            bufs,
            out_free_at: vec![0; n_routers * ports],
            occ: vec![0; n_routers * occ_words],
            occ_words,
            ports,
            vnets,
            num_locals,
            coords,
            links,
            links_nbi,
            inj_occ: vec![0; inj_occ_words],
            arb_lite,
            node_ports,
            inj_queues,
            queued_total: 0,
            arrivals: CalendarQueue::new(horizon),
            cycle: 0,
            next_packet_id: 0,
            stats,
            net: NetSnapshot::default(),
            in_flight_per_router: in_flight,
            tx_ends: CalendarCounter::new(horizon),
            active_mesh_tx: 0,
            inflight_create_sum: 0,
            inflight_count: 0,
            period_lat_sum: 0,
            period_delivered: 0,
            grant_log: None,
            trace: None,
            arrival_scratch: Vec::new(),
            inj_scratch: Vec::new(),
            arb: Some(Box::default()),
            route_cacheable,
            faults: None,
            checker: None,
            leak_at: None,
            vc_ctl: None,
            misbehave_at: None,
            lat_ema_q16: 0,
            recov_baseline_q16: 0,
            recov_onset_cycle: 0,
            recov_pending: false,
            first_onset_cycle: u64::MAX,
            fault_active_prev: false,
        })
    }

    /// Current cycle.
    pub fn cycle(&self) -> u64 {
        self.cycle
    }

    /// The topology being simulated.
    pub fn topology(&self) -> &Topology {
        &self.topo
    }

    /// The active configuration.
    pub fn config(&self) -> &SimConfig {
        &self.cfg
    }

    /// Accumulated statistics.
    pub fn stats(&self) -> &SimStats {
        &self.stats
    }

    /// The traffic source (e.g. to read workload completion times).
    pub fn traffic(&self) -> &T {
        &self.traffic
    }

    /// Mutable access to the traffic source.
    pub fn traffic_mut(&mut self) -> &mut T {
        &mut self.traffic
    }

    /// The installed arbitration policy.
    pub fn arbiter(&self) -> &dyn Arbiter {
        self.arbiter.as_ref()
    }

    /// Mutable access to the installed policy (e.g. to extract a trained
    /// agent's weights).
    pub fn arbiter_mut(&mut self) -> &mut dyn Arbiter {
        self.arbiter.as_mut()
    }

    /// Consumes the simulator and returns the policy (e.g. a trained agent).
    pub fn into_arbiter(self) -> Box<dyn Arbiter> {
        self.arbiter
    }

    /// The most recent network-global snapshot.
    pub fn net_snapshot(&self) -> &NetSnapshot {
        &self.net
    }

    /// Clears statistics (e.g. after a warm-up phase). Does not disturb
    /// in-flight packets or buffers. Recovery-episode tracking is
    /// re-scoped to the new window: an episode *in flight* at the reset
    /// (faults already active — the common case when a plan's onsets land
    /// during warm-up) is re-opened as of the reset cycle, counting as
    /// one onset in the fresh window while keeping the healthy latency
    /// baseline snapshotted at its true onset. A recovery closing inside
    /// the window therefore always has a matching onset, and its duration
    /// is charged only from the window start. (The latency EMA and the
    /// fault-activity edge detector carry across, since they describe the
    /// network, not the window.)
    pub fn reset_stats(&mut self) {
        self.stats = SimStats::new(
            self.cfg.num_vnets,
            self.topo.num_nodes(),
            self.topo.num_links(),
        );
        self.first_onset_cycle = u64::MAX;
        if self.recov_pending {
            self.stats.fault_onsets = 1;
            self.recov_onset_cycle = self.cycle;
            self.first_onset_cycle = self.cycle;
        }
        if let Some(ck) = &mut self.checker {
            ck.on_reset_stats();
        }
    }

    /// Installs a deterministic fault plan (see [`FaultPlan`]). An empty
    /// plan uninstalls the subsystem entirely, which is bit-identical to
    /// never having called this method.
    ///
    /// # Panics
    ///
    /// Panics if the plan fails [`FaultPlan::validate`] for this topology.
    pub fn set_fault_plan(&mut self, plan: &FaultPlan) {
        self.faults = if plan.is_empty() {
            None
        } else {
            Some(Box::new(FaultRuntime::new(
                plan,
                &self.topo,
                self.cfg.num_vnets,
            )))
        };
    }

    /// True when a non-empty fault plan is installed.
    pub fn faults_enabled(&self) -> bool {
        self.faults.is_some()
    }

    /// Enables the opt-in runtime invariant checker (see
    /// [`crate::InvariantChecker`]). The checker keeps redundant books
    /// alongside the simulator's own accounting and records every
    /// divergence as a structured [`InvariantViolation`] instead of
    /// panicking; query results with
    /// [`Simulator::invariant_violations`] or
    /// [`Simulator::check_invariants`]. It never perturbs the
    /// simulation: a checked run produces bit-identical statistics to an
    /// unchecked one.
    ///
    /// The per-flow in-order delivery check is only armed when the
    /// configured routing is deterministic
    /// ([`RoutingKind::is_deterministic`]) — adaptive routing may
    /// legitimately reorder a flow.
    ///
    /// # Panics
    ///
    /// Panics if the simulation has already advanced past cycle 0; the
    /// checker's books must observe every event from the start.
    pub fn enable_invariant_checker(&mut self) {
        assert_eq!(
            self.cycle, 0,
            "enable the invariant checker before the first step"
        );
        let check_order = self.cfg.routing.is_deterministic();
        self.checker = Some(Box::new(InvariantChecker::new(
            self.topo.num_routers(),
            self.topo.ports_per_router(),
            self.cfg.num_vnets,
            check_order,
        )));
    }

    /// True when the invariant checker is enabled.
    pub fn invariants_enabled(&self) -> bool {
        self.checker.is_some()
    }

    /// Invariant violations recorded so far (empty when the checker is
    /// disabled or the run is clean). The list is capped; see
    /// [`Simulator::total_invariant_violations`] for the full count.
    pub fn invariant_violations(&self) -> &[InvariantViolation] {
        self.checker.as_ref().map_or(&[], |ck| ck.violations())
    }

    /// Every violation detected, including those past the recording cap.
    pub fn total_invariant_violations(&self) -> u64 {
        self.checker.as_ref().map_or(0, |ck| ck.total_violations())
    }

    /// `Ok` when no invariant was violated (or the checker is disabled);
    /// otherwise the recorded violations as a [`SimError`].
    pub fn check_invariants(&self) -> Result<(), SimError> {
        let vs = self.invariant_violations();
        if vs.is_empty() {
            Ok(())
        } else {
            Err(SimError::InvariantsViolated(vs.to_vec()))
        }
    }

    /// Test-only bug seed: at `cycle`, reserve one flit of credit on the
    /// first input VC that has room *without* telling the invariant
    /// checker — a deliberate credit leak the conformance harness must
    /// catch as a `CreditMismatch`. Kept in the public API (hidden from
    /// docs) so out-of-crate conformance tests can arm it.
    #[doc(hidden)]
    pub fn debug_inject_credit_leak(&mut self, cycle: u64) {
        self.leak_at = Some(cycle);
    }

    /// Test-only bug seed: at `cycle`, corrupt one credit book the way a
    /// buffer controller that bypassed the withhold interface and wrote
    /// the books directly would — the occupancy-integrity invariant
    /// (`OccupancyMismatch`) must catch it the same cycle. Kept in the
    /// public API (hidden from docs) so out-of-crate conformance tests
    /// can arm it (see [`Simulator::debug_inject_credit_leak`]).
    #[doc(hidden)]
    pub fn debug_misbehaving_controller(&mut self, cycle: u64) {
        self.misbehave_at = Some(cycle);
    }

    /// Installs a [`BufferController`] — the second learned decision
    /// point, reallocating per-VC credit budgets each control epoch
    /// through the VC-shrink actuation path. `None`-like removal is not
    /// supported; construct a fresh simulator instead.
    ///
    /// The controller's proposals are clamped by the simulator so the
    /// combined fault-plus-controller squeeze always leaves
    /// `max_packet_flits` of advertiseable capacity beyond what the
    /// fault plan takes (see the [`crate::vc_control`] module docs for
    /// the safety argument).
    ///
    /// # Panics
    ///
    /// Panics if the simulation has already advanced past cycle 0.
    pub fn set_buffer_controller(&mut self, ctl: Box<dyn BufferController>) {
        assert_eq!(
            self.cycle, 0,
            "install the buffer controller before the first step"
        );
        let n = self.bufs.num_buffers();
        self.vc_ctl = Some(Box::new(CtlRuntime {
            ctl,
            withhold: vec![0; n],
            fault_shrink: vec![0; n],
            usage: Vec::new(),
            proposal: Vec::new(),
            epochs_run: 0,
        }));
    }

    /// True when a buffer controller is installed.
    pub fn buffer_controller_enabled(&self) -> bool {
        self.vc_ctl.is_some()
    }

    /// Recovery-detector internals `(latency EMA, episode baseline,
    /// episode pending)`, latency values in Q48.16 cycles. Diagnostic
    /// hook for tests and threshold tuning; not part of the stable API.
    #[doc(hidden)]
    pub fn debug_recovery_state(&self) -> (u64, u64, bool) {
        (self.lat_ema_q16, self.recov_baseline_q16, self.recov_pending)
    }

    /// Control epochs the installed buffer controller has executed (0
    /// when none is installed). Cache-assertion hook: a warm-cache run
    /// must show zero epochs because nothing was simulated.
    pub fn buffer_control_epochs(&self) -> u64 {
        self.vc_ctl.as_ref().map_or(0, |c| c.epochs_run)
    }

    /// Starts recording every grant; used by tests and analysis tools.
    pub fn enable_grant_log(&mut self) {
        self.grant_log = Some(Vec::new());
    }

    /// Grants recorded since [`Simulator::enable_grant_log`], if enabled.
    pub fn grant_log(&self) -> Option<&[Grant]> {
        self.grant_log.as_deref()
    }

    /// Starts per-packet event tracing with an event budget (see
    /// [`PacketTrace`]).
    pub fn enable_packet_trace(&mut self, capacity: usize) {
        self.trace = Some(PacketTrace::new(capacity));
    }

    /// The packet trace, if tracing was enabled.
    pub fn packet_trace(&self) -> Option<&PacketTrace> {
        self.trace.as_ref()
    }

    fn trace_event(&mut self, cycle: u64, packet_id: u64, kind: TraceKind) {
        if let Some(t) = &mut self.trace {
            t.record(TraceEvent {
                cycle,
                packet_id,
                kind,
            });
        }
    }

    /// Number of packets currently inside the network (injected, not yet
    /// delivered).
    pub fn in_flight(&self) -> u64 {
        self.inflight_count
    }

    /// Packets waiting in source injection queues.
    pub fn queued_at_sources(&self) -> usize {
        self.queued_total as usize
    }

    /// Flat buffer index of `(router, port, vnet)` in the SoA store.
    #[inline(always)]
    fn bi(&self, router: usize, port: usize, vnet: usize) -> usize {
        (router * self.ports + port) * self.vnets + vnet
    }

    /// Marks VC slot `in_port * vnets + vnet` of `router` occupied.
    #[inline(always)]
    fn occ_set(&mut self, router: usize, slot: usize) {
        self.occ[router * self.occ_words + slot / 64] |= 1u64 << (slot % 64);
    }

    /// Marks VC slot `in_port * vnets + vnet` of `router` empty.
    #[inline(always)]
    fn occ_clear(&mut self, router: usize, slot: usize) {
        self.occ[router * self.occ_words + slot / 64] &= !(1u64 << (slot % 64));
    }

    /// Counts buffered packets whose local age exceeds the configured
    /// starvation threshold, and records the result in the statistics.
    pub fn starving_packets(&mut self) -> u64 {
        let mut n = 0;
        for bi in 0..self.bufs.num_buffers() {
            for bp in self.bufs.iter(bi) {
                if bp.local_age(self.cycle) > self.cfg.starvation_threshold {
                    n += 1;
                }
            }
        }
        self.stats.starving_now = n;
        n
    }

    /// Stamps the end-of-run residuals into the statistics: packets that
    /// never drained stay visible in [`SimStats::in_flight_at_end`] /
    /// [`SimStats::queued_at_end`] instead of silently vanishing from the
    /// accounting at the horizon.
    fn stamp_residuals(&mut self) {
        self.stats.in_flight_at_end = self.inflight_count;
        self.stats.queued_at_end = self.queued_at_sources() as u64;
    }

    /// Runs `cycles` simulation cycles.
    pub fn run(&mut self, cycles: u64) {
        for _ in 0..cycles {
            self.step();
        }
        self.stamp_residuals();
        SIMULATED_CYCLES.fetch_add(cycles, Ordering::Relaxed);
    }

    /// Runs until the traffic source reports completion and the network has
    /// fully drained, or `max_cycles` elapse. Returns `true` if the workload
    /// completed.
    pub fn run_until_done(&mut self, max_cycles: u64) -> bool {
        let start = self.cycle;
        let mut done = false;
        while self.cycle < max_cycles {
            if self.traffic.is_done(self.cycle)
                && self.inflight_count == 0
                && self.queued_at_sources() == 0
            {
                done = true;
                break;
            }
            self.step();
        }
        self.stamp_residuals();
        SIMULATED_CYCLES.fetch_add(self.cycle - start, Ordering::Relaxed);
        done || (self.traffic.is_done(self.cycle)
            && self.inflight_count == 0
            && self.queued_at_sources() == 0)
    }

    /// Advances the simulation by one cycle.
    ///
    /// # Panics
    ///
    /// Panics if the traffic source produces an invalid injection request
    /// (unknown node, vnet out of range, or over-length packet).
    pub fn step(&mut self) {
        let cycle = self.cycle;

        // Phase 0: expire finished link transmissions.
        self.active_mesh_tx -= self.tx_ends.take_due(cycle);

        // Phase 0b (faults only): apply VC-shrink window boundaries and run
        // the starvation watchdog. The take/put-back dance lets the runtime
        // borrow coexist with mutation of router buffers.
        if self.faults.is_some() {
            self.fault_phase(cycle);
        }

        // Phase 0c (buffer controller only): at control-epoch boundaries,
        // let the installed controller propose per-VC credit withholds and
        // actuate the clamped result through the shrink machinery.
        if self.vc_ctl.is_some() {
            self.control_phase(cycle);
        }

        // Phase 1: land packets that arrive this cycle.
        let mut list = std::mem::take(&mut self.arrival_scratch);
        self.arrivals.drain_due_into(cycle, &mut list);
        for a in list.drain(..) {
            match a {
                Arrival::Router {
                    router,
                    in_port,
                    vnet,
                    packet,
                } => {
                    if let Some(ck) = &mut self.checker {
                        ck.on_arrival(router.index(), in_port, vnet, packet.len_flits);
                    }
                    let r = router.index();
                    let bi = self.bi(r, in_port, vnet);
                    self.bufs.push_arrival(bi, packet, cycle);
                    self.occ_set(r, in_port * self.vnets + vnet);
                }
                Arrival::Node { packet } => self.deliver(packet, cycle),
                Arrival::CreditReturn {
                    router,
                    in_port,
                    vnet,
                    len,
                } => {
                    if let Some(ck) = &mut self.checker {
                        ck.on_credit_return(router.index(), in_port, vnet, len);
                    }
                    let bi = self.bi(router.index(), in_port, vnet);
                    self.bufs.unreserve(bi, len);
                    self.stats.fault_credits_reconciled += len as u64;
                }
            }
        }
        self.arrival_scratch = list;

        // Phase 2: create new traffic.
        let mut reqs = std::mem::take(&mut self.inj_scratch);
        self.traffic.pull_into(cycle, &self.net, &mut reqs);
        for req in reqs.drain(..) {
            let pkt = self.make_packet(req, cycle);
            self.stats.created += 1;
            if let Some(ck) = &mut self.checker {
                ck.on_created();
            }
            self.trace_event(cycle, pkt.id, TraceKind::Created);
            let qi = pkt.src.index() * self.vnets + pkt.vnet;
            self.inj_queues[qi].push_back(pkt);
            self.inj_occ[qi / 64] |= 1 << (qi % 64);
            self.queued_total += 1;
        }
        self.inj_scratch = reqs;

        // Phase 3: drain injection queues into local input VCs (one packet
        // per node per vnet per cycle). Skipped outright when every source
        // queue is empty — no observable state can change.
        if self.queued_total > 0 {
            // Walk only the queues the bitmap marks non-empty; bit order is
            // `node * vnets + vnet` ascending, the same order as the full
            // nested scan.
            for w in 0..self.inj_occ.len() {
                let mut word = self.inj_occ[w];
                while word != 0 {
                    let qi = w * 64 + word.trailing_zeros() as usize;
                    word &= word - 1;
                    let node_idx = qi / self.vnets;
                    let vnet = qi % self.vnets;
                    let (r, port) = self.node_ports[node_idx];
                    let front = self.inj_queues[qi].front().expect("bitmap tracks non-empty");
                    let len = front.len_flits;
                    let bi = self.bi(r, port, vnet);
                    if !self.bufs.can_reserve(bi, len) {
                        continue;
                    }
                    let mut pkt = self.inj_queues[qi].pop_front().unwrap();
                    if self.inj_queues[qi].is_empty() {
                        self.inj_occ[w] &= !(1 << (qi % 64));
                    }
                    self.queued_total -= 1;
                    pkt.inject_cycle = cycle;
                    self.stats.injected += 1;
                    self.in_flight_per_router[pkt.src_router.index()] += 1;
                    self.inflight_create_sum += pkt.create_cycle as u128;
                    self.inflight_count += 1;
                    let pkt_id = pkt.id;
                    self.bufs.push_injection(bi, pkt, cycle);
                    self.occ_set(r, port * self.vnets + vnet);
                    self.trace_event(cycle, pkt_id, TraceKind::Injected { router: RouterId(r) });
                }
            }
        }

        // Phase 4: refresh the periodic accumulated-latency statistic.
        if self.cfg.reward_period > 0 && cycle.is_multiple_of(self.cfg.reward_period) {
            let inflight_age_sum =
                (self.inflight_count as u128 * cycle as u128).saturating_sub(self.inflight_create_sum);
            let total = self.period_delivered + self.inflight_count;
            self.net.avg_accumulated_latency = if total == 0 {
                0.0
            } else {
                (self.period_lat_sum as f64 + inflight_age_sum as f64) / total as f64
            };
            self.period_lat_sum = 0;
            self.period_delivered = 0;
        }
        self.net.cycle = cycle;
        self.net.in_flight_packets = self.inflight_count as usize;

        // Phase 5: arbitrate each router (stalled routers sit the cycle
        // out; their buffered credit keeps neighbours back-pressured
        // rather than wedged).
        for r in 0..self.coords.len() {
            if self
                .faults
                .as_ref()
                .is_some_and(|fr| fr.router_stalled(r, cycle))
            {
                self.stats.stalled_router_cycles += 1;
                continue;
            }
            self.arbitrate_router(RouterId(r), cycle);
        }

        // Test-only bug seed: apply a pending credit leak behind the
        // checker's back (no-op unless armed by
        // `debug_inject_credit_leak`).
        if self.leak_at.is_some_and(|at| at <= cycle) {
            self.apply_debug_leak();
        }
        if self.misbehave_at.is_some_and(|at| at <= cycle) {
            self.apply_debug_misbehave();
        }

        // Invariant sweep (checker only): cross-check every buffer and the
        // global conservation books after the cycle's state changes.
        if self.checker.is_some() {
            self.invariant_phase(cycle);
        }

        // Phase 6: close out the cycle.
        self.stats.link_busy_cycles += self.active_mesh_tx as u64;
        self.net.link_utilization_prev =
            self.active_mesh_tx as f64 / self.topo.num_links().max(1) as f64;
        self.arbiter.end_cycle(&self.net);
        self.stats.cycles += 1;
        self.cycle += 1;
    }

    /// Reserves one flit on the first input VC with room, without telling
    /// the invariant checker — the deliberate bug armed by
    /// [`Simulator::debug_inject_credit_leak`]. Stays armed until a
    /// buffer with free space is found.
    fn apply_debug_leak(&mut self) {
        // Flat index order is (router, port, vnet) ascending — the same
        // walk as the old nested-struct layout.
        for bi in 0..self.bufs.num_buffers() {
            if self.bufs.can_reserve(bi, 1) {
                self.bufs.reserve(bi, 1);
                self.leak_at = None;
                return;
            }
        }
    }

    /// Counts one phantom used flit on the first buffer's credit book —
    /// the deliberate accounting corruption armed by
    /// [`Simulator::debug_misbehaving_controller`], modelling a buffer
    /// controller that wrote the books directly instead of going through
    /// the withhold interface. The checker's occupancy sweep must flag
    /// the buffer as an `OccupancyMismatch` this same cycle.
    fn apply_debug_misbehave(&mut self) {
        self.bufs.debug_corrupt_used(0);
        self.misbehave_at = None;
    }

    /// Buffer-control bookkeeping run once per cycle while a controller is
    /// installed: at control-epoch boundaries the controller sees fresh
    /// per-VC telemetry and proposes withholds, which are clamped
    /// ([`clamp_withhold`]) and composed with the fault plan's current
    /// shrink before actuation. The take/put-back dance mirrors
    /// `fault_phase`.
    fn control_phase(&mut self, cycle: u64) {
        let Some(mut c) = self.vc_ctl.take() else { return };
        let epoch = c.ctl.control_epoch().max(1);
        if cycle.is_multiple_of(epoch) {
            let n = self.bufs.num_buffers();
            let cap = self.bufs.capacity_flits();
            c.usage.clear();
            for bi in 0..n {
                let (used, reserved, _) = self.bufs.book_state(bi);
                c.usage.push(VcUsage {
                    used,
                    reserved,
                    fault_shrink: c.fault_shrink[bi],
                    capacity: cap,
                });
            }
            c.proposal.clear();
            c.proposal.resize(n, 0);
            c.ctl.reallocate(cycle, &c.usage, &mut c.proposal);
            c.epochs_run += 1;
            let max_flits = self.cfg.max_packet_flits;
            for bi in 0..n {
                c.withhold[bi] =
                    clamp_withhold(c.proposal[bi], c.fault_shrink[bi], cap, max_flits);
                self.bufs.set_shrink(bi, c.fault_shrink[bi] + c.withhold[bi]);
            }
        }
        self.vc_ctl = Some(c);
    }

    /// Invariant bookkeeping run once per cycle while the checker is
    /// enabled. The take/put-back dance lets the checker borrow coexist
    /// with reads of router buffers (same pattern as `fault_phase`).
    fn invariant_phase(&mut self, cycle: u64) {
        let Some(mut ck) = self.checker.take() else { return };
        for r in 0..self.coords.len() {
            for p in 0..self.ports {
                for v in 0..self.vnets {
                    let bi = (r * self.ports + p) * self.vnets + v;
                    ck.check_buffer(cycle, r, p, v, self.bufs.view(bi));
                }
            }
        }
        let queued = self.queued_at_sources() as u64;
        ck.check_global(cycle, &self.stats, self.inflight_count, queued);
        self.checker = Some(ck);
    }

    /// Fault bookkeeping run once per cycle while a plan is installed:
    /// VC-shrink boundaries crossing this cycle are applied to the affected
    /// buffers, and the periodic starvation watchdog surfaces wedged ports
    /// into [`SimStats`] so degraded runs degrade visibly instead of
    /// hanging silently.
    fn fault_phase(&mut self, cycle: u64) {
        let Some(fr) = self.faults.take() else { return };
        let mut ctl = self.vc_ctl.take();
        let (ports, vnets) = (self.ports, self.vnets);
        let (cap, max_flits) = (self.bufs.capacity_flits(), self.cfg.max_packet_flits);
        fr.shrink_updates(cycle, |router, port, shrink| {
            let base = (router * ports + port) * vnets;
            for v in 0..vnets {
                let bi = base + v;
                match &mut ctl {
                    // With a controller installed the actuated shrink is
                    // the composition of both squeezes; a fault change
                    // re-clamps the standing withhold so the headroom
                    // guarantee survives the new fault state.
                    Some(c) => {
                        c.fault_shrink[bi] = shrink;
                        c.withhold[bi] =
                            clamp_withhold(c.withhold[bi], shrink, cap, max_flits);
                        self.bufs.set_shrink(bi, shrink + c.withhold[bi]);
                    }
                    None => self.bufs.set_shrink(bi, shrink),
                }
            }
        });
        self.vc_ctl = ctl;
        if fr.watchdog_due(cycle) {
            let mut wedged = 0;
            for r in 0..self.coords.len() {
                for p in 0..ports {
                    let base = (r * ports + p) * vnets;
                    let starving = (0..vnets).any(|v| {
                        self.bufs
                            .head(base + v)
                            .is_some_and(|bp| bp.local_age(cycle) > self.cfg.starvation_threshold)
                    });
                    if starving {
                        wedged += 1;
                    }
                }
            }
            self.stats.wedged_ports = wedged;
            if wedged > 0 {
                self.stats.watchdog_fires += 1;
            }
        }
        // Recovery-episode accounting: a rising edge of "any fault event
        // active" opens an episode and snapshots the latency EMA as the
        // healthy baseline; once every event has ended, the episode closes
        // (counts as recovered) when the EMA returns to within 12.5% of
        // that baseline, plus an absolute slack of 8 cycles. The slack
        // matters when the onset lands early in a run: the EMA has not
        // yet converged up to its steady-state value, and a purely
        // multiplicative threshold around that too-low snapshot would sit
        // *below* the healthy network's own latency, making recovery
        // unreachable no matter how completely the network heals.
        // Integer-only Q48.16 arithmetic keeps this bit-deterministic.
        let active = fr.any_active(cycle);
        if active && !self.fault_active_prev && !self.recov_pending {
            self.stats.fault_onsets += 1;
            self.recov_pending = true;
            self.recov_onset_cycle = cycle;
            // A zero EMA (nothing delivered yet) would make recovery
            // unreachable; floor the baseline at one cycle of latency.
            self.recov_baseline_q16 = self.lat_ema_q16.max(1 << 16);
            self.first_onset_cycle = self.first_onset_cycle.min(cycle);
        }
        if self.recov_pending
            && !active
            && self.lat_ema_q16
                <= self.recov_baseline_q16 + self.recov_baseline_q16 / 8 + (8 << 16)
        {
            self.stats.recoveries += 1;
            self.stats.recovery_cycles_total += cycle - self.recov_onset_cycle;
            self.recov_pending = false;
        }
        self.fault_active_prev = active;
        self.faults = Some(fr);
    }

    fn make_packet(&mut self, req: InjectionRequest, cycle: u64) -> Packet {
        assert!(
            req.src.index() < self.topo.num_nodes() && req.dst.index() < self.topo.num_nodes(),
            "injection references unknown node ({} or {})",
            req.src,
            req.dst
        );
        assert!(
            req.vnet < self.cfg.num_vnets,
            "injection vnet {} out of range ({} vnets)",
            req.vnet,
            self.cfg.num_vnets
        );
        assert!(
            req.len_flits >= 1 && req.len_flits <= self.cfg.max_packet_flits,
            "injection length {} flits outside [1, {}]",
            req.len_flits,
            self.cfg.max_packet_flits
        );
        let src_node = self.topo.node(req.src);
        let dst_node = self.topo.node(req.dst);
        let id = self.next_packet_id;
        self.next_packet_id += 1;
        Packet {
            id,
            src: req.src,
            dst: req.dst,
            vnet: req.vnet,
            msg_type: req.msg_type,
            dst_type: req.dst_type,
            len_flits: req.len_flits,
            create_cycle: cycle,
            inject_cycle: cycle,
            src_router: src_node.router,
            dst_router: dst_node.router,
            dst_slot: dst_node.slot,
            hop_count: 0,
            distance: self.topo.hop_distance(src_node.router, dst_node.router),
            tag: req.tag,
        }
    }

    fn deliver(&mut self, packet: Packet, cycle: u64) {
        let latency = cycle - packet.create_cycle;
        self.stats.delivered += 1;
        self.stats.total_latency += latency;
        self.stats.total_network_latency += cycle - packet.inject_cycle;
        self.stats.total_hops += packet.hop_count as u64;
        self.stats.latencies.push(latency);
        self.stats.delivered_per_vnet[packet.vnet] += 1;
        self.stats.delivered_per_node[packet.src.index()] += 1;
        self.in_flight_per_router[packet.src_router.index()] -= 1;
        self.inflight_create_sum -= packet.create_cycle as u128;
        self.inflight_count -= 1;
        self.period_lat_sum += latency;
        self.period_delivered += 1;
        // Latency EMA (α = 1/16) feeding the recovery detector; updated
        // unconditionally so the pre-onset baseline is already warm when a
        // fault fires. Q48.16 fixed point: overflow-safe for any
        // realistic latency (< 2^43 cycles).
        self.lat_ema_q16 = (self.lat_ema_q16 * 15 + (latency << 16)) / 16;
        if cycle >= self.first_onset_cycle {
            self.stats.post_fault_delivered += 1;
            self.stats.post_fault_latency_total += latency;
        }
        if let Some(ck) = &mut self.checker {
            ck.on_delivered(cycle, &packet);
        }
        self.traffic.on_delivered(&packet, cycle);
    }

    /// Routes a head packet to its output port under the configured
    /// routing function.
    #[inline]
    fn route_port(&self, router: RouterId, dst_router: RouterId, dst_slot: u8, vnet: usize) -> usize {
        match self.cfg.routing {
            RoutingKind::XY => {
                // Inlined X-Y over the precomputed coordinate table — the
                // same decision (and port numbering) as
                // [`crate::routing::route_xy_port`] without per-call
                // div/mod.
                let c = self.coords[router.index()];
                let d = self.coords[dst_router.index()];
                if c.x < d.x {
                    self.num_locals + 3 // East
                } else if c.x > d.x {
                    self.num_locals + 2 // West
                } else if c.y < d.y {
                    self.num_locals + 1 // South
                } else if c.y > d.y {
                    self.num_locals // North
                } else {
                    self.topo.port_index(PortDir::Local(dst_slot))
                }
            }
            RoutingKind::WestFirstAdaptive => {
                // Congestion estimate: occupied + reserved flits in the
                // downstream input VC of this vnet (more = worse).
                let congestion = |dir: PortDir| -> u32 {
                    let p = self.topo.port_index(dir);
                    match self.links[router.index() * self.ports + p] {
                        Some((next, in_port)) => {
                            let bi = (next * self.ports + in_port) * self.vnets + vnet;
                            self.bufs.capacity_flits() - self.bufs.free_flits(bi)
                        }
                        None => u32::MAX, // edge: never pick a missing link
                    }
                };
                match route_west_first(&self.topo, router, dst_router, dst_slot, congestion) {
                    RouteStep::Forward(dir) => self.topo.port_index(dir),
                    RouteStep::Eject(slot) => self.topo.port_index(PortDir::Local(slot)),
                }
            }
            kind @ (RoutingKind::TorusDimOrder
            | RoutingKind::RingShortest
            | RoutingKind::TableShortest) => {
                match route_deterministic(kind, &self.topo, router, dst_router, dst_slot) {
                    RouteStep::Forward(dir) => self.topo.port_index(dir),
                    RouteStep::Eject(slot) => self.topo.port_index(PortDir::Local(slot)),
                }
            }
        }
    }

    /// True when a packet of `len` flits can be launched from `router`
    /// through `out_port` (downstream credit available and the link is not
    /// down).
    #[inline]
    fn downstream_ready(
        &self,
        router: RouterId,
        out_port: usize,
        vnet: usize,
        len: u32,
        cycle: u64,
    ) -> bool {
        if out_port < self.num_locals {
            return true; // ejection: nodes always sink
        }
        if self
            .faults
            .as_ref()
            .is_some_and(|fr| fr.link_down(router, out_port, cycle))
        {
            return false; // link down: no credit visible for the window
        }
        let nbi = self.links_nbi[router.index() * self.ports + out_port];
        if nbi == u32::MAX {
            return false; // disconnected edge port; packets never route here
        }
        self.bufs.can_reserve(nbi as usize + vnet, len)
    }

    fn arbitrate_router(&mut self, router: RouterId, cycle: u64) {
        let r = router.index();
        let occ_base = r * self.occ_words;
        // Fast skip: a router with no buffered packets builds an empty
        // request matrix, which the old layout early-returned on anyway.
        let mut any_occ = 0u64;
        for w in 0..self.occ_words {
            any_occ |= self.occ[occ_base + w];
        }
        if any_occ == 0 {
            return;
        }
        let ports = self.ports;
        let vnets = self.vnets;
        let out_base = r * ports;
        let mut scratch = self.arb.take().expect("arb scratch is always restored");
        debug_assert!(scratch.outputs.is_empty());
        if scratch.buckets.len() < ports {
            scratch.buckets.resize_with(ports, Vec::new);
        }
        // Pass 1 over the occupied VCs in ascending (in_port, vnet) order:
        // gate each head (fault hold, output busy, downstream credit) and
        // collect a compact request record per eligible head. Nothing
        // mutates while the request matrix is built, so each head's route
        // is the same for every output port — compute it once. Full
        // `Candidate`s (with the Table-2 feature vector) are only
        // materialised in pass 2 for *contended* outputs; sole requesters
        // are granted directly (paper §4.5) and never reach the policy.
        scratch.reqs.clear();
        scratch.counts.clear();
        scratch.counts.resize(ports, 0);
        scratch.first_req.clear();
        scratch.first_req.resize(ports, u32::MAX);
        let faulty = self.faults.is_some();
        for w in 0..self.occ_words {
            let mut word = self.occ[occ_base + w];
            while word != 0 {
                let slot = w * 64 + word.trailing_zeros() as usize;
                word &= word - 1;
                let in_port = slot / vnets;
                let vnet = slot % vnets;
                if faulty
                    && self
                        .faults
                        .as_ref()
                        .is_some_and(|fr| fr.held(router, in_port, vnet, cycle))
                {
                    continue; // transient-fault retry backoff: sit this cycle out
                }
                let bi = (r * ports + in_port) * vnets + vnet;
                debug_assert!(self.bufs.head(bi).is_some(), "occupied VC has a head");
                // The hot mirror carries exactly the head fields this scan
                // needs (one cache line) — the full `BufferedPacket` is only
                // touched again for contended outputs in pass 2.
                let hot = self.bufs.hots[bi];
                let len = hot.len_flits;
                // Under deterministic routing the head's route is a pure
                // function of the head packet, so it is cached in the hot
                // entry and reset whenever the head changes; adaptive
                // routing reads live congestion and always recomputes.
                let out_port = if self.route_cacheable && hot.route != u8::MAX {
                    hot.route as usize
                } else {
                    let p = self.route_port(
                        router,
                        RouterId(hot.dst_router as usize),
                        hot.dst_slot,
                        vnet,
                    );
                    if self.route_cacheable {
                        self.bufs.hots[bi].route = p as u8;
                    }
                    p
                };
                if self.out_free_at[out_base + out_port] > cycle {
                    continue;
                }
                if !self.downstream_ready(router, out_port, vnet, len, cycle) {
                    continue;
                }
                let local_age = cycle.saturating_sub(hot.arrival_cycle);
                self.stats.max_local_age = self.stats.max_local_age.max(local_age);
                if scratch.counts[out_port] == 0 {
                    scratch.first_req[out_port] = scratch.reqs.len() as u32;
                }
                scratch.counts[out_port] += 1;
                scratch.reqs.push(GrantReq {
                    local_age,
                    bi: bi as u32,
                    len,
                    out_port: out_port as u8,
                    in_port: in_port as u8,
                    vnet: vnet as u8,
                    slot: slot as u8,
                });
            }
        }
        if scratch.reqs.is_empty() {
            self.arb = Some(scratch);
            return;
        }

        // Pass 2: materialise the full request matrix for contended outputs
        // only. Requests iterate in the pass-1 (in_port, vnet) order, so
        // each bucket keeps the same candidate order the one-pass build
        // produced.
        let mut any_multi = false;
        for qi in 0..scratch.reqs.len() {
            let q = scratch.reqs[qi];
            let q_out = q.out_port as usize;
            if scratch.counts[q_out] < 2 {
                continue;
            }
            any_multi = true;
            let port_degraded = faulty
                && self
                    .faults
                    .as_ref()
                    .is_some_and(|fr| fr.link_degraded(router, q_out, cycle));
            let cand = if self.arb_lite {
                // The policy declared (via `Arbiter::wants_features`) that
                // it only reads the ordering keys: fill those from the hot
                // mirrors and leave the Table-2 feature vector zeroed
                // rather than touching the full buffered packet.
                let aux = self.bufs.auxs[q.bi as usize];
                Candidate {
                    in_port: q.in_port as usize,
                    vnet: q.vnet as usize,
                    slot: q.slot as usize,
                    features: Features {
                        payload_size: q.len,
                        local_age: q.local_age,
                        ..Features::default()
                    },
                    packet_id: aux.id,
                    create_cycle: aux.create_cycle,
                    arrival_cycle: cycle - q.local_age,
                    src: NodeId(0),
                    dst: NodeId(0),
                    port_degraded,
                }
            } else {
                let bp = self
                    .bufs
                    .head(q.bi as usize)
                    .expect("requesting buffer has a head");
                Candidate {
                    in_port: q.in_port as usize,
                    vnet: q.vnet as usize,
                    slot: q.slot as usize,
                    features: Features {
                        payload_size: bp.packet.len_flits,
                        local_age: q.local_age,
                        distance: bp.packet.distance,
                        hop_count: bp.packet.hop_count,
                        in_flight_from_src: self.in_flight_per_router
                            [bp.packet.src_router.index()],
                        inter_arrival: bp.inter_arrival,
                        msg_type: bp.packet.msg_type,
                        dst_type: bp.packet.dst_type,
                    },
                    packet_id: bp.packet.id,
                    create_cycle: bp.packet.create_cycle,
                    arrival_cycle: bp.arrival_cycle,
                    src: bp.packet.src,
                    dst: bp.packet.dst,
                    port_degraded,
                }
            };
            scratch.buckets[q_out].push(cand);
        }
        if any_multi {
            for (out_port, bucket) in scratch.buckets.iter_mut().enumerate().take(ports) {
                if bucket.is_empty() {
                    continue;
                }
                let fresh = scratch.spare.pop().unwrap_or_default();
                scratch.outputs.push((out_port, std::mem::replace(bucket, fresh)));
            }
            self.arbiter.plan_router(&RouterCtx {
                router,
                cycle,
                num_ports: ports,
                num_vnets: self.cfg.num_vnets,
                outputs: &scratch.outputs,
                net: &self.net,
            });
        }

        let mut granted_inputs: u64 = 0;
        let mut out_idx = 0;
        for out_port in 0..ports {
            let cnt = scratch.counts[out_port];
            if cnt == 0 {
                continue;
            }
            let grant = if cnt == 1 {
                // Single requester: grant directly without querying the
                // policy (paper §4.5).
                let q = scratch.reqs[scratch.first_req[out_port] as usize];
                if granted_inputs & (1 << q.in_port) != 0 {
                    continue; // its input was granted to an earlier output
                }
                q
            } else {
                let ArbScratch { outputs, avail, .. } = &mut *scratch;
                debug_assert_eq!(outputs[out_idx].0, out_port);
                let bucket = &outputs[out_idx].1;
                out_idx += 1;
                // Filtering out already-granted inputs usually removes
                // nothing, so borrow the bucket in place and only copy when
                // it does.
                let cands: &[Candidate] = if granted_inputs != 0
                    && bucket.iter().any(|c| granted_inputs & (1 << c.in_port) != 0)
                {
                    avail.clear();
                    for c in bucket {
                        if granted_inputs & (1 << c.in_port) == 0 {
                            avail.push(c.clone());
                        }
                    }
                    avail
                } else {
                    bucket
                };
                if cands.is_empty() {
                    continue;
                }
                let choice = if cands.len() == 1 {
                    // Down to a sole requester after filtering: direct grant.
                    Some(0)
                } else {
                    self.stats.arbiter_queries += 1;
                    let ctx = OutputCtx {
                        router,
                        out_port,
                        cycle,
                        num_ports: ports,
                        num_vnets: self.cfg.num_vnets,
                        candidates: cands,
                        net: &self.net,
                    };
                    self.arbiter.select(&ctx).filter(|&i| i < cands.len())
                };
                let Some(i) = choice else { continue };
                let winner = &cands[i];
                GrantReq {
                    local_age: winner.features.local_age,
                    bi: ((r * ports + winner.in_port) * vnets + winner.vnet) as u32,
                    len: winner.features.payload_size,
                    out_port: out_port as u8,
                    in_port: winner.in_port as u8,
                    vnet: winner.vnet as u8,
                    slot: winner.slot as u8,
                }
            };
            granted_inputs |= 1 << grant.in_port;
            // A transient link fault corrupts the transmission: the grant
            // attempt consumes bandwidth and credit but the packet stays
            // queued for retry.
            if self
                .faults
                .as_ref()
                .is_some_and(|fr| fr.transient_active(router, out_port, cycle))
            {
                self.fail_grant(router, out_port, grant, cycle);
            } else {
                self.apply_grant(router, out_port, grant, cycle);
            }
        }

        // Return candidate buffers to the pool for the next router/cycle.
        for (_, mut cands) in scratch.outputs.drain(..) {
            cands.clear();
            scratch.spare.push(cands);
        }
        self.arb = Some(scratch);
    }

    /// A grant attempt hit a transiently faulty link: the flits leave the
    /// output but are corrupted on the wire. The packet never leaves its
    /// input buffer; the output port stays busy for the full serialization
    /// window, the downstream credit consumed by the corrupt transmission
    /// is recovered when the reconciliation message lands
    /// ([`Arrival::CreditReturn`]), and the buffer backs off with bounded
    /// exponential retry.
    fn fail_grant(&mut self, router: RouterId, out_port: usize, winner: GrantReq, cycle: u64) {
        let len = winner.len;
        self.stats.link_fault_drops += 1;
        self.out_free_at[router.index() * self.ports + out_port] = cycle + len as u64;
        // Off the hot path (transient faults only): read the id back from
        // the still-buffered head rather than carrying it in every request.
        let packet_id = self
            .bufs
            .head(winner.bi as usize)
            .expect("failed grant leaves the packet buffered")
            .packet
            .id;
        self.trace_event(
            cycle,
            packet_id,
            TraceKind::FaultDropped { router, out_port },
        );
        // `links` is `None` for both local ports and disconnected edges —
        // the two cases the old layout skipped separately.
        if let Some((next, in_port)) = self.links[router.index() * self.ports + out_port] {
            // The downstream credit is consumed exactly as a healthy
            // transmission would, then returned after one link
            // round-trip — stalled credit must not wedge the neighbour.
            self.bufs.reserve(self.bi(next, in_port, winner.vnet as usize), len);
            if let Some(ck) = &mut self.checker {
                ck.on_fault_reserve(next, in_port, winner.vnet as usize, len);
            }
            self.stats.fault_credits_reserved += len as u64;
            self.active_mesh_tx += 1;
            self.tx_ends.add(cycle + len as u64, 1);
            let at = cycle + (len as u64 - 1) + self.cfg.link_latency + self.cfg.router_latency;
            self.arrivals.schedule(
                at.max(cycle + 1),
                Arrival::CreditReturn {
                    router: RouterId(next),
                    in_port,
                    vnet: winner.vnet as usize,
                    len,
                },
            );
        }
        if let Some(fr) = &mut self.faults {
            fr.bump_retry(router, winner.in_port as usize, winner.vnet as usize, cycle);
        }
    }

    fn apply_grant(&mut self, router: RouterId, out_port: usize, winner: GrantReq, cycle: u64) {
        if let Some(fr) = &mut self.faults {
            fr.clear_retry(router, winner.in_port as usize, winner.vnet as usize);
        }
        let r = router.index();
        let src_bi = winner.bi as usize;
        let bp = self
            .bufs
            .pop(src_bi)
            .expect("granted buffer must be non-empty");
        if self.bufs.is_empty(src_bi) {
            self.occ_clear(r, winner.slot as usize);
        }
        let mut pkt = bp.packet;
        let len = pkt.len_flits;
        self.stats.grants += 1;
        if winner.local_age > self.cfg.starvation_threshold {
            self.stats.starved_grants += 1;
        }
        self.out_free_at[r * self.ports + out_port] = cycle + len as u64;
        if let Some(log) = &mut self.grant_log {
            log.push(Grant {
                router,
                out_port,
                in_port: winner.in_port as usize,
                vnet: winner.vnet as usize,
                packet_id: pkt.id,
            });
        }

        if out_port < self.num_locals {
            // Ejection.
            self.trace_event(cycle, pkt.id, TraceKind::Delivered { router });
            let at = cycle + (len as u64 - 1) + self.cfg.link_latency;
            self.arrivals
                .schedule(at.max(cycle + 1), Arrival::Node { packet: pkt });
        } else {
            self.trace_event(cycle, pkt.id, TraceKind::Forwarded { router, out_port });
            let (next, in_port) = self.links[r * self.ports + out_port]
                .expect("granted mesh port must be connected");
            self.bufs.reserve(self.bi(next, in_port, pkt.vnet), len);
            if let Some(ck) = &mut self.checker {
                ck.on_reserve(next, in_port, pkt.vnet, len);
            }
            pkt.hop_count += 1;
            self.stats.flits_on_links += len as u64;
            self.active_mesh_tx += 1;
            self.tx_ends.add(cycle + len as u64, 1);
            let at = cycle + (len as u64 - 1) + self.cfg.link_latency + self.cfg.router_latency;
            let vnet = pkt.vnet;
            self.arrivals.schedule(
                at.max(cycle + 1),
                Arrival::Router {
                    router: RouterId(next),
                    in_port,
                    vnet,
                    packet: pkt,
                },
            );
        }
    }
}

impl<T: TrafficSource> Simulator<T> {
    /// Serializes every piece of mutable simulator state into a versioned,
    /// content-hashed [`SimCheckpoint`]: RNG streams (via the traffic
    /// source and arbiter state hooks), calendar queues, buffer contents
    /// and credit books, injection queues, fault-runtime retry state,
    /// invariant-checker books, and the full [`SimStats`]. A run split at
    /// any cycle boundary via [`Simulator::checkpoint`] /
    /// [`Simulator::restore`] — including across a process restart — is
    /// bit-identical to the unsplit run.
    ///
    /// # Errors
    ///
    /// Refuses to checkpoint when the state cannot be carried faithfully:
    /// the installed arbiter or traffic source does not implement the
    /// checkpoint hooks ([`Arbiter::checkpoint_state`] returned `None`),
    /// the grant log or packet trace is enabled (unbounded diagnostic
    /// state, deliberately outside the snapshot contract), a debug credit
    /// leak is armed, or the invariant checker has already recorded
    /// violations (the violation list is not serialized; clean runs have
    /// none).
    pub fn checkpoint(&self) -> Result<SimCheckpoint, String> {
        if self.grant_log.is_some() {
            return Err("cannot checkpoint with the grant log enabled".into());
        }
        if self.trace.is_some() {
            return Err("cannot checkpoint with packet tracing enabled".into());
        }
        if self.leak_at.is_some() {
            return Err("cannot checkpoint with a debug credit leak armed".into());
        }
        if self.misbehave_at.is_some() {
            return Err("cannot checkpoint with a debug controller corruption armed".into());
        }
        if let Some(ck) = &self.checker {
            if ck.total_violations() > 0 {
                return Err(
                    "cannot checkpoint after invariant violations were recorded".into(),
                );
            }
        }
        let arbiter_state = self.arbiter.checkpoint_state().ok_or_else(|| {
            format!(
                "arbiter '{}' does not support checkpointing",
                self.arbiter.name()
            )
        })?;
        let traffic_state = self
            .traffic
            .checkpoint_state()
            .ok_or_else(|| "the traffic source does not support checkpointing".to_string())?;
        ckpt::check_clean_str(&arbiter_state, "arbiter")?;
        ckpt::check_clean_str(&traffic_state, "traffic")?;
        let arbiter_name = self.arbiter.name();
        ckpt::check_clean_str(&arbiter_name, "arbiter name")?;
        let ctl_block = match &self.vc_ctl {
            None => None,
            Some(c) => {
                let state = c.ctl.checkpoint_state().ok_or_else(|| {
                    format!(
                        "buffer controller '{}' does not support checkpointing",
                        c.ctl.name()
                    )
                })?;
                ckpt::check_clean_str(&state, "buffer controller")?;
                let name = c.ctl.name();
                ckpt::check_clean_str(&name, "buffer controller name")?;
                Some((name, state))
            }
        };

        fn fnum(key: &str, v: u64) -> String {
            format!("\"{key}\": {v}")
        }
        fn fstr(key: &str, v: &str) -> String {
            format!("\"{key}\": \"{v}\"")
        }
        fn farr(key: &str, vals: impl IntoIterator<Item = u64>) -> String {
            let mut s = format!("\"{key}\": ");
            ckpt::push_num_arr(&mut s, vals);
            s
        }
        fn frows(key: &str, rows: &[Vec<u64>]) -> String {
            let mut s = format!("\"{key}\": [");
            for (i, row) in rows.iter().enumerate() {
                if i > 0 {
                    s.push(',');
                }
                s.push('\n');
                ckpt::push_num_arr(&mut s, row.iter().copied());
            }
            s.push(']');
            s
        }

        let mut fields: Vec<String> = vec![
            fnum("version", ckpt::CHECKPOINT_VERSION),
            fnum("routers", self.coords.len() as u64),
            fnum("ports", self.ports as u64),
            fnum("vnets", self.vnets as u64),
            fnum("nodes", self.node_ports.len() as u64),
            fstr("routing", self.cfg.routing.as_str()),
            fstr("arbiter_name", &arbiter_name),
            fnum("cycle", self.cycle),
            fnum("next_packet_id", self.next_packet_id),
            fnum("queued_total", self.queued_total),
            fnum("active_mesh_tx", self.active_mesh_tx as u64),
        ];
        fields.push(fnum(
            "inflight_create_hi",
            (self.inflight_create_sum >> 64) as u64,
        ));
        fields.push(fnum("inflight_create_lo", self.inflight_create_sum as u64));
        fields.push(fnum("inflight_count", self.inflight_count));
        fields.push(fnum("period_lat_sum", self.period_lat_sum));
        fields.push(fnum("period_delivered", self.period_delivered));
        fields.push(fnum("net_cycle", self.net.cycle));
        fields.push(fnum(
            "net_link_util_bits",
            self.net.link_utilization_prev.to_bits(),
        ));
        fields.push(fnum(
            "net_acc_lat_bits",
            self.net.avg_accumulated_latency.to_bits(),
        ));
        fields.push(fnum("net_in_flight", self.net.in_flight_packets as u64));
        fields.push(fnum("lat_ema_q16", self.lat_ema_q16));
        fields.push(fnum("recov_baseline_q16", self.recov_baseline_q16));
        fields.push(fnum("recov_onset_cycle", self.recov_onset_cycle));
        fields.push(fnum("recov_pending", self.recov_pending as u64));
        fields.push(fnum("first_onset_cycle", self.first_onset_cycle));
        fields.push(fnum("fault_active_prev", self.fault_active_prev as u64));

        let s = &self.stats;
        let stat_fields = vec![
            fnum("cycles", s.cycles),
            fnum("created", s.created),
            fnum("injected", s.injected),
            fnum("delivered", s.delivered),
            fnum("total_latency", s.total_latency),
            fnum("total_network_latency", s.total_network_latency),
            fnum("total_hops", s.total_hops),
            fnum("flits_on_links", s.flits_on_links),
            fnum("link_busy_cycles", s.link_busy_cycles),
            farr("latencies", s.latencies.iter().copied()),
            fnum("max_local_age", s.max_local_age),
            fnum("starved_grants", s.starved_grants),
            fnum("starving_now", s.starving_now),
            fnum("arbiter_queries", s.arbiter_queries),
            fnum("grants", s.grants),
            farr("delivered_per_vnet", s.delivered_per_vnet.iter().copied()),
            farr("delivered_per_node", s.delivered_per_node.iter().copied()),
            fnum("link_fault_drops", s.link_fault_drops),
            fnum("fault_credits_reserved", s.fault_credits_reserved),
            fnum("fault_credits_reconciled", s.fault_credits_reconciled),
            fnum("stalled_router_cycles", s.stalled_router_cycles),
            fnum("watchdog_fires", s.watchdog_fires),
            fnum("wedged_ports", s.wedged_ports),
            fnum("fault_onsets", s.fault_onsets),
            fnum("recoveries", s.recoveries),
            fnum("recovery_cycles_total", s.recovery_cycles_total),
            fnum("post_fault_delivered", s.post_fault_delivered),
            fnum("post_fault_latency_total", s.post_fault_latency_total),
            fnum("in_flight_at_end", s.in_flight_at_end),
            fnum("queued_at_end", s.queued_at_end),
            fnum("num_mesh_links", s.num_mesh_links as u64),
        ];
        fields.push(format!("\"stats\": {{ {} }}", stat_fields.join(", ")));

        fields.push(farr("out_free_at", self.out_free_at.iter().copied()));
        fields.push(farr(
            "in_flight_per_router",
            self.in_flight_per_router.iter().map(|&n| n as u64),
        ));

        let mut inj_rows: Vec<Vec<u64>> = Vec::new();
        for (qi, q) in self.inj_queues.iter().enumerate() {
            if q.is_empty() {
                continue;
            }
            let mut row = vec![qi as u64];
            for p in q {
                row.extend_from_slice(&ckpt::packet_nums(p));
            }
            inj_rows.push(row);
        }
        fields.push(frows("inj_queues", &inj_rows));

        fields.push(fnum("arrivals_cursor", self.arrivals.cursor()));
        let mut arr_rows: Vec<Vec<u64>> = Vec::new();
        for (due, a) in self.arrivals.pending() {
            let mut row = vec![due];
            match a {
                Arrival::Router {
                    router,
                    in_port,
                    vnet,
                    packet,
                } => {
                    row.push(0);
                    row.extend([router.index() as u64, *in_port as u64, *vnet as u64]);
                    row.extend_from_slice(&ckpt::packet_nums(packet));
                }
                Arrival::Node { packet } => {
                    row.push(1);
                    row.extend_from_slice(&ckpt::packet_nums(packet));
                }
                Arrival::CreditReturn {
                    router,
                    in_port,
                    vnet,
                    len,
                } => {
                    row.push(2);
                    row.extend([
                        router.index() as u64,
                        *in_port as u64,
                        *vnet as u64,
                        *len as u64,
                    ]);
                }
            }
            arr_rows.push(row);
        }
        fields.push(frows("arrivals", &arr_rows));

        fields.push(fnum("tx_ends_cursor", self.tx_ends.cursor()));
        let tx_rows: Vec<Vec<u64>> = self
            .tx_ends
            .pending()
            .into_iter()
            .map(|(due, n)| vec![due, n as u64])
            .collect();
        fields.push(frows("tx_ends", &tx_rows));

        let mut buf_rows: Vec<Vec<u64>> = Vec::new();
        for bi in 0..self.bufs.num_buffers() {
            let (used, reserved, shrink) = self.bufs.book_state(bi);
            let last = self.bufs.last_arrival(bi);
            let occupied = !self.bufs.is_empty(bi);
            if used == 0 && reserved == 0 && shrink == 0 && last == u64::MAX && !occupied {
                continue; // pristine buffer: implicit in the fresh simulator
            }
            let mut row = vec![
                bi as u64,
                used as u64,
                reserved as u64,
                shrink as u64,
                last,
            ];
            for bp in self.bufs.iter(bi) {
                ckpt::buffered_nums(bp, &mut row);
            }
            buf_rows.push(row);
        }
        fields.push(frows("buffers", &buf_rows));

        if let Some(fr) = &self.faults {
            let (hold, retry) = fr.retry_state();
            let mut f = String::from("\"faults\": { \"plan\": ");
            f.push_str(&fr.plan().to_json());
            f.push_str(", ");
            f.push_str(&farr("hold_until", hold.iter().copied()));
            f.push_str(", ");
            f.push_str(&farr("retry_count", retry.iter().map(|&n| n as u64)));
            f.push_str(" }");
            fields.push(f);
        }

        if let Some(ck) = &self.checker {
            let snap = ck.snapshot();
            let ck_fields = vec![
                fnum("created", snap.created),
                fnum("delivered", snap.delivered),
                fnum("created_at_reset", snap.created_at_reset),
                fnum("delivered_at_reset", snap.delivered_at_reset),
                fnum("fault_reserved", snap.fault_reserved),
                fnum("fault_reconciled", snap.fault_reconciled),
                fnum("fault_reserved_at_reset", snap.fault_reserved_at_reset),
                fnum(
                    "fault_reconciled_at_reset",
                    snap.fault_reconciled_at_reset,
                ),
                farr("delivered_ids", snap.delivered_ids.iter().copied()),
                farr(
                    "last_in_flow",
                    snap.last_in_flow
                        .iter()
                        .flat_map(|&(a, b, c, d)| [a, b, c, d]),
                ),
                farr(
                    "expected_reserved",
                    snap.expected_reserved.iter().map(|&n| n as u64),
                ),
                fnum("total_violations", snap.total_violations),
            ];
            fields.push(format!("\"checker\": {{ {} }}", ck_fields.join(", ")));
        }

        if let (Some(c), Some((name, state))) = (&self.vc_ctl, &ctl_block) {
            let ctl_fields = vec![
                fstr("name", name),
                farr("withhold", c.withhold.iter().map(|&n| n as u64)),
                farr("fault_shrink", c.fault_shrink.iter().map(|&n| n as u64)),
                fnum("epochs_run", c.epochs_run),
                fstr("state", state),
            ];
            fields.push(format!("\"vc_ctl\": {{ {} }}", ctl_fields.join(", ")));
        }

        fields.push(fstr("traffic", &traffic_state));
        fields.push(fstr("arbiter", &arbiter_state));
        let text = format!("{{\n{}\n}}\n", fields.join(",\n"));
        Ok(SimCheckpoint::from_text(text))
    }

    /// Rebuilds a simulator from a checkpoint, resuming bit-identically.
    ///
    /// The caller supplies the same construction-time inputs the original
    /// simulator was built with — topology, configuration, and *freshly
    /// constructed* arbiter and traffic-source objects of the same types
    /// and parameters; their mutable state (RNG streams, rotation
    /// pointers) is then overwritten from the checkpoint. The fault plan
    /// and invariant-checker enablement are restored from the checkpoint
    /// itself; do not call [`Simulator::set_fault_plan`] or
    /// [`Simulator::enable_invariant_checker`] on the result.
    ///
    /// # Errors
    ///
    /// Returns a description of the first problem: invalid construction
    /// inputs, a checkpoint version or shape mismatch (router/port/vnet
    /// counts, routing kind, arbiter name), or a malformed document.
    pub fn restore(
        topo: Topology,
        cfg: SimConfig,
        arbiter: Box<dyn Arbiter>,
        traffic: T,
        checkpoint: &SimCheckpoint,
    ) -> Result<Self, String> {
        let mut sim = Simulator::new(topo, cfg, arbiter, traffic).map_err(|e| e.to_string())?;
        sim.apply_checkpoint(checkpoint)?;
        Ok(sim)
    }

    /// Applies a checkpoint to a freshly constructed simulator in place —
    /// the variant of [`Simulator::restore`] for runs with a
    /// [`BufferController`] installed, where the controller object (a
    /// construction-time input, like the arbiter) must be supplied via
    /// [`Simulator::set_buffer_controller`] *before* the checkpoint is
    /// applied:
    ///
    /// ```text
    /// let mut sim = Simulator::new(topo, cfg, arbiter, traffic)?;
    /// sim.set_buffer_controller(ctl);
    /// sim.restore_checkpoint(&checkpoint)?;
    /// ```
    ///
    /// # Errors
    ///
    /// Same contract as [`Simulator::restore`], plus a mismatch between
    /// the installed controller (or its absence) and the checkpoint's
    /// `vc_ctl` block.
    ///
    /// # Panics
    ///
    /// Panics if the simulator has already stepped: checkpoints overwrite
    /// a *fresh* simulator only.
    pub fn restore_checkpoint(&mut self, checkpoint: &SimCheckpoint) -> Result<(), String> {
        assert_eq!(self.cycle, 0, "restore onto a freshly constructed simulator");
        self.apply_checkpoint(checkpoint)
    }

    /// Overwrites a freshly constructed simulator's state from a parsed
    /// checkpoint document (the body of [`Simulator::restore`]).
    fn apply_checkpoint(&mut self, checkpoint: &SimCheckpoint) -> Result<(), String> {
        use crate::faults::json::{self, Value};
        fn to_u32(v: u64, what: &str) -> Result<u32, String> {
            u32::try_from(v).map_err(|_| format!("\"{what}\" value {v} exceeds u32"))
        }
        let doc = json::parse(checkpoint.to_json())?;
        let obj = doc.as_obj("checkpoint")?;
        let num = |k: &str| -> Result<u64, String> { json::get(obj, k)?.as_u64(k) };
        let arr = |k: &str| -> Result<Vec<u64>, String> { ckpt::num_arr(json::get(obj, k)?, k) };
        let maybe =
            |k: &str| -> Option<&Value> { obj.iter().find(|(key, _)| key == k).map(|(_, v)| v) };

        let version = num("version")?;
        if version != ckpt::CHECKPOINT_VERSION {
            return Err(format!(
                "checkpoint version {version} not supported (expected {})",
                ckpt::CHECKPOINT_VERSION
            ));
        }
        let shape = |k: &str, want: u64| -> Result<(), String> {
            let got = num(k)?;
            if got == want {
                Ok(())
            } else {
                Err(format!(
                    "checkpoint shape mismatch: \"{k}\" is {got}, simulator has {want}"
                ))
            }
        };
        shape("routers", self.coords.len() as u64)?;
        shape("ports", self.ports as u64)?;
        shape("vnets", self.vnets as u64)?;
        shape("nodes", self.node_ports.len() as u64)?;
        let routing = json::get(obj, "routing")?.as_str("routing")?;
        if routing != self.cfg.routing.as_str() {
            return Err(format!(
                "checkpoint routing \"{routing}\" does not match configured \"{}\"",
                self.cfg.routing.as_str()
            ));
        }
        let arbiter_name = json::get(obj, "arbiter_name")?.as_str("arbiter_name")?;
        if arbiter_name != self.arbiter.name() {
            return Err(format!(
                "checkpoint arbiter \"{arbiter_name}\" does not match supplied \"{}\"",
                self.arbiter.name()
            ));
        }

        // Statistics.
        let sv = json::get(obj, "stats")?.as_obj("stats")?;
        let snum = |k: &str| -> Result<u64, String> { json::get(sv, k)?.as_u64(k) };
        let sarr = |k: &str| -> Result<Vec<u64>, String> { ckpt::num_arr(json::get(sv, k)?, k) };
        let delivered_per_vnet = sarr("delivered_per_vnet")?;
        let delivered_per_node = sarr("delivered_per_node")?;
        if delivered_per_vnet.len() != self.vnets
            || delivered_per_node.len() != self.node_ports.len()
        {
            return Err("checkpoint stats vector shapes do not match the topology".into());
        }
        let num_mesh_links = snum("num_mesh_links")? as usize;
        if num_mesh_links != self.topo.num_links() {
            return Err(format!(
                "checkpoint has {num_mesh_links} mesh links, topology has {}",
                self.topo.num_links()
            ));
        }
        self.stats = SimStats {
            cycles: snum("cycles")?,
            created: snum("created")?,
            injected: snum("injected")?,
            delivered: snum("delivered")?,
            total_latency: snum("total_latency")?,
            total_network_latency: snum("total_network_latency")?,
            total_hops: snum("total_hops")?,
            flits_on_links: snum("flits_on_links")?,
            link_busy_cycles: snum("link_busy_cycles")?,
            latencies: sarr("latencies")?,
            max_local_age: snum("max_local_age")?,
            starved_grants: snum("starved_grants")?,
            starving_now: snum("starving_now")?,
            arbiter_queries: snum("arbiter_queries")?,
            grants: snum("grants")?,
            delivered_per_vnet,
            delivered_per_node,
            link_fault_drops: snum("link_fault_drops")?,
            fault_credits_reserved: snum("fault_credits_reserved")?,
            fault_credits_reconciled: snum("fault_credits_reconciled")?,
            stalled_router_cycles: snum("stalled_router_cycles")?,
            watchdog_fires: snum("watchdog_fires")?,
            wedged_ports: snum("wedged_ports")?,
            fault_onsets: snum("fault_onsets")?,
            recoveries: snum("recoveries")?,
            recovery_cycles_total: snum("recovery_cycles_total")?,
            post_fault_delivered: snum("post_fault_delivered")?,
            post_fault_latency_total: snum("post_fault_latency_total")?,
            in_flight_at_end: snum("in_flight_at_end")?,
            queued_at_end: snum("queued_at_end")?,
            num_mesh_links,
        };

        // Network-global snapshot and scalar accounting.
        self.net = NetSnapshot {
            cycle: num("net_cycle")?,
            link_utilization_prev: f64::from_bits(num("net_link_util_bits")?),
            avg_accumulated_latency: f64::from_bits(num("net_acc_lat_bits")?),
            in_flight_packets: num("net_in_flight")? as usize,
        };
        self.cycle = num("cycle")?;
        self.next_packet_id = num("next_packet_id")?;
        self.active_mesh_tx = to_u32(num("active_mesh_tx")?, "active_mesh_tx")?;
        self.inflight_create_sum =
            ((num("inflight_create_hi")? as u128) << 64) | num("inflight_create_lo")? as u128;
        self.inflight_count = num("inflight_count")?;
        self.period_lat_sum = num("period_lat_sum")?;
        self.period_delivered = num("period_delivered")?;
        self.lat_ema_q16 = num("lat_ema_q16")?;
        self.recov_baseline_q16 = num("recov_baseline_q16")?;
        self.recov_onset_cycle = num("recov_onset_cycle")?;
        self.recov_pending = num("recov_pending")? != 0;
        self.first_onset_cycle = num("first_onset_cycle")?;
        self.fault_active_prev = num("fault_active_prev")? != 0;

        let out_free_at = arr("out_free_at")?;
        if out_free_at.len() != self.out_free_at.len() {
            return Err("checkpoint \"out_free_at\" length does not match".into());
        }
        self.out_free_at = out_free_at;
        let ifpr = arr("in_flight_per_router")?;
        if ifpr.len() != self.in_flight_per_router.len() {
            return Err("checkpoint \"in_flight_per_router\" length does not match".into());
        }
        self.in_flight_per_router = ifpr
            .iter()
            .map(|&n| to_u32(n, "in_flight_per_router"))
            .collect::<Result<_, _>>()?;

        // Injection queues (plus their occupancy bitmap and total).
        self.queued_total = 0;
        for row in json::get(obj, "inj_queues")?.as_arr("inj_queues")? {
            let nums = ckpt::num_arr(row, "inj_queues")?;
            if nums.is_empty() || (nums.len() - 1) % ckpt::PACKET_NUMS != 0 {
                return Err("malformed \"inj_queues\" record".into());
            }
            let qi = nums[0] as usize;
            if qi >= self.inj_queues.len() {
                return Err(format!("injection queue index {qi} out of range"));
            }
            let mut q = VecDeque::with_capacity((nums.len() - 1) / ckpt::PACKET_NUMS);
            for chunk in nums[1..].chunks(ckpt::PACKET_NUMS) {
                q.push_back(ckpt::packet_from_nums(chunk)?);
            }
            if q.is_empty() {
                continue;
            }
            self.queued_total += q.len() as u64;
            self.inj_occ[qi / 64] |= 1 << (qi % 64);
            self.inj_queues[qi] = q;
        }
        if self.queued_total != num("queued_total")? {
            return Err("checkpoint \"queued_total\" disagrees with its queues".into());
        }

        // In-flight arrivals calendar.
        let cursor = num("arrivals_cursor")?;
        let mut items: Vec<(u64, Arrival)> = Vec::new();
        for row in json::get(obj, "arrivals")?.as_arr("arrivals")? {
            let nums = ckpt::num_arr(row, "arrivals")?;
            if nums.len() < 2 {
                return Err("malformed \"arrivals\" record".into());
            }
            let due = nums[0];
            if due < cursor {
                return Err(format!("arrival due at {due} is before cursor {cursor}"));
            }
            let body = &nums[2..];
            let a = match nums[1] {
                0 if body.len() == 3 + ckpt::PACKET_NUMS => Arrival::Router {
                    router: RouterId(body[0] as usize),
                    in_port: body[1] as usize,
                    vnet: body[2] as usize,
                    packet: ckpt::packet_from_nums(&body[3..])?,
                },
                1 if body.len() == ckpt::PACKET_NUMS => Arrival::Node {
                    packet: ckpt::packet_from_nums(body)?,
                },
                2 if body.len() == 4 => Arrival::CreditReturn {
                    router: RouterId(body[0] as usize),
                    in_port: body[1] as usize,
                    vnet: body[2] as usize,
                    len: to_u32(body[3], "credit len")?,
                },
                tag => return Err(format!("malformed arrival record (tag {tag})")),
            };
            items.push((due, a));
        }
        self.arrivals = CalendarQueue::restore(self.arrivals.horizon(), cursor, items);

        // Link-transmission end counters.
        let tx_cursor = num("tx_ends_cursor")?;
        let mut tx_items: Vec<(u64, u32)> = Vec::new();
        for row in json::get(obj, "tx_ends")?.as_arr("tx_ends")? {
            let nums = ckpt::num_arr(row, "tx_ends")?;
            if nums.len() != 2 || nums[0] < tx_cursor {
                return Err("malformed \"tx_ends\" record".into());
            }
            tx_items.push((nums[0], to_u32(nums[1], "tx_ends")?));
        }
        self.tx_ends = CalendarCounter::restore(self.tx_ends.horizon(), tx_cursor, tx_items);

        // Buffer contents, credit books, and the occupancy bitmap.
        for row in json::get(obj, "buffers")?.as_arr("buffers")? {
            let nums = ckpt::num_arr(row, "buffers")?;
            if nums.len() < 5 || (nums.len() - 5) % ckpt::BUFFERED_NUMS != 0 {
                return Err("malformed \"buffers\" record".into());
            }
            let bi = nums[0] as usize;
            if bi >= self.bufs.num_buffers() {
                return Err(format!("buffer index {bi} out of range"));
            }
            let book = (
                to_u32(nums[1], "used")?,
                to_u32(nums[2], "reserved")?,
                to_u32(nums[3], "shrink")?,
            );
            let mut packets = VecDeque::with_capacity((nums.len() - 5) / ckpt::BUFFERED_NUMS);
            for chunk in nums[5..].chunks(ckpt::BUFFERED_NUMS) {
                packets.push_back(ckpt::buffered_from_nums(chunk)?);
            }
            let occupied = !packets.is_empty();
            self.bufs.restore_buffer(bi, packets, book, nums[4]);
            if occupied {
                let r = bi / (self.ports * self.vnets);
                let slot = bi % (self.ports * self.vnets);
                self.occ_set(r, slot);
            }
        }

        // Fault runtime: the timeline tables are pure functions of the
        // plan and are rebuilt; only the retry backoff state is restored.
        if let Some(fv) = maybe("faults") {
            let fobj = fv.as_obj("faults")?;
            let plan = FaultPlan::from_value(json::get(fobj, "plan")?)?;
            plan.validate(&self.topo)?;
            if plan.is_empty() {
                return Err("checkpoint carries an empty fault plan".into());
            }
            let mut fr = Box::new(FaultRuntime::new(&plan, &self.topo, self.cfg.num_vnets));
            let hold = ckpt::num_arr(json::get(fobj, "hold_until")?, "hold_until")?;
            let retry = ckpt::num_arr(json::get(fobj, "retry_count")?, "retry_count")?
                .iter()
                .map(|&n| to_u32(n, "retry_count"))
                .collect::<Result<Vec<u32>, _>>()?;
            fr.restore_retry_state(hold, retry)?;
            self.faults = Some(fr);
        }

        // Invariant checker: re-armed from scratch, then its books are
        // overwritten so checking continues seamlessly mid-run.
        if let Some(cv) = maybe("checker") {
            let cobj = cv.as_obj("checker")?;
            let cnum = |k: &str| -> Result<u64, String> { json::get(cobj, k)?.as_u64(k) };
            let carr =
                |k: &str| -> Result<Vec<u64>, String> { ckpt::num_arr(json::get(cobj, k)?, k) };
            let flow_flat = carr("last_in_flow")?;
            if flow_flat.len() % 4 != 0 {
                return Err("malformed \"last_in_flow\" record".into());
            }
            let snap = CheckerSnapshot {
                created: cnum("created")?,
                delivered: cnum("delivered")?,
                created_at_reset: cnum("created_at_reset")?,
                delivered_at_reset: cnum("delivered_at_reset")?,
                fault_reserved: cnum("fault_reserved")?,
                fault_reconciled: cnum("fault_reconciled")?,
                fault_reserved_at_reset: cnum("fault_reserved_at_reset")?,
                fault_reconciled_at_reset: cnum("fault_reconciled_at_reset")?,
                delivered_ids: carr("delivered_ids")?,
                last_in_flow: flow_flat
                    .chunks(4)
                    .map(|c| (c[0], c[1], c[2], c[3]))
                    .collect(),
                expected_reserved: carr("expected_reserved")?
                    .iter()
                    .map(|&n| n as i64)
                    .collect(),
                total_violations: cnum("total_violations")?,
            };
            let mut checker = InvariantChecker::new(
                self.topo.num_routers(),
                self.ports,
                self.vnets,
                self.cfg.routing.is_deterministic(),
            );
            checker.restore_snapshot(snap)?;
            self.checker = Some(Box::new(checker));
        }

        // Buffer controller: like the arbiter, the controller *object* is
        // a construction-time input (installed on the fresh simulator via
        // `set_buffer_controller` before `restore_checkpoint`); only its
        // mutable state and the simulator-owned actuation books travel in
        // the checkpoint. Presence and name must match on both sides.
        match (maybe("vc_ctl"), &mut self.vc_ctl) {
            (None, None) => {}
            (Some(_), None) => {
                return Err(
                    "checkpoint carries buffer-controller state but none is installed; \
                     call set_buffer_controller before restoring"
                        .into(),
                );
            }
            (None, Some(_)) => {
                return Err(
                    "a buffer controller is installed but the checkpoint carries no \
                     controller state"
                        .into(),
                );
            }
            (Some(cv), Some(c)) => {
                let cobj = cv.as_obj("vc_ctl")?;
                let name = json::get(cobj, "name")?.as_str("name")?;
                if name != c.ctl.name() {
                    return Err(format!(
                        "checkpoint buffer controller \"{name}\" does not match installed \"{}\"",
                        c.ctl.name()
                    ));
                }
                let n = c.withhold.len();
                let withhold = ckpt::num_arr(json::get(cobj, "withhold")?, "withhold")?;
                let fault_shrink =
                    ckpt::num_arr(json::get(cobj, "fault_shrink")?, "fault_shrink")?;
                if withhold.len() != n || fault_shrink.len() != n {
                    return Err("checkpoint \"vc_ctl\" vector shapes do not match".into());
                }
                c.withhold = withhold
                    .iter()
                    .map(|&v| to_u32(v, "withhold"))
                    .collect::<Result<_, _>>()?;
                c.fault_shrink = fault_shrink
                    .iter()
                    .map(|&v| to_u32(v, "fault_shrink"))
                    .collect::<Result<_, _>>()?;
                c.epochs_run = json::get(cobj, "epochs_run")?.as_u64("epochs_run")?;
                c.ctl
                    .restore_state(json::get(cobj, "state")?.as_str("state")?)?;
            }
        }

        // Opaque policy and traffic state, last: everything structural is
        // already in place if these implementations want to sanity-check.
        self.traffic
            .restore_state(json::get(obj, "traffic")?.as_str("traffic")?)?;
        self.arbiter
            .restore_state(json::get(obj, "arbiter")?.as_str("arbiter")?)?;
        Ok(())
    }
}

impl<T: TrafficSource> std::fmt::Debug for Simulator<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Simulator")
            .field("cycle", &self.cycle)
            .field("routers", &self.coords.len())
            .field("arbiter", &self.arbiter.name())
            .field("in_flight", &self.inflight_count)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::arbiters::FifoArbiter;
    use crate::packet::InjectionRequest;
    use crate::traffic::{Pattern, SyntheticTraffic, TraceTraffic};
    use crate::types::{DestType, MsgType, NodeId};

    fn single_packet_sim(src: usize, dst: usize, len: u32) -> Simulator<TraceTraffic> {
        let topo = Topology::uniform_mesh(4, 4).unwrap();
        let cfg = SimConfig::synthetic(4, 4);
        let req = InjectionRequest {
            src: NodeId(src),
            dst: NodeId(dst),
            vnet: 0,
            msg_type: MsgType::Request,
            dst_type: DestType::Core,
            len_flits: len,
            tag: 7,
        };
        let traffic = TraceTraffic::new(vec![(0, req)]);
        Simulator::new(topo, cfg, Box::new(FifoArbiter::new()), traffic).unwrap()
    }

    #[test]
    fn single_packet_is_delivered_with_expected_hops() {
        let mut sim = single_packet_sim(0, 15, 1);
        assert!(sim.run_until_done(1_000));
        let s = sim.stats();
        assert_eq!(s.created, 1);
        assert_eq!(s.injected, 1);
        assert_eq!(s.delivered, 1);
        // (0,0) → (3,3): 6 hops between routers.
        assert_eq!(s.total_hops, 6);
        assert_eq!(s.delivered_per_node[0], 1);
    }

    #[test]
    fn zero_load_latency_matches_pipeline_model() {
        // One hop: src router (0,0) → dst router (1,0), 1-flit packet.
        let mut sim = single_packet_sim(0, 1, 1);
        assert!(sim.run_until_done(100));
        // Injected at cycle 0; forwarded at 0 → arrives next router at
        // 0+0+1+2=3; ejected at 3 → delivered at 3+0+1=4.
        assert_eq!(sim.stats().latencies, vec![4]);
    }

    #[test]
    fn multi_flit_packet_occupies_output_longer() {
        let mut sim = single_packet_sim(0, 1, 5);
        assert!(sim.run_until_done(100));
        // Serialization adds len-1 = 4 cycles per hop: 4 + 4·2 = 12.
        assert_eq!(sim.stats().latencies, vec![12]);
        assert_eq!(sim.stats().flits_on_links, 5);
    }

    #[test]
    fn self_router_delivery_works() {
        // Node 0 and node 0's router: route to a node on the same router is
        // impossible with one node per router, so use 2-local mesh.
        let mut topo = Topology::mesh(2, 2, 2).unwrap();
        let a = topo.attach_node(RouterId(0), 0, DestType::Core).unwrap();
        let b = topo.attach_node(RouterId(0), 1, DestType::Cache).unwrap();
        let cfg = SimConfig::synthetic(2, 2);
        let req = InjectionRequest {
            src: a,
            dst: b,
            vnet: 0,
            msg_type: MsgType::Request,
            dst_type: DestType::Cache,
            len_flits: 1,
            tag: 0,
        };
        let traffic = TraceTraffic::new(vec![(0, req)]);
        let mut sim = Simulator::new(topo, cfg, Box::new(FifoArbiter::new()), traffic).unwrap();
        assert!(sim.run_until_done(100));
        assert_eq!(sim.stats().delivered, 1);
        assert_eq!(sim.stats().total_hops, 0);
    }

    #[test]
    fn conservation_packets_created_eq_delivered_plus_inflight() {
        let topo = Topology::uniform_mesh(4, 4).unwrap();
        let cfg = SimConfig::synthetic(4, 4);
        let traffic = SyntheticTraffic::new(&topo, Pattern::UniformRandom, 0.08, 3, 11);
        let mut sim =
            Simulator::new(topo, cfg, Box::new(FifoArbiter::new()), traffic).unwrap();
        sim.run(2_000);
        let s = sim.stats();
        assert!(s.delivered > 0);
        assert_eq!(
            s.created,
            s.delivered + sim.in_flight() + sim.queued_at_sources() as u64
        );
    }

    #[test]
    fn grant_log_records_forwarding() {
        let mut sim = single_packet_sim(0, 3, 1);
        sim.enable_grant_log();
        assert!(sim.run_until_done(100));
        let log = sim.grant_log().unwrap();
        // 3 router-to-router forwards + 1 ejection = 4 grants for (0,0)→(3,0).
        assert_eq!(log.len(), 4);
        assert!(log.iter().all(|g| g.packet_id == 0));
    }

    #[test]
    fn single_candidate_grants_bypass_the_policy() {
        let mut sim = single_packet_sim(0, 15, 1);
        assert!(sim.run_until_done(1_000));
        // Only one packet in the network: the policy must never be queried.
        assert_eq!(sim.stats().arbiter_queries, 0);
        assert!(sim.stats().grants > 0);
    }

    #[test]
    fn reset_stats_preserves_network_state() {
        let topo = Topology::uniform_mesh(4, 4).unwrap();
        let cfg = SimConfig::synthetic(4, 4);
        let traffic = SyntheticTraffic::new(&topo, Pattern::UniformRandom, 0.1, 3, 3);
        let mut sim =
            Simulator::new(topo, cfg, Box::new(FifoArbiter::new()), traffic).unwrap();
        sim.run(500);
        sim.reset_stats();
        assert_eq!(sim.stats().delivered, 0);
        sim.run(500);
        assert!(sim.stats().delivered > 0, "simulation continues after reset");
    }

    #[test]
    #[should_panic(expected = "vnet")]
    fn invalid_vnet_injection_panics() {
        let topo = Topology::uniform_mesh(2, 2).unwrap();
        let cfg = SimConfig::synthetic(2, 2);
        let req = InjectionRequest {
            src: NodeId(0),
            dst: NodeId(1),
            vnet: 99,
            msg_type: MsgType::Request,
            dst_type: DestType::Core,
            len_flits: 1,
            tag: 0,
        };
        let traffic = TraceTraffic::new(vec![(0, req)]);
        let mut sim = Simulator::new(topo, cfg, Box::new(FifoArbiter::new()), traffic).unwrap();
        sim.step();
    }

    #[test]
    fn packet_trace_records_full_journey() {
        let mut sim = single_packet_sim(0, 3, 1);
        sim.enable_packet_trace(100);
        assert!(sim.run_until_done(100));
        let trace = sim.packet_trace().unwrap();
        let events = trace.packet_events(0);
        // Created, injected, 3 forwards (0,0)->(3,0), delivered.
        assert_eq!(events.len(), 6);
        assert!(matches!(events[0].kind, crate::trace::TraceKind::Created));
        assert!(matches!(events[1].kind, crate::trace::TraceKind::Injected { .. }));
        assert!(matches!(
            events.last().unwrap().kind,
            crate::trace::TraceKind::Delivered { .. }
        ));
        assert_eq!(trace.dropped(), 0);
    }

    /// An adversarial arbiter that returns out-of-range indices.
    #[derive(Debug)]
    struct BogusArbiter;
    impl crate::arbitration::Arbiter for BogusArbiter {
        fn name(&self) -> String {
            "bogus".into()
        }
        fn select(&mut self, ctx: &crate::arbitration::OutputCtx<'_>) -> Option<usize> {
            Some(ctx.candidates.len() + 10)
        }
    }

    /// An arbiter that always abstains.
    #[derive(Debug)]
    struct IdleArbiter;
    impl crate::arbitration::Arbiter for IdleArbiter {
        fn name(&self) -> String {
            "idle".into()
        }
        fn select(&mut self, _ctx: &crate::arbitration::OutputCtx<'_>) -> Option<usize> {
            None
        }
    }

    #[test]
    fn out_of_range_selections_are_ignored_not_fatal() {
        let topo = Topology::uniform_mesh(4, 4).unwrap();
        let cfg = SimConfig::synthetic(4, 4);
        let traffic = SyntheticTraffic::new(&topo, Pattern::UniformRandom, 0.3, 3, 5);
        let mut sim = Simulator::new(topo, cfg, Box::new(BogusArbiter), traffic).unwrap();
        sim.run(2_000);
        // Uncontended (single-candidate) grants bypass the broken policy,
        // so traffic still moves; contended outputs stay idle, but nothing
        // panics and conservation holds.
        let s = sim.stats();
        assert!(s.delivered > 0);
        assert_eq!(
            s.created,
            s.delivered + sim.in_flight() + sim.queued_at_sources() as u64
        );
    }

    #[test]
    fn abstaining_arbiter_only_slows_contended_outputs() {
        let topo = Topology::uniform_mesh(4, 4).unwrap();
        let cfg = SimConfig::synthetic(4, 4);
        let traffic = SyntheticTraffic::new(&topo, Pattern::UniformRandom, 0.10, 3, 5);
        let mut sim = Simulator::new(topo, cfg, Box::new(IdleArbiter), traffic).unwrap();
        sim.run(4_000);
        assert!(sim.stats().delivered > 0, "fast-path grants keep packets moving");
    }

    #[test]
    fn one_grant_per_input_port_per_cycle() {
        let topo = Topology::uniform_mesh(4, 4).unwrap();
        let cfg = SimConfig::synthetic(4, 4);
        let traffic = SyntheticTraffic::new(&topo, Pattern::UniformRandom, 0.5, 3, 17);
        let mut sim =
            Simulator::new(topo, cfg, Box::new(FifoArbiter::new()), traffic).unwrap();
        sim.enable_grant_log();
        sim.run(300);
        let log = sim.grant_log().unwrap();
        // Group grants by (cycle-batch) is not directly recorded, so check
        // via packet ids: a packet can be forwarded at most once per cycle,
        // and within one router no input port may appear twice in the same
        // cycle. Reconstruct cycles by replay: grants are appended in
        // simulation order, and each (router, in_port) pair may repeat only
        // after other grants — verify no immediate duplicate within the
        // same router's per-cycle group using packet ids' uniqueness.
        use std::collections::HashSet;
        let mut seen_pairs: HashSet<(usize, usize, u64)> = HashSet::new();
        for g in log {
            // A (router, in_port) can only be granted once per packet per
            // hop: the same packet id never repeats for the same router.
            assert!(
                seen_pairs.insert((g.router.index(), g.in_port, g.packet_id)),
                "duplicate grant {g:?}"
            );
        }
    }

    #[test]
    fn heavy_load_keeps_credits_consistent() {
        let topo = Topology::uniform_mesh(4, 4).unwrap();
        let cfg = SimConfig::synthetic(4, 4);
        let traffic = SyntheticTraffic::new(&topo, Pattern::Tornado, 0.6, 3, 21)
            .with_data_packets(0.5, 5);
        let mut sim =
            Simulator::new(topo, cfg, Box::new(FifoArbiter::new()), traffic).unwrap();
        sim.run(3_000); // exercises buffer-full paths; panics would fire on bugs
        assert!(sim.stats().delivered > 100);
    }

    // ---- fault injection ------------------------------------------------

    use crate::faults::{FaultEvent, FaultKind, FaultPlan};

    /// East output port index on a 1-local-per-router mesh (L, N, S, W, E).
    const EAST: usize = 4;

    fn plan_of(events: Vec<FaultEvent>) -> FaultPlan {
        FaultPlan { seed: 1, events }
    }

    #[test]
    fn empty_fault_plan_is_bit_identical_to_no_plan() {
        let mk = || {
            let topo = Topology::uniform_mesh(4, 4).unwrap();
            let cfg = SimConfig::synthetic(4, 4);
            let traffic = SyntheticTraffic::new(&topo, Pattern::UniformRandom, 0.1, 3, 99);
            Simulator::new(topo, cfg, Box::new(FifoArbiter::new()), traffic).unwrap()
        };
        let mut plain = mk();
        let mut with_plan = mk();
        with_plan.set_fault_plan(&FaultPlan::empty(7));
        assert!(!with_plan.faults_enabled());
        plain.run(2_000);
        with_plan.run(2_000);
        assert_eq!(
            format!("{:?}", plain.stats()),
            format!("{:?}", with_plan.stats())
        );
    }

    #[test]
    fn link_down_blocks_delivery_until_the_fault_clears() {
        let mut sim = single_packet_sim(0, 1, 1);
        sim.set_fault_plan(&plan_of(vec![FaultEvent {
            kind: FaultKind::LinkDown,
            router: 0,
            port: EAST,
            onset: 0,
            duration: 50,
        }]));
        assert!(sim.faults_enabled());
        sim.run(40);
        assert_eq!(sim.stats().delivered, 0, "delivered through a down link");
        assert!(sim.run_until_done(200));
        assert_eq!(sim.stats().delivered, 1);
        // Fault-free latency is 4; the down window must have delayed it.
        assert!(sim.stats().latencies[0] > 50);
    }

    #[test]
    fn transient_fault_drops_then_retries_to_delivery() {
        let mut sim = single_packet_sim(0, 1, 1);
        sim.set_fault_plan(&plan_of(vec![FaultEvent {
            kind: FaultKind::TransientLink,
            router: 0,
            port: EAST,
            onset: 0,
            duration: 10,
        }]));
        assert!(sim.run_until_done(1_000));
        let s = sim.stats();
        assert_eq!(s.delivered, 1);
        assert!(s.link_fault_drops >= 1, "no drop recorded: {s:?}");
        // Every corrupted transmission reserved downstream credit that must
        // come back, or the heavy-load credit invariants would panic.
        assert!(s.fault_credits_reserved >= s.link_fault_drops);
        assert_eq!(s.fault_credits_reconciled, s.fault_credits_reserved);
        assert!(s.latencies[0] > 4);
    }

    #[test]
    fn router_stall_freezes_arbitration_for_its_duration() {
        let mut sim = single_packet_sim(0, 1, 1);
        sim.set_fault_plan(&plan_of(vec![FaultEvent {
            kind: FaultKind::RouterStall,
            router: 0,
            port: 0,
            onset: 0,
            duration: 30,
        }]));
        assert!(sim.run_until_done(200));
        let s = sim.stats();
        assert_eq!(s.delivered, 1);
        assert_eq!(s.stalled_router_cycles, 30);
        assert!(s.latencies[0] > 30);
    }

    #[test]
    fn vc_shrink_still_delivers_under_load() {
        let topo = Topology::uniform_mesh(4, 4).unwrap();
        let cfg = SimConfig::synthetic(4, 4);
        let traffic = SyntheticTraffic::new(&topo, Pattern::UniformRandom, 0.1, 3, 5);
        let mut sim =
            Simulator::new(topo, cfg, Box::new(FifoArbiter::new()), traffic).unwrap();
        sim.set_fault_plan(&plan_of(vec![FaultEvent {
            kind: FaultKind::VcShrink { flits: 3 },
            router: 5,
            port: EAST,
            onset: 100,
            duration: 1_000,
        }]));
        sim.run(4_000);
        assert!(sim.stats().delivered > 100);
    }

    #[test]
    fn watchdog_reports_wedged_ports_on_a_permanent_link_down() {
        let topo = Topology::uniform_mesh(4, 4).unwrap();
        let mut cfg = SimConfig::synthetic(4, 4);
        cfg.starvation_threshold = 200;
        let req = InjectionRequest {
            src: NodeId(0),
            dst: NodeId(1),
            vnet: 0,
            msg_type: MsgType::Request,
            dst_type: DestType::Core,
            len_flits: 1,
            tag: 0,
        };
        let traffic = TraceTraffic::new(vec![(0, req)]);
        let mut sim =
            Simulator::new(topo, cfg, Box::new(FifoArbiter::new()), traffic).unwrap();
        sim.set_fault_plan(&plan_of(vec![FaultEvent {
            kind: FaultKind::LinkDown,
            router: 0,
            port: EAST,
            onset: 0,
            duration: u64::MAX,
        }]));
        sim.run(3_000); // covers watchdog scans at cycles 1024 and 2048
        let s = sim.stats();
        assert_eq!(s.delivered, 0);
        assert!(s.watchdog_fires >= 1, "watchdog never fired: {s:?}");
        assert_eq!(s.wedged_ports, 1);
    }

    // ---- invariant checker ----------------------------------------------

    fn uniform_sim(seed: u64, rate: f64) -> Simulator<SyntheticTraffic> {
        let topo = Topology::uniform_mesh(4, 4).unwrap();
        let cfg = SimConfig::synthetic(4, 4);
        let traffic = SyntheticTraffic::new(&topo, Pattern::UniformRandom, rate, 3, seed);
        Simulator::new(topo, cfg, Box::new(FifoArbiter::new()), traffic).unwrap()
    }

    #[test]
    fn checked_run_is_clean_and_bit_identical_to_unchecked() {
        let mut plain = uniform_sim(33, 0.15);
        plain.run(2_000);

        let mut checked = uniform_sim(33, 0.15);
        checked.enable_invariant_checker();
        assert!(checked.invariants_enabled());
        checked.run(2_000);

        checked.check_invariants().expect("clean run must have no violations");
        assert_eq!(
            format!("{:?}", plain.stats()),
            format!("{:?}", checked.stats()),
            "the checker must not perturb the simulation"
        );
    }

    #[test]
    fn checked_run_with_faults_and_stats_reset_stays_clean() {
        let mut sim = uniform_sim(12, 0.20);
        sim.enable_invariant_checker();
        sim.set_fault_plan(&FaultPlan::generate(
            5,
            1.0,
            &Topology::uniform_mesh(4, 4).unwrap(),
            3_000,
        ));
        sim.run(1_000);
        sim.reset_stats(); // warmup-style reset must not confuse the books
        sim.run(2_000);
        assert_eq!(
            sim.total_invariant_violations(),
            0,
            "violations: {:?}",
            sim.invariant_violations()
        );
    }

    #[test]
    fn checker_stays_clean_under_adaptive_routing() {
        let topo = Topology::uniform_mesh(4, 4).unwrap();
        let mut cfg = SimConfig::synthetic(4, 4);
        cfg.routing = RoutingKind::WestFirstAdaptive;
        let traffic = SyntheticTraffic::new(&topo, Pattern::Transpose, 0.2, 3, 8);
        let mut sim =
            Simulator::new(topo, cfg, Box::new(FifoArbiter::new()), traffic).unwrap();
        sim.enable_invariant_checker();
        sim.run(2_000);
        assert_eq!(sim.total_invariant_violations(), 0);
    }

    /// Runs a checked uniform-random sweep on `topo` under `routing` and
    /// asserts the run delivers traffic with zero invariant violations.
    /// The in-order gate is armed for every deterministic routing kind, so
    /// this exercises the per-flow ordering books off the mesh too.
    fn run_checked(topo: Topology, routing: RoutingKind, seed: u64) {
        let mut cfg = SimConfig::synthetic(topo.width(), topo.height());
        cfg.routing = routing;
        cfg.feature_bounds = crate::FeatureBounds::for_topology(&topo);
        let traffic = SyntheticTraffic::new(&topo, Pattern::UniformRandom, 0.2, 3, seed);
        let mut sim =
            Simulator::new(topo, cfg, Box::new(FifoArbiter::new()), traffic).unwrap();
        sim.enable_invariant_checker();
        sim.run(2_000);
        assert!(sim.stats().delivered > 0, "no traffic delivered");
        assert_eq!(
            sim.total_invariant_violations(),
            0,
            "violations: {:?}",
            sim.invariant_violations()
        );
    }

    #[test]
    fn checker_stays_clean_on_torus_dim_order() {
        run_checked(
            Topology::uniform_torus(4, 4).unwrap(),
            RoutingKind::TorusDimOrder,
            21,
        );
    }

    #[test]
    fn checker_stays_clean_on_ring_shortest() {
        run_checked(
            Topology::uniform_ring(8).unwrap(),
            RoutingKind::RingShortest,
            22,
        );
    }

    #[test]
    fn checker_stays_clean_on_degraded_mesh_table_routing() {
        run_checked(
            Topology::uniform_degraded_mesh(4, 4, 9, 0.25).unwrap(),
            RoutingKind::TableShortest,
            23,
        );
    }

    #[test]
    fn checker_stays_clean_on_mesh_table_routing() {
        run_checked(
            Topology::uniform_mesh(4, 4).unwrap(),
            RoutingKind::TableShortest,
            24,
        );
    }

    #[test]
    fn unsupported_routing_topology_pair_is_rejected() {
        let topo = Topology::uniform_ring(6).unwrap();
        let mut cfg = SimConfig::synthetic(6, 1);
        cfg.routing = RoutingKind::XY;
        let traffic = SyntheticTraffic::new(&topo, Pattern::UniformRandom, 0.1, 3, 1);
        let err = Simulator::new(topo, cfg, Box::new(FifoArbiter::new()), traffic)
            .expect_err("x-y routing must be rejected on a ring");
        assert_eq!(
            err,
            ConfigError::RoutingUnsupported { routing: "xy", topology: "ring" }
        );
    }

    /// Transpose traffic crosses the grid; the torus wraparound shortens
    /// those paths, so dim-order-on-torus must beat X-Y-on-mesh.
    #[test]
    fn torus_beats_mesh_on_wrap_heavy_traffic() {
        let mesh = Topology::uniform_mesh(4, 4).unwrap();
        let t = Topology::uniform_torus(4, 4).unwrap();
        let mk = |topo: Topology, routing| {
            let mut cfg = SimConfig::synthetic(4, 4);
            cfg.routing = routing;
            let traffic = SyntheticTraffic::new(&topo, Pattern::Transpose, 0.1, 3, 5);
            let mut sim =
                Simulator::new(topo, cfg, Box::new(FifoArbiter::new()), traffic).unwrap();
            sim.run(3_000);
            sim.stats().avg_latency()
        };
        let mesh_lat = mk(mesh, RoutingKind::XY);
        let torus_lat = mk(t, RoutingKind::TorusDimOrder);
        assert!(
            torus_lat < mesh_lat,
            "wraparound should cut latency: torus {torus_lat:.2} vs mesh {mesh_lat:.2}"
        );
    }

    #[test]
    fn injected_credit_leak_is_caught_as_credit_mismatch() {
        let mut sim = uniform_sim(42, 0.15);
        sim.enable_invariant_checker();
        sim.debug_inject_credit_leak(500);
        sim.run(1_000);
        let err = sim.check_invariants().expect_err("the leak must be caught");
        let SimError::InvariantsViolated(vs) = err;
        assert!(
            vs.iter().any(|v| matches!(
                v.kind,
                crate::invariants::ViolationKind::CreditMismatch { .. }
            )),
            "expected a CreditMismatch, got: {vs:?}"
        );
        // Detection is immediate: the sweep at the leak cycle flags it.
        assert_eq!(vs[0].cycle, 500);
    }

    #[test]
    #[should_panic(expected = "before the first step")]
    fn enabling_the_checker_mid_run_panics() {
        let mut sim = uniform_sim(1, 0.1);
        sim.run(10);
        sim.enable_invariant_checker();
    }

    #[test]
    fn residual_counts_are_stamped_at_the_horizon() {
        // Heavy load, short run: packets must still be in the network when
        // the budget expires, and the stats must say so.
        let mut sim = uniform_sim(3, 0.6);
        sim.run(300);
        let s = sim.stats();
        assert!(s.in_flight_at_end > 0 || s.queued_at_end > 0);
        assert_eq!(
            s.created,
            s.delivered + s.in_flight_at_end + s.queued_at_end,
            "horizon residuals must close the conservation books"
        );
        // A drained run stamps zeros.
        let mut done = single_packet_sim(0, 1, 1);
        assert!(done.run_until_done(100));
        assert_eq!(done.stats().in_flight_at_end, 0);
        assert_eq!(done.stats().queued_at_end, 0);
    }
}
