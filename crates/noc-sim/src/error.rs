//! Error type for configuration and construction failures.

use std::error::Error;
use std::fmt;

/// Errors raised while validating a simulator or topology configuration.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ConfigError {
    /// Mesh dimensions must be at least 1×1.
    EmptyMesh,
    /// A configuration required at least one virtual network.
    NoVnets,
    /// A configuration required at least one local port per router.
    NoLocalPorts,
    /// A node referenced a router outside the mesh.
    RouterOutOfRange {
        /// The offending router index.
        router: usize,
        /// Number of routers in the mesh.
        num_routers: usize,
    },
    /// A node referenced a local slot ≥ the number of local ports.
    SlotOutOfRange {
        /// The offending slot.
        slot: u8,
        /// Local ports per router.
        num_locals: usize,
    },
    /// Two nodes were placed on the same (router, slot) attachment point.
    DuplicateAttachment {
        /// Router of the collision.
        router: usize,
        /// Slot of the collision.
        slot: u8,
    },
    /// Buffer capacity too small to ever hold the configured maximum packet.
    BufferTooSmall {
        /// Configured VC capacity in flits.
        capacity_flits: u32,
        /// Largest packet the configuration may inject.
        max_packet_flits: u32,
    },
    /// An injection request referenced an unknown node or vnet.
    InvalidInjection(String),
}

impl fmt::Display for ConfigError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ConfigError::EmptyMesh => write!(f, "mesh dimensions must be at least 1x1"),
            ConfigError::NoVnets => write!(f, "at least one virtual network is required"),
            ConfigError::NoLocalPorts => write!(f, "at least one local port per router is required"),
            ConfigError::RouterOutOfRange { router, num_routers } => write!(
                f,
                "router index {router} out of range for mesh with {num_routers} routers"
            ),
            ConfigError::SlotOutOfRange { slot, num_locals } => {
                write!(f, "local slot {slot} out of range for {num_locals} local ports")
            }
            ConfigError::DuplicateAttachment { router, slot } => {
                write!(f, "two nodes attached to router {router} slot {slot}")
            }
            ConfigError::BufferTooSmall {
                capacity_flits,
                max_packet_flits,
            } => write!(
                f,
                "vc capacity of {capacity_flits} flits cannot hold a {max_packet_flits}-flit packet"
            ),
            ConfigError::InvalidInjection(msg) => write!(f, "invalid injection request: {msg}"),
        }
    }
}

impl Error for ConfigError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_nonempty() {
        let variants = [
            ConfigError::EmptyMesh,
            ConfigError::NoVnets,
            ConfigError::NoLocalPorts,
            ConfigError::RouterOutOfRange { router: 9, num_routers: 4 },
            ConfigError::SlotOutOfRange { slot: 3, num_locals: 2 },
            ConfigError::DuplicateAttachment { router: 1, slot: 0 },
            ConfigError::BufferTooSmall { capacity_flits: 2, max_packet_flits: 5 },
            ConfigError::InvalidInjection("bad".into()),
        ];
        for v in variants {
            assert!(!v.to_string().is_empty());
        }
    }
}
