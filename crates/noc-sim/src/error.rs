//! Error type for configuration and construction failures.

use std::error::Error;
use std::fmt;

/// Errors raised while validating a simulator or topology configuration.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ConfigError {
    /// Mesh dimensions must be at least 1×1.
    EmptyMesh,
    /// A configuration required at least one virtual network.
    NoVnets,
    /// A configuration required at least one local port per router.
    NoLocalPorts,
    /// A node referenced a router outside the mesh.
    RouterOutOfRange {
        /// The offending router index.
        router: usize,
        /// Number of routers in the mesh.
        num_routers: usize,
    },
    /// A node referenced a local slot ≥ the number of local ports.
    SlotOutOfRange {
        /// The offending slot.
        slot: u8,
        /// Local ports per router.
        num_locals: usize,
    },
    /// Two nodes were placed on the same (router, slot) attachment point.
    DuplicateAttachment {
        /// Router of the collision.
        router: usize,
        /// Slot of the collision.
        slot: u8,
    },
    /// Buffer capacity too small to ever hold the configured maximum packet.
    BufferTooSmall {
        /// Configured VC capacity in flits.
        capacity_flits: u32,
        /// Largest packet the configuration may inject.
        max_packet_flits: u32,
    },
    /// An injection request referenced an unknown node or vnet.
    InvalidInjection(String),
    /// A topology constructor was given a dimension below its minimum
    /// (e.g. a 1-wide torus would self-loop).
    TopologyTooSmall {
        /// Topology family being constructed (`"torus"`, `"ring"`).
        kind: &'static str,
        /// The offending dimension value.
        dim: u16,
        /// Smallest legal value.
        min: u16,
    },
    /// A degraded-graph constructor referenced a link that does not exist
    /// at the named router (local port, edge port, or already removed).
    NoSuchLink {
        /// Router the bad removal named.
        router: usize,
    },
    /// Link removals (or a hand-built adjacency) left some router
    /// unreachable; every topology must be connected.
    DisconnectedTopology,
    /// The configured routing function cannot run on the topology (e.g.
    /// torus dimension-order routing on a mesh without wraparound links).
    RoutingUnsupported {
        /// Name of the routing function ([`crate::RoutingKind::as_str`]).
        routing: &'static str,
        /// Name of the topology family ([`crate::TopologyKind::as_str`]).
        topology: &'static str,
    },
}

impl fmt::Display for ConfigError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ConfigError::EmptyMesh => write!(f, "mesh dimensions must be at least 1x1"),
            ConfigError::NoVnets => write!(f, "at least one virtual network is required"),
            ConfigError::NoLocalPorts => write!(f, "at least one local port per router is required"),
            ConfigError::RouterOutOfRange { router, num_routers } => write!(
                f,
                "router index {router} out of range for mesh with {num_routers} routers"
            ),
            ConfigError::SlotOutOfRange { slot, num_locals } => {
                write!(f, "local slot {slot} out of range for {num_locals} local ports")
            }
            ConfigError::DuplicateAttachment { router, slot } => {
                write!(f, "two nodes attached to router {router} slot {slot}")
            }
            ConfigError::BufferTooSmall {
                capacity_flits,
                max_packet_flits,
            } => write!(
                f,
                "vc capacity of {capacity_flits} flits cannot hold a {max_packet_flits}-flit packet"
            ),
            ConfigError::InvalidInjection(msg) => write!(f, "invalid injection request: {msg}"),
            ConfigError::TopologyTooSmall { kind, dim, min } => {
                write!(f, "{kind} dimension {dim} is below the minimum of {min}")
            }
            ConfigError::NoSuchLink { router } => {
                write!(f, "link removal referenced a nonexistent link at router {router}")
            }
            ConfigError::DisconnectedTopology => {
                write!(f, "topology is disconnected: some router pair has no path")
            }
            ConfigError::RoutingUnsupported { routing, topology } => {
                write!(f, "routing '{routing}' does not support '{topology}' topologies")
            }
        }
    }
}

impl Error for ConfigError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_nonempty() {
        let variants = [
            ConfigError::EmptyMesh,
            ConfigError::NoVnets,
            ConfigError::NoLocalPorts,
            ConfigError::RouterOutOfRange { router: 9, num_routers: 4 },
            ConfigError::SlotOutOfRange { slot: 3, num_locals: 2 },
            ConfigError::DuplicateAttachment { router: 1, slot: 0 },
            ConfigError::BufferTooSmall { capacity_flits: 2, max_packet_flits: 5 },
            ConfigError::InvalidInjection("bad".into()),
            ConfigError::TopologyTooSmall { kind: "ring", dim: 2, min: 3 },
            ConfigError::NoSuchLink { router: 5 },
            ConfigError::DisconnectedTopology,
            ConfigError::RoutingUnsupported { routing: "ring-shortest", topology: "mesh" },
        ];
        for v in variants {
            assert!(!v.to_string().is_empty());
        }
    }
}
