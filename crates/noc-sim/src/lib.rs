//! # noc-sim — a cycle-level network-on-chip simulator
//!
//! This crate is the simulation substrate for the reproduction of
//! *"Experiences with ML-Driven Design: A NoC Case Study"* (HPCA 2020).
//! It models input-buffered virtual-channel routers on arbitrary router
//! graphs — 2-D meshes, tori, rings, and degraded (link-removed) meshes —
//! with pluggable routing, credit-based virtual cut-through flow control,
//! and — crucially for the paper — a pluggable per-output-port arbitration
//! interface that exposes exactly the message features the paper's
//! reinforcement-learning agent observes (Table 2: payload size, local age,
//! distance, hop count, in-flight messages, inter-arrival time, message
//! type, destination type).
//!
//! ## Quick start
//!
//! ```
//! use noc_sim::{Simulator, SimConfig, Topology, SyntheticTraffic, Pattern};
//! use noc_sim::arbiters::RoundRobinArbiter;
//!
//! # fn main() -> Result<(), noc_sim::ConfigError> {
//! let topo = Topology::uniform_mesh(4, 4)?;
//! let cfg = SimConfig::synthetic(4, 4);
//! let traffic = SyntheticTraffic::new(&topo, Pattern::UniformRandom, 0.05, cfg.num_vnets, 42);
//! let mut sim = Simulator::new(topo, cfg, Box::new(RoundRobinArbiter::new()), traffic)?;
//! sim.run(10_000);
//! println!("avg latency = {:.1} cycles", sim.stats().avg_latency());
//! # Ok(())
//! # }
//! ```
//!
//! ## Crate layout
//!
//! * [`Topology`] / [`TopologyKind`] — router-graph construction (mesh,
//!   torus, ring, degraded) over a shared adjacency representation.
//! * [`RoutingKind`] / [`route_xy`] / [`route_torus`] / [`route_table`] —
//!   pluggable routing (dimension-order, wraparound, shortest-path table).
//! * [`Simulator`] — the cycle-driven engine (paper Algorithm 1 decision shell).
//! * [`Arbiter`] — the arbitration policy interface; reference baselines in
//!   [`arbiters`].
//! * [`BufferController`] — the second learned decision point: per-VC
//!   credit-budget reallocation each control epoch.
//! * [`TrafficSource`] — open-loop synthetic patterns ([`SyntheticTraffic`])
//!   and the hook closed-loop workload engines implement.
//! * [`SimStats`] — latency/throughput/fairness/starvation accounting.
//! * [`FaultPlan`] — deterministic fault injection (transient/persistent
//!   link faults, router stalls, VC shrinkage) with graceful degradation.

#![deny(missing_docs)]
#![warn(missing_debug_implementations)]

mod arbitration;
mod buffer;
mod calendar;
mod checkpoint;
mod config;
mod error;
mod faults;
mod histogram;
mod invariants;
mod packet;
mod report;
mod rng;
mod routing;
mod sim;
mod stats;
mod topology;
mod trace;
mod traffic;
mod types;
mod vc_control;

pub mod arbiters;

pub use arbitration::{Arbiter, Candidate, Features, Grant, NetSnapshot, OutputCtx, RouterCtx};
pub use buffer::VcBuffer;
pub use calendar::{CalendarCounter, CalendarQueue};
pub use config::{FeatureBounds, RoutingKind, SimConfig};
pub use error::ConfigError;
pub use faults::{
    FaultEvent, FaultKind, FaultPlan, RETRY_BACKOFF_BASE, RETRY_BACKOFF_CAP, WATCHDOG_PERIOD,
};
pub use histogram::LatencyHistogram;
pub use invariants::{InvariantChecker, InvariantViolation, SimError, ViolationKind};
pub use packet::{BufferedPacket, InjectionRequest, Packet};
pub use report::format_report;
pub use rng::SplitMix64;
pub use routing::{
    route_deterministic, route_path, route_ring, route_table, route_torus, route_west_first,
    route_xy, route_xy_port, xy_path, RouteStep,
};
pub use checkpoint::{SimCheckpoint, CHECKPOINT_VERSION};
pub use sim::{simulated_cycles, Simulator};
pub use stats::SimStats;
pub use topology::{Node, Topology, TopologyKind};
pub use trace::{PacketTrace, TraceEvent, TraceKind};
pub use traffic::{Pattern, SyntheticTraffic, TraceTraffic, TrafficSource};
pub use types::{Coord, DestType, MsgType, NodeId, PortDir, RouterId};
pub use vc_control::{BufferController, VcUsage};
