//! Calendar queues for near-future event scheduling.
//!
//! The simulator schedules every event (packet arrivals, link-transmission
//! ends) at most a few tens of cycles ahead — bounded by the packet length
//! plus link and router latency. A ring buffer indexed by `cycle % horizon`
//! services that window in O(1) per push/drain with no per-cycle heap
//! traffic, replacing the `BTreeMap` event queues that dominated the
//! simulator's step-loop profile. Events past the horizon (none in the
//! current pipeline model, but the API does not forbid them) spill into a
//! `BTreeMap` overflow that is only consulted when non-empty.

use std::collections::BTreeMap;

/// A ring-buffer calendar queue of events keyed by due cycle.
///
/// Cycles must be drained in nondecreasing order; pushing an event due
/// earlier than the last drained cycle is a logic error and panics.
#[derive(Debug, Clone)]
pub struct CalendarQueue<T> {
    /// `slots[c % horizon]` holds the events due at cycle `c` for cycles in
    /// `[next_due, next_due + horizon)`.
    slots: Vec<Vec<T>>,
    /// Events due at or past `next_due + horizon`.
    overflow: BTreeMap<u64, Vec<T>>,
    /// Lowest cycle that may still hold events.
    next_due: u64,
    len: usize,
}

impl<T> CalendarQueue<T> {
    /// Creates a queue servicing events up to `horizon` cycles ahead of the
    /// drain cursor without touching the overflow map.
    ///
    /// # Panics
    ///
    /// Panics if `horizon` is zero.
    pub fn new(horizon: usize) -> Self {
        assert!(horizon > 0, "calendar horizon must be positive");
        CalendarQueue {
            slots: (0..horizon).map(|_| Vec::new()).collect(),
            overflow: BTreeMap::new(),
            next_due: 0,
            len: 0,
        }
    }

    /// Number of scheduled events.
    pub fn len(&self) -> usize {
        self.len
    }

    /// True when no events are scheduled.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Schedules `item` for cycle `due`.
    ///
    /// # Panics
    ///
    /// Panics if `due` has already been drained.
    pub fn schedule(&mut self, due: u64, item: T) {
        assert!(
            due >= self.next_due,
            "event scheduled at cycle {due}, already past (cursor at {})",
            self.next_due
        );
        self.len += 1;
        let horizon = self.slots.len() as u64;
        if due - self.next_due < horizon {
            self.slots[(due % horizon) as usize].push(item);
        } else {
            self.overflow.entry(due).or_default().push(item);
        }
    }

    /// The drain cursor: the lowest cycle that may still hold events.
    pub(crate) fn cursor(&self) -> u64 {
        self.next_due
    }

    /// The ring horizon this queue was built with.
    pub(crate) fn horizon(&self) -> usize {
        self.slots.len()
    }

    /// Enumerates every pending event as `(due, item)` in drain order: cycle
    /// ascending, insertion order within a cycle (ring slots first, then
    /// overflow — matching [`CalendarQueue::drain_due_into`]).
    pub(crate) fn pending(&self) -> Vec<(u64, &T)> {
        let horizon = self.slots.len() as u64;
        let mut out = Vec::with_capacity(self.len);
        for c in self.next_due..self.next_due + horizon {
            for item in &self.slots[(c % horizon) as usize] {
                out.push((c, item));
            }
            if let Some(v) = self.overflow.get(&c) {
                out.extend(v.iter().map(|item| (c, item)));
            }
        }
        for (&c, v) in self.overflow.range(self.next_due + horizon..) {
            out.extend(v.iter().map(|item| (c, item)));
        }
        out
    }

    /// Rebuilds a queue from a checkpoint: an empty ring with the drain
    /// cursor at `cursor`, then every `(due, item)` pair rescheduled in the
    /// order [`CalendarQueue::pending`] produced them.
    ///
    /// # Panics
    ///
    /// Panics if `horizon` is zero or any item is due before `cursor`.
    pub(crate) fn restore(horizon: usize, cursor: u64, items: Vec<(u64, T)>) -> Self {
        let mut q = CalendarQueue::new(horizon);
        q.next_due = cursor;
        for (due, item) in items {
            q.schedule(due, item);
        }
        q
    }

    /// Moves every event due at or before `cycle` into `out` (appending) and
    /// advances the drain cursor past `cycle`. Within one due cycle, events
    /// come out in insertion order.
    pub fn drain_due_into(&mut self, cycle: u64, out: &mut Vec<T>) {
        let horizon = self.slots.len() as u64;
        while self.next_due <= cycle {
            let c = self.next_due;
            self.next_due += 1;
            let slot = &mut self.slots[(c % horizon) as usize];
            self.len -= slot.len();
            out.append(slot);
            if !self.overflow.is_empty() {
                if let Some(mut v) = self.overflow.remove(&c) {
                    self.len -= v.len();
                    out.append(&mut v);
                }
            }
        }
    }
}

/// A calendar queue specialised to per-cycle counters (e.g. "how many link
/// transmissions end at cycle `c`"), with the same windowed-ring design as
/// [`CalendarQueue`].
#[derive(Debug, Clone)]
pub struct CalendarCounter {
    slots: Vec<u32>,
    overflow: BTreeMap<u64, u32>,
    next_due: u64,
}

impl CalendarCounter {
    /// Creates a counter ring with the given horizon.
    ///
    /// # Panics
    ///
    /// Panics if `horizon` is zero.
    pub fn new(horizon: usize) -> Self {
        assert!(horizon > 0, "calendar horizon must be positive");
        CalendarCounter {
            slots: vec![0; horizon],
            overflow: BTreeMap::new(),
            next_due: 0,
        }
    }

    /// Adds `n` to the counter due at cycle `due`.
    ///
    /// # Panics
    ///
    /// Panics if `due` has already been drained.
    pub fn add(&mut self, due: u64, n: u32) {
        assert!(
            due >= self.next_due,
            "count scheduled at cycle {due}, already past (cursor at {})",
            self.next_due
        );
        let horizon = self.slots.len() as u64;
        if due - self.next_due < horizon {
            self.slots[(due % horizon) as usize] += n;
        } else {
            *self.overflow.entry(due).or_default() += n;
        }
    }

    /// The drain cursor: the lowest cycle that may still hold counts.
    pub(crate) fn cursor(&self) -> u64 {
        self.next_due
    }

    /// The ring horizon this counter was built with.
    pub(crate) fn horizon(&self) -> usize {
        self.slots.len()
    }

    /// Enumerates every pending nonzero counter as `(due, count)`, cycle
    /// ascending.
    pub(crate) fn pending(&self) -> Vec<(u64, u32)> {
        let horizon = self.slots.len() as u64;
        let mut out = Vec::new();
        for c in self.next_due..self.next_due + horizon {
            let n = self.slots[(c % horizon) as usize]
                + self.overflow.get(&c).copied().unwrap_or(0);
            if n > 0 {
                out.push((c, n));
            }
        }
        for (&c, &n) in self.overflow.range(self.next_due + horizon..) {
            if n > 0 {
                out.push((c, n));
            }
        }
        out
    }

    /// Rebuilds a counter ring from a checkpoint (see
    /// [`CalendarQueue::restore`]).
    ///
    /// # Panics
    ///
    /// Panics if `horizon` is zero or any count is due before `cursor`.
    pub(crate) fn restore(horizon: usize, cursor: u64, items: Vec<(u64, u32)>) -> Self {
        let mut q = CalendarCounter::new(horizon);
        q.next_due = cursor;
        for (due, n) in items {
            q.add(due, n);
        }
        q
    }

    /// Returns the summed counters due at or before `cycle` and advances the
    /// drain cursor past `cycle`.
    pub fn take_due(&mut self, cycle: u64) -> u32 {
        let mut total = 0;
        let horizon = self.slots.len() as u64;
        while self.next_due <= cycle {
            let c = self.next_due;
            self.next_due += 1;
            let slot = &mut self.slots[(c % horizon) as usize];
            total += std::mem::take(slot);
            if !self.overflow.is_empty() {
                if let Some(n) = self.overflow.remove(&c) {
                    total += n;
                }
            }
        }
        total
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn events_come_back_at_their_cycle_in_insertion_order() {
        let mut q = CalendarQueue::new(8);
        q.schedule(3, "a");
        q.schedule(5, "b");
        q.schedule(3, "c");
        let mut out = Vec::new();
        q.drain_due_into(2, &mut out);
        assert!(out.is_empty());
        q.drain_due_into(3, &mut out);
        assert_eq!(out, ["a", "c"]);
        out.clear();
        q.drain_due_into(4, &mut out);
        assert!(out.is_empty());
        q.drain_due_into(5, &mut out);
        assert_eq!(out, ["b"]);
        assert!(q.is_empty());
    }

    #[test]
    fn ring_wraparound_keeps_cycles_distinct() {
        // Horizon 4; push/drain far past several wraps and check that slot
        // aliasing (c % 4) never mixes cycles.
        let mut q = CalendarQueue::new(4);
        let mut out = Vec::new();
        for c in 0..100u64 {
            q.schedule(c + 3, c + 3); // always 3 ahead: within horizon
            out.clear();
            q.drain_due_into(c, &mut out);
            if c >= 3 {
                assert_eq!(out, [c], "cycle {c}");
            } else {
                assert!(out.is_empty(), "cycle {c}");
            }
        }
        assert_eq!(q.len(), 3);
    }

    #[test]
    fn same_cycle_multiple_arrivals_all_delivered() {
        let mut q = CalendarQueue::new(16);
        for i in 0..10 {
            q.schedule(7, i);
        }
        assert_eq!(q.len(), 10);
        let mut out = Vec::new();
        q.drain_due_into(7, &mut out);
        assert_eq!(out, [0, 1, 2, 3, 4, 5, 6, 7, 8, 9]);
        assert!(q.is_empty());
    }

    #[test]
    fn events_past_horizon_spill_and_return() {
        let mut q = CalendarQueue::new(4);
        q.schedule(100, "far");
        q.schedule(2, "near");
        assert_eq!(q.len(), 2);
        let mut out = Vec::new();
        q.drain_due_into(50, &mut out);
        assert_eq!(out, ["near"]);
        out.clear();
        // The spilled event is still keyed by absolute cycle, not slot index.
        q.drain_due_into(99, &mut out);
        assert!(out.is_empty());
        q.drain_due_into(100, &mut out);
        assert_eq!(out, ["far"]);
        assert!(q.is_empty());
    }

    #[test]
    fn drain_past_many_empty_cycles_catches_up() {
        let mut q = CalendarQueue::new(8);
        q.schedule(1, 1u32);
        q.schedule(6, 6);
        q.schedule(1000, 1000);
        let mut out = Vec::new();
        // One big jump over gaps, a wrap, and an overflow entry.
        q.drain_due_into(2000, &mut out);
        assert_eq!(out, [1, 6, 1000]);
        assert!(q.is_empty());
        // Cursor moved: scheduling behind it now panics (checked elsewhere),
        // scheduling ahead still works.
        q.schedule(2001, 7);
        out.clear();
        q.drain_due_into(2001, &mut out);
        assert_eq!(out, [7]);
    }

    #[test]
    #[should_panic(expected = "already past")]
    fn scheduling_behind_the_cursor_panics() {
        let mut q = CalendarQueue::new(4);
        let mut out: Vec<u32> = Vec::new();
        q.drain_due_into(10, &mut out);
        q.schedule(5, 5);
    }

    #[test]
    fn counter_accumulates_and_wraps() {
        let mut c = CalendarCounter::new(4);
        c.add(2, 1);
        c.add(2, 4);
        c.add(9, 2); // past horizon: overflow
        assert_eq!(c.take_due(1), 0);
        assert_eq!(c.take_due(2), 5);
        assert_eq!(c.take_due(8), 0);
        assert_eq!(c.take_due(9), 2);
        // Reuse the same slot index after wrapping.
        c.add(10, 3);
        c.add(13, 7);
        assert_eq!(c.take_due(20), 10);
    }

    #[test]
    #[should_panic(expected = "already past")]
    fn counter_rejects_past_cycles() {
        let mut c = CalendarCounter::new(4);
        c.take_due(3);
        c.add(1, 1);
    }

    #[test]
    fn schedule_exactly_at_the_cursor_and_ring_edges_after_a_drain() {
        let mut q = CalendarQueue::new(4);
        let mut out: Vec<u32> = Vec::new();
        q.drain_due_into(99, &mut out); // cursor now at 100
        q.schedule(100, 100); // exactly at the cursor: legal
        q.schedule(103, 103); // last ring slot (100 + horizon - 1)
        q.schedule(104, 104); // first overflow cycle (100 + horizon)
        q.drain_due_into(104, &mut out);
        assert_eq!(out, [100, 103, 104]);
        assert!(q.is_empty());
    }

    #[test]
    fn ring_and_overflow_events_due_the_same_cycle_all_surface() {
        let mut q = CalendarQueue::new(4);
        q.schedule(10, "spilled"); // beyond horizon: lands in overflow
        let mut out = Vec::new();
        q.drain_due_into(8, &mut out);
        assert!(out.is_empty());
        q.schedule(10, "ringed"); // now within horizon: lands in the ring
        q.drain_due_into(10, &mut out);
        // Both must surface exactly once. The ring slot drains before the
        // overflow entry, so insertion order is only preserved *within*
        // each store — callers that need strict FIFO must stay inside the
        // horizon (the simulator does: every event lands within it).
        assert_eq!(out, ["ringed", "spilled"]);
        assert!(q.is_empty());
    }

    #[test]
    fn counter_wraps_many_times_without_aliasing() {
        let mut c = CalendarCounter::new(3);
        let mut due_total = 0u32;
        for cyc in 0..60u64 {
            c.add(cyc + 2, 1); // always 2 ahead: exercises every slot repeatedly
            due_total += c.take_due(cyc);
        }
        // After 60 cycles, events due at 2..=59 have been taken (58 of
        // them); the two scheduled for cycles 60 and 61 are still pending.
        assert_eq!(due_total, 58);
        assert_eq!(c.take_due(61), 2);
    }
}
