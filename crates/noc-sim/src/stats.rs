//! Simulation statistics: latency, throughput, link utilization, fairness
//! and starvation accounting.

/// Running statistics collected by the simulator.
#[derive(Debug, Clone, Default)]
pub struct SimStats {
    /// Cycles simulated so far.
    pub cycles: u64,
    /// Messages created by traffic sources.
    pub created: u64,
    /// Messages that entered the network (left their injection queue).
    pub injected: u64,
    /// Messages delivered to their destination node.
    pub delivered: u64,
    /// Sum over delivered messages of (delivery cycle − creation cycle).
    pub total_latency: u64,
    /// Sum over delivered messages of (delivery cycle − injection cycle),
    /// i.e. pure network latency excluding source queuing.
    pub total_network_latency: u64,
    /// Sum of hop counts of delivered messages.
    pub total_hops: u64,
    /// Total flits transported over mesh links (excludes ejection).
    pub flits_on_links: u64,
    /// Busy link-cycles accumulated over mesh links.
    pub link_busy_cycles: u64,
    /// Per-message latencies (creation → delivery) of every delivered
    /// message, in delivery order. Used for percentile/tail reporting.
    pub latencies: Vec<u64>,
    /// Highest local age ever observed on a buffered packet.
    pub max_local_age: u64,
    /// Number of distinct grant decisions where the winner had been waiting
    /// longer than the starvation threshold.
    pub starved_grants: u64,
    /// Packets currently buffered somewhere in the network whose local age
    /// exceeds the starvation threshold (sampled; see
    /// [`crate::Simulator::starving_packets`]).
    pub starving_now: u64,
    /// Arbitration queries answered by the installed policy (contended
    /// outputs only; single-candidate grants bypass the policy).
    pub arbiter_queries: u64,
    /// Grants performed (including single-candidate fast-path grants).
    pub grants: u64,
    /// Per-vnet delivered-message counters.
    pub delivered_per_vnet: Vec<u64>,
    /// Per-source-node delivered-message counters (index = node id).
    pub delivered_per_node: Vec<u64>,
    /// Grant attempts lost to a transient link fault (the packet stays
    /// queued and retries with bounded backoff).
    pub link_fault_drops: u64,
    /// Downstream credit flits reserved by fault-corrupted transmissions
    /// (each mesh-port drop consumes the packet's full flit count, exactly
    /// like a healthy transmission would).
    pub fault_credits_reserved: u64,
    /// Downstream credit flits recovered by reconciliation after
    /// fault-corrupted transmissions. Trails [`fault_credits_reserved`]
    /// only by credits whose reconciliation message is still on the wire
    /// when the run ends.
    ///
    /// [`fault_credits_reserved`]: SimStats::fault_credits_reserved
    pub fault_credits_reconciled: u64,
    /// Router-cycles spent frozen by an active router-stall fault.
    pub stalled_router_cycles: u64,
    /// Starvation-watchdog scans that found at least one wedged port.
    pub watchdog_fires: u64,
    /// Ports with a starving head packet at the most recent watchdog scan.
    pub wedged_ports: u64,
    /// Fault episodes observed: rising edges where the fault plan went
    /// from fully idle to having at least one active event.
    pub fault_onsets: u64,
    /// Fault episodes that *recovered*: after the episode's events all
    /// ended, the delivered-latency EMA returned to within 12.5% of its
    /// pre-onset baseline. Trails [`SimStats::fault_onsets`] by episodes
    /// still open (or never recovering) when the run ends.
    pub recoveries: u64,
    /// Total cycles from fault onset to recovery, summed over recovered
    /// episodes (see [`SimStats::avg_recovery_cycles`]).
    pub recovery_cycles_total: u64,
    /// Messages delivered at or after the first fault onset of the run.
    pub post_fault_delivered: u64,
    /// Summed end-to-end latency of [`SimStats::post_fault_delivered`]
    /// messages (see [`SimStats::post_fault_avg_latency`]).
    pub post_fault_latency_total: u64,
    /// Packets still inside the network (injected, undelivered) when the
    /// run ended — nonzero when the cycle budget expired before the drain
    /// completed. Stamped by [`crate::Simulator::run`] and
    /// [`crate::Simulator::run_until_done`] at their horizon so messages
    /// cut off mid-flight stay visible in the accounting
    /// (`created = delivered + in_flight_at_end + queued_at_end` for a
    /// run without stats resets).
    pub in_flight_at_end: u64,
    /// Packets still waiting in source injection queues when the run
    /// ended (see [`SimStats::in_flight_at_end`]).
    pub queued_at_end: u64,
    /// Unidirectional mesh links in the simulated topology — stamped by the
    /// simulator from the [`crate::Topology`] so utilization reports cannot
    /// be skewed by a caller-supplied link count.
    pub num_mesh_links: usize,
}

impl SimStats {
    /// Creates zeroed statistics sized for the given configuration. The
    /// mesh-link count comes from [`crate::Topology::num_mesh_links`].
    pub fn new(num_vnets: usize, num_nodes: usize, num_mesh_links: usize) -> Self {
        SimStats {
            delivered_per_vnet: vec![0; num_vnets],
            delivered_per_node: vec![0; num_nodes],
            num_mesh_links,
            ..SimStats::default()
        }
    }

    /// Mean end-to-end latency (creation → delivery) of delivered messages.
    pub fn avg_latency(&self) -> f64 {
        if self.delivered == 0 {
            0.0
        } else {
            self.total_latency as f64 / self.delivered as f64
        }
    }

    /// Mean network latency (injection → delivery) of delivered messages.
    pub fn avg_network_latency(&self) -> f64 {
        if self.delivered == 0 {
            0.0
        } else {
            self.total_network_latency as f64 / self.delivered as f64
        }
    }

    /// Mean hop count of delivered messages.
    pub fn avg_hops(&self) -> f64 {
        if self.delivered == 0 {
            0.0
        } else {
            self.total_hops as f64 / self.delivered as f64
        }
    }

    /// Delivered messages per node per cycle.
    pub fn throughput(&self) -> f64 {
        let nodes = self.delivered_per_node.len().max(1) as f64;
        if self.cycles == 0 {
            0.0
        } else {
            self.delivered as f64 / self.cycles as f64 / nodes
        }
    }

    /// Average fraction of mesh links busy per cycle, normalized by the
    /// topology's link count ([`SimStats::num_mesh_links`]).
    pub fn avg_link_utilization(&self) -> f64 {
        if self.cycles == 0 || self.num_mesh_links == 0 {
            0.0
        } else {
            self.link_busy_cycles as f64 / (self.cycles as f64 * self.num_mesh_links as f64)
        }
    }

    /// Latency at percentile `p` (0–100) over delivered messages, or 0 when
    /// nothing was delivered. Uses the nearest-rank method on a sorted copy.
    pub fn latency_percentile(&self, p: f64) -> u64 {
        if self.latencies.is_empty() {
            return 0;
        }
        let mut sorted = self.latencies.clone();
        sorted.sort_unstable();
        let rank = ((p / 100.0) * sorted.len() as f64).ceil() as usize;
        sorted[rank.clamp(1, sorted.len()) - 1]
    }

    /// Maximum delivered-message latency.
    pub fn max_latency(&self) -> u64 {
        self.latencies.iter().copied().max().unwrap_or(0)
    }

    /// Mean cycles from fault onset to recovery. Episodes that never
    /// recovered (onsets without a matching recovery) are charged
    /// `unrecovered_penalty` cycles each — callers typically pass their
    /// measurement window so an unrecovered fault scores as badly as one
    /// that healed only at the horizon. Returns 0 for fault-free runs.
    pub fn avg_recovery_cycles(&self, unrecovered_penalty: u64) -> f64 {
        if self.fault_onsets == 0 {
            0.0
        } else {
            let unrecovered = self.fault_onsets.saturating_sub(self.recoveries);
            (self.recovery_cycles_total + unrecovered * unrecovered_penalty) as f64
                / self.fault_onsets as f64
        }
    }

    /// Mean end-to-end latency of messages delivered at or after the first
    /// fault onset, or 0 when no fault ever fired (or nothing was delivered
    /// after one did).
    pub fn post_fault_avg_latency(&self) -> f64 {
        if self.post_fault_delivered == 0 {
            0.0
        } else {
            self.post_fault_latency_total as f64 / self.post_fault_delivered as f64
        }
    }

    /// Jain's fairness index over per-node delivered counts: 1.0 means every
    /// node received equal service, `1/n` means one node got everything.
    pub fn jain_fairness(&self) -> f64 {
        let xs: Vec<f64> = self
            .delivered_per_node
            .iter()
            .map(|&c| c as f64)
            .collect();
        let n = xs.len() as f64;
        let sum: f64 = xs.iter().sum();
        let sumsq: f64 = xs.iter().map(|x| x * x).sum();
        if sumsq == 0.0 {
            1.0
        } else {
            (sum * sum) / (n * sumsq)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_stats_report_zeroes() {
        let s = SimStats::new(3, 16, 48);
        assert_eq!(s.avg_latency(), 0.0);
        assert_eq!(s.throughput(), 0.0);
        assert_eq!(s.latency_percentile(99.0), 0);
        assert_eq!(s.max_latency(), 0);
        assert_eq!(s.jain_fairness(), 1.0);
    }

    #[test]
    fn averages_divide_by_delivered() {
        let mut s = SimStats::new(1, 4, 24);
        s.delivered = 4;
        s.total_latency = 40;
        s.total_network_latency = 20;
        s.total_hops = 8;
        s.cycles = 10;
        assert_eq!(s.avg_latency(), 10.0);
        assert_eq!(s.avg_network_latency(), 5.0);
        assert_eq!(s.avg_hops(), 2.0);
        assert_eq!(s.throughput(), 0.1);
    }

    #[test]
    fn percentiles_use_nearest_rank() {
        let mut s = SimStats::new(1, 1, 4);
        s.latencies = vec![10, 20, 30, 40, 50, 60, 70, 80, 90, 100];
        assert_eq!(s.latency_percentile(50.0), 50);
        assert_eq!(s.latency_percentile(90.0), 90);
        assert_eq!(s.latency_percentile(100.0), 100);
        assert_eq!(s.latency_percentile(1.0), 10);
        assert_eq!(s.max_latency(), 100);
    }

    #[test]
    fn recovery_metrics_charge_unrecovered_episodes() {
        let mut s = SimStats::new(1, 4, 24);
        assert_eq!(s.avg_recovery_cycles(5_000), 0.0);
        assert_eq!(s.post_fault_avg_latency(), 0.0);
        s.fault_onsets = 3;
        s.recoveries = 2;
        s.recovery_cycles_total = 400;
        // (400 + 1 unrecovered × 5000) / 3 onsets
        assert!((s.avg_recovery_cycles(5_000) - 1_800.0).abs() < 1e-12);
        s.post_fault_delivered = 8;
        s.post_fault_latency_total = 96;
        assert_eq!(s.post_fault_avg_latency(), 12.0);
    }

    #[test]
    fn jain_fairness_detects_imbalance() {
        let mut s = SimStats::new(1, 4, 24);
        s.delivered_per_node = vec![10, 10, 10, 10];
        assert!((s.jain_fairness() - 1.0).abs() < 1e-12);
        s.delivered_per_node = vec![40, 0, 0, 0];
        assert!((s.jain_fairness() - 0.25).abs() < 1e-12);
    }

    #[test]
    fn link_utilization_normalizes_by_links_and_cycles() {
        let mut s = SimStats::new(1, 4, 48);
        s.cycles = 100;
        s.link_busy_cycles = 240;
        assert!((s.avg_link_utilization() - 0.05).abs() < 1e-12);
        let degenerate = SimStats::new(1, 4, 0);
        assert_eq!(degenerate.avg_link_utilization(), 0.0);
    }
}
