//! Router-graph topologies: mesh, torus, ring, and degraded graphs.
//!
//! Every topology is an explicit adjacency table over a shared per-router
//! port layout — `num_locals` local (injection/ejection) ports followed by
//! the four directional ports North, South, West, East — so agents can use
//! one fixed-width state encoding across the whole fabric (paper §4.4).
//! Routers whose directional port has no link (mesh edges, degraded-graph
//! holes) simply have a disconnected port; torus routers use all four.
//!
//! Link counts ([`Topology::num_links`]) and hop distances
//! ([`Topology::hop_distance`]) are derived from the graph by enumeration
//! and breadth-first search, not from mesh formulas, so they are correct
//! on every [`TopologyKind`]. A per-destination next-hop table
//! ([`Topology::next_hop_port`]) backs table-driven shortest-path routing
//! on arbitrary (e.g. degraded) graphs.

use std::collections::VecDeque;

use crate::error::ConfigError;
use crate::rng::SplitMix64;
use crate::types::{Coord, DestType, NodeId, PortDir, RouterId};

/// Directional ports per router (N, S, W, E).
const NUM_DIRS: usize = 4;

/// The four directional ports in port-layout order.
#[cfg(test)]
const DIRS: [PortDir; NUM_DIRS] = [PortDir::North, PortDir::South, PortDir::West, PortDir::East];

/// Index of a directional port within the N, S, W, E layout order
/// (None for local ports).
fn dir_index(dir: PortDir) -> Option<usize> {
    match dir {
        PortDir::Local(_) => None,
        PortDir::North => Some(0),
        PortDir::South => Some(1),
        PortDir::West => Some(2),
        PortDir::East => Some(3),
    }
}

/// The family a [`Topology`] belongs to. Routing functions are validated
/// against this (see [`crate::RoutingKind::supports`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum TopologyKind {
    /// 2-D mesh: edge routers have disconnected directional ports.
    Mesh,
    /// 2-D torus: every row and column wraps around, all ports connected.
    Torus,
    /// 1-D ring: East/West wrap around, North/South disconnected.
    Ring,
    /// A mesh with links removed (still connected — enforced at build).
    Degraded,
}

impl TopologyKind {
    /// Stable lowercase name used in labels and error messages.
    pub fn as_str(self) -> &'static str {
        match self {
            TopologyKind::Mesh => "mesh",
            TopologyKind::Torus => "torus",
            TopologyKind::Ring => "ring",
            TopologyKind::Degraded => "degraded",
        }
    }
}

/// A node (endpoint) attached to a router's local port.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Node {
    /// The node's identifier (its index in [`Topology::nodes`]).
    pub id: NodeId,
    /// Router the node hangs off.
    pub router: RouterId,
    /// Which local port of that router connects to the node.
    pub slot: u8,
    /// Destination class advertised in packets addressed to this node.
    pub dest_type: DestType,
}

/// A graph of routers with a fixed number of local (injection/ejection)
/// ports per router and a set of nodes attached to those ports.
///
/// Routers are addressed row-major over a `width`×`height` coordinate
/// grid (a ring is a 1-row grid). The wiring between directional ports is
/// the adjacency table built by the constructor — [`Topology::mesh`],
/// [`Topology::torus`], [`Topology::ring`], or [`Topology::degraded`].
///
/// ```
/// use noc_sim::{Topology, TopologyKind};
/// let topo = Topology::uniform_mesh(4, 4).unwrap();
/// assert_eq!(topo.kind(), TopologyKind::Mesh);
/// assert_eq!(topo.num_routers(), 16);
/// assert_eq!(topo.num_nodes(), 16);
/// assert_eq!(topo.ports_per_router(), 5); // 1 local + N,S,W,E
/// ```
#[derive(Debug, Clone)]
pub struct Topology {
    kind: TopologyKind,
    width: u16,
    height: u16,
    num_locals: usize,
    nodes: Vec<Node>,
    /// `attachment[router][slot]` = node attached there, if any.
    attachment: Vec<Vec<Option<NodeId>>>,
    /// `adj[router * 4 + dir]` = neighbor through that directional port.
    adj: Vec<Option<RouterId>>,
    /// Unidirectional router-to-router links (count of `Some` in `adj`).
    num_links: usize,
    /// All-pairs hop distances, row-major `num_routers × num_routers`.
    dist: Vec<u16>,
    /// `next_hop[src * V + dst]` = directional index (0–3) of the first
    /// hop on a shortest path, or `u8::MAX` when `src == dst`.
    next_hop: Vec<u8>,
}

/// Builds the adjacency table of a `width`×`height` grid, optionally
/// wrapping around in either dimension.
fn grid_adjacency(width: u16, height: u16, wrap_x: bool, wrap_y: bool) -> Vec<Option<RouterId>> {
    let w = width as usize;
    let h = height as usize;
    let at = |x: usize, y: usize| RouterId(y * w + x);
    let mut adj = vec![None; w * h * NUM_DIRS];
    for y in 0..h {
        for x in 0..w {
            let base = (y * w + x) * NUM_DIRS;
            // North (0): y - 1.
            adj[base] = if y > 0 {
                Some(at(x, y - 1))
            } else if wrap_y {
                Some(at(x, h - 1))
            } else {
                None
            };
            // South (1): y + 1.
            adj[base + 1] = if y + 1 < h {
                Some(at(x, y + 1))
            } else if wrap_y {
                Some(at(x, 0))
            } else {
                None
            };
            // West (2): x - 1.
            adj[base + 2] = if x > 0 {
                Some(at(x - 1, y))
            } else if wrap_x {
                Some(at(w - 1, y))
            } else {
                None
            };
            // East (3): x + 1.
            adj[base + 3] = if x + 1 < w {
                Some(at(x + 1, y))
            } else if wrap_x {
                Some(at(0, y))
            } else {
                None
            };
        }
    }
    adj
}

/// True when every router is reachable from router 0 over `adj`.
fn is_connected(adj: &[Option<RouterId>], num_routers: usize) -> bool {
    if num_routers == 0 {
        return false;
    }
    let mut seen = vec![false; num_routers];
    let mut queue = VecDeque::from([0usize]);
    seen[0] = true;
    let mut reached = 1;
    while let Some(r) = queue.pop_front() {
        for d in 0..NUM_DIRS {
            if let Some(n) = adj[r * NUM_DIRS + d] {
                if !seen[n.index()] {
                    seen[n.index()] = true;
                    reached += 1;
                    queue.push_back(n.index());
                }
            }
        }
    }
    reached == num_routers
}

impl Topology {
    /// Creates an empty mesh with `num_locals` local ports per router and no
    /// nodes attached yet.
    ///
    /// # Errors
    ///
    /// Returns [`ConfigError::EmptyMesh`] for zero-sized meshes and
    /// [`ConfigError::NoLocalPorts`] when `num_locals == 0`.
    pub fn mesh(width: u16, height: u16, num_locals: usize) -> Result<Self, ConfigError> {
        if width == 0 || height == 0 {
            return Err(ConfigError::EmptyMesh);
        }
        if num_locals == 0 {
            return Err(ConfigError::NoLocalPorts);
        }
        let adj = grid_adjacency(width, height, false, false);
        Topology::from_adjacency(TopologyKind::Mesh, width, height, num_locals, adj)
    }

    /// Creates a `width`×`height` torus: the mesh plus wraparound links in
    /// both dimensions, so every directional port is connected.
    ///
    /// # Errors
    ///
    /// Returns [`ConfigError::TopologyTooSmall`] when either dimension is
    /// below 2 (a 1-wide torus would self-loop) and
    /// [`ConfigError::NoLocalPorts`] when `num_locals == 0`.
    pub fn torus(width: u16, height: u16, num_locals: usize) -> Result<Self, ConfigError> {
        if width < 2 || height < 2 {
            return Err(ConfigError::TopologyTooSmall {
                kind: "torus",
                dim: width.min(height),
                min: 2,
            });
        }
        if num_locals == 0 {
            return Err(ConfigError::NoLocalPorts);
        }
        let adj = grid_adjacency(width, height, true, true);
        Topology::from_adjacency(TopologyKind::Torus, width, height, num_locals, adj)
    }

    /// Creates a ring of `n` routers: a 1-row grid whose East/West ports
    /// wrap around; North/South ports are disconnected.
    ///
    /// # Errors
    ///
    /// Returns [`ConfigError::TopologyTooSmall`] when `n < 3` and
    /// [`ConfigError::NoLocalPorts`] when `num_locals == 0`.
    pub fn ring(n: u16, num_locals: usize) -> Result<Self, ConfigError> {
        if n < 3 {
            return Err(ConfigError::TopologyTooSmall {
                kind: "ring",
                dim: n,
                min: 3,
            });
        }
        if num_locals == 0 {
            return Err(ConfigError::NoLocalPorts);
        }
        let adj = grid_adjacency(n, 1, true, false);
        Topology::from_adjacency(TopologyKind::Ring, n, 1, num_locals, adj)
    }

    /// Creates a degraded mesh: a `width`×`height` mesh with the listed
    /// links removed. Each `(router, dir)` entry removes the bidirectional
    /// link between `router` and its neighbor through `dir` (both
    /// directions at once).
    ///
    /// # Errors
    ///
    /// Returns [`ConfigError::NoSuchLink`] when an entry names a local
    /// port, an edge port, or a link already removed, and
    /// [`ConfigError::DisconnectedTopology`] when the removals split the
    /// graph. Mesh-dimension errors are as for [`Topology::mesh`].
    pub fn degraded(
        width: u16,
        height: u16,
        num_locals: usize,
        removed: &[(RouterId, PortDir)],
    ) -> Result<Self, ConfigError> {
        if width == 0 || height == 0 {
            return Err(ConfigError::EmptyMesh);
        }
        if num_locals == 0 {
            return Err(ConfigError::NoLocalPorts);
        }
        let mut adj = grid_adjacency(width, height, false, false);
        for &(router, dir) in removed {
            if router.index() >= width as usize * height as usize {
                return Err(ConfigError::RouterOutOfRange {
                    router: router.index(),
                    num_routers: width as usize * height as usize,
                });
            }
            let d = dir_index(dir).ok_or(ConfigError::NoSuchLink {
                router: router.index(),
            })?;
            let Some(nbr) = adj[router.index() * NUM_DIRS + d] else {
                return Err(ConfigError::NoSuchLink {
                    router: router.index(),
                });
            };
            let od = dir_index(dir.opposite().expect("directional port")).expect("directional");
            adj[router.index() * NUM_DIRS + d] = None;
            adj[nbr.index() * NUM_DIRS + od] = None;
        }
        Topology::from_adjacency(TopologyKind::Degraded, width, height, num_locals, adj)
    }

    /// Creates a degraded mesh by seeded random link removal: bidirectional
    /// mesh links are visited in a seeded shuffle and removed greedily —
    /// skipping any removal that would disconnect the graph — until
    /// `round(drop_fraction × bidirectional links)` are gone. Deterministic
    /// for a given `(width, height, seed, drop_fraction)`.
    ///
    /// # Errors
    ///
    /// Mesh-dimension errors as for [`Topology::mesh`].
    pub fn degraded_mesh(
        width: u16,
        height: u16,
        num_locals: usize,
        seed: u64,
        drop_fraction: f64,
    ) -> Result<Self, ConfigError> {
        if width == 0 || height == 0 {
            return Err(ConfigError::EmptyMesh);
        }
        if num_locals == 0 {
            return Err(ConfigError::NoLocalPorts);
        }
        let mut adj = grid_adjacency(width, height, false, false);
        let v = width as usize * height as usize;
        // Every bidirectional link once: (router, South) and (router, East).
        let mut candidates: Vec<(usize, usize)> = Vec::new();
        for r in 0..v {
            for d in [1usize, 3] {
                if adj[r * NUM_DIRS + d].is_some() {
                    candidates.push((r, d));
                }
            }
        }
        let target = (drop_fraction.clamp(0.0, 1.0) * candidates.len() as f64).round() as usize;
        let mut rng = SplitMix64::new(seed ^ 0xDE6A_ADED_1111_0000);
        // Fisher–Yates shuffle, then greedy removal in shuffled order.
        for i in (1..candidates.len()).rev() {
            let j = rng.next_bounded(i as u64 + 1) as usize;
            candidates.swap(i, j);
        }
        let mut removed = 0;
        for &(r, d) in &candidates {
            if removed == target {
                break;
            }
            let nbr = adj[r * NUM_DIRS + d].expect("candidate link present");
            let od = match d {
                1 => 0, // South ↔ North
                3 => 2, // East ↔ West
                _ => unreachable!("candidates are South/East only"),
            };
            adj[r * NUM_DIRS + d] = None;
            adj[nbr.index() * NUM_DIRS + od] = None;
            if is_connected(&adj, v) {
                removed += 1;
            } else {
                adj[r * NUM_DIRS + d] = Some(nbr);
                adj[nbr.index() * NUM_DIRS + od] = Some(RouterId(r));
            }
        }
        Topology::from_adjacency(TopologyKind::Degraded, width, height, num_locals, adj)
    }

    /// Finishes construction from an adjacency table: counts links, runs
    /// all-pairs BFS for the distance and next-hop tables, and rejects
    /// disconnected graphs.
    fn from_adjacency(
        kind: TopologyKind,
        width: u16,
        height: u16,
        num_locals: usize,
        adj: Vec<Option<RouterId>>,
    ) -> Result<Self, ConfigError> {
        let v = width as usize * height as usize;
        let num_links = adj.iter().filter(|l| l.is_some()).count();
        let mut dist = vec![u16::MAX; v * v];
        let mut queue = VecDeque::new();
        for src in 0..v {
            let row = src * v;
            dist[row + src] = 0;
            queue.clear();
            queue.push_back(src);
            while let Some(r) = queue.pop_front() {
                for d in 0..NUM_DIRS {
                    if let Some(n) = adj[r * NUM_DIRS + d] {
                        if dist[row + n.index()] == u16::MAX {
                            dist[row + n.index()] = dist[row + r] + 1;
                            queue.push_back(n.index());
                        }
                    }
                }
            }
            if dist[row..row + v].contains(&u16::MAX) {
                return Err(ConfigError::DisconnectedTopology);
            }
        }
        // First hop of a shortest path, preferring the lowest directional
        // port (N, S, W, E order) among the ties — deterministic.
        let mut next_hop = vec![u8::MAX; v * v];
        for src in 0..v {
            for dst in 0..v {
                if src == dst {
                    continue;
                }
                for d in 0..NUM_DIRS {
                    if let Some(n) = adj[src * NUM_DIRS + d] {
                        if dist[n.index() * v + dst] as u32 + 1 == dist[src * v + dst] as u32 {
                            next_hop[src * v + dst] = d as u8;
                            break;
                        }
                    }
                }
            }
        }
        Ok(Topology {
            kind,
            width,
            height,
            num_locals,
            nodes: Vec::new(),
            attachment: vec![vec![None; num_locals]; v],
            adj,
            num_links,
            dist,
            next_hop,
        })
    }

    /// Creates a `width`×`height` mesh with exactly one node per router
    /// (slot 0, [`DestType::Core`]) — the configuration of the paper's
    /// synthetic-traffic study (§3.2).
    ///
    /// # Errors
    ///
    /// Returns [`ConfigError::EmptyMesh`] for zero-sized meshes.
    pub fn uniform_mesh(width: u16, height: u16) -> Result<Self, ConfigError> {
        let mut topo = Topology::mesh(width, height, 1)?;
        topo.attach_uniform_cores()?;
        Ok(topo)
    }

    /// Creates a `width`×`height` torus with one [`DestType::Core`] node
    /// per router, mirroring [`Topology::uniform_mesh`].
    ///
    /// # Errors
    ///
    /// As for [`Topology::torus`].
    pub fn uniform_torus(width: u16, height: u16) -> Result<Self, ConfigError> {
        let mut topo = Topology::torus(width, height, 1)?;
        topo.attach_uniform_cores()?;
        Ok(topo)
    }

    /// Creates an `n`-router ring with one [`DestType::Core`] node per
    /// router, mirroring [`Topology::uniform_mesh`].
    ///
    /// # Errors
    ///
    /// As for [`Topology::ring`].
    pub fn uniform_ring(n: u16) -> Result<Self, ConfigError> {
        let mut topo = Topology::ring(n, 1)?;
        topo.attach_uniform_cores()?;
        Ok(topo)
    }

    /// Creates a seeded degraded `width`×`height` mesh (see
    /// [`Topology::degraded_mesh`]) with one [`DestType::Core`] node per
    /// router.
    ///
    /// # Errors
    ///
    /// As for [`Topology::degraded_mesh`].
    pub fn uniform_degraded_mesh(
        width: u16,
        height: u16,
        seed: u64,
        drop_fraction: f64,
    ) -> Result<Self, ConfigError> {
        let mut topo = Topology::degraded_mesh(width, height, 1, seed, drop_fraction)?;
        topo.attach_uniform_cores()?;
        Ok(topo)
    }

    /// Attaches one Core node to slot 0 of every router.
    fn attach_uniform_cores(&mut self) -> Result<(), ConfigError> {
        for r in 0..self.num_routers() {
            self.attach_node(RouterId(r), 0, DestType::Core)?;
        }
        Ok(())
    }

    /// Attaches a new node to `(router, slot)` and returns its id.
    ///
    /// # Errors
    ///
    /// Fails if the router or slot is out of range, or the attachment point
    /// is already occupied.
    pub fn attach_node(
        &mut self,
        router: RouterId,
        slot: u8,
        dest_type: DestType,
    ) -> Result<NodeId, ConfigError> {
        if router.index() >= self.num_routers() {
            return Err(ConfigError::RouterOutOfRange {
                router: router.index(),
                num_routers: self.num_routers(),
            });
        }
        if (slot as usize) >= self.num_locals {
            return Err(ConfigError::SlotOutOfRange {
                slot,
                num_locals: self.num_locals,
            });
        }
        if self.attachment[router.index()][slot as usize].is_some() {
            return Err(ConfigError::DuplicateAttachment {
                router: router.index(),
                slot,
            });
        }
        let id = NodeId(self.nodes.len());
        self.attachment[router.index()][slot as usize] = Some(id);
        self.nodes.push(Node {
            id,
            router,
            slot,
            dest_type,
        });
        Ok(id)
    }

    /// The family this topology belongs to.
    pub fn kind(&self) -> TopologyKind {
        self.kind
    }

    /// Grid width (columns; ring length for a ring).
    pub fn width(&self) -> u16 {
        self.width
    }

    /// Grid height (rows; 1 for a ring).
    pub fn height(&self) -> u16 {
        self.height
    }

    /// Number of routers in the graph.
    pub fn num_routers(&self) -> usize {
        self.width as usize * self.height as usize
    }

    /// Number of attached nodes.
    pub fn num_nodes(&self) -> usize {
        self.nodes.len()
    }

    /// Local ports per router.
    pub fn num_locals(&self) -> usize {
        self.num_locals
    }

    /// Total ports per router (locals + 4 directional ports). The port
    /// layout is shared by every router on every topology; disconnected
    /// directional ports (mesh edges, degraded holes) still occupy their
    /// index.
    pub fn ports_per_router(&self) -> usize {
        self.num_locals + NUM_DIRS
    }

    /// All attached nodes, in id order.
    pub fn nodes(&self) -> &[Node] {
        &self.nodes
    }

    /// Looks up a node by id.
    ///
    /// # Panics
    ///
    /// Panics if `id` is out of range.
    pub fn node(&self, id: NodeId) -> &Node {
        &self.nodes[id.index()]
    }

    /// The node attached at `(router, slot)`, if any.
    pub fn node_at(&self, router: RouterId, slot: u8) -> Option<NodeId> {
        self.attachment
            .get(router.index())
            .and_then(|slots| slots.get(slot as usize))
            .copied()
            .flatten()
    }

    /// Coordinate of a router.
    pub fn coord(&self, router: RouterId) -> Coord {
        let w = self.width as usize;
        Coord::new((router.index() % w) as u16, (router.index() / w) as u16)
    }

    /// Router at a coordinate.
    ///
    /// # Panics
    ///
    /// Panics if the coordinate is outside the grid.
    pub fn router_at(&self, c: Coord) -> RouterId {
        assert!(c.x < self.width && c.y < self.height, "coordinate outside mesh");
        RouterId(c.y as usize * self.width as usize + c.x as usize)
    }

    /// The port layout shared by every router.
    pub fn port_order(&self) -> Vec<PortDir> {
        PortDir::port_order(self.num_locals)
    }

    /// Port index of a direction within the shared layout.
    pub fn port_index(&self, dir: PortDir) -> usize {
        match dir {
            PortDir::Local(k) => {
                assert!((k as usize) < self.num_locals, "local slot out of range");
                k as usize
            }
            PortDir::North => self.num_locals,
            PortDir::South => self.num_locals + 1,
            PortDir::West => self.num_locals + 2,
            PortDir::East => self.num_locals + 3,
        }
    }

    /// Direction of a port index within the shared layout.
    ///
    /// # Panics
    ///
    /// Panics if `port` is out of range.
    pub fn port_dir(&self, port: usize) -> PortDir {
        if port < self.num_locals {
            PortDir::Local(port as u8)
        } else {
            match port - self.num_locals {
                0 => PortDir::North,
                1 => PortDir::South,
                2 => PortDir::West,
                3 => PortDir::East,
                _ => panic!("port index {port} out of range"),
            }
        }
    }

    /// Neighbor router through a directional port, or `None` when the port
    /// is disconnected (or local). Reads the adjacency table, so wraparound
    /// and degraded links are answered correctly.
    pub fn neighbor(&self, router: RouterId, dir: PortDir) -> Option<RouterId> {
        let d = dir_index(dir)?;
        self.adj[router.index() * NUM_DIRS + d]
    }

    /// Number of unidirectional router-to-router links in the graph
    /// (excluding injection/ejection links) — the denominator of the
    /// link-utilization reward (paper §6.3). Counted from the adjacency
    /// table; on a mesh this equals `2·((w−1)·h + (h−1)·w)`.
    pub fn num_links(&self) -> usize {
        self.num_links
    }

    /// Historical name for [`Topology::num_links`], kept for call sites
    /// that predate non-mesh topologies.
    pub fn num_mesh_links(&self) -> usize {
        self.num_links
    }

    /// Hop distance between two routers over the graph (BFS shortest
    /// path). On a mesh this equals the Manhattan distance.
    pub fn hop_distance(&self, a: RouterId, b: RouterId) -> u32 {
        self.dist[a.index() * self.num_routers() + b.index()] as u32
    }

    /// Hop distance between the routers of two nodes, over the graph.
    pub fn node_distance(&self, a: NodeId, b: NodeId) -> u32 {
        self.hop_distance(self.node(a).router, self.node(b).router)
    }

    /// The graph diameter: the largest router-to-router hop distance.
    pub fn diameter(&self) -> u32 {
        self.dist.iter().copied().max().unwrap_or(0) as u32
    }

    /// The output *port index* of the first hop on a shortest path from
    /// `here` to `dst`, or `None` when `here == dst`. Ties prefer the
    /// lowest directional port (N, S, W, E), so the table is deterministic.
    pub fn next_hop_port(&self, here: RouterId, dst: RouterId) -> Option<usize> {
        let d = self.next_hop[here.index() * self.num_routers() + dst.index()];
        if d == u8::MAX {
            None
        } else {
            Some(self.num_locals + d as usize)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn uniform_mesh_attaches_one_node_per_router() {
        let t = Topology::uniform_mesh(3, 2).unwrap();
        assert_eq!(t.num_nodes(), 6);
        for r in 0..6 {
            let n = t.node_at(RouterId(r), 0).unwrap();
            assert_eq!(t.node(n).router, RouterId(r));
        }
    }

    #[test]
    fn coord_roundtrip() {
        let t = Topology::uniform_mesh(5, 3).unwrap();
        for r in 0..t.num_routers() {
            let c = t.coord(RouterId(r));
            assert_eq!(t.router_at(c), RouterId(r));
        }
    }

    #[test]
    fn neighbors_respect_edges() {
        let t = Topology::uniform_mesh(4, 4).unwrap();
        let corner = t.router_at(Coord::new(0, 0));
        assert_eq!(t.neighbor(corner, PortDir::North), None);
        assert_eq!(t.neighbor(corner, PortDir::West), None);
        assert_eq!(t.neighbor(corner, PortDir::East), Some(t.router_at(Coord::new(1, 0))));
        assert_eq!(t.neighbor(corner, PortDir::South), Some(t.router_at(Coord::new(0, 1))));
        assert_eq!(t.neighbor(corner, PortDir::Local(0)), None);
    }

    #[test]
    fn neighbor_links_are_mutual() {
        for t in [
            Topology::uniform_mesh(4, 4).unwrap(),
            Topology::uniform_torus(4, 4).unwrap(),
            Topology::uniform_ring(7).unwrap(),
            Topology::uniform_degraded_mesh(4, 4, 9, 0.25).unwrap(),
        ] {
            for r in 0..t.num_routers() {
                for d in DIRS {
                    if let Some(n) = t.neighbor(RouterId(r), d) {
                        assert_eq!(
                            t.neighbor(n, d.opposite().unwrap()),
                            Some(RouterId(r)),
                            "{}: {r} -> {n} via {d:?}",
                            t.kind().as_str()
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn torus_wraps_around_both_dimensions() {
        let t = Topology::uniform_torus(4, 3).unwrap();
        let origin = t.router_at(Coord::new(0, 0));
        assert_eq!(t.neighbor(origin, PortDir::West), Some(t.router_at(Coord::new(3, 0))));
        assert_eq!(t.neighbor(origin, PortDir::North), Some(t.router_at(Coord::new(0, 2))));
        let far = t.router_at(Coord::new(3, 2));
        assert_eq!(t.neighbor(far, PortDir::East), Some(t.router_at(Coord::new(0, 2))));
        assert_eq!(t.neighbor(far, PortDir::South), Some(t.router_at(Coord::new(3, 0))));
    }

    #[test]
    fn ring_wraps_east_west_only() {
        let t = Topology::uniform_ring(5).unwrap();
        let first = RouterId(0);
        let last = RouterId(4);
        assert_eq!(t.neighbor(first, PortDir::West), Some(last));
        assert_eq!(t.neighbor(last, PortDir::East), Some(first));
        assert_eq!(t.neighbor(first, PortDir::North), None);
        assert_eq!(t.neighbor(first, PortDir::South), None);
    }

    #[test]
    fn port_index_roundtrip() {
        let t = Topology::mesh(2, 2, 2).unwrap();
        for p in 0..t.ports_per_router() {
            assert_eq!(t.port_index(t.port_dir(p)), p);
        }
    }

    #[test]
    fn duplicate_attachment_rejected() {
        let mut t = Topology::mesh(2, 2, 1).unwrap();
        t.attach_node(RouterId(0), 0, DestType::Core).unwrap();
        let err = t.attach_node(RouterId(0), 0, DestType::Cache).unwrap_err();
        assert_eq!(err, ConfigError::DuplicateAttachment { router: 0, slot: 0 });
    }

    #[test]
    fn out_of_range_attachments_rejected() {
        let mut t = Topology::mesh(2, 2, 1).unwrap();
        assert!(matches!(
            t.attach_node(RouterId(99), 0, DestType::Core),
            Err(ConfigError::RouterOutOfRange { .. })
        ));
        assert!(matches!(
            t.attach_node(RouterId(0), 4, DestType::Core),
            Err(ConfigError::SlotOutOfRange { .. })
        ));
    }

    /// Link counts are derived from the graph; enumeration must agree on
    /// every topology kind, and on the mesh with the closed form.
    #[test]
    fn link_count_matches_enumeration() {
        let count = |t: &Topology| -> usize {
            (0..t.num_routers())
                .map(|r| DIRS.iter().filter(|&&d| t.neighbor(RouterId(r), d).is_some()).count())
                .sum()
        };
        let mesh = Topology::uniform_mesh(4, 4).unwrap();
        assert_eq!(count(&mesh), mesh.num_links());
        assert_eq!(mesh.num_links(), 2 * ((4 - 1) * 4 + (4 - 1) * 4)); // closed form
        assert_eq!(mesh.num_links(), mesh.num_mesh_links());

        let torus = Topology::uniform_torus(4, 4).unwrap();
        assert_eq!(count(&torus), torus.num_links());
        assert_eq!(torus.num_links(), 4 * 4 * 4); // every port connected

        let ring = Topology::uniform_ring(9).unwrap();
        assert_eq!(count(&ring), ring.num_links());
        assert_eq!(ring.num_links(), 2 * 9);

        let degraded = Topology::uniform_degraded_mesh(4, 4, 3, 0.25).unwrap();
        assert_eq!(count(&degraded), degraded.num_links());
        assert!(degraded.num_links() < mesh.num_links());
    }

    /// Graph hop distance equals the Manhattan distance on a mesh — the
    /// guarantee that lets the simulator use `hop_distance` everywhere
    /// without perturbing mesh results.
    #[test]
    fn mesh_hop_distance_equals_manhattan() {
        let t = Topology::uniform_mesh(5, 4).unwrap();
        for a in 0..t.num_routers() {
            for b in 0..t.num_routers() {
                assert_eq!(
                    t.hop_distance(RouterId(a), RouterId(b)),
                    t.coord(RouterId(a)).manhattan(t.coord(RouterId(b))),
                    "routers {a} and {b}"
                );
            }
        }
        assert_eq!(t.diameter(), 4 + 3);
    }

    #[test]
    fn torus_distance_uses_wraparound() {
        let t = Topology::uniform_torus(4, 4).unwrap();
        let a = t.router_at(Coord::new(0, 0));
        let b = t.router_at(Coord::new(3, 3));
        // One wrap hop West + one wrap hop North, not 3 + 3.
        assert_eq!(t.hop_distance(a, b), 2);
        assert_eq!(t.diameter(), 4); // 2 + 2 on a 4×4 torus
    }

    #[test]
    fn ring_distance_takes_the_short_way() {
        let t = Topology::uniform_ring(6).unwrap();
        assert_eq!(t.hop_distance(RouterId(0), RouterId(5)), 1);
        assert_eq!(t.hop_distance(RouterId(0), RouterId(3)), 3);
        assert_eq!(t.diameter(), 3);
    }

    #[test]
    fn next_hop_walk_reaches_destination_in_distance_steps() {
        for t in [
            Topology::uniform_mesh(4, 4).unwrap(),
            Topology::uniform_torus(4, 4).unwrap(),
            Topology::uniform_ring(7).unwrap(),
            Topology::uniform_degraded_mesh(4, 4, 11, 0.3).unwrap(),
        ] {
            for a in 0..t.num_routers() {
                for b in 0..t.num_routers() {
                    let (src, dst) = (RouterId(a), RouterId(b));
                    let mut here = src;
                    let mut hops = 0;
                    while let Some(port) = t.next_hop_port(here, dst) {
                        here = t.neighbor(here, t.port_dir(port)).expect("table follows links");
                        hops += 1;
                        assert!(hops <= t.num_routers() as u32, "routing loop");
                    }
                    assert_eq!(here, dst);
                    assert_eq!(hops, t.hop_distance(src, dst), "{} {a}->{b}", t.kind().as_str());
                }
            }
        }
    }

    #[test]
    fn degraded_removal_is_applied_and_validated() {
        // Removing (0, East) leaves a connected 2×2 graph with 6 links.
        let t = Topology::degraded(2, 2, 1, &[(RouterId(0), PortDir::East)]).unwrap();
        assert_eq!(t.kind(), TopologyKind::Degraded);
        assert_eq!(t.neighbor(RouterId(0), PortDir::East), None);
        assert_eq!(t.neighbor(RouterId(1), PortDir::West), None);
        assert_eq!(t.num_links(), 6);
        // Distances route around the hole.
        assert_eq!(t.hop_distance(RouterId(0), RouterId(1)), 3);

        // Removing a nonexistent link is an error.
        assert_eq!(
            Topology::degraded(2, 2, 1, &[(RouterId(0), PortDir::North)]).unwrap_err(),
            ConfigError::NoSuchLink { router: 0 }
        );
        // Disconnecting a router is an error.
        assert_eq!(
            Topology::degraded(
                2,
                2,
                1,
                &[(RouterId(0), PortDir::East), (RouterId(2), PortDir::East), (RouterId(2), PortDir::North)]
            )
            .unwrap_err(),
            ConfigError::DisconnectedTopology
        );
    }

    #[test]
    fn degraded_mesh_is_deterministic_and_connected() {
        let a = Topology::degraded_mesh(4, 4, 1, 42, 0.25).unwrap();
        let b = Topology::degraded_mesh(4, 4, 1, 42, 0.25).unwrap();
        for r in 0..a.num_routers() {
            for d in DIRS {
                assert_eq!(a.neighbor(RouterId(r), d), b.neighbor(RouterId(r), d));
            }
        }
        // 4×4 mesh has 24 bidirectional links; 25% → 6 removed → 36 left.
        assert_eq!(a.num_links(), 48 - 2 * 6);
        // A different seed gives a different (still connected) graph.
        let c = Topology::degraded_mesh(4, 4, 1, 43, 0.25).unwrap();
        assert_eq!(c.num_links(), a.num_links());
    }

    #[test]
    fn zero_sized_meshes_rejected() {
        assert_eq!(Topology::mesh(0, 4, 1).unwrap_err(), ConfigError::EmptyMesh);
        assert_eq!(Topology::mesh(4, 0, 1).unwrap_err(), ConfigError::EmptyMesh);
        assert_eq!(Topology::mesh(4, 4, 0).unwrap_err(), ConfigError::NoLocalPorts);
    }

    #[test]
    fn undersized_torus_and_ring_rejected() {
        assert!(matches!(
            Topology::torus(1, 4, 1).unwrap_err(),
            ConfigError::TopologyTooSmall { kind: "torus", .. }
        ));
        assert!(matches!(
            Topology::ring(2, 1).unwrap_err(),
            ConfigError::TopologyTooSmall { kind: "ring", .. }
        ));
        assert_eq!(Topology::torus(4, 4, 0).unwrap_err(), ConfigError::NoLocalPorts);
        assert_eq!(Topology::ring(4, 0).unwrap_err(), ConfigError::NoLocalPorts);
    }
}
