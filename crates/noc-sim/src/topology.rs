//! Mesh topology: router grid, node attachment points, and port wiring.

use crate::error::ConfigError;
use crate::types::{Coord, DestType, NodeId, PortDir, RouterId};

/// A node (endpoint) attached to a router's local port.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Node {
    /// The node's identifier (its index in [`Topology::nodes`]).
    pub id: NodeId,
    /// Router the node hangs off.
    pub router: RouterId,
    /// Which local port of that router connects to the node.
    pub slot: u8,
    /// Destination class advertised in packets addressed to this node.
    pub dest_type: DestType,
}

/// A 2-D mesh of routers with a fixed number of local (injection/ejection)
/// ports per router and a set of nodes attached to those ports.
///
/// All routers share the same port layout — `num_locals` local ports followed
/// by North, South, West, East — so agents can use one fixed-width state
/// encoding across the whole fabric (paper §4.4). Edge routers simply have
/// disconnected mesh ports.
///
/// ```
/// use noc_sim::Topology;
/// let topo = Topology::uniform_mesh(4, 4).unwrap();
/// assert_eq!(topo.num_routers(), 16);
/// assert_eq!(topo.num_nodes(), 16);
/// assert_eq!(topo.ports_per_router(), 5); // 1 local + N,S,W,E
/// ```
#[derive(Debug, Clone)]
pub struct Topology {
    width: u16,
    height: u16,
    num_locals: usize,
    nodes: Vec<Node>,
    /// `attachment[router][slot]` = node attached there, if any.
    attachment: Vec<Vec<Option<NodeId>>>,
}

impl Topology {
    /// Creates an empty mesh with `num_locals` local ports per router and no
    /// nodes attached yet.
    ///
    /// # Errors
    ///
    /// Returns [`ConfigError::EmptyMesh`] for zero-sized meshes and
    /// [`ConfigError::NoLocalPorts`] when `num_locals == 0`.
    pub fn mesh(width: u16, height: u16, num_locals: usize) -> Result<Self, ConfigError> {
        if width == 0 || height == 0 {
            return Err(ConfigError::EmptyMesh);
        }
        if num_locals == 0 {
            return Err(ConfigError::NoLocalPorts);
        }
        let n = width as usize * height as usize;
        Ok(Topology {
            width,
            height,
            num_locals,
            nodes: Vec::new(),
            attachment: vec![vec![None; num_locals]; n],
        })
    }

    /// Creates a `width`×`height` mesh with exactly one node per router
    /// (slot 0, [`DestType::Core`]) — the configuration of the paper's
    /// synthetic-traffic study (§3.2).
    ///
    /// # Errors
    ///
    /// Returns [`ConfigError::EmptyMesh`] for zero-sized meshes.
    pub fn uniform_mesh(width: u16, height: u16) -> Result<Self, ConfigError> {
        let mut topo = Topology::mesh(width, height, 1)?;
        for r in 0..topo.num_routers() {
            topo.attach_node(RouterId(r), 0, DestType::Core)?;
        }
        Ok(topo)
    }

    /// Attaches a new node to `(router, slot)` and returns its id.
    ///
    /// # Errors
    ///
    /// Fails if the router or slot is out of range, or the attachment point
    /// is already occupied.
    pub fn attach_node(
        &mut self,
        router: RouterId,
        slot: u8,
        dest_type: DestType,
    ) -> Result<NodeId, ConfigError> {
        if router.index() >= self.num_routers() {
            return Err(ConfigError::RouterOutOfRange {
                router: router.index(),
                num_routers: self.num_routers(),
            });
        }
        if (slot as usize) >= self.num_locals {
            return Err(ConfigError::SlotOutOfRange {
                slot,
                num_locals: self.num_locals,
            });
        }
        if self.attachment[router.index()][slot as usize].is_some() {
            return Err(ConfigError::DuplicateAttachment {
                router: router.index(),
                slot,
            });
        }
        let id = NodeId(self.nodes.len());
        self.attachment[router.index()][slot as usize] = Some(id);
        self.nodes.push(Node {
            id,
            router,
            slot,
            dest_type,
        });
        Ok(id)
    }

    /// Mesh width (columns).
    pub fn width(&self) -> u16 {
        self.width
    }

    /// Mesh height (rows).
    pub fn height(&self) -> u16 {
        self.height
    }

    /// Number of routers in the mesh.
    pub fn num_routers(&self) -> usize {
        self.width as usize * self.height as usize
    }

    /// Number of attached nodes.
    pub fn num_nodes(&self) -> usize {
        self.nodes.len()
    }

    /// Local ports per router.
    pub fn num_locals(&self) -> usize {
        self.num_locals
    }

    /// Total ports per router (locals + 4 mesh directions).
    pub fn ports_per_router(&self) -> usize {
        self.num_locals + 4
    }

    /// All attached nodes, in id order.
    pub fn nodes(&self) -> &[Node] {
        &self.nodes
    }

    /// Looks up a node by id.
    ///
    /// # Panics
    ///
    /// Panics if `id` is out of range.
    pub fn node(&self, id: NodeId) -> &Node {
        &self.nodes[id.index()]
    }

    /// The node attached at `(router, slot)`, if any.
    pub fn node_at(&self, router: RouterId, slot: u8) -> Option<NodeId> {
        self.attachment
            .get(router.index())
            .and_then(|slots| slots.get(slot as usize))
            .copied()
            .flatten()
    }

    /// Coordinate of a router.
    pub fn coord(&self, router: RouterId) -> Coord {
        let w = self.width as usize;
        Coord::new((router.index() % w) as u16, (router.index() / w) as u16)
    }

    /// Router at a coordinate.
    ///
    /// # Panics
    ///
    /// Panics if the coordinate is outside the mesh.
    pub fn router_at(&self, c: Coord) -> RouterId {
        assert!(c.x < self.width && c.y < self.height, "coordinate outside mesh");
        RouterId(c.y as usize * self.width as usize + c.x as usize)
    }

    /// The port layout shared by every router.
    pub fn port_order(&self) -> Vec<PortDir> {
        PortDir::port_order(self.num_locals)
    }

    /// Port index of a direction within the shared layout.
    pub fn port_index(&self, dir: PortDir) -> usize {
        match dir {
            PortDir::Local(k) => {
                assert!((k as usize) < self.num_locals, "local slot out of range");
                k as usize
            }
            PortDir::North => self.num_locals,
            PortDir::South => self.num_locals + 1,
            PortDir::West => self.num_locals + 2,
            PortDir::East => self.num_locals + 3,
        }
    }

    /// Direction of a port index within the shared layout.
    ///
    /// # Panics
    ///
    /// Panics if `port` is out of range.
    pub fn port_dir(&self, port: usize) -> PortDir {
        if port < self.num_locals {
            PortDir::Local(port as u8)
        } else {
            match port - self.num_locals {
                0 => PortDir::North,
                1 => PortDir::South,
                2 => PortDir::West,
                3 => PortDir::East,
                _ => panic!("port index {port} out of range"),
            }
        }
    }

    /// Neighbor router through a mesh-direction port, or `None` at an edge
    /// (or for local ports).
    pub fn neighbor(&self, router: RouterId, dir: PortDir) -> Option<RouterId> {
        let c = self.coord(router);
        let nc = match dir {
            PortDir::North if c.y > 0 => Coord::new(c.x, c.y - 1),
            PortDir::South if c.y + 1 < self.height => Coord::new(c.x, c.y + 1),
            PortDir::West if c.x > 0 => Coord::new(c.x - 1, c.y),
            PortDir::East if c.x + 1 < self.width => Coord::new(c.x + 1, c.y),
            _ => return None,
        };
        Some(self.router_at(nc))
    }

    /// Number of unidirectional router-to-router links in the mesh
    /// (excluding injection/ejection links) — the denominator of the
    /// link-utilization reward (paper §6.3).
    pub fn num_mesh_links(&self) -> usize {
        let w = self.width as usize;
        let h = self.height as usize;
        2 * ((w - 1) * h + (h - 1) * w)
    }

    /// Manhattan distance in hops between the routers of two nodes.
    pub fn node_distance(&self, a: NodeId, b: NodeId) -> u32 {
        let ra = self.node(a).router;
        let rb = self.node(b).router;
        self.coord(ra).manhattan(self.coord(rb))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn uniform_mesh_attaches_one_node_per_router() {
        let t = Topology::uniform_mesh(3, 2).unwrap();
        assert_eq!(t.num_nodes(), 6);
        for r in 0..6 {
            let n = t.node_at(RouterId(r), 0).unwrap();
            assert_eq!(t.node(n).router, RouterId(r));
        }
    }

    #[test]
    fn coord_roundtrip() {
        let t = Topology::uniform_mesh(5, 3).unwrap();
        for r in 0..t.num_routers() {
            let c = t.coord(RouterId(r));
            assert_eq!(t.router_at(c), RouterId(r));
        }
    }

    #[test]
    fn neighbors_respect_edges() {
        let t = Topology::uniform_mesh(4, 4).unwrap();
        let corner = t.router_at(Coord::new(0, 0));
        assert_eq!(t.neighbor(corner, PortDir::North), None);
        assert_eq!(t.neighbor(corner, PortDir::West), None);
        assert_eq!(t.neighbor(corner, PortDir::East), Some(t.router_at(Coord::new(1, 0))));
        assert_eq!(t.neighbor(corner, PortDir::South), Some(t.router_at(Coord::new(0, 1))));
        assert_eq!(t.neighbor(corner, PortDir::Local(0)), None);
    }

    #[test]
    fn neighbor_links_are_mutual() {
        let t = Topology::uniform_mesh(4, 4).unwrap();
        for r in 0..t.num_routers() {
            for d in [PortDir::North, PortDir::South, PortDir::West, PortDir::East] {
                if let Some(n) = t.neighbor(RouterId(r), d) {
                    assert_eq!(t.neighbor(n, d.opposite().unwrap()), Some(RouterId(r)));
                }
            }
        }
    }

    #[test]
    fn port_index_roundtrip() {
        let t = Topology::mesh(2, 2, 2).unwrap();
        for p in 0..t.ports_per_router() {
            assert_eq!(t.port_index(t.port_dir(p)), p);
        }
    }

    #[test]
    fn duplicate_attachment_rejected() {
        let mut t = Topology::mesh(2, 2, 1).unwrap();
        t.attach_node(RouterId(0), 0, DestType::Core).unwrap();
        let err = t.attach_node(RouterId(0), 0, DestType::Cache).unwrap_err();
        assert_eq!(err, ConfigError::DuplicateAttachment { router: 0, slot: 0 });
    }

    #[test]
    fn out_of_range_attachments_rejected() {
        let mut t = Topology::mesh(2, 2, 1).unwrap();
        assert!(matches!(
            t.attach_node(RouterId(99), 0, DestType::Core),
            Err(ConfigError::RouterOutOfRange { .. })
        ));
        assert!(matches!(
            t.attach_node(RouterId(0), 4, DestType::Core),
            Err(ConfigError::SlotOutOfRange { .. })
        ));
    }

    #[test]
    fn mesh_link_count_matches_enumeration() {
        let t = Topology::uniform_mesh(4, 4).unwrap();
        let mut count = 0;
        for r in 0..t.num_routers() {
            for d in [PortDir::North, PortDir::South, PortDir::West, PortDir::East] {
                if t.neighbor(RouterId(r), d).is_some() {
                    count += 1;
                }
            }
        }
        assert_eq!(count, t.num_mesh_links());
    }

    #[test]
    fn zero_sized_meshes_rejected() {
        assert_eq!(Topology::mesh(0, 4, 1).unwrap_err(), ConfigError::EmptyMesh);
        assert_eq!(Topology::mesh(4, 0, 1).unwrap_err(), ConfigError::EmptyMesh);
        assert_eq!(Topology::mesh(4, 4, 0).unwrap_err(), ConfigError::NoLocalPorts);
    }
}
