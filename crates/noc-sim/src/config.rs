//! Simulator configuration.

use crate::error::ConfigError;
use crate::topology::{Topology, TopologyKind};

/// Normalization caps used when encoding features into `[0, 1]` for a
/// neural agent (paper §6.2). Raw features are clamped at the cap and then
/// divided by it.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FeatureBounds {
    /// Cap for the payload-size feature, in flits.
    pub max_payload: u32,
    /// Cap for the local-age feature, in cycles.
    pub max_local_age: u64,
    /// Cap for the distance feature, in hops.
    pub max_distance: u32,
    /// Cap for the hop-count feature, in hops.
    pub max_hop_count: u32,
    /// Cap for the in-flight-messages feature.
    pub max_in_flight: u32,
    /// Cap for the inter-arrival-time feature, in cycles.
    pub max_inter_arrival: u64,
}

impl FeatureBounds {
    /// Reasonable defaults for a `width`×`height` mesh: distances and hop
    /// counts bounded by the mesh diameter, ages capped at 64 cycles.
    pub fn for_mesh(width: u16, height: u16) -> Self {
        let diameter = (width as u32 - 1) + (height as u32 - 1);
        FeatureBounds {
            max_payload: 8,
            max_local_age: 64,
            max_distance: diameter.max(1),
            max_hop_count: diameter.max(1),
            max_in_flight: 64,
            max_inter_arrival: 64,
        }
    }

    /// Bounds derived from an arbitrary topology: distances and hop counts
    /// are capped at the graph diameter. On a mesh this is bit-identical to
    /// [`FeatureBounds::for_mesh`] (the mesh diameter *is* the graph
    /// diameter), so threading the topology through changes nothing there.
    pub fn for_topology(topo: &Topology) -> Self {
        let diameter = topo.diameter();
        FeatureBounds {
            max_payload: 8,
            max_local_age: 64,
            max_distance: diameter.max(1),
            max_hop_count: diameter.max(1),
            max_in_flight: 64,
            max_inter_arrival: 64,
        }
    }

    /// Normalizes a raw value against a cap into `[0, 1]`.
    pub fn norm_u64(value: u64, cap: u64) -> f64 {
        if cap == 0 {
            return 0.0;
        }
        (value.min(cap) as f64) / (cap as f64)
    }
}

impl Default for FeatureBounds {
    fn default() -> Self {
        FeatureBounds::for_mesh(8, 8)
    }
}

/// The routing function used by the simulator.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum RoutingKind {
    /// Deterministic dimension-order routing (the paper's configuration).
    #[default]
    XY,
    /// Minimal west-first adaptive routing: packets steer around
    /// congestion using downstream credit occupancy, within the
    /// deadlock-free west-first turn model.
    WestFirstAdaptive,
    /// Dimension-order routing with wraparound on a torus: each dimension
    /// is corrected the short way around its ring (ties go East/South).
    /// Deterministic and minimal; packets never change vnet in flight, so
    /// the existing VC/vnet split keeps message classes separated exactly
    /// as on the mesh.
    TorusDimOrder,
    /// Shortest-way-around traversal on a ring (ties go East).
    RingShortest,
    /// Precomputed shortest-path next-hop table
    /// ([`crate::Topology::next_hop_port`]): deterministic routing on any
    /// connected graph, the only kind that handles degraded topologies.
    TableShortest,
}

impl RoutingKind {
    /// True when the routing function is a pure function of
    /// `(router, destination)` — same packet, same path, every time.
    /// Deterministic routing is what makes per-VC route caching sound and
    /// per-flow in-order delivery checkable (adaptive routing may
    /// legitimately reorder a flow).
    pub fn is_deterministic(self) -> bool {
        !matches!(self, RoutingKind::WestFirstAdaptive)
    }

    /// True when this routing function can run on the given topology
    /// family. Checked at [`crate::Simulator::new`].
    pub fn supports(self, kind: TopologyKind) -> bool {
        match self {
            // Coordinate-order routing needs every in-grid link present;
            // on a torus it simply never uses the wraparound links.
            RoutingKind::XY | RoutingKind::WestFirstAdaptive => {
                matches!(kind, TopologyKind::Mesh | TopologyKind::Torus)
            }
            // Needs wraparound in every dimension it corrects; a ring is a
            // one-row torus as far as dimension-order routing is concerned.
            RoutingKind::TorusDimOrder => {
                matches!(kind, TopologyKind::Torus | TopologyKind::Ring)
            }
            RoutingKind::RingShortest => matches!(kind, TopologyKind::Ring),
            RoutingKind::TableShortest => true,
        }
    }

    /// Stable lowercase name used in labels and error messages.
    pub fn as_str(self) -> &'static str {
        match self {
            RoutingKind::XY => "xy",
            RoutingKind::WestFirstAdaptive => "west-first-adaptive",
            RoutingKind::TorusDimOrder => "torus-dim-order",
            RoutingKind::RingShortest => "ring-shortest",
            RoutingKind::TableShortest => "table-shortest",
        }
    }
}

/// Static configuration of a [`crate::Simulator`].
#[derive(Debug, Clone, PartialEq)]
pub struct SimConfig {
    /// Virtual networks (message classes); each input port has one VC
    /// buffer per vnet. The paper uses 3 for the synthetic study and 7 for
    /// the APU system.
    pub num_vnets: usize,
    /// Capacity of each VC buffer, in flits.
    pub vc_capacity_flits: u32,
    /// Link traversal latency in cycles (head flit, on top of
    /// serialization).
    pub link_latency: u64,
    /// Router pipeline latency in cycles applied to every hop.
    pub router_latency: u64,
    /// Largest packet the configuration may inject, in flits.
    pub max_packet_flits: u32,
    /// Period, in cycles, between refreshes of the accumulated-latency
    /// statistic used by the `acc_latency` reward (paper §6.3).
    pub reward_period: u64,
    /// Feature normalization caps handed to learning arbiters.
    pub feature_bounds: FeatureBounds,
    /// Local age, in cycles, beyond which a buffered packet is counted as
    /// starving in [`crate::SimStats`].
    pub starvation_threshold: u64,
    /// Routing function.
    pub routing: RoutingKind,
}

impl SimConfig {
    /// Configuration used by the paper's synthetic-traffic study (§3.2):
    /// 3 VCs per port, single-cycle links, 2-cycle routers.
    pub fn synthetic(width: u16, height: u16) -> Self {
        SimConfig {
            num_vnets: 3,
            vc_capacity_flits: 8,
            link_latency: 1,
            router_latency: 2,
            max_packet_flits: 5,
            reward_period: 10,
            feature_bounds: FeatureBounds::for_mesh(width, height),
            starvation_threshold: 20_000,
            routing: RoutingKind::XY,
        }
    }

    /// Configuration used by the paper's APU study (§4.1): 7 virtual
    /// networks for the coherence protocol.
    pub fn apu(width: u16, height: u16) -> Self {
        SimConfig {
            num_vnets: 7,
            vc_capacity_flits: 10,
            link_latency: 1,
            router_latency: 2,
            max_packet_flits: 5,
            reward_period: 10,
            feature_bounds: FeatureBounds::for_mesh(width, height),
            starvation_threshold: 20_000,
            routing: RoutingKind::XY,
        }
    }

    /// Validates internal consistency.
    ///
    /// # Errors
    ///
    /// Returns a [`ConfigError`] describing the first violated constraint.
    pub fn validate(&self) -> Result<(), ConfigError> {
        if self.num_vnets == 0 {
            return Err(ConfigError::NoVnets);
        }
        if self.vc_capacity_flits < self.max_packet_flits {
            return Err(ConfigError::BufferTooSmall {
                capacity_flits: self.vc_capacity_flits,
                max_packet_flits: self.max_packet_flits,
            });
        }
        Ok(())
    }
}

impl Default for SimConfig {
    fn default() -> Self {
        SimConfig::synthetic(4, 4)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn presets_are_valid() {
        SimConfig::synthetic(4, 4).validate().unwrap();
        SimConfig::synthetic(8, 8).validate().unwrap();
        SimConfig::apu(8, 8).validate().unwrap();
    }

    #[test]
    fn undersized_buffer_rejected() {
        let c = SimConfig {
            vc_capacity_flits: 3,
            max_packet_flits: 5,
            ..SimConfig::default()
        };
        assert!(matches!(c.validate(), Err(ConfigError::BufferTooSmall { .. })));
    }

    #[test]
    fn zero_vnets_rejected() {
        let c = SimConfig {
            num_vnets: 0,
            ..SimConfig::default()
        };
        assert_eq!(c.validate(), Err(ConfigError::NoVnets));
    }

    #[test]
    fn normalization_clamps_to_unit_interval() {
        assert_eq!(FeatureBounds::norm_u64(200, 64), 1.0);
        assert_eq!(FeatureBounds::norm_u64(32, 64), 0.5);
        assert_eq!(FeatureBounds::norm_u64(5, 0), 0.0);
    }

    #[test]
    fn mesh_bounds_scale_with_diameter() {
        let small = FeatureBounds::for_mesh(4, 4);
        let large = FeatureBounds::for_mesh(8, 8);
        assert_eq!(small.max_distance, 6);
        assert_eq!(large.max_distance, 14);
    }

    /// `for_topology` on a mesh is bit-identical to `for_mesh` — the
    /// guarantee that lets callers thread the topology through without
    /// perturbing mesh results.
    #[test]
    fn topology_bounds_match_mesh_bounds_on_meshes() {
        for (w, h) in [(4u16, 4u16), (8, 8), (5, 3)] {
            let topo = Topology::uniform_mesh(w, h).unwrap();
            assert_eq!(FeatureBounds::for_topology(&topo), FeatureBounds::for_mesh(w, h));
        }
        // And on a torus the wraparound halves the diameter cap.
        let torus = Topology::uniform_torus(8, 8).unwrap();
        assert_eq!(FeatureBounds::for_topology(&torus).max_distance, 8);
    }

    #[test]
    fn determinism_classification() {
        assert!(RoutingKind::XY.is_deterministic());
        assert!(RoutingKind::TorusDimOrder.is_deterministic());
        assert!(RoutingKind::RingShortest.is_deterministic());
        assert!(RoutingKind::TableShortest.is_deterministic());
        assert!(!RoutingKind::WestFirstAdaptive.is_deterministic());
    }

    #[test]
    fn routing_topology_support_matrix() {
        use TopologyKind::*;
        assert!(RoutingKind::XY.supports(Mesh));
        assert!(RoutingKind::XY.supports(Torus));
        assert!(!RoutingKind::XY.supports(Ring));
        assert!(!RoutingKind::XY.supports(Degraded));
        assert!(!RoutingKind::WestFirstAdaptive.supports(Degraded));
        assert!(RoutingKind::TorusDimOrder.supports(Torus));
        assert!(RoutingKind::TorusDimOrder.supports(Ring));
        assert!(!RoutingKind::TorusDimOrder.supports(Mesh));
        assert!(RoutingKind::RingShortest.supports(Ring));
        assert!(!RoutingKind::RingShortest.supports(Torus));
        for k in [Mesh, Torus, Ring, Degraded] {
            assert!(RoutingKind::TableShortest.supports(k));
        }
    }
}
