//! Deterministic fault injection and graceful degradation.
//!
//! A [`FaultPlan`] is pure data: a seed plus a list of [`FaultEvent`]s, each
//! pinning one fault to a `(router, port)` location and a
//! `[onset, onset + duration)` cycle window. Plans are serializable (a small
//! JSON dialect, see [`FaultPlan::to_json`]), content-hashable
//! ([`FaultPlan::hash_hex`]) and can be drawn from a seeded generator
//! ([`FaultPlan::generate`]) so experiment sweeps can dial a single
//! *intensity* knob. The same seed and plan always produce bit-identical
//! simulations.
//!
//! Four fault kinds are modeled (see [`FaultKind`]):
//!
//! * **Transient link faults** — the link accepts flits but corrupts them on
//!   the wire for the duration of the window. A grant attempt during the
//!   window occupies the output port and consumes downstream credit exactly
//!   like a healthy transmission, but the packet stays queued upstream; the
//!   consumed credit is recovered when the reconciliation message round-trips
//!   (see `Simulator`'s credit-return arrivals), and the upstream buffer
//!   backs off with bounded exponential retry ([`RETRY_BACKOFF_BASE`] /
//!   [`RETRY_BACKOFF_CAP`]).
//! * **Persistent link-down faults** — the link advertises zero credit for
//!   the window; nothing is granted toward it.
//! * **Router stalls** — the router's arbitration pipeline freezes for the
//!   window. Arrivals still land and credits are conserved, so neighbours
//!   back-pressure instead of wedging.
//! * **VC-buffer shrinkage** — the input VC buffers of one port lose
//!   capacity for the window (RACE-style buffer pressure), squeezing the
//!   credit the upstream router can see.
//!
//! A starvation watchdog (period [`WATCHDOG_PERIOD`]) scans buffered heads
//! and surfaces per-port wedge detection into
//! [`SimStats`](crate::SimStats::wedged_ports) instead of letting a faulty
//! run hang silently.

use crate::rng::SplitMix64;
use crate::topology::Topology;
use crate::types::{PortDir, RouterId};

/// First retry delay, in cycles, after a grant is lost to a transient link
/// fault. Each further loss doubles the delay up to [`RETRY_BACKOFF_CAP`].
pub const RETRY_BACKOFF_BASE: u64 = 4;

/// Upper bound, in cycles, on the transient-fault retry backoff. A bounded
/// cap guarantees a held buffer re-enters arbitration within a fixed window,
/// so retry loops cannot become infinite waits.
pub const RETRY_BACKOFF_CAP: u64 = 256;

/// Period, in cycles, of the starvation watchdog scan that runs while a
/// fault plan is installed.
pub const WATCHDOG_PERIOD: u64 = 1024;

/// The kind of one injected fault.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultKind {
    /// The link behind an output port corrupts flits on the wire: grants
    /// are attempted, consume bandwidth and downstream credit, and fail.
    TransientLink,
    /// The link behind an output port is down: it advertises no credit and
    /// nothing is granted toward it.
    LinkDown,
    /// The router's arbitration pipeline is frozen (the event's `port`
    /// field is ignored).
    RouterStall,
    /// The input VC buffers of one port shrink by `flits` flits of
    /// capacity.
    VcShrink {
        /// Capacity removed from each VC buffer of the port, in flits.
        flits: u32,
    },
}

impl FaultKind {
    /// Stable string tag used by the JSON serialization.
    pub fn tag(&self) -> &'static str {
        match self {
            FaultKind::TransientLink => "transient_link",
            FaultKind::LinkDown => "link_down",
            FaultKind::RouterStall => "router_stall",
            FaultKind::VcShrink { .. } => "vc_shrink",
        }
    }
}

/// One fault pinned to a location and a cycle window.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FaultEvent {
    /// What goes wrong.
    pub kind: FaultKind,
    /// Index of the afflicted router.
    pub router: usize,
    /// Port the fault applies to: the *output* port for link faults, the
    /// *input* port for [`FaultKind::VcShrink`]; ignored for
    /// [`FaultKind::RouterStall`].
    pub port: usize,
    /// First cycle the fault is active.
    pub onset: u64,
    /// Number of cycles the fault stays active.
    pub duration: u64,
}

impl FaultEvent {
    /// First cycle after the fault window (`onset + duration`, saturating).
    pub fn end(&self) -> u64 {
        self.onset.saturating_add(self.duration)
    }

    /// Whether the fault is active at `cycle`.
    pub fn active(&self, cycle: u64) -> bool {
        self.onset <= cycle && cycle < self.end()
    }
}

/// A deterministic fault-injection plan: pure data, safe to hash, store and
/// replay. An empty plan is behaviourally identical to no plan at all.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct FaultPlan {
    /// Seed the plan was generated from (carried for provenance; replaying
    /// a plan never draws random numbers).
    pub seed: u64,
    /// The injected faults.
    pub events: Vec<FaultEvent>,
}

impl FaultPlan {
    /// An empty (fault-free) plan carrying `seed` for provenance.
    pub fn empty(seed: u64) -> Self {
        FaultPlan {
            seed,
            events: Vec::new(),
        }
    }

    /// True when the plan injects nothing.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Draws a random plan for `topo` from a seed and an intensity knob in
    /// `[0, 1]`: the number of faults scales with
    /// `intensity × topo.num_links()`, onsets land in the first half of
    /// `horizon`, and durations are fractions of `horizon`. Intensity `0.0`
    /// yields an empty plan. Fully deterministic in `(seed, intensity,
    /// topo, horizon)`. Faults are drawn against the topology's real link
    /// set — on a torus the wraparound links are eligible, and on a
    /// degraded mesh removed links are never drawn.
    pub fn generate(seed: u64, intensity: f64, topo: &Topology, horizon: u64) -> Self {
        let intensity = intensity.clamp(0.0, 1.0);
        let n = (intensity * topo.num_links() as f64).round() as usize;
        let horizon = horizon.max(64);
        let mut rng = SplitMix64::new(seed ^ 0xFAB1_7CA5_E5EE_D000);
        let dirs = [PortDir::North, PortDir::South, PortDir::West, PortDir::East];
        let mut events = Vec::with_capacity(n);
        for _ in 0..n {
            // Pick a connected link (every router in a connected >1-router
            // graph has at least one neighbour, so this terminates).
            let (router, port) = loop {
                let r = RouterId(rng.next_bounded(topo.num_routers() as u64) as usize);
                let d = dirs[rng.next_bounded(4) as usize];
                if topo.neighbor(r, d).is_some() {
                    break (r.index(), topo.port_index(d));
                }
            };
            let onset = rng.next_bounded(horizon / 2 + 1);
            let roll = rng.next_f64();
            let (kind, port, duration) = if roll < 0.5 {
                (
                    FaultKind::TransientLink,
                    port,
                    horizon / 8 + rng.next_bounded(horizon / 8 + 1),
                )
            } else if roll < 0.7 {
                (
                    FaultKind::LinkDown,
                    port,
                    horizon / 16 + rng.next_bounded(horizon / 8 + 1),
                )
            } else if roll < 0.85 {
                (
                    FaultKind::RouterStall,
                    0,
                    horizon / 32 + rng.next_bounded(horizon / 16 + 1),
                )
            } else {
                (
                    FaultKind::VcShrink {
                        flits: 1 + rng.next_bounded(4) as u32,
                    },
                    port,
                    horizon / 8 + rng.next_bounded(horizon / 4 + 1),
                )
            };
            events.push(FaultEvent {
                kind,
                router,
                port,
                onset,
                duration,
            });
        }
        FaultPlan { seed, events }
    }

    /// Returns the plan with every onset shifted `delta` cycles later
    /// (saturating). Used by experiment drivers that generate a plan over
    /// a measurement window and then push it past a warm-up period, so
    /// fault episodes begin only after the latency baseline has
    /// converged.
    #[must_use]
    pub fn delayed(mut self, delta: u64) -> Self {
        for ev in &mut self.events {
            ev.onset = ev.onset.saturating_add(delta);
        }
        self
    }

    /// Checks every event against a topology: routers and ports in range,
    /// link faults on directional ports only, and only on links the graph
    /// actually has (a removed or edge port has no link to fault).
    ///
    /// # Errors
    ///
    /// Returns a description of the first invalid event.
    pub fn validate(&self, topo: &Topology) -> Result<(), String> {
        let ports = topo.ports_per_router();
        for (i, ev) in self.events.iter().enumerate() {
            if ev.router >= topo.num_routers() {
                return Err(format!(
                    "fault event {i}: router {} out of range ({} routers)",
                    ev.router,
                    topo.num_routers()
                ));
            }
            if ev.port >= ports {
                return Err(format!(
                    "fault event {i}: port {} out of range ({ports} ports)",
                    ev.port
                ));
            }
            let link_fault =
                matches!(ev.kind, FaultKind::TransientLink | FaultKind::LinkDown);
            if link_fault {
                let dir = topo.port_dir(ev.port);
                if dir.is_local() {
                    return Err(format!(
                        "fault event {i}: link fault on local port {}",
                        ev.port
                    ));
                }
                if topo.neighbor(RouterId(ev.router), dir).is_none() {
                    return Err(format!(
                        "fault event {i}: link fault on disconnected port {} of router {}",
                        ev.port, ev.router
                    ));
                }
            }
        }
        Ok(())
    }

    /// 64-bit FNV-1a content hash of the plan, as 16 hex digits. Recorded
    /// per experiment cell so results are traceable to the exact plan.
    pub fn hash_hex(&self) -> String {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in format!("{self:?}").bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x0000_0100_0000_01B3);
        }
        format!("{h:016x}")
    }

    /// Serializes the plan to its canonical JSON form:
    ///
    /// ```json
    /// {
    ///   "seed": 42,
    ///   "events": [
    ///     { "kind": "transient_link", "router": 1, "port": 3, "onset": 10, "duration": 100 },
    ///     { "kind": "vc_shrink", "router": 2, "port": 0, "onset": 0, "duration": 50, "flits": 4 }
    ///   ]
    /// }
    /// ```
    pub fn to_json(&self) -> String {
        let mut out = String::new();
        out.push_str("{\n");
        out.push_str(&format!("  \"seed\": {},\n", self.seed));
        out.push_str("  \"events\": [");
        for (i, ev) in self.events.iter().enumerate() {
            out.push_str(if i == 0 { "\n" } else { ",\n" });
            out.push_str(&format!(
                "    {{ \"kind\": \"{}\", \"router\": {}, \"port\": {}, \"onset\": {}, \"duration\": {}",
                ev.kind.tag(),
                ev.router,
                ev.port,
                ev.onset,
                ev.duration
            ));
            if let FaultKind::VcShrink { flits } = ev.kind {
                out.push_str(&format!(", \"flits\": {flits}"));
            }
            out.push_str(" }");
        }
        if !self.events.is_empty() {
            out.push_str("\n  ");
        }
        out.push_str("]\n}\n");
        out
    }

    /// Parses a plan from the JSON form written by [`FaultPlan::to_json`]
    /// (whitespace-insensitive; object keys may appear in any order).
    ///
    /// # Errors
    ///
    /// Returns a description of the first syntax or schema problem.
    pub fn from_json(text: &str) -> Result<Self, String> {
        Self::from_value(&json::parse(text)?)
    }

    /// Parses a plan from an already-parsed JSON value — the simulator
    /// checkpoint embeds the plan as a nested object inside its own
    /// document, so the codec must not have to re-serialize it first.
    pub(crate) fn from_value(v: &json::Value) -> Result<Self, String> {
        let obj = v.as_obj("plan")?;
        let seed = json::get(obj, "seed")?.as_u64("seed")?;
        let mut events = Vec::new();
        for (i, item) in json::get(obj, "events")?.as_arr("events")?.iter().enumerate() {
            let e = item.as_obj(&format!("events[{i}]"))?;
            let tag = json::get(e, "kind")?.as_str("kind")?;
            let kind = match tag {
                "transient_link" => FaultKind::TransientLink,
                "link_down" => FaultKind::LinkDown,
                "router_stall" => FaultKind::RouterStall,
                "vc_shrink" => FaultKind::VcShrink {
                    flits: json::get(e, "flits")?.as_u64("flits")? as u32,
                },
                other => return Err(format!("unknown fault kind \"{other}\"")),
            };
            events.push(FaultEvent {
                kind,
                router: json::get(e, "router")?.as_u64("router")? as usize,
                port: json::get(e, "port")?.as_u64("port")? as usize,
                onset: json::get(e, "onset")?.as_u64("onset")?,
                duration: json::get(e, "duration")?.as_u64("duration")?,
            });
        }
        Ok(FaultPlan { seed, events })
    }
}

/// Minimal JSON reader for the fault-plan dialect: objects, arrays,
/// strings without escapes, and unsigned integers — exactly what
/// [`FaultPlan::to_json`] emits. Crate-visible because the simulator
/// checkpoint codec (`crate::checkpoint`) speaks the same dialect.
pub(crate) mod json {
    pub(crate) enum Value {
        Num(u64),
        Str(String),
        Arr(Vec<Value>),
        Obj(Vec<(String, Value)>),
    }

    impl Value {
        pub(crate) fn as_u64(&self, what: &str) -> Result<u64, String> {
            match self {
                Value::Num(n) => Ok(*n),
                _ => Err(format!("\"{what}\" must be an unsigned integer")),
            }
        }

        pub(crate) fn as_str(&self, what: &str) -> Result<&str, String> {
            match self {
                Value::Str(s) => Ok(s),
                _ => Err(format!("\"{what}\" must be a string")),
            }
        }

        pub(crate) fn as_arr(&self, what: &str) -> Result<&[Value], String> {
            match self {
                Value::Arr(a) => Ok(a),
                _ => Err(format!("\"{what}\" must be an array")),
            }
        }

        pub(crate) fn as_obj(&self, what: &str) -> Result<&[(String, Value)], String> {
            match self {
                Value::Obj(o) => Ok(o),
                _ => Err(format!("{what} must be an object")),
            }
        }
    }

    pub(crate) fn get<'a>(
        obj: &'a [(String, Value)],
        key: &str,
    ) -> Result<&'a Value, String> {
        obj.iter()
            .find(|(k, _)| k == key)
            .map(|(_, v)| v)
            .ok_or_else(|| format!("missing key \"{key}\""))
    }

    pub(crate) fn parse(text: &str) -> Result<Value, String> {
        let b = text.as_bytes();
        let mut pos = 0;
        let v = value(b, &mut pos)?;
        skip_ws(b, &mut pos);
        if pos != b.len() {
            return Err(format!("trailing characters at byte {pos}"));
        }
        Ok(v)
    }

    fn skip_ws(b: &[u8], pos: &mut usize) {
        while *pos < b.len() && b[*pos].is_ascii_whitespace() {
            *pos += 1;
        }
    }

    fn expect(b: &[u8], pos: &mut usize, ch: u8) -> Result<(), String> {
        skip_ws(b, pos);
        if b.get(*pos) == Some(&ch) {
            *pos += 1;
            Ok(())
        } else {
            Err(format!("expected '{}' at byte {}", ch as char, *pos))
        }
    }

    fn string(b: &[u8], pos: &mut usize) -> Result<String, String> {
        expect(b, pos, b'"')?;
        let start = *pos;
        while *pos < b.len() && b[*pos] != b'"' {
            if b[*pos] == b'\\' {
                return Err(format!("escape sequences unsupported at byte {}", *pos));
            }
            *pos += 1;
        }
        if *pos >= b.len() {
            return Err("unterminated string".into());
        }
        let s = std::str::from_utf8(&b[start..*pos])
            .map_err(|_| "invalid UTF-8 in string".to_string())?
            .to_string();
        *pos += 1;
        Ok(s)
    }

    fn value(b: &[u8], pos: &mut usize) -> Result<Value, String> {
        skip_ws(b, pos);
        match b.get(*pos) {
            Some(b'{') => {
                *pos += 1;
                let mut fields = Vec::new();
                skip_ws(b, pos);
                if b.get(*pos) == Some(&b'}') {
                    *pos += 1;
                    return Ok(Value::Obj(fields));
                }
                loop {
                    let key = string(b, pos)?;
                    expect(b, pos, b':')?;
                    fields.push((key, value(b, pos)?));
                    skip_ws(b, pos);
                    match b.get(*pos) {
                        Some(b',') => *pos += 1,
                        Some(b'}') => {
                            *pos += 1;
                            return Ok(Value::Obj(fields));
                        }
                        _ => return Err(format!("expected ',' or '}}' at byte {}", *pos)),
                    }
                }
            }
            Some(b'[') => {
                *pos += 1;
                let mut items = Vec::new();
                skip_ws(b, pos);
                if b.get(*pos) == Some(&b']') {
                    *pos += 1;
                    return Ok(Value::Arr(items));
                }
                loop {
                    items.push(value(b, pos)?);
                    skip_ws(b, pos);
                    match b.get(*pos) {
                        Some(b',') => *pos += 1,
                        Some(b']') => {
                            *pos += 1;
                            return Ok(Value::Arr(items));
                        }
                        _ => return Err(format!("expected ',' or ']' at byte {}", *pos)),
                    }
                }
            }
            Some(b'"') => Ok(Value::Str(string(b, pos)?)),
            Some(c) if c.is_ascii_digit() => {
                let start = *pos;
                while *pos < b.len() && b[*pos].is_ascii_digit() {
                    *pos += 1;
                }
                let s = std::str::from_utf8(&b[start..*pos]).unwrap();
                s.parse::<u64>()
                    .map(Value::Num)
                    .map_err(|e| format!("bad number \"{s}\": {e}"))
            }
            _ => Err(format!("unexpected input at byte {}", *pos)),
        }
    }
}

/// Precomputed per-location fault timelines plus the mutable retry state,
/// built once from a [`FaultPlan`] when it is installed on a simulator.
#[derive(Debug, Clone)]
pub(crate) struct FaultRuntime {
    plan: FaultPlan,
    /// `transient[router * ports + port]` — transient-fault windows.
    transient: Vec<Vec<(u64, u64)>>,
    /// `down[router * ports + port]` — link-down windows.
    down: Vec<Vec<(u64, u64)>>,
    /// `stall[router]` — router-stall windows.
    stall: Vec<Vec<(u64, u64)>>,
    /// `hold_until[buf_slot]` — cycle a buffer may re-enter arbitration.
    hold_until: Vec<u64>,
    /// `retry_count[buf_slot]` — consecutive transient-fault losses.
    retry_count: Vec<u32>,
    ports: usize,
    vnets: usize,
}

impl FaultRuntime {
    /// Builds the runtime tables. The plan must pass
    /// [`FaultPlan::validate`] for `topo`.
    ///
    /// # Panics
    ///
    /// Panics if the plan is invalid for the topology.
    pub(crate) fn new(plan: &FaultPlan, topo: &Topology, num_vnets: usize) -> Self {
        if let Err(e) = plan.validate(topo) {
            panic!("invalid fault plan: {e}");
        }
        let ports = topo.ports_per_router();
        let nr = topo.num_routers();
        let mut transient = vec![Vec::new(); nr * ports];
        let mut down = vec![Vec::new(); nr * ports];
        let mut stall = vec![Vec::new(); nr];
        for ev in &plan.events {
            let window = (ev.onset, ev.end());
            match ev.kind {
                FaultKind::TransientLink => transient[ev.router * ports + ev.port].push(window),
                FaultKind::LinkDown => down[ev.router * ports + ev.port].push(window),
                FaultKind::RouterStall => stall[ev.router].push(window),
                FaultKind::VcShrink { .. } => {} // applied via boundary scans
            }
        }
        FaultRuntime {
            plan: plan.clone(),
            transient,
            down,
            stall,
            hold_until: vec![0; nr * ports * num_vnets],
            retry_count: vec![0; nr * ports * num_vnets],
            ports,
            vnets: num_vnets,
        }
    }

    /// The plan the runtime was built from (for checkpointing: the
    /// timeline tables are pure functions of the plan and are rebuilt on
    /// restore).
    pub(crate) fn plan(&self) -> &FaultPlan {
        &self.plan
    }

    /// The mutable retry state as `(hold_until, retry_count)` slices, in
    /// buffer-slot order.
    pub(crate) fn retry_state(&self) -> (&[u64], &[u32]) {
        (&self.hold_until, &self.retry_count)
    }

    /// Overwrites the mutable retry state from a checkpoint.
    pub(crate) fn restore_retry_state(
        &mut self,
        hold_until: Vec<u64>,
        retry_count: Vec<u32>,
    ) -> Result<(), String> {
        if hold_until.len() != self.hold_until.len() || retry_count.len() != self.retry_count.len()
        {
            return Err(format!(
                "fault retry state shape mismatch: got {}/{} slots, runtime has {}",
                hold_until.len(),
                retry_count.len(),
                self.hold_until.len()
            ));
        }
        self.hold_until = hold_until;
        self.retry_count = retry_count;
        Ok(())
    }

    fn active(windows: &[(u64, u64)], cycle: u64) -> bool {
        windows.iter().any(|&(s, e)| s <= cycle && cycle < e)
    }

    fn buf_slot(&self, router: RouterId, in_port: usize, vnet: usize) -> usize {
        (router.index() * self.ports + in_port) * self.vnets + vnet
    }

    /// The link behind `(router, out_port)` corrupts flits at `cycle`.
    pub(crate) fn transient_active(&self, router: RouterId, out_port: usize, cycle: u64) -> bool {
        Self::active(&self.transient[router.index() * self.ports + out_port], cycle)
    }

    /// The link behind `(router, out_port)` is down at `cycle`.
    pub(crate) fn link_down(&self, router: RouterId, out_port: usize, cycle: u64) -> bool {
        Self::active(&self.down[router.index() * self.ports + out_port], cycle)
    }

    /// The link behind `(router, out_port)` is degraded (transient or down)
    /// at `cycle` — the bit surfaced to arbiters as
    /// [`Candidate::port_degraded`](crate::Candidate::port_degraded).
    pub(crate) fn link_degraded(&self, router: RouterId, out_port: usize, cycle: u64) -> bool {
        self.transient_active(router, out_port, cycle) || self.link_down(router, out_port, cycle)
    }

    /// The router's arbitration pipeline is stalled at `cycle`.
    pub(crate) fn router_stalled(&self, router: usize, cycle: u64) -> bool {
        Self::active(&self.stall[router], cycle)
    }

    /// The buffer is in retry backoff and must sit out this cycle.
    pub(crate) fn held(&self, router: RouterId, in_port: usize, vnet: usize, cycle: u64) -> bool {
        self.hold_until[self.buf_slot(router, in_port, vnet)] > cycle
    }

    /// Records a transient-fault loss for the buffer and arms its bounded
    /// exponential backoff.
    pub(crate) fn bump_retry(&mut self, router: RouterId, in_port: usize, vnet: usize, cycle: u64) {
        let slot = self.buf_slot(router, in_port, vnet);
        let shift = self.retry_count[slot].min(6);
        let backoff = (RETRY_BACKOFF_BASE << shift).min(RETRY_BACKOFF_CAP);
        self.retry_count[slot] = self.retry_count[slot].saturating_add(1);
        self.hold_until[slot] = cycle + backoff;
    }

    /// Clears the buffer's retry state after a successful grant.
    pub(crate) fn clear_retry(&mut self, router: RouterId, in_port: usize, vnet: usize) {
        let slot = self.buf_slot(router, in_port, vnet);
        self.hold_until[slot] = 0;
        self.retry_count[slot] = 0;
    }

    /// Reports VC-shrink capacity changes crossing `cycle`:
    /// `f(router, port, new_shrink_flits)` fires at each window onset (with
    /// the shrink amount) and end (with `0`).
    pub(crate) fn shrink_updates(&self, cycle: u64, mut f: impl FnMut(usize, usize, u32)) {
        for ev in &self.plan.events {
            if let FaultKind::VcShrink { flits } = ev.kind {
                if ev.onset == cycle {
                    f(ev.router, ev.port, flits);
                } else if ev.end() == cycle {
                    f(ev.router, ev.port, 0);
                }
            }
        }
    }

    /// Whether the starvation watchdog scan is due at `cycle`.
    pub(crate) fn watchdog_due(&self, cycle: u64) -> bool {
        cycle > 0 && cycle.is_multiple_of(WATCHDOG_PERIOD)
    }

    /// Whether any planned fault event (of any kind) is active at `cycle`.
    /// Drives the recovery-episode accounting in the simulator: a rising
    /// edge is a fault onset, a falling edge starts the recovery clock.
    pub(crate) fn any_active(&self, cycle: u64) -> bool {
        self.plan.events.iter().any(|ev| ev.active(cycle))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Golden seed-stability pin: `FaultPlan::generate` is part of the
    /// named-RNG-stream contract (see the pins in `rng.rs`) — the
    /// resilience figures and the conformance sweep key their results on
    /// the plan hash, so a refactor that reorders draws must fail here,
    /// not silently shift every fault experiment.
    #[test]
    fn generated_plans_are_pinned_by_seed() {
        let topo = crate::Topology::uniform_mesh(4, 4).unwrap();
        let p = FaultPlan::generate(42, 0.5, &topo, 10_000);
        assert_eq!(p.events.len(), 24);
        assert_eq!(p.hash_hex(), "4e84da641922fd49");
        let p = FaultPlan::generate(7, 1.0, &topo, 10_000);
        assert_eq!(p.events.len(), 48);
        assert_eq!(p.hash_hex(), "d7ad7194f68e9b98");
    }

    fn plan_with_all_kinds() -> FaultPlan {
        FaultPlan {
            seed: 7,
            events: vec![
                FaultEvent {
                    kind: FaultKind::TransientLink,
                    router: 1,
                    port: 4,
                    onset: 10,
                    duration: 100,
                },
                FaultEvent {
                    kind: FaultKind::LinkDown,
                    router: 2,
                    port: 2,
                    onset: 0,
                    duration: 50,
                },
                FaultEvent {
                    kind: FaultKind::RouterStall,
                    router: 3,
                    port: 0,
                    onset: 20,
                    duration: 30,
                },
                FaultEvent {
                    kind: FaultKind::VcShrink { flits: 4 },
                    router: 0,
                    port: 0,
                    onset: 5,
                    duration: 40,
                },
            ],
        }
    }

    #[test]
    fn json_roundtrip_is_exact() {
        let plan = plan_with_all_kinds();
        let json = plan.to_json();
        let back = FaultPlan::from_json(&json).unwrap();
        assert_eq!(back, plan);
        // Serialize → parse → serialize is a fixpoint.
        assert_eq!(back.to_json(), json);
    }

    #[test]
    fn empty_plan_roundtrips() {
        let plan = FaultPlan::empty(99);
        let back = FaultPlan::from_json(&plan.to_json()).unwrap();
        assert_eq!(back, plan);
        assert!(back.is_empty());
    }

    #[test]
    fn parser_accepts_reordered_keys_and_whitespace() {
        let text = r#"
            { "events": [ { "duration": 9, "onset": 1, "port": 4,
                            "router": 0, "kind": "transient_link" } ],
              "seed": 3 }
        "#;
        let plan = FaultPlan::from_json(text).unwrap();
        assert_eq!(plan.seed, 3);
        assert_eq!(plan.events.len(), 1);
        assert_eq!(plan.events[0].kind, FaultKind::TransientLink);
        assert_eq!(plan.events[0].end(), 10);
    }

    #[test]
    fn parser_rejects_garbage() {
        assert!(FaultPlan::from_json("{").is_err());
        assert!(FaultPlan::from_json("{}").is_err()); // missing keys
        assert!(FaultPlan::from_json(
            r#"{ "seed": 1, "events": [ { "kind": "gremlin", "router": 0, "port": 4, "onset": 0, "duration": 1 } ] }"#
        )
        .is_err());
        // vc_shrink without its flits field.
        assert!(FaultPlan::from_json(
            r#"{ "seed": 1, "events": [ { "kind": "vc_shrink", "router": 0, "port": 0, "onset": 0, "duration": 1 } ] }"#
        )
        .is_err());
    }

    #[test]
    fn generation_is_deterministic_and_scales_with_intensity() {
        let topo = Topology::uniform_mesh(4, 4).unwrap();
        let a = FaultPlan::generate(11, 0.5, &topo, 10_000);
        let b = FaultPlan::generate(11, 0.5, &topo, 10_000);
        assert_eq!(a, b);
        assert_eq!(a.events.len(), (0.5 * topo.num_links() as f64).round() as usize);
        assert!(FaultPlan::generate(11, 0.0, &topo, 10_000).is_empty());
        let full = FaultPlan::generate(11, 1.0, &topo, 10_000);
        assert_eq!(full.events.len(), topo.num_links());
        full.validate(&topo).unwrap();
    }

    /// Plans drawn against non-mesh graphs stay inside the real link set:
    /// torus plans may fault wraparound links, degraded-mesh plans never
    /// fault a removed link, and both validate cleanly.
    #[test]
    fn generation_respects_the_graph_link_set() {
        let torus = Topology::uniform_torus(4, 4).unwrap();
        let plan = FaultPlan::generate(3, 1.0, &torus, 10_000);
        assert_eq!(plan.events.len(), torus.num_links());
        plan.validate(&torus).unwrap();

        let degraded = Topology::uniform_degraded_mesh(4, 4, 9, 0.25).unwrap();
        let plan = FaultPlan::generate(3, 1.0, &degraded, 10_000);
        assert_eq!(plan.events.len(), degraded.num_links());
        plan.validate(&degraded).unwrap();
        // A degraded plan is NOT valid against its own link removals being
        // undone the other way: faulting a port the graph dropped fails.
        let mesh = Topology::uniform_mesh(4, 4).unwrap();
        let mesh_plan = FaultPlan::generate(3, 1.0, &mesh, 10_000);
        assert!(mesh_plan.validate(&degraded).is_err());
    }

    #[test]
    fn hash_distinguishes_plans() {
        let topo = Topology::uniform_mesh(4, 4).unwrap();
        let a = FaultPlan::generate(1, 0.5, &topo, 1_000);
        let b = FaultPlan::generate(2, 0.5, &topo, 1_000);
        assert_eq!(a.hash_hex().len(), 16);
        assert_ne!(a.hash_hex(), b.hash_hex());
        assert_eq!(a.hash_hex(), a.clone().hash_hex());
    }

    #[test]
    fn validate_flags_bad_events() {
        let topo = Topology::uniform_mesh(2, 2).unwrap();
        let mut plan = FaultPlan::empty(0);
        plan.events.push(FaultEvent {
            kind: FaultKind::TransientLink,
            router: 99,
            port: 4,
            onset: 0,
            duration: 1,
        });
        assert!(plan.validate(&topo).is_err());
        plan.events[0].router = 0;
        plan.events[0].port = 0; // local port: invalid for a link fault
        assert!(plan.validate(&topo).is_err());
        plan.events[0].kind = FaultKind::VcShrink { flits: 2 };
        plan.validate(&topo).unwrap(); // shrink on a local port is fine
    }

    #[test]
    fn runtime_windows_and_backoff() {
        let topo = Topology::uniform_mesh(4, 4).unwrap();
        let plan = plan_with_all_kinds();
        let mut rt = FaultRuntime::new(&plan, &topo, 3);
        assert!(rt.transient_active(RouterId(1), 4, 10));
        assert!(rt.transient_active(RouterId(1), 4, 109));
        assert!(!rt.transient_active(RouterId(1), 4, 110));
        assert!(rt.link_down(RouterId(2), 2, 0));
        assert!(!rt.link_down(RouterId(2), 2, 50));
        assert!(rt.router_stalled(3, 25));
        assert!(!rt.router_stalled(3, 19));
        assert!(rt.link_degraded(RouterId(1), 4, 50));

        // Backoff: base, doubling, capped; cleared on success.
        assert!(!rt.held(RouterId(1), 2, 0, 100));
        rt.bump_retry(RouterId(1), 2, 0, 100);
        assert!(rt.held(RouterId(1), 2, 0, 100 + RETRY_BACKOFF_BASE - 1));
        assert!(!rt.held(RouterId(1), 2, 0, 100 + RETRY_BACKOFF_BASE));
        for _ in 0..20 {
            rt.bump_retry(RouterId(1), 2, 0, 200);
        }
        // Bounded: even after many losses the hold never exceeds the cap.
        assert!(!rt.held(RouterId(1), 2, 0, 200 + RETRY_BACKOFF_CAP));
        rt.clear_retry(RouterId(1), 2, 0);
        assert!(!rt.held(RouterId(1), 2, 0, 200));
    }

    #[test]
    fn shrink_updates_fire_at_boundaries() {
        let topo = Topology::uniform_mesh(4, 4).unwrap();
        let rt = FaultRuntime::new(&plan_with_all_kinds(), &topo, 3);
        let mut seen = Vec::new();
        rt.shrink_updates(5, |r, p, s| seen.push((r, p, s)));
        assert_eq!(seen, vec![(0, 0, 4)]);
        seen.clear();
        rt.shrink_updates(45, |r, p, s| seen.push((r, p, s)));
        assert_eq!(seen, vec![(0, 0, 0)]);
        seen.clear();
        rt.shrink_updates(30, |r, p, s| seen.push((r, p, s)));
        assert!(seen.is_empty());
    }
}
