//! The VC buffer-control decision point: a pluggable policy that
//! reallocates per-VC credit budgets at a fixed control epoch.
//!
//! This is the simulator's second learned decision point, beside
//! arbitration ([`crate::Arbiter`]). Where an arbiter picks *which* buffered
//! packet wins an output port each cycle, a [`BufferController`] decides
//! *how much credit* each input VC advertises upstream, by withholding part
//! of its capacity — the same actuation path as the RACE-style VC-shrink
//! fault machinery ([`crate::FaultKind::VcShrink`]).
//!
//! ## Safety by construction
//!
//! A controller can only *request* withholds; the simulator clamps every
//! request so that the combined squeeze (fault shrink + controller
//! withhold) always leaves at least `max_packet_flits` of advertiseable
//! capacity beyond whatever the fault plan itself takes. The controller
//! never touches the credit books directly, so it is provably unable to
//! corrupt occupancy accounting: the invariant checker's
//! occupancy-integrity and buffer-overflow checks
//! ([`crate::ViolationKind::OccupancyMismatch`] /
//! [`crate::ViolationKind::BufferOverflow`]) audit raw `used`/`reserved`
//! counters against raw capacity, which no withhold can alter. A
//! checked run with any controller installed must stay violation-free;
//! the conformance sweep pins this.

/// One VC buffer's telemetry, handed to the controller each control epoch.
///
/// Indexed like every flat buffer array in the simulator:
/// `(router * ports + port) * vnets + vnet`.
#[derive(Debug, Clone, Copy, Default)]
pub struct VcUsage {
    /// Flits currently occupied by buffered packets.
    pub used: u32,
    /// Flits reserved for in-flight packets not yet arrived.
    pub reserved: u32,
    /// Capacity currently disabled by the *fault plan* (not the
    /// controller's own withhold).
    pub fault_shrink: u32,
    /// Raw buffer capacity in flits.
    pub capacity: u32,
}

/// A VC buffer-allocation policy, consulted once per control epoch.
///
/// Implementations are installed with
/// [`crate::Simulator::set_buffer_controller`] and follow the same
/// checkpoint contract as [`crate::Arbiter`]: stateless controllers
/// checkpoint for free via the defaults; stateful ones serialize their
/// mutable state (and nothing construction-time) as an opaque string.
pub trait BufferController {
    /// Stable display name, recorded in checkpoints and cross-checked on
    /// restore. Must stay within the checkpoint codec's clean-string
    /// subset (no quotes, backslashes, or control characters).
    fn name(&self) -> String;

    /// Control epoch in cycles: [`BufferController::reallocate`] runs at
    /// every cycle that is a multiple of this period (values below 1 are
    /// treated as 1).
    fn control_epoch(&self) -> u64;

    /// Proposes the per-VC credit withhold for the next epoch.
    ///
    /// `usage[bi]` is the current telemetry of flat buffer `bi`;
    /// `withhold[bi]` starts zeroed and receives the proposed withhold in
    /// flits. Proposals are clamped by the simulator (see the module
    /// docs) before actuation — a controller may request anything.
    fn reallocate(&mut self, cycle: u64, usage: &[VcUsage], withhold: &mut [u32]);

    /// Serializes the controller's mutable state for a checkpoint, or
    /// `None` if this controller cannot be checkpointed. Stateless
    /// controllers inherit `Some("")`.
    fn checkpoint_state(&self) -> Option<String> {
        Some(String::new())
    }

    /// Restores mutable state serialized by
    /// [`BufferController::checkpoint_state`]. The default accepts only
    /// the stateless empty string.
    ///
    /// # Errors
    ///
    /// Returns a description of a malformed or mismatched state string.
    fn restore_state(&mut self, state: &str) -> Result<(), String> {
        if state.is_empty() {
            Ok(())
        } else {
            Err(format!(
                "controller '{}' has no state to restore, got {state:?}",
                self.name()
            ))
        }
    }
}

impl std::fmt::Debug for dyn BufferController {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "BufferController({})", self.name())
    }
}

/// Clamps a controller's requested withhold for one VC: the combined
/// squeeze (fault shrink + withhold) must leave at least
/// `max_packet_flits` of advertiseable capacity beyond what the fault
/// plan already takes, so the controller alone can never wedge a buffer.
pub(crate) fn clamp_withhold(
    want: u32,
    fault_shrink: u32,
    capacity: u32,
    max_packet_flits: u32,
) -> u32 {
    want.min(
        capacity
            .saturating_sub(fault_shrink)
            .saturating_sub(max_packet_flits),
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn clamp_preserves_packet_headroom() {
        // capacity 8, max packet 5: at most 3 flits may ever be withheld.
        assert_eq!(clamp_withhold(0, 0, 8, 5), 0);
        assert_eq!(clamp_withhold(2, 0, 8, 5), 2);
        assert_eq!(clamp_withhold(3, 0, 8, 5), 3);
        assert_eq!(clamp_withhold(4, 0, 8, 5), 3);
        assert_eq!(clamp_withhold(u32::MAX, 0, 8, 5), 3);
    }

    #[test]
    fn clamp_yields_to_fault_shrink() {
        // A fault already shrinking 2 flits leaves 1 flit of slack.
        assert_eq!(clamp_withhold(3, 2, 8, 5), 1);
        // A fault eating the whole slack (or more) zeroes the withhold.
        assert_eq!(clamp_withhold(3, 3, 8, 5), 0);
        assert_eq!(clamp_withhold(3, 100, 8, 5), 0);
    }

    #[test]
    fn default_checkpoint_contract_is_stateless() {
        struct Nop;
        impl BufferController for Nop {
            fn name(&self) -> String {
                "nop".into()
            }
            fn control_epoch(&self) -> u64 {
                64
            }
            fn reallocate(&mut self, _: u64, _: &[VcUsage], _: &mut [u32]) {}
        }
        let mut c = Nop;
        assert_eq!(c.checkpoint_state(), Some(String::new()));
        assert!(c.restore_state("").is_ok());
        assert!(c.restore_state("junk").is_err());
    }
}
