//! Traffic sources: the trait the simulator drives, plus the classic
//! synthetic patterns used in the paper's §3.2 study.

use crate::arbitration::NetSnapshot;
use crate::packet::{InjectionRequest, Packet};
use crate::rng::SplitMix64;
use crate::topology::Topology;
use crate::types::{DestType, MsgType, NodeId};

/// A source of network traffic.
///
/// The simulator calls [`TrafficSource::pull`] once per cycle to collect new
/// messages, and [`TrafficSource::on_delivered`] whenever a message reaches
/// its destination — closed-loop models (like the APU protocol engine) react
/// to deliveries by generating follow-on messages.
pub trait TrafficSource {
    /// Messages created this cycle. They enter per-node, per-vnet injection
    /// queues and drain into the network as buffer space allows.
    fn pull(&mut self, cycle: u64, net: &NetSnapshot) -> Vec<InjectionRequest>;

    /// Allocation-free variant of [`TrafficSource::pull`]: appends this
    /// cycle's messages to `out` (a scratch buffer the simulator reuses
    /// across cycles). The default delegates to `pull`; hot sources override
    /// it to avoid the per-cycle `Vec`.
    fn pull_into(&mut self, cycle: u64, net: &NetSnapshot, out: &mut Vec<InjectionRequest>) {
        out.extend(self.pull(cycle, net));
    }

    /// Notification that `packet` was consumed by its destination node.
    fn on_delivered(&mut self, _packet: &Packet, _cycle: u64) {}

    /// True when the workload has finished generating *and* reacting to
    /// traffic. Open-loop sources never finish.
    fn is_done(&self, _cycle: u64) -> bool {
        false
    }

    /// Serializes the source's mutable state for a simulator checkpoint
    /// (see [`crate::SimCheckpoint`]), or `None` when the source cannot be
    /// checkpointed. Unlike [`crate::Arbiter::checkpoint_state`] the default
    /// is `None`: traffic sources are almost always stateful (RNG streams,
    /// replay cursors, closed-loop protocol state), so opting *in* is the
    /// safe direction.
    fn checkpoint_state(&self) -> Option<String> {
        None
    }

    /// Restores state produced by [`TrafficSource::checkpoint_state`] on an
    /// equally configured, freshly constructed source.
    fn restore_state(&mut self, state: &str) -> Result<(), String> {
        Err(format!("this traffic source cannot restore state {state:?}"))
    }
}

/// Destination selection rule for [`SyntheticTraffic`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Pattern {
    /// Uniform random destination (excluding the source node).
    UniformRandom,
    /// `(x, y) → (y, x)` on a square mesh; self-pairs fall back to uniform.
    Transpose,
    /// Destination node id = bit-complement of the source id within the
    /// node-count mask; self-pairs fall back to uniform.
    BitComplement,
    /// `(x, y) → ((x + ⌈W/2⌉ − 1) mod W, y)` — adversarial for ring-like
    /// bandwidth; self-pairs fall back to uniform.
    Tornado,
    /// With probability `fraction`, send to the hotspot node; otherwise
    /// uniform random.
    Hotspot {
        /// The node receiving concentrated traffic.
        node: NodeId,
        /// Fraction of messages targeted at the hotspot.
        fraction: f64,
    },
}

/// An open-loop Bernoulli-injection synthetic traffic generator.
///
/// Every node independently creates a message each cycle with probability
/// `injection_rate`. A fraction `data_fraction` of messages are long
/// (`data_flits`-flit response-class) packets; the rest are single-flit
/// requests. Virtual networks are chosen uniformly.
///
/// ```
/// use noc_sim::{SyntheticTraffic, Pattern, Topology};
/// let topo = Topology::uniform_mesh(4, 4).unwrap();
/// let traffic = SyntheticTraffic::new(&topo, Pattern::UniformRandom, 0.1, 3, 99);
/// # let _ = traffic;
/// ```
#[derive(Debug, Clone)]
pub struct SyntheticTraffic {
    pattern: Pattern,
    injection_rate: f64,
    num_vnets: usize,
    num_nodes: usize,
    width: u16,
    height: u16,
    data_fraction: f64,
    data_flits: u32,
    rng: SplitMix64,
}

impl SyntheticTraffic {
    /// Creates a generator over the nodes of `topo`.
    pub fn new(
        topo: &Topology,
        pattern: Pattern,
        injection_rate: f64,
        num_vnets: usize,
        seed: u64,
    ) -> Self {
        SyntheticTraffic {
            pattern,
            injection_rate,
            num_vnets,
            num_nodes: topo.num_nodes(),
            width: topo.width(),
            height: topo.height(),
            data_fraction: 0.2,
            data_flits: 5,
            rng: SplitMix64::new(seed),
        }
    }

    /// Sets the fraction of messages that are long data packets and their
    /// length in flits.
    pub fn with_data_packets(mut self, fraction: f64, flits: u32) -> Self {
        self.data_fraction = fraction;
        self.data_flits = flits;
        self
    }

    fn pick_dst(&mut self, src: usize) -> usize {
        let n = self.num_nodes;
        let uniform_other = |rng: &mut SplitMix64| {
            let mut d = rng.next_bounded(n as u64) as usize;
            if d == src {
                d = (d + 1) % n;
            }
            d
        };
        match self.pattern {
            Pattern::UniformRandom => uniform_other(&mut self.rng),
            Pattern::Transpose => {
                let w = self.width as usize;
                let (x, y) = (src % w, src / w);
                // Only meaningful with one node per router on a square mesh.
                let d = x * w + y;
                if d == src || d >= n {
                    uniform_other(&mut self.rng)
                } else {
                    d
                }
            }
            Pattern::BitComplement => {
                let bits = usize::BITS - (n - 1).leading_zeros();
                let d = (!src) & ((1usize << bits) - 1);
                if d == src || d >= n {
                    uniform_other(&mut self.rng)
                } else {
                    d
                }
            }
            Pattern::Tornado => {
                let w = self.width as usize;
                let (x, y) = (src % w, src / w);
                let shift = w.div_ceil(2).saturating_sub(1).max(1);
                let d = y * w + (x + shift) % w;
                if d == src || d >= n {
                    uniform_other(&mut self.rng)
                } else {
                    d
                }
            }
            Pattern::Hotspot { node, fraction } => {
                if self.rng.chance(fraction) && node.index() != src {
                    node.index()
                } else {
                    uniform_other(&mut self.rng)
                }
            }
        }
    }
}

impl TrafficSource for SyntheticTraffic {
    fn pull(&mut self, cycle: u64, net: &NetSnapshot) -> Vec<InjectionRequest> {
        let mut out = Vec::new();
        self.pull_into(cycle, net, &mut out);
        out
    }

    fn pull_into(&mut self, _cycle: u64, _net: &NetSnapshot, out: &mut Vec<InjectionRequest>) {
        let _ = self.height; // height participates only through num_nodes
        for src in 0..self.num_nodes {
            if !self.rng.chance(self.injection_rate) {
                continue;
            }
            let dst = self.pick_dst(src);
            let long = self.rng.chance(self.data_fraction);
            out.push(InjectionRequest {
                src: NodeId(src),
                dst: NodeId(dst),
                vnet: self.rng.next_bounded(self.num_vnets as u64) as usize,
                msg_type: if long { MsgType::Response } else { MsgType::Request },
                dst_type: DestType::Core,
                len_flits: if long { self.data_flits } else { 1 },
                tag: 0,
            });
        }
    }

    fn checkpoint_state(&self) -> Option<String> {
        // The constructor parameters are immutable; the RNG stream is the
        // only mutable state.
        Some(self.rng.state().to_string())
    }

    fn restore_state(&mut self, state: &str) -> Result<(), String> {
        let s: u64 = state
            .parse()
            .map_err(|_| format!("bad SyntheticTraffic rng state {state:?}"))?;
        self.rng = SplitMix64::new(s);
        Ok(())
    }
}

/// A fixed, replayable list of `(cycle, request)` injections — useful for
/// tests and micro-experiments.
#[derive(Debug, Clone, Default)]
pub struct TraceTraffic {
    events: Vec<(u64, InjectionRequest)>,
    next: usize,
}

impl TraceTraffic {
    /// Creates a trace source. Events must be sorted by cycle.
    ///
    /// # Panics
    ///
    /// Panics if the events are not sorted by cycle.
    pub fn new(events: Vec<(u64, InjectionRequest)>) -> Self {
        assert!(
            events.windows(2).all(|w| w[0].0 <= w[1].0),
            "trace events must be sorted by cycle"
        );
        TraceTraffic { events, next: 0 }
    }
}

impl TrafficSource for TraceTraffic {
    fn pull(&mut self, cycle: u64, net: &NetSnapshot) -> Vec<InjectionRequest> {
        let mut out = Vec::new();
        self.pull_into(cycle, net, &mut out);
        out
    }

    fn pull_into(&mut self, cycle: u64, _net: &NetSnapshot, out: &mut Vec<InjectionRequest>) {
        while self.next < self.events.len() && self.events[self.next].0 <= cycle {
            out.push(self.events[self.next].1.clone());
            self.next += 1;
        }
    }

    fn is_done(&self, _cycle: u64) -> bool {
        self.next >= self.events.len()
    }

    fn checkpoint_state(&self) -> Option<String> {
        // The event list is a constructor parameter; only the replay cursor
        // is mutable state.
        Some(self.next.to_string())
    }

    fn restore_state(&mut self, state: &str) -> Result<(), String> {
        let next: usize = state
            .parse()
            .map_err(|_| format!("bad TraceTraffic cursor {state:?}"))?;
        if next > self.events.len() {
            return Err(format!(
                "TraceTraffic cursor {next} past the {}-event trace",
                self.events.len()
            ));
        }
        self.next = next;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn topo() -> Topology {
        Topology::uniform_mesh(4, 4).unwrap()
    }

    #[test]
    fn injection_rate_controls_volume() {
        let t = topo();
        let net = NetSnapshot::default();
        let mut hi = SyntheticTraffic::new(&t, Pattern::UniformRandom, 0.5, 3, 1);
        let mut lo = SyntheticTraffic::new(&t, Pattern::UniformRandom, 0.01, 3, 1);
        let mut hi_count = 0;
        let mut lo_count = 0;
        for c in 0..1000 {
            hi_count += hi.pull(c, &net).len();
            lo_count += lo.pull(c, &net).len();
        }
        // 16 nodes × 1000 cycles: expect ~8000 vs ~160.
        assert!(hi_count > 6000, "high-rate generated {hi_count}");
        assert!(lo_count < 600, "low-rate generated {lo_count}");
    }

    #[test]
    fn never_self_addressed() {
        let t = topo();
        let net = NetSnapshot::default();
        for pattern in [
            Pattern::UniformRandom,
            Pattern::Transpose,
            Pattern::BitComplement,
            Pattern::Tornado,
            Pattern::Hotspot { node: NodeId(5), fraction: 0.8 },
        ] {
            let mut src = SyntheticTraffic::new(&t, pattern, 1.0, 3, 7);
            for c in 0..50 {
                for req in src.pull(c, &net) {
                    assert_ne!(req.src, req.dst, "{pattern:?} produced self-traffic");
                    assert!(req.vnet < 3);
                    assert!(req.len_flits == 1 || req.len_flits == 5);
                }
            }
        }
    }

    #[test]
    fn transpose_maps_coordinates() {
        let t = topo();
        let net = NetSnapshot::default();
        let mut src = SyntheticTraffic::new(&t, Pattern::Transpose, 1.0, 1, 3);
        for req in src.pull(0, &net) {
            let (sx, sy) = (req.src.index() % 4, req.src.index() / 4);
            if sx != sy {
                assert_eq!(req.dst.index(), sx * 4 + sy);
            }
        }
    }

    #[test]
    fn hotspot_concentrates_traffic() {
        let t = topo();
        let net = NetSnapshot::default();
        let hotspot = NodeId(0);
        let mut src =
            SyntheticTraffic::new(&t, Pattern::Hotspot { node: hotspot, fraction: 0.9 }, 1.0, 1, 5);
        let mut to_hotspot = 0;
        let mut total = 0;
        for c in 0..200 {
            for req in src.pull(c, &net) {
                total += 1;
                if req.dst == hotspot {
                    to_hotspot += 1;
                }
            }
        }
        assert!(
            to_hotspot as f64 > 0.7 * total as f64,
            "only {to_hotspot}/{total} to hotspot"
        );
    }

    #[test]
    fn trace_traffic_replays_in_order_and_finishes() {
        let req = InjectionRequest {
            src: NodeId(0),
            dst: NodeId(1),
            vnet: 0,
            msg_type: MsgType::Request,
            dst_type: DestType::Core,
            len_flits: 1,
            tag: 42,
        };
        let mut tr = TraceTraffic::new(vec![(0, req.clone()), (5, req.clone())]);
        let net = NetSnapshot::default();
        assert_eq!(tr.pull(0, &net).len(), 1);
        assert_eq!(tr.pull(1, &net).len(), 0);
        assert!(!tr.is_done(1));
        assert_eq!(tr.pull(5, &net).len(), 1);
        assert!(tr.is_done(5));
    }

    #[test]
    #[should_panic(expected = "sorted by cycle")]
    fn unsorted_trace_rejected() {
        let req = InjectionRequest {
            src: NodeId(0),
            dst: NodeId(1),
            vnet: 0,
            msg_type: MsgType::Request,
            dst_type: DestType::Core,
            len_flits: 1,
            tag: 0,
        };
        TraceTraffic::new(vec![(5, req.clone()), (0, req)]);
    }
}
