//! Packets (multi-flit messages) and the per-hop state tracked for them.

use crate::types::{DestType, MsgType, NodeId, RouterId};

/// A network message. The simulator models virtual cut-through switching at
/// packet granularity: a packet of `len_flits` flits occupies its output port
/// for `len_flits` cycles when it wins arbitration, and may only move when
/// the downstream virtual-channel buffer has room for the whole packet.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Packet {
    /// Unique, monotonically increasing identifier.
    pub id: u64,
    /// Source endpoint.
    pub src: NodeId,
    /// Destination endpoint.
    pub dst: NodeId,
    /// Virtual network (message class). Packets never change vnet in flight.
    pub vnet: usize,
    /// Coarse message type (request / response / coherence).
    pub msg_type: MsgType,
    /// Coarse destination class (core / cache / memory).
    pub dst_type: DestType,
    /// Length in flits (1 for control messages, 5 for data in the paper).
    pub len_flits: u32,
    /// Cycle at which the message was created at its source endpoint.
    /// The *global age* of the message at cycle `c` is `c - create_cycle`.
    pub create_cycle: u64,
    /// Cycle at which the head flit entered the network (left the source
    /// injection queue).
    pub inject_cycle: u64,
    /// Router the message entered the network at.
    pub src_router: RouterId,
    /// Router the message will be ejected at.
    pub dst_router: RouterId,
    /// Which local port on `dst_router` the destination node hangs off.
    pub dst_slot: u8,
    /// Number of routers the message has been forwarded through so far.
    pub hop_count: u32,
    /// Shortest-path hop count from source router to destination router on
    /// the configured topology graph (fixed at creation). On a mesh this
    /// equals the Manhattan distance; on tori and rings the wraparound
    /// links shorten it, and on degraded graphs it routes around the holes.
    pub distance: u32,
    /// Opaque tag available to closed-loop traffic models to correlate a
    /// delivered packet with the transaction that produced it.
    pub tag: u64,
}

impl Packet {
    /// Global age of the packet at `cycle` — cycles since creation.
    ///
    /// ```
    /// # use noc_sim::{Packet, NodeId, RouterId, MsgType, DestType};
    /// # let mut p = Packet::test_packet();
    /// p.create_cycle = 10;
    /// assert_eq!(p.global_age(25), 15);
    /// ```
    pub fn global_age(&self, cycle: u64) -> u64 {
        cycle.saturating_sub(self.create_cycle)
    }

    /// Convenience constructor used in tests and doc examples: a one-flit
    /// request from node 0 to node 1.
    pub fn test_packet() -> Packet {
        Packet {
            id: 0,
            src: NodeId(0),
            dst: NodeId(1),
            vnet: 0,
            msg_type: MsgType::Request,
            dst_type: DestType::Cache,
            len_flits: 1,
            create_cycle: 0,
            inject_cycle: 0,
            src_router: RouterId(0),
            dst_router: RouterId(1),
            dst_slot: 0,
            hop_count: 0,
            distance: 1,
            tag: 0,
        }
    }
}

/// A packet sitting in an input virtual-channel buffer, together with its
/// arrival time at the current router (the basis of the *local age* feature).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BufferedPacket {
    /// The buffered packet.
    pub packet: Packet,
    /// Cycle the packet was written into this buffer.
    pub arrival_cycle: u64,
    /// Gap, in cycles, between this packet's arrival and the previous arrival
    /// at the same buffer (the *inter-arrival time* feature, paper Table 2).
    pub inter_arrival: u64,
}

impl BufferedPacket {
    /// Local age of the packet at `cycle` — cycles spent waiting at the
    /// current router (paper Table 2).
    pub fn local_age(&self, cycle: u64) -> u64 {
        cycle.saturating_sub(self.arrival_cycle)
    }
}

/// Description of a packet a traffic source wants to inject. The simulator
/// fills in identifiers, routing and timing fields.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct InjectionRequest {
    /// Source endpoint; must be a valid node.
    pub src: NodeId,
    /// Destination endpoint; must be a valid node distinct from `src`'s
    /// router+slot only in the sense that self-delivery is allowed but
    /// traverses the router pipeline.
    pub dst: NodeId,
    /// Virtual network to travel on; must be `< num_vnets`.
    pub vnet: usize,
    /// Message type recorded in the header.
    pub msg_type: MsgType,
    /// Destination class recorded in the header.
    pub dst_type: DestType,
    /// Packet length in flits; must be `>= 1` and fit in a VC buffer.
    pub len_flits: u32,
    /// Opaque correlation tag echoed back on delivery.
    pub tag: u64,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn global_age_saturates() {
        let mut p = Packet::test_packet();
        p.create_cycle = 100;
        assert_eq!(p.global_age(50), 0);
        assert_eq!(p.global_age(130), 30);
    }

    #[test]
    fn local_age_counts_from_arrival() {
        let bp = BufferedPacket {
            packet: Packet::test_packet(),
            arrival_cycle: 40,
            inter_arrival: 3,
        };
        assert_eq!(bp.local_age(40), 0);
        assert_eq!(bp.local_age(45), 5);
    }
}
