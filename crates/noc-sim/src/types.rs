//! Fundamental identifier and enumeration types shared across the simulator.

use std::fmt;

/// Identifier of an endpoint attached to the network (a core, cache bank,
/// directory, …). Nodes are *not* routers: several nodes may share one router
/// through distinct local ports.
///
/// ```
/// use noc_sim::NodeId;
/// let n = NodeId(3);
/// assert_eq!(n.index(), 3);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct NodeId(pub usize);

impl NodeId {
    /// Returns the raw index of this node.
    pub fn index(self) -> usize {
        self.0
    }
}

impl fmt::Display for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "n{}", self.0)
    }
}

/// Identifier of a router in the topology. Grid-derived topologies (mesh,
/// torus, degraded mesh) lay routers out row-major: `id = y * width + x`; a
/// ring is a one-row grid, so `id` is the position around the ring.
///
/// ```
/// use noc_sim::RouterId;
/// assert_eq!(RouterId(5).index(), 5);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct RouterId(pub usize);

impl RouterId {
    /// Returns the raw index of this router.
    pub fn index(self) -> usize {
        self.0
    }
}

impl fmt::Display for RouterId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "r{}", self.0)
    }
}

/// Integer coordinate of a router in the mesh.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub struct Coord {
    /// Column, increasing eastward.
    pub x: u16,
    /// Row, increasing southward.
    pub y: u16,
}

impl Coord {
    /// Creates a coordinate from a column and a row.
    pub fn new(x: u16, y: u16) -> Self {
        Coord { x, y }
    }

    /// Manhattan distance between two coordinates — the number of hops an
    /// X-Y-routed packet takes between the two routers on a (non-wrapping)
    /// mesh. For the graph-aware hop count on any topology, use
    /// [`crate::Topology::hop_distance`].
    ///
    /// ```
    /// use noc_sim::Coord;
    /// assert_eq!(Coord::new(0, 0).manhattan(Coord::new(3, 2)), 5);
    /// ```
    pub fn manhattan(self, other: Coord) -> u32 {
        let dx = (self.x as i32 - other.x as i32).unsigned_abs();
        let dy = (self.y as i32 - other.y as i32).unsigned_abs();
        dx + dy
    }
}

impl fmt::Display for Coord {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "({},{})", self.x, self.y)
    }
}

/// Logical direction of a router port.
///
/// A router owns `L` local ports (injection/ejection for the nodes that sit
/// on the router's tile) followed by the four mesh directions. All routers in
/// a given configuration share the same port layout so that learned agents
/// can use one fixed-width state encoding (paper §4.4).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum PortDir {
    /// Port to/from the `k`-th node on this tile (0 = "core" slot,
    /// 1 = "memory" slot in the APU configuration).
    Local(u8),
    /// Toward decreasing `y`.
    North,
    /// Toward increasing `y`.
    South,
    /// Toward decreasing `x`.
    West,
    /// Toward increasing `x`.
    East,
}

impl PortDir {
    /// Port order used throughout the crate: locals first, then N, S, W, E.
    pub fn port_order(num_locals: usize) -> Vec<PortDir> {
        let mut v = Vec::with_capacity(num_locals + 4);
        for k in 0..num_locals {
            v.push(PortDir::Local(k as u8));
        }
        v.extend_from_slice(&[PortDir::North, PortDir::South, PortDir::West, PortDir::East]);
        v
    }

    /// The opposite mesh direction; local ports have no opposite.
    ///
    /// ```
    /// use noc_sim::PortDir;
    /// assert_eq!(PortDir::North.opposite(), Some(PortDir::South));
    /// assert_eq!(PortDir::Local(0).opposite(), None);
    /// ```
    pub fn opposite(self) -> Option<PortDir> {
        match self {
            PortDir::North => Some(PortDir::South),
            PortDir::South => Some(PortDir::North),
            PortDir::West => Some(PortDir::East),
            PortDir::East => Some(PortDir::West),
            PortDir::Local(_) => None,
        }
    }

    /// True if this is an injection/ejection port.
    pub fn is_local(self) -> bool {
        matches!(self, PortDir::Local(_))
    }
}

impl fmt::Display for PortDir {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PortDir::Local(k) => write!(f, "L{k}"),
            PortDir::North => write!(f, "N"),
            PortDir::South => write!(f, "S"),
            PortDir::West => write!(f, "W"),
            PortDir::East => write!(f, "E"),
        }
    }
}

/// Coarse message type carried in every packet header (paper Table 2,
/// one-hot encoded when fed to the agent).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum MsgType {
    /// A request initiating a transaction (e.g. a cache-line read).
    #[default]
    Request,
    /// A response completing a transaction (usually carries data).
    Response,
    /// A coherence action (invalidation, probe, ack, …).
    Coherence,
}

impl MsgType {
    /// All message types in one-hot encoding order.
    pub const ALL: [MsgType; 3] = [MsgType::Request, MsgType::Response, MsgType::Coherence];

    /// One-hot index of the type (0 = request, 1 = response, 2 = coherence).
    pub fn one_hot_index(self) -> usize {
        match self {
            MsgType::Request => 0,
            MsgType::Response => 1,
            MsgType::Coherence => 2,
        }
    }
}

impl fmt::Display for MsgType {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            MsgType::Request => "req",
            MsgType::Response => "resp",
            MsgType::Coherence => "coh",
        };
        f.write_str(s)
    }
}

/// Coarse class of a packet's destination node (paper Table 2).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum DestType {
    /// A compute element (CPU core or GPU compute unit).
    #[default]
    Core,
    /// A cache bank (L1I, GPU L2, CPU LLC, …).
    Cache,
    /// A directory / memory controller.
    Memory,
}

impl DestType {
    /// All destination types in one-hot encoding order.
    pub const ALL: [DestType; 3] = [DestType::Core, DestType::Cache, DestType::Memory];

    /// One-hot index of the type (0 = core, 1 = cache, 2 = memory).
    pub fn one_hot_index(self) -> usize {
        match self {
            DestType::Core => 0,
            DestType::Cache => 1,
            DestType::Memory => 2,
        }
    }
}

impl fmt::Display for DestType {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            DestType::Core => "core",
            DestType::Cache => "cache",
            DestType::Memory => "memory",
        };
        f.write_str(s)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn manhattan_is_symmetric() {
        let a = Coord::new(1, 5);
        let b = Coord::new(4, 2);
        assert_eq!(a.manhattan(b), b.manhattan(a));
        assert_eq!(a.manhattan(a), 0);
    }

    #[test]
    fn port_order_layout() {
        let order = PortDir::port_order(2);
        assert_eq!(
            order,
            vec![
                PortDir::Local(0),
                PortDir::Local(1),
                PortDir::North,
                PortDir::South,
                PortDir::West,
                PortDir::East
            ]
        );
    }

    #[test]
    fn opposites_pair_up() {
        for d in [PortDir::North, PortDir::South, PortDir::West, PortDir::East] {
            assert_eq!(d.opposite().unwrap().opposite().unwrap(), d);
        }
        assert!(PortDir::Local(1).opposite().is_none());
    }

    #[test]
    fn one_hot_indices_are_distinct() {
        let m: Vec<usize> = MsgType::ALL.iter().map(|t| t.one_hot_index()).collect();
        assert_eq!(m, vec![0, 1, 2]);
        let d: Vec<usize> = DestType::ALL.iter().map(|t| t.one_hot_index()).collect();
        assert_eq!(d, vec![0, 1, 2]);
    }

    #[test]
    fn display_impls_are_nonempty() {
        assert_eq!(NodeId(7).to_string(), "n7");
        assert_eq!(RouterId(7).to_string(), "r7");
        assert_eq!(Coord::new(1, 2).to_string(), "(1,2)");
        assert_eq!(PortDir::Local(0).to_string(), "L0");
        assert_eq!(MsgType::Coherence.to_string(), "coh");
        assert_eq!(DestType::Memory.to_string(), "memory");
    }
}
