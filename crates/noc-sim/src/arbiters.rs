//! Built-in reference arbitration policies.
//!
//! Only the two simplest baselines live here so the simulator crate is
//! self-contained for tests and examples; the full policy suite (iSLIP,
//! ProbDist, global-age, the RL-inspired arbiters, …) lives in the
//! `noc-arbiters` crate.

use std::collections::HashMap;

use crate::arbitration::{Arbiter, OutputCtx};
use crate::types::RouterId;

/// FIFO arbitration: grant the message that arrived at the *local router*
/// earliest (paper §3.2: "prioritizes messages based on their arrival time
/// to the local router" — i.e. the message with the largest local age).
///
/// Simple to implement in hardware, captures local age but not global age.
///
/// ```
/// use noc_sim::arbiters::FifoArbiter;
/// use noc_sim::Arbiter;
/// assert_eq!(FifoArbiter::new().name(), "FIFO");
/// ```
#[derive(Debug, Clone, Default)]
pub struct FifoArbiter {
    _priv: (),
}

impl FifoArbiter {
    /// Creates a FIFO arbiter.
    pub fn new() -> Self {
        FifoArbiter { _priv: () }
    }
}

impl Arbiter for FifoArbiter {
    fn name(&self) -> String {
        "FIFO".into()
    }

    fn select(&mut self, ctx: &OutputCtx<'_>) -> Option<usize> {
        ctx.candidates
            .iter()
            .enumerate()
            .min_by_key(|(_, c)| (c.arrival_cycle, c.packet_id))
            .map(|(i, _)| i)
    }
}

/// Round-robin arbitration: each (router, output port) pair keeps a rotating
/// pointer over input-buffer slots; the first requesting slot at or after the
/// pointer wins, and the pointer advances past it. Provides local fairness
/// but no notion of age (paper §2.1).
#[derive(Debug, Clone, Default)]
pub struct RoundRobinArbiter {
    pointers: HashMap<(RouterId, usize), usize>,
}

impl RoundRobinArbiter {
    /// Creates a round-robin arbiter.
    pub fn new() -> Self {
        RoundRobinArbiter {
            pointers: HashMap::new(),
        }
    }
}

impl Arbiter for RoundRobinArbiter {
    fn name(&self) -> String {
        "Round-robin".into()
    }

    fn select(&mut self, ctx: &OutputCtx<'_>) -> Option<usize> {
        let slots = ctx.num_ports * ctx.num_vnets;
        let ptr = self
            .pointers
            .entry((ctx.router, ctx.out_port))
            .or_insert(0);
        // Find the candidate whose slot is the first at or after the pointer,
        // wrapping around.
        let chosen = ctx
            .candidates
            .iter()
            .enumerate()
            .min_by_key(|(_, c)| (c.slot + slots - *ptr) % slots)
            .map(|(i, _)| i)?;
        *ptr = (ctx.candidates[chosen].slot + 1) % slots;
        Some(chosen)
    }

    fn checkpoint_state(&self) -> Option<String> {
        let mut entries: Vec<_> = self
            .pointers
            .iter()
            .map(|(&(r, out), &ptr)| (r.0, out, ptr))
            .collect();
        entries.sort_unstable();
        Some(
            entries
                .iter()
                .map(|(r, out, ptr)| format!("{r}:{out}:{ptr}"))
                .collect::<Vec<_>>()
                .join(";"),
        )
    }

    fn restore_state(&mut self, state: &str) -> Result<(), String> {
        self.pointers.clear();
        for entry in state.split(';').filter(|e| !e.is_empty()) {
            let mut it = entry.split(':');
            let parse = |v: Option<&str>| -> Result<usize, String> {
                v.and_then(|v| v.parse().ok())
                    .ok_or_else(|| format!("bad round-robin pointer entry {entry:?}"))
            };
            let r = parse(it.next())?;
            let out = parse(it.next())?;
            let ptr = parse(it.next())?;
            self.pointers.insert((RouterId(r), out), ptr);
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::arbitration::{Candidate, Features, NetSnapshot};
    use crate::types::{DestType, MsgType, NodeId};

    fn cand(slot: usize, arrival: u64, id: u64) -> Candidate {
        Candidate {
            in_port: slot, // one vnet in these tests
            vnet: 0,
            slot,
            features: Features {
                payload_size: 1,
                local_age: 0,
                distance: 1,
                hop_count: 0,
                in_flight_from_src: 0,
                inter_arrival: 0,
                msg_type: MsgType::Request,
                dst_type: DestType::Core,
            },
            packet_id: id,
            create_cycle: arrival,
            arrival_cycle: arrival,
            src: NodeId(0),
            dst: NodeId(1),
            port_degraded: false,
        }
    }

    fn ctx<'a>(cands: &'a [Candidate], net: &'a NetSnapshot) -> OutputCtx<'a> {
        OutputCtx {
            router: RouterId(0),
            out_port: 0,
            cycle: 100,
            num_ports: 5,
            num_vnets: 1,
            candidates: cands,
            net,
        }
    }

    #[test]
    fn fifo_picks_earliest_local_arrival() {
        let net = NetSnapshot::default();
        let cands = vec![cand(0, 30, 1), cand(1, 10, 2), cand(2, 20, 3)];
        assert_eq!(FifoArbiter::new().select(&ctx(&cands, &net)), Some(1));
    }

    #[test]
    fn fifo_ties_break_by_packet_id() {
        let net = NetSnapshot::default();
        let cands = vec![cand(0, 10, 5), cand(1, 10, 2)];
        assert_eq!(FifoArbiter::new().select(&ctx(&cands, &net)), Some(1));
    }

    #[test]
    fn round_robin_rotates_across_requesters() {
        let net = NetSnapshot::default();
        let mut rr = RoundRobinArbiter::new();
        let cands = vec![cand(0, 0, 1), cand(2, 0, 2), cand(4, 0, 3)];
        let first = rr.select(&ctx(&cands, &net)).unwrap();
        assert_eq!(cands[first].slot, 0);
        let second = rr.select(&ctx(&cands, &net)).unwrap();
        assert_eq!(cands[second].slot, 2);
        let third = rr.select(&ctx(&cands, &net)).unwrap();
        assert_eq!(cands[third].slot, 4);
        let wrap = rr.select(&ctx(&cands, &net)).unwrap();
        assert_eq!(cands[wrap].slot, 0);
    }

    #[test]
    fn round_robin_pointers_are_per_output_port() {
        let net = NetSnapshot::default();
        let mut rr = RoundRobinArbiter::new();
        let cands = vec![cand(0, 0, 1), cand(1, 0, 2)];
        let mut c0 = ctx(&cands, &net);
        c0.out_port = 0;
        let mut c1 = ctx(&cands, &net);
        c1.out_port = 1;
        assert_eq!(rr.select(&c0), Some(0));
        // A different output port has its own pointer, so slot 0 wins again.
        assert_eq!(rr.select(&c1), Some(0));
    }
}
