//! Uniform-random arbitration (sanity baseline).

use noc_sim::{Arbiter, OutputCtx, SplitMix64};

/// Grants a uniformly random competing buffer. Not evaluated in the paper,
/// but a useful control: any sensible policy should beat it under load.
#[derive(Debug, Clone)]
pub struct RandomArbiter {
    rng: SplitMix64,
}

impl RandomArbiter {
    /// Creates a random arbiter with a deterministic seed.
    pub fn new(seed: u64) -> Self {
        RandomArbiter {
            rng: SplitMix64::new(seed),
        }
    }
}

impl Arbiter for RandomArbiter {
    fn name(&self) -> String {
        "Random".into()
    }

    fn select(&mut self, ctx: &OutputCtx<'_>) -> Option<usize> {
        if ctx.candidates.is_empty() {
            return None;
        }
        Some(self.rng.next_bounded(ctx.candidates.len() as u64) as usize)
    }

    fn checkpoint_state(&self) -> Option<String> {
        // The RNG stream is the only mutable state.
        Some(self.rng.state().to_string())
    }

    fn restore_state(&mut self, state: &str) -> Result<(), String> {
        let s: u64 = state
            .parse()
            .map_err(|_| format!("bad random-arbiter rng state {state:?}"))?;
        self.rng = SplitMix64::new(s);
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use noc_sim::{Candidate, DestType, Features, MsgType, NetSnapshot, NodeId, RouterId};

    fn cand(slot: usize) -> Candidate {
        Candidate {
            in_port: slot,
            vnet: 0,
            slot,
            features: Features {
                payload_size: 1,
                local_age: 0,
                distance: 1,
                hop_count: 0,
                in_flight_from_src: 0,
                inter_arrival: 0,
                msg_type: MsgType::Request,
                dst_type: DestType::Core,
            },
            packet_id: slot as u64,
            create_cycle: 0,
            arrival_cycle: 0,
            src: NodeId(0),
            dst: NodeId(1),
            port_degraded: false,
        }
    }

    #[test]
    fn all_candidates_eventually_selected() {
        let net = NetSnapshot::default();
        let cands = vec![cand(0), cand(1), cand(2)];
        let ctx = OutputCtx {
            router: RouterId(0),
            out_port: 0,
            cycle: 0,
            num_ports: 5,
            num_vnets: 1,
            candidates: &cands,
            net: &net,
        };
        let mut arb = RandomArbiter::new(3);
        let mut seen = [false; 3];
        for _ in 0..200 {
            seen[arb.select(&ctx).unwrap()] = true;
        }
        assert_eq!(seen, [true, true, true]);
    }

    #[test]
    fn empty_candidates_yield_none() {
        let net = NetSnapshot::default();
        let ctx = OutputCtx {
            router: RouterId(0),
            out_port: 0,
            cycle: 0,
            num_ports: 5,
            num_vnets: 1,
            candidates: &[],
            net: &net,
        };
        assert_eq!(RandomArbiter::new(1).select(&ctx), None);
    }
}
