//! Probabilistic distance-based arbitration (Lee et al., MICRO 2010).

use noc_sim::{Arbiter, Candidate, OutputCtx, SplitMix64};

/// How a candidate's hop count is turned into a lottery weight.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Weighting {
    /// Weight = `hop_count + 1`.
    Linear,
    /// Weight = `(hop_count + 1)²`.
    Quadratic,
    /// Weight = `2^min(hop_count, 15)` — the aggressive setting that gives
    /// the strongest equality-of-service in the original proposal.
    Exponential,
}

/// Probabilistic distance-based arbitration ("ProbDist" in the paper's
/// Figs. 9–11): each competing message enters a weighted lottery where the
/// weight grows with the number of hops the message has already traversed.
/// Messages that traveled farther are statistically favored, approximating
/// age-based equality of service without global timestamps.
#[derive(Debug, Clone)]
pub struct ProbDistArbiter {
    weighting: Weighting,
    rng: SplitMix64,
}

impl ProbDistArbiter {
    /// Creates the arbiter with [`Weighting::Exponential`] (the paper's
    /// reference configuration).
    pub fn new(seed: u64) -> Self {
        ProbDistArbiter::with_weighting(Weighting::Exponential, seed)
    }

    /// Creates the arbiter with an explicit weighting function.
    pub fn with_weighting(weighting: Weighting, seed: u64) -> Self {
        ProbDistArbiter {
            weighting,
            rng: SplitMix64::new(seed),
        }
    }

    fn weight(&self, c: &Candidate) -> u64 {
        let h = c.features.hop_count as u64;
        match self.weighting {
            Weighting::Linear => h + 1,
            Weighting::Quadratic => (h + 1) * (h + 1),
            Weighting::Exponential => 1u64 << h.min(15),
        }
    }
}

impl Arbiter for ProbDistArbiter {
    fn name(&self) -> String {
        "ProbDist".into()
    }

    fn select(&mut self, ctx: &OutputCtx<'_>) -> Option<usize> {
        if ctx.candidates.is_empty() {
            return None;
        }
        let total: u64 = ctx.candidates.iter().map(|c| self.weight(c)).sum();
        let mut draw = self.rng.next_bounded(total);
        for (i, c) in ctx.candidates.iter().enumerate() {
            let w = self.weight(c);
            if draw < w {
                return Some(i);
            }
            draw -= w;
        }
        Some(ctx.candidates.len() - 1)
    }

    fn checkpoint_state(&self) -> Option<String> {
        // The weighting function is a constructor parameter; the RNG
        // stream is the only mutable state.
        Some(self.rng.state().to_string())
    }

    fn restore_state(&mut self, state: &str) -> Result<(), String> {
        let s: u64 = state
            .parse()
            .map_err(|_| format!("bad prob-dist rng state {state:?}"))?;
        self.rng = SplitMix64::new(s);
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use noc_sim::{DestType, Features, MsgType, NetSnapshot, NodeId, RouterId};

    fn cand(slot: usize, hops: u32) -> Candidate {
        Candidate {
            in_port: slot,
            vnet: 0,
            slot,
            features: Features {
                payload_size: 1,
                local_age: 0,
                distance: 8,
                hop_count: hops,
                in_flight_from_src: 0,
                inter_arrival: 0,
                msg_type: MsgType::Request,
                dst_type: DestType::Core,
            },
            packet_id: slot as u64,
            create_cycle: 0,
            arrival_cycle: 0,
            src: NodeId(0),
            dst: NodeId(1),
            port_degraded: false,
        }
    }

    fn run_lottery(weighting: Weighting, hops: &[u32], trials: usize) -> Vec<usize> {
        let net = NetSnapshot::default();
        let cands: Vec<Candidate> = hops.iter().enumerate().map(|(i, &h)| cand(i, h)).collect();
        let ctx = OutputCtx {
            router: RouterId(0),
            out_port: 0,
            cycle: 0,
            num_ports: 5,
            num_vnets: 1,
            candidates: &cands,
            net: &net,
        };
        let mut arb = ProbDistArbiter::with_weighting(weighting, 99);
        let mut counts = vec![0usize; hops.len()];
        for _ in 0..trials {
            counts[arb.select(&ctx).unwrap()] += 1;
        }
        counts
    }

    #[test]
    fn farther_travelers_win_more_often() {
        let counts = run_lottery(Weighting::Exponential, &[0, 6], 2000);
        // Weights 1 vs 64: the long-haul message should win ~98% of draws.
        assert!(counts[1] > 1800, "long-haul won only {} of 2000", counts[1]);
    }

    #[test]
    fn linear_weighting_is_gentler_than_exponential() {
        let lin = run_lottery(Weighting::Linear, &[0, 6], 4000);
        let exp = run_lottery(Weighting::Exponential, &[0, 6], 4000);
        assert!(lin[0] > exp[0], "linear should give short-haul more wins");
    }

    #[test]
    fn equal_hops_split_roughly_evenly() {
        let counts = run_lottery(Weighting::Exponential, &[3, 3], 4000);
        assert!((1600..2400).contains(&counts[0]), "split {counts:?}");
    }

    #[test]
    fn exponential_weight_saturates() {
        let arb = ProbDistArbiter::new(1);
        assert_eq!(arb.weight(&cand(0, 15)), arb.weight(&cand(0, 40)));
    }
}
