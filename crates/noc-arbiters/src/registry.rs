//! Name-keyed construction of policies, used by the figure binaries.

use std::fmt;
use std::str::FromStr;

use noc_sim::Arbiter;

use crate::global_age::GlobalAgeArbiter;
use crate::islip::IslipArbiter;
use crate::probdist::ProbDistArbiter;
use crate::random::RandomArbiter;
use crate::extra::{NewestFirstPolicy, PingPongArbiter, SlackAwarePolicy, WavefrontArbiter};
use crate::rl_inspired::{Algorithm2Paper, ApuAblation, LocalAgePolicy, RlInspiredApu, RlInspiredSynthetic};
use noc_sim::arbiters::{FifoArbiter, RoundRobinArbiter};

/// Every policy constructible by name.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PolicyKind {
    /// Rotating-pointer baseline.
    RoundRobin,
    /// Oldest-local-arrival baseline.
    Fifo,
    /// Iterative round-robin matching.
    Islip,
    /// Probabilistic distance-based lottery.
    ProbDist,
    /// Oldest-global-age oracle.
    GlobalAge,
    /// Uniform-random control.
    Random,
    /// Saturating local-age priority.
    LocalAge,
    /// §3.2 distilled policy, 4×4 variant.
    RlSynth4x4,
    /// §3.2 distilled policy, 8×8 variant.
    RlSynth8x8,
    /// The distilled APU policy of this reproduction (figures' "RL-inspired").
    RlApu,
    /// The paper's Algorithm 2, verbatim.
    Algorithm2,
    /// Algorithm 2 without the port condition.
    RlApuNoPort,
    /// Algorithm 2 without the message-type condition.
    RlApuNoMsgType,
    /// Wavefront maximal matching (related work).
    Wavefront,
    /// Hierarchical ping-pong arbitration (related work).
    PingPong,
    /// Slack-aware priority (related work, Aergia-inspired).
    SlackAware,
    /// Youngest-message-first adversarial control (§6.4 starvation check).
    NewestFirst,
}

impl PolicyKind {
    /// All variants, in reporting order.
    pub const ALL: [PolicyKind; 17] = [
        PolicyKind::RoundRobin,
        PolicyKind::Islip,
        PolicyKind::Wavefront,
        PolicyKind::PingPong,
        PolicyKind::Fifo,
        PolicyKind::ProbDist,
        PolicyKind::SlackAware,
        PolicyKind::Random,
        PolicyKind::LocalAge,
        PolicyKind::RlSynth4x4,
        PolicyKind::RlSynth8x8,
        PolicyKind::RlApu,
        PolicyKind::Algorithm2,
        PolicyKind::RlApuNoPort,
        PolicyKind::RlApuNoMsgType,
        PolicyKind::NewestFirst,
        PolicyKind::GlobalAge,
    ];

    /// Canonical name used on the command line and in reports.
    pub fn as_str(self) -> &'static str {
        match self {
            PolicyKind::RoundRobin => "round-robin",
            PolicyKind::Fifo => "fifo",
            PolicyKind::Islip => "islip",
            PolicyKind::ProbDist => "probdist",
            PolicyKind::GlobalAge => "global-age",
            PolicyKind::Random => "random",
            PolicyKind::LocalAge => "local-age",
            PolicyKind::RlSynth4x4 => "rl-synth-4x4",
            PolicyKind::RlSynth8x8 => "rl-synth-8x8",
            PolicyKind::RlApu => "rl-apu",
            PolicyKind::Algorithm2 => "algorithm2-paper",
            PolicyKind::RlApuNoPort => "rl-apu-no-port",
            PolicyKind::RlApuNoMsgType => "rl-apu-no-msgtype",
            PolicyKind::Wavefront => "wavefront",
            PolicyKind::PingPong => "ping-pong",
            PolicyKind::SlackAware => "slack-aware",
            PolicyKind::NewestFirst => "newest-first",
        }
    }

    /// Human-facing label used in figure tables (the registry name is the
    /// machine-facing one). Several kinds share a label on purpose: the
    /// paper presents every distilled variant as "RL-inspired".
    pub fn display_name(self) -> &'static str {
        match self {
            PolicyKind::RoundRobin => "Round-robin",
            PolicyKind::Fifo => "FIFO",
            PolicyKind::Islip => "iSLIP",
            PolicyKind::ProbDist => "ProbDist",
            PolicyKind::GlobalAge => "Global-age",
            PolicyKind::Random => "Random",
            PolicyKind::LocalAge => "Local-age",
            PolicyKind::RlSynth4x4 | PolicyKind::RlSynth8x8 | PolicyKind::RlApu => "RL-inspired",
            PolicyKind::Algorithm2 => "Algorithm 2",
            PolicyKind::RlApuNoPort => "no-port",
            PolicyKind::RlApuNoMsgType => "no-msgtype",
            PolicyKind::Wavefront => "Wavefront",
            PolicyKind::PingPong => "Ping-pong",
            PolicyKind::SlackAware => "Slack-aware",
            PolicyKind::NewestFirst => "Newest-first",
        }
    }
}

/// Parses a comma-separated policy line-up (e.g. `"fifo,rl-apu,global-age"`)
/// into kinds, preserving order. Whitespace around names is ignored; empty
/// segments and unknown names are errors.
///
/// ```
/// use noc_arbiters::{parse_lineup, PolicyKind};
/// let lineup = parse_lineup("fifo, rl-apu, global-age").unwrap();
/// assert_eq!(lineup, vec![PolicyKind::Fifo, PolicyKind::RlApu, PolicyKind::GlobalAge]);
/// ```
pub fn parse_lineup(s: &str) -> Result<Vec<PolicyKind>, ParsePolicyError> {
    s.split(',').map(|name| name.trim().parse()).collect()
}

impl fmt::Display for PolicyKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

/// Error returned when parsing an unknown policy name.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParsePolicyError(String);

impl fmt::Display for ParsePolicyError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "unknown policy '{}'", self.0)
    }
}

impl std::error::Error for ParsePolicyError {}

impl FromStr for PolicyKind {
    type Err = ParsePolicyError;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        PolicyKind::ALL
            .iter()
            .copied()
            .find(|k| k.as_str() == s)
            .ok_or_else(|| ParsePolicyError(s.to_string()))
    }
}

/// Instantiates a policy. `seed` feeds the stochastic policies (ProbDist,
/// Random); deterministic policies ignore it.
///
/// ```
/// use noc_arbiters::{make_arbiter, PolicyKind};
/// let arb = make_arbiter(PolicyKind::GlobalAge, 0);
/// assert_eq!(arb.name(), "Global-age");
/// ```
pub fn make_arbiter(kind: PolicyKind, seed: u64) -> Box<dyn Arbiter> {
    match kind {
        PolicyKind::RoundRobin => Box::new(RoundRobinArbiter::new()),
        PolicyKind::Fifo => Box::new(FifoArbiter::new()),
        PolicyKind::Islip => Box::new(IslipArbiter::new()),
        PolicyKind::ProbDist => Box::new(ProbDistArbiter::new(seed)),
        PolicyKind::GlobalAge => Box::new(GlobalAgeArbiter::new()),
        PolicyKind::Random => Box::new(RandomArbiter::new(seed)),
        PolicyKind::LocalAge => Box::new(LocalAgePolicy::arbiter()),
        PolicyKind::RlSynth4x4 => Box::new(RlInspiredSynthetic::mesh4x4().arbiter()),
        PolicyKind::RlSynth8x8 => Box::new(RlInspiredSynthetic::mesh8x8().arbiter()),
        PolicyKind::RlApu => Box::new(RlInspiredApu::arbiter()),
        PolicyKind::Algorithm2 => Box::new(Algorithm2Paper::arbiter()),
        PolicyKind::RlApuNoPort => Box::new(ApuAblation::without_port().arbiter()),
        PolicyKind::RlApuNoMsgType => Box::new(ApuAblation::without_msg_type().arbiter()),
        PolicyKind::Wavefront => Box::new(WavefrontArbiter::new()),
        PolicyKind::PingPong => Box::new(PingPongArbiter::new()),
        PolicyKind::SlackAware => Box::new(SlackAwarePolicy::arbiter()),
        PolicyKind::NewestFirst => Box::new(NewestFirstPolicy::arbiter()),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_kind_constructs_and_names_itself() {
        for kind in PolicyKind::ALL {
            let arb = make_arbiter(kind, 42);
            assert!(!arb.name().is_empty(), "{kind} produced empty name");
        }
    }

    #[test]
    fn names_round_trip_through_from_str() {
        for kind in PolicyKind::ALL {
            let parsed: PolicyKind = kind.as_str().parse().unwrap();
            assert_eq!(parsed, kind);
        }
    }

    #[test]
    fn unknown_name_is_an_error() {
        let err = "not-a-policy".parse::<PolicyKind>().unwrap_err();
        assert!(err.to_string().contains("not-a-policy"));
    }

    #[test]
    fn every_kind_has_a_display_name() {
        for kind in PolicyKind::ALL {
            assert!(!kind.display_name().is_empty(), "{kind} has no display name");
        }
    }

    #[test]
    fn lineups_parse_in_order() {
        let lineup = parse_lineup("round-robin,islip , fifo").unwrap();
        assert_eq!(
            lineup,
            vec![PolicyKind::RoundRobin, PolicyKind::Islip, PolicyKind::Fifo]
        );
        assert!(parse_lineup("fifo,,islip").is_err());
        assert!(parse_lineup("fifo,nope").is_err());
    }
}
