//! Priority-computation policies and the select-max execution model.

use noc_sim::{Arbiter, Candidate, OutputCtx};

/// A policy expressed as a per-candidate priority computation — the
/// "P-block" of the paper's Fig. 8. The buffer with the highest priority
/// wins; ties go to the lowest buffer slot, matching a hardware
/// comparator-tree select-max circuit.
pub trait PriorityPolicy {
    /// Human-readable policy name.
    fn name(&self) -> String;

    /// Priority level of one candidate. Larger wins.
    fn priority(&self, candidate: &Candidate, ctx: &OutputCtx<'_>) -> u32;
}

/// Adapter executing a [`PriorityPolicy`] as a full [`Arbiter`], modeling
/// the priority-compute + select-max datapath of the paper's Fig. 8.
///
/// ```
/// use noc_arbiters::{MaxPriorityArbiter, PriorityPolicy};
/// use noc_sim::{Arbiter, Candidate, OutputCtx};
///
/// #[derive(Debug)]
/// struct LongestFirst;
/// impl PriorityPolicy for LongestFirst {
///     fn name(&self) -> String { "longest-first".into() }
///     fn priority(&self, c: &Candidate, _ctx: &OutputCtx<'_>) -> u32 {
///         c.features.payload_size
///     }
/// }
/// let arb = MaxPriorityArbiter::new(LongestFirst);
/// assert_eq!(arb.name(), "longest-first");
/// ```
#[derive(Debug, Clone)]
pub struct MaxPriorityArbiter<P> {
    policy: P,
}

impl<P: PriorityPolicy> MaxPriorityArbiter<P> {
    /// Wraps a priority policy.
    pub fn new(policy: P) -> Self {
        MaxPriorityArbiter { policy }
    }

    /// The wrapped policy.
    pub fn policy(&self) -> &P {
        &self.policy
    }

    /// Consumes the adapter, returning the wrapped policy.
    pub fn into_policy(self) -> P {
        self.policy
    }
}

impl<P: PriorityPolicy> Arbiter for MaxPriorityArbiter<P> {
    fn name(&self) -> String {
        self.policy.name()
    }

    fn select(&mut self, ctx: &OutputCtx<'_>) -> Option<usize> {
        // Hardware select-max: scan in slot order, keep the first maximum.
        let mut best: Option<(usize, u32)> = None;
        for (i, c) in ctx.candidates.iter().enumerate() {
            let p = self.policy.priority(c, ctx);
            match best {
                Some((_, bp)) if bp >= p => {}
                _ => best = Some((i, p)),
            }
        }
        best.map(|(i, _)| i)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use noc_sim::{DestType, Features, MsgType, NetSnapshot, NodeId, RouterId};

    #[derive(Debug)]
    struct ByHopCount;
    impl PriorityPolicy for ByHopCount {
        fn name(&self) -> String {
            "by-hops".into()
        }
        fn priority(&self, c: &Candidate, _ctx: &OutputCtx<'_>) -> u32 {
            c.features.hop_count
        }
    }

    fn cand(slot: usize, hops: u32) -> Candidate {
        Candidate {
            in_port: slot,
            vnet: 0,
            slot,
            features: Features {
                payload_size: 1,
                local_age: 0,
                distance: 4,
                hop_count: hops,
                in_flight_from_src: 0,
                inter_arrival: 0,
                msg_type: MsgType::Request,
                dst_type: DestType::Core,
            },
            packet_id: slot as u64,
            create_cycle: 0,
            arrival_cycle: 0,
            src: NodeId(0),
            dst: NodeId(1),
            port_degraded: false,
        }
    }

    fn ctx<'a>(cands: &'a [Candidate], net: &'a NetSnapshot) -> OutputCtx<'a> {
        OutputCtx {
            router: RouterId(0),
            out_port: 0,
            cycle: 10,
            num_ports: 5,
            num_vnets: 1,
            candidates: cands,
            net,
        }
    }

    #[test]
    fn max_priority_wins() {
        let net = NetSnapshot::default();
        let cands = vec![cand(0, 2), cand(1, 7), cand(2, 5)];
        let mut arb = MaxPriorityArbiter::new(ByHopCount);
        assert_eq!(arb.select(&ctx(&cands, &net)), Some(1));
    }

    #[test]
    fn ties_resolve_to_lowest_slot_like_hardware() {
        let net = NetSnapshot::default();
        let cands = vec![cand(0, 5), cand(1, 5), cand(2, 5)];
        let mut arb = MaxPriorityArbiter::new(ByHopCount);
        assert_eq!(arb.select(&ctx(&cands, &net)), Some(0));
    }
}
