//! iSLIP: iterative round-robin matching (McKeown, ToN 1999).

use std::collections::HashMap;

use noc_sim::{Arbiter, OutputCtx, RouterCtx, RouterId};

/// The iSLIP switch allocator.
///
/// iSLIP computes a conflict-free input-to-output matching per router per
/// cycle using per-output *grant* pointers and per-input *accept* pointers,
/// iterating request → grant → accept a fixed number of times to fill in
/// unmatched pairs. Pointers only advance on first-iteration accepts, which
/// is what gives iSLIP its "desynchronized pointers" fairness property.
///
/// When a router has several VCs requesting the same output from the same
/// input port, the oldest local arrival represents that port in the
/// matching.
#[derive(Debug, Clone)]
pub struct IslipArbiter {
    iterations: usize,
    grant_ptrs: HashMap<(RouterId, usize), usize>,
    accept_ptrs: HashMap<(RouterId, usize), usize>,
    /// `(router, out_port)` → `(cycle, in_port, vnet)` planned this cycle.
    plan: HashMap<(RouterId, usize), (u64, usize, usize)>,
}

impl IslipArbiter {
    /// Creates an iSLIP allocator with the customary two iterations.
    pub fn new() -> Self {
        IslipArbiter::with_iterations(2)
    }

    /// Creates an iSLIP allocator with an explicit iteration count.
    ///
    /// # Panics
    ///
    /// Panics if `iterations == 0`.
    pub fn with_iterations(iterations: usize) -> Self {
        assert!(iterations > 0, "iSLIP needs at least one iteration");
        IslipArbiter {
            iterations,
            grant_ptrs: HashMap::new(),
            accept_ptrs: HashMap::new(),
            plan: HashMap::new(),
        }
    }
}

impl Default for IslipArbiter {
    fn default() -> Self {
        IslipArbiter::new()
    }
}

impl Arbiter for IslipArbiter {
    fn name(&self) -> String {
        "iSLIP".into()
    }

    fn plan_router(&mut self, ctx: &RouterCtx<'_>) {
        let p = ctx.num_ports;
        // requests[out][in] = Some(vnet of the representative candidate).
        let mut requests: HashMap<(usize, usize), (u64, u64, usize)> = HashMap::new();
        let mut out_ports: Vec<usize> = Vec::new();
        for (out, cands) in ctx.outputs {
            out_ports.push(*out);
            for c in cands {
                // Representative per (out, in): earliest local arrival.
                let key = (*out, c.in_port);
                let entry = (c.arrival_cycle, c.packet_id, c.vnet);
                match requests.get(&key) {
                    Some(prev) if *prev <= entry => {}
                    _ => {
                        requests.insert(key, entry);
                    }
                }
            }
        }

        let mut matched_out: HashMap<usize, usize> = HashMap::new(); // out -> in
        let mut matched_in: HashMap<usize, usize> = HashMap::new(); // in -> out

        for iter in 0..self.iterations {
            // Grant phase: each unmatched output grants one unmatched input.
            let mut grants: HashMap<usize, Vec<usize>> = HashMap::new(); // in -> outs granting it
            for &out in &out_ports {
                if matched_out.contains_key(&out) {
                    continue;
                }
                let gp = *self.grant_ptrs.entry((ctx.router, out)).or_insert(0);
                let winner = (0..p)
                    .filter(|inp| {
                        !matched_in.contains_key(inp) && requests.contains_key(&(out, *inp))
                    })
                    .min_by_key(|inp| (inp + p - gp) % p);
                if let Some(inp) = winner {
                    grants.entry(inp).or_default().push(out);
                }
            }
            // Accept phase: each input accepts one granting output.
            for (inp, outs) in grants {
                let ap = *self.accept_ptrs.entry((ctx.router, inp)).or_insert(0);
                let Some(&out) = outs.iter().min_by_key(|o| (**o + p - ap) % p) else {
                    continue;
                };
                matched_out.insert(out, inp);
                matched_in.insert(inp, out);
                if iter == 0 {
                    // Pointers move only on first-iteration accepts.
                    self.grant_ptrs.insert((ctx.router, out), (inp + 1) % p);
                    self.accept_ptrs.insert((ctx.router, inp), (out + 1) % p);
                }
            }
        }

        for (out, inp) in matched_out {
            let (_, _, vnet) = requests[&(out, inp)];
            self.plan
                .insert((ctx.router, out), (ctx.cycle, inp, vnet));
        }
    }

    fn select(&mut self, ctx: &OutputCtx<'_>) -> Option<usize> {
        match self.plan.get(&(ctx.router, ctx.out_port)) {
            Some(&(cycle, inp, vnet)) if cycle == ctx.cycle => {
                let planned = ctx
                    .candidates
                    .iter()
                    .position(|c| c.in_port == inp && c.vnet == vnet);
                // If the planned buffer was consumed by a fast-path grant on
                // another output, stay work-conserving: fall back to the
                // oldest local arrival.
                planned.or_else(|| {
                    ctx.candidates
                        .iter()
                        .enumerate()
                        .min_by_key(|(_, c)| (c.arrival_cycle, c.packet_id))
                        .map(|(i, _)| i)
                })
            }
            // Output left unmatched by the iSLIP matching: idle this cycle.
            _ => None,
        }
    }

    fn checkpoint_state(&self) -> Option<String> {
        // The per-cycle matching plan is transient (cycle-guarded in
        // `select`); only the rotating grant/accept pointers survive a
        // cycle boundary. Entries are sorted so the encoding is
        // deterministic regardless of map iteration order.
        fn section(ptrs: &std::collections::HashMap<(RouterId, usize), usize>) -> String {
            let mut entries: Vec<_> = ptrs.iter().map(|(&(r, p), &v)| (r.0, p, v)).collect();
            entries.sort_unstable();
            entries
                .iter()
                .map(|(r, p, v)| format!("{r}:{p}:{v}"))
                .collect::<Vec<_>>()
                .join(";")
        }
        Some(format!(
            "{}|{}",
            section(&self.grant_ptrs),
            section(&self.accept_ptrs)
        ))
    }

    fn restore_state(&mut self, state: &str) -> Result<(), String> {
        fn section(
            text: &str,
        ) -> Result<std::collections::HashMap<(RouterId, usize), usize>, String> {
            let mut ptrs = std::collections::HashMap::new();
            for entry in text.split(';').filter(|e| !e.is_empty()) {
                let mut it = entry.split(':');
                let parse = |v: Option<&str>| -> Result<usize, String> {
                    v.and_then(|v| v.parse().ok())
                        .ok_or_else(|| format!("bad iSLIP pointer entry {entry:?}"))
                };
                let r = parse(it.next())?;
                let p = parse(it.next())?;
                let v = parse(it.next())?;
                ptrs.insert((RouterId(r), p), v);
            }
            Ok(ptrs)
        }
        let (grants, accepts) = state
            .split_once('|')
            .ok_or_else(|| format!("bad iSLIP state {state:?}"))?;
        self.grant_ptrs = section(grants)?;
        self.accept_ptrs = section(accepts)?;
        self.plan.clear();
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use noc_sim::{Candidate, DestType, Features, MsgType, NetSnapshot, NodeId};

    fn cand(in_port: usize, vnet: usize, arrival: u64, id: u64) -> Candidate {
        Candidate {
            in_port,
            vnet,
            slot: in_port * 3 + vnet,
            features: Features {
                payload_size: 1,
                local_age: 0,
                distance: 2,
                hop_count: 1,
                in_flight_from_src: 0,
                inter_arrival: 0,
                msg_type: MsgType::Request,
                dst_type: DestType::Core,
            },
            packet_id: id,
            create_cycle: arrival,
            arrival_cycle: arrival,
            src: NodeId(0),
            dst: NodeId(1),
            port_degraded: false,
        }
    }

    fn router_ctx<'a>(
        outputs: &'a [(usize, Vec<Candidate>)],
        net: &'a NetSnapshot,
        cycle: u64,
    ) -> RouterCtx<'a> {
        RouterCtx {
            router: RouterId(0),
            cycle,
            num_ports: 5,
            num_vnets: 3,
            outputs,
            net,
        }
    }

    #[test]
    fn matching_is_input_disjoint() {
        let net = NetSnapshot::default();
        // Inputs 0 and 1 both request output 1; inputs 0 and 2 request
        // output 2. A correct matching grants both outputs from distinct
        // inputs (e.g. out1←in0, out2←in2).
        let outputs = vec![
            (1usize, vec![cand(0, 0, 0, 1), cand(1, 0, 0, 2)]),
            (2usize, vec![cand(0, 1, 0, 3), cand(2, 0, 0, 4)]),
        ];
        let mut arb = IslipArbiter::new();
        arb.plan_router(&router_ctx(&outputs, &net, 7));
        let mut granted_inputs = Vec::new();
        for (out, cands) in &outputs {
            let ctx = OutputCtx {
                router: RouterId(0),
                out_port: *out,
                cycle: 7,
                num_ports: 5,
                num_vnets: 3,
                candidates: cands,
                net: &net,
            };
            if let Some(i) = arb.select(&ctx) {
                granted_inputs.push(cands[i].in_port);
            }
        }
        // With two iterations both outputs should be matched, to different inputs.
        assert_eq!(granted_inputs.len(), 2);
        assert_ne!(granted_inputs[0], granted_inputs[1]);
    }

    #[test]
    fn stale_plan_from_previous_cycle_is_ignored() {
        let net = NetSnapshot::default();
        let outputs = vec![(1usize, vec![cand(0, 0, 0, 1), cand(1, 0, 0, 2)])];
        let mut arb = IslipArbiter::new();
        arb.plan_router(&router_ctx(&outputs, &net, 7));
        let cands = outputs[0].1.clone();
        let ctx = OutputCtx {
            router: RouterId(0),
            out_port: 1,
            cycle: 8, // plan was for cycle 7
            num_ports: 5,
            num_vnets: 3,
            candidates: &cands,
            net: &net,
        };
        assert_eq!(arb.select(&ctx), None);
    }

    #[test]
    fn pointers_rotate_service_across_inputs() {
        let net = NetSnapshot::default();
        let outputs = vec![(1usize, vec![cand(0, 0, 0, 1), cand(1, 0, 0, 2)])];
        let mut arb = IslipArbiter::new();
        let mut winners = Vec::new();
        for cycle in 0..4 {
            arb.plan_router(&router_ctx(&outputs, &net, cycle));
            let ctx = OutputCtx {
                router: RouterId(0),
                out_port: 1,
                cycle,
                num_ports: 5,
                num_vnets: 3,
                candidates: &outputs[0].1,
                net: &net,
            };
            winners.push(outputs[0].1[arb.select(&ctx).unwrap()].in_port);
        }
        // The grant pointer advances past each winner, alternating service.
        assert_eq!(winners, vec![0, 1, 0, 1]);
    }

    #[test]
    #[should_panic(expected = "at least one iteration")]
    fn zero_iterations_rejected() {
        IslipArbiter::with_iterations(0);
    }
}
