//! Helpers for recovering port directions from flat port indices.
//!
//! Arbitration contexts carry only port *indices*; policies that treat mesh
//! directions asymmetrically (the paper's Algorithm 2 inverts hop-count
//! priority on West/East ports) recover the direction from the shared
//! layout: `num_ports - 4` local ports followed by N, S, W, E.

use noc_sim::PortDir;

/// Direction of input-port index `port` in a router with `num_ports` ports.
///
/// # Panics
///
/// Panics if `num_ports < 5` (a mesh router needs at least one local port
/// plus four directions) or `port >= num_ports`.
///
/// ```
/// use noc_arbiters::port_dir_of;
/// use noc_sim::PortDir;
/// assert_eq!(port_dir_of(0, 6), PortDir::Local(0));
/// assert_eq!(port_dir_of(5, 6), PortDir::East);
/// ```
pub fn port_dir_of(port: usize, num_ports: usize) -> PortDir {
    assert!(num_ports >= 5, "mesh routers have at least 5 ports");
    assert!(port < num_ports, "port index out of range");
    let locals = num_ports - 4;
    if port < locals {
        PortDir::Local(port as u8)
    } else {
        match port - locals {
            0 => PortDir::North,
            1 => PortDir::South,
            2 => PortDir::West,
            _ => PortDir::East,
        }
    }
}

/// True when the input port is the West or East mesh port — the ports the
/// paper's Algorithm 2 gives *inverted* hop-count priority.
pub fn is_east_west(port: usize, num_ports: usize) -> bool {
    matches!(port_dir_of(port, num_ports), PortDir::West | PortDir::East)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn six_port_layout_matches_paper() {
        // Core, Mem, N, S, W, E — the APU router of §4.6.
        assert_eq!(port_dir_of(0, 6), PortDir::Local(0));
        assert_eq!(port_dir_of(1, 6), PortDir::Local(1));
        assert_eq!(port_dir_of(2, 6), PortDir::North);
        assert_eq!(port_dir_of(3, 6), PortDir::South);
        assert_eq!(port_dir_of(4, 6), PortDir::West);
        assert_eq!(port_dir_of(5, 6), PortDir::East);
    }

    #[test]
    fn east_west_classification() {
        assert!(!is_east_west(0, 5));
        assert!(!is_east_west(2, 5));
        assert!(is_east_west(3, 5));
        assert!(is_east_west(4, 5));
        assert!(is_east_west(4, 6));
        assert!(is_east_west(5, 6));
    }

    #[test]
    #[should_panic(expected = "at least 5 ports")]
    fn tiny_router_rejected() {
        port_dir_of(0, 4);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn oversized_index_rejected() {
        port_dir_of(6, 6);
    }
}
