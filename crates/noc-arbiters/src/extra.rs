//! Additional arbiters from the paper's related-work discussion (§7):
//! wavefront allocation, ping-pong arbitration, and a slack-aware policy.
//!
//! These are not evaluated in the paper's figures, but a usable arbitration
//! library should carry them — and they make good extra baselines for the
//! extended policy comparison bench.

use std::collections::HashMap;

use noc_sim::{Arbiter, OutputCtx, RouterCtx, RouterId};

use crate::priority::{MaxPriorityArbiter, PriorityPolicy};

/// Wavefront allocation (Howard et al., JSSC 2011 \[34\]): sweep diagonals
/// of the request matrix, granting every free (input, output) pair on the
/// current diagonal; the starting diagonal rotates each cycle for
/// fairness. Produces a maximal matching in `n` steps of parallel
/// hardware; here the sweep is emulated per router per cycle.
#[derive(Debug, Clone, Default)]
pub struct WavefrontArbiter {
    /// `(router) -> rotating priority diagonal`.
    offsets: HashMap<RouterId, usize>,
    /// `(router, out_port) -> (cycle, in_port, vnet)` planned this cycle.
    plan: HashMap<(RouterId, usize), (u64, usize, usize)>,
}

impl WavefrontArbiter {
    /// Creates a wavefront allocator.
    pub fn new() -> Self {
        WavefrontArbiter::default()
    }
}

impl Arbiter for WavefrontArbiter {
    fn name(&self) -> String {
        "Wavefront".into()
    }

    fn plan_router(&mut self, ctx: &RouterCtx<'_>) {
        let n = ctx.num_ports;
        let offset = {
            let o = self.offsets.entry(ctx.router).or_insert(0);
            let cur = *o;
            *o = (*o + 1) % n;
            cur
        };
        // requests[(out, in)] = representative vnet (earliest arrival).
        let mut requests: HashMap<(usize, usize), (u64, u64, usize)> = HashMap::new();
        for (out, cands) in ctx.outputs {
            for c in cands {
                let key = (*out, c.in_port);
                let entry = (c.arrival_cycle, c.packet_id, c.vnet);
                match requests.get(&key) {
                    Some(prev) if *prev <= entry => {}
                    _ => {
                        requests.insert(key, entry);
                    }
                }
            }
        }
        let mut in_taken = vec![false; n];
        let mut out_taken = vec![false; n];
        // Sweep the n diagonals starting from the rotating offset.
        for k in 0..n {
            let diag = (offset + k) % n;
            #[allow(clippy::needless_range_loop)] // inp indexes two arrays and forms `out`
            for inp in 0..n {
                let out = (diag + n - inp % n) % n;
                if in_taken[inp] || out_taken[out] {
                    continue;
                }
                if let Some(&(_, _, vnet)) = requests.get(&(out, inp)) {
                    in_taken[inp] = true;
                    out_taken[out] = true;
                    self.plan
                        .insert((ctx.router, out), (ctx.cycle, inp, vnet));
                }
            }
        }
    }

    fn select(&mut self, ctx: &OutputCtx<'_>) -> Option<usize> {
        match self.plan.get(&(ctx.router, ctx.out_port)) {
            Some(&(cycle, inp, vnet)) if cycle == ctx.cycle => ctx
                .candidates
                .iter()
                .position(|c| c.in_port == inp && c.vnet == vnet)
                .or_else(|| {
                    // Planned buffer consumed elsewhere: stay work-conserving.
                    ctx.candidates
                        .iter()
                        .enumerate()
                        .min_by_key(|(_, c)| (c.arrival_cycle, c.packet_id))
                        .map(|(i, _)| i)
                }),
            _ => None,
        }
    }

    fn checkpoint_state(&self) -> Option<String> {
        // The matching plan is transient (cycle-guarded in `select`); only
        // the rotating diagonal offsets survive a cycle boundary.
        let mut entries: Vec<_> = self.offsets.iter().map(|(&r, &o)| (r.0, o)).collect();
        entries.sort_unstable();
        Some(
            entries
                .iter()
                .map(|(r, o)| format!("{r}:{o}"))
                .collect::<Vec<_>>()
                .join(";"),
        )
    }

    fn restore_state(&mut self, state: &str) -> Result<(), String> {
        self.offsets.clear();
        self.plan.clear();
        for entry in state.split(';').filter(|e| !e.is_empty()) {
            let mut it = entry.split(':');
            let parse = |v: Option<&str>| -> Result<usize, String> {
                v.and_then(|v| v.parse().ok())
                    .ok_or_else(|| format!("bad wavefront offset entry {entry:?}"))
            };
            let r = parse(it.next())?;
            let o = parse(it.next())?;
            self.offsets.insert(RouterId(r), o);
        }
        Ok(())
    }
}

/// Ping-pong arbitration (Chao, Lam & Guo, GLOBECOM 1999 \[31\]): a binary
/// tree of 2-input arbiters, each alternating ("ping-ponging") between its
/// subtrees whenever both have requesters — recursive fair sharing of
/// bandwidth among inputs.
#[derive(Debug, Clone, Default)]
pub struct PingPongArbiter {
    /// `(router, out_port, tree node) -> prefer-right flag`.
    toggles: HashMap<(RouterId, usize, usize), bool>,
}

impl PingPongArbiter {
    /// Creates a ping-pong arbiter.
    pub fn new() -> Self {
        PingPongArbiter::default()
    }

    /// Recursively resolves the winner among `slots[lo..hi)` (indices into
    /// the candidate list, sorted by slot). `node` identifies the tree
    /// position for toggle state.
    fn resolve(
        &mut self,
        key: (RouterId, usize),
        node: usize,
        present: &[Option<usize>],
        lo: usize,
        hi: usize,
    ) -> Option<usize> {
        if hi - lo == 1 {
            return present[lo];
        }
        let mid = lo + (hi - lo) / 2;
        let left = self.resolve(key, node * 2 + 1, present, lo, mid);
        let right = self.resolve(key, node * 2 + 2, present, mid, hi);
        match (left, right) {
            (Some(l), Some(r)) => {
                let flag = self
                    .toggles
                    .entry((key.0, key.1, node))
                    .or_insert(false);
                let winner = if *flag { r } else { l };
                *flag = !*flag;
                Some(winner)
            }
            (Some(l), None) => Some(l),
            (None, r) => r,
        }
    }
}

impl Arbiter for PingPongArbiter {
    fn name(&self) -> String {
        "Ping-pong".into()
    }

    fn select(&mut self, ctx: &OutputCtx<'_>) -> Option<usize> {
        let slots = ctx.num_ports * ctx.num_vnets;
        // present[slot] = candidate index, for the leaf layer of the tree.
        let mut present: Vec<Option<usize>> = vec![None; slots.next_power_of_two()];
        for (i, c) in ctx.candidates.iter().enumerate() {
            present[c.slot] = Some(i);
        }
        let n = present.len();
        self.resolve((ctx.router, ctx.out_port), 0, &present, 0, n)
    }

    fn checkpoint_state(&self) -> Option<String> {
        let mut entries: Vec<_> = self
            .toggles
            .iter()
            .map(|(&(r, out, node), &flag)| (r.0, out, node, flag as usize))
            .collect();
        entries.sort_unstable();
        Some(
            entries
                .iter()
                .map(|(r, out, node, flag)| format!("{r}:{out}:{node}:{flag}"))
                .collect::<Vec<_>>()
                .join(";"),
        )
    }

    fn restore_state(&mut self, state: &str) -> Result<(), String> {
        self.toggles.clear();
        for entry in state.split(';').filter(|e| !e.is_empty()) {
            let mut it = entry.split(':');
            let parse = |v: Option<&str>| -> Result<usize, String> {
                v.and_then(|v| v.parse().ok())
                    .ok_or_else(|| format!("bad ping-pong toggle entry {entry:?}"))
            };
            let r = parse(it.next())?;
            let out = parse(it.next())?;
            let node = parse(it.next())?;
            let flag = parse(it.next())?;
            if flag > 1 {
                return Err(format!("bad ping-pong toggle entry {entry:?}"));
            }
            self.toggles.insert((RouterId(r), out, node), flag == 1);
        }
        Ok(())
    }
}

/// Adversarial control policy: always prefer the *youngest* message.
///
/// Deliberately starvation-prone — the §6.4 starvation check runs it as
/// the worst-case contrast to the RL-inspired arbiter's local-age clause.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct NewestFirstPolicy {
    _priv: (),
}

impl NewestFirstPolicy {
    /// Creates the policy.
    pub fn new() -> Self {
        NewestFirstPolicy { _priv: () }
    }

    /// Wraps the policy in the select-max adapter.
    pub fn arbiter() -> MaxPriorityArbiter<Self> {
        MaxPriorityArbiter::new(NewestFirstPolicy::new())
    }
}

impl PriorityPolicy for NewestFirstPolicy {
    fn name(&self) -> String {
        "Newest-first".into()
    }

    fn priority(&self, c: &noc_sim::Candidate, _ctx: &OutputCtx<'_>) -> u32 {
        let age = c.features.local_age.min((1 << 20) - 1) as u32;
        (1 << 20) - age
    }
}

/// A slack-aware policy in the spirit of Aergia (Das et al., ISCA 2010
/// \[32\]): packets with less slack — here proxied by the *remaining route
/// length*, since a packet far from its destination still has the most
/// latency left to accumulate — are prioritized, with local age breaking
/// ties to protect old packets.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SlackAwarePolicy {
    _priv: (),
}

impl SlackAwarePolicy {
    /// Creates the policy.
    pub fn new() -> Self {
        SlackAwarePolicy { _priv: () }
    }

    /// Wraps the policy in the select-max adapter.
    pub fn arbiter() -> MaxPriorityArbiter<Self> {
        MaxPriorityArbiter::new(SlackAwarePolicy::new())
    }
}

impl PriorityPolicy for SlackAwarePolicy {
    fn name(&self) -> String {
        "Slack-aware".into()
    }

    fn priority(&self, c: &noc_sim::Candidate, _ctx: &OutputCtx<'_>) -> u32 {
        let remaining = c.features.distance.saturating_sub(c.features.hop_count).min(15);
        let age = c.features.local_age.min(15) as u32;
        (remaining << 4) | age
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use noc_sim::{Candidate, DestType, Features, MsgType, NetSnapshot, NodeId};

    fn cand(in_port: usize, vnet: usize, slot: usize, arrival: u64, id: u64) -> Candidate {
        Candidate {
            in_port,
            vnet,
            slot,
            features: Features {
                payload_size: 1,
                local_age: 2,
                distance: 6,
                hop_count: 1,
                in_flight_from_src: 0,
                inter_arrival: 0,
                msg_type: MsgType::Request,
                dst_type: DestType::Core,
            },
            packet_id: id,
            create_cycle: arrival,
            arrival_cycle: arrival,
            src: NodeId(0),
            dst: NodeId(1),
            port_degraded: false,
        }
    }

    #[test]
    fn wavefront_matching_is_conflict_free() {
        let net = NetSnapshot::default();
        // Inputs 0,1 request output 2; inputs 1,2 request output 3.
        let outputs = vec![
            (2usize, vec![cand(0, 0, 0, 0, 1), cand(1, 0, 3, 0, 2)]),
            (3usize, vec![cand(1, 1, 4, 0, 3), cand(2, 0, 6, 0, 4)]),
        ];
        let mut arb = WavefrontArbiter::new();
        arb.plan_router(&RouterCtx {
            router: RouterId(0),
            cycle: 5,
            num_ports: 5,
            num_vnets: 3,
            outputs: &outputs,
            net: &net,
        });
        let mut granted_inputs = Vec::new();
        for (out, cands) in &outputs {
            let ctx = OutputCtx {
                router: RouterId(0),
                out_port: *out,
                cycle: 5,
                num_ports: 5,
                num_vnets: 3,
                candidates: cands,
                net: &net,
            };
            if let Some(i) = arb.select(&ctx) {
                granted_inputs.push(cands[i].in_port);
            }
        }
        // Both outputs matched, to distinct inputs.
        assert_eq!(granted_inputs.len(), 2);
        assert_ne!(granted_inputs[0], granted_inputs[1]);
    }

    #[test]
    fn wavefront_ignores_stale_plans() {
        let net = NetSnapshot::default();
        let outputs = vec![(2usize, vec![cand(0, 0, 0, 0, 1), cand(1, 0, 3, 0, 2)])];
        let mut arb = WavefrontArbiter::new();
        arb.plan_router(&RouterCtx {
            router: RouterId(0),
            cycle: 5,
            num_ports: 5,
            num_vnets: 3,
            outputs: &outputs,
            net: &net,
        });
        let ctx = OutputCtx {
            router: RouterId(0),
            out_port: 2,
            cycle: 6, // stale
            num_ports: 5,
            num_vnets: 3,
            candidates: &outputs[0].1,
            net: &net,
        };
        assert_eq!(arb.select(&ctx), None);
    }

    #[test]
    fn ping_pong_alternates_between_halves() {
        let net = NetSnapshot::default();
        // Slots 0 (left half) and 14 (right half) both request.
        let cands = vec![cand(0, 0, 0, 0, 1), cand(4, 2, 14, 0, 2)];
        let ctx = OutputCtx {
            router: RouterId(0),
            out_port: 1,
            cycle: 0,
            num_ports: 5,
            num_vnets: 3,
            candidates: &cands,
            net: &net,
        };
        let mut arb = PingPongArbiter::new();
        let picks: Vec<usize> = (0..4).map(|_| arb.select(&ctx).unwrap()).collect();
        assert_eq!(picks, vec![0, 1, 0, 1], "strict alternation expected");
    }

    #[test]
    fn ping_pong_with_single_candidate_grants_it() {
        let net = NetSnapshot::default();
        let cands = vec![cand(2, 1, 7, 0, 1)];
        let ctx = OutputCtx {
            router: RouterId(0),
            out_port: 0,
            cycle: 0,
            num_ports: 5,
            num_vnets: 3,
            candidates: &cands,
            net: &net,
        };
        assert_eq!(PingPongArbiter::new().select(&ctx), Some(0));
    }

    #[test]
    fn slack_aware_prefers_long_remaining_routes() {
        let p = SlackAwarePolicy::new();
        let net = NetSnapshot::default();
        let mut near = cand(0, 0, 0, 0, 1);
        near.features.distance = 6;
        near.features.hop_count = 5; // 1 hop remaining
        let mut far = cand(1, 0, 3, 0, 2);
        far.features.distance = 6;
        far.features.hop_count = 0; // 6 hops remaining
        let cands = vec![near, far];
        let ctx = OutputCtx {
            router: RouterId(0),
            out_port: 0,
            cycle: 10,
            num_ports: 5,
            num_vnets: 3,
            candidates: &cands,
            net: &net,
        };
        assert!(p.priority(&cands[1], &ctx) > p.priority(&cands[0], &ctx));
    }
}
