//! The RL-inspired arbitration policies distilled from the trained agent.
//!
//! These are the paper's human-engineered end products: priority functions
//! simple enough for single-cycle hardware (shifts, a low-bit-width add, an
//! optional bit-inversion) that capture what the neural network learned.

use noc_sim::{Candidate, MsgType, OutputCtx};

use crate::ports::is_east_west;
use crate::priority::{MaxPriorityArbiter, PriorityPolicy};

/// Saturates a value to an `n`-bit hardware counter.
fn sat(value: u64, bits: u32) -> u32 {
    let max = (1u64 << bits) - 1;
    value.min(max) as u32
}

/// Plain local-age priority: the single best standalone feature found by
/// both the heatmap analysis and the hill-climbing study (paper Fig. 13).
#[derive(Debug, Clone, Default)]
pub struct LocalAgePolicy {
    _priv: (),
}

impl LocalAgePolicy {
    /// Creates the policy.
    pub fn new() -> Self {
        LocalAgePolicy { _priv: () }
    }

    /// Wraps the policy in the select-max adapter.
    pub fn arbiter() -> MaxPriorityArbiter<Self> {
        MaxPriorityArbiter::new(LocalAgePolicy::new())
    }
}

impl PriorityPolicy for LocalAgePolicy {
    fn name(&self) -> String {
        "Local-age".into()
    }

    fn priority(&self, c: &Candidate, _ctx: &OutputCtx<'_>) -> u32 {
        sat(c.features.local_age, 5)
    }
}

/// The §3.2 synthetic-mesh policies distilled from the Fig. 4 heatmap.
///
/// * 4×4 mesh: `priority = (local_age << 1) + (hop_count << 1)` with a
///   5-bit local-age counter and 3-bit hop counter.
/// * 8×8 mesh: `priority = local_age + (hop_count << 2)` — hop count
///   carries more weight in the larger network because it better
///   approximates global age over long routes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RlInspiredSynthetic {
    /// Shift applied to the saturated local age.
    la_shift: u32,
    /// Shift applied to the saturated hop count.
    hc_shift: u32,
    /// Hop counter width in bits.
    hc_bits: u32,
    label: &'static str,
}

impl RlInspiredSynthetic {
    /// The 4×4-mesh variant: `(LA << 1) + (HC << 1)`, 5-bit LA, 3-bit HC.
    pub fn mesh4x4() -> Self {
        RlInspiredSynthetic {
            la_shift: 1,
            hc_shift: 1,
            hc_bits: 3,
            label: "RL-inspired (4x4)",
        }
    }

    /// The 8×8-mesh variant: `LA + (HC << 2)`, 5-bit LA, 4-bit HC.
    pub fn mesh8x8() -> Self {
        RlInspiredSynthetic {
            la_shift: 0,
            hc_shift: 2,
            hc_bits: 4,
            label: "RL-inspired (8x8)",
        }
    }

    /// Distills measured feature importances into the shift-and-add
    /// datapath, mechanizing the paper's §3.2 heatmap-to-hardware step:
    /// `la_weight` / `hc_weight` are the mean first-layer `|w|` of the
    /// local-age and hop-count rows of a trained agent's heatmap. A
    /// feature dominating by ≥ 2× earns the larger shift (the 8×8-style
    /// asymmetric formulas); near-equal magnitudes reproduce the balanced
    /// 4×4 formula. Hop counters widen to 4 bits when hop count leads, so
    /// the favored feature is not the one that saturates first.
    pub fn from_weights(la_weight: f64, hc_weight: f64) -> Self {
        let (la_shift, hc_shift, hc_bits) = if hc_weight >= 2.0 * la_weight {
            (0, 2, 4)
        } else if la_weight >= 2.0 * hc_weight {
            (2, 0, 3)
        } else {
            (1, 1, 3)
        };
        RlInspiredSynthetic {
            la_shift,
            hc_shift,
            hc_bits,
            label: "RL-inspired (distilled)",
        }
    }

    /// Wraps the policy in the select-max adapter.
    pub fn arbiter(self) -> MaxPriorityArbiter<Self> {
        MaxPriorityArbiter::new(self)
    }
}

impl PriorityPolicy for RlInspiredSynthetic {
    fn name(&self) -> String {
        self.label.into()
    }

    fn priority(&self, c: &Candidate, _ctx: &OutputCtx<'_>) -> u32 {
        let la = sat(c.features.local_age, 5);
        let hc = sat(c.features.hop_count as u64, self.hc_bits);
        (la << self.la_shift) + (hc << self.hc_shift)
    }
}

/// The paper's Algorithm 2, implemented verbatim: the arbiter the authors
/// distilled from *their* trained agent for *their* chip.
///
/// Priority computation per input buffer, with a 5-bit local-age counter
/// `LA` and 4-bit hop counter `HC`:
///
/// 1. **Starvation clause** — if `LA > 24`, `priority = LA` (implementable
///    with an AND of the two MSBs).
/// 2. Otherwise, messages from Core/Memory/North/South ports are
///    prioritized by *larger* hop count, while West/East messages are
///    prioritized by *smaller* hop count (`15 − HC`, a bit inversion) — the
///    X-Y-routing asymmetry their heatmap revealed (§4.6).
/// 3. Coherence and response ("GPU response") messages get their hop term
///    doubled (`<< 1`).
///
/// On *this* reproduction's topology (directories on the East/West edge
/// columns) the West/East inversion mis-prioritizes memory traffic, so the
/// policy evaluated as "RL-inspired" in the figures is the one distilled
/// from our own agent, [`RlInspiredApu`]. Keeping both is deliberate: the
/// paper's central caveat is that NN-derived policies encode
/// context-specific behavior that a human must re-derive per design.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct Algorithm2Paper {
    _priv: (),
}

impl Algorithm2Paper {
    /// Creates the verbatim Algorithm 2 policy.
    pub fn new() -> Self {
        Algorithm2Paper { _priv: () }
    }

    /// Wraps the policy in the select-max adapter.
    pub fn arbiter() -> MaxPriorityArbiter<Self> {
        MaxPriorityArbiter::new(Algorithm2Paper::new())
    }

    /// The local-age starvation threshold (`0b11000`).
    pub const STARVATION_AGE: u32 = 24;
}

impl PriorityPolicy for Algorithm2Paper {
    fn name(&self) -> String {
        "Algorithm 2 (paper)".into()
    }

    fn priority(&self, c: &Candidate, ctx: &OutputCtx<'_>) -> u32 {
        algorithm2_priority(c, ctx, true, true)
    }
}

/// The RL-inspired arbiter distilled from *this reproduction's* trained
/// agent, following the paper's §4.9 procedure (analyze heatmap → rank
/// features → derive an implementable priority function → add starvation
/// protection):
///
/// * Our agent's heatmap (Fig. 7 regenerator) weights **hop count** most
///   heavily — the paper's own conjecture for larger networks (§3.2:
///   "in a larger network, global age can be better approximated through
///   hop count") — so hop count is the primary term.
/// * **Starvation clause**: `LA > 24` (5-bit counter) lifts the packet
///   above the entire normal priority range (`64 + LA`), a strict
///   improvement over Algorithm 2's overlapping ranges that our livelock
///   testing motivated (§6.4).
/// * **Coherence messages** (+1): draining probes/invalidations unblocks
///   phase transitions and CPU loads.
/// * **North/South input ports** (+2): under X-Y routing these carry
///   packets on their final leg; finishing them frees resources along the
///   whole residual path. (The analogue of the paper's port asymmetry,
///   with the sign our own analysis supports.)
///
/// Hardware cost is the same P-block + select-max structure as Fig. 8:
/// a shift, two small adders, and a 7-bit comparison tree.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct RlInspiredApu {
    _priv: (),
}

impl RlInspiredApu {
    /// Creates the distilled policy.
    pub fn new() -> Self {
        RlInspiredApu { _priv: () }
    }

    /// Wraps the policy in the select-max adapter.
    pub fn arbiter() -> MaxPriorityArbiter<Self> {
        MaxPriorityArbiter::new(RlInspiredApu::new())
    }

    /// The local-age starvation threshold (`0b11000`).
    pub const STARVATION_AGE: u32 = 24;
}

impl PriorityPolicy for RlInspiredApu {
    fn name(&self) -> String {
        "RL-inspired".into()
    }

    fn priority(&self, c: &Candidate, ctx: &OutputCtx<'_>) -> u32 {
        distilled_priority(c, ctx, true, true)
    }
}

/// The distilled policy with individual feature terms removable — the
/// paper's §5.1 de-featuring study ("ignoring port information increases
/// average program execution time by up to 6.5%; ignoring message type by
/// up to 5.1%"), applied to this reproduction's [`RlInspiredApu`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ApuAblation {
    /// Keep the North/South final-leg port term.
    pub use_port: bool,
    /// Keep the coherence boost.
    pub use_msg_type: bool,
}

impl ApuAblation {
    /// Ablation that drops the port condition.
    pub fn without_port() -> Self {
        ApuAblation {
            use_port: false,
            use_msg_type: true,
        }
    }

    /// Ablation that drops the message-type condition.
    pub fn without_msg_type() -> Self {
        ApuAblation {
            use_port: true,
            use_msg_type: false,
        }
    }

    /// Wraps the ablation in the select-max adapter.
    pub fn arbiter(self) -> MaxPriorityArbiter<Self> {
        MaxPriorityArbiter::new(self)
    }
}

impl PriorityPolicy for ApuAblation {
    fn name(&self) -> String {
        match (self.use_port, self.use_msg_type) {
            (false, true) => "RL-inspired (no port)".into(),
            (true, false) => "RL-inspired (no msg-type)".into(),
            (true, true) => "RL-inspired".into(),
            (false, false) => "RL-inspired (hop-count only)".into(),
        }
    }

    fn priority(&self, c: &Candidate, ctx: &OutputCtx<'_>) -> u32 {
        distilled_priority(c, ctx, self.use_port, self.use_msg_type)
    }
}

/// The distilled-policy datapath with optional feature terms.
fn distilled_priority(
    c: &Candidate,
    ctx: &OutputCtx<'_>,
    use_port: bool,
    use_msg_type: bool,
) -> u32 {
    let la = sat(c.features.local_age, 5);
    if la > RlInspiredApu::STARVATION_AGE {
        // Lift starving packets above the whole normal range.
        return 64 + la;
    }
    let hc = sat(c.features.hop_count as u64, 4);
    let mut pri = hc << 1;
    if use_msg_type && c.features.msg_type == MsgType::Coherence {
        pri += 1;
    }
    if use_port {
        let locals = ctx.num_ports - 4;
        let from_ns = c.in_port >= locals && !is_east_west(c.in_port, ctx.num_ports);
        if from_ns {
            pri += 2;
        }
    }
    pri
}

/// Shared Algorithm 2 datapath with optional feature terms.
fn algorithm2_priority(
    c: &Candidate,
    ctx: &OutputCtx<'_>,
    use_port: bool,
    use_msg_type: bool,
) -> u32 {
    let la = sat(c.features.local_age, 5);
    let hc = sat(c.features.hop_count as u64, 4);
    if la > Algorithm2Paper::STARVATION_AGE {
        return la;
    }
    let boosted = use_msg_type
        && matches!(c.features.msg_type, MsgType::Coherence | MsgType::Response);
    let from_east_west = use_port && is_east_west(c.in_port, ctx.num_ports);
    let base = if from_east_west { 0b1111 - hc } else { hc };
    if boosted {
        base << 1
    } else {
        base
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use noc_sim::{DestType, Features, MsgType, NetSnapshot, NodeId, RouterId};

    fn cand(in_port: usize, la: u64, hc: u32, msg: MsgType) -> Candidate {
        Candidate {
            in_port,
            vnet: 0,
            slot: in_port,
            features: Features {
                payload_size: 1,
                local_age: la,
                distance: 8,
                hop_count: hc,
                in_flight_from_src: 0,
                inter_arrival: 0,
                msg_type: msg,
                dst_type: DestType::Core,
            },
            packet_id: 0,
            create_cycle: 0,
            arrival_cycle: 0,
            src: NodeId(0),
            dst: NodeId(1),
            port_degraded: false,
        }
    }

    fn ctx6<'a>(cands: &'a [Candidate], net: &'a NetSnapshot) -> OutputCtx<'a> {
        OutputCtx {
            router: RouterId(0),
            out_port: 0,
            cycle: 100,
            num_ports: 6, // Core, Mem, N, S, W, E
            num_vnets: 1,
            candidates: cands,
            net,
        }
    }

    #[test]
    fn synthetic_4x4_formula() {
        let p = RlInspiredSynthetic::mesh4x4();
        let net = NetSnapshot::default();
        let c = cand(0, 10, 3, MsgType::Request);
        let cands = [c];
        assert_eq!(p.priority(&cands[0], &ctx6(&cands, &net)), (10 << 1) + (3 << 1));
    }

    #[test]
    fn synthetic_counters_saturate() {
        let p = RlInspiredSynthetic::mesh4x4();
        let net = NetSnapshot::default();
        let cands = [cand(0, 1000, 100, MsgType::Request)];
        // LA saturates at 31 (5 bits), HC at 7 (3 bits).
        assert_eq!(p.priority(&cands[0], &ctx6(&cands, &net)), (31 << 1) + (7 << 1));
    }

    #[test]
    fn from_weights_maps_dominance_onto_shifts() {
        // Near-equal magnitudes reproduce the balanced 4×4 formula.
        let balanced = RlInspiredSynthetic::from_weights(0.5, 0.6);
        let m4 = RlInspiredSynthetic::mesh4x4();
        let net = NetSnapshot::default();
        let cands = [cand(0, 10, 3, MsgType::Request)];
        let c = ctx6(&cands, &net);
        assert_eq!(balanced.priority(&cands[0], &c), m4.priority(&cands[0], &c));
        // Hop-count dominance ≥ 2× reproduces the 8×8 shape.
        let hops = RlInspiredSynthetic::from_weights(0.2, 0.5);
        let m8 = RlInspiredSynthetic::mesh8x8();
        assert_eq!(hops.priority(&cands[0], &c), m8.priority(&cands[0], &c));
        // Local-age dominance mirrors it the other way.
        let age = RlInspiredSynthetic::from_weights(0.9, 0.1);
        assert_eq!(age.priority(&cands[0], &c), (10 << 2) + 3);
        // The distilled variant announces itself.
        assert_eq!(age.name(), "RL-inspired (distilled)");
    }

    #[test]
    fn synthetic_8x8_weighs_hops_more() {
        let p = RlInspiredSynthetic::mesh8x8();
        let net = NetSnapshot::default();
        let near = [cand(0, 8, 1, MsgType::Request)];
        let far = [cand(0, 0, 5, MsgType::Request)];
        let c = ctx6(&near, &net);
        assert!(p.priority(&far[0], &c) > p.priority(&near[0], &c));
    }

    #[test]
    fn algorithm2_starvation_clause_fires_above_24() {
        let p = Algorithm2Paper::new();
        let net = NetSnapshot::default();
        let cands = [cand(0, 25, 15, MsgType::Coherence)];
        let c = ctx6(&cands, &net);
        assert_eq!(p.priority(&cands[0], &c), 25);
        let cands = [cand(0, 24, 15, MsgType::Coherence)];
        // At exactly 24 the normal path applies: boosted hop = 15<<1 = 30.
        assert_eq!(p.priority(&cands[0], &c), 30);
    }

    #[test]
    fn algorithm2_inverts_hops_on_east_west_ports() {
        let p = Algorithm2Paper::new();
        let net = NetSnapshot::default();
        let north = [cand(2, 0, 5, MsgType::Request)]; // port 2 = North
        let west = [cand(4, 0, 5, MsgType::Request)]; // port 4 = West
        let c = ctx6(&north, &net);
        assert_eq!(p.priority(&north[0], &c), 5);
        assert_eq!(p.priority(&west[0], &c), 0b1111 - 5);
    }

    #[test]
    fn algorithm2_boosts_coherence_and_response() {
        let p = Algorithm2Paper::new();
        let net = NetSnapshot::default();
        let req = [cand(0, 0, 6, MsgType::Request)];
        let coh = [cand(0, 0, 6, MsgType::Coherence)];
        let resp = [cand(0, 0, 6, MsgType::Response)];
        let c = ctx6(&req, &net);
        assert_eq!(p.priority(&req[0], &c), 6);
        assert_eq!(p.priority(&coh[0], &c), 12);
        assert_eq!(p.priority(&resp[0], &c), 12);
    }

    #[test]
    fn distilled_starvation_clause_dominates_normal_range() {
        let p = RlInspiredApu::new();
        let net = NetSnapshot::default();
        // Starving packet with no hops must beat the strongest normal
        // packet (max hops + coherence + N/S port = 30+1+2 = 33).
        let starving = [cand(0, 25, 0, MsgType::Request)];
        let strongest = [cand(2, 24, 15, MsgType::Coherence)];
        let c = ctx6(&starving, &net);
        assert_eq!(p.priority(&starving[0], &c), 64 + 25);
        assert_eq!(p.priority(&strongest[0], &c), (15 << 1) + 1 + 2);
        assert!(p.priority(&starving[0], &c) > p.priority(&strongest[0], &c));
    }

    #[test]
    fn distilled_weighs_hops_first() {
        let p = RlInspiredApu::new();
        let net = NetSnapshot::default();
        let far = [cand(0, 0, 9, MsgType::Request)];
        let near_coh_ns = [cand(2, 0, 7, MsgType::Coherence)];
        let c = ctx6(&far, &net);
        // 9 hops (18) beats 7 hops + coherence + N/S (14+1+2 = 17).
        assert!(p.priority(&far[0], &c) > p.priority(&near_coh_ns[0], &c));
    }

    #[test]
    fn distilled_boosts_coherence_and_ns_ports() {
        let p = RlInspiredApu::new();
        let net = NetSnapshot::default();
        let plain = [cand(0, 0, 5, MsgType::Request)];
        let coh = [cand(0, 0, 5, MsgType::Coherence)];
        let ns = [cand(2, 0, 5, MsgType::Request)]; // port 2 = North
        let ew = [cand(4, 0, 5, MsgType::Request)]; // port 4 = West
        let c = ctx6(&plain, &net);
        assert_eq!(p.priority(&plain[0], &c), 10);
        assert_eq!(p.priority(&coh[0], &c), 11);
        assert_eq!(p.priority(&ns[0], &c), 12);
        assert_eq!(p.priority(&ew[0], &c), 10, "E/W gets no boost, no inversion");
    }

    #[test]
    fn ablations_remove_exactly_one_term() {
        let net = NetSnapshot::default();
        let ns_coh = [cand(2, 0, 5, MsgType::Coherence)]; // North port
        let c = ctx6(&ns_coh, &net);
        let full = RlInspiredApu::new().priority(&ns_coh[0], &c);
        let no_port = ApuAblation::without_port().priority(&ns_coh[0], &c);
        let no_msg = ApuAblation::without_msg_type().priority(&ns_coh[0], &c);
        assert_eq!(full, (5 << 1) + 1 + 2);
        assert_eq!(no_port, (5 << 1) + 1);
        assert_eq!(no_msg, (5 << 1) + 2);
    }

    #[test]
    fn ablation_names_are_distinct() {
        assert_ne!(
            ApuAblation::without_port().name(),
            ApuAblation::without_msg_type().name()
        );
    }

    #[test]
    fn local_age_policy_saturates_at_31() {
        let p = LocalAgePolicy::new();
        let net = NetSnapshot::default();
        let cands = [cand(0, 500, 0, MsgType::Request)];
        assert_eq!(p.priority(&cands[0], &ctx6(&cands, &net)), 31);
    }
}
