//! The global-age oracle arbiter.

use noc_sim::{Arbiter, OutputCtx};

/// Global-age arbitration: always grant the message that has been in the
/// network the longest (earliest creation cycle).
///
/// "Global-age arbitration is considered one of the best policies … but its
/// hardware cost is largely impractical for use in on-chip routers"
/// (paper §2.1, citing Abts & Weisser). It is nevertheless the reward
/// oracle of the paper's RL formulation and the normalization baseline of
/// Figs. 5 and 9–11, so it must exist in the simulator even though no one
/// would build it.
#[derive(Debug, Clone, Default)]
pub struct GlobalAgeArbiter {
    _priv: (),
}

impl GlobalAgeArbiter {
    /// Creates the oracle arbiter.
    pub fn new() -> Self {
        GlobalAgeArbiter { _priv: () }
    }
}

impl Arbiter for GlobalAgeArbiter {
    fn name(&self) -> String {
        "Global-age".into()
    }

    fn select(&mut self, ctx: &OutputCtx<'_>) -> Option<usize> {
        Some(ctx.oldest_global_index())
    }

    fn wants_features(&self) -> bool {
        false // orders by (create_cycle, packet_id) only
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use noc_sim::{Candidate, DestType, Features, MsgType, NetSnapshot, NodeId, RouterId};

    fn cand(create: u64, id: u64) -> Candidate {
        Candidate {
            in_port: 0,
            vnet: 0,
            slot: 0,
            features: Features {
                payload_size: 1,
                local_age: 0,
                distance: 1,
                hop_count: 0,
                in_flight_from_src: 0,
                inter_arrival: 0,
                msg_type: MsgType::Request,
                dst_type: DestType::Core,
            },
            packet_id: id,
            create_cycle: create,
            arrival_cycle: create,
            src: NodeId(0),
            dst: NodeId(1),
            port_degraded: false,
        }
    }

    #[test]
    fn picks_globally_oldest() {
        let net = NetSnapshot::default();
        let cands = vec![cand(50, 0), cand(5, 1), cand(30, 2)];
        let ctx = OutputCtx {
            router: RouterId(0),
            out_port: 0,
            cycle: 100,
            num_ports: 5,
            num_vnets: 1,
            candidates: &cands,
            net: &net,
        };
        assert_eq!(GlobalAgeArbiter::new().select(&ctx), Some(1));
    }
}
