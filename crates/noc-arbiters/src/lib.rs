//! # noc-arbiters — the arbitration policy suite
//!
//! Every arbitration policy evaluated in *"Experiences with ML-Driven
//! Design: A NoC Case Study"* (HPCA 2020):
//!
//! | Policy | Paper role | Type |
//! |---|---|---|
//! | [`RoundRobinArbiter`] | baseline (§2.1) | locally fair rotation |
//! | [`FifoArbiter`] | baseline (§3.2) | oldest local arrival |
//! | [`IslipArbiter`] | prior work \[30\] | iterative RR matching |
//! | [`ProbDistArbiter`] | prior work \[14\] | probabilistic distance-based |
//! | [`GlobalAgeArbiter`] | impractical oracle | oldest global age |
//! | [`RandomArbiter`] | sanity baseline | uniform random |
//! | [`RlInspiredSynthetic`] | §3.2 distilled policies | local-age + hop-count priority |
//! | [`RlInspiredApu`] | §4.9-style distillation for this substrate | full distilled APU arbiter |
//! | [`Algorithm2Paper`] | §4.7 Algorithm 2, verbatim | the paper's own distillation |
//! | [`WavefrontArbiter`] / [`PingPongArbiter`] / [`SlackAwarePolicy`] | related work (§7) | extra baselines |
//! | [`ApuAblation`] | §5.1 de-featured study | Algorithm 2 minus port / msg-type terms |
//!
//! All policies implement [`noc_sim::Arbiter`]. Priority-based policies are
//! expressed through the [`PriorityPolicy`] trait and executed by the
//! [`MaxPriorityArbiter`] adapter, which models the select-max circuit of
//! the paper's Fig. 8 (highest priority wins, lowest buffer index on ties —
//! exactly what a hardware comparator tree does).

#![deny(missing_docs)]
#![warn(missing_debug_implementations)]

mod extra;
mod global_age;
mod islip;
mod ports;
mod priority;
mod probdist;
mod random;
mod registry;
mod rl_inspired;

pub use extra::{NewestFirstPolicy, PingPongArbiter, SlackAwarePolicy, WavefrontArbiter};
pub use global_age::GlobalAgeArbiter;
pub use islip::IslipArbiter;
pub use noc_sim::arbiters::{FifoArbiter, RoundRobinArbiter};
pub use ports::{is_east_west, port_dir_of};
pub use priority::{MaxPriorityArbiter, PriorityPolicy};
pub use probdist::{ProbDistArbiter, Weighting};
pub use random::RandomArbiter;
pub use registry::{make_arbiter, parse_lineup, ParsePolicyError, PolicyKind};
pub use rl_inspired::{Algorithm2Paper, ApuAblation, LocalAgePolicy, RlInspiredApu, RlInspiredSynthetic};
