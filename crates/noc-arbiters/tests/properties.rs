//! Property-based tests: every policy is safe on arbitrary candidate sets.

use noc_arbiters::{make_arbiter, PolicyKind};
use noc_sim::{
    Candidate, DestType, Features, MsgType, NetSnapshot, NodeId, OutputCtx, RouterId,
};
use proptest::prelude::*;

fn candidate_strategy(num_ports: usize, num_vnets: usize) -> impl Strategy<Value = Candidate> {
    (
        0..num_ports,
        0..num_vnets,
        1u32..6,
        0u64..500,
        0u32..15,
        0u32..15,
        0u64..1000,
        0u8..3,
        0u8..3,
        any::<u64>(),
    )
        .prop_map(
            move |(port, vnet, payload, la, dist, hops, create, mt, dt, id)| Candidate {
                in_port: port,
                vnet,
                slot: port * num_vnets + vnet,
                features: Features {
                    payload_size: payload,
                    local_age: la,
                    distance: dist,
                    hop_count: hops.min(dist),
                    in_flight_from_src: 3,
                    inter_arrival: la / 2,
                    msg_type: MsgType::ALL[mt as usize],
                    dst_type: DestType::ALL[dt as usize],
                },
                packet_id: id,
                create_cycle: create,
                arrival_cycle: create + la,
                src: NodeId(0),
                dst: NodeId(1),
                port_degraded: false,
            },
        )
}

proptest! {
    /// Every policy returns an in-range index (or None) for arbitrary
    /// candidate lists, across many consecutive invocations.
    #[test]
    fn policies_return_valid_indices(
        seed in any::<u64>(),
        cands in proptest::collection::vec(candidate_strategy(6, 7), 1..12),
        cycles in 1u64..20,
    ) {
        // De-duplicate slots: the simulator never presents two candidates
        // from the same buffer.
        let mut seen = std::collections::HashSet::new();
        let cands: Vec<Candidate> =
            cands.into_iter().filter(|c| seen.insert(c.slot)).collect();
        prop_assume!(!cands.is_empty());
        let net = NetSnapshot::default();
        for kind in PolicyKind::ALL {
            let mut arb = make_arbiter(kind, seed);
            for cycle in 0..cycles {
                let ctx = OutputCtx {
                    router: RouterId(3),
                    out_port: (cycle % 6) as usize,
                    cycle,
                    num_ports: 6,
                    num_vnets: 7,
                    candidates: &cands,
                    net: &net,
                };
                if let Some(i) = arb.select(&ctx) {
                    prop_assert!(i < cands.len(), "{kind} returned {i} of {}", cands.len());
                }
            }
        }
    }

    /// Deterministic policies pick the same winner for the same input.
    #[test]
    fn deterministic_policies_are_deterministic(
        cands in proptest::collection::vec(candidate_strategy(5, 3), 2..8),
    ) {
        let mut seen = std::collections::HashSet::new();
        let cands: Vec<Candidate> =
            cands.into_iter().filter(|c| seen.insert(c.slot)).collect();
        prop_assume!(cands.len() >= 2);
        let net = NetSnapshot::default();
        let ctx = OutputCtx {
            router: RouterId(0),
            out_port: 1,
            cycle: 50,
            num_ports: 5,
            num_vnets: 3,
            candidates: &cands,
            net: &net,
        };
        for kind in [
            PolicyKind::Fifo,
            PolicyKind::GlobalAge,
            PolicyKind::LocalAge,
            PolicyKind::RlSynth4x4,
            PolicyKind::RlSynth8x8,
            PolicyKind::RlApu,
            PolicyKind::Algorithm2,
        ] {
            let a = make_arbiter(kind, 1).select(&ctx);
            let b = make_arbiter(kind, 2).select(&ctx);
            prop_assert_eq!(a, b, "{} differed across instances", kind);
        }
    }

    /// Global-age always selects a candidate with the minimal creation
    /// cycle.
    #[test]
    fn global_age_selects_a_minimal_creation_cycle(
        cands in proptest::collection::vec(candidate_strategy(5, 3), 2..10),
    ) {
        let mut seen = std::collections::HashSet::new();
        let cands: Vec<Candidate> =
            cands.into_iter().filter(|c| seen.insert(c.slot)).collect();
        prop_assume!(cands.len() >= 2);
        let net = NetSnapshot::default();
        let ctx = OutputCtx {
            router: RouterId(0),
            out_port: 0,
            cycle: 1_000,
            num_ports: 5,
            num_vnets: 3,
            candidates: &cands,
            net: &net,
        };
        let chosen = make_arbiter(PolicyKind::GlobalAge, 0).select(&ctx).unwrap();
        let min = cands.iter().map(|c| c.create_cycle).min().unwrap();
        prop_assert_eq!(cands[chosen].create_cycle, min);
    }

    /// The distilled policy always grants a starving packet over any
    /// non-starving one (the §6.4 guarantee).
    #[test]
    fn distilled_policy_prefers_starving_packets(
        cands in proptest::collection::vec(candidate_strategy(6, 7), 2..10),
        which in 0usize..10,
    ) {
        let mut seen = std::collections::HashSet::new();
        let mut cands: Vec<Candidate> =
            cands.into_iter().filter(|c| seen.insert(c.slot)).collect();
        prop_assume!(cands.len() >= 2);
        // Make exactly one candidate starving, all others fresh.
        let idx = which % cands.len();
        for (i, c) in cands.iter_mut().enumerate() {
            c.features.local_age = if i == idx { 30 } else { 3 };
        }
        let net = NetSnapshot::default();
        let ctx = OutputCtx {
            router: RouterId(0),
            out_port: 0,
            cycle: 10_000,
            num_ports: 6,
            num_vnets: 7,
            candidates: &cands,
            net: &net,
        };
        let chosen = make_arbiter(PolicyKind::RlApu, 0).select(&ctx).unwrap();
        prop_assert_eq!(chosen, idx, "starving candidate was not granted");
    }
}
